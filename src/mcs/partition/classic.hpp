// Classical bin-packing heuristics: FFD, BFD, WFD (paper Sec. IV baselines).
//
// Tasks are ordered by decreasing maximum utilization u_i(l_i).  Feasibility
// on a core is Eq. (4) first, Theorem 1 as fallback.  "Load" for best/worst
// fit is the classical own-level utilization sum (the Eq. 4 left-hand side),
// matching schemes that look only at tasks' maximum utilizations.
#pragma once

#include "mcs/partition/partitioner.hpp"

namespace mcs::partition {

enum class FitRule {
  kFirst,  ///< lowest-index feasible core
  kBest,   ///< feasible core with the highest current load (tightest fit)
  kWorst,  ///< feasible core with the lowest current load (most headroom)
};

/// Which schedulability test gates a placement (ablation A4: the paper's
/// baselines use Eq. (4) with a Theorem-1 fallback; earlier literature used
/// Eq. (4) alone).
enum class TestStrength {
  kBasicOnly,          ///< Eq. (4) only
  kBasicThenImproved,  ///< Eq. (4) fast path, Theorem 1 fallback (paper)
};

/// FFD / BFD / WFD, selected by the fit rule.
class ClassicPartitioner final : public Partitioner {
 public:
  explicit ClassicPartitioner(
      FitRule rule, TestStrength strength = TestStrength::kBasicThenImproved)
      : rule_(rule), strength_(strength) {}

  [[nodiscard]] PlacementOutcome run_on(
      analysis::PlacementEngine& engine) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] FitRule rule() const noexcept { return rule_; }

 private:
  FitRule rule_;
  TestStrength strength_;
};

/// Allocates `order`-ed tasks with the given fit rule onto the engine's
/// partition, starting from its current state.  Returns the first
/// unplaceable task, or nullopt if all were placed.  Shared by the classic
/// schemes and Hybrid.
std::optional<std::size_t> allocate_with_rule(
    analysis::PlacementEngine& engine, std::span<const std::size_t> order,
    FitRule rule, TestStrength strength = TestStrength::kBasicThenImproved);

}  // namespace mcs::partition
