#include "mcs/partition/hybrid.hpp"

#include <algorithm>

#include "mcs/obs/trace.hpp"
#include "mcs/partition/classic.hpp"

namespace mcs::partition {

namespace {
constexpr obs::TraceSite kPlaceSite{"hybrid.place", "tasks", "cores"};
}  // namespace

PlacementOutcome HybridPartitioner::run_on(
    analysis::PlacementEngine& engine) const {
  const TaskSet& ts = engine.taskset();
  const obs::ScopedSpan span(kPlaceSite, ts.size(), engine.num_cores());

  std::vector<std::size_t> high;
  std::vector<std::size_t> low;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    (ts[i].level() >= 2 ? high : low).push_back(i);
  }
  auto by_level_then_util = [&](std::size_t a, std::size_t b) {
    if (ts[a].level() != ts[b].level()) return ts[a].level() > ts[b].level();
    if (ts[a].max_utilization() != ts[b].max_utilization()) {
      return ts[a].max_utilization() > ts[b].max_utilization();
    }
    return a < b;
  };
  auto by_util = [&](std::size_t a, std::size_t b) {
    if (ts[a].max_utilization() != ts[b].max_utilization()) {
      return ts[a].max_utilization() > ts[b].max_utilization();
    }
    return a < b;
  };
  std::sort(high.begin(), high.end(), by_level_then_util);
  std::sort(low.begin(), low.end(), by_util);

  PlacementOutcome outcome;
  outcome.failed_task = allocate_with_rule(engine, high, FitRule::kWorst);
  if (!outcome.failed_task) {
    outcome.failed_task = allocate_with_rule(engine, low, FitRule::kFirst);
  }
  outcome.success = !outcome.failed_task.has_value();
  return outcome;
}

}  // namespace mcs::partition
