// Convenience factories for the scheme line-ups used across benches/tests.
#pragma once

#include <memory>
#include <vector>

#include "mcs/partition/catpa.hpp"
#include "mcs/partition/classic.hpp"
#include "mcs/partition/hybrid.hpp"

namespace mcs::partition {

using PartitionerList = std::vector<std::unique_ptr<Partitioner>>;

/// The paper's five-scheme line-up: WFD, FFD, BFD, Hybrid, CA-TPA(alpha).
[[nodiscard]] PartitionerList paper_schemes(double alpha = 0.7);

/// Builds a single scheme by name: the paper line-up ("WFD", "FFD", "BFD",
/// "Hybrid", "CA-TPA"), the repair extension ("CA-TPA-R"), and the
/// dual-criticality comparison schemes ("FP-AMC", "DBF-FFD").  Throws
/// std::invalid_argument on unknown names.
[[nodiscard]] std::unique_ptr<Partitioner> make_scheme(const std::string& name,
                                                       double alpha = 0.7);

}  // namespace mcs::partition
