// Convenience factories for the scheme line-ups used across benches/tests.
#pragma once

#include <memory>
#include <vector>

#include "mcs/partition/catpa.hpp"
#include "mcs/partition/classic.hpp"
#include "mcs/partition/hybrid.hpp"

namespace mcs::partition {

using PartitionerList = std::vector<std::unique_ptr<Partitioner>>;

/// The paper's five-scheme line-up: WFD, FFD, BFD, Hybrid, CA-TPA(alpha).
[[nodiscard]] PartitionerList paper_schemes(double alpha = 0.7);

/// Builds a single scheme by name: the paper line-up ("WFD", "FFD", "BFD",
/// "Hybrid", "CA-TPA"), the repair extension ("CA-TPA-R"), the
/// dual-criticality comparison schemes ("FP-AMC", "DBF-FFD", "GE-FFD"),
/// and the utilization-difference partitioner ("UD-TPA").  Throws
/// std::invalid_argument on unknown names.
[[nodiscard]] std::unique_ptr<Partitioner> make_scheme(const std::string& name,
                                                       double alpha = 0.7);

/// Builds a scheme from a declarative spec string — the grammar the
/// experiment registry (exp::SweepSpec) uses to describe line-ups as data.
/// Accepts every make_scheme() name plus:
///   * "WFD/eq4", "FFD/eq4", "BFD/eq4"   — Eq. (4)-only test strength,
///   * "UD-TPA/eq4"                      — UD-TPA with the Eq. (4)-only gate,
///   * "UD-TPA/ge"                       — UD-TPA gated by the GE demand
///                                         test (dual-criticality only),
///   * "CA-TPA/noBal"                    — imbalance control disabled,
///   * "CA-TPA(<opts>)" with comma-separated options from
///       a=<alpha>        pinned imbalance threshold (ignores `alpha`),
///       min|first|max    Eq. (9b) probe-policy fold,
///       contrib|maxutil  ordering key,
///       nobal            disable imbalance control,
///       repair           enable single-migration repair.
/// Parenthesized CA-TPA forms use the spec string itself as the display
/// name, matching the ablation benches ("CA-TPA(min)", "CA-TPA(a=0.5)", …).
/// Throws std::invalid_argument on unknown specs.
[[nodiscard]] std::unique_ptr<Partitioner> make_scheme_spec(
    const std::string& spec, double alpha = 0.7);

/// make_scheme_spec over a list.
[[nodiscard]] PartitionerList make_scheme_list(
    const std::vector<std::string>& specs, double alpha = 0.7);

/// Every enumerable spec string of the grammar, in registry order — the
/// fixed names plus the named slash-forms.  (The parenthesized
/// "CA-TPA(<opts>)" family is open-ended and intentionally excluded.)
/// For every listed spec, make_scheme_spec(spec)->name() == spec; docs
/// tooling (`mcs_report --list-schemes`, ALGORITHMS.md coverage) and the
/// round-trip property test key off this list.
[[nodiscard]] const std::vector<std::string>& registered_scheme_specs();

}  // namespace mcs::partition
