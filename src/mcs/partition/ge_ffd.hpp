// GE-gated first-fit partitioner for dual-criticality systems: classical
// FFD ordering, but a core accepts a task iff the credited demand-bound
// test of analysis/ge_test.hpp (in the spirit of Gu & Easwaran, arXiv
// 2003.05160) still passes.  The head-to-head counterpart of DBF-FFD with
// the strictly tighter per-core gate.
#pragma once

#include "mcs/analysis/ge_test.hpp"
#include "mcs/partition/partitioner.hpp"

namespace mcs::partition {

class GeFfdPartitioner final : public Partitioner {
 public:
  explicit GeFfdPartitioner(analysis::GeOptions options = {})
      : options_(options) {}

  /// Requires ts.num_levels() == 2; throws std::invalid_argument otherwise.
  [[nodiscard]] PlacementOutcome run_on(
      analysis::PlacementEngine& engine) const override;
  [[nodiscard]] std::string name() const override { return "GE-FFD"; }

  /// The accepted per-task deadline scales of the last successful run are
  /// not stored (the partitioner is stateless); re-derive them with
  /// analysis::ge_dual_test on each core's subset.
 private:
  analysis::GeOptions options_;
};

}  // namespace mcs::partition
