// DBF-gated first-fit partitioner for dual-criticality systems, modeling
// the higher-complexity partitioned scheme of Gu, Guan, Deng & Yi (DATE'14,
// the paper's reference [20]): classical FFD ordering, but a core accepts a
// task iff the demand-bound-function test (analysis/dbf.hpp) still passes.
#pragma once

#include "mcs/analysis/dbf.hpp"
#include "mcs/partition/partitioner.hpp"

namespace mcs::partition {

class DbfFfdPartitioner final : public Partitioner {
 public:
  /// `order_by_contribution` applies CA-TPA's Sec. III-A task ordering on
  /// top of the DBF feasibility test (combining the paper's ordering idea
  /// with [20]'s finer test); the default is the classical max-utilization
  /// FFD ordering [20] uses.
  explicit DbfFfdPartitioner(analysis::DbfOptions options = {},
                             bool order_by_contribution = false)
      : options_(options), order_by_contribution_(order_by_contribution) {}

  /// Requires ts.num_levels() == 2; throws std::invalid_argument otherwise.
  [[nodiscard]] PlacementOutcome run_on(
      analysis::PlacementEngine& engine) const override;
  [[nodiscard]] std::string name() const override {
    return order_by_contribution_ ? "DBF-FFD/contrib" : "DBF-FFD";
  }

  /// The accepted per-core deadline scales of the last successful run are
  /// not stored (the partitioner is stateless); re-derive them with
  /// analysis::dbf_dual_test on each core's subset.
 private:
  analysis::DbfOptions options_;
  bool order_by_contribution_;
};

}  // namespace mcs::partition
