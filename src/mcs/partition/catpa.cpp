#include "mcs/partition/catpa.hpp"

#include "mcs/obs/metrics.hpp"
#include "mcs/obs/trace.hpp"

namespace mcs::partition {

namespace {
// Increments that differ by less than this are ties (the paper breaks ties
// toward the smaller core index); without the epsilon, floating-point noise
// of ~1e-16 from the theta/mu arithmetic would decide them arbitrarily.
constexpr double kTieEps = 1e-12;

obs::Counter& g_rebalance =
    obs::registry().counter("catpa.rebalance_placements");
obs::Counter& g_repair_calls = obs::registry().counter("catpa.repair_calls");
obs::Counter& g_repair_success =
    obs::registry().counter("catpa.repair_success");
obs::Counter& g_repair_relocations =
    obs::registry().counter("catpa.repair_relocations");

constexpr obs::TraceSite kPlaceSite{"catpa.place", "tasks", "cores"};
constexpr obs::TraceSite kRepairSite{"catpa.repair", "task", nullptr};
constexpr obs::TraceSite kRebalanceSite{"catpa.rebalance", "task", nullptr};
}  // namespace

CaTpaPartitioner::CaTpaPartitioner(CaTpaOptions options)
    : options_(std::move(options)) {
  if (!options_.display_name.empty()) {
    name_ = options_.display_name;
  } else if (options_.enable_repair) {
    name_ = "CA-TPA-R";
  } else {
    name_ = options_.use_imbalance_control ? "CA-TPA" : "CA-TPA/noBal";
  }
}

namespace {

/// Single-migration repair: tries to make room for `task` by relocating one
/// already-placed task from a candidate core to some other core.  On
/// success `task` is assigned, the cached utilizations are refreshed, and
/// true is returned; otherwise the partition (and the utilization cache) is
/// left exactly as it was — tentative moves go through relocate(), which
/// does not touch the cache.
///
/// The victims-vs-all-refuges rescan is one 2-D batched probe per dest: no
/// core's state changes between the historical scalar refuge probes (every
/// tentative relocate is rolled back before the next attempt), so probing
/// every (victim, refuge) pair of the dest up front against the loop-entry
/// state yields bit-identical ProbeResults — row v of the tile is exactly
/// the 1-D all-cores probe of victim v.  The task-on-dest re-probe stays
/// scalar — it runs against a partition that genuinely differs per attempt.
/// Accounting: the 2-D call charges members x cores probes up front, even
/// when a repair succeeds partway through the tile (the T x M rule; see
/// placement.hpp).
bool try_repair(analysis::PlacementEngine& engine, std::size_t task,
                analysis::ProbePolicy policy,
                std::vector<analysis::ProbeResult>& probes) {
  const obs::ScopedSpan span(kRepairSite, task);
  const std::size_t cores = engine.num_cores();
  for (std::size_t dest = 0; dest < cores; ++dest) {
    // Candidate tasks to evict from `dest` (copy: we mutate the partition).
    const std::vector<std::size_t> members = engine.partition().tasks_on(dest);
    if (members.empty()) continue;
    probes.resize(members.size() * cores);
    engine.probe_all_cores_2d(members, policy,
                              std::span<analysis::ProbeResult>(probes));
    for (std::size_t v = 0; v < members.size(); ++v) {
      const std::size_t victim = members[v];
      const analysis::ProbeResult* victim_row = probes.data() + v * cores;
      for (std::size_t refuge = 0; refuge < cores; ++refuge) {
        if (refuge == dest) continue;
        const analysis::ProbeResult& victim_probe = victim_row[refuge];
        if (!victim_probe.feasible) continue;
        g_repair_relocations.add();
        engine.relocate(victim, refuge);
        const analysis::ProbeResult task_probe =
            engine.probe(task, dest, policy);
        if (task_probe.feasible) {
          engine.commit(task, dest, task_probe.new_util);
          engine.set_util(refuge, victim_probe.new_util);
          return true;
        }
        engine.relocate(victim, dest);
      }
    }
  }
  return false;
}

}  // namespace

PlacementOutcome CaTpaPartitioner::run_on(
    analysis::PlacementEngine& engine) const {
  const TaskSet& ts = engine.taskset();
  const std::size_t num_cores = engine.num_cores();
  const obs::ScopedSpan span(kPlaceSite, ts.size(), num_cores);
  const std::vector<std::size_t> order = options_.order_by_contribution
                                             ? order_by_contribution(ts)
                                             : order_by_max_utilization(ts);

  std::vector<analysis::ProbeResult> probes(num_cores);
  std::vector<analysis::ProbeResult> repair_probes;  // victims x cores tile
  std::vector<Candidate> candidates(num_cores);
  std::vector<unsigned char> feasible(num_cores, 0);

  PlacementOutcome outcome;
  for (std::size_t t : order) {
    // Imbalance fallback (Sec. III-C): when the partition has drifted out of
    // balance, place the task on the least-utilized feasible core.
    const bool rebalance = options_.use_imbalance_control &&
                           engine.imbalance() >= options_.alpha;
    if (rebalance) {
      g_rebalance.add();
      obs::trace_instant(kRebalanceSite, t);
    }

    // One batched all-cores probe, then reduce the result vector.
    // Selection key: current utilization when re-balancing (pick the
    // emptiest core), utilization increment otherwise (Algorithm 1 line 8).
    engine.probe_all_cores(t, options_.probe_policy, probes);
    for (std::size_t m = 0; m < num_cores; ++m) {
      feasible[m] = probes[m].feasible ? 1 : 0;
      candidates[m] = Candidate{
          rebalance ? engine.util(m) : probes[m].increment,
          probes[m].new_util};
    }
    const CoreChoice choice =
        reduce_core_choice(candidates, feasible, SelectionRule::kMinKey,
                           kTieEps);
    if (choice.core == kUnassigned) {
      if (options_.enable_repair) {
        g_repair_calls.add();
        if (try_repair(engine, t, options_.probe_policy, repair_probes)) {
          g_repair_success.add();
          continue;
        }
      }
      outcome.failed_task = t;
      outcome.success = false;
      return outcome;
    }
    engine.commit(t, choice.core, choice.payload);
  }
  outcome.success = true;
  return outcome;
}

}  // namespace mcs::partition
