#include "mcs/partition/catpa.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mcs::partition {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
// Increments that differ by less than this are ties (the paper breaks ties
// toward the smaller core index); without the epsilon, floating-point noise
// of ~1e-16 from the theta/mu arithmetic would decide them arbitrarily.
constexpr double kTieEps = 1e-12;
}

CaTpaPartitioner::CaTpaPartitioner(CaTpaOptions options)
    : options_(std::move(options)) {
  if (!options_.display_name.empty()) {
    name_ = options_.display_name;
  } else if (options_.enable_repair) {
    name_ = "CA-TPA-R";
  } else {
    name_ = options_.use_imbalance_control ? "CA-TPA" : "CA-TPA/noBal";
  }
}

namespace {

/// Single-migration repair: tries to make room for `task` by relocating one
/// already-placed task from a candidate core to some other core.  On
/// success `task` is assigned, `util` is refreshed, and true is returned;
/// otherwise the partition is left exactly as it was.
bool try_repair(Partition& partition, std::vector<double>& util,
                std::size_t task, analysis::ProbePolicy policy,
                std::size_t& probes) {
  const std::size_t cores = partition.num_cores();
  for (std::size_t dest = 0; dest < cores; ++dest) {
    // Candidate tasks to evict from `dest` (copy: we mutate the partition).
    const std::vector<std::size_t> members = partition.tasks_on(dest);
    for (std::size_t victim : members) {
      for (std::size_t refuge = 0; refuge < cores; ++refuge) {
        if (refuge == dest) continue;
        ++probes;
        const analysis::ProbeResult victim_probe =
            analysis::probe_assignment(partition, victim, refuge, util[refuge],
                                       policy);
        if (!victim_probe.feasible) continue;
        partition.unassign(victim);
        partition.assign(victim, refuge);
        const double dest_util =
            analysis::core_utilization(partition.utils_on(dest), policy);
        ++probes;
        const analysis::ProbeResult task_probe =
            analysis::probe_assignment(partition, task, dest, dest_util,
                                       policy);
        if (task_probe.feasible) {
          partition.assign(task, dest);
          util[refuge] = victim_probe.new_util;
          util[dest] = task_probe.new_util;
          return true;
        }
        partition.unassign(victim);
        partition.assign(victim, dest);
      }
    }
  }
  return false;
}

}  // namespace

PartitionResult CaTpaPartitioner::run(const TaskSet& ts,
                                      std::size_t num_cores) const {
  PartitionResult r{.partition = Partition(ts, num_cores)};
  const std::vector<std::size_t> order = options_.order_by_contribution
                                             ? order_by_contribution(ts)
                                             : order_by_max_utilization(ts);

  // Cached U^{Psi_m}; empty cores have utilization 0.
  std::vector<double> util(num_cores, 0.0);

  for (std::size_t t : order) {
    // Imbalance fallback (Sec. III-C): when the partition has drifted out of
    // balance, place the task on the least-utilized feasible core.
    bool rebalance = false;
    if (options_.use_imbalance_control) {
      const double u_sys = *std::max_element(util.begin(), util.end());
      const double u_min = *std::min_element(util.begin(), util.end());
      const double imbalance = u_sys > 0.0 ? (u_sys - u_min) / u_sys : 0.0;
      rebalance = imbalance >= options_.alpha;
    }

    std::size_t chosen = kUnassigned;
    double chosen_key = kInf;
    double chosen_new_util = kInf;
    for (std::size_t m = 0; m < num_cores; ++m) {
      ++r.probes;
      const analysis::ProbeResult probe = analysis::probe_assignment(
          r.partition, t, m, util[m], options_.probe_policy);
      if (!probe.feasible) continue;
      // Selection key: current utilization when re-balancing (pick the
      // emptiest core), utilization increment otherwise (Algorithm 1 line 8).
      const double key = rebalance ? util[m] : probe.increment;
      if (key < chosen_key - kTieEps) {
        chosen_key = key;
        chosen = m;
        chosen_new_util = probe.new_util;
      }
    }
    if (chosen == kUnassigned) {
      if (options_.enable_repair &&
          try_repair(r.partition, util, t, options_.probe_policy, r.probes)) {
        continue;
      }
      r.failed_task = t;
      r.success = false;
      return r;
    }
    r.partition.assign(t, chosen);
    util[chosen] = chosen_new_util;
  }
  r.success = true;
  return r;
}

}  // namespace mcs::partition
