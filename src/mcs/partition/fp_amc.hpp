// Partitioned fixed-priority mixed-criticality scheme (dual criticality),
// after Kelly, Aydin & Zhao ("On partitioned scheduling of fixed-priority
// mixed-criticality task sets", the paper's reference [22]): tasks are
// ordered by decreasing criticality level first and decreasing maximum
// utilization within a level, then placed with a classical fit rule; a core
// accepts a task iff the AMC-rtb response-time analysis still passes.
//
// Included as the fixed-priority counterpart of the partitioned EDF-VD
// schemes so the two families can be compared (bench_fp_vs_edfvd).
#pragma once

#include "mcs/partition/classic.hpp"
#include "mcs/partition/partitioner.hpp"

namespace mcs::partition {

/// How per-core priorities are assigned / tested.
enum class PriorityAssignment {
  kDeadlineMonotonic,  ///< classic DM + AMC-rtb
  kAudsley,            ///< optimal priority assignment over AMC-rtb
};

class FpAmcPartitioner final : public Partitioner {
 public:
  explicit FpAmcPartitioner(
      FitRule rule = FitRule::kFirst,
      PriorityAssignment assignment = PriorityAssignment::kDeadlineMonotonic)
      : rule_(rule), assignment_(assignment) {}

  /// Requires ts.num_levels() == 2 (AMC-rtb is dual-criticality); throws
  /// std::invalid_argument otherwise.
  [[nodiscard]] PlacementOutcome run_on(
      analysis::PlacementEngine& engine) const override;
  [[nodiscard]] std::string name() const override;

 private:
  FitRule rule_;
  PriorityAssignment assignment_;
};

}  // namespace mcs::partition
