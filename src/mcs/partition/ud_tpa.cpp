#include "mcs/partition/ud_tpa.hpp"

#include <algorithm>
#include <stdexcept>

#include "mcs/obs/trace.hpp"

namespace mcs::partition {

namespace {

constexpr obs::TraceSite kPlaceSite{"ud_tpa.place", "tasks", "cores"};

double util_at(const McTask& task, Level k) {
  return task.wcet(k) / task.period();
}

}  // namespace

PlacementOutcome UdTpaPartitioner::run_on(
    analysis::PlacementEngine& engine) const {
  const TaskSet& ts = engine.taskset();
  const obs::ScopedSpan span(kPlaceSite, ts.size(), engine.num_cores());
  if (gate_ == UdGate::kGe && ts.num_levels() != 2) {
    throw std::invalid_argument(
        "UdTpaPartitioner: the GE gate requires a dual-criticality task set");
  }

  // diff_i = u_i(l_i) - u_i(1): zero for single-level tasks, which is what
  // routes them into phase 2.
  std::vector<double> diff(ts.size(), 0.0);
  std::vector<std::size_t> multi;
  std::vector<std::size_t> single;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const McTask& task = ts[i];
    if (task.level() >= 2) {
      diff[i] = util_at(task, task.level()) - util_at(task, 1);
      multi.push_back(i);
    } else {
      single.push_back(i);
    }
  }
  std::sort(multi.begin(), multi.end(), [&](std::size_t a, std::size_t b) {
    if (diff[a] != diff[b]) return diff[a] > diff[b];
    const double ua = util_at(ts[a], ts[a].level());
    const double ub = util_at(ts[b], ts[b].level());
    if (ua != ub) return ua > ub;
    return a < b;
  });
  std::sort(single.begin(), single.end(), [&](std::size_t a, std::size_t b) {
    const double ua = util_at(ts[a], 1);
    const double ub = util_at(ts[b], 1);
    if (ua != ub) return ua > ub;
    return a < b;
  });

  std::vector<double> diff_load(engine.num_cores(), 0.0);
  PlacementOutcome outcome;

  // Worst-fit keys: phase 1 spreads the utilization differences, phase 2
  // fills remaining LO-mode capacity by Eq. (4) load.  Both are maintained
  // outside the probes, so they are always fresh for the 2-D lookahead.
  const auto phase1_keys = [&](std::size_t, std::span<Candidate> candidates) {
    for (std::size_t m = 0; m < candidates.size(); ++m) {
      candidates[m] = Candidate{diff_load[m], 0.0};
    }
  };
  const auto phase2_keys = [&](std::size_t, std::span<Candidate> candidates) {
    for (std::size_t m = 0; m < candidates.size(); ++m) {
      candidates[m] = Candidate{engine.load(m), 0.0};
    }
  };
  const auto phase1_place = [&](std::size_t t, const CoreChoice& choice) {
    engine.commit(t, choice.core);
    diff_load[choice.core] += diff[t];
  };
  const auto phase2_place = [&](std::size_t t, const CoreChoice& choice) {
    engine.commit(t, choice.core);
  };

  if (gate_ != UdGate::kGe) {
    // Plane-backed gates (Theorem 1 / Eq. 4) are per-core pure, so both
    // phases run on the 2-D lookahead skeleton: one task x core tile gate,
    // dirty columns re-gated per task by a scalar single-core probe.
    const auto gate_tile = [&](std::span<const std::size_t> tile,
                               std::span<unsigned char> rows) {
      if (gate_ == UdGate::kTheorem1) {
        engine.probe_fits_all_2d(tile, rows);
      } else {
        engine.probe_fits_basic_all_2d(tile, rows);
      }
    };
    const auto regate = [&](std::size_t t, std::size_t m) {
      return gate_ == UdGate::kTheorem1 ? engine.probe_fits(t, m)
                                        : engine.probe_fits_basic(t, m);
    };
    outcome.failed_task = place_in_order_batched_2d(
        multi, engine.num_cores(), SelectionRule::kMinKey, 0.0, gate_tile,
        regate, phase1_keys, phase1_place);
    if (!outcome.failed_task.has_value()) {
      outcome.failed_task = place_in_order_batched_2d(
          single, engine.num_cores(), SelectionRule::kMinKey, 0.0, gate_tile,
          regate, phase2_keys, phase2_place);
    }
    outcome.success = !outcome.failed_task.has_value();
    return outcome;
  }

  // GE gate: a scalar all-cores loop (count_probe per core) over member
  // lists like DBF-FFD's gate — it has no plane-backed 2-D form, so it
  // stays on the 1-D skeleton.
  std::vector<std::size_t> members;  // reused across GE probes
  const auto gate = [&](std::size_t t, std::span<unsigned char> feasible) {
    for (std::size_t m = 0; m < feasible.size(); ++m) {
      engine.count_probe();
      members = engine.partition().tasks_on(m);
      members.push_back(t);
      feasible[m] =
          analysis::ge_dual_test(ts, members, ge_options_).schedulable ? 1 : 0;
    }
  };

  // Phase 1: spread the utilization differences (worst-fit on diff load).
  outcome.failed_task = place_in_order_batched(
      multi, engine.num_cores(), SelectionRule::kMinKey, 0.0,
      [&](std::size_t t, std::span<Candidate> candidates,
          std::span<unsigned char> feasible) {
        gate(t, feasible);
        phase1_keys(t, candidates);
      },
      phase1_place);

  // Phase 2: fill remaining LO-mode capacity (worst-fit on Eq. (4) load).
  if (!outcome.failed_task.has_value()) {
    outcome.failed_task = place_in_order_batched(
        single, engine.num_cores(), SelectionRule::kMinKey, 0.0,
        [&](std::size_t t, std::span<Candidate> candidates,
            std::span<unsigned char> feasible) {
          gate(t, feasible);
          phase2_keys(t, candidates);
        },
        phase2_place);
  }

  outcome.success = !outcome.failed_task.has_value();
  return outcome;
}

}  // namespace mcs::partition
