#include "mcs/partition/fp_amc.hpp"

#include <algorithm>
#include <stdexcept>

#include "mcs/analysis/amc_rta.hpp"
#include "mcs/obs/trace.hpp"

namespace mcs::partition {

namespace {

constexpr obs::TraceSite kPlaceSite{"fp_amc.place", "tasks", "cores"};

/// AMC-rtb feasibility of core `core` with `task_index` tentatively added,
/// under the configured priority-assignment policy.
bool fits_amc(analysis::PlacementEngine& engine, std::size_t task_index,
              std::size_t core, PriorityAssignment assignment,
              std::vector<std::size_t>& members) {
  engine.count_probe();
  members = engine.partition().tasks_on(core);
  members.push_back(task_index);
  if (assignment == PriorityAssignment::kAudsley) {
    return analysis::audsley_assignment(engine.taskset(), members).has_value();
  }
  return analysis::amc_rtb_test(engine.taskset(), members).schedulable;
}

}  // namespace

PlacementOutcome FpAmcPartitioner::run_on(
    analysis::PlacementEngine& engine) const {
  const TaskSet& ts = engine.taskset();
  const obs::ScopedSpan span(kPlaceSite, ts.size(), engine.num_cores());
  if (ts.num_levels() != 2) {
    throw std::invalid_argument(
        "FpAmcPartitioner: requires a dual-criticality task set");
  }

  // Criticality-first ordering (HI before LO), decreasing max utilization
  // within each group.
  std::vector<std::size_t> order(ts.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (ts[a].level() != ts[b].level()) return ts[a].level() > ts[b].level();
    if (ts[a].max_utilization() != ts[b].max_utilization()) {
      return ts[a].max_utilization() > ts[b].max_utilization();
    }
    return a < b;
  });

  const SelectionRule selection = rule_ == FitRule::kFirst
                                      ? SelectionRule::kFirstFeasible
                                      : SelectionRule::kMinKey;
  std::vector<std::size_t> members;  // reused across probes
  PlacementOutcome outcome;
  // AMC-rtb feasibility works off member lists, not the utilization planes,
  // so the fill loops cores with the scalar test (count_probe per core
  // attempted inside fits_amc) and, under first-fit, early-exits at the
  // first feasible core — preserving the historical probe counts.
  outcome.failed_task = place_in_order_batched(
      order, engine.num_cores(), selection, 0.0,
      [&](std::size_t t, std::span<Candidate> candidates,
          std::span<unsigned char> feasible) {
        std::fill(feasible.begin(), feasible.end(),
                  static_cast<unsigned char>(0));
        for (std::size_t m = 0; m < feasible.size(); ++m) {
          if (!fits_amc(engine, t, m, assignment_, members)) continue;
          feasible[m] = 1;
          if (rule_ == FitRule::kFirst) break;  // first feasible wins
          const double load = engine.load(m);
          candidates[m] = Candidate{rule_ == FitRule::kBest ? -load : load};
        }
      },
      [&](std::size_t t, const CoreChoice& choice) {
        engine.commit(t, choice.core);
      });
  outcome.success = !outcome.failed_task.has_value();
  return outcome;
}

// The default configuration (first-fit + DM) is the registry's "FP-AMC" and
// must render as exactly that string (the name() == spec invariant the docs
// tooling and artifact provenance rely on); non-default variants carry
// their fit-rule / OPA suffixes.
std::string FpAmcPartitioner::name() const {
  std::string base = "FP-AMC";
  switch (rule_) {
    case FitRule::kFirst:
      break;
    case FitRule::kBest:
      base += "/BF";
      break;
    case FitRule::kWorst:
      base += "/WF";
      break;
  }
  if (assignment_ == PriorityAssignment::kAudsley) base += "/OPA";
  return base;
}

}  // namespace mcs::partition
