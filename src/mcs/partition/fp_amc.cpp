#include "mcs/partition/fp_amc.hpp"

#include <algorithm>
#include <stdexcept>

#include "mcs/analysis/amc_rta.hpp"

namespace mcs::partition {

namespace {

/// AMC-rtb feasibility of core `core` with `task_index` tentatively added,
/// under the configured priority-assignment policy.
bool fits_amc(const Partition& partition, std::size_t task_index,
              std::size_t core, PriorityAssignment assignment,
              std::size_t& probes) {
  ++probes;
  std::vector<std::size_t> members = partition.tasks_on(core);
  members.push_back(task_index);
  if (assignment == PriorityAssignment::kAudsley) {
    return analysis::audsley_assignment(partition.taskset(), members)
        .has_value();
  }
  return analysis::amc_rtb_test(partition.taskset(), members).schedulable;
}

}  // namespace

PartitionResult FpAmcPartitioner::run(const TaskSet& ts,
                                      std::size_t num_cores) const {
  if (ts.num_levels() != 2) {
    throw std::invalid_argument(
        "FpAmcPartitioner: requires a dual-criticality task set");
  }
  PartitionResult r{.partition = Partition(ts, num_cores)};

  // Criticality-first ordering (HI before LO), decreasing max utilization
  // within each group.
  std::vector<std::size_t> order(ts.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (ts[a].level() != ts[b].level()) return ts[a].level() > ts[b].level();
    if (ts[a].max_utilization() != ts[b].max_utilization()) {
      return ts[a].max_utilization() > ts[b].max_utilization();
    }
    return a < b;
  });

  for (std::size_t t : order) {
    std::size_t chosen = kUnassigned;
    double chosen_load = 0.0;
    for (std::size_t m = 0; m < num_cores; ++m) {
      if (!fits_amc(r.partition, t, m, assignment_, r.probes)) continue;
      if (rule_ == FitRule::kFirst) {
        chosen = m;
        break;
      }
      const double load = r.partition.utils_on(m).own_level_sum();
      const bool better =
          chosen == kUnassigned ||
          (rule_ == FitRule::kBest ? load > chosen_load : load < chosen_load);
      if (better) {
        chosen = m;
        chosen_load = load;
      }
    }
    if (chosen == kUnassigned) {
      r.failed_task = t;
      r.success = false;
      return r;
    }
    r.partition.assign(t, chosen);
  }
  r.success = true;
  return r;
}

std::string FpAmcPartitioner::name() const {
  std::string base = "FP-AMC";
  switch (rule_) {
    case FitRule::kFirst:
      base = "FP-AMC/FF";
      break;
    case FitRule::kBest:
      base = "FP-AMC/BF";
      break;
    case FitRule::kWorst:
      base = "FP-AMC/WF";
      break;
  }
  if (assignment_ == PriorityAssignment::kAudsley) base += "/OPA";
  return base;
}

}  // namespace mcs::partition
