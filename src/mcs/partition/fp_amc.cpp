#include "mcs/partition/fp_amc.hpp"

#include <algorithm>
#include <stdexcept>

#include "mcs/analysis/amc_rta.hpp"

namespace mcs::partition {

namespace {

/// AMC-rtb feasibility of core `core` with `task_index` tentatively added,
/// under the configured priority-assignment policy.
bool fits_amc(analysis::PlacementEngine& engine, std::size_t task_index,
              std::size_t core, PriorityAssignment assignment,
              std::vector<std::size_t>& members) {
  engine.count_probe();
  members = engine.partition().tasks_on(core);
  members.push_back(task_index);
  if (assignment == PriorityAssignment::kAudsley) {
    return analysis::audsley_assignment(engine.taskset(), members).has_value();
  }
  return analysis::amc_rtb_test(engine.taskset(), members).schedulable;
}

}  // namespace

PlacementOutcome FpAmcPartitioner::run_on(
    analysis::PlacementEngine& engine) const {
  const TaskSet& ts = engine.taskset();
  if (ts.num_levels() != 2) {
    throw std::invalid_argument(
        "FpAmcPartitioner: requires a dual-criticality task set");
  }

  // Criticality-first ordering (HI before LO), decreasing max utilization
  // within each group.
  std::vector<std::size_t> order(ts.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (ts[a].level() != ts[b].level()) return ts[a].level() > ts[b].level();
    if (ts[a].max_utilization() != ts[b].max_utilization()) {
      return ts[a].max_utilization() > ts[b].max_utilization();
    }
    return a < b;
  });

  std::vector<std::size_t> members;  // reused across probes
  PlacementOutcome outcome;
  outcome.failed_task = place_in_order(
      order, engine.num_cores(),
      rule_ == FitRule::kFirst ? SelectionRule::kFirstFeasible
                               : SelectionRule::kMinKey,
      0.0,
      [&](std::size_t t, std::size_t m) -> std::optional<Candidate> {
        if (!fits_amc(engine, t, m, assignment_, members)) {
          return std::nullopt;
        }
        if (rule_ == FitRule::kFirst) return Candidate{};
        const double load = engine.load(m);
        return Candidate{rule_ == FitRule::kBest ? -load : load};
      },
      [&](std::size_t t, const CoreChoice& choice) {
        engine.commit(t, choice.core);
      });
  outcome.success = !outcome.failed_task.has_value();
  return outcome;
}

std::string FpAmcPartitioner::name() const {
  std::string base = "FP-AMC";
  switch (rule_) {
    case FitRule::kFirst:
      base = "FP-AMC/FF";
      break;
    case FitRule::kBest:
      base = "FP-AMC/BF";
      break;
    case FitRule::kWorst:
      base = "FP-AMC/WF";
      break;
  }
  if (assignment_ == PriorityAssignment::kAudsley) base += "/OPA";
  return base;
}

}  // namespace mcs::partition
