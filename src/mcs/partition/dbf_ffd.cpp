#include "mcs/partition/dbf_ffd.hpp"

#include <stdexcept>

#include "mcs/core/contributions.hpp"

namespace mcs::partition {

PlacementOutcome DbfFfdPartitioner::run_on(
    analysis::PlacementEngine& engine) const {
  const TaskSet& ts = engine.taskset();
  if (ts.num_levels() != 2) {
    throw std::invalid_argument(
        "DbfFfdPartitioner: requires a dual-criticality task set");
  }
  const std::vector<std::size_t> order = order_by_contribution_
                                             ? order_by_contribution(ts)
                                             : order_by_max_utilization(ts);
  std::vector<std::size_t> members;  // reused across probes
  PlacementOutcome outcome;
  outcome.failed_task = place_in_order(
      order, engine.num_cores(), SelectionRule::kFirstFeasible, 0.0,
      [&](std::size_t t, std::size_t m) -> std::optional<Candidate> {
        engine.count_probe();
        members = engine.partition().tasks_on(m);
        members.push_back(t);
        if (!analysis::dbf_dual_test(ts, members, options_).schedulable) {
          return std::nullopt;
        }
        return Candidate{};
      },
      [&](std::size_t t, const CoreChoice& choice) {
        engine.commit(t, choice.core);
      });
  outcome.success = !outcome.failed_task.has_value();
  return outcome;
}

}  // namespace mcs::partition
