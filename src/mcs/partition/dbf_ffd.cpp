#include "mcs/partition/dbf_ffd.hpp"

#include <stdexcept>

#include "mcs/core/contributions.hpp"

namespace mcs::partition {

PartitionResult DbfFfdPartitioner::run(const TaskSet& ts,
                                       std::size_t num_cores) const {
  if (ts.num_levels() != 2) {
    throw std::invalid_argument(
        "DbfFfdPartitioner: requires a dual-criticality task set");
  }
  PartitionResult r{.partition = Partition(ts, num_cores)};
  const std::vector<std::size_t> order = order_by_contribution_
                                             ? order_by_contribution(ts)
                                             : order_by_max_utilization(ts);
  for (std::size_t t : order) {
    std::size_t chosen = kUnassigned;
    for (std::size_t m = 0; m < num_cores; ++m) {
      ++r.probes;
      std::vector<std::size_t> members = r.partition.tasks_on(m);
      members.push_back(t);
      if (analysis::dbf_dual_test(ts, members, options_).schedulable) {
        chosen = m;
        break;
      }
    }
    if (chosen == kUnassigned) {
      r.failed_task = t;
      r.success = false;
      return r;
    }
    r.partition.assign(t, chosen);
  }
  r.success = true;
  return r;
}

}  // namespace mcs::partition
