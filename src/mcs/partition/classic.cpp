#include "mcs/partition/classic.hpp"

namespace mcs::partition {

std::optional<std::size_t> allocate_with_rule(
    analysis::PlacementEngine& engine, std::span<const std::size_t> order,
    FitRule rule, TestStrength strength) {
  const bool basic_only = strength == TestStrength::kBasicOnly;
  const SelectionRule selection = rule == FitRule::kFirst
                                      ? SelectionRule::kFirstFeasible
                                      : SelectionRule::kMinKey;
  return place_in_order(
      order, engine.num_cores(), selection, 0.0,
      [&](std::size_t t, std::size_t m) -> std::optional<Candidate> {
        const bool ok = basic_only ? engine.probe_fits_basic(t, m)
                                   : engine.probe_fits(t, m);
        if (!ok) return std::nullopt;
        if (rule == FitRule::kFirst) return Candidate{};
        // Best fit wants the highest load; negate so the shared min-key
        // selection picks it (IEEE negation is exact, so ties still break
        // toward the smaller core index).
        const double load = engine.load(m);
        return Candidate{rule == FitRule::kBest ? -load : load};
      },
      [&](std::size_t t, const CoreChoice& choice) {
        engine.commit(t, choice.core);
      });
}

PlacementOutcome ClassicPartitioner::run_on(
    analysis::PlacementEngine& engine) const {
  const std::vector<std::size_t> order =
      order_by_max_utilization(engine.taskset());
  PlacementOutcome outcome;
  outcome.failed_task = allocate_with_rule(engine, order, rule_, strength_);
  outcome.success = !outcome.failed_task.has_value();
  return outcome;
}

std::string ClassicPartitioner::name() const {
  std::string base = "classic";
  switch (rule_) {
    case FitRule::kFirst:
      base = "FFD";
      break;
    case FitRule::kBest:
      base = "BFD";
      break;
    case FitRule::kWorst:
      base = "WFD";
      break;
  }
  if (strength_ == TestStrength::kBasicOnly) base += "/eq4";
  return base;
}

}  // namespace mcs::partition
