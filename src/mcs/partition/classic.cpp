#include "mcs/partition/classic.hpp"

namespace mcs::partition {

std::optional<std::size_t> allocate_with_rule(
    Partition& partition, const std::vector<std::size_t>& order, FitRule rule,
    std::size_t& probes, TestStrength strength) {
  const std::size_t cores = partition.num_cores();
  const bool basic_only = strength == TestStrength::kBasicOnly;
  for (std::size_t t : order) {
    std::size_t chosen = kUnassigned;
    double chosen_load = 0.0;
    for (std::size_t m = 0; m < cores; ++m) {
      const bool ok = basic_only ? fits_basic_only(partition, t, m, probes)
                                 : fits(partition, t, m, probes);
      if (!ok) continue;
      if (rule == FitRule::kFirst) {
        chosen = m;
        break;
      }
      const double load = partition.utils_on(m).own_level_sum();
      const bool better =
          chosen == kUnassigned ||
          (rule == FitRule::kBest ? load > chosen_load : load < chosen_load);
      if (better) {
        chosen = m;
        chosen_load = load;
      }
    }
    if (chosen == kUnassigned) return t;
    partition.assign(t, chosen);
  }
  return std::nullopt;
}

PartitionResult ClassicPartitioner::run(const TaskSet& ts,
                                        std::size_t num_cores) const {
  PartitionResult r{.partition = Partition(ts, num_cores)};
  const std::vector<std::size_t> order = order_by_max_utilization(ts);
  r.failed_task =
      allocate_with_rule(r.partition, order, rule_, r.probes, strength_);
  r.success = !r.failed_task.has_value();
  return r;
}

std::string ClassicPartitioner::name() const {
  std::string base = "classic";
  switch (rule_) {
    case FitRule::kFirst:
      base = "FFD";
      break;
    case FitRule::kBest:
      base = "BFD";
      break;
    case FitRule::kWorst:
      base = "WFD";
      break;
  }
  if (strength_ == TestStrength::kBasicOnly) base += "/eq4";
  return base;
}

}  // namespace mcs::partition
