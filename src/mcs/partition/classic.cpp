#include "mcs/partition/classic.hpp"

#include "mcs/obs/trace.hpp"

namespace mcs::partition {

namespace {
constexpr obs::TraceSite kPlaceSite{"classic.place", "tasks", "cores"};
}  // namespace

std::optional<std::size_t> allocate_with_rule(
    analysis::PlacementEngine& engine, std::span<const std::size_t> order,
    FitRule rule, TestStrength strength) {
  const bool basic_only = strength == TestStrength::kBasicOnly;
  const SelectionRule selection = rule == FitRule::kFirst
                                      ? SelectionRule::kFirstFeasible
                                      : SelectionRule::kMinKey;
  return place_in_order_batched(
      order, engine.num_cores(), selection, 0.0,
      [&](std::size_t t, std::span<Candidate> candidates,
          std::span<unsigned char> feasible) {
        // One batched Eq. (4)/Theorem-1 accept mask over all cores.
        if (basic_only) {
          engine.probe_fits_basic_all(t, feasible);
        } else {
          engine.probe_fits_all(t, feasible);
        }
        if (rule == FitRule::kFirst) return;  // keys are never consulted
        for (std::size_t m = 0; m < feasible.size(); ++m) {
          if (!feasible[m]) continue;
          // Best fit wants the highest load; negate so the shared min-key
          // reduction picks it (IEEE negation is exact, so ties still break
          // toward the smaller core index).
          const double load = engine.load(m);
          candidates[m] = Candidate{rule == FitRule::kBest ? -load : load};
        }
      },
      [&](std::size_t t, const CoreChoice& choice) {
        engine.commit(t, choice.core);
      });
}

PlacementOutcome ClassicPartitioner::run_on(
    analysis::PlacementEngine& engine) const {
  const obs::ScopedSpan span(kPlaceSite, engine.taskset().size(),
                             engine.num_cores());
  const std::vector<std::size_t> order =
      order_by_max_utilization(engine.taskset());
  PlacementOutcome outcome;
  outcome.failed_task = allocate_with_rule(engine, order, rule_, strength_);
  outcome.success = !outcome.failed_task.has_value();
  return outcome;
}

std::string ClassicPartitioner::name() const {
  std::string base = "classic";
  switch (rule_) {
    case FitRule::kFirst:
      base = "FFD";
      break;
    case FitRule::kBest:
      base = "BFD";
      break;
    case FitRule::kWorst:
      base = "WFD";
      break;
  }
  if (strength_ == TestStrength::kBasicOnly) base += "/eq4";
  return base;
}

}  // namespace mcs::partition
