#include "mcs/partition/partitioner.hpp"

namespace mcs::partition {

PartitionResult Partitioner::run(const TaskSet& ts,
                                 std::size_t num_cores) const {
  analysis::PlacementEngine engine(ts, num_cores);
  const PlacementOutcome outcome = run_on(engine);
  const std::size_t probes = engine.probes();
  return PartitionResult{.partition = std::move(engine).take_partition(),
                         .success = outcome.success,
                         .failed_task = outcome.failed_task,
                         .probes = probes};
}

}  // namespace mcs::partition
