#include "mcs/partition/partitioner.hpp"

namespace mcs::partition {

CoreChoice reduce_core_choice(std::span<const Candidate> candidates,
                              std::span<const unsigned char> feasible,
                              SelectionRule rule, double tie_eps) {
  CoreChoice best;
  for (std::size_t m = 0; m < candidates.size(); ++m) {
    if (!feasible[m]) continue;
    if (rule == SelectionRule::kFirstFeasible) {
      best = CoreChoice{m, candidates[m].key, candidates[m].payload};
      break;
    }
    if (candidates[m].key < best.key - tie_eps) {
      best = CoreChoice{m, candidates[m].key, candidates[m].payload};
    }
  }
  return best;
}

PartitionResult Partitioner::run(const TaskSet& ts,
                                 std::size_t num_cores) const {
  analysis::PlacementEngine engine(ts, num_cores);
  const PlacementOutcome outcome = run_on(engine);
  const std::size_t probes = engine.probes();
  return PartitionResult{.partition = std::move(engine).take_partition(),
                         .success = outcome.success,
                         .failed_task = outcome.failed_task,
                         .probes = probes};
}

}  // namespace mcs::partition
