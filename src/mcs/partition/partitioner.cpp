#include "mcs/partition/partitioner.hpp"

#include "mcs/analysis/edfvd.hpp"

namespace mcs::partition {

bool fits(const Partition& partition, std::size_t task_index, std::size_t core,
          std::size_t& probes) {
  ++probes;
  UtilMatrix hypothetical = partition.utils_on(core);
  hypothetical.add(partition.taskset()[task_index]);
  if (analysis::basic_test(hypothetical)) return true;
  return analysis::improved_test(hypothetical).schedulable;
}

bool fits_basic_only(const Partition& partition, std::size_t task_index,
                     std::size_t core, std::size_t& probes) {
  ++probes;
  UtilMatrix hypothetical = partition.utils_on(core);
  hypothetical.add(partition.taskset()[task_index]);
  return analysis::basic_test(hypothetical);
}

}  // namespace mcs::partition
