// UD-TPA: utilization-difference-based task partitioning (in the spirit of
// Ramanathan & Easwaran, arXiv 2003.05445).
//
// The driving observation: what strains a mixed-criticality core is not a
// task's own-level utilization but the *spread* between its levels — a task
// whose HI budget dwarfs its LO budget inflates the high-level terms of
// every Eq. (8)/(9) condition on its core.  UD-TPA therefore splits
// placement into two phases:
//
//   1. multi-level tasks (level >= 2), ordered by decreasing utilization
//      difference diff_i = u_i(l_i) - u_i(1) (ties: decreasing u_i(l_i),
//      then index), each placed on the feasible core with the smallest
//      accumulated difference load — worst-fit on the spread, so no core
//      concentrates the mode-switch overload;
//   2. single-level tasks, ordered by decreasing u_i(1), worst-fit on the
//      classical Eq. (4) load — they only fill LO-mode capacity.
//
// Both phases ride the shared place_in_order_batched skeleton.  The
// acceptance gate is selectable (the scheme-grammar forms in brackets):
//   * kTheorem1 ["UD-TPA"]     — Eq. (4) fast path, Theorem 1 fallback,
//                                via the batched SoA probe_fits_all;
//   * kEq4     ["UD-TPA/eq4"]  — Eq. (4) only, batched;
//   * kGe      ["UD-TPA/ge"]   — the credited demand-bound test of
//                                analysis/ge_test.hpp (dual-criticality
//                                only; scalar per-core probes).
#pragma once

#include "mcs/analysis/ge_test.hpp"
#include "mcs/partition/partitioner.hpp"

namespace mcs::partition {

enum class UdGate {
  kTheorem1,  ///< Eq. (4) then Theorem 1 (the repo's default gate)
  kEq4,       ///< Eq. (4) only (test-strength ablation)
  kGe,        ///< analysis::ge_dual_test (dual-criticality only)
};

class UdTpaPartitioner final : public Partitioner {
 public:
  explicit UdTpaPartitioner(UdGate gate = UdGate::kTheorem1,
                            analysis::GeOptions ge_options = {})
      : gate_(gate), ge_options_(ge_options) {}

  /// The kGe gate requires ts.num_levels() == 2; throws
  /// std::invalid_argument otherwise.  kTheorem1/kEq4 accept any K.
  [[nodiscard]] PlacementOutcome run_on(
      analysis::PlacementEngine& engine) const override;

  [[nodiscard]] std::string name() const override {
    switch (gate_) {
      case UdGate::kEq4:
        return "UD-TPA/eq4";
      case UdGate::kGe:
        return "UD-TPA/ge";
      case UdGate::kTheorem1:
        break;
    }
    return "UD-TPA";
  }

 private:
  UdGate gate_;
  analysis::GeOptions ge_options_;
};

}  // namespace mcs::partition
