#include "mcs/partition/ge_ffd.hpp"

#include <algorithm>
#include <stdexcept>

#include "mcs/core/contributions.hpp"
#include "mcs/obs/trace.hpp"

namespace mcs::partition {

namespace {
constexpr obs::TraceSite kPlaceSite{"ge_ffd.place", "tasks", "cores"};
}  // namespace

PlacementOutcome GeFfdPartitioner::run_on(
    analysis::PlacementEngine& engine) const {
  const TaskSet& ts = engine.taskset();
  const obs::ScopedSpan span(kPlaceSite, ts.size(), engine.num_cores());
  if (ts.num_levels() != 2) {
    throw std::invalid_argument(
        "GeFfdPartitioner: requires a dual-criticality task set");
  }
  const std::vector<std::size_t> order = order_by_max_utilization(ts);
  std::vector<std::size_t> members;  // reused across probes
  PlacementOutcome outcome;
  // Like DBF-FFD, the GE test works off member lists, not the utilization
  // planes, so the fill loops cores with the scalar test (count_probe per
  // core attempted) and early-exits at the first feasible core.
  outcome.failed_task = place_in_order_batched(
      order, engine.num_cores(), SelectionRule::kFirstFeasible, 0.0,
      [&](std::size_t t, std::span<Candidate> /*candidates*/,
          std::span<unsigned char> feasible) {
        std::fill(feasible.begin(), feasible.end(),
                  static_cast<unsigned char>(0));
        for (std::size_t m = 0; m < feasible.size(); ++m) {
          engine.count_probe();
          members = engine.partition().tasks_on(m);
          members.push_back(t);
          if (!analysis::ge_dual_test(ts, members, options_).schedulable) {
            continue;
          }
          feasible[m] = 1;
          break;  // first feasible wins; later cores are never probed
        }
      },
      [&](std::size_t t, const CoreChoice& choice) {
        engine.commit(t, choice.core);
      });
  outcome.success = !outcome.failed_task.has_value();
  return outcome;
}

}  // namespace mcs::partition
