// CA-TPA: Criticality-Aware Task Partitioning Algorithm (paper Sec. III).
//
// Tasks are processed in decreasing utilization-contribution order.  Each
// task is probed on every core; the core whose core utilization U^{Psi_m}
// (Eq. 9) would grow by the smallest increment (Eq. 14-15) receives the
// task, provided the improved EDF-VD test still holds there.  Ties go to the
// smaller core index.
//
// Workload-imbalance control (Sec. III-C): before placing a task, the
// current imbalance factor Lambda = (U_sys - U_min) / U_sys is computed; if
// Lambda >= alpha, the task instead goes to the feasible core with the
// minimum current utilization (WFD-like), re-balancing the partition.
//
// Options expose the ablation axes studied in bench/:
//   * ordering key (contribution vs classical max-utilization),
//   * imbalance threshold on/off and its alpha,
//   * probe policy (Eq. 9b max, or the min variant).
#pragma once

#include "mcs/analysis/metrics.hpp"
#include "mcs/partition/partitioner.hpp"

namespace mcs::partition {

struct CaTpaOptions {
  /// Threshold alpha for the imbalance fallback.  Default from the paper's
  /// simulation defaults (Sec. IV-A).
  double alpha = 0.7;
  /// Disable the imbalance fallback entirely (ablation A1).
  bool use_imbalance_control = true;
  /// Order by contribution (paper) or by max utilization (ablation A2).
  bool order_by_contribution = true;
  /// Eq. (9b) policy for folding conditions into a utilization (ablation A3).
  analysis::ProbePolicy probe_policy = analysis::ProbePolicy::kMinOverFeasible;
  /// Extension (beyond the paper): when a task fits on no core, attempt a
  /// single-migration repair — move one already-placed task to another core
  /// to make room.  Names the scheme "CA-TPA-R".
  bool enable_repair = false;
  /// Custom display name; empty selects an automatic one.
  std::string display_name;
};

class CaTpaPartitioner final : public Partitioner {
 public:
  explicit CaTpaPartitioner(CaTpaOptions options = {});

  [[nodiscard]] PlacementOutcome run_on(
      analysis::PlacementEngine& engine) const override;
  [[nodiscard]] std::string name() const override { return name_; }

  [[nodiscard]] const CaTpaOptions& options() const noexcept {
    return options_;
  }

 private:
  CaTpaOptions options_;
  std::string name_;
};

}  // namespace mcs::partition
