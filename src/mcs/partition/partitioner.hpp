// Partitioner interface and shared machinery.
//
// A Partitioner maps a TaskSet onto M cores such that every core passes the
// EDF-VD schedulability test (Eq. 4 fast path, Theorem 1 full test).  All
// schemes in the paper fit a two-step template: (a) order the tasks, (b) pick
// a target core per task.  Step (b) is factored into one shared skeleton:
// the task loop issues ONE batched all-cores probe per task (filling a
// per-core Candidate vector and a feasibility mask) and reduces the result
// vector to a core choice — place_in_order_batched()/reduce_core_choice()
// below — parameterized by a fill functor (which feasibility test gates a
// placement and what selection key it yields) and a selection rule (first
// feasible vs. minimum key); all probing state lives in an
// analysis::PlacementEngine.
//
// The scalar loop-over-cores skeleton (select_core()/place_in_order()) is
// kept as the reference implementation: reduce_core_choice() makes exactly
// the decisions select_core() makes on the same candidates, and the batched
// engine probes are bit-identical to the scalar ones, so both skeletons
// produce the same partitions (golden parity + probe-parity fuzz target).
#pragma once

#include <cassert>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "mcs/analysis/placement.hpp"
#include "mcs/core/contributions.hpp"
#include "mcs/core/partition.hpp"

namespace mcs::partition {

/// Outcome of one partitioning attempt.
struct PartitionResult {
  /// The (complete, feasible) partition on success; a partial partition up
  /// to the first unplaceable task on failure.
  Partition partition;
  bool success = false;
  /// Index of the first task that could not be placed (only on failure).
  std::optional<std::size_t> failed_task;
  /// Number of feasibility probes performed (for complexity studies).
  std::size_t probes = 0;
};

/// Outcome of running a scheme against an externally-owned PlacementEngine
/// (the partition and probe count stay inside the engine; harnesses that
/// recycle engines read them from there).
struct PlacementOutcome {
  bool success = false;
  std::optional<std::size_t> failed_task;
};

class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Attempts to partition `ts` over `num_cores` cores.  Convenience
  /// wrapper: binds a fresh engine, delegates to run_on, and moves the
  /// partition into the result.
  [[nodiscard]] PartitionResult run(const TaskSet& ts,
                                    std::size_t num_cores) const;

  /// Runs the scheme on an engine already bound (via reset) to the task set
  /// and core count.  Hot path for harnesses that reuse engine state across
  /// trials.
  [[nodiscard]] virtual PlacementOutcome run_on(
      analysis::PlacementEngine& engine) const = 0;

  /// Short display name ("CA-TPA", "FFD", ...).
  [[nodiscard]] virtual std::string name() const = 0;
};

/// A feasible placement option for one (task, core) pair as seen by the
/// shared core-scan: its selection key (lower wins) plus one scheme-specific
/// datum carried through to the commit step (CA-TPA stores the probed core
/// utilization so the cache can be updated without re-probing).
struct Candidate {
  double key = 0.0;
  double payload = 0.0;
};

/// The winning core of one scan (kUnassigned when no core was feasible).
struct CoreChoice {
  std::size_t core = kUnassigned;
  double key = std::numeric_limits<double>::infinity();
  double payload = 0.0;
};

enum class SelectionRule {
  kFirstFeasible,  ///< lowest-index feasible core, scan stops there
  kMinKey,         ///< feasible core with the smallest key; ties (within
                   ///< `tie_eps`) go to the smaller core index
};

/// Scans cores 0..num_cores-1 with `probe(m) -> std::optional<Candidate>`
/// (nullopt = infeasible) and picks per `rule`.  The one core-scan loop
/// every partitioner shares; probe counting happens inside the probe
/// functor (normally via PlacementEngine).
template <typename ProbeFn>
[[nodiscard]] CoreChoice select_core(std::size_t num_cores, SelectionRule rule,
                                     double tie_eps, ProbeFn&& probe) {
  CoreChoice best;
  for (std::size_t m = 0; m < num_cores; ++m) {
    const std::optional<Candidate> candidate = probe(m);
    if (!candidate) continue;
    if (rule == SelectionRule::kFirstFeasible) {
      best = CoreChoice{m, candidate->key, candidate->payload};
      break;
    }
    if (candidate->key < best.key - tie_eps) {
      best = CoreChoice{m, candidate->key, candidate->payload};
    }
  }
  return best;
}

/// The scalar order-then-place loop (reference implementation): for each
/// task of `order`, selects a core via select_core and commits it with
/// `place(task, choice)`.  Returns the first unplaceable task, or nullopt
/// when every task was placed.
template <typename ProbeFn, typename PlaceFn>
std::optional<std::size_t> place_in_order(std::span<const std::size_t> order,
                                          std::size_t num_cores,
                                          SelectionRule rule, double tie_eps,
                                          ProbeFn&& probe, PlaceFn&& place) {
  for (const std::size_t t : order) {
    const CoreChoice choice = select_core(
        num_cores, rule, tie_eps,
        [&](std::size_t m) { return probe(t, m); });
    if (choice.core == kUnassigned) return t;
    place(t, choice);
  }
  return std::nullopt;
}

/// Reduces a batched probe's result vector to a core choice: core m is
/// usable when feasible[m] != 0, its key/payload sit in candidates[m].
/// Decision-for-decision identical to select_core() over the same
/// candidates: first feasible stops at the lowest usable index; min-key
/// scans ascending and replaces the incumbent only when
/// key < best.key - tie_eps, so ties go to the smaller core index.
[[nodiscard]] CoreChoice reduce_core_choice(
    std::span<const Candidate> candidates,
    std::span<const unsigned char> feasible, SelectionRule rule,
    double tie_eps);

/// The batched order-then-place loop: for each task of `order`,
/// `fill(task, candidates, feasible)` performs ONE batched all-cores probe
/// (writing per-core keys/payloads and the feasibility mask), the result
/// vector is reduced via reduce_core_choice, and the winner is committed
/// with `place(task, choice)`.  Returns the first unplaceable task, or
/// nullopt when every task was placed.
template <typename FillFn, typename PlaceFn>
std::optional<std::size_t> place_in_order_batched(
    std::span<const std::size_t> order, std::size_t num_cores,
    SelectionRule rule, double tie_eps, FillFn&& fill, PlaceFn&& place) {
  std::vector<Candidate> candidates(num_cores);
  std::vector<unsigned char> feasible(num_cores, 0);
  for (const std::size_t t : order) {
    fill(t, std::span<Candidate>(candidates),
         std::span<unsigned char>(feasible));
    const CoreChoice choice =
        reduce_core_choice(candidates, feasible, rule, tie_eps);
    if (choice.core == kUnassigned) return t;
    place(t, choice);
  }
  return std::nullopt;
}

/// The 2-D (task x core) lookahead variant of place_in_order_batched: gates
/// a tile of upcoming tasks against every core in ONE 2-D batched probe,
/// then places the tile's tasks in order, patching staleness lazily.
///
/// A tile row is computed against the state at tile entry; a commit inside
/// the tile only changes the committed core's column.  Because every gate
/// this skeleton accepts is per-core pure (feasibility of (t, m) depends
/// only on core m's members and task t), a column that has not been
/// committed to since the tile gate is still exact, and a "dirty" column is
/// re-gated per task on demand via `regate` (which performs — and counts —
/// one fresh single-core probe):
///
///   * a dirty column is UNKNOWN (its stale bit is ignored: commits can
///     flip feasibility either way under Theorem 1, so no monotonicity is
///     assumed);
///   * the reduce treats unknowns as potential winners and resolves one
///     whenever it would win, re-reducing after each resolution — at most
///     num_cores() resolutions per task;
///   * kMinKey with tie_eps == 0 is a pure smallest-index argmin, which is
///     insensitive to unknown losers, so the lazy schedule reproduces
///     reduce_core_choice over fully-fresh rows decision-for-decision.
///     (tie_eps > 0 makes the reference scan order-dependent and is
///     rejected by assert; schemes that need it stay on the 1-D skeleton.)
///
/// `keys(t, candidates)` must fill fresh selection keys (they are
/// maintained by the caller, outside the probes, so they are never stale);
/// `gate_tile(tasks, rows)` writes the task-major tile feasibility mask
/// (tasks.size() rows of num_cores bytes) with one 2-D engine probe.
/// Probe accounting: the tile gate charges tasks x cores up front (see
/// PlacementEngine::probe_fits_all_2d) and each resolution charges one
/// probe, so probe counts differ from the 1-D skeleton's; partitions do
/// not.
template <typename GateTileFn, typename RegateFn, typename KeysFn,
          typename PlaceFn>
std::optional<std::size_t> place_in_order_batched_2d(
    std::span<const std::size_t> order, std::size_t num_cores,
    SelectionRule rule, double tie_eps, GateTileFn&& gate_tile,
    RegateFn&& regate, KeysFn&& keys, PlaceFn&& place) {
  assert(tie_eps == 0.0 &&
         "place_in_order_batched_2d: lazy lookahead requires exact argmin");
  (void)tie_eps;
  constexpr std::size_t kTile = analysis::kBatchProbeTileTasks;
  std::vector<Candidate> candidates(num_cores);
  std::vector<unsigned char> rows(kTile * num_cores, 0);
  std::vector<unsigned char> dirty(num_cores, 0);
  // Per-task column state: 0 = infeasible, 1 = feasible (both fresh),
  // 2 = unknown (dirty since the tile gate, not yet re-gated for this task).
  std::vector<unsigned char> status(num_cores, 0);

  for (std::size_t t0 = 0; t0 < order.size(); t0 += kTile) {
    const std::size_t tile = std::min(kTile, order.size() - t0);
    gate_tile(order.subspan(t0, tile),
              std::span<unsigned char>(rows.data(), tile * num_cores));
    std::fill(dirty.begin(), dirty.end(), 0);
    for (std::size_t i = 0; i < tile; ++i) {
      const std::size_t t = order[t0 + i];
      const unsigned char* row = rows.data() + i * num_cores;
      keys(t, std::span<Candidate>(candidates));
      for (std::size_t m = 0; m < num_cores; ++m) {
        status[m] = dirty[m] ? 2 : (row[m] != 0 ? 1 : 0);
      }
      CoreChoice choice;
      if (rule == SelectionRule::kFirstFeasible) {
        // Resolve unknowns in index order: the first fresh-feasible column
        // with no unresolved smaller index is exactly the reference winner.
        for (std::size_t m = 0; m < num_cores; ++m) {
          if (status[m] == 2) status[m] = regate(t, m) ? 1 : 0;
          if (status[m] == 1) {
            choice = CoreChoice{m, candidates[m].key, candidates[m].payload};
            break;
          }
        }
      } else {
        // Smallest-index argmin over fresh-feasible + unknown columns;
        // accept a fresh winner, resolve an unknown one and re-reduce.
        for (;;) {
          std::size_t win = kUnassigned;
          double win_key = std::numeric_limits<double>::infinity();
          for (std::size_t m = 0; m < num_cores; ++m) {
            if (status[m] == 0) continue;
            if (candidates[m].key < win_key) {
              win = m;
              win_key = candidates[m].key;
            }
          }
          if (win == kUnassigned) break;
          if (status[win] == 1) {
            choice = CoreChoice{win, candidates[win].key,
                                candidates[win].payload};
            break;
          }
          status[win] = regate(t, win) ? 1 : 0;
        }
      }
      if (choice.core == kUnassigned) return t;
      place(t, choice);
      dirty[choice.core] = 1;
    }
  }
  return std::nullopt;
}

}  // namespace mcs::partition
