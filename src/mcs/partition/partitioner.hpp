// Partitioner interface and shared machinery.
//
// A Partitioner maps a TaskSet onto M cores such that every core passes the
// EDF-VD schedulability test (Eq. 4 fast path, Theorem 1 full test).  All
// schemes in the paper fit a two-step template: (a) order the tasks, (b) pick
// a target core per task.  Step (b) is factored into one shared core-scan —
// select_core()/place_in_order() below — parameterized by a probe functor
// (which feasibility test gates a placement and what selection key it
// yields) and a selection rule (first feasible vs. minimum key); all probing
// state lives in an analysis::PlacementEngine.
#pragma once

#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "mcs/analysis/placement.hpp"
#include "mcs/core/contributions.hpp"
#include "mcs/core/partition.hpp"

namespace mcs::partition {

/// Outcome of one partitioning attempt.
struct PartitionResult {
  /// The (complete, feasible) partition on success; a partial partition up
  /// to the first unplaceable task on failure.
  Partition partition;
  bool success = false;
  /// Index of the first task that could not be placed (only on failure).
  std::optional<std::size_t> failed_task;
  /// Number of feasibility probes performed (for complexity studies).
  std::size_t probes = 0;
};

/// Outcome of running a scheme against an externally-owned PlacementEngine
/// (the partition and probe count stay inside the engine; harnesses that
/// recycle engines read them from there).
struct PlacementOutcome {
  bool success = false;
  std::optional<std::size_t> failed_task;
};

class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Attempts to partition `ts` over `num_cores` cores.  Convenience
  /// wrapper: binds a fresh engine, delegates to run_on, and moves the
  /// partition into the result.
  [[nodiscard]] PartitionResult run(const TaskSet& ts,
                                    std::size_t num_cores) const;

  /// Runs the scheme on an engine already bound (via reset) to the task set
  /// and core count.  Hot path for harnesses that reuse engine state across
  /// trials.
  [[nodiscard]] virtual PlacementOutcome run_on(
      analysis::PlacementEngine& engine) const = 0;

  /// Short display name ("CA-TPA", "FFD", ...).
  [[nodiscard]] virtual std::string name() const = 0;
};

/// A feasible placement option for one (task, core) pair as seen by the
/// shared core-scan: its selection key (lower wins) plus one scheme-specific
/// datum carried through to the commit step (CA-TPA stores the probed core
/// utilization so the cache can be updated without re-probing).
struct Candidate {
  double key = 0.0;
  double payload = 0.0;
};

/// The winning core of one scan (kUnassigned when no core was feasible).
struct CoreChoice {
  std::size_t core = kUnassigned;
  double key = std::numeric_limits<double>::infinity();
  double payload = 0.0;
};

enum class SelectionRule {
  kFirstFeasible,  ///< lowest-index feasible core, scan stops there
  kMinKey,         ///< feasible core with the smallest key; ties (within
                   ///< `tie_eps`) go to the smaller core index
};

/// Scans cores 0..num_cores-1 with `probe(m) -> std::optional<Candidate>`
/// (nullopt = infeasible) and picks per `rule`.  The one core-scan loop
/// every partitioner shares; probe counting happens inside the probe
/// functor (normally via PlacementEngine).
template <typename ProbeFn>
[[nodiscard]] CoreChoice select_core(std::size_t num_cores, SelectionRule rule,
                                     double tie_eps, ProbeFn&& probe) {
  CoreChoice best;
  for (std::size_t m = 0; m < num_cores; ++m) {
    const std::optional<Candidate> candidate = probe(m);
    if (!candidate) continue;
    if (rule == SelectionRule::kFirstFeasible) {
      best = CoreChoice{m, candidate->key, candidate->payload};
      break;
    }
    if (candidate->key < best.key - tie_eps) {
      best = CoreChoice{m, candidate->key, candidate->payload};
    }
  }
  return best;
}

/// The shared order-then-place loop: for each task of `order`, selects a
/// core via select_core and commits it with `place(task, choice)`.  Returns
/// the first unplaceable task, or nullopt when every task was placed.
template <typename ProbeFn, typename PlaceFn>
std::optional<std::size_t> place_in_order(std::span<const std::size_t> order,
                                          std::size_t num_cores,
                                          SelectionRule rule, double tie_eps,
                                          ProbeFn&& probe, PlaceFn&& place) {
  for (const std::size_t t : order) {
    const CoreChoice choice = select_core(
        num_cores, rule, tie_eps,
        [&](std::size_t m) { return probe(t, m); });
    if (choice.core == kUnassigned) return t;
    place(t, choice);
  }
  return std::nullopt;
}

}  // namespace mcs::partition
