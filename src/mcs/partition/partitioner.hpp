// Partitioner interface and shared machinery.
//
// A Partitioner maps a TaskSet onto M cores such that every core passes the
// EDF-VD schedulability test (Eq. 4 fast path, Theorem 1 full test).  All
// schemes in the paper fit a two-step template: (a) order the tasks, (b) pick
// a target core per task.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mcs/analysis/core_util.hpp"
#include "mcs/core/contributions.hpp"
#include "mcs/core/partition.hpp"

namespace mcs::partition {

/// Outcome of one partitioning attempt.
struct PartitionResult {
  /// The (complete, feasible) partition on success; a partial partition up
  /// to the first unplaceable task on failure.
  Partition partition;
  bool success = false;
  /// Index of the first task that could not be placed (only on failure).
  std::optional<std::size_t> failed_task;
  /// Number of feasibility probes performed (for complexity studies).
  std::size_t probes = 0;
};

class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Attempts to partition `ts` over `num_cores` cores.
  [[nodiscard]] virtual PartitionResult run(const TaskSet& ts,
                                            std::size_t num_cores) const = 0;

  /// Short display name ("CA-TPA", "FFD", ...).
  [[nodiscard]] virtual std::string name() const = 0;
};

/// True when core `core` of `partition` can feasibly accept task
/// `task_index`: the cheap Eq. (4) test first, Theorem 1 as fallback — the
/// exact order the paper prescribes for the baseline heuristics.
/// Increments `probes`.
[[nodiscard]] bool fits(const Partition& partition, std::size_t task_index,
                        std::size_t core, std::size_t& probes);

/// Like fits(), but restricted to the Eq. (4) test (ablation A4).
[[nodiscard]] bool fits_basic_only(const Partition& partition,
                                   std::size_t task_index, std::size_t core,
                                   std::size_t& probes);

}  // namespace mcs::partition
