// Partitioner interface and shared machinery.
//
// A Partitioner maps a TaskSet onto M cores such that every core passes the
// EDF-VD schedulability test (Eq. 4 fast path, Theorem 1 full test).  All
// schemes in the paper fit a two-step template: (a) order the tasks, (b) pick
// a target core per task.  Step (b) is factored into one shared skeleton:
// the task loop issues ONE batched all-cores probe per task (filling a
// per-core Candidate vector and a feasibility mask) and reduces the result
// vector to a core choice — place_in_order_batched()/reduce_core_choice()
// below — parameterized by a fill functor (which feasibility test gates a
// placement and what selection key it yields) and a selection rule (first
// feasible vs. minimum key); all probing state lives in an
// analysis::PlacementEngine.
//
// The scalar loop-over-cores skeleton (select_core()/place_in_order()) is
// kept as the reference implementation: reduce_core_choice() makes exactly
// the decisions select_core() makes on the same candidates, and the batched
// engine probes are bit-identical to the scalar ones, so both skeletons
// produce the same partitions (golden parity + probe-parity fuzz target).
#pragma once

#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "mcs/analysis/placement.hpp"
#include "mcs/core/contributions.hpp"
#include "mcs/core/partition.hpp"

namespace mcs::partition {

/// Outcome of one partitioning attempt.
struct PartitionResult {
  /// The (complete, feasible) partition on success; a partial partition up
  /// to the first unplaceable task on failure.
  Partition partition;
  bool success = false;
  /// Index of the first task that could not be placed (only on failure).
  std::optional<std::size_t> failed_task;
  /// Number of feasibility probes performed (for complexity studies).
  std::size_t probes = 0;
};

/// Outcome of running a scheme against an externally-owned PlacementEngine
/// (the partition and probe count stay inside the engine; harnesses that
/// recycle engines read them from there).
struct PlacementOutcome {
  bool success = false;
  std::optional<std::size_t> failed_task;
};

class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Attempts to partition `ts` over `num_cores` cores.  Convenience
  /// wrapper: binds a fresh engine, delegates to run_on, and moves the
  /// partition into the result.
  [[nodiscard]] PartitionResult run(const TaskSet& ts,
                                    std::size_t num_cores) const;

  /// Runs the scheme on an engine already bound (via reset) to the task set
  /// and core count.  Hot path for harnesses that reuse engine state across
  /// trials.
  [[nodiscard]] virtual PlacementOutcome run_on(
      analysis::PlacementEngine& engine) const = 0;

  /// Short display name ("CA-TPA", "FFD", ...).
  [[nodiscard]] virtual std::string name() const = 0;
};

/// A feasible placement option for one (task, core) pair as seen by the
/// shared core-scan: its selection key (lower wins) plus one scheme-specific
/// datum carried through to the commit step (CA-TPA stores the probed core
/// utilization so the cache can be updated without re-probing).
struct Candidate {
  double key = 0.0;
  double payload = 0.0;
};

/// The winning core of one scan (kUnassigned when no core was feasible).
struct CoreChoice {
  std::size_t core = kUnassigned;
  double key = std::numeric_limits<double>::infinity();
  double payload = 0.0;
};

enum class SelectionRule {
  kFirstFeasible,  ///< lowest-index feasible core, scan stops there
  kMinKey,         ///< feasible core with the smallest key; ties (within
                   ///< `tie_eps`) go to the smaller core index
};

/// Scans cores 0..num_cores-1 with `probe(m) -> std::optional<Candidate>`
/// (nullopt = infeasible) and picks per `rule`.  The one core-scan loop
/// every partitioner shares; probe counting happens inside the probe
/// functor (normally via PlacementEngine).
template <typename ProbeFn>
[[nodiscard]] CoreChoice select_core(std::size_t num_cores, SelectionRule rule,
                                     double tie_eps, ProbeFn&& probe) {
  CoreChoice best;
  for (std::size_t m = 0; m < num_cores; ++m) {
    const std::optional<Candidate> candidate = probe(m);
    if (!candidate) continue;
    if (rule == SelectionRule::kFirstFeasible) {
      best = CoreChoice{m, candidate->key, candidate->payload};
      break;
    }
    if (candidate->key < best.key - tie_eps) {
      best = CoreChoice{m, candidate->key, candidate->payload};
    }
  }
  return best;
}

/// The scalar order-then-place loop (reference implementation): for each
/// task of `order`, selects a core via select_core and commits it with
/// `place(task, choice)`.  Returns the first unplaceable task, or nullopt
/// when every task was placed.
template <typename ProbeFn, typename PlaceFn>
std::optional<std::size_t> place_in_order(std::span<const std::size_t> order,
                                          std::size_t num_cores,
                                          SelectionRule rule, double tie_eps,
                                          ProbeFn&& probe, PlaceFn&& place) {
  for (const std::size_t t : order) {
    const CoreChoice choice = select_core(
        num_cores, rule, tie_eps,
        [&](std::size_t m) { return probe(t, m); });
    if (choice.core == kUnassigned) return t;
    place(t, choice);
  }
  return std::nullopt;
}

/// Reduces a batched probe's result vector to a core choice: core m is
/// usable when feasible[m] != 0, its key/payload sit in candidates[m].
/// Decision-for-decision identical to select_core() over the same
/// candidates: first feasible stops at the lowest usable index; min-key
/// scans ascending and replaces the incumbent only when
/// key < best.key - tie_eps, so ties go to the smaller core index.
[[nodiscard]] CoreChoice reduce_core_choice(
    std::span<const Candidate> candidates,
    std::span<const unsigned char> feasible, SelectionRule rule,
    double tie_eps);

/// The batched order-then-place loop: for each task of `order`,
/// `fill(task, candidates, feasible)` performs ONE batched all-cores probe
/// (writing per-core keys/payloads and the feasibility mask), the result
/// vector is reduced via reduce_core_choice, and the winner is committed
/// with `place(task, choice)`.  Returns the first unplaceable task, or
/// nullopt when every task was placed.
template <typename FillFn, typename PlaceFn>
std::optional<std::size_t> place_in_order_batched(
    std::span<const std::size_t> order, std::size_t num_cores,
    SelectionRule rule, double tie_eps, FillFn&& fill, PlaceFn&& place) {
  std::vector<Candidate> candidates(num_cores);
  std::vector<unsigned char> feasible(num_cores, 0);
  for (const std::size_t t : order) {
    fill(t, std::span<Candidate>(candidates),
         std::span<unsigned char>(feasible));
    const CoreChoice choice =
        reduce_core_choice(candidates, feasible, rule, tie_eps);
    if (choice.core == kUnassigned) return t;
    place(t, choice);
  }
  return std::nullopt;
}

}  // namespace mcs::partition
