// Hybrid partitioner (Rodriguez et al. [28], generalized to K levels).
//
// High-criticality tasks (level >= 2) are allocated first with WFD to spread
// the critical workload, then the level-1 tasks are packed with FFD.  Within
// the high group, tasks are processed in decreasing criticality level and,
// within a level, decreasing maximum utilization; the low group is ordered
// by decreasing maximum utilization.  At K = 2 this is exactly the cited
// dual-criticality scheme.
#pragma once

#include "mcs/partition/partitioner.hpp"

namespace mcs::partition {

class HybridPartitioner final : public Partitioner {
 public:
  [[nodiscard]] PlacementOutcome run_on(
      analysis::PlacementEngine& engine) const override;
  [[nodiscard]] std::string name() const override { return "Hybrid"; }
};

}  // namespace mcs::partition
