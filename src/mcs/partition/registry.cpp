#include "mcs/partition/registry.hpp"

#include <stdexcept>

#include "mcs/partition/dbf_ffd.hpp"
#include "mcs/partition/fp_amc.hpp"

namespace mcs::partition {

PartitionerList paper_schemes(double alpha) {
  PartitionerList out;
  out.push_back(std::make_unique<ClassicPartitioner>(FitRule::kWorst));
  out.push_back(std::make_unique<ClassicPartitioner>(FitRule::kFirst));
  out.push_back(std::make_unique<ClassicPartitioner>(FitRule::kBest));
  out.push_back(std::make_unique<HybridPartitioner>());
  out.push_back(
      std::make_unique<CaTpaPartitioner>(CaTpaOptions{.alpha = alpha}));
  return out;
}

std::unique_ptr<Partitioner> make_scheme(const std::string& name,
                                         double alpha) {
  if (name == "WFD") {
    return std::make_unique<ClassicPartitioner>(FitRule::kWorst);
  }
  if (name == "FFD") {
    return std::make_unique<ClassicPartitioner>(FitRule::kFirst);
  }
  if (name == "BFD") {
    return std::make_unique<ClassicPartitioner>(FitRule::kBest);
  }
  if (name == "Hybrid") {
    return std::make_unique<HybridPartitioner>();
  }
  if (name == "CA-TPA") {
    return std::make_unique<CaTpaPartitioner>(CaTpaOptions{.alpha = alpha});
  }
  if (name == "CA-TPA-R") {
    return std::make_unique<CaTpaPartitioner>(
        CaTpaOptions{.alpha = alpha, .enable_repair = true});
  }
  if (name == "FP-AMC") {
    return std::make_unique<FpAmcPartitioner>();
  }
  if (name == "DBF-FFD") {
    return std::make_unique<DbfFfdPartitioner>();
  }
  throw std::invalid_argument("make_scheme: unknown scheme '" + name + "'");
}

}  // namespace mcs::partition
