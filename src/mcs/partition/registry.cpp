#include "mcs/partition/registry.hpp"

#include <stdexcept>

#include "mcs/partition/dbf_ffd.hpp"
#include "mcs/partition/fp_amc.hpp"
#include "mcs/partition/ge_ffd.hpp"
#include "mcs/partition/ud_tpa.hpp"

namespace mcs::partition {

PartitionerList paper_schemes(double alpha) {
  PartitionerList out;
  out.push_back(std::make_unique<ClassicPartitioner>(FitRule::kWorst));
  out.push_back(std::make_unique<ClassicPartitioner>(FitRule::kFirst));
  out.push_back(std::make_unique<ClassicPartitioner>(FitRule::kBest));
  out.push_back(std::make_unique<HybridPartitioner>());
  out.push_back(
      std::make_unique<CaTpaPartitioner>(CaTpaOptions{.alpha = alpha}));
  return out;
}

std::unique_ptr<Partitioner> make_scheme(const std::string& name,
                                         double alpha) {
  if (name == "WFD") {
    return std::make_unique<ClassicPartitioner>(FitRule::kWorst);
  }
  if (name == "FFD") {
    return std::make_unique<ClassicPartitioner>(FitRule::kFirst);
  }
  if (name == "BFD") {
    return std::make_unique<ClassicPartitioner>(FitRule::kBest);
  }
  if (name == "Hybrid") {
    return std::make_unique<HybridPartitioner>();
  }
  if (name == "CA-TPA") {
    return std::make_unique<CaTpaPartitioner>(CaTpaOptions{.alpha = alpha});
  }
  if (name == "CA-TPA-R") {
    return std::make_unique<CaTpaPartitioner>(
        CaTpaOptions{.alpha = alpha, .enable_repair = true});
  }
  if (name == "FP-AMC") {
    return std::make_unique<FpAmcPartitioner>();
  }
  if (name == "DBF-FFD") {
    return std::make_unique<DbfFfdPartitioner>();
  }
  if (name == "UD-TPA") {
    return std::make_unique<UdTpaPartitioner>();
  }
  if (name == "GE-FFD") {
    return std::make_unique<GeFfdPartitioner>();
  }
  throw std::invalid_argument("make_scheme: unknown scheme '" + name + "'");
}

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= s.size()) {
    const std::size_t end = s.find(sep, begin);
    if (end == std::string::npos) {
      out.push_back(s.substr(begin));
      break;
    }
    out.push_back(s.substr(begin, end - begin));
    begin = end + 1;
  }
  return out;
}

std::unique_ptr<Partitioner> make_catpa_spec(const std::string& spec,
                                             const std::string& inner,
                                             double alpha) {
  CaTpaOptions options{.alpha = alpha, .display_name = spec};
  for (const std::string& token : split(inner, ',')) {
    if (token.rfind("a=", 0) == 0) {
      std::size_t consumed = 0;
      options.alpha = std::stod(token.substr(2), &consumed);
      if (consumed != token.size() - 2) {
        throw std::invalid_argument("make_scheme_spec: bad alpha in '" + spec +
                                    "'");
      }
    } else if (token == "min") {
      options.probe_policy = analysis::ProbePolicy::kMinOverFeasible;
    } else if (token == "first") {
      options.probe_policy = analysis::ProbePolicy::kFirstFeasible;
    } else if (token == "max") {
      options.probe_policy = analysis::ProbePolicy::kMaxOverFeasible;
    } else if (token == "contrib") {
      options.order_by_contribution = true;
    } else if (token == "maxutil") {
      options.order_by_contribution = false;
    } else if (token == "nobal") {
      options.use_imbalance_control = false;
    } else if (token == "repair") {
      options.enable_repair = true;
    } else {
      throw std::invalid_argument("make_scheme_spec: unknown CA-TPA option '" +
                                  token + "' in '" + spec + "'");
    }
  }
  return std::make_unique<CaTpaPartitioner>(std::move(options));
}

}  // namespace

std::unique_ptr<Partitioner> make_scheme_spec(const std::string& spec,
                                              double alpha) {
  if (spec == "WFD/eq4") {
    return std::make_unique<ClassicPartitioner>(FitRule::kWorst,
                                                TestStrength::kBasicOnly);
  }
  if (spec == "FFD/eq4") {
    return std::make_unique<ClassicPartitioner>(FitRule::kFirst,
                                                TestStrength::kBasicOnly);
  }
  if (spec == "BFD/eq4") {
    return std::make_unique<ClassicPartitioner>(FitRule::kBest,
                                                TestStrength::kBasicOnly);
  }
  if (spec == "UD-TPA/eq4") {
    return std::make_unique<UdTpaPartitioner>(UdGate::kEq4);
  }
  if (spec == "UD-TPA/ge") {
    return std::make_unique<UdTpaPartitioner>(UdGate::kGe);
  }
  if (spec == "CA-TPA/noBal") {
    return std::make_unique<CaTpaPartitioner>(
        CaTpaOptions{.alpha = alpha, .use_imbalance_control = false});
  }
  if (spec.rfind("CA-TPA(", 0) == 0 && spec.back() == ')') {
    return make_catpa_spec(spec, spec.substr(7, spec.size() - 8), alpha);
  }
  return make_scheme(spec, alpha);
}

const std::vector<std::string>& registered_scheme_specs() {
  static const std::vector<std::string> specs = {
      "WFD",      "FFD",        "BFD",       "Hybrid",       "CA-TPA",
      "CA-TPA-R", "FP-AMC",     "DBF-FFD",   "UD-TPA",       "GE-FFD",
      "WFD/eq4",  "FFD/eq4",    "BFD/eq4",   "UD-TPA/eq4",   "UD-TPA/ge",
      "CA-TPA/noBal"};
  return specs;
}

PartitionerList make_scheme_list(const std::vector<std::string>& specs,
                                 double alpha) {
  PartitionerList out;
  out.reserve(specs.size());
  for (const std::string& spec : specs) {
    out.push_back(make_scheme_spec(spec, alpha));
  }
  return out;
}

}  // namespace mcs::partition
