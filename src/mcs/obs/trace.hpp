// Span-based tracing: a per-thread flight-recorder ring of timestamped
// events, exportable as Chrome trace-event JSON (loadable in Perfetto or
// chrome://tracing).
//
// Cost model, mirroring obs::metrics: every emission point is gated on one
// relaxed atomic flag that is off by default, so the disabled path is a
// load + predictable branch (no clock read, no ring access).  When enabled,
// a push is a handful of stores into a thread-local fixed-capacity ring —
// no allocation, no locking, no contention; the ring silently overwrites
// its oldest records, which is exactly the flight-recorder semantics the
// verify:: failure dumps want.  Sites are described by `TraceSite` objects
// with static-storage string literals, so records carry only pointers and
// small integers.
//
// Determinism caveat: timestamps and durations are wall-clock (steady
// clock, nanoseconds since a process-wide epoch) and therefore *not*
// deterministic.  Traces are diagnostics — they must never be persisted
// into checkpoint or artifact files that are compared byte-for-byte.
//
// Concurrency contract: rings are single-writer (the owning thread) and the
// record slots themselves are plain memory, so `collect_trace` /
// `chrome_trace_json` / `reset_trace` must only run while producer threads
// are quiescent (e.g. after `util::parallel_for` returned, or with tracing
// disabled).  Threads that exit return their ring to a free list, so the
// short-lived workers spawned by the Monte-Carlo thread pool reuse a
// bounded set of rings instead of growing the registry per sweep point.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mcs/util/json.hpp"

namespace mcs::obs {

namespace trace_detail {
inline std::atomic<bool> g_trace_enabled{false};
}  // namespace trace_detail

/// Whether trace sites record anything.  Relaxed: hot paths tolerate a
/// slightly stale view around the enable/disable edge.
[[nodiscard]] inline bool trace_enabled() noexcept {
  return trace_detail::g_trace_enabled.load(std::memory_order_relaxed);
}

inline void set_trace_enabled(bool on) noexcept {
  trace_detail::g_trace_enabled.store(on, std::memory_order_relaxed);
}

/// RAII toggle restoring the previous state (tools and tests).
class TraceEnabledGuard {
 public:
  explicit TraceEnabledGuard(bool on) noexcept : previous_(trace_enabled()) {
    set_trace_enabled(on);
  }
  ~TraceEnabledGuard() { set_trace_enabled(previous_); }
  TraceEnabledGuard(const TraceEnabledGuard&) = delete;
  TraceEnabledGuard& operator=(const TraceEnabledGuard&) = delete;

 private:
  bool previous_;
};

/// Static description of an emission site.  Must have static storage
/// duration (records keep the pointer): define as `constexpr` at namespace
/// scope in the instrumented .cpp.  `arg0..arg2` name the integer args in
/// the exported JSON; a null name drops the corresponding arg.
struct TraceSite {
  const char* name;
  const char* arg0 = nullptr;
  const char* arg1 = nullptr;
  const char* arg2 = nullptr;
};

enum class TraceKind : std::uint8_t {
  kSpan,     ///< duration event ("X"): ts_ns .. ts_ns + dur_ns
  kInstant,  ///< point event ("i")
  kCounter,  ///< sampled value ("C"); dur_ns carries the value
};

/// One ring slot: 56 bytes, trivially copyable.
struct TraceRecord {
  const TraceSite* site = nullptr;
  TraceKind kind = TraceKind::kInstant;
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;  ///< span duration, or counter value
  std::uint64_t a0 = 0;
  std::uint64_t a1 = 0;
  std::uint64_t a2 = 0;
};

/// Fixed-capacity single-writer ring.  `push` never allocates or blocks;
/// once full it overwrites the oldest record.  The head index is atomic so
/// a collector can read a consistent count, but slots are plain memory —
/// see the quiescence contract in the file comment.
class TraceRing {
 public:
  static constexpr std::size_t kCapacity = 4096;  // power of two
  static_assert((kCapacity & (kCapacity - 1)) == 0);

  explicit TraceRing(std::size_t track) noexcept : track_(track) {}

  void push(const TraceRecord& record) noexcept {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    records_[head & (kCapacity - 1)] = record;
    head_.store(head + 1, std::memory_order_release);
  }

  /// Total records ever pushed (≥ the number retained).
  [[nodiscard]] std::uint64_t pushed() const noexcept {
    return head_.load(std::memory_order_acquire);
  }

  /// Stable per-ring id; becomes the `tid` in the Chrome export.
  [[nodiscard]] std::size_t track() const noexcept { return track_; }

  /// Copies the retained records, oldest first.
  void snapshot(std::vector<TraceRecord>& out) const;

  void clear() noexcept { head_.store(0, std::memory_order_relaxed); }

 private:
  std::vector<TraceRecord> records_ = std::vector<TraceRecord>(kCapacity);
  std::atomic<std::uint64_t> head_{0};
  std::size_t track_;
};

/// This thread's ring; registers (or reuses a returned ring) on first use.
[[nodiscard]] TraceRing& local_trace_ring();

/// Nanoseconds on the steady clock since a process-wide epoch (latched on
/// first call, so all threads share one timeline).
[[nodiscard]] std::uint64_t trace_now_ns() noexcept;

namespace trace_detail {
/// Out-of-line slow path: stamps nothing, just pushes to the local ring.
void emit(TraceKind kind, const TraceSite& site, std::uint64_t ts_ns,
          std::uint64_t dur_ns, std::uint64_t a0, std::uint64_t a1,
          std::uint64_t a2) noexcept;
}  // namespace trace_detail

inline void trace_instant(const TraceSite& site, std::uint64_t a0 = 0,
                          std::uint64_t a1 = 0, std::uint64_t a2 = 0) noexcept {
  if (!trace_enabled()) return;
  trace_detail::emit(TraceKind::kInstant, site, trace_now_ns(), 0, a0, a1, a2);
}

inline void trace_counter(const TraceSite& site,
                          std::uint64_t value) noexcept {
  if (!trace_enabled()) return;
  trace_detail::emit(TraceKind::kCounter, site, trace_now_ns(), value, 0, 0,
                     0);
}

/// Nestable span recorded as one "X" event at scope exit (exit-time records
/// survive ring wrap-around better than begin/end pairs).  The clock is
/// read only while armed.
class ScopedSpan {
 public:
  /// Explicit arming, for sites that cache the enable flag outside a hot
  /// loop (e.g. once per sim core run) instead of re-reading the atomic.
  struct Armed {
    bool on;
  };

  explicit ScopedSpan(const TraceSite& site, std::uint64_t a0 = 0,
                      std::uint64_t a1 = 0, std::uint64_t a2 = 0) noexcept
      : ScopedSpan(site, Armed{trace_enabled()}, a0, a1, a2) {}

  ScopedSpan(const TraceSite& site, Armed armed, std::uint64_t a0 = 0,
             std::uint64_t a1 = 0, std::uint64_t a2 = 0) noexcept
      : site_(&site), armed_(armed.on), a0_(a0), a1_(a1), a2_(a2) {
    if (armed_) start_ns_ = trace_now_ns();
  }

  ~ScopedSpan() {
    if (!armed_) return;
    const std::uint64_t now = trace_now_ns();
    trace_detail::emit(TraceKind::kSpan, *site_, start_ns_, now - start_ns_,
                       a0_, a1_, a2_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const TraceSite* site_;
  bool armed_;
  std::uint64_t start_ns_ = 0;
  std::uint64_t a0_, a1_, a2_;
};

/// One thread's retained records at collection time.
struct ThreadTrace {
  std::size_t track = 0;
  std::uint64_t pushed = 0;  ///< total ever pushed (> records.size() ⇒ wrapped)
  std::vector<TraceRecord> records;
};

struct TraceSnapshot {
  std::vector<ThreadTrace> threads;
};

/// Copies every registered ring (including rings parked on the free list,
/// whose owning threads exited).  Quiescence contract applies.
[[nodiscard]] TraceSnapshot collect_trace();

/// Clears every registered ring.  Quiescence contract applies.
void reset_trace();

/// Merges a snapshot into a Chrome trace-event JSON document:
/// `{"traceEvents":[...]}` with "X"/"i"/"C" events (ts/dur in microseconds,
/// exact to the nanosecond via fixed-point lexemes), one metadata
/// thread-name event per track, and events sorted by timestamp so the
/// output is stable for a given snapshot.
[[nodiscard]] util::Json chrome_trace_json(const TraceSnapshot& snapshot);

// ---------------------------------------------------------------------------
// Trace summaries: per-span-name aggregates of a Chrome trace, computed
// from the exported JSON (so mcs_trace can digest traces from any run, not
// just in-process snapshots).

struct SpanStats {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;    ///< sum of span durations
  std::uint64_t self_ns = 0;     ///< durations minus enclosed child spans
  std::uint64_t p50_self_ns = 0;
  std::uint64_t p99_self_ns = 0;
};

struct TraceSummary {
  std::string source;  ///< provenance note (input path or generator)
  std::vector<SpanStats> spans;  ///< ordered by self_ns desc, then name
};

/// Digests a Chrome trace-event document ("X" events only; instants and
/// counters are ignored).  Self time nests per `tid` by interval
/// containment.  Throws std::runtime_error when `doc` lacks a
/// `traceEvents` array or an event is malformed.
[[nodiscard]] TraceSummary summarize_chrome_trace(const util::Json& doc,
                                                  std::string source = "");

/// Serialization for committed summary artifacts (format
/// "mcs-trace-summary/1"); `parse_trace_summary` throws on malformed or
/// unknown-format input.
[[nodiscard]] util::Json trace_summary_json(const TraceSummary& summary);
[[nodiscard]] TraceSummary parse_trace_summary(const util::Json& doc);

}  // namespace mcs::obs
