// Flight recorder: dumps the retained per-thread trace rings to disk as a
// Chrome trace-event JSON file, for attaching a timeline of the last-N
// events to a failure report (verify:: oracle/differential findings,
// mcs_fuzz --replay).  The dump is the ring contents as-is — whatever the
// ring retained when the failure surfaced — so callers enable tracing, run
// the failing case, and dump immediately.
#pragma once

#include <string>

#include "mcs/util/json.hpp"

namespace mcs::obs {

/// The current rings as a Chrome trace document with a top-level "note"
/// (extra top-level keys are ignored by Perfetto/chrome://tracing).
[[nodiscard]] util::Json flight_record_json(const std::string& note);

/// Writes `<dir>/<tag>.flight.json` (creating `dir` if needed) and returns
/// the written path, or "" when the directory or file cannot be written.
/// Never throws: a flight dump decorates an existing failure and must not
/// mask it.
[[nodiscard]] std::string dump_flight_record(const std::string& dir,
                                             const std::string& tag,
                                             const std::string& note);

}  // namespace mcs::obs
