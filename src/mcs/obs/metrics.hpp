// Lightweight observability layer: a process-wide registry of named
// counters, timers and histograms, instrumented into the hot paths
// (PlacementEngine probes/commits, CA-TPA repair, sim-engine mode switches
// and deadline checks) so experiment sweeps can report *why* numbers move.
//
// Cost model: every instrument is gated on one relaxed atomic flag that is
// off by default, so the disabled path is a load + predictable branch and
// recorded values stay zero.  When enabled, counters are relaxed atomic
// increments — safe under the Monte-Carlo thread pool, and deterministic in
// total because every increment derives from deterministic per-trial work.
// Timers read the steady clock only while enabled; their values are
// wall-clock and therefore *not* deterministic, which is why the experiment
// orchestrator persists counter deltas but never timer values into
// artifacts (checkpoint resume must be bit-identical).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace mcs::obs {

namespace detail {
inline std::atomic<bool> g_enabled{false};
}  // namespace detail

/// Bucket count shared by Histogram and the thread sink (defined before
/// both so the sink can size its capture arrays).
inline constexpr std::size_t kHistogramBuckets = 65;

/// Thread-local capture of the metered events recorded *on this thread*
/// while the sink is installed.  The global instruments still update (a
/// sink observes, it does not redirect), so snapshots taken elsewhere stay
/// correct; what the sink adds is attribution: when several experiment
/// points run concurrently on different threads, each worker's sink sees
/// exactly its own point's increments — the per-point counter deltas the
/// sequential orchestrator derives from global snapshots, recovered without
/// serializing the points.  Keys are instrument addresses (stable for the
/// process lifetime); Registry::resolve_* turns them back into names.
///
/// Install/uninstall is RAII and nestable (the innermost sink captures).
/// Hot-path cost when no sink is installed: one thread-local load and a
/// predicted branch, paid only on the already-metered (enabled) path.
class ThreadMetricsSink {
 public:
  ThreadMetricsSink() noexcept;
  ~ThreadMetricsSink();
  ThreadMetricsSink(const ThreadMetricsSink&) = delete;
  ThreadMetricsSink& operator=(const ThreadMetricsSink&) = delete;

  void on_counter(const void* counter, std::uint64_t n) {
    for (auto& [key, value] : counters_) {
      if (key == counter) {
        value += n;
        return;
      }
    }
    counters_.emplace_back(counter, n);
  }

  void on_histogram(const void* histogram, std::uint64_t value) {
    const auto bucket = static_cast<std::size_t>(std::bit_width(value));
    for (auto& [key, buckets] : histograms_) {
      if (key == histogram) {
        ++buckets[bucket];
        return;
      }
    }
    histograms_.emplace_back(histogram,
                             std::array<std::uint64_t, kHistogramBuckets>{});
    ++histograms_.back().second[bucket];
  }

  [[nodiscard]] const std::vector<std::pair<const void*, std::uint64_t>>&
  counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const std::vector<
      std::pair<const void*, std::array<std::uint64_t, kHistogramBuckets>>>&
  histograms() const noexcept {
    return histograms_;
  }

 private:
  ThreadMetricsSink* previous_;
  /// Linear-scan vectors: a sweep point touches ~a dozen distinct
  /// instruments, and the same counter is hit repeatedly (the scan usually
  /// terminates on its first probe), so this beats a map on the hot path.
  std::vector<std::pair<const void*, std::uint64_t>> counters_;
  std::vector<std::pair<const void*, std::array<std::uint64_t, kHistogramBuckets>>>
      histograms_;
};

namespace detail {
inline thread_local ThreadMetricsSink* t_sink = nullptr;
}  // namespace detail

inline ThreadMetricsSink::ThreadMetricsSink() noexcept
    : previous_(detail::t_sink) {
  detail::t_sink = this;
}

inline ThreadMetricsSink::~ThreadMetricsSink() { detail::t_sink = previous_; }

/// Whether instruments record anything.  Relaxed: hot paths tolerate a
/// slightly stale view around the enable/disable edge.
[[nodiscard]] inline bool metrics_enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

inline void set_metrics_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

/// RAII toggle restoring the previous state (used by the orchestrator and
/// by tests so a failure cannot leak an enabled registry).
class MetricsEnabledGuard {
 public:
  explicit MetricsEnabledGuard(bool on) noexcept : previous_(metrics_enabled()) {
    set_metrics_enabled(on);
  }
  ~MetricsEnabledGuard() { set_metrics_enabled(previous_); }
  MetricsEnabledGuard(const MetricsEnabledGuard&) = delete;
  MetricsEnabledGuard& operator=(const MetricsEnabledGuard&) = delete;

 private:
  bool previous_;
};

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if (!metrics_enabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
    if (ThreadMetricsSink* sink = detail::t_sink) sink->on_counter(this, n);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Accumulated duration + call count (nanoseconds).
class Timer {
 public:
  void record(std::uint64_t ns) noexcept {
    if (!metrics_enabled()) return;
    total_ns_.fetch_add(ns, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t total_ns() const noexcept {
    return total_ns_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

  void reset() noexcept {
    total_ns_.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> total_ns_{0};
  std::atomic<std::uint64_t> count_{0};
};

/// Scope guard recording its lifetime into a Timer.  The clock is read only
/// while metrics are enabled.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer& timer) noexcept
      : timer_(timer), armed_(metrics_enabled()) {
    if (armed_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (!armed_) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    timer_.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer& timer_;
  bool armed_;
  std::chrono::steady_clock::time_point start_{};
};

/// Power-of-two bucketed histogram of unsigned values: bucket b counts
/// values with bit_width b (bucket 0 is the value 0).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = kHistogramBuckets;

  void record(std::uint64_t value) noexcept {
    if (!metrics_enabled()) return;
    buckets_[static_cast<std::size_t>(std::bit_width(value))].fetch_add(
        1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    if (ThreadMetricsSink* sink = detail::t_sink) {
      sink->on_histogram(this, value);
    }
    // Running maximum via CAS: a failed exchange reloads `seen`, so the
    // loop terminates as soon as another thread published a larger value.
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen && !max_.compare_exchange_weak(
                               seen, value, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t bucket(std::size_t b) const noexcept {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const noexcept;
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  /// Largest recorded value (0 when nothing was recorded).
  [[nodiscard]] std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }

  /// Rank-based percentile estimate for q in [0, 1]: the upper bound of
  /// the pow2 bucket containing the q-th ranked value, clamped to max().
  /// Exact for p0/p100 of power-of-two-minus-one data, otherwise an upper
  /// bound within 2x (the bucket width).  Returns 0 when empty.
  [[nodiscard]] std::uint64_t percentile(double q) const noexcept;

  void reset() noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// The q-th ranked value's bucket upper bound for a raw pow2 bucket-count
/// array (the building block behind Histogram::percentile and
/// histogram_percentile_deltas).  Returns 0 when all buckets are zero.
[[nodiscard]] std::uint64_t percentile_from_buckets(
    const std::array<std::uint64_t, Histogram::kBuckets>& buckets,
    double q) noexcept;

/// Point-in-time copy of every registered instrument.
///
/// Ordering contract: the maps are keyed lexicographically by instrument
/// name (std::map), so iterating a snapshot — and everything rendered from
/// one (reports, artifact counter blocks) — is deterministic and identical
/// across platforms.  Pinned by ObsMetrics.SnapshotOrderIsLexicographic.
struct MetricsSnapshot {
  struct TimerData {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
  };
  struct HistogramData {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t max = 0;
    std::uint64_t p50 = 0;
    std::uint64_t p90 = 0;
    std::uint64_t p99 = 0;
    /// Raw bucket counts, so deltas between snapshots can re-derive the
    /// distribution of values recorded in between.
    std::array<std::uint64_t, Histogram::kBuckets> buckets{};
  };
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, TimerData> timers;
  std::map<std::string, HistogramData> histograms;
};

/// Counters that grew between two snapshots (nonzero deltas only; a counter
/// registered after `before` counts from zero).
[[nodiscard]] std::map<std::string, std::uint64_t> counter_deltas(
    const MetricsSnapshot& before, const MetricsSnapshot& after);

/// Percentiles of the histogram values recorded *between* two snapshots,
/// flattened to "<name>.p50" / ".p90" / ".p99" pseudo-counters (only for
/// histograms whose count grew).  Histogram values are deterministic
/// per-trial quantities (unlike timers), so these merge safely into
/// checkpointed per-point counter maps.
[[nodiscard]] std::map<std::string, std::uint64_t> histogram_percentile_deltas(
    const MetricsSnapshot& before, const MetricsSnapshot& after);

/// Process-wide instrument registry.  Lookup by name registers on first
/// use and always returns the same object, whose address is stable for the
/// process lifetime — hot paths cache references at namespace scope.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(const std::string& name);
  Timer& timer(const std::string& name);
  Histogram& histogram(const std::string& name);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Resolves a thread sink's pointer-keyed counter captures into the
  /// name-keyed delta map that counter_deltas(before, after) would produce
  /// had the sink's thread been the only metered work between the
  /// snapshots.  Sink entries for counters unknown to this registry are
  /// dropped (cannot happen for instruments obtained via counter()).
  [[nodiscard]] std::map<std::string, std::uint64_t> resolve_counter_deltas(
      const ThreadMetricsSink& sink) const;

  /// Same resolution for histograms, flattened to "<name>.p50/.p90/.p99"
  /// pseudo-counters exactly like histogram_percentile_deltas.
  [[nodiscard]] std::map<std::string, std::uint64_t>
  resolve_histogram_percentiles(const ThreadMetricsSink& sink) const;

  /// Zeroes every instrument (names stay registered).
  void reset();

 private:
  Registry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Timer>> timers_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Shorthand for Registry::instance().
[[nodiscard]] inline Registry& registry() { return Registry::instance(); }

}  // namespace mcs::obs
