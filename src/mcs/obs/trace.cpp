#include "mcs/obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <utility>

namespace mcs::obs {

namespace {

/// Owns every ring ever created plus a free list of rings whose threads
/// exited.  Leaked on purpose: detached/late threads may touch their
/// thread-local ring handle after main() begins teardown.
struct RingRegistry {
  std::mutex mutex;
  std::vector<std::unique_ptr<TraceRing>> rings;
  std::vector<TraceRing*> free_list;

  static RingRegistry& instance() {
    static RingRegistry* registry = new RingRegistry;
    return *registry;
  }

  TraceRing* acquire() {
    const std::lock_guard<std::mutex> lock(mutex);
    if (!free_list.empty()) {
      TraceRing* ring = free_list.back();
      free_list.pop_back();
      return ring;
    }
    rings.push_back(std::make_unique<TraceRing>(rings.size()));
    return rings.back().get();
  }

  void release(TraceRing* ring) {
    const std::lock_guard<std::mutex> lock(mutex);
    free_list.push_back(ring);
  }
};

/// Thread-local handle; the destructor parks the ring for reuse so the
/// fresh threads spawned by each util::parallel_for call do not grow the
/// registry without bound.
struct LocalRingHandle {
  TraceRing* ring = nullptr;
  ~LocalRingHandle() {
    if (ring != nullptr) RingRegistry::instance().release(ring);
  }
};

thread_local LocalRingHandle t_local_ring;

/// Exact microsecond lexeme for a nanosecond count (ns = 1234567 → the
/// JSON number 1234.567), keeping Chrome's µs unit without rounding.
util::Json microseconds_lexeme(std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return util::Json::number_raw(buf);
}

void set_args(util::Json& event, const TraceRecord& record) {
  const TraceSite& site = *record.site;
  if (site.arg0 == nullptr && site.arg1 == nullptr && site.arg2 == nullptr) {
    return;
  }
  util::Json args = util::Json::object();
  if (site.arg0 != nullptr) args.set(site.arg0, util::Json::number(record.a0));
  if (site.arg1 != nullptr) args.set(site.arg1, util::Json::number(record.a1));
  if (site.arg2 != nullptr) args.set(site.arg2, util::Json::number(record.a2));
  event.set("args", std::move(args));
}

/// Nanoseconds from a Chrome `ts`/`dur` field (microseconds, possibly
/// fractional).
std::uint64_t field_ns(const util::Json& event, const std::string& key) {
  const util::Json* field = event.find(key);
  if (field == nullptr) return 0;
  const double us = field->as_double();
  if (us < 0.0) throw std::runtime_error("trace: negative " + key);
  return static_cast<std::uint64_t>(std::llround(us * 1000.0));
}

/// Exact rank-based percentile of a sorted sample (q in [0, 1]).
std::uint64_t percentile_sorted(const std::vector<std::uint64_t>& sorted,
                                double q) {
  if (sorted.empty()) return 0;
  const double clamped = std::min(std::max(q, 0.0), 1.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(clamped * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

}  // namespace

void TraceRing::snapshot(std::vector<TraceRecord>& out) const {
  const std::uint64_t n = head_.load(std::memory_order_acquire);
  const std::uint64_t count = std::min<std::uint64_t>(n, kCapacity);
  out.clear();
  out.reserve(count);
  for (std::uint64_t i = n - count; i < n; ++i) {
    out.push_back(records_[i & (kCapacity - 1)]);
  }
}

TraceRing& local_trace_ring() {
  if (t_local_ring.ring == nullptr) {
    t_local_ring.ring = RingRegistry::instance().acquire();
  }
  return *t_local_ring.ring;
}

std::uint64_t trace_now_ns() noexcept {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

namespace trace_detail {
void emit(TraceKind kind, const TraceSite& site, std::uint64_t ts_ns,
          std::uint64_t dur_ns, std::uint64_t a0, std::uint64_t a1,
          std::uint64_t a2) noexcept {
  local_trace_ring().push(TraceRecord{&site, kind, ts_ns, dur_ns, a0, a1, a2});
}
}  // namespace trace_detail

TraceSnapshot collect_trace() {
  RingRegistry& registry = RingRegistry::instance();
  const std::lock_guard<std::mutex> lock(registry.mutex);
  TraceSnapshot snapshot;
  snapshot.threads.reserve(registry.rings.size());
  for (const auto& ring : registry.rings) {
    ThreadTrace thread;
    thread.track = ring->track();
    thread.pushed = ring->pushed();
    ring->snapshot(thread.records);
    if (!thread.records.empty()) snapshot.threads.push_back(std::move(thread));
  }
  return snapshot;
}

void reset_trace() {
  RingRegistry& registry = RingRegistry::instance();
  const std::lock_guard<std::mutex> lock(registry.mutex);
  for (const auto& ring : registry.rings) ring->clear();
}

util::Json chrome_trace_json(const TraceSnapshot& snapshot) {
  util::Json events = util::Json::array();

  util::Json process_meta = util::Json::object();
  process_meta.set("name", util::Json::string("process_name"));
  process_meta.set("ph", util::Json::string("M"));
  process_meta.set("pid", util::Json::number(std::uint64_t{1}));
  util::Json process_args = util::Json::object();
  process_args.set("name", util::Json::string("mcs"));
  process_meta.set("args", std::move(process_args));
  events.push(std::move(process_meta));

  struct Indexed {
    const TraceRecord* record;
    std::size_t track;
  };
  std::vector<Indexed> merged;
  for (const ThreadTrace& thread : snapshot.threads) {
    util::Json thread_meta = util::Json::object();
    thread_meta.set("name", util::Json::string("thread_name"));
    thread_meta.set("ph", util::Json::string("M"));
    thread_meta.set("pid", util::Json::number(std::uint64_t{1}));
    thread_meta.set("tid", util::Json::number(std::uint64_t{thread.track}));
    util::Json thread_args = util::Json::object();
    thread_args.set("name",
                    util::Json::string("track-" + std::to_string(thread.track)));
    thread_meta.set("args", std::move(thread_args));
    events.push(std::move(thread_meta));

    for (const TraceRecord& record : thread.records) {
      merged.push_back(Indexed{&record, thread.track});
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const Indexed& a, const Indexed& b) {
                     if (a.record->ts_ns != b.record->ts_ns) {
                       return a.record->ts_ns < b.record->ts_ns;
                     }
                     return a.track < b.track;
                   });

  for (const Indexed& entry : merged) {
    const TraceRecord& record = *entry.record;
    util::Json event = util::Json::object();
    event.set("name", util::Json::string(record.site->name));
    event.set("cat", util::Json::string("mcs"));
    event.set("pid", util::Json::number(std::uint64_t{1}));
    event.set("tid", util::Json::number(std::uint64_t{entry.track}));
    event.set("ts", microseconds_lexeme(record.ts_ns));
    switch (record.kind) {
      case TraceKind::kSpan:
        event.set("ph", util::Json::string("X"));
        event.set("dur", microseconds_lexeme(record.dur_ns));
        set_args(event, record);
        break;
      case TraceKind::kInstant:
        event.set("ph", util::Json::string("i"));
        event.set("s", util::Json::string("t"));
        set_args(event, record);
        break;
      case TraceKind::kCounter: {
        event.set("ph", util::Json::string("C"));
        util::Json args = util::Json::object();
        const char* value_name =
            record.site->arg0 != nullptr ? record.site->arg0 : "value";
        args.set(value_name, util::Json::number(record.dur_ns));
        event.set("args", std::move(args));
        break;
      }
    }
    events.push(std::move(event));
  }

  util::Json doc = util::Json::object();
  doc.set("displayTimeUnit", util::Json::string("ns"));
  doc.set("traceEvents", std::move(events));
  return doc;
}

TraceSummary summarize_chrome_trace(const util::Json& doc,
                                    std::string source) {
  const util::Json* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    throw std::runtime_error("trace: document has no traceEvents array");
  }

  struct FlatSpan {
    std::uint64_t tid = 0;
    std::uint64_t ts_ns = 0;
    std::uint64_t dur_ns = 0;
    std::string name;
  };
  std::vector<FlatSpan> spans;
  for (const util::Json& event : events->items()) {
    const util::Json* ph = event.find("ph");
    if (ph == nullptr || ph->as_string() != "X") continue;
    FlatSpan span;
    span.tid = event.at("tid").as_u64();
    span.ts_ns = field_ns(event, "ts");
    span.dur_ns = field_ns(event, "dur");
    span.name = event.at("name").as_string();
    spans.push_back(std::move(span));
  }

  // Sort by (tid, start asc, duration desc) so within one thread a parent
  // span precedes its children even at equal start timestamps, then walk a
  // containment stack attributing self time.
  std::sort(spans.begin(), spans.end(),
            [](const FlatSpan& a, const FlatSpan& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
              return a.dur_ns > b.dur_ns;
            });

  struct Aggregate {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::vector<std::uint64_t> self_samples;
  };
  std::map<std::string, Aggregate> by_name;

  struct Open {
    std::uint64_t end_ns;
    std::int64_t self_ns;
    const std::string* name;
  };
  std::vector<Open> stack;
  const auto close_top = [&] {
    const Open open = stack.back();
    stack.pop_back();
    by_name[*open.name].self_samples.push_back(
        open.self_ns > 0 ? static_cast<std::uint64_t>(open.self_ns) : 0);
  };

  std::uint64_t current_tid = 0;
  bool have_tid = false;
  for (const FlatSpan& span : spans) {
    if (!have_tid || span.tid != current_tid) {
      while (!stack.empty()) close_top();
      current_tid = span.tid;
      have_tid = true;
    }
    while (!stack.empty() && stack.back().end_ns <= span.ts_ns) close_top();
    if (!stack.empty()) {
      stack.back().self_ns -= static_cast<std::int64_t>(span.dur_ns);
    }
    Aggregate& aggregate = by_name[span.name];
    aggregate.count += 1;
    aggregate.total_ns += span.dur_ns;
    // The stack stores a pointer into by_name's node-stable key.
    const std::string& stable_name = by_name.find(span.name)->first;
    stack.push_back(Open{span.ts_ns + span.dur_ns,
                         static_cast<std::int64_t>(span.dur_ns),
                         &stable_name});
  }
  while (!stack.empty()) close_top();

  TraceSummary summary;
  summary.source = std::move(source);
  for (auto& [name, aggregate] : by_name) {
    SpanStats stats;
    stats.name = name;
    stats.count = aggregate.count;
    stats.total_ns = aggregate.total_ns;
    std::sort(aggregate.self_samples.begin(), aggregate.self_samples.end());
    for (const std::uint64_t s : aggregate.self_samples) stats.self_ns += s;
    stats.p50_self_ns = percentile_sorted(aggregate.self_samples, 0.50);
    stats.p99_self_ns = percentile_sorted(aggregate.self_samples, 0.99);
    summary.spans.push_back(std::move(stats));
  }
  std::sort(summary.spans.begin(), summary.spans.end(),
            [](const SpanStats& a, const SpanStats& b) {
              if (a.self_ns != b.self_ns) return a.self_ns > b.self_ns;
              return a.name < b.name;
            });
  return summary;
}

util::Json trace_summary_json(const TraceSummary& summary) {
  util::Json doc = util::Json::object();
  doc.set("format", util::Json::string("mcs-trace-summary/1"));
  doc.set("source", util::Json::string(summary.source));
  util::Json spans = util::Json::array();
  for (const SpanStats& stats : summary.spans) {
    util::Json row = util::Json::object();
    row.set("name", util::Json::string(stats.name));
    row.set("count", util::Json::number(stats.count));
    row.set("total_ns", util::Json::number(stats.total_ns));
    row.set("self_ns", util::Json::number(stats.self_ns));
    row.set("p50_self_ns", util::Json::number(stats.p50_self_ns));
    row.set("p99_self_ns", util::Json::number(stats.p99_self_ns));
    spans.push(std::move(row));
  }
  doc.set("spans", std::move(spans));
  return doc;
}

TraceSummary parse_trace_summary(const util::Json& doc) {
  const util::Json* format = doc.find("format");
  if (format == nullptr || format->as_string() != "mcs-trace-summary/1") {
    throw std::runtime_error("trace summary: missing or unknown format tag");
  }
  TraceSummary summary;
  if (const util::Json* source = doc.find("source"); source != nullptr) {
    summary.source = source->as_string();
  }
  const util::Json* spans = doc.find("spans");
  if (spans == nullptr || !spans->is_array()) {
    throw std::runtime_error("trace summary: missing spans array");
  }
  for (const util::Json& row : spans->items()) {
    SpanStats stats;
    stats.name = row.at("name").as_string();
    stats.count = row.at("count").as_u64();
    stats.total_ns = row.at("total_ns").as_u64();
    stats.self_ns = row.at("self_ns").as_u64();
    stats.p50_self_ns = row.at("p50_self_ns").as_u64();
    stats.p99_self_ns = row.at("p99_self_ns").as_u64();
    summary.spans.push_back(std::move(stats));
  }
  return summary;
}

}  // namespace mcs::obs
