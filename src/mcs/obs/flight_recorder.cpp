#include "mcs/obs/flight_recorder.hpp"

#include <filesystem>
#include <fstream>
#include <system_error>
#include <utility>

#include "mcs/obs/trace.hpp"

namespace mcs::obs {

util::Json flight_record_json(const std::string& note) {
  const util::Json doc = chrome_trace_json(collect_trace());
  // Rebuild with the note first so a human opening the file sees why it
  // exists before the event soup.
  util::Json out = util::Json::object();
  out.set("format", util::Json::string("mcs-trace/1"));
  out.set("note", util::Json::string(note));
  out.set("displayTimeUnit", util::Json::string("ns"));
  out.set("traceEvents", doc.at("traceEvents"));
  return out;
}

std::string dump_flight_record(const std::string& dir, const std::string& tag,
                               const std::string& note) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::filesystem::path path =
      std::filesystem::path(dir) / (tag + ".flight.json");
  std::ofstream out(path);
  if (!out) return {};
  out << flight_record_json(note).dump() << "\n";
  if (!out) return {};
  return path.string();
}

}  // namespace mcs::obs
