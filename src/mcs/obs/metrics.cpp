#include "mcs/obs/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace mcs::obs {

namespace {

/// Largest value that lands in bucket b (bucket 0 holds only the value 0;
/// bucket b>0 holds values with bit_width b, i.e. up to 2^b - 1).
constexpr std::uint64_t bucket_upper_bound(std::size_t b) noexcept {
  if (b == 0) return 0;
  if (b >= 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << b) - 1;
}

}  // namespace

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

std::uint64_t percentile_from_buckets(
    const std::array<std::uint64_t, Histogram::kBuckets>& buckets,
    double q) noexcept {
  std::uint64_t total = 0;
  for (const std::uint64_t b : buckets) total += b;
  if (total == 0) return 0;
  const double clamped = std::min(std::max(q, 0.0), 1.0);
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(clamped * static_cast<double>(total))));
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    cumulative += buckets[b];
    if (cumulative >= rank) return bucket_upper_bound(b);
  }
  return bucket_upper_bound(Histogram::kBuckets - 1);
}

std::uint64_t Histogram::percentile(double q) const noexcept {
  std::array<std::uint64_t, kBuckets> counts{};
  for (std::size_t b = 0; b < kBuckets; ++b) {
    counts[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  const std::uint64_t bound = percentile_from_buckets(counts, q);
  // The global max tightens the top bucket's upper bound: no recorded
  // value exceeds it.
  const std::uint64_t observed_max = max();
  return observed_max > 0 ? std::min(bound, observed_max) : bound;
}

std::map<std::string, std::uint64_t> counter_deltas(
    const MetricsSnapshot& before, const MetricsSnapshot& after) {
  std::map<std::string, std::uint64_t> deltas;
  for (const auto& [name, value] : after.counters) {
    std::uint64_t base = 0;
    if (const auto it = before.counters.find(name);
        it != before.counters.end()) {
      base = it->second;
    }
    if (value > base) deltas.emplace(name, value - base);
  }
  return deltas;
}

std::map<std::string, std::uint64_t> histogram_percentile_deltas(
    const MetricsSnapshot& before, const MetricsSnapshot& after) {
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, data] : after.histograms) {
    std::array<std::uint64_t, Histogram::kBuckets> delta = data.buckets;
    if (const auto it = before.histograms.find(name);
        it != before.histograms.end()) {
      for (std::size_t b = 0; b < delta.size(); ++b) {
        delta[b] -= std::min(it->second.buckets[b], delta[b]);
      }
    }
    std::uint64_t grew = 0;
    for (const std::uint64_t b : delta) grew += b;
    if (grew == 0) continue;
    out.emplace(name + ".p50", percentile_from_buckets(delta, 0.50));
    out.emplace(name + ".p90", percentile_from_buckets(delta, 0.90));
    out.emplace(name + ".p99", percentile_from_buckets(delta, 0.99));
  }
  return out;
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(const std::string& name) {
  const std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Timer& Registry::timer(const std::string& name) {
  const std::lock_guard lock(mutex_);
  auto& slot = timers_[name];
  if (!slot) slot = std::make_unique<Timer>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  const std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot Registry::snapshot() const {
  const std::lock_guard lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace(name, counter->value());
  }
  for (const auto& [name, timer] : timers_) {
    snap.timers.emplace(
        name, MetricsSnapshot::TimerData{timer->count(), timer->total_ns()});
  }
  for (const auto& [name, hist] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.count = hist->count();
    data.sum = hist->sum();
    data.max = hist->max();
    data.p50 = hist->percentile(0.50);
    data.p90 = hist->percentile(0.90);
    data.p99 = hist->percentile(0.99);
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      data.buckets[b] = hist->bucket(b);
    }
    snap.histograms.emplace(name, std::move(data));
  }
  return snap;
}

std::map<std::string, std::uint64_t> Registry::resolve_counter_deltas(
    const ThreadMetricsSink& sink) const {
  const std::lock_guard lock(mutex_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [pointer, delta] : sink.counters()) {
    if (delta == 0) continue;
    for (const auto& [name, counter] : counters_) {
      if (counter.get() == pointer) {
        out.emplace(name, delta);
        break;
      }
    }
  }
  return out;
}

std::map<std::string, std::uint64_t> Registry::resolve_histogram_percentiles(
    const ThreadMetricsSink& sink) const {
  const std::lock_guard lock(mutex_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [pointer, buckets] : sink.histograms()) {
    std::uint64_t grew = 0;
    for (const std::uint64_t b : buckets) grew += b;
    if (grew == 0) continue;
    for (const auto& [name, hist] : histograms_) {
      if (hist.get() == pointer) {
        out.emplace(name + ".p50", percentile_from_buckets(buckets, 0.50));
        out.emplace(name + ".p90", percentile_from_buckets(buckets, 0.90));
        out.emplace(name + ".p99", percentile_from_buckets(buckets, 0.99));
        break;
      }
    }
  }
  return out;
}

void Registry::reset() {
  const std::lock_guard lock(mutex_);
  for (const auto& [name, counter] : counters_) counter->reset();
  for (const auto& [name, timer] : timers_) timer->reset();
  for (const auto& [name, hist] : histograms_) hist->reset();
}

}  // namespace mcs::obs
