#include "mcs/obs/metrics.hpp"

namespace mcs::obs {

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

std::map<std::string, std::uint64_t> counter_deltas(
    const MetricsSnapshot& before, const MetricsSnapshot& after) {
  std::map<std::string, std::uint64_t> deltas;
  for (const auto& [name, value] : after.counters) {
    std::uint64_t base = 0;
    if (const auto it = before.counters.find(name);
        it != before.counters.end()) {
      base = it->second;
    }
    if (value > base) deltas.emplace(name, value - base);
  }
  return deltas;
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(const std::string& name) {
  const std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Timer& Registry::timer(const std::string& name) {
  const std::lock_guard lock(mutex_);
  auto& slot = timers_[name];
  if (!slot) slot = std::make_unique<Timer>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  const std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot Registry::snapshot() const {
  const std::lock_guard lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace(name, counter->value());
  }
  for (const auto& [name, timer] : timers_) {
    snap.timers.emplace(
        name, MetricsSnapshot::TimerData{timer->count(), timer->total_ns()});
  }
  for (const auto& [name, hist] : histograms_) {
    snap.histograms.emplace(name,
                            MetricsSnapshot::HistogramData{
                                hist->count(), hist->sum(), hist->max()});
  }
  return snap;
}

void Registry::reset() {
  const std::lock_guard lock(mutex_);
  for (const auto& [name, counter] : counters_) counter->reset();
  for (const auto& [name, timer] : timers_) timer->reset();
  for (const auto& [name, hist] : histograms_) hist->reset();
}

}  // namespace mcs::obs
