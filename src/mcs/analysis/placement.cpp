#include "mcs/analysis/placement.hpp"

#include <algorithm>
#include <limits>

#include "mcs/analysis/edfvd.hpp"
#include "mcs/obs/metrics.hpp"

namespace mcs::analysis {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

// Registered once; increments are no-ops while metrics are disabled.
obs::Counter& g_probes = obs::registry().counter("placement.probes");
obs::Counter& g_probes_infeasible =
    obs::registry().counter("placement.probes_infeasible");
obs::Counter& g_eq4_accepts = obs::registry().counter("placement.eq4_accepts");
obs::Counter& g_improved_tests =
    obs::registry().counter("placement.improved_tests");
obs::Counter& g_commits = obs::registry().counter("placement.commits");
obs::Counter& g_uncommits = obs::registry().counter("placement.uncommits");
obs::Counter& g_imbalance_rescans =
    obs::registry().counter("placement.imbalance_rescans");
}  // namespace

void PlacementEngine::reset(const TaskSet& ts, std::size_t num_cores) {
  if (partition_) {
    partition_->reset(ts, num_cores);
  } else {
    partition_.emplace(ts, num_cores);
  }
  scratch_.reset(ts.num_levels());
  util_.assign(num_cores, 0.0);
  probes_ = 0;
  max_util_ = 0.0;
  min_util_ = 0.0;
  minmax_valid_ = true;
}

const UtilMatrix& PlacementEngine::with_task(std::size_t task,
                                             std::size_t core) {
  scratch_ = partition_->utils_on(core);  // reuses scratch storage
  scratch_.add(taskset()[task]);
  return scratch_;
}

ProbeResult PlacementEngine::probe(std::size_t task, std::size_t core,
                                   ProbePolicy policy) {
  ++probes_;
  g_probes.add();
  const double new_util =
      core_utilization(with_task(task, core), test_scratch_, policy);
  ProbeResult r;
  r.feasible = new_util != kInf;
  r.new_util = new_util;
  r.increment = r.feasible ? new_util - util_[core] : kInf;
  if (!r.feasible) g_probes_infeasible.add();
  return r;
}

bool PlacementEngine::probe_fits(std::size_t task, std::size_t core) {
  ++probes_;
  g_probes.add();
  const UtilMatrix& hypothetical = with_task(task, core);
  if (basic_test(hypothetical)) {
    g_eq4_accepts.add();
    return true;
  }
  g_improved_tests.add();
  improved_test(hypothetical, test_scratch_);
  if (!test_scratch_.schedulable) g_probes_infeasible.add();
  return test_scratch_.schedulable;
}

bool PlacementEngine::probe_fits_basic(std::size_t task, std::size_t core) {
  ++probes_;
  g_probes.add();
  return basic_test(with_task(task, core));
}

void PlacementEngine::commit(std::size_t task, std::size_t core) {
  g_commits.add();
  partition_->assign(task, core);
}

void PlacementEngine::commit(std::size_t task, std::size_t core,
                             double new_util) {
  g_commits.add();
  partition_->assign(task, core);
  set_util(core, new_util);
}

void PlacementEngine::uncommit(std::size_t task) {
  g_uncommits.add();
  partition_->unassign(task);
}

void PlacementEngine::relocate(std::size_t task, std::size_t core) {
  partition_->unassign(task);
  partition_->assign(task, core);
}

void PlacementEngine::set_util(std::size_t core, double value) {
  const double old = util_[core];
  util_[core] = value;
  if (!minmax_valid_) return;
  if (value > max_util_) {
    max_util_ = value;
  } else if (old == max_util_ && value < old) {
    minmax_valid_ = false;  // the maximum may have moved; rescan on demand
  }
  if (value < min_util_) {
    min_util_ = value;
  } else if (old == min_util_ && value > old) {
    minmax_valid_ = false;
  }
}

double PlacementEngine::imbalance() const {
  if (!minmax_valid_) {
    g_imbalance_rescans.add();
    max_util_ = *std::max_element(util_.begin(), util_.end());
    min_util_ = *std::min_element(util_.begin(), util_.end());
    minmax_valid_ = true;
  }
  return max_util_ > 0.0 ? (max_util_ - min_util_) / max_util_ : 0.0;
}

}  // namespace mcs::analysis
