#include "mcs/analysis/placement.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "mcs/analysis/edfvd.hpp"
#include "mcs/obs/metrics.hpp"
#include "mcs/obs/trace.hpp"

namespace mcs::analysis {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

// Trace sites: only the batched entry points carry spans (one gate check
// amortized over num_cores() lanes); the scalar probes are too hot (tens
// of ns) for even a disabled-gate branch to stay under the 1% overhead
// budget, so they are covered by counters and the enclosing partitioner
// spans instead.  Mutations are rare and become instants.
constexpr obs::TraceSite kProbeAllSite{"analysis.probe_all_cores", "task",
                                       "cores"};
constexpr obs::TraceSite kFitsAllSite{"analysis.probe_fits_all", "task",
                                      "cores"};
constexpr obs::TraceSite kFitsBasicAllSite{"analysis.probe_fits_basic_all",
                                           "task", "cores"};
constexpr obs::TraceSite kProbe2dSite{"analysis.probe_all_cores_2d", "tasks",
                                      "cores"};
constexpr obs::TraceSite kFits2dSite{"analysis.probe_fits_all_2d", "tasks",
                                     "cores"};
constexpr obs::TraceSite kFitsBasic2dSite{"analysis.probe_fits_basic_all_2d",
                                          "tasks", "cores"};
constexpr obs::TraceSite kCommitSite{"analysis.commit", "task", "core"};
constexpr obs::TraceSite kUncommitSite{"analysis.uncommit", "task", "core"};
constexpr obs::TraceSite kRelocateSite{"analysis.relocate", "task", "from",
                                       "to"};

// Registered once; increments are no-ops while metrics are disabled.
obs::Counter& g_probes = obs::registry().counter("placement.probes");
obs::Counter& g_probes_infeasible =
    obs::registry().counter("placement.probes_infeasible");
obs::Counter& g_eq4_accepts = obs::registry().counter("placement.eq4_accepts");
obs::Counter& g_improved_tests =
    obs::registry().counter("placement.improved_tests");
obs::Counter& g_commits = obs::registry().counter("placement.commits");
obs::Counter& g_uncommits = obs::registry().counter("placement.uncommits");
obs::Counter& g_imbalance_rescans =
    obs::registry().counter("placement.imbalance_rescans");
}  // namespace

void PlacementEngine::reset(const TaskSet& ts, std::size_t num_cores) {
  if (partition_) {
    partition_->reset(ts, num_cores);
  } else {
    partition_.emplace(ts, num_cores);
  }
  planes_.reset(ts.num_levels(), num_cores);
  batch_scratch_.resize(ts.num_levels(), num_cores);
  batch_util_.assign(num_cores, 0.0);
  batch_basic_.assign(num_cores, 0);
  scratch_.reset(ts.num_levels());
  util_.assign(num_cores, 0.0);
  probes_ = 0;
  max_util_ = 0.0;
  min_util_ = 0.0;
  minmax_valid_ = true;
}

void PlacementEngine::assert_planes_match([[maybe_unused]] std::size_t core)
    const {
#ifndef NDEBUG
  const UtilMatrix& matrix = partition_->utils_on(core);
  const Level K = matrix.num_levels();
  for (Level j = 1; j <= K; ++j) {
    for (Level k = 1; k <= j; ++k) {
      assert(planes_.at(j, k, core) == matrix.level_util(j, k) &&
             "LevelUtilPlanes drifted from the per-core UtilMatrix");
    }
  }
#endif
}

const UtilMatrix& PlacementEngine::with_task(std::size_t task,
                                             std::size_t core) {
  scratch_ = partition_->utils_on(core);  // reuses scratch storage
  scratch_.add(taskset()[task]);
  return scratch_;
}

ProbeResult PlacementEngine::probe(std::size_t task, std::size_t core,
                                   ProbePolicy policy) {
  ++probes_;
  g_probes.add();
  const double new_util =
      core_utilization(with_task(task, core), test_scratch_, policy);
  ProbeResult r;
  r.feasible = new_util != kInf;
  r.new_util = new_util;
  r.increment = r.feasible ? new_util - util_[core] : kInf;
  if (!r.feasible) g_probes_infeasible.add();
  return r;
}

bool PlacementEngine::probe_fits(std::size_t task, std::size_t core) {
  ++probes_;
  g_probes.add();
  const UtilMatrix& hypothetical = with_task(task, core);
  if (basic_test(hypothetical)) {
    g_eq4_accepts.add();
    return true;
  }
  g_improved_tests.add();
  improved_test(hypothetical, test_scratch_);
  if (!test_scratch_.schedulable) g_probes_infeasible.add();
  return test_scratch_.schedulable;
}

bool PlacementEngine::probe_fits_basic(std::size_t task, std::size_t core) {
  ++probes_;
  g_probes.add();
  return basic_test(with_task(task, core));
}

void PlacementEngine::probe_all_cores(std::size_t task, ProbePolicy policy,
                                      std::span<ProbeResult> out) {
  const std::size_t cores = num_cores();
  assert(out.size() == cores && "probe_all_cores: out must span every core");
  const obs::ScopedSpan span(kProbeAllSite, task, cores);
  // One batched call == num_cores() probes: the accounting of the scalar
  // all-cores scan it replaces.
  probes_ += cores;
  g_probes.add(cores);
  batch_core_utilization(planes_, taskset()[task], policy, batch_scratch_,
                         batch_util_.data());
  std::uint64_t infeasible = 0;
  for (std::size_t m = 0; m < cores; ++m) {
    const double new_util = batch_util_[m];
    ProbeResult r;
    r.feasible = new_util != kInf;
    r.new_util = new_util;
    r.increment = r.feasible ? new_util - util_[m] : kInf;
    if (!r.feasible) ++infeasible;
    out[m] = r;
  }
  g_probes_infeasible.add(infeasible);
}

void PlacementEngine::probe_fits_all(std::size_t task,
                                     std::span<unsigned char> out) {
  const std::size_t cores = num_cores();
  assert(out.size() == cores && "probe_fits_all: out must span every core");
  const obs::ScopedSpan span(kFitsAllSite, task, cores);
  probes_ += cores;  // one batched call == num_cores() probes
  g_probes.add(cores);
  batch_fits(planes_, taskset()[task], batch_scratch_, batch_basic_.data(),
             out.data());
  // Same counter semantics as the scalar loop: Eq. (4) accepts take the
  // fast path; every basic miss runs the improved test; an improved-test
  // reject is an infeasible probe.
  std::uint64_t basic_accepts = 0;
  std::uint64_t rejects = 0;
  for (std::size_t m = 0; m < cores; ++m) {
    basic_accepts += batch_basic_[m] != 0 ? 1u : 0u;
    rejects += out[m] == 0 ? 1u : 0u;
  }
  g_eq4_accepts.add(basic_accepts);
  g_improved_tests.add(cores - basic_accepts);
  g_probes_infeasible.add(rejects);
}

void PlacementEngine::probe_fits_basic_all(std::size_t task,
                                           std::span<unsigned char> out) {
  const std::size_t cores = num_cores();
  assert(out.size() == cores &&
         "probe_fits_basic_all: out must span every core");
  const obs::ScopedSpan span(kFitsBasicAllSite, task, cores);
  probes_ += cores;  // one batched call == num_cores() probes
  g_probes.add(cores);
  batch_fits_basic(planes_, taskset()[task], batch_scratch_, out.data());
}

void PlacementEngine::probe_all_cores_2d(std::span<const std::size_t> tasks,
                                         ProbePolicy policy,
                                         std::span<ProbeResult> out) {
  const std::size_t cores = num_cores();
  const std::size_t T = tasks.size();
  assert(out.size() == T * cores &&
         "probe_all_cores_2d: out must span tasks x cores");
  const obs::ScopedSpan span(kProbe2dSite, T, cores);
  // One 2-D call == tasks.size() * num_cores() probes: the T 1-D all-cores
  // scans it replaces, charged up front.
  probes_ += T * cores;
  g_probes.add(T * cores);
  if (batch_util_.size() < T * cores) batch_util_.resize(T * cores);
  batch_core_utilization_2d(planes_, taskset(), tasks, policy, batch_scratch_,
                            batch_util_.data());
  std::uint64_t infeasible = 0;
  for (std::size_t t = 0; t < T; ++t) {
    for (std::size_t m = 0; m < cores; ++m) {
      const double new_util = batch_util_[t * cores + m];
      ProbeResult r;
      r.feasible = new_util != kInf;
      r.new_util = new_util;
      r.increment = r.feasible ? new_util - util_[m] : kInf;
      if (!r.feasible) ++infeasible;
      out[t * cores + m] = r;
    }
  }
  g_probes_infeasible.add(infeasible);
}

void PlacementEngine::probe_fits_all_2d(std::span<const std::size_t> tasks,
                                        std::span<unsigned char> out) {
  const std::size_t cores = num_cores();
  const std::size_t T = tasks.size();
  assert(out.size() == T * cores &&
         "probe_fits_all_2d: out must span tasks x cores");
  const obs::ScopedSpan span(kFits2dSite, T, cores);
  probes_ += T * cores;  // one 2-D call == T * num_cores() probes
  g_probes.add(T * cores);
  if (batch_basic_.size() < T * cores) batch_basic_.resize(T * cores);
  batch_fits_2d(planes_, taskset(), tasks, batch_scratch_, batch_basic_.data(),
                out.data());
  // Same counter semantics as T scalar core loops (see probe_fits_all).
  std::uint64_t basic_accepts = 0;
  std::uint64_t rejects = 0;
  for (std::size_t i = 0; i < T * cores; ++i) {
    basic_accepts += batch_basic_[i] != 0 ? 1u : 0u;
    rejects += out[i] == 0 ? 1u : 0u;
  }
  g_eq4_accepts.add(basic_accepts);
  g_improved_tests.add(T * cores - basic_accepts);
  g_probes_infeasible.add(rejects);
}

void PlacementEngine::probe_fits_basic_all_2d(
    std::span<const std::size_t> tasks, std::span<unsigned char> out) {
  const std::size_t cores = num_cores();
  const std::size_t T = tasks.size();
  assert(out.size() == T * cores &&
         "probe_fits_basic_all_2d: out must span tasks x cores");
  const obs::ScopedSpan span(kFitsBasic2dSite, T, cores);
  probes_ += T * cores;  // one 2-D call == T * num_cores() probes
  g_probes.add(T * cores);
  batch_fits_basic_2d(planes_, taskset(), tasks, batch_scratch_, out.data());
}

void PlacementEngine::commit(std::size_t task, std::size_t core) {
  g_commits.add();
  obs::trace_instant(kCommitSite, task, core);
  partition_->assign(task, core);
  planes_.add(taskset()[task], core);
  assert_planes_match(core);
}

void PlacementEngine::commit(std::size_t task, std::size_t core,
                             double new_util) {
  g_commits.add();
  obs::trace_instant(kCommitSite, task, core);
  partition_->assign(task, core);
  planes_.add(taskset()[task], core);
  assert_planes_match(core);
  set_util(core, new_util);
}

void PlacementEngine::uncommit(std::size_t task) {
  g_uncommits.add();
  const std::size_t core = partition_->core_of(task);
  obs::trace_instant(kUncommitSite, task, core);
  partition_->unassign(task);
  planes_.remove(taskset()[task], core);
  assert_planes_match(core);
}

void PlacementEngine::relocate(std::size_t task, std::size_t core) {
  const std::size_t from = partition_->core_of(task);
  obs::trace_instant(kRelocateSite, task, from, core);
  partition_->unassign(task);
  partition_->assign(task, core);
  planes_.remove(taskset()[task], from);
  planes_.add(taskset()[task], core);
  assert_planes_match(from);
  assert_planes_match(core);
}

void PlacementEngine::set_util(std::size_t core, double value) {
  const double old = util_[core];
  util_[core] = value;
  if (!minmax_valid_) return;
  if (value > max_util_) {
    max_util_ = value;
  } else if (old == max_util_ && value < old) {
    minmax_valid_ = false;  // the maximum may have moved; rescan on demand
  }
  if (value < min_util_) {
    min_util_ = value;
  } else if (old == min_util_ && value > old) {
    minmax_valid_ = false;
  }
}

double PlacementEngine::imbalance() const {
  if (!minmax_valid_) {
    g_imbalance_rescans.add();
    max_util_ = *std::max_element(util_.begin(), util_.end());
    min_util_ = *std::min_element(util_.begin(), util_.end());
    minmax_valid_ = true;
  }
  return max_util_ > 0.0 ? (max_util_ - min_util_) / max_util_ : 0.0;
}

}  // namespace mcs::analysis
