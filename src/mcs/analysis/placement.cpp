#include "mcs/analysis/placement.hpp"

#include <algorithm>
#include <limits>

#include "mcs/analysis/edfvd.hpp"

namespace mcs::analysis {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

void PlacementEngine::reset(const TaskSet& ts, std::size_t num_cores) {
  if (partition_) {
    partition_->reset(ts, num_cores);
  } else {
    partition_.emplace(ts, num_cores);
  }
  scratch_.reset(ts.num_levels());
  util_.assign(num_cores, 0.0);
  probes_ = 0;
  max_util_ = 0.0;
  min_util_ = 0.0;
  minmax_valid_ = true;
}

const UtilMatrix& PlacementEngine::with_task(std::size_t task,
                                             std::size_t core) {
  scratch_ = partition_->utils_on(core);  // reuses scratch storage
  scratch_.add(taskset()[task]);
  return scratch_;
}

ProbeResult PlacementEngine::probe(std::size_t task, std::size_t core,
                                   ProbePolicy policy) {
  ++probes_;
  const double new_util =
      core_utilization(with_task(task, core), test_scratch_, policy);
  ProbeResult r;
  r.feasible = new_util != kInf;
  r.new_util = new_util;
  r.increment = r.feasible ? new_util - util_[core] : kInf;
  return r;
}

bool PlacementEngine::probe_fits(std::size_t task, std::size_t core) {
  ++probes_;
  const UtilMatrix& hypothetical = with_task(task, core);
  if (basic_test(hypothetical)) return true;
  improved_test(hypothetical, test_scratch_);
  return test_scratch_.schedulable;
}

bool PlacementEngine::probe_fits_basic(std::size_t task, std::size_t core) {
  ++probes_;
  return basic_test(with_task(task, core));
}

void PlacementEngine::commit(std::size_t task, std::size_t core) {
  partition_->assign(task, core);
}

void PlacementEngine::commit(std::size_t task, std::size_t core,
                             double new_util) {
  partition_->assign(task, core);
  set_util(core, new_util);
}

void PlacementEngine::uncommit(std::size_t task) {
  partition_->unassign(task);
}

void PlacementEngine::relocate(std::size_t task, std::size_t core) {
  partition_->unassign(task);
  partition_->assign(task, core);
}

void PlacementEngine::set_util(std::size_t core, double value) {
  const double old = util_[core];
  util_[core] = value;
  if (!minmax_valid_) return;
  if (value > max_util_) {
    max_util_ = value;
  } else if (old == max_util_ && value < old) {
    minmax_valid_ = false;  // the maximum may have moved; rescan on demand
  }
  if (value < min_util_) {
    min_util_ = value;
  } else if (old == min_util_ && value > old) {
    minmax_valid_ = false;
  }
}

double PlacementEngine::imbalance() const {
  if (!minmax_valid_) {
    max_util_ = *std::max_element(util_.begin(), util_.end());
    min_util_ = *std::min_element(util_.begin(), util_.end());
    minmax_valid_ = true;
  }
  return max_util_ > 0.0 ? (max_util_ - min_util_) / max_util_ : 0.0;
}

}  // namespace mcs::analysis
