#include "mcs/analysis/amc_rta.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace mcs::analysis {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// ceil(a / b) for positive reals with a tolerance against x.9999999 cases.
double ceil_div(double a, double b) {
  return std::ceil(a / b - 1e-9);
}

/// Solves R = base + sum_j ceil(R / T_j) * C_j by fixed-point iteration,
/// bounded by `deadline`.  Returns +inf when the iteration exceeds the
/// deadline (the task is unschedulable anyway, so divergence is irrelevant).
double fixed_point(double base,
                   const std::vector<std::pair<double, double>>& interferers,
                   double deadline) {
  double r = base;
  for (int iter = 0; iter < 10000; ++iter) {
    double next = base;
    for (const auto& [period, wcet] : interferers) {
      next += ceil_div(r, period) * wcet;
    }
    if (next > deadline + 1e-9) return kInf;
    if (next <= r + 1e-12) return next;
    r = next;
  }
  return kInf;
}

/// AMC-rtb analysis of one task against an arbitrary set of higher-priority
/// tasks (the test depends only on the *set*, which makes it compatible
/// with Audsley's algorithm).
AmcTaskResult analyze_task(const TaskSet& ts, std::size_t task_index,
                           std::span<const std::size_t> higher) {
  const McTask& task = ts[task_index];
  const double deadline = task.period();  // implicit deadlines

  AmcTaskResult tr;
  tr.task_index = task_index;

  std::vector<std::pair<double, double>> hp_lo;
  hp_lo.reserve(higher.size());
  for (std::size_t j : higher) {
    hp_lo.emplace_back(ts[j].period(), ts[j].wcet(1));
  }
  tr.response_lo = fixed_point(task.wcet(1), hp_lo, deadline);
  tr.schedulable = tr.response_lo <= deadline;

  if (tr.schedulable && task.level() == 2) {
    std::vector<std::pair<double, double>> hp_hi;
    double lo_interference = 0.0;
    for (std::size_t j : higher) {
      if (ts[j].level() == 2) {
        hp_hi.emplace_back(ts[j].period(), ts[j].wcet(2));
      } else {
        lo_interference +=
            ceil_div(tr.response_lo, ts[j].period()) * ts[j].wcet(1);
      }
    }
    tr.response_hi =
        fixed_point(task.wcet(2) + lo_interference, hp_hi, deadline);
    tr.schedulable = tr.response_hi <= deadline;
  }
  return tr;
}

void require_dual(const TaskSet& ts, const char* who) {
  if (ts.num_levels() != 2) {
    throw std::invalid_argument(std::string(who) +
                                ": AMC-rtb is a dual-criticality analysis "
                                "(K == 2)");
  }
}

}  // namespace

std::vector<std::size_t> deadline_monotonic_order(
    const TaskSet& ts, std::span<const std::size_t> members) {
  std::vector<std::size_t> order(members.begin(), members.end());
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (ts[a].period() != ts[b].period()) {
      return ts[a].period() < ts[b].period();
    }
    return a < b;
  });
  return order;
}

AmcRtaResult amc_rtb_test_with_priorities(
    const TaskSet& ts, std::span<const std::size_t> priority_order) {
  require_dual(ts, "amc_rtb_test_with_priorities");
  AmcRtaResult result;
  result.schedulable = true;
  std::vector<std::size_t> higher;
  higher.reserve(priority_order.size());
  for (std::size_t p = 0; p < priority_order.size(); ++p) {
    AmcTaskResult tr = analyze_task(ts, priority_order[p], higher);
    tr.priority = p;
    result.schedulable = result.schedulable && tr.schedulable;
    result.tasks.push_back(tr);
    higher.push_back(priority_order[p]);
  }
  return result;
}

AmcRtaResult amc_rtb_test(const TaskSet& ts,
                          std::span<const std::size_t> members) {
  require_dual(ts, "amc_rtb_test");
  return amc_rtb_test_with_priorities(ts, deadline_monotonic_order(ts, members));
}

AmcRtaResult amc_rtb_test(const TaskSet& ts) {
  std::vector<std::size_t> all(ts.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  return amc_rtb_test(ts, all);
}

std::optional<std::vector<std::size_t>> audsley_assignment(
    const TaskSet& ts, std::span<const std::size_t> members) {
  require_dual(ts, "audsley_assignment");
  // Try candidates in reverse deadline-monotonic order at each level: the
  // longest-period task is the most natural candidate for the lowest
  // priority, which keeps the search near-linear in practice.
  std::vector<std::size_t> remaining = deadline_monotonic_order(ts, members);
  std::vector<std::size_t> lowest_first;
  lowest_first.reserve(remaining.size());
  while (!remaining.empty()) {
    bool placed = false;
    for (std::size_t pos = remaining.size(); pos-- > 0;) {
      const std::size_t candidate = remaining[pos];
      std::vector<std::size_t> higher;
      higher.reserve(remaining.size() - 1);
      for (std::size_t other : remaining) {
        if (other != candidate) higher.push_back(other);
      }
      if (analyze_task(ts, candidate, higher).schedulable) {
        lowest_first.push_back(candidate);
        remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(pos));
        placed = true;
        break;
      }
    }
    if (!placed) return std::nullopt;  // OPA: no order exists
  }
  std::reverse(lowest_first.begin(), lowest_first.end());
  return lowest_first;
}

}  // namespace mcs::analysis
