#include "mcs/analysis/dbf.hpp"

#include <algorithm>
#include <optional>
#include <utility>
#include <cmath>
#include <stdexcept>

#include "mcs/analysis/edfvd.hpp"

namespace mcs::analysis {

namespace {

/// (floor((t - d)/T) + 1)^+ * c  -- jobs with relative deadline d, period T.
double step_demand(double t, double d, double period, double c) {
  if (t < d - 1e-9) return 0.0;
  return (std::floor((t - d) / period + 1e-9) + 1.0) * c;
}

/// Scans the summed step demand against t at every step point up to
/// `bound`; returns the first violating t, or nullopt when the demand fits.
/// Each entry of `curves` is (deadline, period, cost).
std::optional<double> first_violation(
    const std::vector<std::array<double, 3>>& curves, double bound) {
  // Stream the step points in ascending order through a min-heap (one lane
  // per curve) so the scan stops at the first violation without
  // materializing and sorting the whole breakpoint list — rejections, the
  // common case inside placement gates, usually violate early.
  struct Lane {
    double next;
    std::size_t curve;
  };
  const auto later = [](const Lane& a, const Lane& b) {
    return a.next > b.next;
  };
  std::vector<Lane> heap;
  heap.reserve(curves.size());
  for (std::size_t i = 0; i < curves.size(); ++i) {
    const auto& [d, period, c] = curves[i];
    if (c <= 0.0) continue;
    if (d <= bound + 1e-9) heap.push_back({d, i});
  }
  std::make_heap(heap.begin(), heap.end(), later);
  double last = -1.0;
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), later);
    Lane lane = heap.back();
    heap.pop_back();
    const double t = lane.next;
    lane.next += curves[lane.curve][1];
    if (lane.next <= bound + 1e-9) {
      heap.push_back(lane);
      std::push_heap(heap.begin(), heap.end(), later);
    }
    if (t == last) continue;  // duplicate step across lanes
    last = t;
    double demand = 0.0;
    for (const auto& [d, period, c] : curves) {
      demand += step_demand(t, d, period, c);
    }
    if (demand > t + 1e-9) return t;
  }
  return std::nullopt;
}

bool demand_fits(const std::vector<std::array<double, 3>>& curves,
                 double bound) {
  return !first_violation(curves, bound).has_value();
}

/// Busy-period-style bound: demand(t) <= slope*t + intercept, so beyond
/// intercept/(1 - slope) the test always passes.  Returns nullopt when the
/// demand slope reaches 1 (unschedulable unless demand is identically 0).
std::optional<double> analysis_bound(
    const std::vector<std::array<double, 3>>& curves) {
  double slope = 0.0;
  double intercept = 0.0;
  for (const auto& [d, period, c] : curves) {
    slope += c / period;
    intercept += c * std::max(0.0, 1.0 - d / period);
  }
  if (slope >= 1.0 - 1e-12) {
    return intercept <= 1e-12 && slope <= 1.0 + 1e-12
               ? std::optional<double>(0.0)
               : std::nullopt;
  }
  return intercept / (1.0 - slope);
}

bool test_with_scale(const TaskSet& ts, std::span<const std::size_t> members,
                     double x, const DbfOptions& options) {
  std::vector<std::array<double, 3>> lo_curves;
  std::vector<std::array<double, 3>> hi_curves;
  for (std::size_t i : members) {
    const McTask& task = ts[i];
    const double period = task.period();
    if (task.level() == 2) {
      lo_curves.push_back({x * period, period, task.wcet(1)});
      hi_curves.push_back({period - x * period, period, task.wcet(2)});
    } else {
      lo_curves.push_back({period, period, task.wcet(1)});
    }
  }
  for (const auto* curves : {&lo_curves, &hi_curves}) {
    const std::optional<double> bound = analysis_bound(*curves);
    if (!bound) return false;
    if (*bound > options.horizon_cap) return false;  // conservative
    if (*bound > 0.0 && !demand_fits(*curves, *bound)) return false;
  }
  return true;
}

}  // namespace

double dbf_lo(const McTask& task, double t, double x) {
  const double d =
      task.level() >= 2 ? x * task.period() : task.period();
  return step_demand(t, d, task.period(), task.wcet(1));
}

double dbf_hi(const McTask& task, double t, double x) {
  if (task.level() < 2) return 0.0;
  const double d = task.period() - x * task.period();
  return step_demand(t, d, task.period(), task.wcet(2));
}

DbfResult dbf_dual_test(const TaskSet& ts,
                        std::span<const std::size_t> members,
                        const DbfOptions& options) {
  if (ts.num_levels() != 2) {
    throw std::invalid_argument(
        "dbf_dual_test: requires a dual-criticality task set");
  }
  if (members.empty()) return DbfResult{.schedulable = true, .scale = 1.0};

  // Candidate scales: x = 1 (plain EDF), the EDF-VD analytical factors, and
  // a uniform grid.  The first passing candidate wins.
  UtilMatrix u(2);
  for (std::size_t i : members) u.add(ts[i]);
  std::vector<double> candidates{1.0};
  const double u22 = u.level_util(2, 2);
  if (u22 > 0.0 && u22 < 1.0) candidates.push_back(1.0 - u22);
  candidates.push_back(dual_scaling_factor(u));
  for (std::size_t g = 1; g <= options.scale_grid; ++g) {
    candidates.push_back(static_cast<double>(g) /
                         static_cast<double>(options.scale_grid));
  }
  for (double x : candidates) {
    if (x <= 0.0 || x > 1.0) continue;
    if (test_with_scale(ts, members, x, options)) {
      return DbfResult{.schedulable = true, .scale = x};
    }
  }
  return DbfResult{};
}

DbfResult dbf_dual_test(const TaskSet& ts, const DbfOptions& options) {
  std::vector<std::size_t> all(ts.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  return dbf_dual_test(ts, all, options);
}

namespace {

/// Evaluates both demand tests with per-member scales.  On failure returns
/// (mode, t): mode 0 = LO-test violation, 1 = HI-test violation.
std::optional<std::pair<int, double>> tuned_violation(
    const TaskSet& ts, std::span<const std::size_t> members,
    std::span<const double> scales, const DbfOptions& options) {
  std::vector<std::array<double, 3>> lo_curves;
  std::vector<std::array<double, 3>> hi_curves;
  for (std::size_t m = 0; m < members.size(); ++m) {
    const McTask& task = ts[members[m]];
    const double period = task.period();
    if (task.level() == 2) {
      lo_curves.push_back({scales[m] * period, period, task.wcet(1)});
      hi_curves.push_back(
          {period - scales[m] * period, period, task.wcet(2)});
    } else {
      lo_curves.push_back({period, period, task.wcet(1)});
    }
  }
  int mode = 0;
  for (const auto* curves : {&lo_curves, &hi_curves}) {
    const std::optional<double> bound = analysis_bound(*curves);
    if (!bound || *bound > options.horizon_cap) {
      return std::make_pair(mode, 0.0);
    }
    if (*bound > 0.0) {
      if (const auto t = first_violation(*curves, *bound)) {
        return std::make_pair(mode, *t);
      }
    }
    ++mode;
  }
  return std::nullopt;
}

}  // namespace

DbfTunedResult dbf_dual_test_tuned(const TaskSet& ts,
                                   std::span<const std::size_t> members,
                                   const DbfOptions& options) {
  if (ts.num_levels() != 2) {
    throw std::invalid_argument(
        "dbf_dual_test_tuned: requires a dual-criticality task set");
  }
  DbfTunedResult result;
  result.scales.assign(ts.size(), 1.0);

  // The uniform search is a special case; keep its acceptances (dominance).
  const DbfResult uniform = dbf_dual_test(ts, members, options);
  std::vector<double> scales(members.size(), 1.0);
  for (std::size_t m = 0; m < members.size(); ++m) {
    if (ts[members[m]].level() == 2) {
      scales[m] = uniform.schedulable ? uniform.scale : 0.5;
    }
  }
  if (uniform.schedulable) {
    result.schedulable = true;
    for (std::size_t m = 0; m < members.size(); ++m) {
      result.scales[members[m]] = scales[m];
    }
    return result;  // the uniform solution already passes
  }

  const double step = 1.0 / static_cast<double>(options.scale_grid);
  std::size_t hi_count = 0;
  for (std::size_t m : members) hi_count += ts[m].level() == 2 ? 1u : 0u;
  const std::size_t max_iter = 8 * options.scale_grid * (hi_count + 1);

  for (std::size_t iter = 0; iter < max_iter; ++iter) {
    const auto violation = tuned_violation(ts, members, scales, options);
    if (!violation) {
      result.schedulable = true;
      for (std::size_t m = 0; m < members.size(); ++m) {
        result.scales[members[m]] = scales[m];
      }
      return result;
    }
    const auto [mode, t] = *violation;
    // Pick the HI member contributing the most demand at the violation
    // point whose scale can still move in the helpful direction.
    std::size_t best = members.size();
    double best_demand = 0.0;
    for (std::size_t m = 0; m < members.size(); ++m) {
      const McTask& task = ts[members[m]];
      if (task.level() != 2) continue;
      const double period = task.period();
      double demand;
      bool movable;
      if (mode == 0) {
        demand = step_demand(t, scales[m] * period, period, task.wcet(1));
        movable = scales[m] <= 1.0 - step * 0.5;
      } else {
        demand = step_demand(t, period - scales[m] * period, period,
                             task.wcet(2));
        movable = scales[m] >= 2.0 * step - step * 0.5;
      }
      if (movable && demand > best_demand) {
        best_demand = demand;
        best = m;
      }
    }
    if (best == members.size() || best_demand <= 0.0) return result;  // stuck
    scales[best] += mode == 0 ? step : -step;
  }
  return result;  // iteration cap: conservatively reject
}

DbfTunedResult dbf_dual_test_tuned(const TaskSet& ts,
                                   const DbfOptions& options) {
  std::vector<std::size_t> all(ts.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  return dbf_dual_test_tuned(ts, all, options);
}

}  // namespace mcs::analysis
