// PlacementEngine: incremental feasibility probing for partitioners.
//
// Every partitioning scheme in this repository follows the same probe loop:
// "what happens to core m if task tau_i joins it?", evaluated thousands of
// times per task set and tens of millions of times per Monte-Carlo point.
// Historically each probe copied the core's UtilMatrix into a freshly
// allocated hypothetical matrix and ran the Theorem-1 test into freshly
// allocated result vectors — five heap allocations per probe.
//
// The engine owns all per-core placement state and makes a probe
// allocation-free:
//   * the Partition itself (incrementally-maintained per-core UtilMatrix),
//   * the same numbers transposed as struct-of-arrays level-utilization
//     planes (LevelUtilPlanes, bitwise equal to the matrices) feeding the
//     batched all-cores probes,
//   * one reusable scratch UtilMatrix (probe hypotheticals are copied into
//     it, reusing its storage) and one scratch Theorem1Result for the
//     scalar reference probes, plus the batched kernel's lane scratch,
//   * cached core utilizations U^{Psi_m} with running min/max trackers for
//     the Lambda imbalance check (Sec. III-C),
//   * the unified probe counter every scheme reports.
//
// Probes evaluate exactly the same arithmetic as the historical free
// functions (fits / fits_basic_only / probe_assignment), so partitioning
// decisions are bit-identical; see tests/partition/placement_parity_test.
// The batched probes are in turn bit-identical to the scalar ones (see
// batch_probe.hpp and the probe-parity fuzz target).
//
// Probe accounting: one batched all-cores call counts num_cores() probes —
// exactly what the scalar core-scan loop it replaces would have counted
// when every core is probed.  Schemes that used to early-exit a first-fit
// scan (FFD, Hybrid's FFD phase) therefore report more probes than before;
// the golden parity file and EXPERIMENTS.md counter panels were regenerated
// under this rule (partitions themselves are unchanged).
//
// Engines are reusable across task sets via reset() — the Monte-Carlo
// harness keeps one engine per worker chunk so per-trial state (planes and
// lane scratch included) is recycled instead of reallocated.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "mcs/analysis/batch_probe.hpp"
#include "mcs/analysis/core_util.hpp"
#include "mcs/analysis/soa_planes.hpp"
#include "mcs/core/partition.hpp"

namespace mcs::analysis {

class PlacementEngine {
 public:
  /// An engine not yet bound to a task set; call reset() before use.
  PlacementEngine() = default;

  PlacementEngine(const TaskSet& ts, std::size_t num_cores) {
    reset(ts, num_cores);
  }

  /// Rebinds to a task set / core count: clears the partition, cached
  /// utilizations and the probe counter, reusing all buffers.
  void reset(const TaskSet& ts, std::size_t num_cores);

  [[nodiscard]] bool bound() const noexcept { return partition_.has_value(); }
  [[nodiscard]] const Partition& partition() const { return *partition_; }
  [[nodiscard]] const TaskSet& taskset() const {
    return partition_->taskset();
  }
  [[nodiscard]] std::size_t num_cores() const {
    return partition_->num_cores();
  }

  /// Moves the partition out (for callers that outlive the engine).  The
  /// engine must be reset() before further use.
  [[nodiscard]] Partition take_partition() && { return *std::move(partition_); }

  // --- Probes (each call counts one probe toward probes()) ---------------

  /// CA-TPA probe (Eq. 14-15): utilization of core `core` with `task`
  /// hypothetically added, folded per `policy`; the increment is measured
  /// against the cached core utilization util(core).
  [[nodiscard]] ProbeResult probe(std::size_t task, std::size_t core,
                                  ProbePolicy policy);

  /// Baseline feasibility: Eq. (4) fast path, Theorem 1 fallback — the
  /// order the paper prescribes for FFD/BFD/WFD/Hybrid.
  [[nodiscard]] bool probe_fits(std::size_t task, std::size_t core);

  /// Eq. (4) only (ablation A4).
  [[nodiscard]] bool probe_fits_basic(std::size_t task, std::size_t core);

  // --- Batched probes (each call counts num_cores() probes) ---------------

  /// Evaluates probe(task, m, policy) for every core m in one
  /// struct-of-arrays pass over the level-utilization planes.
  /// out.size() must equal num_cores(); out[m] is bit-identical to the
  /// scalar probe's result.  Counts num_cores() probes.
  void probe_all_cores(std::size_t task, ProbePolicy policy,
                       std::span<ProbeResult> out);

  /// Batched Eq. (4)/Theorem-1 accept mask: out[m] == probe_fits(task, m).
  /// out.size() must equal num_cores().  Counts num_cores() probes.
  void probe_fits_all(std::size_t task, std::span<unsigned char> out);

  /// Batched Eq. (4)-only mask: out[m] == probe_fits_basic(task, m).
  /// out.size() must equal num_cores().  Counts num_cores() probes.
  void probe_fits_basic_all(std::size_t task, std::span<unsigned char> out);

  // --- 2-D batched probes (each call counts tasks.size() * num_cores()
  // probes — the T 1-D scans it replaces, charged up front regardless of
  // how the caller consumes the tile) -------------------------------------

  /// Evaluates probe(t, m, policy) for every task t in `tasks` and every
  /// core m in one task-major tiled pass.  out.size() must equal
  /// tasks.size() * num_cores(); row t (out[t * num_cores() + m]) is
  /// bit-identical to the 1-D probe_all_cores(tasks[t], ...) row.
  void probe_all_cores_2d(std::span<const std::size_t> tasks,
                          ProbePolicy policy, std::span<ProbeResult> out);

  /// 2-D accept mask: out[t * num_cores() + m] == probe_fits(tasks[t], m).
  void probe_fits_all_2d(std::span<const std::size_t> tasks,
                         std::span<unsigned char> out);

  /// 2-D Eq. (4)-only mask.
  void probe_fits_basic_all_2d(std::span<const std::size_t> tasks,
                               std::span<unsigned char> out);

  /// Counts one probe for schemes whose feasibility test lives outside the
  /// utilization framework (DBF, AMC-rtb response times).
  void count_probe() noexcept { ++probes_; }

  [[nodiscard]] std::size_t probes() const noexcept { return probes_; }

  // --- Placement state ----------------------------------------------------

  /// Assigns `task` to `core` without touching the cached utilization (for
  /// schemes that track load, not U^{Psi_m}).
  void commit(std::size_t task, std::size_t core);

  /// Assigns `task` to `core` and caches `new_util` (typically the
  /// ProbeResult::new_util of the probe that chose the core).
  void commit(std::size_t task, std::size_t core, double new_util);

  /// Removes `task` from its core.  The cached utilization of that core is
  /// left untouched — callers juggling tentative moves (repair) manage the
  /// cache explicitly via set_util().
  void uncommit(std::size_t task);

  /// uncommit + commit without cache updates: moves `task` to `core`.
  void relocate(std::size_t task, std::size_t core);

  /// Cached U^{Psi_m} of core m (0 for untracked/empty cores).
  [[nodiscard]] double util(std::size_t core) const { return util_[core]; }

  /// Overwrites the cached utilization of core m.
  void set_util(std::size_t core, double value);

  /// Classical bin-packing load of core m: the Eq. (4) own-level sum.
  [[nodiscard]] double load(std::size_t core) const {
    return partition_->utils_on(core).own_level_sum();
  }

  /// Imbalance factor Lambda = (U_sys - U_min) / U_sys over the cached core
  /// utilizations (Eq. 16); 0 when U_sys == 0.  Maintained by running
  /// min/max trackers, falling back to an O(M) rescan only when a commit
  /// displaced the current extremum.
  [[nodiscard]] double imbalance() const;

 private:
  [[nodiscard]] const UtilMatrix& with_task(std::size_t task,
                                            std::size_t core);

  /// Debug-build cross-check of the plane == matrix bitwise invariant on
  /// one core's lane (no-op under NDEBUG).
  void assert_planes_match(std::size_t core) const;

  std::optional<Partition> partition_;
  LevelUtilPlanes planes_;  ///< SoA mirror of the per-core UtilMatrix state
  BatchProbeScratch batch_scratch_;
  std::vector<double> batch_util_;  ///< batched new-utilization lane buffer
  std::vector<unsigned char> batch_basic_;  ///< batched Eq. (4) mask buffer
  UtilMatrix scratch_{1};
  Theorem1Result test_scratch_;
  std::vector<double> util_;
  std::size_t probes_ = 0;

  mutable double max_util_ = 0.0;
  mutable double min_util_ = 0.0;
  mutable bool minmax_valid_ = true;
};

}  // namespace mcs::analysis
