// The batched probe kernel.  Kept in its own translation unit so the build
// can compile it with vectorization reporting (-fopt-info-vec /
// -Rpass=loop-vectorize) and CI can grep that the lane loops vectorized
// (tools/check_vectorization.sh).
//
// Every loop labeled "lane loop" iterates the innermost core dimension of
// contiguous planes with no calls and no data-dependent branches; the
// ternaries compile to SIMD selects.
#include "mcs/analysis/batch_probe.hpp"

#include <algorithm>
#include <limits>

namespace mcs::analysis {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Materializes the hypothetical task row: hrow(k) = plane(l_t, k) + u_t(k)
/// for k = 1..l_t — the same single addition UtilMatrix::add performs on the
/// scalar scratch copy.
void materialize_task_row(const LevelUtilPlanes& planes, const McTask& task,
                          BatchProbeScratch& s) {
  const Level jt = task.level();
  const std::size_t M = planes.num_cores();
  for (Level k = 1; k <= jt; ++k) {
    const double tu = task.utilization(k);
    const double* __restrict src = planes.plane(jt, k);
    double* __restrict dst =
        s.hrow.data() + static_cast<std::size_t>(k - 1) * M;
    for (std::size_t m = 0; m < M; ++m) {  // lane loop: hrow
      dst[m] = src[m] + tu;
    }
  }
}

/// Row selector with the task-row substitution hoisted out of the lane
/// loops: rows of the task's own level l_t read the hypothetical hrow,
/// every other row reads the committed plane.
class RowView {
 public:
  RowView(const LevelUtilPlanes& planes, const BatchProbeScratch& s, Level jt)
      : planes_(planes), scratch_(s), jt_(jt) {}

  [[nodiscard]] const double* operator()(Level j, Level k) const {
    if (j == jt_) {
      return scratch_.hrow.data() +
             static_cast<std::size_t>(k - 1) * planes_.num_cores();
    }
    return planes_.plane(j, k);
  }

 private:
  const LevelUtilPlanes& planes_;
  const BatchProbeScratch& scratch_;
  Level jt_;
};

/// The Theorem-1 pass: fills s.valid, s.lambda, s.theta, s.min_term, s.sched
/// (and, via the policy-templated fold below, s.best / s.first_avail /
/// s.found).  Requires K >= 2; hrow must be materialized.
///
/// Scalar reference: improved_test(core, out) in edfvd.cpp.  The
/// data-dependent breaks there become monotone masks here:
///   * "break on invalid lambda_j"  ->  valid[m] stays at its last good j;
///     a lane is still active at step j exactly when valid[m] == j - 1;
///   * "break when k > valid"       ->  usable = k <= valid[m] (monotone
///     non-increasing over k, so frozen lanes never resume).
/// Live lanes execute the identical FP sequence; dead lanes may compute
/// IEEE inf/NaN that the selects discard.
template <ProbePolicy P, bool Fold>
void improved_pass(const LevelUtilPlanes& planes, const RowView& row,
                   BatchProbeScratch& s) {
  const Level K = planes.num_levels();
  const std::size_t M = planes.num_cores();

  double* __restrict prod = s.prod.data();
  std::uint32_t* __restrict valid = s.valid.data();
  for (std::size_t m = 0; m < M; ++m) {  // lane loop: lambda init
    prod[m] = 1.0;
    valid[m] = 1;  // lambda_1 = 0 is always valid
  }

  // lambda_j per Eq. (6), j = 2..K-1.  Row 0 of the lambda plane (lambda_1)
  // is zeroed by resize() and never written.
  for (Level j = 2; j + 1 <= K; ++j) {
    double* __restrict num = s.acc.data();
    std::fill(num, num + M, 0.0);
    for (Level x = j; x <= K; ++x) {
      const double* __restrict r = row(x, j - 1);
      for (std::size_t m = 0; m < M; ++m) {  // lane loop: lambda numerator
        num[m] += r[m];
      }
    }
    const double* __restrict diag = row(j - 1, j - 1);
    double* __restrict lamj =
        s.lambda.data() + static_cast<std::size_t>(j - 1) * M;
    const std::uint32_t prev = j - 1;
    for (std::size_t m = 0; m < M; ++m) {  // lane loop: lambda validity
      const double denom = prod[m] - diag[m];
      const double lam = num[m] / denom;  // dead lanes: inf/NaN, discarded
      const bool ok =
          valid[m] == prev && denom > 0.0 && lam >= 0.0 && lam < 1.0;
      lamj[m] = ok ? lam : 0.0;
      valid[m] = ok ? static_cast<std::uint32_t>(j) : valid[m];
      prod[m] = ok ? prod[m] * (1.0 - lam) : prod[m];
    }
  }

  // The min term of theta, shared by every condition k.
  const double* __restrict rkk = row(K, K);
  const double* __restrict rkprev = row(K, K - 1);
  double* __restrict min_term = s.min_term.data();
  for (std::size_t m = 0; m < M; ++m) {  // lane loop: min term
    const double ukk = rkk[m];
    const double div = rkprev[m] / (1.0 - ukk);  // ukk >= 1: discarded
    const double second = ukk < 1.0 ? div : kInf;
    min_term[m] = ukk <= second ? ukk : second;
  }

  // theta(k) from the own-level suffix sums, built top-down.
  double* __restrict suffix = s.acc.data();
  std::fill(suffix, suffix + M, 0.0);
  for (Level k = K - 1; k >= 1; --k) {
    const double* __restrict diag = row(k, k);
    double* __restrict th =
        s.theta.data() + static_cast<std::size_t>(k - 1) * M;
    for (std::size_t m = 0; m < M; ++m) {  // lane loop: theta
      suffix[m] += diag[m];
      th[m] = suffix[m] + min_term[m];
    }
    if (k == 1) break;  // Level is unsigned
  }

  // mu(k) running product, the schedulability conditions, and (when Fold)
  // the Eq. (9) policy fold over feasible conditions — fused into one walk
  // over k so avail values never need a (K-1) x M store.
  double* __restrict mu = s.mu.data();
  std::uint8_t* __restrict sched = s.sched.data();
  double* __restrict best = s.best.data();
  double* __restrict first_avail = s.first_avail.data();
  std::uint8_t* __restrict found = s.found.data();
  for (std::size_t m = 0; m < M; ++m) {  // lane loop: mu/fold init
    mu[m] = 1.0;
    sched[m] = 0;
    best[m] = 0.0;
    first_avail[m] = 0.0;
    found[m] = 0;
  }
  for (Level k = 1; k + 1 <= K; ++k) {
    const double* __restrict th =
        s.theta.data() + static_cast<std::size_t>(k - 1) * M;
    const double* __restrict lamk =
        s.lambda.data() + static_cast<std::size_t>(k - 1) * M;
    const std::uint32_t kv = k;
    for (std::size_t m = 0; m < M; ++m) {  // lane loop: mu + fold
      const bool usable = kv <= valid[m];
      const double mu_next = mu[m] * (1.0 - lamk[m]);
      const double mu_k = usable ? mu_next : mu[m];
      mu[m] = mu_k;
      const double a = usable ? mu_k - th[m] : -kInf;
      const bool cond = usable && sched[m] == 0 && th[m] <= mu_k;
      first_avail[m] = cond ? a : first_avail[m];
      sched[m] = static_cast<std::uint8_t>(sched[m] | (cond ? 1 : 0));
      if constexpr (Fold) {
        // Scalar fold in core_utilization(): skip a < 0; the first feasible
        // condition seeds best, later ones fold via std::min / std::max.
        const bool take = a >= 0.0;
        const double u = 1.0 - a;
        double folded;
        if constexpr (P == ProbePolicy::kMaxOverFeasible) {
          folded = best[m] < u ? u : best[m];  // std::max(best, u)
        } else {
          folded = u < best[m] ? u : best[m];  // std::min(best, u)
        }
        best[m] = take ? (found[m] != 0 ? folded : u) : best[m];
        found[m] = static_cast<std::uint8_t>(found[m] | (take ? 1 : 0));
      }
    }
  }
}

template <ProbePolicy P>
void fold_utilization(const BatchProbeScratch& s, std::size_t M,
                      double* __restrict out_util) {
  const std::uint8_t* __restrict sched = s.sched.data();
  const double* __restrict best = s.best.data();
  const double* __restrict first_avail = s.first_avail.data();
  const std::uint8_t* __restrict found = s.found.data();
  for (std::size_t m = 0; m < M; ++m) {  // lane loop: utilization writeback
    double u;
    if constexpr (P == ProbePolicy::kFirstFeasible) {
      u = 1.0 - first_avail[m];
    } else {
      u = found[m] != 0 ? best[m] : kInf;
    }
    out_util[m] = sched[m] != 0 ? u : kInf;
  }
}

void run_improved(const LevelUtilPlanes& planes, const RowView& row,
                  ProbePolicy policy, bool fold, BatchProbeScratch& s) {
  switch (policy) {
    case ProbePolicy::kFirstFeasible:
      fold ? improved_pass<ProbePolicy::kFirstFeasible, true>(planes, row, s)
           : improved_pass<ProbePolicy::kFirstFeasible, false>(planes, row, s);
      break;
    case ProbePolicy::kMinOverFeasible:
      fold ? improved_pass<ProbePolicy::kMinOverFeasible, true>(planes, row, s)
           : improved_pass<ProbePolicy::kMinOverFeasible, false>(planes, row,
                                                                 s);
      break;
    case ProbePolicy::kMaxOverFeasible:
      fold ? improved_pass<ProbePolicy::kMaxOverFeasible, true>(planes, row, s)
           : improved_pass<ProbePolicy::kMaxOverFeasible, false>(planes, row,
                                                                 s);
      break;
  }
}

/// Eq. (4) left-hand side with the task added: sum_k row(k, k), ascending —
/// the same accumulation order as UtilMatrix::own_level_sum.
void basic_mask(const LevelUtilPlanes& planes, const RowView& row,
                BatchProbeScratch& s, std::uint8_t* __restrict out) {
  const Level K = planes.num_levels();
  const std::size_t M = planes.num_cores();
  double* __restrict total = s.acc.data();
  std::fill(total, total + M, 0.0);
  for (Level k = 1; k <= K; ++k) {
    const double* __restrict diag = row(k, k);
    for (std::size_t m = 0; m < M; ++m) {  // lane loop: Eq. (4) sum
      total[m] += diag[m];
    }
  }
  for (std::size_t m = 0; m < M; ++m) {  // lane loop: Eq. (4) mask
    out[m] = static_cast<std::uint8_t>(total[m] <= 1.0 ? 1 : 0);
  }
}

}  // namespace

void BatchProbeScratch::resize(Level num_levels, std::size_t num_cores) {
  levels = num_levels;
  cores = num_cores;
  const std::size_t K = num_levels;
  const std::size_t planes_km1 = K > 0 ? (K - 1) * cores : 0;
  hrow.assign(K * cores, 0.0);
  lambda.assign(planes_km1, 0.0);  // row 0 (lambda_1 = 0) stays zero forever
  theta.assign(planes_km1, 0.0);
  acc.assign(cores, 0.0);
  prod.assign(cores, 0.0);
  min_term.assign(cores, 0.0);
  mu.assign(cores, 0.0);
  best.assign(cores, 0.0);
  first_avail.assign(cores, 0.0);
  valid.assign(cores, 0);
  sched.assign(cores, 0);
  found.assign(cores, 0);
}

void batch_core_utilization(const LevelUtilPlanes& planes, const McTask& task,
                            ProbePolicy policy, BatchProbeScratch& scratch,
                            double* out_util) {
  const Level K = planes.num_levels();
  const std::size_t M = planes.num_cores();
  if (scratch.levels != K || scratch.cores != M) scratch.resize(K, M);
  materialize_task_row(planes, task, scratch);
  const RowView row(planes, scratch, task.level());

  if (K == 1) {
    // Same K == 1 fast path as core_utilization(): report U_1(1) exactly.
    const double* __restrict r11 = row(1, 1);
    for (std::size_t m = 0; m < M; ++m) {  // lane loop: K == 1 utilization
      out_util[m] = r11[m] <= 1.0 ? r11[m] : kInf;
    }
    return;
  }

  run_improved(planes, row, policy, /*fold=*/true, scratch);
  switch (policy) {
    case ProbePolicy::kFirstFeasible:
      fold_utilization<ProbePolicy::kFirstFeasible>(scratch, M, out_util);
      break;
    case ProbePolicy::kMinOverFeasible:
      fold_utilization<ProbePolicy::kMinOverFeasible>(scratch, M, out_util);
      break;
    case ProbePolicy::kMaxOverFeasible:
      fold_utilization<ProbePolicy::kMaxOverFeasible>(scratch, M, out_util);
      break;
  }
}

void batch_fits(const LevelUtilPlanes& planes, const McTask& task,
                BatchProbeScratch& scratch, std::uint8_t* basic,
                std::uint8_t* fits) {
  const Level K = planes.num_levels();
  const std::size_t M = planes.num_cores();
  if (scratch.levels != K || scratch.cores != M) scratch.resize(K, M);
  materialize_task_row(planes, task, scratch);
  const RowView row(planes, scratch, task.level());
  basic_mask(planes, row, scratch, basic);

  if (K == 1) {
    // Eq. (4) and the improved test coincide at K == 1 (plain EDF).
    std::copy(basic, basic + M, fits);
    return;
  }

  // The scalar path runs the improved test only where Eq. (4) failed; the
  // improved test is pure, so running it on every lane and OR-ing with the
  // basic mask yields the identical accept decision.
  run_improved(planes, row, ProbePolicy::kMinOverFeasible, /*fold=*/false,
               scratch);
  const std::uint8_t* __restrict sched = scratch.sched.data();
  for (std::size_t m = 0; m < M; ++m) {  // lane loop: accept mask
    fits[m] = static_cast<std::uint8_t>(basic[m] | sched[m]);
  }
}

void batch_fits_basic(const LevelUtilPlanes& planes, const McTask& task,
                      BatchProbeScratch& scratch, std::uint8_t* basic) {
  const Level K = planes.num_levels();
  const std::size_t M = planes.num_cores();
  if (scratch.levels != K || scratch.cores != M) scratch.resize(K, M);
  materialize_task_row(planes, task, scratch);
  const RowView row(planes, scratch, task.level());
  basic_mask(planes, row, scratch, basic);
}

}  // namespace mcs::analysis
