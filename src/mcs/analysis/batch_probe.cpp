// Baseline-ISA instantiation of the batched probe kernels, plus the public
// API and the runtime backend dispatcher.
//
// Kept in its own translation unit so the build can compile it with
// vectorization reporting (-fopt-info-vec / -Rpass=loop-vectorize) and CI
// can grep that the lane loops vectorized (tools/check_vectorization.sh);
// the kernel bodies live in batch_probe_impl.hpp, shared with the
// -mavx2-compiled batch_probe_avx2.cpp.
//
// Dispatch: the active KernelTable starts as the widest backend usable on
// this CPU — the AVX2 table (from the sibling TU) when the build carries it,
// this TU's baseline flags are narrower, and __builtin_cpu_supports says the
// machine has AVX2; this TU's own table otherwise.  The indirection costs
// one predicted function-pointer call per *batched* probe (hundreds of ns of
// kernel work), not per lane.
#include "mcs/analysis/batch_probe.hpp"

#define MCS_BATCH_PROBE_ISA base
#include "mcs/analysis/batch_probe_impl.hpp"
#undef MCS_BATCH_PROBE_ISA

namespace mcs::analysis {

namespace batch_kernel {

#if defined(MCS_HAVE_AVX2_TU) && !defined(__AVX2__)
// Compiled into batch_probe_avx2.cpp with -mavx2.  Not declared (or used)
// when this TU already has AVX2: then base *is* the AVX2 instantiation.
namespace avx2 {
const KernelTable& table();
}
#endif

namespace {

const KernelTable* detect_table() noexcept {
#if defined(MCS_HAVE_AVX2_TU) && !defined(__AVX2__) && defined(__GNUC__)
  if (__builtin_cpu_supports("avx2")) return &avx2::table();
#endif
  return &base::table();
}

const KernelTable*& active_table() noexcept {
  static const KernelTable* t = detect_table();
  return t;
}

}  // namespace
}  // namespace batch_kernel

void BatchProbeScratch::resize(Level num_levels, std::size_t num_cores) {
  levels = num_levels;
  cores = num_cores;
  const std::size_t K = num_levels;
  const std::size_t planes_km1 = K > 0 ? (K - 1) * cores : 0;
  hrow.assign(kBatchProbeTileTasks * K * cores, 0.0);
  lambda.assign(planes_km1, 0.0);  // row 0 (lambda_1 = 0) stays zero forever
  theta.assign(planes_km1, 0.0);
  acc.assign(cores, 0.0);
  prod.assign(cores, 0.0);
  min_term.assign(cores, 0.0);
  mu.assign(cores, 0.0);
  best.assign(cores, 0.0);
  first_avail.assign(cores, 0.0);
  valid.assign(cores, 0.0);
  sched.assign(cores, 0.0);
  found.assign(cores, 0.0);
  base_num.assign((K + 1) * (K + 1) * cores, 0.0);
  base_suffix.assign((K + 1) * cores, 0.0);
  base_theta.assign(planes_km1, 0.0);
  base_min_term.assign(cores, 0.0);
  base_eq4.assign((K + 1) * cores, 0.0);
  th_rows.assign(K > 0 ? K - 1 : 0, nullptr);
}

const char* batch_probe_backend() noexcept {
  return batch_kernel::active_table()->backend;
}

bool set_batch_probe_backend(std::string_view name) noexcept {
  using batch_kernel::KernelTable;
  const KernelTable* next = nullptr;
  if (name == "auto") {
    next = batch_kernel::detect_table();
  } else if (name == "scalar") {
    next = &batch_kernel::base::scalar_table();
  } else if (name == batch_kernel::base::table().backend) {
    next = &batch_kernel::base::table();
  }
#if defined(MCS_HAVE_AVX2_TU) && !defined(__AVX2__) && defined(__GNUC__)
  else if (name == "avx2" && __builtin_cpu_supports("avx2")) {
    next = &batch_kernel::avx2::table();
  }
#endif
  if (next == nullptr) return false;
  batch_kernel::active_table() = next;
  return true;
}

void batch_core_utilization(const LevelUtilPlanes& planes, const McTask& task,
                            ProbePolicy policy, BatchProbeScratch& scratch,
                            double* out_util) {
  batch_kernel::active_table()->util_1d(planes, task, policy, scratch,
                                        out_util);
}

void batch_fits(const LevelUtilPlanes& planes, const McTask& task,
                BatchProbeScratch& scratch, std::uint8_t* basic,
                std::uint8_t* fits) {
  batch_kernel::active_table()->fits_1d(planes, task, scratch, basic, fits);
}

void batch_fits_basic(const LevelUtilPlanes& planes, const McTask& task,
                      BatchProbeScratch& scratch, std::uint8_t* basic) {
  batch_kernel::active_table()->fits_basic_1d(planes, task, scratch, basic);
}

void batch_core_utilization_2d(const LevelUtilPlanes& planes, const TaskSet& ts,
                               std::span<const std::size_t> tasks,
                               ProbePolicy policy, BatchProbeScratch& scratch,
                               double* out_util) {
  batch_kernel::active_table()->util_2d(planes, ts, tasks.data(), tasks.size(),
                                        policy, scratch, out_util);
}

void batch_fits_2d(const LevelUtilPlanes& planes, const TaskSet& ts,
                   std::span<const std::size_t> tasks,
                   BatchProbeScratch& scratch, std::uint8_t* basic,
                   std::uint8_t* fits) {
  batch_kernel::active_table()->fits_2d(planes, ts, tasks.data(), tasks.size(),
                                        scratch, basic, fits);
}

void batch_fits_basic_2d(const LevelUtilPlanes& planes, const TaskSet& ts,
                         std::span<const std::size_t> tasks,
                         BatchProbeScratch& scratch, std::uint8_t* basic) {
  batch_kernel::active_table()->fits_basic_2d(planes, ts, tasks.data(),
                                              tasks.size(), scratch, basic);
}

}  // namespace mcs::analysis
