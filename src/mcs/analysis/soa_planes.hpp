// Struct-of-arrays level-utilization planes.
//
// The Partition stores one UtilMatrix per core (array-of-structs): probing a
// task against all M cores walks M scattered K x K matrices.  For the batched
// all-cores probe (batch_probe.hpp) the same numbers are kept transposed as
// K x K planes of M contiguous doubles each:
//
//   plane(j, k)[m] == partition.utils_on(m).level_util(j, k)   (bitwise)
//
// so one pass of the Theorem-1 kernel streams each plane once and the inner
// loop over cores auto-vectorizes.  The invariant above is maintained
// inductively: add()/remove() perform exactly the arithmetic of
// UtilMatrix::add/remove (same += / -= on a value with the same history,
// including the tiny-negative clamp on remove), so plane entries never drift
// from the matrices by even one ulp.
#pragma once

#include <cstddef>
#include <vector>

#include "mcs/core/taskset.hpp"

namespace mcs::analysis {

/// K x K lower-triangular grid of per-core utilization planes; entry
/// (j, k, m), k <= j, stores U_j(k) of core m's subset.
class LevelUtilPlanes {
 public:
  LevelUtilPlanes() = default;

  /// Re-initializes to all-zero planes for `num_levels` levels and
  /// `num_cores` cores, reusing storage when possible (the no-allocation
  /// path of PlacementEngine::reset on the Monte-Carlo steady state).
  void reset(Level num_levels, std::size_t num_cores);

  [[nodiscard]] Level num_levels() const noexcept { return levels_; }
  [[nodiscard]] std::size_t num_cores() const noexcept { return cores_; }

  /// Mirrors UtilMatrix::add/remove on core `core`'s lane of rows
  /// (j, 1..j).  The task's level must not exceed num_levels().
  void add(const McTask& task, std::size_t core);
  void remove(const McTask& task, std::size_t core);

  /// The M-wide plane of U_j(k) values, one lane per core.
  /// Requires 1 <= k <= j <= num_levels().
  [[nodiscard]] const double* plane(Level j, Level k) const noexcept {
    return u_.data() + index(j, k);
  }

  /// U_j(k) of one core (debug/cross-check accessor).
  [[nodiscard]] double at(Level j, Level k, std::size_t core) const {
    return u_[index(j, k) + core];
  }

 private:
  [[nodiscard]] std::size_t index(Level j, Level k) const noexcept {
    return (static_cast<std::size_t>(j - 1) * levels_ +
            static_cast<std::size_t>(k - 1)) *
           cores_;
  }

  Level levels_ = 0;
  std::size_t cores_ = 0;
  std::vector<double> u_;  // (K*K) planes of M doubles, zero above diagonal
};

}  // namespace mcs::analysis
