#include "mcs/analysis/edfvd.hpp"

#include <limits>
#include <stdexcept>

namespace mcs::analysis {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

bool basic_test(const UtilMatrix& core) { return core.own_level_sum() <= 1.0; }

Theorem1Result improved_test(const UtilMatrix& core) {
  Theorem1Result r;
  improved_test(core, r);
  return r;
}

void improved_test(const UtilMatrix& core, Theorem1Result& r) {
  const Level K = core.num_levels();
  r.schedulable = false;
  r.best_k = 0;
  r.min_picked_full_budget = true;

  if (K == 1) {
    // Plain EDF: a single criticality level has no virtual deadlines.  A
    // pseudo-condition k = 1 with theta = U_1(1), mu = 1 is recorded so that
    // core_utilization() reports the true utilization instead of a
    // placeholder (historically this case silently folded to 0).
    const double u = core.level_util(1, 1);
    r.schedulable = u <= 1.0;
    r.best_k = r.schedulable ? 1 : 0;
    r.lambda.assign(1, 0.0);
    r.lambda_valid_count = 1;
    r.theta.assign(1, u);
    r.mu.assign(1, 1.0);
    r.avail.assign(1, 1.0 - u);
    return;
  }

  // lambda_1 = 0; lambda_j (j >= 2) per Eq. (6).  `prod` carries
  // prod_{x=1}^{j-1} (1 - lambda_x) while computing lambda_j.
  r.lambda.assign(K - 1, 0.0);
  r.lambda_valid_count = 1;  // lambda_1 = 0 is always valid
  double prod = 1.0;
  for (Level j = 2; j <= K - 1; ++j) {
    double num = 0.0;
    for (Level x = j; x <= K; ++x) {
      num += core.level_util(x, j - 1);
    }
    const double denom = prod - core.level_util(j - 1, j - 1);
    if (denom <= 0.0) break;
    const double lam = num / denom;
    if (lam < 0.0 || lam >= 1.0) break;
    r.lambda[j - 1] = lam;
    r.lambda_valid_count = j;
    prod *= (1.0 - lam);
  }

  // The min term of theta, shared by every condition k.
  const double ukk = core.level_util(K, K);
  const double uk_prev = core.level_util(K, K - 1);
  const double second = (ukk < 1.0) ? uk_prev / (1.0 - ukk) : kInf;
  const double min_term = (ukk <= second) ? ukk : second;
  r.min_picked_full_budget = (ukk <= second);

  r.theta.assign(K - 1, 0.0);
  r.mu.assign(K - 1, -kInf);
  r.avail.assign(K - 1, -kInf);

  // Suffix sums of U_i(i) for i = k..K-1, built from the top down.
  double own_suffix = 0.0;
  for (Level k = K - 1; k >= 1; --k) {
    own_suffix += core.level_util(k, k);
    r.theta[k - 1] = own_suffix + min_term;
    if (k == 1) break;  // Level is unsigned
  }

  double mu_running = 1.0;
  for (Level k = 1; k <= K - 1; ++k) {
    if (k > r.lambda_valid_count) break;
    mu_running *= (1.0 - r.lambda[k - 1]);
    r.mu[k - 1] = mu_running;
    r.avail[k - 1] = mu_running - r.theta[k - 1];
    if (!r.schedulable && r.theta[k - 1] <= r.mu[k - 1]) {
      r.schedulable = true;
      r.best_k = k;
    }
  }
}

bool dual_test(const UtilMatrix& core) {
  if (core.num_levels() != 2) {
    throw std::invalid_argument("dual_test: requires exactly two levels");
  }
  const double u11 = core.level_util(1, 1);
  const double u21 = core.level_util(2, 1);
  const double u22 = core.level_util(2, 2);
  const double second = (u22 < 1.0) ? u21 / (1.0 - u22) : kInf;
  const double min_term = (u22 <= second) ? u22 : second;
  return u11 + min_term <= 1.0;
}

double dual_scaling_factor(const UtilMatrix& core) {
  if (core.num_levels() != 2) {
    throw std::invalid_argument(
        "dual_scaling_factor: requires exactly two levels");
  }
  const double u11 = core.level_util(1, 1);
  const double u21 = core.level_util(2, 1);
  if (u21 <= 0.0) return 1.0;     // no high-criticality demand
  if (u11 >= 1.0) return 1.0;     // infeasible regardless; do not shrink
  const double x = u21 / (1.0 - u11);
  if (x <= 0.0 || x > 1.0) return 1.0;
  return x;
}

}  // namespace mcs::analysis
