// The batched probe kernel bodies, compiled once per instruction set.
//
// This header is included by exactly one translation unit per ISA —
// batch_probe.cpp (the build's baseline flags) and batch_probe_avx2.cpp
// (-mavx2) — each defining MCS_BATCH_PROBE_ISA to a distinct namespace
// name, so the instantiations never collide.  lane_ops.hpp picks the widest
// backend the including TU's flags allow; batch_probe.cpp's dispatcher
// chooses between the resulting KernelTables at runtime.
//
// Loop labeling convention (checked by tools/check_vectorization.sh):
//   * "lane loop: <name>"  — plain ternary-select loop the auto-vectorizer
//     must vectorize at -O3;
//   * "simd loop: <name>"  — explicitly vectorized via lane_ops.hpp packs
//     (with a ScalarOps remainder tail, bit-identical by the lane-ops
//     contract); the script verifies these by inspecting the generated
//     machine code, not the vectorizer report.
//
// Bit-identity: see the contract in batch_probe.hpp.  The scalar reference
// for every loop is the historical code in improved_test/core_utilization;
// each ScalarOps tail below is the lane-ops spelling of exactly that code.
#ifndef MCS_BATCH_PROBE_ISA
#error "batch_probe_impl.hpp requires MCS_BATCH_PROBE_ISA to be defined"
#endif

#include <algorithm>
#include <limits>

#include "mcs/analysis/batch_probe.hpp"
#include "mcs/analysis/lane_ops.hpp"

namespace mcs::analysis::batch_kernel::MCS_BATCH_PROBE_ISA {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Materializes one hypothetical task row into `hrow` (K x M, lane-major):
/// hrow(k) = plane(l_t, k) + u_t(k) for k = 1..l_t — the same single
/// addition UtilMatrix::add performs on the scalar scratch copy.
void materialize_task_row(const LevelUtilPlanes& planes, const McTask& task,
                          double* __restrict hrow) {
  const Level jt = task.level();
  const std::size_t M = planes.num_cores();
  for (Level k = 1; k <= jt; ++k) {
    const double tu = task.utilization(k);
    const double* __restrict src = planes.plane(jt, k);
    double* __restrict dst = hrow + static_cast<std::size_t>(k - 1) * M;
    for (std::size_t m = 0; m < M; ++m) {  // lane loop: hrow
      dst[m] = src[m] + tu;
    }
  }
}

/// Materializes the hypothetical rows of a whole tile, level-by-level: each
/// committed plane row plane(l, k) is loaded once per tile and feeds every
/// tile slot whose task lives at level l, instead of being re-walked per
/// task.  Slot i's rows land at hrow + i * K * M (lane-major K x M), and
/// each row is bitwise the one materialize_task_row would produce.
void materialize_tile(const LevelUtilPlanes& planes, const TaskSet& ts,
                      const std::size_t* tasks, std::size_t tile,
                      double* __restrict hrow) {
  const Level K = planes.num_levels();
  const std::size_t M = planes.num_cores();
  const std::size_t row_stride = static_cast<std::size_t>(K) * M;
  for (Level l = 1; l <= K; ++l) {
    for (Level k = 1; k <= l; ++k) {
      const double* __restrict src = planes.plane(l, k);
      for (std::size_t i = 0; i < tile; ++i) {
        const McTask& task = ts[tasks[i]];
        if (task.level() != l) continue;
        const double tu = task.utilization(k);
        double* __restrict dst =
            hrow + i * row_stride + static_cast<std::size_t>(k - 1) * M;
        for (std::size_t m = 0; m < M; ++m) {  // lane loop: hrow tile
          dst[m] = src[m] + tu;
        }
      }
    }
  }
}

/// Per-call tables over the *committed* planes, shared by every task of one
/// 2-D call.  Each table stores the running value of a per-task accumulation
/// loop after each step, computed with the identical operation order, so a
/// task at level l_t reuses the partial sums its hypothetical row does not
/// perturb and recomputes only the remainder:
///
///   * pre_j(x)   = sum_{y=j..x} plane(y, j-1), ascending (lambda numerator
///     partials; pre_j(j-1) is the zero row the per-task loop starts from);
///     a task with l_t < j never perturbs the sum, so num = pre_j(K) whole.
///   * suffix(k)  = sum_{x=k..K-1} plane(x, x), descending (theta partials;
///     suffix(K) is the zero seed), and theta(k) = suffix(k) + min_term for
///     the committed min term — rows k > l_t are reused as-is.
///   * eq4(x)     = sum_{k=1..x} plane(k, k), ascending (Eq. (4) partials).
///   * min_term   — committed; reused whole by every task with l_t < K.
class BaseTables {
 public:
  BaseTables(const LevelUtilPlanes& planes, BatchProbeScratch& s)
      : s_(&s), K_(planes.num_levels()), M_(planes.num_cores()) {}

  [[nodiscard]] const double* pre(Level j, Level x) const {
    return s_->base_num.data() +
           (static_cast<std::size_t>(j) * (K_ + std::size_t{1}) + x) * M_;
  }
  [[nodiscard]] const double* suffix(Level k) const {
    return s_->base_suffix.data() + static_cast<std::size_t>(k) * M_;
  }
  [[nodiscard]] const double* theta(Level k) const {
    return s_->base_theta.data() + static_cast<std::size_t>(k - 1) * M_;
  }
  [[nodiscard]] const double* eq4(Level x) const {
    return s_->base_eq4.data() + static_cast<std::size_t>(x) * M_;
  }
  [[nodiscard]] const double* min_term() const {
    return s_->base_min_term.data();
  }

  /// Fills the Eq. (4) prefix table (K >= 1).
  void build_eq4(const LevelUtilPlanes& planes) {
    double* __restrict rows = s_->base_eq4.data();
    std::fill(rows, rows + M_, 0.0);
    for (Level k = 1; k <= K_; ++k) {
      const double* __restrict diag = planes.plane(k, k);
      const double* __restrict prev = rows + (k - std::size_t{1}) * M_;
      double* __restrict cur = rows + static_cast<std::size_t>(k) * M_;
      for (std::size_t m = 0; m < M_; ++m) {  // lane loop: base Eq. (4)
        cur[m] = prev[m] + diag[m];
      }
    }
  }

  /// Fills the lambda-numerator, min-term and theta tables (K >= 2).
  void build_improved(const LevelUtilPlanes& planes) {
    const Level K = static_cast<Level>(K_);
    for (Level j = 2; j + 1 <= K; ++j) {
      double* __restrict seed = s_->base_num.data() +
                                (static_cast<std::size_t>(j) * (K_ + 1) +
                                 (j - std::size_t{1})) *
                                    M_;
      std::fill(seed, seed + M_, 0.0);
      for (Level x = j; x <= K; ++x) {
        const double* __restrict r = planes.plane(x, j - 1);
        const double* __restrict prev =
            s_->base_num.data() +
            (static_cast<std::size_t>(j) * (K_ + 1) + (x - std::size_t{1})) *
                M_;
        double* __restrict cur =
            s_->base_num.data() +
            (static_cast<std::size_t>(j) * (K_ + 1) + x) * M_;
        for (std::size_t m = 0; m < M_; ++m) {  // lane loop: base numerator
          cur[m] = prev[m] + r[m];
        }
      }
    }

    const double* __restrict rkk = planes.plane(K, K);
    const double* __restrict rkprev = planes.plane(K, K - 1);
    double* __restrict mint = s_->base_min_term.data();
    for (std::size_t m = 0; m < M_; ++m) {  // lane loop: base min term
      const double ukk = rkk[m];
      const double div = rkprev[m] / (1.0 - ukk);
      const double second = ukk < 1.0 ? div : kInf;
      mint[m] = ukk <= second ? ukk : second;
    }

    double* __restrict sfx = s_->base_suffix.data();
    std::fill(sfx + (K_ * M_), sfx + (K_ + 1) * M_, 0.0);  // suffix(K) seed
    for (Level k = K - 1; k >= 1; --k) {
      const double* __restrict diag = planes.plane(k, k);
      const double* __restrict prev =
          sfx + (static_cast<std::size_t>(k) + 1) * M_;
      double* __restrict cur = sfx + static_cast<std::size_t>(k) * M_;
      double* __restrict th =
          s_->base_theta.data() + (k - std::size_t{1}) * M_;
      for (std::size_t m = 0; m < M_; ++m) {  // lane loop: base theta
        cur[m] = prev[m] + diag[m];
        th[m] = cur[m] + mint[m];
      }
      if (k == 1) break;  // Level is unsigned
    }
  }

 private:
  BatchProbeScratch* s_;
  std::size_t K_;
  std::size_t M_;
};

/// Minimum 2-D call width for which building the per-call BaseTables
/// (O(K^2 M), roughly one task's full pass) pays for itself.
constexpr std::size_t kShareMinTasks = 4;

/// Row selector with the task-row substitution hoisted out of the lane
/// loops: rows of the task's own level l_t read the hypothetical row block,
/// every other row reads the committed plane.
class RowView {
 public:
  RowView(const LevelUtilPlanes& planes, const double* hrow, Level jt)
      : planes_(&planes), hrow_(hrow), jt_(jt) {}

  [[nodiscard]] const double* operator()(Level j, Level k) const {
    if (j == jt_) {
      return hrow_ + static_cast<std::size_t>(k - 1) * planes_->num_cores();
    }
    return planes_->plane(j, k);
  }

 private:
  const LevelUtilPlanes* planes_;
  const double* hrow_;
  Level jt_;
};

/// One lane-ops pack of the lambda-validity update at lane offset m.
/// Scalar reference (per lane):
///   denom = prod[m] - diag[m]; lam = num[m] / denom;
///   ok = valid[m] == j-1 && denom > 0 && lam >= 0 && lam < 1;
///   lamj[m]  = ok ? lam : 0.0;
///   valid[m] = ok ? j : valid[m];
///   prod[m]  = ok ? prod[m] * (1 - lam) : prod[m];
/// Dead lanes (valid != j-1) may divide to IEEE inf/NaN; every select below
/// is an exact bitwise blend, so those bits are discarded unchanged.
template <class L>
inline void lambda_validity_pack(const double* __restrict num,
                                 const double* __restrict diag,
                                 double* __restrict lamj,
                                 double* __restrict valid,
                                 double* __restrict prod, double prev_j,
                                 double this_j, std::size_t m) {
  const auto zero = L::broadcast(0.0);
  const auto one = L::broadcast(1.0);
  const auto prodv = L::load(prod + m);
  const auto denom = L::sub(prodv, L::load(diag + m));
  const auto lam = L::div(L::load(num + m), denom);
  const auto validv = L::load(valid + m);
  const auto ok = L::bit_and(
      L::cmp_eq(validv, L::broadcast(prev_j)),
      L::bit_and(L::cmp_gt(denom, zero),
                 L::bit_and(L::cmp_ge(lam, zero), L::cmp_lt(lam, one))));
  L::store(lamj + m, L::blend(ok, lam, zero));
  L::store(valid + m, L::blend(ok, L::broadcast(this_j), validv));
  L::store(prod + m, L::blend(ok, L::mul(prodv, L::sub(one, lam)), prodv));
}

/// One lane-ops pack of the fused mu(k) / schedulability / Eq. (9) fold
/// step at lane offset m.  Scalar reference (per lane, uint8 flags written
/// as 0/1 doubles here):
///   usable = k <= valid[m];
///   mu_k   = usable ? mu[m] * (1 - lambda_k[m]) : mu[m];   mu[m] = mu_k;
///   a      = usable ? mu_k - theta_k[m] : -inf;
///   cond   = usable && sched[m] == 0 && theta_k[m] <= mu_k;
///   first_avail[m] = cond ? a : first_avail[m];
///   sched[m]       = sched[m] | cond;
///   (Fold) take = a >= 0; u = 1 - a;
///          best[m]  = take ? (found[m] ? min-or-max(best[m], u) : u)
///                          : best[m];
///          found[m] = found[m] | take;
template <class L, ProbePolicy P, bool Fold>
inline void mu_fold_pack(const double* __restrict th,
                         const double* __restrict lamk,
                         const double* __restrict valid, double* __restrict mu,
                         double* __restrict sched, double* __restrict best,
                         double* __restrict first_avail,
                         double* __restrict found, double this_k,
                         std::size_t m) {
  const auto zero = L::broadcast(0.0);
  const auto one = L::broadcast(1.0);
  const auto muv = L::load(mu + m);
  const auto thv = L::load(th + m);
  const auto usable = L::cmp_le(L::broadcast(this_k), L::load(valid + m));
  const auto mu_next = L::mul(muv, L::sub(one, L::load(lamk + m)));
  const auto mu_k = L::blend(usable, mu_next, muv);
  L::store(mu + m, mu_k);
  const auto a = L::blend(usable, L::sub(mu_k, thv), L::broadcast(-kInf));
  const auto schedv = L::load(sched + m);
  const auto cond = L::bit_and(
      usable, L::bit_and(L::cmp_eq(schedv, zero), L::cmp_le(thv, mu_k)));
  L::store(first_avail + m, L::blend(cond, a, L::load(first_avail + m)));
  L::store(sched + m, L::blend(cond, one, schedv));
  if constexpr (Fold) {
    // Scalar fold in core_utilization(): skip a < 0; the first feasible
    // condition seeds best, later ones fold via std::min / std::max.
    const auto take = L::cmp_ge(a, zero);
    const auto bestv = L::load(best + m);
    const auto u = L::sub(one, a);
    typename L::Pack folded;
    if constexpr (P == ProbePolicy::kMaxOverFeasible) {
      folded = L::blend(L::cmp_lt(bestv, u), u, bestv);  // std::max(best, u)
    } else {
      folded = L::blend(L::cmp_lt(u, bestv), u, bestv);  // std::min(best, u)
    }
    const auto foundv = L::load(found + m);
    const auto seeded = L::blend(L::cmp_eq(foundv, zero), u, folded);
    L::store(best + m, L::blend(take, seeded, bestv));
    L::store(found + m, L::blend(take, one, foundv));
  }
}

/// The Theorem-1 pass: fills s.valid, s.lambda, s.theta, s.min_term, s.sched
/// (and, when Fold, s.best / s.first_avail / s.found).  Requires K >= 2; the
/// task's hypothetical rows must be materialized behind `row`.
///
/// Scalar reference: improved_test(core, out) in edfvd.cpp.  The
/// data-dependent breaks there become monotone masks here:
///   * "break on invalid lambda_j"  ->  valid[m] stays at its last good j;
///     a lane is still active at step j exactly when valid[m] == j - 1;
///   * "break when k > valid"       ->  usable = k <= valid[m] (monotone
///     non-increasing over k, so frozen lanes never resume).
/// Live lanes execute the identical FP sequence; dead lanes may compute
/// IEEE inf/NaN that the selects discard.  The two loops with genuine
/// lane-wise select chains (lambda validity, mu + fold) run on explicit
/// lane-ops packs with a ScalarOps tail for the remainder lanes.
template <class Ops, ProbePolicy P, bool Fold>
void improved_pass(const LevelUtilPlanes& planes, const RowView& row, Level jt,
                   const BaseTables* base, BatchProbeScratch& s) {
  using lanes::ScalarOps;
  const Level K = planes.num_levels();
  const std::size_t M = planes.num_cores();
  const std::size_t W = Ops::kWidth;
  const std::size_t Mv = M - M % W;  // SIMD body extent; tail is scalar lanes

  double* __restrict prod = s.prod.data();
  double* __restrict valid = s.valid.data();
  for (std::size_t m = 0; m < M; ++m) {  // lane loop: lambda init
    prod[m] = 1.0;
    valid[m] = 1.0;  // lambda_1 = 0 is always valid
  }

  // lambda_j per Eq. (6), j = 2..K-1.  Row 0 of the lambda plane (lambda_1)
  // is zeroed by resize() and never written.
  for (Level j = 2; j + 1 <= K; ++j) {
    const double* num;
    if (base != nullptr && jt < j) {
      // The task's row is outside x = j..K: the committed sum is the whole
      // numerator.
      num = base->pre(j, K);
    } else if (base != nullptr) {
      // Resume the shared partial sum at x = jt (the one perturbed step),
      // then extend with the remaining committed rows in order.
      double* __restrict n = s.acc.data();
      const double* __restrict pre = base->pre(j, jt - 1);
      const double* __restrict h = row(jt, j - 1);
      for (std::size_t m = 0; m < M; ++m) {  // lane loop: numerator resume
        n[m] = pre[m] + h[m];
      }
      for (Level x = jt + 1; x <= K; ++x) {
        const double* __restrict r = planes.plane(x, j - 1);
        for (std::size_t m = 0; m < M; ++m) {  // lane loop: numerator extend
          n[m] += r[m];
        }
      }
      num = n;
    } else {
      double* __restrict n = s.acc.data();
      std::fill(n, n + M, 0.0);
      for (Level x = j; x <= K; ++x) {
        const double* __restrict r = row(x, j - 1);
        for (std::size_t m = 0; m < M; ++m) {  // lane loop: lambda numerator
          n[m] += r[m];
        }
      }
      num = n;
    }
    const double* __restrict diag = row(j - 1, j - 1);
    double* __restrict lamj =
        s.lambda.data() + static_cast<std::size_t>(j - 1) * M;
    const double prev_j = static_cast<double>(j - 1);
    const double this_j = static_cast<double>(j);
    // simd loop: lambda validity
    for (std::size_t m = 0; m < Mv; m += W) {
      lambda_validity_pack<Ops>(num, diag, lamj, valid, prod, prev_j, this_j,
                                m);
    }
    for (std::size_t m = Mv; m < M; ++m) {  // remainder lanes
      lambda_validity_pack<ScalarOps>(num, diag, lamj, valid, prod, prev_j,
                                      this_j, m);
    }
  }

  // The min term of theta, shared by every condition k.  With BaseTables it
  // is committed data unless the task lives at level K.
  const double* min_term;
  if (base != nullptr && jt < K) {
    min_term = base->min_term();
  } else {
    const double* __restrict rkk = row(K, K);
    const double* __restrict rkprev = row(K, K - 1);
    double* __restrict mint = s.min_term.data();
    for (std::size_t m = 0; m < M; ++m) {  // lane loop: min term
      const double ukk = rkk[m];
      const double div = rkprev[m] / (1.0 - ukk);  // ukk >= 1: discarded
      const double second = ukk < 1.0 ? div : kInf;
      mint[m] = ukk <= second ? ukk : second;
    }
    min_term = mint;
  }

  // theta(k) from the own-level suffix sums, built top-down.  th_rows[k-1]
  // points at row k: the per-task scratch row where the task's own-level
  // contribution lands, or the shared committed row where it cannot.
  const double** __restrict th_rows = s.th_rows.data();
  if (base == nullptr) {
    double* __restrict suffix = s.acc.data();
    std::fill(suffix, suffix + M, 0.0);
    for (Level k = K - 1; k >= 1; --k) {
      const double* __restrict diag = row(k, k);
      double* __restrict th =
          s.theta.data() + static_cast<std::size_t>(k - 1) * M;
      th_rows[k - 1] = th;
      for (std::size_t m = 0; m < M; ++m) {  // lane loop: theta
        suffix[m] += diag[m];
        th[m] = suffix[m] + min_term[m];
      }
      if (k == 1) break;  // Level is unsigned
    }
  } else if (jt == K) {
    // Every suffix is committed; only the min term is the task's own.
    for (Level k = K - 1; k >= 1; --k) {
      const double* __restrict sfx = base->suffix(k);
      double* __restrict th =
          s.theta.data() + static_cast<std::size_t>(k - 1) * M;
      th_rows[k - 1] = th;
      for (std::size_t m = 0; m < M; ++m) {  // lane loop: theta re-term
        th[m] = sfx[m] + min_term[m];
      }
      if (k == 1) break;  // Level is unsigned
    }
  } else {
    // Rows above the task's level are committed; resume the shared suffix
    // at k = jt (the perturbed step) and continue down with committed
    // diagonals.
    for (Level k = K - 1; k > jt; --k) th_rows[k - 1] = base->theta(k);
    double* __restrict suffix = s.acc.data();
    {
      const double* __restrict pre = base->suffix(jt + 1);
      const double* __restrict diag = row(jt, jt);
      double* __restrict th =
          s.theta.data() + static_cast<std::size_t>(jt - 1) * M;
      th_rows[jt - 1] = th;
      for (std::size_t m = 0; m < M; ++m) {  // lane loop: theta resume
        suffix[m] = pre[m] + diag[m];
        th[m] = suffix[m] + min_term[m];
      }
    }
    for (Level k = jt - 1; k >= 1; --k) {
      const double* __restrict diag = planes.plane(k, k);
      double* __restrict th =
          s.theta.data() + static_cast<std::size_t>(k - 1) * M;
      th_rows[k - 1] = th;
      for (std::size_t m = 0; m < M; ++m) {  // lane loop: theta extend
        suffix[m] += diag[m];
        th[m] = suffix[m] + min_term[m];
      }
      if (k == 1) break;  // Level is unsigned
    }
  }

  // mu(k) running product, the schedulability conditions, and (when Fold)
  // the Eq. (9) policy fold over feasible conditions — fused into one walk
  // over k so avail values never need a (K-1) x M store.
  double* __restrict mu = s.mu.data();
  double* __restrict sched = s.sched.data();
  double* __restrict best = s.best.data();
  double* __restrict first_avail = s.first_avail.data();
  double* __restrict found = s.found.data();
  for (std::size_t m = 0; m < M; ++m) {  // lane loop: mu/fold init
    mu[m] = 1.0;
    sched[m] = 0.0;
    best[m] = 0.0;
    first_avail[m] = 0.0;
    found[m] = 0.0;
  }
  for (Level k = 1; k + 1 <= K; ++k) {
    const double* __restrict th = th_rows[k - 1];
    const double* __restrict lamk =
        s.lambda.data() + static_cast<std::size_t>(k - 1) * M;
    const double this_k = static_cast<double>(k);
    // simd loop: mu + fold
    for (std::size_t m = 0; m < Mv; m += W) {
      mu_fold_pack<Ops, P, Fold>(th, lamk, valid, mu, sched, best, first_avail,
                                 found, this_k, m);
    }
    for (std::size_t m = Mv; m < M; ++m) {  // remainder lanes
      mu_fold_pack<ScalarOps, P, Fold>(th, lamk, valid, mu, sched, best,
                                       first_avail, found, this_k, m);
    }
  }
}

template <ProbePolicy P>
void fold_utilization(const BatchProbeScratch& s, std::size_t M,
                      double* __restrict out_util) {
  const double* __restrict sched = s.sched.data();
  const double* __restrict best = s.best.data();
  const double* __restrict first_avail = s.first_avail.data();
  const double* __restrict found = s.found.data();
  for (std::size_t m = 0; m < M; ++m) {  // lane loop: utilization writeback
    double u;
    if constexpr (P == ProbePolicy::kFirstFeasible) {
      u = 1.0 - first_avail[m];
    } else {
      u = found[m] != 0.0 ? best[m] : kInf;
    }
    out_util[m] = sched[m] != 0.0 ? u : kInf;
  }
}

template <class Ops>
void run_improved(const LevelUtilPlanes& planes, const RowView& row, Level jt,
                  const BaseTables* base, ProbePolicy policy, bool fold,
                  BatchProbeScratch& s) {
  switch (policy) {
    case ProbePolicy::kFirstFeasible:
      fold ? improved_pass<Ops, ProbePolicy::kFirstFeasible, true>(
                 planes, row, jt, base, s)
           : improved_pass<Ops, ProbePolicy::kFirstFeasible, false>(
                 planes, row, jt, base, s);
      break;
    case ProbePolicy::kMinOverFeasible:
      fold ? improved_pass<Ops, ProbePolicy::kMinOverFeasible, true>(
                 planes, row, jt, base, s)
           : improved_pass<Ops, ProbePolicy::kMinOverFeasible, false>(
                 planes, row, jt, base, s);
      break;
    case ProbePolicy::kMaxOverFeasible:
      fold ? improved_pass<Ops, ProbePolicy::kMaxOverFeasible, true>(
                 planes, row, jt, base, s)
           : improved_pass<Ops, ProbePolicy::kMaxOverFeasible, false>(
                 planes, row, jt, base, s);
      break;
  }
}

/// Eq. (4) left-hand side with the task added: sum_k row(k, k), ascending —
/// the same accumulation order as UtilMatrix::own_level_sum.  With
/// BaseTables the committed prefix is resumed at k = l_t and extended with
/// the remaining committed diagonals.
void basic_mask(const LevelUtilPlanes& planes, const RowView& row, Level jt,
                const BaseTables* base, BatchProbeScratch& s,
                std::uint8_t* __restrict out) {
  const Level K = planes.num_levels();
  const std::size_t M = planes.num_cores();
  double* __restrict total = s.acc.data();
  if (base != nullptr) {
    const double* __restrict pre = base->eq4(jt - 1);
    const double* __restrict h = row(jt, jt);
    for (std::size_t m = 0; m < M; ++m) {  // lane loop: Eq. (4) resume
      total[m] = pre[m] + h[m];
    }
    for (Level k = jt + 1; k <= K; ++k) {
      const double* __restrict diag = planes.plane(k, k);
      for (std::size_t m = 0; m < M; ++m) {  // lane loop: Eq. (4) extend
        total[m] += diag[m];
      }
    }
  } else {
    std::fill(total, total + M, 0.0);
    for (Level k = 1; k <= K; ++k) {
      const double* __restrict diag = row(k, k);
      for (std::size_t m = 0; m < M; ++m) {  // lane loop: Eq. (4) sum
        total[m] += diag[m];
      }
    }
  }
  for (std::size_t m = 0; m < M; ++m) {  // lane loop: Eq. (4) mask
    out[m] = static_cast<std::uint8_t>(total[m] <= 1.0 ? 1 : 0);
  }
}

/// The post-pass shared by the 1-D and 2-D utilization kernels: one task's
/// materialized rows -> one M-wide utilization row.
template <class Ops>
void utilization_row(const LevelUtilPlanes& planes, const RowView& row,
                     Level jt, const BaseTables* base, ProbePolicy policy,
                     BatchProbeScratch& s, double* __restrict out_util) {
  const Level K = planes.num_levels();
  const std::size_t M = planes.num_cores();
  if (K == 1) {
    // Same K == 1 fast path as core_utilization(): report U_1(1) exactly.
    const double* __restrict r11 = row(1, 1);
    for (std::size_t m = 0; m < M; ++m) {  // lane loop: K == 1 utilization
      out_util[m] = r11[m] <= 1.0 ? r11[m] : kInf;
    }
    return;
  }
  run_improved<Ops>(planes, row, jt, base, policy, /*fold=*/true, s);
  switch (policy) {
    case ProbePolicy::kFirstFeasible:
      fold_utilization<ProbePolicy::kFirstFeasible>(s, M, out_util);
      break;
    case ProbePolicy::kMinOverFeasible:
      fold_utilization<ProbePolicy::kMinOverFeasible>(s, M, out_util);
      break;
    case ProbePolicy::kMaxOverFeasible:
      fold_utilization<ProbePolicy::kMaxOverFeasible>(s, M, out_util);
      break;
  }
}

/// Shared fits post-pass: basic + (K >= 2) improved accept masks per task.
template <class Ops>
void fits_row(const LevelUtilPlanes& planes, const RowView& row, Level jt,
              const BaseTables* base, BatchProbeScratch& s,
              std::uint8_t* __restrict basic, std::uint8_t* __restrict fits) {
  const Level K = planes.num_levels();
  const std::size_t M = planes.num_cores();
  basic_mask(planes, row, jt, base, s, basic);
  if (K == 1) {
    // Eq. (4) and the improved test coincide at K == 1 (plain EDF).
    std::copy(basic, basic + M, fits);
    return;
  }
  // The scalar path runs the improved test only where Eq. (4) failed; the
  // improved test is pure, so running it on every lane and OR-ing with the
  // basic mask yields the identical accept decision.
  run_improved<Ops>(planes, row, jt, base, ProbePolicy::kMinOverFeasible,
                    /*fold=*/false, s);
  const double* __restrict sched = s.sched.data();
  for (std::size_t m = 0; m < M; ++m) {  // lane loop: accept mask
    fits[m] = static_cast<std::uint8_t>(basic[m] |
                                        (sched[m] != 0.0 ? 1u : 0u));
  }
}

void ensure_scratch(const LevelUtilPlanes& planes, BatchProbeScratch& s) {
  if (s.levels != planes.num_levels() || s.cores != planes.num_cores()) {
    s.resize(planes.num_levels(), planes.num_cores());
  }
}

// --- KernelTable entry points ------------------------------------------------

template <class Ops>
void util_1d(const LevelUtilPlanes& planes, const McTask& task,
             ProbePolicy policy, BatchProbeScratch& s, double* out_util) {
  ensure_scratch(planes, s);
  materialize_task_row(planes, task, s.hrow.data());
  const RowView row(planes, s.hrow.data(), task.level());
  utilization_row<Ops>(planes, row, task.level(), nullptr, policy, s,
                       out_util);
}

template <class Ops>
void fits_1d(const LevelUtilPlanes& planes, const McTask& task,
             BatchProbeScratch& s, std::uint8_t* basic, std::uint8_t* fits) {
  ensure_scratch(planes, s);
  materialize_task_row(planes, task, s.hrow.data());
  const RowView row(planes, s.hrow.data(), task.level());
  fits_row<Ops>(planes, row, task.level(), nullptr, s, basic, fits);
}

void fits_basic_1d(const LevelUtilPlanes& planes, const McTask& task,
                   BatchProbeScratch& s, std::uint8_t* basic) {
  ensure_scratch(planes, s);
  materialize_task_row(planes, task, s.hrow.data());
  const RowView row(planes, s.hrow.data(), task.level());
  basic_mask(planes, row, task.level(), nullptr, s, basic);
}

template <class Ops>
void util_2d(const LevelUtilPlanes& planes, const TaskSet& ts,
             const std::size_t* tasks, std::size_t T, ProbePolicy policy,
             BatchProbeScratch& s, double* out_util) {
  ensure_scratch(planes, s);
  const Level K = planes.num_levels();
  const std::size_t M = planes.num_cores();
  const std::size_t row_stride = static_cast<std::size_t>(K) * M;
  BaseTables tables(planes, s);
  const BaseTables* base = nullptr;
  if (K >= 2 && T >= kShareMinTasks) {
    tables.build_improved(planes);
    base = &tables;
  }
  for (std::size_t t0 = 0; t0 < T; t0 += kBatchProbeTileTasks) {
    const std::size_t tile = std::min(kBatchProbeTileTasks, T - t0);
    materialize_tile(planes, ts, tasks + t0, tile, s.hrow.data());
    for (std::size_t i = 0; i < tile; ++i) {
      const Level jt = ts[tasks[t0 + i]].level();
      const RowView row(planes, s.hrow.data() + i * row_stride, jt);
      utilization_row<Ops>(planes, row, jt, base, policy, s,
                           out_util + (t0 + i) * M);
    }
  }
}

template <class Ops>
void fits_2d(const LevelUtilPlanes& planes, const TaskSet& ts,
             const std::size_t* tasks, std::size_t T, BatchProbeScratch& s,
             std::uint8_t* basic, std::uint8_t* fits) {
  ensure_scratch(planes, s);
  const Level K = planes.num_levels();
  const std::size_t M = planes.num_cores();
  const std::size_t row_stride = static_cast<std::size_t>(K) * M;
  BaseTables tables(planes, s);
  const BaseTables* base = nullptr;
  if (K >= 2 && T >= kShareMinTasks) {
    tables.build_eq4(planes);
    tables.build_improved(planes);
    base = &tables;
  }
  for (std::size_t t0 = 0; t0 < T; t0 += kBatchProbeTileTasks) {
    const std::size_t tile = std::min(kBatchProbeTileTasks, T - t0);
    materialize_tile(planes, ts, tasks + t0, tile, s.hrow.data());
    for (std::size_t i = 0; i < tile; ++i) {
      const Level jt = ts[tasks[t0 + i]].level();
      const RowView row(planes, s.hrow.data() + i * row_stride, jt);
      fits_row<Ops>(planes, row, jt, base, s, basic + (t0 + i) * M,
                    fits + (t0 + i) * M);
    }
  }
}

void fits_basic_2d(const LevelUtilPlanes& planes, const TaskSet& ts,
                   const std::size_t* tasks, std::size_t T,
                   BatchProbeScratch& s, std::uint8_t* basic) {
  ensure_scratch(planes, s);
  const Level K = planes.num_levels();
  const std::size_t M = planes.num_cores();
  const std::size_t row_stride = static_cast<std::size_t>(K) * M;
  BaseTables tables(planes, s);
  const BaseTables* base = nullptr;
  if (K >= 2 && T >= kShareMinTasks) {
    tables.build_eq4(planes);
    base = &tables;
  }
  for (std::size_t t0 = 0; t0 < T; t0 += kBatchProbeTileTasks) {
    const std::size_t tile = std::min(kBatchProbeTileTasks, T - t0);
    materialize_tile(planes, ts, tasks + t0, tile, s.hrow.data());
    for (std::size_t i = 0; i < tile; ++i) {
      const Level jt = ts[tasks[t0 + i]].level();
      const RowView row(planes, s.hrow.data() + i * row_stride, jt);
      basic_mask(planes, row, jt, base, s, basic + (t0 + i) * M);
    }
  }
}

template <class Ops>
const KernelTable& table_for(const char* backend) {
  static const KernelTable t{util_1d<Ops>,  fits_1d<Ops>,  fits_basic_1d,
                             util_2d<Ops>,  fits_2d<Ops>,  fits_basic_2d,
                             backend};
  return t;
}

}  // namespace

/// This ISA's kernel table, on the widest lane backend its flags allow.
const KernelTable& table() {
  return table_for<lanes::DefaultOps>(lanes::kDefaultBackend);
}

/// The same kernels pinned to the one-lane ScalarOps reference backend
/// (identical results by the lane-ops contract; used for differential
/// testing via set_batch_probe_backend("scalar")).
const KernelTable& scalar_table() {
  return table_for<lanes::ScalarOps>("scalar");
}

}  // namespace mcs::analysis::batch_kernel::MCS_BATCH_PROBE_ISA
