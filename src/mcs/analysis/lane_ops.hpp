// Portable SIMD lane operations for the batched probe kernels.
//
// The auto-vectorizer handles most of the kernel's lane loops, but gives up
// on the two loops whose state updates look like serial dependencies at -O3
// (the Eq. (9) policy fold and the lambda-validity counter).  Those loops
// are written once against the small operation set below and compiled per
// backend:
//
//   * Avx2Ops    -- 4 doubles per lane op (requires __AVX2__ in the TU),
//   * Sse2Ops    -- 2 doubles per lane op (x86-64 baseline),
//   * ScalarOps  -- 1 double, plain expressions; the reference semantics.
//
// Bit-identity contract: every backend performs the same IEEE-754 operation
// per lane (add/sub/mul/div map to the corresponding vector instruction,
// which is IEEE-identical lane-wise; there is deliberately no FMA in this
// set).  Masks are full-width lane patterns (all-ones / all-zero) produced
// only by the cmp_* operations, and blend(mask, a, b) is an exact bitwise
// select -- so `blend(cmp_lt(x, y), a, b)` computes precisely the scalar
// `x < y ? a : b`, NaN ordering included.  A kernel written against these
// ops therefore produces the same bits on every backend, which the
// batch-probe property tests and the probe-parity fuzz target enforce.
//
// Dispatch: each translation unit statically selects the widest backend its
// compile flags allow (kDefaultBackend/DefaultOps below).  Runtime dispatch
// to an AVX2-compiled sibling TU is layered on top by batch_probe.cpp via
// __builtin_cpu_supports; this header stays freestanding.
//
// Defining MCS_LANE_REQUIRE_SIMD makes a TU fail to compile if the scalar
// fallback would be selected -- tools/check_vectorization.sh uses it to
// prove the intrinsics path is active on x86-64 builds.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#define MCS_LANE_OPS_X86 1
#include <immintrin.h>
#endif

namespace mcs::analysis::lanes {

/// Reference backend: one double per "lane", masks as all-ones/all-zero
/// bit patterns.  Every other backend must match it bit for bit.
struct ScalarOps {
  static constexpr std::size_t kWidth = 1;
  using Pack = double;

  static Pack load(const double* p) noexcept { return *p; }
  static void store(double* p, Pack v) noexcept { *p = v; }
  static Pack broadcast(double v) noexcept { return v; }

  static Pack add(Pack a, Pack b) noexcept { return a + b; }
  static Pack sub(Pack a, Pack b) noexcept { return a - b; }
  static Pack mul(Pack a, Pack b) noexcept { return a * b; }
  static Pack div(Pack a, Pack b) noexcept { return a / b; }

  static Pack cmp_eq(Pack a, Pack b) noexcept { return mask(a == b); }
  static Pack cmp_gt(Pack a, Pack b) noexcept { return mask(a > b); }
  static Pack cmp_ge(Pack a, Pack b) noexcept { return mask(a >= b); }
  static Pack cmp_lt(Pack a, Pack b) noexcept { return mask(a < b); }
  static Pack cmp_le(Pack a, Pack b) noexcept { return mask(a <= b); }

  static Pack bit_and(Pack a, Pack b) noexcept {
    return std::bit_cast<double>(std::bit_cast<std::uint64_t>(a) &
                                 std::bit_cast<std::uint64_t>(b));
  }

  /// m ? a : b per lane; m must be a mask (all-ones or all-zero).
  static Pack blend(Pack m, Pack a, Pack b) noexcept {
    const std::uint64_t mi = std::bit_cast<std::uint64_t>(m);
    return std::bit_cast<double>((std::bit_cast<std::uint64_t>(a) & mi) |
                                 (std::bit_cast<std::uint64_t>(b) & ~mi));
  }

 private:
  static Pack mask(bool b) noexcept {
    return std::bit_cast<double>(b ? ~std::uint64_t{0} : std::uint64_t{0});
  }
};

#if defined(MCS_LANE_OPS_X86)

/// Two doubles per op; the x86-64 baseline (SSE2 is architectural).
struct Sse2Ops {
  static constexpr std::size_t kWidth = 2;
  using Pack = __m128d;

  static Pack load(const double* p) noexcept { return _mm_loadu_pd(p); }
  static void store(double* p, Pack v) noexcept { _mm_storeu_pd(p, v); }
  static Pack broadcast(double v) noexcept { return _mm_set1_pd(v); }

  static Pack add(Pack a, Pack b) noexcept { return _mm_add_pd(a, b); }
  static Pack sub(Pack a, Pack b) noexcept { return _mm_sub_pd(a, b); }
  static Pack mul(Pack a, Pack b) noexcept { return _mm_mul_pd(a, b); }
  static Pack div(Pack a, Pack b) noexcept { return _mm_div_pd(a, b); }

  static Pack cmp_eq(Pack a, Pack b) noexcept { return _mm_cmpeq_pd(a, b); }
  static Pack cmp_gt(Pack a, Pack b) noexcept { return _mm_cmpgt_pd(a, b); }
  static Pack cmp_ge(Pack a, Pack b) noexcept { return _mm_cmpge_pd(a, b); }
  static Pack cmp_lt(Pack a, Pack b) noexcept { return _mm_cmplt_pd(a, b); }
  static Pack cmp_le(Pack a, Pack b) noexcept { return _mm_cmple_pd(a, b); }

  static Pack bit_and(Pack a, Pack b) noexcept { return _mm_and_pd(a, b); }

  static Pack blend(Pack m, Pack a, Pack b) noexcept {
    // SSE2 has no blendv; and/andnot/or is the exact bitwise select.
    return _mm_or_pd(_mm_and_pd(m, a), _mm_andnot_pd(m, b));
  }
};

#if defined(__AVX2__)

/// Four doubles per op; only compiled into TUs built with AVX2 enabled
/// (batch_probe_avx2.cpp, or everything under -march=x86-64-v3).
struct Avx2Ops {
  static constexpr std::size_t kWidth = 4;
  using Pack = __m256d;

  static Pack load(const double* p) noexcept { return _mm256_loadu_pd(p); }
  static void store(double* p, Pack v) noexcept { _mm256_storeu_pd(p, v); }
  static Pack broadcast(double v) noexcept { return _mm256_set1_pd(v); }

  static Pack add(Pack a, Pack b) noexcept { return _mm256_add_pd(a, b); }
  static Pack sub(Pack a, Pack b) noexcept { return _mm256_sub_pd(a, b); }
  static Pack mul(Pack a, Pack b) noexcept { return _mm256_mul_pd(a, b); }
  static Pack div(Pack a, Pack b) noexcept { return _mm256_div_pd(a, b); }

  static Pack cmp_eq(Pack a, Pack b) noexcept {
    return _mm256_cmp_pd(a, b, _CMP_EQ_OQ);
  }
  static Pack cmp_gt(Pack a, Pack b) noexcept {
    return _mm256_cmp_pd(a, b, _CMP_GT_OQ);
  }
  static Pack cmp_ge(Pack a, Pack b) noexcept {
    return _mm256_cmp_pd(a, b, _CMP_GE_OQ);
  }
  static Pack cmp_lt(Pack a, Pack b) noexcept {
    return _mm256_cmp_pd(a, b, _CMP_LT_OQ);
  }
  static Pack cmp_le(Pack a, Pack b) noexcept {
    return _mm256_cmp_pd(a, b, _CMP_LE_OQ);
  }

  static Pack bit_and(Pack a, Pack b) noexcept { return _mm256_and_pd(a, b); }

  static Pack blend(Pack m, Pack a, Pack b) noexcept {
    return _mm256_blendv_pd(b, a, m);  // mask true picks a
  }
};

#endif  // __AVX2__
#endif  // MCS_LANE_OPS_X86

// The widest backend this TU's compile flags allow.
#if defined(__AVX2__) && defined(MCS_LANE_OPS_X86)
using DefaultOps = Avx2Ops;
inline constexpr const char* kDefaultBackend = "avx2";
#elif defined(MCS_LANE_OPS_X86)
using DefaultOps = Sse2Ops;
inline constexpr const char* kDefaultBackend = "sse2";
#else
using DefaultOps = ScalarOps;
inline constexpr const char* kDefaultBackend = "scalar";
#if defined(MCS_LANE_REQUIRE_SIMD)
#error "lane_ops: scalar fallback selected in a TU that requires SIMD lanes"
#endif
#endif

}  // namespace mcs::analysis::lanes
