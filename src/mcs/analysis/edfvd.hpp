// EDF-VD uniprocessor schedulability tests for MC task subsets.
//
// Implements, for the subset of tasks on one core (given as a UtilMatrix):
//
//  * basic_test     -- Eq. (4):  sum_k U_k(k) <= 1.  Sufficient; reduces
//                      EDF-VD to plain EDF (no virtual deadlines needed).
//  * improved_test  -- Theorem 1 (Baruah et al., ESA'11, as restated in the
//                      paper): for some k in 1..K-1,
//
//        theta(k) = sum_{i=k}^{K-1} U_i(i)
//                   + min{ U_K(K), U_K(K-1) / (1 - U_K(K)) }
//        mu(k)    = prod_{j=1}^{k} (1 - lambda_j)
//        theta(k) <= mu(k)
//
//      with lambda_1 = 0 and, for j >= 2,
//
//        lambda_j = sum_{x=j}^{K} U_x(j-1)
//                   / ( prod_{x=1}^{j-1} (1 - lambda_x) - U_{j-1}(j-1) ).
//
//      For K = 2 this reduces exactly to the paper's Eq. (7) with
//      lambda_2 = U_2(1) / (1 - U_1(1)), the classical EDF-VD scaling factor.
//  * dual_test      -- Eq. (7) directly (K == 2 convenience/reference).
//
// Numerical edge cases (see DESIGN.md): if U_K(K) >= 1 the min's second
// operand is +infinity; a lambda_j is "valid" only when its denominator is
// positive and the resulting value lies in [0, 1).  Conditions whose mu(k)
// needs an invalid lambda are unusable.
#pragma once

#include <vector>

#include "mcs/core/taskset.hpp"

namespace mcs::analysis {

/// Detailed outcome of the improved (Theorem 1) test on one core.
struct Theorem1Result {
  bool schedulable = false;

  /// Smallest k (1-based) for which condition (5) holds; 0 if none.  The
  /// runtime engine restores original deadlines once the core's mode reaches
  /// this level (paper Sec. II-B).
  Level best_k = 0;

  /// lambda_j for j = 1..K-1 (index j-1).  Entries at or beyond
  /// lambda_valid_count are meaningless.
  std::vector<double> lambda;

  /// Number of leading valid lambda_j values (lambda_1..lambda_v).
  Level lambda_valid_count = 0;

  /// theta(k), mu(k) and A(k) = mu(k) - theta(k) for k = 1..K-1 (index k-1).
  /// For k > lambda_valid_count the condition is unusable: mu(k) is set to
  /// -infinity so A(k) < 0.
  std::vector<double> theta;
  std::vector<double> mu;
  std::vector<double> avail;

  /// True when the min term in theta picked its first operand U_K(K); the
  /// runtime engine then restores level-K deadlines at the mode switch.
  bool min_picked_full_budget = true;
};

/// Eq. (4): sufficient utilization test.  Also covers K == 1 (plain EDF).
[[nodiscard]] bool basic_test(const UtilMatrix& core);

/// Theorem 1 improved test.  For K == 1 the test degenerates to plain EDF
/// (schedulable iff U_1(1) <= 1, best_k = 1 by convention) and a single
/// pseudo-condition is recorded — theta = U_1(1), mu = 1, A = 1 - U_1(1) —
/// so core_utilization() folds to the true utilization for every K.
[[nodiscard]] Theorem1Result improved_test(const UtilMatrix& core);

/// Allocation-free variant: writes into `out`, reusing its vectors.  The
/// hot path for probe loops (PlacementEngine keeps one scratch result).
void improved_test(const UtilMatrix& core, Theorem1Result& out);

/// Eq. (7): the dual-criticality (K == 2) specialization,
/// U_1(1) + min{U_2(2), U_2(1)/(1 - U_2(2))} <= 1.
/// Requires core.num_levels() == 2.
[[nodiscard]] bool dual_test(const UtilMatrix& core);

/// The classical dual-criticality EDF-VD deadline-scaling factor
/// x = U_2(1) / (1 - U_1(1)), clamped to (0, 1].  Returns 1 when there are
/// no level-2 tasks or when no shrinking is required/possible.
/// Requires core.num_levels() == 2.
[[nodiscard]] double dual_scaling_factor(const UtilMatrix& core);

}  // namespace mcs::analysis
