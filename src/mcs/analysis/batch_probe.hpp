// Batched all-cores probe kernels over struct-of-arrays planes.
//
// Evaluates "what if task tau_i joined core m" for every core m in one pass:
// the hypothetical task row is materialized once (H(k) = plane(l_t, k) + u_t(k)),
// and the Theorem-1 / Eq. (4) arithmetic runs as a sequence of loops over the
// core lane (the innermost dimension), each of which auto-vectorizes:
//
//   * no per-core virtual calls or matrix copies,
//   * per-level branches (which row feeds a term, which policy folds) are
//     hoisted out of the lane loop,
//   * data-dependent scalar `break`s (invalid lambda_j, first feasible k)
//     become monotone per-lane validity masks expressed as ternary selects.
//
// Bit-identity contract: every floating-point operation that contributes to
// a lane's result is the same operation, in the same order, as the scalar
// path (improved_test + core_utilization on a UtilMatrix with the task
// added).  Masked-out lanes may evaluate extra arithmetic — including
// divisions whose IEEE inf/NaN results are discarded by the selects — but a
// live lane's value stream is identical, so ProbeResults and accept masks
// match the scalar API bit for bit (enforced by tests/analysis/
// batch_probe_test and the probe-parity fuzz target).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mcs/analysis/core_util.hpp"
#include "mcs/analysis/soa_planes.hpp"

namespace mcs::analysis {

/// Reusable lane buffers for the batched kernels (all sized by resize();
/// no allocation afterwards while K and M are stable).  Planes are
/// lane-major: row r of a (K-1) x M buffer starts at data() + r * cores.
struct BatchProbeScratch {
  void resize(Level num_levels, std::size_t num_cores);

  std::vector<double> hrow;        ///< hypothetical task row H(k), K x M
  std::vector<double> lambda;      ///< lambda_j plane (Eq. 6), (K-1) x M
  std::vector<double> theta;       ///< theta(k) plane, (K-1) x M
  std::vector<double> acc;         ///< M-wide accumulator (num/suffix/sum)
  std::vector<double> prod;        ///< prod_{x<j} (1 - lambda_x), M
  std::vector<double> min_term;    ///< min{U_K(K), U_K(K-1)/(1-U_K(K))}, M
  std::vector<double> mu;          ///< running mu(k) product, M
  std::vector<double> best;        ///< policy-fold accumulator, M
  std::vector<double> first_avail; ///< A(best_k) for kFirstFeasible, M
  std::vector<std::uint32_t> valid;///< lambda_valid_count per lane, M
  std::vector<std::uint8_t> sched; ///< Theorem-1 schedulable mask, M
  std::vector<std::uint8_t> found; ///< fold saw a feasible condition, M
  Level levels = 0;
  std::size_t cores = 0;
};

/// Batched core_utilization: out_util[m] = U^{Psi_m + {tau}} folded per
/// `policy`, +infinity where the improved test rejects — bit-identical to
/// core_utilization(with-task matrix, scratch, policy) on every core.
/// `out_util` must hold planes.num_cores() doubles.
void batch_core_utilization(const LevelUtilPlanes& planes, const McTask& task,
                            ProbePolicy policy, BatchProbeScratch& scratch,
                            double* out_util);

/// Batched Eq. (4) + Theorem-1 accept masks: basic[m] = Eq. (4) holds with
/// the task added, fits[m] = basic[m] || improved-test schedulable — the
/// batched equivalent of PlacementEngine::probe_fits per core.  Both outputs
/// must hold planes.num_cores() bytes.
void batch_fits(const LevelUtilPlanes& planes, const McTask& task,
                BatchProbeScratch& scratch, std::uint8_t* basic,
                std::uint8_t* fits);

/// Eq. (4) mask only (ablation A4).
void batch_fits_basic(const LevelUtilPlanes& planes, const McTask& task,
                      BatchProbeScratch& scratch, std::uint8_t* basic);

}  // namespace mcs::analysis
