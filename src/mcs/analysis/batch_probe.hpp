// Batched probe kernels over struct-of-arrays planes: 1-D (one task, all
// cores) and 2-D (a tile of tasks x all cores).
//
// 1-D: evaluates "what if task tau_i joined core m" for every core m in one
// pass: the hypothetical task row is materialized once (H(k) = plane(l_t, k)
// + u_t(k)), and the Theorem-1 / Eq. (4) arithmetic runs as a sequence of
// loops over the core lane (the innermost dimension):
//
//   * no per-core virtual calls or matrix copies,
//   * per-level branches (which row feeds a term, which policy folds) are
//     hoisted out of the lane loop,
//   * data-dependent scalar `break`s (invalid lambda_j, first feasible k)
//     become monotone per-lane validity masks expressed as ternary selects.
//
// 2-D: evaluates T candidate tasks against all M cores in one tiled pass.
// Tasks are processed in task-major tiles of kBatchProbeTileTasks; within a
// tile the hypothetical rows of every task are materialized level-by-level
// (each committed plane row is loaded once per tile, not once per task) and
// the planes stay cache-resident across the tile's per-task passes.  Output
// buffers are task-major: row t (length M) is task tasks[t] against every
// core, bit-identical to the corresponding 1-D call.
//
// Lane loops the auto-vectorizer handles are plain ternary-select loops; the
// two it abandons (the Eq. (9) policy fold and the lambda-validity counter)
// use explicit SIMD via lane_ops.hpp (AVX2/SSE2/scalar).  Backends are
// selected per translation unit at compile time and upgraded at runtime
// (batch_probe.cpp dispatches to an AVX2-compiled sibling TU when the CPU
// supports it); batch_probe_backend()/set_batch_probe_backend() expose the
// choice for tests and diagnostics.
//
// Bit-identity contract: every floating-point operation that contributes to
// a lane's result is the same operation, in the same order, as the scalar
// path (improved_test + core_utilization on a UtilMatrix with the task
// added) — on every backend, at every tile position.  Masked-out lanes may
// evaluate extra arithmetic — including divisions whose IEEE inf/NaN results
// are discarded by the selects — but a live lane's value stream is
// identical, so ProbeResults and accept masks match the scalar API bit for
// bit (enforced by tests/analysis/batch_probe_test, batch_probe_2d_test and
// the probe-parity fuzz target).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "mcs/analysis/core_util.hpp"
#include "mcs/analysis/soa_planes.hpp"
#include "mcs/core/taskset.hpp"

namespace mcs::analysis {

/// Tasks per 2-D tile: big enough to amortize the per-tile plane walk,
/// small enough that tile scratch (kBatchProbeTileTasks x K x M doubles)
/// stays L1/L2-resident at the largest supported geometry.
inline constexpr std::size_t kBatchProbeTileTasks = 8;

/// Reusable lane buffers for the batched kernels (all sized by resize();
/// no allocation afterwards while K and M are stable).  Planes are
/// lane-major: row r of a (K-1) x M buffer starts at data() + r * cores.
///
/// valid/sched/found hold small exact integers (0/1 or a level index) as
/// doubles so the explicit-SIMD loops operate on uniform 64-bit lanes; the
/// comparisons against them are exact.
struct BatchProbeScratch {
  void resize(Level num_levels, std::size_t num_cores);

  /// Hypothetical task rows H(k), kBatchProbeTileTasks tiles of K x M; the
  /// 1-D kernels use tile slot 0.
  std::vector<double> hrow;
  std::vector<double> lambda;      ///< lambda_j plane (Eq. 6), (K-1) x M
  std::vector<double> theta;       ///< theta(k) plane, (K-1) x M
  std::vector<double> acc;         ///< M-wide accumulator (num/suffix/sum)
  std::vector<double> prod;        ///< prod_{x<j} (1 - lambda_x), M
  std::vector<double> min_term;    ///< min{U_K(K), U_K(K-1)/(1-U_K(K))}, M
  std::vector<double> mu;          ///< running mu(k) product, M
  std::vector<double> best;        ///< policy-fold accumulator, M
  std::vector<double> first_avail; ///< A(best_k) for kFirstFeasible, M
  std::vector<double> valid;       ///< lambda_valid_count per lane, M
  std::vector<double> sched;       ///< Theorem-1 schedulable mask (0/1), M
  std::vector<double> found;       ///< fold saw a feasible condition (0/1), M

  /// Per-call shared tables over the *committed* planes, filled once per
  /// 2-D call (see BaseTables in batch_probe_impl.hpp): partial sums of the
  /// lambda numerators, theta suffix/rows, Eq. (4) prefix and the min term,
  /// stored with the exact accumulation order of the per-task loops so a
  /// task only recomputes the partials its own hypothetical row perturbs.
  std::vector<double> base_num;      ///< pre_j(x) rows, (K+1) x (K+1) x M
  std::vector<double> base_suffix;   ///< theta suffix(k) rows, (K+1) x M
  std::vector<double> base_theta;    ///< committed theta(k) rows, (K-1) x M
  std::vector<double> base_min_term; ///< committed min term, M
  std::vector<double> base_eq4;      ///< Eq. (4) prefix(x) rows, (K+1) x M
  std::vector<const double*> th_rows; ///< per-task theta row pointers, K-1

  Level levels = 0;
  std::size_t cores = 0;
};

// --- 1-D: one task, all cores ----------------------------------------------

/// Batched core_utilization: out_util[m] = U^{Psi_m + {tau}} folded per
/// `policy`, +infinity where the improved test rejects — bit-identical to
/// core_utilization(with-task matrix, scratch, policy) on every core.
/// `out_util` must hold planes.num_cores() doubles.
void batch_core_utilization(const LevelUtilPlanes& planes, const McTask& task,
                            ProbePolicy policy, BatchProbeScratch& scratch,
                            double* out_util);

/// Batched Eq. (4) + Theorem-1 accept masks: basic[m] = Eq. (4) holds with
/// the task added, fits[m] = basic[m] || improved-test schedulable — the
/// batched equivalent of PlacementEngine::probe_fits per core.  Both outputs
/// must hold planes.num_cores() bytes.
void batch_fits(const LevelUtilPlanes& planes, const McTask& task,
                BatchProbeScratch& scratch, std::uint8_t* basic,
                std::uint8_t* fits);

/// Eq. (4) mask only (ablation A4).
void batch_fits_basic(const LevelUtilPlanes& planes, const McTask& task,
                      BatchProbeScratch& scratch, std::uint8_t* basic);

// --- 2-D: a tile of tasks, all cores ----------------------------------------

/// 2-D batch_core_utilization over `tasks` (indices into `ts`): out_util is
/// task-major, row t = tasks.size() consecutive M-lane rows; row t is
/// bit-identical to batch_core_utilization(planes, ts[tasks[t]], ...).
/// `out_util` must hold tasks.size() * planes.num_cores() doubles.
void batch_core_utilization_2d(const LevelUtilPlanes& planes, const TaskSet& ts,
                               std::span<const std::size_t> tasks,
                               ProbePolicy policy, BatchProbeScratch& scratch,
                               double* out_util);

/// 2-D batch_fits: basic/fits are task-major T x M byte masks.
void batch_fits_2d(const LevelUtilPlanes& planes, const TaskSet& ts,
                   std::span<const std::size_t> tasks,
                   BatchProbeScratch& scratch, std::uint8_t* basic,
                   std::uint8_t* fits);

/// 2-D Eq. (4)-only mask, task-major T x M.
void batch_fits_basic_2d(const LevelUtilPlanes& planes, const TaskSet& ts,
                         std::span<const std::size_t> tasks,
                         BatchProbeScratch& scratch, std::uint8_t* basic);

// --- Backend selection -------------------------------------------------------

/// Name of the lane backend the batched kernels currently run on:
/// "avx2", "sse2", or "scalar".
[[nodiscard]] const char* batch_probe_backend() noexcept;

/// Forces a backend for differential testing: "auto" (re-run runtime
/// detection), "scalar", "sse2", or "avx2".  Returns false (and leaves the
/// active backend unchanged) if the named backend is not available in this
/// build / on this CPU.  Not thread-safe; call only from single-threaded
/// test setup.
bool set_batch_probe_backend(std::string_view name) noexcept;

namespace batch_kernel {

/// One ISA instantiation of the kernel set (internal dispatch plumbing;
/// exposed so the per-ISA translation units can hand their tables to the
/// dispatcher in batch_probe.cpp).
struct KernelTable {
  void (*util_1d)(const LevelUtilPlanes&, const McTask&, ProbePolicy,
                  BatchProbeScratch&, double*);
  void (*fits_1d)(const LevelUtilPlanes&, const McTask&, BatchProbeScratch&,
                  std::uint8_t*, std::uint8_t*);
  void (*fits_basic_1d)(const LevelUtilPlanes&, const McTask&,
                        BatchProbeScratch&, std::uint8_t*);
  void (*util_2d)(const LevelUtilPlanes&, const TaskSet&, const std::size_t*,
                  std::size_t, ProbePolicy, BatchProbeScratch&, double*);
  void (*fits_2d)(const LevelUtilPlanes&, const TaskSet&, const std::size_t*,
                  std::size_t, BatchProbeScratch&, std::uint8_t*,
                  std::uint8_t*);
  void (*fits_basic_2d)(const LevelUtilPlanes&, const TaskSet&,
                        const std::size_t*, std::size_t, BatchProbeScratch&,
                        std::uint8_t*);
  const char* backend;
};

}  // namespace batch_kernel

}  // namespace mcs::analysis
