// Demand-bound-function schedulability test for dual-criticality EDF-VD
// (in the spirit of Ekberg & Yi, ECRTS'12, and the DBF-based partitioned
// scheme of Gu, Guan, Deng & Yi, DATE'14 — the paper's reference [20]).
//
// High-criticality tasks run against a uniformly scaled virtual deadline
// d_i = x * T_i while the core is in LO mode and are restored at the mode
// switch.  For a scale x the core is schedulable if, for every interval
// length t up to a busy-period bound:
//
//   LO mode:  sum_i dbf_lo(tau_i, t, x) <= t
//   HI mode:  sum_{i : HI} dbf_hi(tau_i, t, x) <= t
//
// with
//   dbf_lo(tau, t, x) = (floor((t - d)/T) + 1)^+ * C(LO),  d = x*T for HI
//                       tasks and d = T for LO tasks;
//   dbf_hi(tau, t, x) = (floor((t - (T - d))/T) + 1)^+ * C(HI).
//
// dbf_hi counts every job at its full HI budget with the shortened
// effective deadline T - d (a carry-over job at the switch has at least
// T - d time to its restored real deadline); this omits Ekberg & Yi's
// executed-LO-work credit, so it is a sound (conservative) simplification —
// see DESIGN.md.  The test searches a grid of scale factors, seeded with
// the EDF-VD analytical candidates, and returns the first x that passes.
//
// Complexity: per (x, mode) the demand is checked at every step point of
// the summed dbf up to the busy-period bound — far costlier than the
// utilization tests, which is exactly the trade-off [20] explores.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "mcs/core/taskset.hpp"

namespace mcs::analysis {

struct DbfOptions {
  /// Hard cap on the analysis horizon: if the busy-period bound exceeds the
  /// cap the test conservatively fails (soundness over completeness).
  double horizon_cap = 100000.0;
  /// Number of uniformly spaced scale candidates in (0, 1].
  std::size_t scale_grid = 20;
};

struct DbfResult {
  bool schedulable = false;
  /// The accepted virtual-deadline scale factor (1 = no shrinking);
  /// meaningful only when schedulable.
  double scale = 1.0;
};

/// Demand of one task in LO mode over an interval of length t, with HI
/// virtual deadlines scaled by x.
[[nodiscard]] double dbf_lo(const McTask& task, double t, double x);

/// Demand of one HI task in HI mode over an interval of length t (0 for LO
/// tasks, which are dropped at the switch).
[[nodiscard]] double dbf_hi(const McTask& task, double t, double x);

/// Runs the DBF test on the subset `members` of `ts`.  Requires
/// ts.num_levels() == 2; throws std::invalid_argument otherwise.
[[nodiscard]] DbfResult dbf_dual_test(const TaskSet& ts,
                                      std::span<const std::size_t> members,
                                      const DbfOptions& options = {});

/// Convenience: the whole set on one core.
[[nodiscard]] DbfResult dbf_dual_test(const TaskSet& ts,
                                      const DbfOptions& options = {});

/// Per-task deadline tuning (Ekberg & Yi's algorithm in greedy form).
struct DbfTunedResult {
  bool schedulable = false;
  /// Virtual-deadline scale per task index of the TaskSet (1.0 for LO tasks
  /// and for tasks outside the analyzed subset); meaningful only when
  /// schedulable.
  std::vector<double> scales;
};

/// Like dbf_dual_test, but tunes each HI task's virtual-deadline scale
/// individually: starting from the uniform solution (or a mid-grid guess),
/// the greedy loop grows the scale of the worst LO-mode offender on an
/// LO-test violation and shrinks the worst HI-mode offender on an HI-test
/// violation, accepting only when both demand tests pass — so acceptance is
/// sound by construction and a strict superset of the uniform test's.
[[nodiscard]] DbfTunedResult dbf_dual_test_tuned(
    const TaskSet& ts, std::span<const std::size_t> members,
    const DbfOptions& options = {});

[[nodiscard]] DbfTunedResult dbf_dual_test_tuned(
    const TaskSet& ts, const DbfOptions& options = {});

}  // namespace mcs::analysis
