// Global-scheduling analysis helpers.
//
// gfb_test: the Goossens-Funk-Baruah sufficient test for *global EDF* of
// implicit-deadline periodic/sporadic tasks on m identical cores:
//
//     U_sum <= m * (1 - u_max) + u_max
//
// evaluated at a chosen criticality level (each task contributes
// u_i(min(k, l_i))).  At K = 1 this is the classical, proven-sound test; the
// property suites validate it against the global engine.
//
// For mixed criticality there is no equally simple sound global test — the
// literature (Li & Baruah, ECRTS'12) builds on fpEDF with involved carry-in
// arguments.  This library deliberately does NOT ship a global MC
// acceptance test; instead bench_global compares partitioned EDF-VD
// (analysis-backed) against the global EDF-VD *runtime* empirically, the
// same methodology as the empirical study the paper cites for preferring
// partitioned scheduling (Bastoni et al.).
#pragma once

#include <cstddef>

#include "mcs/core/taskset.hpp"

namespace mcs::analysis {

/// GFB at level k: every task contributes u_i(min(k, l_i)).
[[nodiscard]] bool gfb_test(const TaskSet& ts, std::size_t cores, Level k = 1);

}  // namespace mcs::analysis
