#include "mcs/analysis/soa_planes.hpp"

#include <stdexcept>

namespace mcs::analysis {

void LevelUtilPlanes::reset(Level num_levels, std::size_t num_cores) {
  if (num_levels < 1) {
    throw std::invalid_argument("LevelUtilPlanes::reset: need at least one level");
  }
  levels_ = num_levels;
  cores_ = num_cores;
  u_.assign(static_cast<std::size_t>(levels_) * levels_ * cores_, 0.0);
}

void LevelUtilPlanes::add(const McTask& task, std::size_t core) {
  const Level j = task.level();
  if (j > levels_) {
    throw std::invalid_argument(
        "LevelUtilPlanes::add: task level exceeds system K");
  }
  for (Level k = 1; k <= j; ++k) {
    u_[index(j, k) + core] += task.utilization(k);
  }
}

void LevelUtilPlanes::remove(const McTask& task, std::size_t core) {
  const Level j = task.level();
  if (j > levels_) {
    throw std::invalid_argument(
        "LevelUtilPlanes::remove: task level exceeds system K");
  }
  for (Level k = 1; k <= j; ++k) {
    double& u = u_[index(j, k) + core];
    u -= task.utilization(k);
    // Same tiny-negative clamp as UtilMatrix::remove — required for the
    // bitwise plane == matrix invariant.
    if (u < 0.0 && u > -1e-12) u = 0.0;
  }
}

}  // namespace mcs::analysis
