#include "mcs/analysis/core_util.hpp"

#include <algorithm>
#include <limits>

namespace mcs::analysis {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

double core_utilization(const Theorem1Result& result, ProbePolicy policy) {
  if (!result.schedulable) return kInf;
  // improved_test always records at least one condition (K == 1 gets a
  // pseudo-condition with A(1) = 1 - U_1(1)); an empty avail can only come
  // from a hand-built result, where no usable condition means no capacity.
  if (result.avail.empty()) return kInf;
  if (policy == ProbePolicy::kFirstFeasible) {
    // best_k is the smallest feasible condition index (1-based).
    return 1.0 - result.avail[result.best_k - 1];
  }
  bool found = false;
  double best = 0.0;
  for (double a : result.avail) {
    if (a < 0.0) continue;
    const double u = 1.0 - a;
    if (!found) {
      best = u;
      found = true;
    } else if (policy == ProbePolicy::kMaxOverFeasible) {
      best = std::max(best, u);
    } else {
      best = std::min(best, u);
    }
  }
  return found ? best : kInf;
}

double core_utilization(const UtilMatrix& core, ProbePolicy policy) {
  if (core.num_levels() == 1) {
    const double u = core.level_util(1, 1);
    return u <= 1.0 ? u : kInf;
  }
  return core_utilization(improved_test(core), policy);
}

double core_utilization(const UtilMatrix& core, Theorem1Result& scratch,
                        ProbePolicy policy) {
  if (core.num_levels() == 1) {
    // Same K == 1 fast path as above: report U_1(1) exactly (the folded
    // 1 - A(1) is equal only up to rounding).
    const double u = core.level_util(1, 1);
    return u <= 1.0 ? u : kInf;
  }
  improved_test(core, scratch);
  return core_utilization(scratch, policy);
}

ProbeResult probe_assignment(const Partition& partition, std::size_t task_index,
                             std::size_t core, double current_util,
                             ProbePolicy policy) {
  UtilMatrix hypothetical = partition.utils_on(core);
  hypothetical.add(partition.taskset()[task_index]);
  const double new_util = core_utilization(hypothetical, policy);
  ProbeResult r;
  r.feasible = new_util != kInf;
  r.new_util = new_util;
  r.increment = r.feasible ? new_util - current_util : kInf;
  return r;
}

}  // namespace mcs::analysis
