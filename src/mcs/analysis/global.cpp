#include "mcs/analysis/global.hpp"

#include <algorithm>
#include <stdexcept>

namespace mcs::analysis {

bool gfb_test(const TaskSet& ts, std::size_t cores, Level k) {
  if (cores == 0) {
    throw std::invalid_argument("gfb_test: need at least one core");
  }
  if (k < 1 || k > ts.num_levels()) {
    throw std::invalid_argument("gfb_test: level out of range");
  }
  double total = 0.0;
  double max_u = 0.0;
  for (const McTask& t : ts) {
    const double u = t.utilization(std::min<Level>(k, t.level()));
    total += u;
    max_u = std::max(max_u, u);
  }
  const double m = static_cast<double>(cores);
  return total <= m * (1.0 - max_u) + max_u + 1e-12;
}

}  // namespace mcs::analysis
