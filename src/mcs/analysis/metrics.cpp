#include "mcs/analysis/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mcs::analysis {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

PartitionMetrics partition_metrics(const Partition& partition,
                                   ProbePolicy policy) {
  PartitionMetrics m;
  m.core_utils.reserve(partition.num_cores());
  m.feasible = true;
  double sum = 0.0;
  double lo = kInf;
  double hi = 0.0;
  for (std::size_t c = 0; c < partition.num_cores(); ++c) {
    const double u = core_utilization(partition.utils_on(c), policy);
    m.core_utils.push_back(u);
    if (u == kInf) m.feasible = false;
    sum += u;
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  m.u_sys = hi;
  m.u_min = lo;
  m.u_avg = sum / static_cast<double>(partition.num_cores());
  m.imbalance = imbalance_factor(m.core_utils);
  return m;
}

double imbalance_factor(const std::vector<double>& core_utils) {
  if (core_utils.empty()) return 0.0;
  double lo = kInf;
  double hi = 0.0;
  for (double u : core_utils) {
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  if (hi == 0.0) return 0.0;
  if (std::isinf(hi)) return 1.0;
  return (hi - lo) / hi;
}

}  // namespace mcs::analysis
