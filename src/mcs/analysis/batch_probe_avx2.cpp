// AVX2 instantiation of the batched probe kernels.
//
// Compiled with -mavx2 (see src/mcs/CMakeLists.txt); contains nothing but
// the shared kernel bodies from batch_probe_impl.hpp instantiated on 4-wide
// lanes.  batch_probe.cpp's dispatcher selects this table at runtime when
// the CPU supports AVX2 and the build's baseline flags don't already carry
// it.  No function here touches global state, so having the TU present but
// unselected is inert.
#if !defined(__AVX2__)
#error "batch_probe_avx2.cpp must be compiled with AVX2 enabled (-mavx2)"
#endif

// Fail the build if lane_ops would fall back to scalar lanes here: this TU
// exists only to provide the wide path.
#define MCS_LANE_REQUIRE_SIMD 1

#define MCS_BATCH_PROBE_ISA avx2
#include "mcs/analysis/batch_probe_impl.hpp"
#undef MCS_BATCH_PROBE_ISA
