// Tighter dual-criticality EDF-VD demand test with per-task deadline
// tuning (in the spirit of Gu & Easwaran, arXiv 2003.05160, building on
// Ekberg & Yi, ECRTS'12).
//
// analysis/dbf.hpp deliberately simplifies the HI-mode demand: every HI job
// whose deadline falls in the window counts its full HI budget.  This file
// implements the exact Ekberg-Yi-style HI curve with the carry-over credit,
// which is what makes the test strictly tighter at the same cost model:
//
//   dbf_hi(tau, l) = n * C(HI) - max(0, C(LO) - r)
//     n = (floor((l - (T - v))/T) + 1)^+      jobs with deadline in window
//     r = (l - (T - v)) mod T                 slack of the carry-over job
//     v = x * T                               the task's virtual deadline
//
// Soundness of the credit: a carry-over job at the mode switch has a
// virtual deadline at most r after the switch (the worst alignment packs n
// deadlines into the window).  LO-mode schedulability guarantees the job
// would complete C(LO) by that virtual deadline, and at most r units can
// execute after the switch on one core, so at least C(LO) - r units were
// already done before the switch and never reappear as HI demand.  A job
// whose virtual deadline precedes the switch cannot still be incomplete
// (reaching an unmet virtual deadline is itself the switch trigger), so the
// credit never double-counts.
//
// The summed HI demand is piecewise linear: it jumps at deadline steps
// (T - v) + kT and ramps with slope 1 until the credit is exhausted at
// (T - v) + kT + C(LO).  demand(l) - l is therefore maximal only at those
// two families of breakpoints, which is exactly where the test evaluates —
// no dense time grid, the "efficient" part of Gu & Easwaran's program.
//
// Search strategy (two tiers, cheap first):
//   1. uniform scales over the same candidate list dbf_dual_test uses
//      (x = 1, 1 - U_2(2), the EDF-VD factor, a grid) — because the GE
//      curves lower-bound the dbf.hpp curves pointwise at equal scales,
//      every dbf_dual_test acceptance is also a GE acceptance (dominance
//      by construction, checked in tests and the differential fuzzer);
//   2. greedy per-task tuning mirroring dbf_dual_test_tuned: grow the worst
//      LO-mode offender's scale on an LO violation, shrink the worst
//      HI-mode offender's on a HI violation, accept only when both demand
//      tests pass (sound by construction), bounded iterations.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "mcs/core/taskset.hpp"

namespace mcs::analysis {

struct GeOptions {
  /// Hard cap on the analysis horizon: if the busy-period bound exceeds the
  /// cap the test conservatively fails (soundness over completeness).
  double horizon_cap = 100000.0;
  /// Number of uniformly spaced scale candidates in (0, 1].
  std::size_t scale_grid = 20;
  /// Iteration cap for the greedy per-task tuning tier.  Each iteration is
  /// a full two-mode demand scan, so this bounds the cost of a rejecting
  /// call; exhausting it conservatively rejects.  The tier-1 uniform search
  /// (and with it dominance over dbf_dual_test) is unaffected.
  std::size_t greedy_iter_cap = 48;
};

struct GeResult {
  bool schedulable = false;
  /// Virtual-deadline scale per task index of the TaskSet (1.0 for LO tasks
  /// and for tasks outside the analyzed subset); meaningful only when
  /// schedulable.
  std::vector<double> scales;
};

/// One HI task's HI-mode demand over an interval of length t with virtual
/// deadline scale x (the credited Ekberg-Yi curve; 0 for LO tasks).
[[nodiscard]] double ge_dbf_hi(const McTask& task, double t, double x);

/// Runs the GE test on the subset `members` of `ts`.  Requires
/// ts.num_levels() == 2; throws std::invalid_argument otherwise.
[[nodiscard]] GeResult ge_dual_test(const TaskSet& ts,
                                    std::span<const std::size_t> members,
                                    const GeOptions& options = {});

/// Convenience: the whole set on one core.
[[nodiscard]] GeResult ge_dual_test(const TaskSet& ts,
                                    const GeOptions& options = {});

}  // namespace mcs::analysis
