#include "mcs/analysis/vdeadlines.hpp"

#include <stdexcept>

namespace mcs::analysis {

DeadlinePolicy::DeadlinePolicy(const UtilMatrix& core)
    : levels_(core.num_levels()), result_(improved_test(core)) {
  const double ukk =
      levels_ >= 1 ? core.level_util(levels_, levels_) : 0.0;
  if (result_.schedulable && !result_.min_picked_full_budget && ukk < 1.0 &&
      ukk > 0.0) {
    level_k_scale_ = 1.0 - ukk;
  } else {
    level_k_scale_ = 1.0;
  }
}

double DeadlinePolicy::scale(Level task_level, Level mode) const {
  if (mode < 1 || mode > levels_ || task_level < mode ||
      task_level > levels_) {
    throw std::out_of_range("DeadlinePolicy::scale: (level, mode) invalid");
  }
  if (!result_.schedulable || levels_ == 1) return 1.0;

  const Level k_star = result_.best_k;
  if (mode < k_star) {
    // Pre-switch regime: tasks above mode l run against deadlines shrunk by
    // lambda_{l+1} (valid since mode + 1 <= k* <= lambda_valid_count).
    // Eq. (6) defines lambda_{l+1} as exactly the factor for which the
    // mode-l demand U_l(l) + sum_{x>l} U_x(l) / lambda_{l+1} matches the
    // capacity prod_{x<=l}(1 - lambda_x) the cascade reserves for mode l,
    // so the virtual-deadline load never exceeds 1 - lambda_2 <= 1.
    if (task_level == mode) return 1.0;
    const double s = result_.lambda[mode];  // lambda_{mode+1}
    // lambda_{l+1} is zero when no demand exists above the mode; never
    // scale to (or below) zero.
    return s > 0.0 ? s : 1.0;
  }
  // Post-switch regime (mode >= k*): everyone but possibly L_K is restored.
  if (task_level < levels_) return 1.0;
  if (mode == levels_) return 1.0;  // final mode: only L_K remains, restored
  return level_k_scale_;
}

}  // namespace mcs::analysis
