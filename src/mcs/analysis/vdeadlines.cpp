#include "mcs/analysis/vdeadlines.hpp"

#include <stdexcept>

namespace mcs::analysis {

DeadlinePolicy::DeadlinePolicy(const UtilMatrix& core)
    : levels_(core.num_levels()), result_(improved_test(core)) {
  const double ukk =
      levels_ >= 1 ? core.level_util(levels_, levels_) : 0.0;
  if (result_.schedulable && !result_.min_picked_full_budget && ukk < 1.0 &&
      ukk > 0.0) {
    level_k_scale_ = 1.0 - ukk;
  } else {
    level_k_scale_ = 1.0;
  }
}

double DeadlinePolicy::scale(Level task_level, Level mode) const {
  if (mode < 1 || mode > levels_ || task_level < mode ||
      task_level > levels_) {
    throw std::out_of_range("DeadlinePolicy::scale: (level, mode) invalid");
  }
  if (!result_.schedulable || levels_ == 1) return 1.0;

  const Level k_star = result_.best_k;
  if (mode < k_star) {
    // Pre-switch regime: tasks above the mode run against shrunk deadlines.
    if (task_level == mode) return 1.0;
    double s = 1.0;
    for (Level j = 2; j <= mode + 1; ++j) {
      s *= result_.lambda[j - 1];  // lambda_j, valid since j <= k* <= valid
    }
    // lambda_2..lambda_{l+1} may include zero factors when no demand exists
    // above; never scale to (or below) zero.
    return s > 0.0 ? s : 1.0;
  }
  // Post-switch regime (mode >= k*): everyone but possibly L_K is restored.
  if (task_level < levels_) return 1.0;
  if (mode == levels_) return 1.0;  // final mode: only L_K remains, restored
  return level_k_scale_;
}

}  // namespace mcs::analysis
