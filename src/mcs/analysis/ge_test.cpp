#include "mcs/analysis/ge_test.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <utility>

#include "mcs/analysis/edfvd.hpp"

namespace mcs::analysis {

namespace {

/// One demand curve: jobs with relative deadline d0 + k*period, each worth
/// `cost`, minus a carry-over credit that ramps away over the first
/// `credit` units after each deadline step (credit == 0 -> plain steps).
struct Curve {
  double d0 = 0.0;
  double period = 1.0;
  double cost = 0.0;
  double credit = 0.0;
};

double curve_demand(const Curve& c, double t) {
  if (t < c.d0 - 1e-9) return 0.0;
  const double jobs = std::floor((t - c.d0) / c.period + 1e-9) + 1.0;
  const double r = (t - c.d0) - (jobs - 1.0) * c.period;
  return jobs * c.cost - std::max(0.0, c.credit - r);
}

/// Busy-period-style bound: demand(t) <= slope*t + intercept (the credit
/// only lowers demand, so ignoring it keeps the envelope an upper bound).
std::optional<double> analysis_bound(const std::vector<Curve>& curves) {
  double slope = 0.0;
  double intercept = 0.0;
  for (const Curve& c : curves) {
    slope += c.cost / c.period;
    intercept += c.cost * std::max(0.0, 1.0 - c.d0 / c.period);
  }
  if (slope >= 1.0 - 1e-12) {
    return intercept <= 1e-12 && slope <= 1.0 + 1e-12
               ? std::optional<double>(0.0)
               : std::nullopt;
  }
  return intercept / (1.0 - slope);
}

/// Scans the summed demand against t at every breakpoint up to `bound`.
/// sum(demand) - t is piecewise linear with slope changes only at deadline
/// steps (jump up) and credit kinks (ramp ends), so those two families are
/// the only candidate maxima.  Returns the first violating t, or nullopt.
///
/// Breakpoints are streamed in ascending order through a small min-heap
/// (one lane per curve, a step lane and a kink lane) instead of being
/// materialized and sorted: the scan stops at the first violation, which
/// makes rejecting candidates — the common case inside the placement
/// gates — cheap, and passing scans drop the O(P log P) sort.
std::optional<double> first_violation(const std::vector<Curve>& curves,
                                      double bound) {
  struct Lane {
    double next;        ///< next breakpoint of this lane
    std::size_t curve;  ///< index into `curves`
    bool kink;          ///< kink lane (steps + credit) vs step lane
  };
  const auto later = [](const Lane& a, const Lane& b) {
    return a.next > b.next;
  };
  std::vector<Lane> heap;
  heap.reserve(curves.size() * 2);
  for (std::size_t i = 0; i < curves.size(); ++i) {
    const Curve& c = curves[i];
    if (c.cost <= 0.0) continue;
    if (c.d0 <= bound + 1e-9) heap.push_back({c.d0, i, false});
    if (c.credit > 0.0 && c.d0 + c.credit <= bound + 1e-9) {
      heap.push_back({c.d0 + c.credit, i, true});
    }
  }
  std::make_heap(heap.begin(), heap.end(), later);
  double last = -1.0;
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), later);
    Lane lane = heap.back();
    heap.pop_back();
    const double t = lane.next;
    lane.next += curves[lane.curve].period;
    if (lane.next <= bound + 1e-9) {
      heap.push_back(lane);
      std::push_heap(heap.begin(), heap.end(), later);
    }
    if (t == last) continue;  // duplicate breakpoint across lanes
    last = t;
    double demand = 0.0;
    for (const Curve& c : curves) demand += curve_demand(c, t);
    if (demand > t + 1e-9) return t;
  }
  return std::nullopt;
}

void build_curves(const TaskSet& ts, std::span<const std::size_t> members,
                  std::span<const double> scales,
                  std::vector<Curve>& lo_curves,
                  std::vector<Curve>& hi_curves) {
  lo_curves.clear();
  hi_curves.clear();
  for (std::size_t m = 0; m < members.size(); ++m) {
    const McTask& task = ts[members[m]];
    const double period = task.period();
    if (task.level() == 2) {
      const double v = scales[m] * period;
      lo_curves.push_back({v, period, task.wcet(1), 0.0});
      hi_curves.push_back({period - v, period, task.wcet(2), task.wcet(1)});
    } else {
      lo_curves.push_back({period, period, task.wcet(1), 0.0});
    }
  }
}

/// Evaluates both demand tests with per-member scales.  On failure returns
/// (mode, t): mode 0 = LO-test violation, 1 = HI-test violation.
std::optional<std::pair<int, double>> ge_violation(
    const TaskSet& ts, std::span<const std::size_t> members,
    std::span<const double> scales, const GeOptions& options) {
  std::vector<Curve> lo_curves;
  std::vector<Curve> hi_curves;
  build_curves(ts, members, scales, lo_curves, hi_curves);
  int mode = 0;
  for (const auto* curves : {&lo_curves, &hi_curves}) {
    const std::optional<double> bound = analysis_bound(*curves);
    if (!bound || *bound > options.horizon_cap) {
      return std::make_pair(mode, 0.0);  // conservative
    }
    if (*bound > 0.0) {
      if (const auto t = first_violation(*curves, *bound)) {
        return std::make_pair(mode, *t);
      }
    }
    ++mode;
  }
  return std::nullopt;
}

bool test_with_uniform(const TaskSet& ts, std::span<const std::size_t> members,
                       double x, std::vector<double>& scales,
                       const GeOptions& options) {
  for (std::size_t m = 0; m < members.size(); ++m) {
    scales[m] = ts[members[m]].level() == 2 ? x : 1.0;
  }
  return !ge_violation(ts, members, scales, options).has_value();
}

GeResult accept(const TaskSet& ts, std::span<const std::size_t> members,
                std::span<const double> scales) {
  GeResult result;
  result.schedulable = true;
  result.scales.assign(ts.size(), 1.0);
  for (std::size_t m = 0; m < members.size(); ++m) {
    result.scales[members[m]] = scales[m];
  }
  return result;
}

}  // namespace

double ge_dbf_hi(const McTask& task, double t, double x) {
  if (task.level() < 2) return 0.0;
  const double period = task.period();
  const Curve c{period - x * period, period, task.wcet(2), task.wcet(1)};
  return curve_demand(c, t);
}

GeResult ge_dual_test(const TaskSet& ts, std::span<const std::size_t> members,
                      const GeOptions& options) {
  if (ts.num_levels() != 2) {
    throw std::invalid_argument(
        "ge_dual_test: requires a dual-criticality task set");
  }
  GeResult result;
  result.scales.assign(ts.size(), 1.0);
  if (members.empty()) {
    result.schedulable = true;
    return result;
  }

  // Tier 1: uniform scales over the same candidates dbf_dual_test tries —
  // the GE curves lower-bound the dbf.hpp curves at equal scales, so every
  // dbf_dual_test acceptance is accepted here too (dominance).
  UtilMatrix u(2);
  for (std::size_t i : members) u.add(ts[i]);
  std::vector<double> candidates{1.0};
  const double u22 = u.level_util(2, 2);
  if (u22 > 0.0 && u22 < 1.0) candidates.push_back(1.0 - u22);
  candidates.push_back(dual_scaling_factor(u));
  for (std::size_t g = 1; g <= options.scale_grid; ++g) {
    candidates.push_back(static_cast<double>(g) /
                         static_cast<double>(options.scale_grid));
  }
  std::vector<double> scales(members.size(), 1.0);
  for (double x : candidates) {
    if (x <= 0.0 || x > 1.0) continue;
    if (test_with_uniform(ts, members, x, scales, options)) {
      return accept(ts, members, scales);
    }
  }

  // Tier 2: greedy per-task tuning from a mid-grid start, mirroring
  // dbf_dual_test_tuned's move rules on the credited curves.
  const double step = 1.0 / static_cast<double>(options.scale_grid);
  std::size_t hi_count = 0;
  for (std::size_t m : members) hi_count += ts[m].level() == 2 ? 1u : 0u;
  if (hi_count == 0) return result;  // pure-LO sets are settled by tier 1
  for (std::size_t m = 0; m < members.size(); ++m) {
    scales[m] = ts[members[m]].level() == 2 ? 0.5 : 1.0;
  }
  const std::size_t max_iter =
      std::min(8 * options.scale_grid * (hi_count + 1),
               options.greedy_iter_cap);

  for (std::size_t iter = 0; iter < max_iter; ++iter) {
    const auto violation = ge_violation(ts, members, scales, options);
    if (!violation) return accept(ts, members, scales);
    const auto [mode, t] = *violation;
    // Pick the HI member contributing the most demand at the violation
    // point whose scale can still move in the helpful direction.
    std::size_t best = members.size();
    double best_demand = 0.0;
    for (std::size_t m = 0; m < members.size(); ++m) {
      const McTask& task = ts[members[m]];
      if (task.level() != 2) continue;
      const double period = task.period();
      double demand;
      bool movable;
      if (mode == 0) {
        const Curve c{scales[m] * period, period, task.wcet(1), 0.0};
        demand = curve_demand(c, t);
        movable = scales[m] <= 1.0 - step * 0.5;
      } else {
        demand = ge_dbf_hi(task, t, scales[m]);
        movable = scales[m] >= 2.0 * step - step * 0.5;
      }
      if (movable && demand > best_demand) {
        best_demand = demand;
        best = m;
      }
    }
    if (best == members.size() || best_demand <= 0.0) return result;  // stuck
    scales[best] += mode == 0 ? step : -step;
  }
  return result;  // iteration cap: conservatively reject
}

GeResult ge_dual_test(const TaskSet& ts, const GeOptions& options) {
  std::vector<std::size_t> all(ts.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  return ge_dual_test(ts, all, options);
}

}  // namespace mcs::analysis
