// Virtual-deadline assignment for the EDF-VD runtime (paper Sec. II-B).
//
// Given the improved-test result for one core's subset, the policy answers:
// "while the core operates at mode l, what relative deadline does a task of
// criticality level j >= l use?"  Mechanism (with k* the smallest condition
// index satisfying Theorem 1):
//
//  * mode l < k*:    tasks at level l keep their full period; tasks at
//                    levels j > l use p_i * lambda_{l+1} — Eq. (6) defines
//                    lambda_{l+1} as precisely the deadline-shrink factor
//                    that fits the mode-l demand into the capacity
//                    prod_{x<=l}(1 - lambda_x) the cascade reserves.
//  * mode l >= k*:   tasks at levels k*..K-1 are restored to full periods.
//                    Level-K tasks are restored too when the min term of
//                    theta picked U_K(K); otherwise they use
//                    p_i * (1 - U_K(K)) until the core reaches mode K, where
//                    deadlines are always full (only L_K remains).
//
// For K = 2 this reduces to classical EDF-VD: HI tasks run with scaled
// deadlines in LO mode (factor 1 - U_2(2) when scaling is needed) and full
// deadlines in HI mode.
//
// If the subset fails the improved test, the policy degrades to plain EDF
// (factor 1 everywhere) so that infeasible partitions can still be simulated
// for demonstration.
#pragma once

#include "mcs/analysis/edfvd.hpp"

namespace mcs::analysis {

class DeadlinePolicy {
 public:
  /// Builds the policy for one core's subset (runs the improved test).
  explicit DeadlinePolicy(const UtilMatrix& core);

  /// Deadline scale factor in (0, 1] for a task of level `task_level` while
  /// the core is at mode `mode`.  Requires 1 <= mode <= task_level <= K
  /// (tasks below the mode are dropped, not scheduled).
  [[nodiscard]] double scale(Level task_level, Level mode) const;

  /// The condition index k* whose reach restores original deadlines, or 0
  /// when the subset is not schedulable by the improved test.
  [[nodiscard]] Level restore_level() const noexcept { return result_.best_k; }

  [[nodiscard]] const Theorem1Result& analysis() const noexcept {
    return result_;
  }

  [[nodiscard]] Level num_levels() const noexcept { return levels_; }

 private:
  Level levels_;
  Theorem1Result result_;
  double level_k_scale_;  ///< 1 - U_K(K) (or 1), used past the switch
};

}  // namespace mcs::analysis
