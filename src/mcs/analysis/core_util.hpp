// Core utilization (Eq. 8-9) and the CA-TPA probe (Eq. 14-15).
//
// For a core subset Psi_m and each improved-test condition k, the available
// utilization is A(k) = mu(k) - theta(k) (Eq. 8; nonnegative exactly when
// condition k holds).  The core utilization is
//
//   U^{Psi_m} = +infinity                       if A(k) < 0 for all k (Eq. 9a)
//             = max_{k : A(k) >= 0} (1 - A(k))  otherwise           (Eq. 9b)
//
// The OCR of the paper leaves Eq. (9b)'s operator ambiguous (max or min over
// the feasible conditions).  We default to min — i.e. the core's utilization
// is 1 minus its *best* available capacity — because (a) it is the natural
// "available utilization" semantics and (b) it empirically reproduces the
// paper's reported 5-25% schedulability advantage of CA-TPA over FFD/BFD,
// which the max reading does not (see EXPERIMENTS.md).  The max reading is
// kept as an ablation (bench_ablation_probe_policy).
#pragma once

#include "mcs/analysis/edfvd.hpp"
#include "mcs/core/partition.hpp"

namespace mcs::analysis {

/// Which feasible condition's (1 - A(k)) defines the core utilization.
enum class ProbePolicy {
  kFirstFeasible,    ///< 1 - A(k*) at the smallest feasible k (the condition
                     ///< the runtime actually operates under)
  kMinOverFeasible,  ///< 1 - max_k A(k) (best available capacity)
  kMaxOverFeasible,  ///< most conservative feasible condition
};

/// Core utilization of an already-computed Theorem-1 result.  Returns
/// +infinity when the subset is infeasible under the improved test.  For
/// K == 1, improved_test records a pseudo-condition with A(1) = 1 - U_1(1),
/// so this reports the true utilization at every K.
[[nodiscard]] double core_utilization(
    const Theorem1Result& result,
    ProbePolicy policy = ProbePolicy::kMinOverFeasible);

/// Convenience: run the improved test on `core` and fold to a utilization.
[[nodiscard]] double core_utilization(
    const UtilMatrix& core,
    ProbePolicy policy = ProbePolicy::kMinOverFeasible);

/// Allocation-free variant of the above: evaluates the improved test into
/// `scratch` (reusing its vectors) before folding.  The probe hot path.
[[nodiscard]] double core_utilization(
    const UtilMatrix& core, Theorem1Result& scratch,
    ProbePolicy policy = ProbePolicy::kMinOverFeasible);

/// Result of probing "what if task tau_i joined this core" (Eq. 14-15).
struct ProbeResult {
  bool feasible = false;   ///< Theorem 1 holds for Psi_m + {tau_i}
  double new_util = 0.0;   ///< U^{Psi_m + {tau_i}}; +inf when infeasible
  double increment = 0.0;  ///< Delta U (Eq. 14); +inf when infeasible
};

/// Evaluates the utilization increment of placing task `task_index` on core
/// `core` of `partition` (the task must currently be unassigned to that
/// computation's perspective; the partition is not modified).
/// `current_util` is the core's utilization before the addition (pass the
/// cached value to avoid recomputation).
///
/// Convenience for tests/examples: allocates a hypothetical UtilMatrix per
/// call.  Partitioner hot paths use PlacementEngine::probe (placement.hpp),
/// which performs the same computation against reusable scratch state.
[[nodiscard]] ProbeResult probe_assignment(
    const Partition& partition, std::size_t task_index, std::size_t core,
    double current_util, ProbePolicy policy = ProbePolicy::kMinOverFeasible);

}  // namespace mcs::analysis
