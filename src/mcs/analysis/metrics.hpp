// Partition-quality metrics (Eq. 10, 11, 16).
//
//   U_sys  = max_m U^{Psi_m}                      (system utilization)
//   U_avg  = (1/M) sum_m U^{Psi_m}                (average core utilization)
//   Lambda = (U_sys - min_m U^{Psi_m}) / U_sys    (workload imbalance factor)
//
// All three are computed from the per-core utilizations of Eq. (9).
#pragma once

#include <vector>

#include "mcs/analysis/core_util.hpp"
#include "mcs/core/partition.hpp"

namespace mcs::analysis {

struct PartitionMetrics {
  std::vector<double> core_utils;  ///< U^{Psi_m} per core
  double u_sys = 0.0;              ///< Eq. (10)
  double u_avg = 0.0;              ///< Eq. (11)
  double u_min = 0.0;              ///< min_m U^{Psi_m}
  double imbalance = 0.0;          ///< Lambda, Eq. (16); 0 when U_sys == 0
  bool feasible = false;           ///< every core passes the improved test
};

/// Computes the metrics of a (possibly partial) partition.  A core whose
/// subset fails the improved test makes the partition infeasible and its
/// utilization +infinity.
[[nodiscard]] PartitionMetrics partition_metrics(
    const Partition& partition,
    ProbePolicy policy = ProbePolicy::kMinOverFeasible);

/// Lambda from an explicit vector of core utilizations (Eq. 16).  Infinite
/// entries make the result 1.  Returns 0 when all entries are zero.
[[nodiscard]] double imbalance_factor(const std::vector<double>& core_utils);

}  // namespace mcs::analysis
