// Fixed-priority AMC response-time analysis (dual criticality).
//
// Implements the AMC-rtb test of Baruah, Burns & Davis ("Response-time
// analysis for mixed criticality systems", RTSS'11) for implicit-deadline
// periodic tasks under deadline-monotonic priorities:
//
//  * LO mode, every task i:
//      R_i = C_i(LO) + sum_{j in hp(i)} ceil(R_i / T_j) * C_j(LO)  <= D_i
//  * HI mode (AMC-rtb), every HI task i:
//      R*_i = C_i(HI) + sum_{j in hpH(i)} ceil(R*_i / T_j) * C_j(HI)
//                     + sum_{k in hpL(i)} ceil(R_i / T_k) * C_k(LO) <= D_i
//    where hpH/hpL split the higher-priority tasks by criticality and R_i is
//    the task's LO-mode response time (the latest possible switch instant).
//
// This is the analysis behind partitioned fixed-priority MC scheduling
// (Kelly, Aydin, Zhao — the paper's reference [22]); the library includes it
// as the fixed-priority counterpart of the EDF-VD analyses so the two
// per-core scheduler families can be compared (bench_fp_vs_edfvd).
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "mcs/core/taskset.hpp"

namespace mcs::analysis {

/// Per-task outcome of the AMC-rtb analysis.
struct AmcTaskResult {
  std::size_t task_index = 0;   ///< index into the TaskSet
  std::size_t priority = 0;     ///< 0 = highest (deadline monotonic)
  double response_lo = 0.0;     ///< LO-mode response time (inf if divergent)
  double response_hi = 0.0;     ///< AMC-rtb bound (HI tasks only; 0 for LO)
  bool schedulable = false;
};

struct AmcRtaResult {
  bool schedulable = false;
  std::vector<AmcTaskResult> tasks;  ///< in priority order
};

/// Runs AMC-rtb on the subset `members` of `ts`.  Requires
/// ts.num_levels() == 2 (the analysis is defined for dual criticality);
/// throws std::invalid_argument otherwise.  Priorities are deadline
/// monotonic (shorter period first; ties to the smaller task index).
[[nodiscard]] AmcRtaResult amc_rtb_test(const TaskSet& ts,
                                        std::span<const std::size_t> members);

/// Convenience: the whole task set on one core.
[[nodiscard]] AmcRtaResult amc_rtb_test(const TaskSet& ts);

/// Deadline-monotonic priority order of `members` (highest priority first).
[[nodiscard]] std::vector<std::size_t> deadline_monotonic_order(
    const TaskSet& ts, std::span<const std::size_t> members);

/// Runs AMC-rtb under an explicit priority order (highest first) instead of
/// deadline-monotonic.
[[nodiscard]] AmcRtaResult amc_rtb_test_with_priorities(
    const TaskSet& ts, std::span<const std::size_t> priority_order);

/// Audsley's Optimal Priority Assignment over the AMC-rtb test (AMC-rtb is
/// OPA-compatible): assigns priorities bottom-up, trying every unassigned
/// task at the lowest open level.  Returns the priority order (highest
/// first) if one exists — by OPA optimality, failure means *no* fixed
/// priority order passes AMC-rtb for this subset.  Requires K == 2.
[[nodiscard]] std::optional<std::vector<std::size_t>> audsley_assignment(
    const TaskSet& ts, std::span<const std::size_t> members);

}  // namespace mcs::analysis
