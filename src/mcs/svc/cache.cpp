#include "mcs/svc/cache.hpp"

#include <algorithm>
#include <utility>

#include "mcs/obs/metrics.hpp"

namespace mcs::svc {

namespace {

obs::Counter& g_hits = obs::registry().counter("serve.cache.hits");
obs::Counter& g_misses = obs::registry().counter("serve.cache.misses");
obs::Counter& g_evictions = obs::registry().counter("serve.cache.evictions");
obs::Counter& g_collisions = obs::registry().counter("serve.cache.collisions");

}  // namespace

AnalysisCache::AnalysisCache(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {
  stats_.capacity = capacity_;
}

std::shared_ptr<const AnalysisResult> AnalysisCache::lookup(
    std::uint64_t fingerprint, const std::string& canonical) {
  const std::lock_guard lock(mutex_);
  const auto it = index_.find(fingerprint);
  if (it == index_.end()) {
    ++stats_.misses;
    g_misses.add();
    return nullptr;
  }
  if (it->second->canonical != canonical) {
    ++stats_.collisions;
    ++stats_.misses;
    g_collisions.add();
    g_misses.add();
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  ++stats_.hits;
  g_hits.add();
  return it->second->result;
}

void AnalysisCache::insert(std::uint64_t fingerprint, std::string canonical,
                           std::shared_ptr<const AnalysisResult> result) {
  const std::lock_guard lock(mutex_);
  if (const auto it = index_.find(fingerprint); it != index_.end()) {
    it->second->canonical = std::move(canonical);
    it->second->result = std::move(result);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(
      Entry{fingerprint, std::move(canonical), std::move(result)});
  index_.emplace(fingerprint, lru_.begin());
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().fingerprint);
    lru_.pop_back();
    ++stats_.evictions;
    g_evictions.add();
  }
}

CacheStats AnalysisCache::stats() const {
  const std::lock_guard lock(mutex_);
  CacheStats out = stats_;
  out.size = lru_.size();
  return out;
}

void AnalysisCache::clear() {
  const std::lock_guard lock(mutex_);
  lru_.clear();
  index_.clear();
}

}  // namespace mcs::svc
