#include "mcs/svc/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <streambuf>
#include <utility>

#include "mcs/obs/trace.hpp"
#include "mcs/svc/protocol.hpp"

namespace mcs::svc {

namespace {

obs::Counter& g_requests = obs::registry().counter("serve.requests");
obs::Counter& g_errors = obs::registry().counter("serve.errors");
obs::Histogram& g_latency_us =
    obs::registry().histogram("serve.latency_us");

constexpr obs::TraceSite kRequestSite{"svc.request", "id", "fingerprint"};

/// Minimal bidirectional streambuf over a connected socket fd, so the
/// protocol layer can stay iostream-based (one code path for files, string
/// fixtures and live connections).  Read side is line-buffered enough for
/// the protocol; write side flushes on sync().
class FdStreamBuf final : public std::streambuf {
 public:
  explicit FdStreamBuf(int fd) : fd_(fd) {
    setg(in_, in_, in_);
    setp(out_, out_ + sizeof(out_));
  }

 protected:
  int_type underflow() override {
    if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
    const ssize_t n = ::read(fd_, in_, sizeof(in_));
    if (n <= 0) return traits_type::eof();
    setg(in_, in_, in_ + n);
    return traits_type::to_int_type(*gptr());
  }

  int_type overflow(int_type ch) override {
    if (flush_out() != 0) return traits_type::eof();
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      *pptr() = traits_type::to_char_type(ch);
      pbump(1);
    }
    return traits_type::not_eof(ch);
  }

  int sync() override { return flush_out(); }

 private:
  int flush_out() {
    const char* p = pbase();
    while (p < pptr()) {
      const ssize_t n =
          ::write(fd_, p, static_cast<std::size_t>(pptr() - p));
      if (n <= 0) return -1;
      p += n;
    }
    setp(out_, out_ + sizeof(out_));
    return 0;
  }

  int fd_;
  char in_[4096];
  char out_[4096];
};

}  // namespace

EnginePool::Lease EnginePool::acquire() {
  {
    const std::lock_guard lock(mutex_);
    if (!free_.empty()) {
      std::unique_ptr<analysis::PlacementEngine> engine =
          std::move(free_.back());
      free_.pop_back();
      return Lease(*this, std::move(engine));
    }
  }
  return Lease(*this, std::make_unique<analysis::PlacementEngine>());
}

void EnginePool::release(std::unique_ptr<analysis::PlacementEngine> engine) {
  const std::lock_guard lock(mutex_);
  free_.push_back(std::move(engine));
}

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      cache_(config_.cache_capacity) {
  if (config_.workers == 0) config_.workers = 1;
  if (config_.socket_path.empty()) {
    throw std::runtime_error("mcs_serve: socket path must not be empty");
  }

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (config_.socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("mcs_serve: socket path too long: " +
                             config_.socket_path);
  }
  std::memcpy(addr.sun_path, config_.socket_path.c_str(),
              config_.socket_path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("mcs_serve: socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  ::unlink(config_.socket_path.c_str());  // replace a stale socket file
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("mcs_serve: cannot listen on " +
                             config_.socket_path + ": " + why);
  }

  acceptor_ = std::thread([this] { accept_loop(); });
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Server::~Server() {
  stop();
  wait();
}

void Server::stop() {
  if (stopping_.exchange(true)) return;
  // Closing the listener wakes the blocked accept(); the acceptor thread
  // then exits its loop.
  ::shutdown(listen_fd_, SHUT_RDWR);
  queue_cv_.notify_all();
}

void Server::wait() {
  if (joined_) return;
  joined_ = true;
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(config_.socket_path.c_str());
}

void Server::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR && !stopping_.load()) continue;
      return;  // listener closed (stop()) or fatal error
    }
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    {
      const std::lock_guard lock(queue_mutex_);
      pending_connections_.push_back(fd);
    }
    queue_cv_.notify_one();
  }
}

void Server::worker_loop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return stopping_.load() || !pending_connections_.empty();
      });
      if (pending_connections_.empty()) return;  // stopping and drained
      fd = pending_connections_.front();
      pending_connections_.pop_front();
    }
    handle_connection(fd);
    ::close(fd);
  }
}

void Server::handle_connection(int fd) {
  FdStreamBuf buf(fd);
  std::istream in(&buf);
  std::ostream out(&buf);

  for (;;) {
    std::optional<Request> request;
    try {
      request = read_request(in);
    } catch (const ProtocolError& e) {
      g_errors.add();
      out << error_response(0, e.what()).dump() << '\n' << std::flush;
      return;  // cannot resynchronize a malformed stream
    }
    if (!request) return;  // clean EOF: client closed the connection

    const auto start = std::chrono::steady_clock::now();
    util::Json response = util::Json::null();
    switch (request->kind) {
      case Request::Kind::kPing:
        response = pong_response(request->id);
        break;
      case Request::Kind::kStats:
        response = stats_response(request->id, cache_.stats(),
                                  requests_served());
        break;
      case Request::Kind::kShutdown:
        response = pong_response(request->id);
        break;
      case Request::Kind::kAnalyze: {
        const WireAnalyze& wire = *request->analyze;
        const std::uint64_t fingerprint = canonical_fingerprint(wire.canonical);
        const obs::ScopedSpan span(kRequestSite, request->id, fingerprint);
        try {
          std::shared_ptr<const AnalysisResult> result =
              cache_.lookup(fingerprint, wire.canonical);
          const bool cached = result != nullptr;
          if (!cached) {
            // Only a miss pays for parsing the task-set body and running
            // the partitioner; a hit is a hash + text compare.
            const AnalysisRequest analyze_request = parse_analyze(wire);
            EnginePool::Lease lease = engines_.acquire();
            result = std::make_shared<const AnalysisResult>(
                analyze(analyze_request, lease.engine()));
            cache_.insert(fingerprint, wire.canonical, result);
          }
          response =
              analysis_response(request->id, fingerprint, cached, *result);
          // Server-side handling time (fingerprint + cache + analysis, no
          // socket I/O): the selftest derives its cache-speedup ratio from
          // this, which is far less noisy than client round trips.  The
          // only response field outside the cold == warm byte-identity.
          const double handled_us =
              std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - start)
                  .count();
          std::ostringstream elapsed;
          elapsed.precision(6);
          elapsed << handled_us;
          response.set("elapsed_us", util::Json::number_raw(elapsed.str()));
        } catch (const std::exception& e) {
          g_errors.add();
          response = error_response(request->id, e.what());
        }
        break;
      }
    }
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start);
    g_requests.add();
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    g_latency_us.record(static_cast<std::uint64_t>(elapsed.count()));

    out << response.dump() << '\n' << std::flush;
    if (request->kind == Request::Kind::kShutdown) {
      stop();
      return;
    }
  }
}

}  // namespace mcs::svc
