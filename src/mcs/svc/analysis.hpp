// The cacheable unit of service work: one (task set, scheme, cores, alpha)
// partition-and-analyze request.
//
// A request is canonicalized to a deterministic text form (the io::
// task-set serialization, which prints doubles at round-trip precision,
// prefixed by the scheme/cores/alpha header) and fingerprinted with FNV-1a
// over that text.  The fingerprint keys the daemon's analysis cache; the
// canonical text is stored alongside each entry so a 64-bit collision is
// detected by exact comparison instead of silently serving the wrong
// partition.  Keying on text (rather than parsed values) is what lets the
// daemon serve a cache hit without parsing the task set at all.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "mcs/core/taskset.hpp"

namespace mcs::analysis {
class PlacementEngine;
}  // namespace mcs::analysis

namespace mcs::svc {

/// One partition/analysis request.
struct AnalysisRequest {
  std::string scheme_spec;   ///< partition::make_scheme_spec grammar
  std::size_t num_cores = 0;
  double alpha = 0.7;        ///< CA-TPA imbalance threshold
  TaskSet taskset;
};

/// Deterministic text form of a request: a "scheme/cores/alpha" header
/// followed by the io:: task-set serialization (round-trip precision, so
/// re-serializing a parsed request reproduces the text byte-for-byte).
/// Two requests are the same work if their canonical texts are byte-equal.
[[nodiscard]] std::string canonical_request_text(const AnalysisRequest& req);

/// FNV-1a over a canonical text.  This is THE cache key derivation: the
/// daemon fingerprints the received wire text directly, which lets a cache
/// hit skip task-set parsing entirely — the dominant per-request cost.
[[nodiscard]] std::uint64_t canonical_fingerprint(std::string_view canonical);

/// canonical_fingerprint of canonical_request_text: the fingerprint of an
/// in-process (already parsed) request.  Matches what the daemon computes
/// for the same request arriving over the wire through
/// protocol.hpp's writer.
[[nodiscard]] std::uint64_t request_fingerprint(const AnalysisRequest& req);

/// Structural FNV-1a fingerprint of a task set from exact IEEE-754 bit
/// patterns (never decimal formatting) — formatting-independent, unlike
/// the text-keyed cache fingerprints; used to identify workloads across
/// tools.
[[nodiscard]] std::uint64_t taskset_fingerprint(const TaskSet& ts);

/// The analysis outcome the daemon returns (and caches).  The partition is
/// carried in io:: partition text form so responses serialize without
/// re-walking core data structures.
struct AnalysisResult {
  bool success = false;
  std::optional<std::size_t> failed_task;  ///< first unplaceable task index
  std::size_t probes = 0;                  ///< feasibility probes performed
  double u_sys = 0.0;                      ///< Eq. (10), successful runs only
  double u_avg = 0.0;                      ///< Eq. (11)
  double imbalance = 0.0;                  ///< Lambda, Eq. (16)
  std::string partition_text;              ///< io::write_partition form
};

/// Runs the request on `engine` (reset to the request's task set / core
/// count): builds the scheme via partition::make_scheme_spec, partitions,
/// and computes the Eq. (10/11/16) metrics on success.  Deterministic: the
/// same request always yields the same result, which is what makes caching
/// by fingerprint sound.  Throws std::invalid_argument for an unknown
/// scheme spec or a request with zero cores.
[[nodiscard]] AnalysisResult analyze(const AnalysisRequest& req,
                                     analysis::PlacementEngine& engine);

}  // namespace mcs::svc
