// Blocking mcs_serve client: one AF_UNIX connection, synchronous
// request/response.  Used by the selftest load generator, the mcs_serve
// --client one-shot mode, and the server tests.
#pragma once

#include <cstdint>
#include <string>

#include "mcs/svc/analysis.hpp"
#include "mcs/svc/protocol.hpp"
#include "mcs/util/json.hpp"

namespace mcs::svc {

class Client {
 public:
  /// Connects to a listening mcs_serve socket.  Throws std::runtime_error
  /// when the connection cannot be established.
  explicit Client(const std::string& socket_path);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one request and returns the parsed JSON response line.  Each
  /// call throws std::runtime_error on a broken connection or a response
  /// that is not valid JSON.
  util::Json analyze(const AnalysisRequest& request);
  util::Json ping();
  util::Json stats();
  util::Json shutdown();

 private:
  util::Json roundtrip(const std::string& text);

  int fd_ = -1;
  std::uint64_t next_id_ = 1;
  std::string rx_buffer_;
};

}  // namespace mcs::svc
