// Wire protocol of the mcs_serve daemon (line-oriented text over a local
// stream socket).
//
// Requests (client -> server):
//
//   mcs-serve/1 <id> analyze <scheme-spec> <cores> <alpha>
//   K 2
//   task 1 80 15.1 32.4
//   ...
//   end
//
//   mcs-serve/1 <id> ping
//   mcs-serve/1 <id> stats
//   mcs-serve/1 <id> shutdown
//
// The task-set body between the header and "end" is exactly the io::
// task-set serialization, so any file taskset_tool writes can be piped to
// the daemon verbatim.  <scheme-spec> is one whitespace-free token from
// the partition::make_scheme_spec grammar ("CA-TPA", "FFD/eq4",
// "CA-TPA(a=0.5,min)", ...).
//
// Responses (server -> client) are one JSON line per request, echoing the
// request id.  Analysis responses carry the 16-hex-digit request
// fingerprint, a "cached" flag, and on success the Eq. (10/11/16) metrics
// plus the partition in io:: text form; doubles are printed at round-trip
// precision so a cached response is byte-identical to the cold one it was
// cached from (the "cached" flag and the server's wall-clock "elapsed_us"
// field aside).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <stdexcept>
#include <string>

#include "mcs/svc/analysis.hpp"
#include "mcs/svc/cache.hpp"
#include "mcs/util/json.hpp"

namespace mcs::svc {

/// Malformed request text (bad header, bad task-set body, missing "end").
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// An analyze request as received: header fields parsed, the task-set body
/// still text.  The canonical form (the cache key) is assembled from the
/// received tokens without re-serialization, and the body is only parsed
/// into a TaskSet on a cache miss (parse_analyze) — a hit never pays for
/// parsing.
struct WireAnalyze {
  std::string scheme_spec;
  std::size_t num_cores = 0;
  double alpha = 0.0;
  std::string body;       ///< io:: task-set text, verbatim
  std::string canonical;  ///< "scheme/cores/alpha" header + body
};

struct Request {
  enum class Kind { kAnalyze, kPing, kStats, kShutdown };
  Kind kind = Kind::kPing;
  std::uint64_t id = 0;
  std::optional<WireAnalyze> analyze;  ///< set iff kind == kAnalyze
};

/// Reads one request from `in`.  Returns nullopt on clean EOF before a
/// header line; throws ProtocolError on malformed framing (the connection
/// cannot be resynchronized afterwards and should be closed).  The task-
/// set body is NOT validated here — parse_analyze does that lazily.
[[nodiscard]] std::optional<Request> read_request(std::istream& in);

/// Parses a wire request's body into a full AnalysisRequest.  Throws
/// ProtocolError when the body is not a valid io:: task set (the request
/// is answerable with an error response; the stream itself is fine).
[[nodiscard]] AnalysisRequest parse_analyze(const WireAnalyze& wire);

/// Client-side serializers (exact inverses of read_request).
void write_analyze_request(std::ostream& out, std::uint64_t id,
                           const AnalysisRequest& req);
void write_command(std::ostream& out, std::uint64_t id, Request::Kind kind);

/// Response builders.  Each returns a complete JSON document; the server
/// writes `dump()` plus a newline.
[[nodiscard]] util::Json analysis_response(std::uint64_t id,
                                           std::uint64_t fingerprint,
                                           bool cached,
                                           const AnalysisResult& result);
[[nodiscard]] util::Json pong_response(std::uint64_t id);
[[nodiscard]] util::Json stats_response(std::uint64_t id,
                                        const CacheStats& stats,
                                        std::uint64_t requests_served);
[[nodiscard]] util::Json error_response(std::uint64_t id,
                                        const std::string& message);

}  // namespace mcs::svc
