#include "mcs/svc/executor.hpp"

#include <atomic>
#include <exception>
#include <filesystem>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "mcs/obs/metrics.hpp"
#include "mcs/util/thread_pool.hpp"

namespace mcs::svc {

namespace {

obs::Counter& g_points_run = obs::registry().counter("svc.executor.points_run");

/// Shards `pending` (point indices) over `jobs` workers with atomic work
/// stealing and hands each completed checkpoint to `complete` under the
/// scheduler lock.  Rethrows the first worker exception after the join.
void run_indices(const std::vector<std::size_t>& pending, std::size_t jobs,
                 const std::function<exp::PointCheckpoint(std::size_t)>& run,
                 const std::function<void(exp::PointCheckpoint)>& complete) {
  if (pending.empty()) return;
  if (jobs > pending.size()) jobs = pending.size();

  std::atomic<std::size_t> next{0};
  std::mutex complete_mutex;
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&] {
    for (;;) {
      const std::size_t slot = next.fetch_add(1, std::memory_order_relaxed);
      if (slot >= pending.size()) return;
      try {
        exp::PointCheckpoint point = run(pending[slot]);
        g_points_run.add();
        const std::lock_guard lock(complete_mutex);
        complete(std::move(point));
      } catch (...) {
        const std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  {
    std::vector<std::jthread> pool;
    pool.reserve(jobs - 1);
    for (std::size_t t = 0; t + 1 < jobs; ++t) pool.emplace_back(worker);
    worker();  // the calling thread joins the work
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace

std::size_t resolve_jobs(std::uint64_t requested) {
  if (requested == 0) {
    throw std::invalid_argument(
        "--jobs must be >= 1 (use --jobs 1 for a sequential run)");
  }
  const std::size_t hardware = util::default_thread_count();
  return requested > hardware ? hardware
                              : static_cast<std::size_t>(requested);
}

exp::SpecRunResult run_spec_parallel(const exp::SweepSpec& spec,
                                     const exp::SpecRunOptions& options,
                                     std::size_t jobs) {
  const exp::Sweep sweep = to_sweep(spec, options.alpha);
  const std::size_t total = sweep.points.size();

  exp::SpecRunResult out;
  out.fingerprint = exp::spec_fingerprint(spec, options.trials, options.seed,
                                          options.alpha);
  out.checkpoint_path = exp::checkpoint_path_for(options, spec);

  std::filesystem::create_directories(options.artifacts_dir);

  exp::ResumeState state = exp::load_resume_state(
      out.checkpoint_path, out.fingerprint, total, options.resume);
  std::vector<std::optional<exp::PointCheckpoint>>& done = state.done;
  out.resumed_points = state.resumed_points;

  // The same index prefix a sequential run would execute under
  // stop_after_points: the first N missing points in index order.
  std::vector<std::size_t> pending;
  pending.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    if (done[i]) continue;
    if (options.stop_after_points != 0 &&
        pending.size() >= options.stop_after_points) {
      break;
    }
    pending.push_back(i);
  }

  std::size_t completed = out.resumed_points;
  {
    exp::CheckpointWriter writer(out.checkpoint_path, spec.name,
                                 out.fingerprint, total, state.resuming);
    // One enable guard around the whole parallel section; attribution of
    // deltas to points happens through each worker's thread sink.
    obs::MetricsEnabledGuard guard(options.collect_metrics);
    run_indices(
        pending, jobs,
        [&](std::size_t index) {
          return exp::run_checkpointed_point(sweep, index, options,
                                             out.fingerprint,
                                             exp::PointCapture::kThreadSink);
        },
        [&](exp::PointCheckpoint point) {
          writer.append(point);
          const std::size_t index = point.index;
          done[index] = std::move(point);
          ++completed;
          if (options.progress) options.progress(completed, total);
        });
  }

  out.complete = completed == total;
  out.result.sweep = sweep;
  for (std::size_t i = 0; i < total; ++i) {
    if (!done[i]) continue;
    out.result.points.push_back(done[i]->result);
    out.point_counters.push_back(done[i]->counters);
  }

  if (out.complete && options.write_artifacts) {
    exp::write_spec_artifacts(spec, options, out.fingerprint, done, out);
  }
  return out;
}

exp::SweepResult run_sweep_parallel(
    const exp::Sweep& sweep, const exp::RunOptions& options, std::size_t jobs,
    const std::function<void(std::size_t, std::size_t)>& progress) {
  const std::size_t total = sweep.points.size();
  std::vector<std::optional<exp::PointResult>> done(total);

  std::vector<std::size_t> pending(total);
  for (std::size_t i = 0; i < total; ++i) pending[i] = i;

  std::size_t completed = 0;
  run_indices(
      pending, jobs,
      [&](std::size_t index) {
        const exp::SweepPoint& pt = sweep.points[index];
        const partition::PartitionerList schemes =
            pt.make_schemes ? pt.make_schemes()
                            : partition::paper_schemes(exp::kDefaultAlpha);
        exp::RunOptions point_options = options;
        point_options.threads = 1;  // the point runs inline on its worker
        if (!sweep.share_workloads_across_points) {
          point_options.seed = gen::derive_seed(options.seed, index);
        }
        exp::PointCheckpoint point;
        point.index = index;
        point.result = run_point(pt.params, schemes, point_options, pt.x);
        return point;
      },
      [&](exp::PointCheckpoint point) {
        done[point.index] = std::move(point.result);
        ++completed;
        if (progress) progress(completed, total);
      });

  exp::SweepResult result;
  result.sweep = sweep;
  result.points.reserve(total);
  for (std::optional<exp::PointResult>& point : done) {
    result.points.push_back(std::move(*point));
  }
  return result;
}

}  // namespace mcs::svc
