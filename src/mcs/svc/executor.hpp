// Parallel sweep executor: the svc:: entry point that saturates the machine
// with experiment points.
//
// Sweep points are independent by construction — each derives its RNG
// substream from (base seed, point index), a pure function of inputs the
// spec fingerprint covers — so the executor shards them across a pool of
// worker threads with atomic-increment work stealing (idle workers pull the
// next pending index; no static assignment, so uneven point costs balance
// themselves).  Determinism is preserved end to end:
//
//   * each point's trials run inline on its worker with chunk-ordered
//     Welford merging (exp::run_point), so the point's aggregates are
//     bit-identical to a sequential run's;
//   * per-point observability deltas are captured with a thread-local
//     obs::ThreadMetricsSink instead of global registry snapshots, so
//     concurrent points cannot bleed counters into each other;
//   * checkpoint appends funnel through one mutex-guarded CheckpointWriter
//     (append order follows completion and may interleave, but the loader
//     keys points by index, so resumed artifacts are unaffected);
//   * artifacts are assembled in point-index order after the join.
//
// Net: `mcs_exp --jobs N` produces artifacts byte-identical to `--jobs 1`
// for every N (pinned by SvcExecutor tests and the parallel-determinism CI
// job).
#pragma once

#include <cstdint>
#include <functional>

#include "mcs/exp/orchestrator.hpp"

namespace mcs::svc {

/// Validates a --jobs request: 0 is rejected (std::invalid_argument with a
/// usage hint); anything above the hardware concurrency is clamped to it
/// (oversubscribing CPU-bound sweep workers only adds scheduling noise).
[[nodiscard]] std::size_t resolve_jobs(std::uint64_t requested);

/// run_spec with the missing points sharded over `jobs` workers.  Artifacts
/// and checkpoints are byte-compatible with exp::run_spec in both
/// directions (a sequential checkpoint resumes a parallel run and vice
/// versa).  jobs == 1 runs the points on the calling thread through the
/// same scheduler.  options.stop_after_points limits how many *new* points
/// are scheduled (the same index prefix a sequential run would execute).
[[nodiscard]] exp::SpecRunResult run_spec_parallel(
    const exp::SweepSpec& spec, const exp::SpecRunOptions& options,
    std::size_t jobs);

/// Non-checkpointed variant for ad-hoc sweeps (examples/sweep_cli): runs
/// every point of `sweep` across `jobs` workers; the returned SweepResult
/// is bit-identical to exp::run_sweep's.  `progress` is invoked after each
/// completed point with (completed, total) under the scheduler lock.
[[nodiscard]] exp::SweepResult run_sweep_parallel(
    const exp::Sweep& sweep, const exp::RunOptions& options, std::size_t jobs,
    const std::function<void(std::size_t, std::size_t)>& progress = {});

}  // namespace mcs::svc
