#include "mcs/svc/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <stdexcept>

namespace mcs::svc {

Client::Client(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("mcs_serve client: socket path too long: " +
                             socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error("mcs_serve client: socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("mcs_serve client: cannot connect to " +
                             socket_path + ": " + why);
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

util::Json Client::analyze(const AnalysisRequest& request) {
  std::ostringstream out;
  write_analyze_request(out, next_id_++, request);
  return roundtrip(out.str());
}

util::Json Client::ping() {
  std::ostringstream out;
  write_command(out, next_id_++, Request::Kind::kPing);
  return roundtrip(out.str());
}

util::Json Client::stats() {
  std::ostringstream out;
  write_command(out, next_id_++, Request::Kind::kStats);
  return roundtrip(out.str());
}

util::Json Client::shutdown() {
  std::ostringstream out;
  write_command(out, next_id_++, Request::Kind::kShutdown);
  return roundtrip(out.str());
}

util::Json Client::roundtrip(const std::string& text) {
  const char* p = text.data();
  const char* const end = p + text.size();
  while (p < end) {
    const ssize_t n = ::write(fd_, p, static_cast<std::size_t>(end - p));
    if (n <= 0) {
      throw std::runtime_error("mcs_serve client: connection lost on send");
    }
    p += n;
  }

  for (;;) {
    if (const std::size_t eol = rx_buffer_.find('\n');
        eol != std::string::npos) {
      const std::string line = rx_buffer_.substr(0, eol);
      rx_buffer_.erase(0, eol + 1);
      return util::Json::parse(line);
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n <= 0) {
      throw std::runtime_error("mcs_serve client: connection closed mid-"
                               "response");
    }
    rx_buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace mcs::svc
