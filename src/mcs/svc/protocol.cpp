#include "mcs/svc/protocol.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "mcs/io/taskset_io.hpp"
#include "mcs/util/fnv.hpp"

namespace mcs::svc {

namespace {

constexpr const char* kMagic = "mcs-serve/1";

/// Doubles at round-trip precision (17 significant digits), matching the
/// canonical request text so responses are as reproducible as requests.
std::string exact(double v) {
  std::ostringstream out;
  out.precision(17);
  out << v;
  return out.str();
}

Request::Kind parse_kind(const std::string& verb) {
  if (verb == "analyze") return Request::Kind::kAnalyze;
  if (verb == "ping") return Request::Kind::kPing;
  if (verb == "stats") return Request::Kind::kStats;
  if (verb == "shutdown") return Request::Kind::kShutdown;
  throw ProtocolError("unknown request verb '" + verb + "'");
}

const char* verb_of(Request::Kind kind) {
  switch (kind) {
    case Request::Kind::kAnalyze:
      return "analyze";
    case Request::Kind::kPing:
      return "ping";
    case Request::Kind::kStats:
      return "stats";
    case Request::Kind::kShutdown:
      return "shutdown";
  }
  return "ping";
}

}  // namespace

std::optional<Request> read_request(std::istream& in) {
  std::string header;
  // Skip blank lines between requests; EOF here is a clean end of stream.
  for (;;) {
    if (!std::getline(in, header)) return std::nullopt;
    if (!header.empty()) break;
  }

  std::istringstream head(header);
  std::string magic, verb;
  std::uint64_t id = 0;
  if (!(head >> magic >> id >> verb) || magic != kMagic) {
    throw ProtocolError("bad request header '" + header + "'");
  }

  Request request;
  request.id = id;
  request.kind = parse_kind(verb);
  if (request.kind != Request::Kind::kAnalyze) return request;

  WireAnalyze wire;
  std::string cores_token, alpha_token;
  if (!(head >> wire.scheme_spec >> cores_token >> alpha_token)) {
    throw ProtocolError("bad analyze header '" + header + "'");
  }
  try {
    wire.num_cores = std::stoul(cores_token);
    wire.alpha = std::stod(alpha_token);
  } catch (const std::exception&) {
    throw ProtocolError("bad analyze header '" + header + "'");
  }

  // The body through "end" is the io:: task-set serialization verbatim.
  bool terminated = false;
  std::string line;
  while (std::getline(in, line)) {
    if (line == "end") {
      terminated = true;
      break;
    }
    wire.body += line;
    wire.body += '\n';
  }
  if (!terminated) throw ProtocolError("analyze request missing 'end'");

  // The cache key, assembled from the received tokens verbatim — byte-
  // identical to canonical_request_text for requests produced by
  // write_analyze_request (both serialize at round-trip precision).
  wire.canonical = "scheme " + wire.scheme_spec + "\ncores " + cores_token +
                   "\nalpha " + alpha_token + '\n' + wire.body;

  request.analyze = std::move(wire);
  return request;
}

AnalysisRequest parse_analyze(const WireAnalyze& wire) {
  try {
    std::istringstream body_in(wire.body);
    return AnalysisRequest{wire.scheme_spec, wire.num_cores, wire.alpha,
                           io::read_taskset(body_in)};
  } catch (const std::exception& e) {
    throw ProtocolError(std::string("bad task set: ") + e.what());
  }
}

void write_analyze_request(std::ostream& out, std::uint64_t id,
                           const AnalysisRequest& req) {
  out << kMagic << ' ' << id << " analyze " << req.scheme_spec << ' '
      << req.num_cores << ' ' << exact(req.alpha) << '\n';
  io::write_taskset(out, req.taskset);
  out << "end\n";
}

void write_command(std::ostream& out, std::uint64_t id, Request::Kind kind) {
  out << kMagic << ' ' << id << ' ' << verb_of(kind) << '\n';
}

util::Json analysis_response(std::uint64_t id, std::uint64_t fingerprint,
                             bool cached, const AnalysisResult& result) {
  util::Json out = util::Json::object();
  out.set("id", util::Json::number(id));
  out.set("ok", util::Json::boolean(true));
  out.set("fingerprint", util::Json::string(util::u64_hex16(fingerprint)));
  out.set("cached", util::Json::boolean(cached));
  out.set("success", util::Json::boolean(result.success));
  out.set("probes", util::Json::number(result.probes));
  if (result.failed_task) {
    out.set("failed_task", util::Json::number(*result.failed_task));
  }
  if (result.success) {
    out.set("u_sys", util::Json::number_raw(exact(result.u_sys)));
    out.set("u_avg", util::Json::number_raw(exact(result.u_avg)));
    out.set("imbalance", util::Json::number_raw(exact(result.imbalance)));
    out.set("partition", util::Json::string(result.partition_text));
  }
  return out;
}

util::Json pong_response(std::uint64_t id) {
  util::Json out = util::Json::object();
  out.set("id", util::Json::number(id));
  out.set("ok", util::Json::boolean(true));
  out.set("pong", util::Json::boolean(true));
  return out;
}

util::Json stats_response(std::uint64_t id, const CacheStats& stats,
                          std::uint64_t requests_served) {
  util::Json out = util::Json::object();
  out.set("id", util::Json::number(id));
  out.set("ok", util::Json::boolean(true));
  out.set("requests", util::Json::number(requests_served));
  util::Json cache = util::Json::object();
  cache.set("hits", util::Json::number(stats.hits));
  cache.set("misses", util::Json::number(stats.misses));
  cache.set("evictions", util::Json::number(stats.evictions));
  cache.set("collisions", util::Json::number(stats.collisions));
  cache.set("size", util::Json::number(stats.size));
  cache.set("capacity", util::Json::number(stats.capacity));
  out.set("cache", std::move(cache));
  return out;
}

util::Json error_response(std::uint64_t id, const std::string& message) {
  util::Json out = util::Json::object();
  out.set("id", util::Json::number(id));
  out.set("ok", util::Json::boolean(false));
  out.set("error", util::Json::string(message));
  return out;
}

}  // namespace mcs::svc
