#include "mcs/svc/analysis.hpp"

#include <sstream>
#include <stdexcept>

#include "mcs/analysis/metrics.hpp"
#include "mcs/analysis/placement.hpp"
#include "mcs/io/taskset_io.hpp"
#include "mcs/partition/registry.hpp"
#include "mcs/util/fnv.hpp"

namespace mcs::svc {

std::string canonical_request_text(const AnalysisRequest& req) {
  std::ostringstream out;
  out << "scheme " << req.scheme_spec << '\n';
  out << "cores " << req.num_cores << '\n';
  // Alpha at round-trip precision, matching io::write_taskset's convention
  // for periods/WCETs below.
  out.precision(17);
  out << "alpha " << req.alpha << '\n';
  io::write_taskset(out, req.taskset);
  return out.str();
}

std::uint64_t taskset_fingerprint(const TaskSet& ts) {
  util::Fnv1a h;
  h.feed_u64(ts.size());
  h.feed_u64(ts.num_levels());
  for (const McTask& task : ts) {
    h.feed_u64(task.id());
    h.feed_double(task.period());
    h.feed_u64(task.wcets().size());
    for (const double c : task.wcets()) h.feed_double(c);
  }
  return h.value();
}

std::uint64_t canonical_fingerprint(std::string_view canonical) {
  util::Fnv1a h;
  h.feed(canonical);
  return h.value();
}

std::uint64_t request_fingerprint(const AnalysisRequest& req) {
  return canonical_fingerprint(canonical_request_text(req));
}

AnalysisResult analyze(const AnalysisRequest& req,
                       analysis::PlacementEngine& engine) {
  if (req.num_cores == 0) {
    throw std::invalid_argument("analyze: request needs at least one core");
  }
  const std::unique_ptr<partition::Partitioner> scheme =
      partition::make_scheme_spec(req.scheme_spec, req.alpha);

  engine.reset(req.taskset, req.num_cores);
  const partition::PlacementOutcome outcome = scheme->run_on(engine);

  AnalysisResult result;
  result.success = outcome.success;
  result.failed_task = outcome.failed_task;
  result.probes = engine.probes();
  if (outcome.success) {
    const analysis::PartitionMetrics metrics =
        analysis::partition_metrics(engine.partition());
    result.u_sys = metrics.u_sys;
    result.u_avg = metrics.u_avg;
    result.imbalance = metrics.imbalance;
    std::ostringstream partition_out;
    io::write_partition(partition_out, engine.partition());
    result.partition_text = partition_out.str();
  }
  return result;
}

}  // namespace mcs::svc
