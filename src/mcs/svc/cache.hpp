// Fingerprint-keyed LRU cache of analysis results.
//
// Keys are the 64-bit FNV-1a request fingerprints; values are shared
// pointers to immutable AnalysisResults (shared so a hit stays valid after
// the entry is evicted under a concurrent insert).  Every entry also stores
// its request's canonical text: a lookup whose fingerprint matches but
// whose text differs is a detected collision and is served as a miss (and
// counted), so a 64-bit hash collision can never return the wrong
// partition — the differential selftest relies on this.
//
// Hit/miss/eviction/collision totals feed the obs registry
// (serve.cache.{hits,misses,evictions,collisions}) so the daemon's /stats
// and the selftest report them without a side channel.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "mcs/svc/analysis.hpp"

namespace mcs::svc {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t collisions = 0;  ///< fingerprint matched, canonical text not
  std::size_t size = 0;
  std::size_t capacity = 0;
};

/// Thread-safe LRU map fingerprint -> AnalysisResult.  All operations are
/// O(1) amortized (hash map + intrusive recency list).
class AnalysisCache {
 public:
  /// A cache holding at most `capacity` entries (>= 1 enforced).
  explicit AnalysisCache(std::size_t capacity);

  /// Returns the cached result when `fingerprint` is present AND the stored
  /// canonical text equals `canonical`; refreshes the entry's recency.
  /// Returns nullptr (a miss) otherwise; a present-but-mismatching entry
  /// additionally counts a collision and is left in place (the colliding
  /// requests will keep missing, which is correct, just not fast).
  [[nodiscard]] std::shared_ptr<const AnalysisResult> lookup(
      std::uint64_t fingerprint, const std::string& canonical);

  /// Inserts (or refreshes) an entry, evicting the least recently used one
  /// when full.  An existing entry with the same fingerprint is replaced —
  /// callers only insert after a miss, so a replace means a collision was
  /// detected on lookup and the newer request now owns the slot.
  void insert(std::uint64_t fingerprint, std::string canonical,
              std::shared_ptr<const AnalysisResult> result);

  [[nodiscard]] CacheStats stats() const;

  /// Empties the cache (totals are kept; they are lifetime counters).
  void clear();

 private:
  struct Entry {
    std::uint64_t fingerprint = 0;
    std::string canonical;
    std::shared_ptr<const AnalysisResult> result;
  };

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  CacheStats stats_;
};

}  // namespace mcs::svc
