// mcs_serve: partitioning-as-a-service over a local (AF_UNIX) stream
// socket.
//
// Architecture: one accept thread feeds connections to a fixed pool of
// worker threads.  Each worker drains its connection request-by-request:
// fingerprint the request (svc::request_fingerprint), consult the shared
// AnalysisCache, and on a miss lease a PlacementEngine from the shared
// EnginePool, run svc::analyze, and insert the result.  All responses are
// single JSON lines (svc/protocol.hpp).
//
// Observability: every request increments serve.requests and records its
// handling latency in the serve.latency_us histogram under an svc.request
// trace span; the cache contributes serve.cache.{hits,misses,evictions,
// collisions}.  `mcs-serve/1 <id> stats` reads the totals back out.
//
// Shutdown: stop() (or a client "shutdown" request) closes the listening
// socket and wakes the workers; wait() joins everything.  In-flight
// connections finish their current request stream first.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "mcs/analysis/placement.hpp"
#include "mcs/obs/metrics.hpp"
#include "mcs/svc/cache.hpp"

namespace mcs::svc {

/// A mutex-guarded pool of reusable PlacementEngines.  Leasing recycles an
/// engine's buffers across requests (the same trick the Monte-Carlo
/// harness uses across trials); the pool grows on demand up to one engine
/// per concurrent request, so acquire never blocks.
class EnginePool {
 public:
  class Lease {
   public:
    Lease(EnginePool& pool, std::unique_ptr<analysis::PlacementEngine> engine)
        : pool_(pool), engine_(std::move(engine)) {}
    ~Lease() { pool_.release(std::move(engine_)); }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    [[nodiscard]] analysis::PlacementEngine& engine() { return *engine_; }

   private:
    EnginePool& pool_;
    std::unique_ptr<analysis::PlacementEngine> engine_;
  };

  [[nodiscard]] Lease acquire();

 private:
  void release(std::unique_ptr<analysis::PlacementEngine> engine);

  std::mutex mutex_;
  std::vector<std::unique_ptr<analysis::PlacementEngine>> free_;
};

struct ServerConfig {
  std::string socket_path;        ///< AF_UNIX path (unlinked on bind+close)
  std::size_t workers = 2;        ///< connection-handling threads (>= 1)
  std::size_t cache_capacity = 256;
};

class Server {
 public:
  /// Binds and listens on config.socket_path (an existing socket file is
  /// replaced) and launches the accept + worker threads.  Throws
  /// std::runtime_error on socket errors.
  explicit Server(ServerConfig config);

  /// stop() + wait().
  ~Server();

  /// Initiates shutdown: no new connections are accepted, idle workers
  /// exit, in-flight connections finish.  Safe to call from any thread
  /// (including a worker handling a "shutdown" request) and idempotent.
  void stop();

  /// Blocks until the server stopped and every thread exited.  Call from
  /// the owning thread only.
  void wait();

  [[nodiscard]] const std::string& socket_path() const {
    return config_.socket_path;
  }
  [[nodiscard]] CacheStats cache_stats() const { return cache_.stats(); }
  [[nodiscard]] std::uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  void accept_loop();
  void worker_loop();
  void handle_connection(int fd);

  ServerConfig config_;
  obs::MetricsEnabledGuard metrics_guard_{true};
  AnalysisCache cache_;
  EnginePool engines_;

  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> requests_served_{0};

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_connections_;

  std::thread acceptor_;
  std::vector<std::thread> workers_;
  bool joined_ = false;
};

}  // namespace mcs::svc
