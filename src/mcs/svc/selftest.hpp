// Closed-loop daemon selftest and latency/throughput bench
// (mcs_serve --selftest).
//
// Boots an in-process Server on a private socket, then drives it with a
// closed-loop load generator per task-set size: a cold pass of distinct
// requests (every one a cache miss that runs the partitioner) followed by
// a warm pass of the same requests (every one a cache hit).  Every cold
// response is differentially validated against an in-process svc::analyze
// of the same request, and every warm response must match its cold twin
// field-for-field with cached == true — so the selftest is simultaneously
// the correctness gate for the protocol + cache path and the source of
// BENCH_serve.json.
//
// Reported per size: exact (sorted-sample, not histogram-bucket) p50/p99
// client round-trip latency and closed-loop requests/sec for both passes,
// plus the dimensionless speedup = cold / warm mean of the SERVER-side
// handling time (the responses' elapsed_us field).  Round trips include
// socket scheduling noise that swamps small requests; the server-side
// ratio isolates exactly the work the cache elides (partitioning +
// analysis vs. a lookup), which makes it the stable machine-independent
// ratio the bench regression gate tracks.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "mcs/svc/cache.hpp"
#include "mcs/util/json.hpp"

namespace mcs::svc {

struct SelftestOptions {
  std::vector<std::size_t> sizes{40, 120, 240};  ///< task-set sizes (N)
  std::size_t requests_per_size = 32;  ///< distinct task sets per size
  std::size_t workers = 2;
  std::size_t cache_capacity = 1024;   ///< >= total requests: warm pass hits
  std::string scheme_spec = "CA-TPA";
  std::size_t num_cores = 8;
  double alpha = 0.7;
  std::uint64_t seed = 1;
  bool quick = false;  ///< quarter the request count (CI smoke)
  /// Socket path; empty derives a per-process path under /tmp.
  std::string socket_path;
};

struct SelftestSizeReport {
  std::size_t tasks = 0;
  std::size_t requests = 0;
  // Client round-trip latency (includes socket + framing).
  double cold_mean_us = 0.0;
  double cold_p50_us = 0.0;
  double cold_p99_us = 0.0;
  double cold_rps = 0.0;
  double warm_mean_us = 0.0;
  double warm_p50_us = 0.0;
  double warm_p99_us = 0.0;
  double warm_rps = 0.0;
  // Server-side handling time (the responses' elapsed_us field).
  double cold_server_us = 0.0;
  double warm_server_us = 0.0;
  double speedup = 0.0;  ///< cold_server_us / warm_server_us
};

struct SelftestReport {
  std::vector<SelftestSizeReport> sizes;
  double aggregate_speedup = 0.0;  ///< total cold time / total warm time
  std::uint64_t total_requests = 0;
  double requests_per_sec = 0.0;  ///< closed-loop, both passes combined
  CacheStats cache;
  bool differential_ok = false;
  std::string differential_error;  ///< first mismatch, when !differential_ok
  SelftestOptions options;
};

/// Runs the selftest.  Throws std::runtime_error on infrastructure
/// failures (socket errors); validation failures are reported via
/// differential_ok / differential_error instead so the caller can print
/// the full report.
[[nodiscard]] SelftestReport run_selftest(const SelftestOptions& options);

/// The BENCH_serve.json document (schema-compatible with the other BENCH_*
/// files: per-size "speedup" ratios plus "aggregate_speedup", which is what
/// tools/check_bench_regression.py gates on).
[[nodiscard]] util::Json selftest_json(const SelftestReport& report);

/// Human-readable panel (the --selftest console output).
void print_selftest(std::ostream& out, const SelftestReport& report);

}  // namespace mcs::svc
