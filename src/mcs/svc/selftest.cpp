#include "mcs/svc/selftest.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <ostream>
#include <sstream>
#include <utility>

#include "mcs/analysis/placement.hpp"
#include "mcs/exp/paper_params.hpp"
#include "mcs/gen/taskset_generator.hpp"
#include "mcs/svc/client.hpp"
#include "mcs/svc/server.hpp"
#include "mcs/util/table.hpp"

namespace mcs::svc {

namespace {

using Clock = std::chrono::steady_clock;

double micros_since(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

/// Exact sample quantile (nearest-rank on the sorted sample), matching the
/// p50/p99 definition the bench docs quote.
double quantile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(samples.size())));
  return samples[std::min(samples.size() - 1, std::max<std::size_t>(rank, 1) - 1)];
}

double mean(const std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  double total = 0.0;
  for (const double s : samples) total += s;
  return total / static_cast<double>(samples.size());
}

util::Json num(double v) {
  return util::Json::number_raw(util::format_double(v, 6));
}

/// One cold/warm response validated against the in-process analysis.
/// Returns an error description, empty when the response matches.
std::string check_response(const util::Json& response, bool expect_cached,
                           const AnalysisResult& expected) {
  if (!response.at("ok").as_bool()) {
    return "server error: " + response.at("error").as_string();
  }
  if (response.at("cached").as_bool() != expect_cached) {
    return expect_cached ? "warm request missed the cache"
                         : "cold request claimed a cache hit";
  }
  if (response.at("success").as_bool() != expected.success) {
    return "success flag differs from in-process analysis";
  }
  if (response.at("probes").as_u64() != expected.probes) {
    return "probe count differs from in-process analysis";
  }
  if (expected.success) {
    if (response.at("u_sys").as_double() != expected.u_sys ||
        response.at("u_avg").as_double() != expected.u_avg ||
        response.at("imbalance").as_double() != expected.imbalance) {
      return "metrics differ from in-process analysis";
    }
    if (response.at("partition").as_string() != expected.partition_text) {
      return "partition differs from in-process analysis";
    }
  }
  return {};
}

}  // namespace

SelftestReport run_selftest(const SelftestOptions& options) {
  SelftestOptions opts = options;
  if (opts.quick) {
    opts.requests_per_size = std::max<std::size_t>(4, opts.requests_per_size / 4);
  }
  if (opts.socket_path.empty()) {
    opts.socket_path =
        "/tmp/mcs_serve_selftest_" + std::to_string(::getpid()) + ".sock";
  }

  SelftestReport report;
  report.options = opts;
  report.differential_ok = true;

  Server server(ServerConfig{opts.socket_path, opts.workers,
                             opts.cache_capacity});
  Client client(opts.socket_path);

  const auto fail = [&](std::string why) {
    if (report.differential_ok) {
      report.differential_ok = false;
      report.differential_error = std::move(why);
    }
  };

  if (!client.ping().at("pong").as_bool()) fail("ping did not pong");

  analysis::PlacementEngine reference_engine;
  double total_cold_us = 0.0;
  double total_warm_us = 0.0;
  double total_client_us = 0.0;
  std::uint64_t sets = 0;

  for (const std::size_t tasks : opts.sizes) {
    gen::GenParams params = exp::default_gen_params();
    params.num_cores = opts.num_cores;
    params.num_tasks = tasks;

    std::vector<AnalysisRequest> requests;
    std::vector<AnalysisResult> expected;
    requests.reserve(opts.requests_per_size);
    for (std::size_t i = 0; i < opts.requests_per_size; ++i) {
      AnalysisRequest request{opts.scheme_spec, opts.num_cores, opts.alpha,
                              gen::generate_trial(params, opts.seed, sets++)};
      expected.push_back(analyze(request, reference_engine));
      requests.push_back(std::move(request));
    }

    SelftestSizeReport row;
    row.tasks = tasks;
    row.requests = opts.requests_per_size;

    std::vector<double> cold, warm, cold_server, warm_server;
    cold.reserve(requests.size());
    warm.reserve(requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const auto start = Clock::now();
      const util::Json response = client.analyze(requests[i]);
      cold.push_back(micros_since(start));
      cold_server.push_back(response.at("elapsed_us").as_double());
      if (const std::string why = check_response(response, false, expected[i]);
          !why.empty()) {
        fail("cold N=" + std::to_string(tasks) + " #" + std::to_string(i) +
             ": " + why);
      }
    }
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const auto start = Clock::now();
      const util::Json response = client.analyze(requests[i]);
      warm.push_back(micros_since(start));
      warm_server.push_back(response.at("elapsed_us").as_double());
      if (const std::string why = check_response(response, true, expected[i]);
          !why.empty()) {
        fail("warm N=" + std::to_string(tasks) + " #" + std::to_string(i) +
             ": " + why);
      }
    }

    row.cold_mean_us = mean(cold);
    row.cold_p50_us = quantile(cold, 0.50);
    row.cold_p99_us = quantile(cold, 0.99);
    row.warm_mean_us = mean(warm);
    row.warm_p50_us = quantile(warm, 0.50);
    row.warm_p99_us = quantile(warm, 0.99);
    row.cold_rps = row.cold_mean_us > 0.0 ? 1e6 / row.cold_mean_us : 0.0;
    row.warm_rps = row.warm_mean_us > 0.0 ? 1e6 / row.warm_mean_us : 0.0;
    row.cold_server_us = mean(cold_server);
    row.warm_server_us = mean(warm_server);
    row.speedup = row.warm_server_us > 0.0
                      ? row.cold_server_us / row.warm_server_us
                      : 0.0;

    const auto n = static_cast<double>(requests.size());
    total_cold_us += row.cold_server_us * n;
    total_warm_us += row.warm_server_us * n;
    total_client_us += (row.cold_mean_us + row.warm_mean_us) * n;
    report.total_requests += 2 * requests.size();
    report.sizes.push_back(row);
  }

  report.aggregate_speedup =
      total_warm_us > 0.0 ? total_cold_us / total_warm_us : 0.0;
  report.requests_per_sec =
      total_client_us > 0.0
          ? static_cast<double>(report.total_requests) * 1e6 / total_client_us
          : 0.0;

  // The stats verb and the direct registry view must agree on totals.
  const util::Json stats = client.stats();
  report.cache = server.cache_stats();
  if (stats.at("cache").at("hits").as_u64() != report.cache.hits) {
    fail("stats response disagrees with the cache's own hit total");
  }
  client.shutdown();
  server.wait();
  return report;
}

util::Json selftest_json(const SelftestReport& report) {
  util::Json out = util::Json::object();
  out.set("bench", util::Json::string("mcs_serve"));
  out.set("workers", util::Json::number(report.options.workers));
  out.set("cache_capacity",
          util::Json::number(report.options.cache_capacity));
  out.set("scheme", util::Json::string(report.options.scheme_spec));
  out.set("cores", util::Json::number(report.options.num_cores));
  out.set("requests_per_size",
          util::Json::number(report.options.requests_per_size));
  out.set("quick", util::Json::boolean(report.options.quick));
  out.set("requests", util::Json::number(report.total_requests));
  out.set("requests_per_sec", num(report.requests_per_sec));
  util::Json sizes = util::Json::array();
  for (const SelftestSizeReport& row : report.sizes) {
    util::Json size = util::Json::object();
    size.set("tasks", util::Json::number(row.tasks));
    size.set("requests", util::Json::number(row.requests));
    util::Json cold = util::Json::object();
    cold.set("mean_us", num(row.cold_mean_us));
    cold.set("p50_us", num(row.cold_p50_us));
    cold.set("p99_us", num(row.cold_p99_us));
    cold.set("requests_per_sec", num(row.cold_rps));
    cold.set("server_mean_us", num(row.cold_server_us));
    size.set("cold", std::move(cold));
    util::Json warm = util::Json::object();
    warm.set("mean_us", num(row.warm_mean_us));
    warm.set("p50_us", num(row.warm_p50_us));
    warm.set("p99_us", num(row.warm_p99_us));
    warm.set("requests_per_sec", num(row.warm_rps));
    warm.set("server_mean_us", num(row.warm_server_us));
    size.set("warm", std::move(warm));
    size.set("speedup", num(row.speedup));
    sizes.push(std::move(size));
  }
  out.set("sizes", std::move(sizes));
  out.set("aggregate_speedup", num(report.aggregate_speedup));
  return out;
}

void print_selftest(std::ostream& out, const SelftestReport& report) {
  out << "mcs_serve selftest: " << report.total_requests << " requests, "
      << report.options.workers << " worker(s), cache capacity "
      << report.options.cache_capacity << "\n\n";
  util::Table table({"tasks", "requests", "cold p50us", "cold p99us",
                     "warm p50us", "warm p99us", "req/s", "speedup"});
  for (const SelftestSizeReport& row : report.sizes) {
    table.begin_row();
    table.add_cell(row.tasks);
    table.add_cell(row.requests);
    table.add_cell(row.cold_p50_us, 1);
    table.add_cell(row.cold_p99_us, 1);
    table.add_cell(row.warm_p50_us, 1);
    table.add_cell(row.warm_p99_us, 1);
    table.add_cell(row.warm_rps, 0);
    table.add_cell(row.speedup, 2);
  }
  table.print(out);
  out << "\ncache: " << report.cache.hits << " hit(s), "
      << report.cache.misses << " miss(es), " << report.cache.evictions
      << " eviction(s), " << report.cache.collisions << " collision(s)\n";
  out << "aggregate cache speedup: ";
  out.precision(3);
  out << report.aggregate_speedup << "  (" << report.requests_per_sec
      << " req/s closed-loop)\n";
  out << "differential validation: "
      << (report.differential_ok ? "OK" : "FAILED") << '\n';
  if (!report.differential_ok) {
    out << "  first mismatch: " << report.differential_error << '\n';
  }
}

}  // namespace mcs::svc
