// Plain-text serialization of task sets and partitions.
//
// Format (line-oriented, '#' comments, blank lines ignored):
//
//   # K <levels>
//   K 2
//   # task <id> <period> <c(1)> [c(2) ... c(l)]
//   task 1 80 15.1 32.4
//   task 3 60 22
//
// Partition files map task ids to cores:
//
//   # assign <task-id> <core>
//   cores 2
//   assign 1 0
//
// The format is deliberately trivial so task sets can be produced by hand,
// by scripts, or exported from the generator and fed back into the
// analysis/partitioning/simulation tools (examples/taskset_tool).
#pragma once

#include <iosfwd>
#include <string>

#include "mcs/core/partition.hpp"
#include "mcs/core/taskset.hpp"

namespace mcs::io {

/// Parses a task set.  Throws std::runtime_error with a line-numbered
/// message on malformed input.
[[nodiscard]] TaskSet read_taskset(std::istream& in);
[[nodiscard]] TaskSet load_taskset(const std::string& path);

/// Serializes a task set (round-trips through read_taskset).
void write_taskset(std::ostream& out, const TaskSet& ts);
void save_taskset(const std::string& path, const TaskSet& ts);

/// Serializes a partition of `ts` ("cores M" plus one "assign" per task).
void write_partition(std::ostream& out, const Partition& partition);

/// Parses a partition for `ts` (task ids must match; unassigned tasks are
/// permitted and left unassigned).
[[nodiscard]] Partition read_partition(std::istream& in, const TaskSet& ts);

}  // namespace mcs::io
