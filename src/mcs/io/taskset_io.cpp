#include "mcs/io/taskset_io.hpp"

#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace mcs::io {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw std::runtime_error("taskset_io: line " + std::to_string(line) + ": " +
                           message);
}

/// Strips comments and splits a line into whitespace-separated tokens.
std::vector<std::string> tokenize(const std::string& line) {
  std::string stripped = line;
  if (const auto hash = stripped.find('#'); hash != std::string::npos) {
    stripped.resize(hash);
  }
  std::istringstream is(stripped);
  std::vector<std::string> tokens;
  std::string token;
  while (is >> token) tokens.push_back(token);
  return tokens;
}

double parse_double(const std::string& token, std::size_t line) {
  try {
    std::size_t used = 0;
    const double v = std::stod(token, &used);
    if (used != token.size()) fail(line, "trailing junk in number '" + token + "'");
    return v;
  } catch (const std::runtime_error&) {
    throw;
  } catch (const std::exception&) {
    fail(line, "expected a number, got '" + token + "'");
  }
}

std::size_t parse_index(const std::string& token, std::size_t line) {
  try {
    std::size_t used = 0;
    const unsigned long long v = std::stoull(token, &used);
    if (used != token.size()) fail(line, "trailing junk in integer '" + token + "'");
    return static_cast<std::size_t>(v);
  } catch (const std::runtime_error&) {
    throw;
  } catch (const std::exception&) {
    fail(line, "expected an integer, got '" + token + "'");
  }
}

}  // namespace

TaskSet read_taskset(std::istream& in) {
  std::vector<McTask> tasks;
  Level levels = 0;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty()) continue;
    if (tokens[0] == "K") {
      if (tokens.size() != 2) fail(line_no, "K expects one value");
      levels = static_cast<Level>(parse_index(tokens[1], line_no));
    } else if (tokens[0] == "task") {
      if (tokens.size() < 4) {
        fail(line_no, "task expects: task <id> <period> <c(1)> [c(2) ...]");
      }
      const std::size_t id = parse_index(tokens[1], line_no);
      const double period = parse_double(tokens[2], line_no);
      std::vector<double> wcets;
      for (std::size_t i = 3; i < tokens.size(); ++i) {
        wcets.push_back(parse_double(tokens[i], line_no));
      }
      try {
        tasks.emplace_back(id, std::move(wcets), period);
      } catch (const std::invalid_argument& e) {
        fail(line_no, e.what());
      }
    } else {
      fail(line_no, "unknown directive '" + tokens[0] + "'");
    }
  }
  if (levels == 0) {
    for (const McTask& t : tasks) levels = std::max(levels, t.level());
  }
  if (tasks.empty()) {
    throw std::runtime_error("taskset_io: no tasks in input");
  }
  std::map<std::size_t, bool> ids;
  for (const McTask& t : tasks) {
    if (ids.count(t.id()) != 0) {
      throw std::runtime_error("taskset_io: duplicate task id " +
                               std::to_string(t.id()));
    }
    ids[t.id()] = true;
  }
  try {
    return TaskSet(std::move(tasks), levels);
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error(std::string("taskset_io: ") + e.what());
  }
}

TaskSet load_taskset(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("taskset_io: cannot open '" + path + "'");
  }
  return read_taskset(in);
}

void write_taskset(std::ostream& out, const TaskSet& ts) {
  out << "# mcs task set: " << ts.size() << " tasks, K = " << ts.num_levels()
      << "\nK " << ts.num_levels() << '\n';
  out << std::setprecision(17);
  for (const McTask& t : ts) {
    out << "task " << t.id() << ' ' << t.period();
    for (double c : t.wcets()) out << ' ' << c;
    out << '\n';
  }
}

void save_taskset(const std::string& path, const TaskSet& ts) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("taskset_io: cannot open '" + path +
                             "' for writing");
  }
  write_taskset(out, ts);
}

void write_partition(std::ostream& out, const Partition& partition) {
  const TaskSet& ts = partition.taskset();
  out << "cores " << partition.num_cores() << '\n';
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (partition.core_of(i) == kUnassigned) continue;
    out << "assign " << ts[i].id() << ' ' << partition.core_of(i) << '\n';
  }
}

Partition read_partition(std::istream& in, const TaskSet& ts) {
  std::map<std::size_t, std::size_t> index_of_id;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    index_of_id[ts[i].id()] = i;
  }
  std::size_t cores = 0;
  std::vector<std::pair<std::size_t, std::size_t>> assignments;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty()) continue;
    if (tokens[0] == "cores") {
      if (tokens.size() != 2) fail(line_no, "cores expects one value");
      cores = parse_index(tokens[1], line_no);
    } else if (tokens[0] == "assign") {
      if (tokens.size() != 3) fail(line_no, "assign expects <task-id> <core>");
      const std::size_t id = parse_index(tokens[1], line_no);
      const auto it = index_of_id.find(id);
      if (it == index_of_id.end()) {
        fail(line_no, "unknown task id " + std::to_string(id));
      }
      assignments.emplace_back(it->second, parse_index(tokens[2], line_no));
    } else {
      fail(line_no, "unknown directive '" + tokens[0] + "'");
    }
  }
  if (cores == 0) {
    throw std::runtime_error("taskset_io: partition missing 'cores' line");
  }
  Partition partition(ts, cores);
  for (const auto& [task, core] : assignments) {
    if (core >= cores) {
      throw std::runtime_error("taskset_io: core index out of range");
    }
    partition.assign(task, core);
  }
  return partition;
}

}  // namespace mcs::io
