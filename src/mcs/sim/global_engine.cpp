#include "mcs/sim/global_engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "mcs/analysis/vdeadlines.hpp"
#include "mcs/gen/rng.hpp"

namespace mcs::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEps = 1e-9;
constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

struct Job {
  std::size_t task = 0;
  std::uint64_t number = 0;
  double release = 0.0;
  double deadline = 0.0;
  double remaining = 0.0;
  double done = 0.0;
};

class GlobalSim {
 public:
  GlobalSim(const TaskSet& ts, std::size_t cores,
            const ExecutionScenario& scenario, const SimConfig& cfg,
            TraceSink* sink, SimResult& result)
      : ts_(ts),
        cores_(cores),
        scenario_(scenario),
        cfg_(cfg),
        sink_(sink),
        policy_(ts.utils()),
        result_(result) {
    stats_.mode_residency.assign(ts_.num_levels(), 0.0);
    next_job_.assign(ts_.size(), 0);
    next_arrival_.assign(ts_.size(), 0.0);
    fp_rank_.assign(ts_.size(), 0);
    std::vector<std::size_t> order(ts_.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (ts_[a].period() != ts_[b].period()) {
        return ts_[a].period() < ts_[b].period();
      }
      return a < b;
    });
    for (std::size_t rank = 0; rank < order.size(); ++rank) {
      fp_rank_[order[rank]] = rank;
    }
  }

  CoreStats run(double horizon) {
    while (t_ < horizon - kEps) {
      if (flag_expired_deadlines()) {
        if (cfg_.stop_core_on_miss) break;
        continue;
      }
      if (ready_.empty()) {
        if (mode_ > 1 && cfg_.idle_reset) idle_reset();
        const double ta = next_arrival_time();
        if (ta >= horizon - kEps) break;
        set_time(ta);
        process_arrivals();
        continue;
      }

      const std::vector<std::size_t> running = select_running();
      double t_complete = kInf;
      double t_threshold = kInf;
      for (std::size_t idx : running) {
        const Job& job = ready_[idx];
        t_complete = std::min(t_complete, t_ + job.remaining);
        if (ts_[job.task].level() > mode_) {
          const double budget = ts_[job.task].wcet(mode_);
          t_threshold =
              std::min(t_threshold, t_ + std::max(0.0, budget - job.done));
        }
      }
      const double t_release = next_arrival_time();
      const double t_dl = earliest_deadline();
      const double t_evt = std::min({t_complete, t_threshold, t_release});

      if (t_dl + cfg_.miss_tolerance < t_evt) {
        advance_running(running, t_dl);
        std::size_t expiring = 0;
        for (std::size_t i = 1; i < ready_.size(); ++i) {
          if (ready_[i].deadline < ready_[expiring].deadline) expiring = i;
        }
        const Job victim = ready_[expiring];
        record_miss(victim);
        if (cfg_.stop_core_on_miss) break;
        erase_job(victim.task, victim.number);
        continue;
      }
      if (t_evt >= horizon - kEps) {
        advance_running(running, std::min(t_evt, horizon));
        break;
      }
      advance_running(running, t_evt);

      // Completions (any running job that finished).
      bool completed_any = false;
      for (std::size_t i = ready_.size(); i-- > 0;) {
        if (ready_[i].remaining <= kEps) {
          complete(ready_[i]);
          completed_any = true;
        }
      }
      if (completed_any) continue;

      // Budget exhaustion -> system-wide mode switch.
      bool exceeded = false;
      for (const Job& job : ready_) {
        const McTask& mt = ts_[job.task];
        if (mt.level() > mode_ && job.remaining > kEps &&
            job.done >= mt.wcet(mode_) - kEps) {
          exceeded = true;
          break;
        }
      }
      if (exceeded) {
        switch_mode();
        continue;
      }
      if (t_evt >= t_release - kEps) process_arrivals();
    }
    set_time(horizon);
    return stats_;
  }

 private:
  void set_time(double to) {
    if (to > t_) {
      stats_.mode_residency[mode_ - 1] += to - t_;
      t_ = to;
    }
  }

  void advance_running(const std::vector<std::size_t>& running, double to) {
    const double dt = to - t_;
    if (dt <= 0.0) return;
    for (std::size_t idx : running) {
      if (sink_ != nullptr) {
        sink_->on_event(TraceEvent{.time = t_,
                                   .core = 0,
                                   .kind = EventKind::kExecute,
                                   .task = ready_[idx].task,
                                   .job = ready_[idx].number,
                                   .mode = mode_,
                                   .deadline = ready_[idx].deadline,
                                   .until = to});
      }
      ready_[idx].done += dt;
      ready_[idx].remaining -= dt;
    }
    set_time(to);
  }

  [[nodiscard]] bool higher_priority(const Job& a, const Job& b) const {
    if (cfg_.scheduler == SchedulerKind::kFixedPriority) {
      return fp_rank_[a.task] < fp_rank_[b.task] ||
             (a.task == b.task && a.number < b.number);
    }
    return a.deadline < b.deadline ||
           (a.deadline == b.deadline &&
            (a.task < b.task || (a.task == b.task && a.number < b.number)));
  }

  /// Indices (into ready_) of the up-to-m highest-priority jobs.
  [[nodiscard]] std::vector<std::size_t> select_running() const {
    std::vector<std::size_t> idx(ready_.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    const std::size_t take = std::min(cores_, idx.size());
    std::partial_sort(idx.begin(),
                      idx.begin() + static_cast<std::ptrdiff_t>(take),
                      idx.end(), [&](std::size_t a, std::size_t b) {
                        return higher_priority(ready_[a], ready_[b]);
                      });
    idx.resize(take);
    return idx;
  }

  [[nodiscard]] double earliest_deadline() const {
    double dl = kInf;
    for (const Job& j : ready_) dl = std::min(dl, j.deadline);
    return dl;
  }

  [[nodiscard]] double next_arrival_time() const {
    double ta = kInf;
    for (double a : next_arrival_) ta = std::min(ta, a);
    return ta;
  }

  void schedule_next_arrival(std::size_t task, std::uint64_t job) {
    const McTask& mt = ts_[task];
    double delay = 0.0;
    if (cfg_.sporadic_jitter > 0.0) {
      gen::Rng rng(gen::derive_seed(cfg_.arrival_seed,
                                    mt.id() * 0x100000001ULL + job));
      delay = rng.uniform(0.0, cfg_.sporadic_jitter * mt.period());
    }
    next_arrival_[task] += mt.period() + delay;
  }

  [[nodiscard]] double deadline_scale(std::size_t task,
                                      Level task_level) const {
    if (!cfg_.use_virtual_deadlines ||
        cfg_.scheduler == SchedulerKind::kFixedPriority) {
      return 1.0;
    }
    if (ts_.num_levels() == 2 && !cfg_.dual_scales.empty()) {
      if (task_level == 2 && mode_ == 1 && task < cfg_.dual_scales.size()) {
        const double x = cfg_.dual_scales[task];
        if (x > 0.0 && x <= 1.0) return x;
      }
      return 1.0;
    }
    if (cfg_.dual_scale_override > 0.0 && cfg_.dual_scale_override <= 1.0 &&
        ts_.num_levels() == 2) {
      return (task_level == 2 && mode_ == 1) ? cfg_.dual_scale_override : 1.0;
    }
    return policy_.scale(task_level, mode_);
  }

  void process_arrivals() {
    for (std::size_t task = 0; task < ts_.size(); ++task) {
      while (next_arrival_[task] <= t_ + kEps) {
        const McTask& mt = ts_[task];
        const std::uint64_t number = next_job_[task];
        const double release = next_arrival_[task];
        ++next_job_[task];
        schedule_next_arrival(task, number);
        if (mt.level() < mode_) {
          ++stats_.releases_suppressed;
          ++result_.tasks[task].suppressed;
          emit(EventKind::kReleaseSuppressed, task, number, release);
          continue;
        }
        const double exec = scenario_.execution_time(mt, number);
        if (!(exec > 0.0) || exec > mt.wcet(mt.level()) + kEps) {
          throw std::logic_error(
              "simulate_global: scenario returned an execution time outside "
              "(0, c_i(l_i)]");
        }
        Job job;
        job.task = task;
        job.number = number;
        job.release = release;
        job.deadline =
            release + deadline_scale(task, mt.level()) * mt.period();
        job.remaining = exec;
        ready_.push_back(job);
        ++stats_.jobs_released;
        ++result_.tasks[task].released;
        emit(EventKind::kRelease, task, number, job.deadline);
      }
    }
  }

  void complete(const Job& job) {
    ++stats_.jobs_completed;
    TaskSimStats& tstats = result_.tasks[job.task];
    ++tstats.completed;
    const double response = t_ - job.release;
    tstats.sum_response += response;
    tstats.max_response = std::max(tstats.max_response, response);
    if (t_ > job.deadline + cfg_.miss_tolerance) record_miss(job);
    emit(EventKind::kComplete, job.task, job.number, job.deadline);
    erase_job(job.task, job.number);
  }

  bool flag_expired_deadlines() {
    for (const Job& j : ready_) {
      if (t_ > j.deadline + cfg_.miss_tolerance) {
        record_miss(j);
        erase_job(j.task, j.number);
        return true;
      }
    }
    return false;
  }

  void switch_mode() {
    bool again = true;
    while (again && mode_ < ts_.num_levels()) {
      const Level old_mode = mode_;
      ++mode_;
      ++stats_.mode_switches;
      stats_.max_mode = std::max(stats_.max_mode, mode_);
      emit(EventKind::kModeSwitch, kNone, 0, 0.0);
      for (std::size_t i = ready_.size(); i-- > 0;) {
        if (ts_[ready_[i].task].level() <= old_mode) {
          ++stats_.jobs_dropped;
          ++result_.tasks[ready_[i].task].dropped;
          emit(EventKind::kJobDropped, ready_[i].task, ready_[i].number,
               ready_[i].deadline);
          ready_.erase(ready_.begin() + static_cast<std::ptrdiff_t>(i));
        }
      }
      for (Job& j : ready_) {
        j.deadline = j.release + deadline_scale(j.task, ts_[j.task].level()) *
                                     ts_[j.task].period();
      }
      again = false;
      for (const Job& j : ready_) {
        const McTask& mt = ts_[j.task];
        if (mt.level() > mode_ && j.remaining > kEps &&
            j.done >= mt.wcet(mode_) - kEps) {
          again = true;
          break;
        }
      }
    }
  }

  void idle_reset() {
    mode_ = 1;
    ++stats_.idle_resets;
    emit(EventKind::kIdleReset, kNone, 0, 0.0);
  }

  void record_miss(const Job& job) {
    ++result_.tasks[job.task].missed;
    result_.misses.push_back(DeadlineMiss{.core = 0,
                                          .task = job.task,
                                          .job = job.number,
                                          .deadline = job.deadline,
                                          .detected_at = t_,
                                          .mode = mode_});
    emit(EventKind::kDeadlineMiss, job.task, job.number, job.deadline);
  }

  void erase_job(std::size_t task, std::uint64_t number) {
    for (std::size_t i = 0; i < ready_.size(); ++i) {
      if (ready_[i].task == task && ready_[i].number == number) {
        ready_.erase(ready_.begin() + static_cast<std::ptrdiff_t>(i));
        return;
      }
    }
  }

  void emit(EventKind kind, std::size_t task, std::uint64_t job,
            double deadline) {
    if (sink_ == nullptr) return;
    sink_->on_event(TraceEvent{.time = t_,
                               .core = 0,
                               .kind = kind,
                               .task = task,
                               .job = job,
                               .mode = mode_,
                               .deadline = deadline});
  }

  const TaskSet& ts_;
  std::size_t cores_;
  const ExecutionScenario& scenario_;
  const SimConfig& cfg_;
  TraceSink* sink_;
  analysis::DeadlinePolicy policy_;
  SimResult& result_;

  Level mode_ = 1;
  double t_ = 0.0;
  std::vector<Job> ready_;
  std::vector<std::uint64_t> next_job_;
  std::vector<double> next_arrival_;
  std::vector<std::size_t> fp_rank_;
  CoreStats stats_;
};

}  // namespace

SimResult simulate_global(const TaskSet& ts, std::size_t num_cores,
                          const ExecutionScenario& scenario,
                          const SimConfig& config, TraceSink* sink) {
  if (num_cores == 0) {
    throw std::invalid_argument("simulate_global: need at least one core");
  }
  SimResult result;
  double max_p = 0.0;
  for (const McTask& t : ts) max_p = std::max(max_p, t.period());
  result.horizon = config.horizon > 0.0 ? config.horizon : 20.0 * max_p;
  result.tasks.assign(ts.size(), TaskSimStats{});
  GlobalSim sim(ts, num_cores, scenario, config, sink, result);
  result.cores.push_back(sim.run(result.horizon));
  return result;
}

}  // namespace mcs::sim
