// Indexed priority queue over the pooled job arena — the fast simulation
// kernel's ready structure.
//
// The scheduling heap is an intrusive indexed 4-ary min-heap ordered by the
// active scheduler's dispatch key — EDF (deadline, task, number) or
// fixed-priority (rank, task, number); both are total orders, so dispatch
// never depends on insertion history.  Heap entries carry their sort keys
// *inline*: sifting compares contiguous entries instead of chasing pool
// pointers, which is what makes the heap beat the legacy engine's linear
// scans at realistic queue depths (the scans are contiguous and
// prefetch-friendly; a pointer-chasing heap is not).
//
// Deadline-miss victim selection needs a different order: the legacy engine
// breaks min-deadline ties by ready-vector position, i.e. insertion order,
// so the victim is the minimal (deadline, seq) job.
//
//   * Under EDF the dispatch key's primary component IS the deadline, so
//     the scheduling heap's top already answers the O(1) "earliest
//     deadline" peek; the exact (deadline, seq) victim is resolved by an
//     O(n) arena scan only when a miss actually fires (misses are rare and
//     the reference engine pays a scan there anyway).
//   * Under fixed priority the dispatch key says nothing about deadlines,
//     so a second indexed heap ordered by (deadline, seq) is maintained.
//
// Every structural operation is O(log n) (erase/update via the position
// indices stored in the pool slots); top peeks are O(1); rebuild()
// refreshes the inline keys and re-heapifies in O(n) after a bulk deadline
// change (the mode-switch re-derivation).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "mcs/sim/job_pool.hpp"

namespace mcs::sim {

class ReadyQueue {
 public:
  /// `fp_ranks` selects the dispatch order: nullptr keys the scheduling
  /// heap by EDF (deadline, task, number); otherwise by fixed-priority
  /// ((*fp_ranks)[task], task, number) and additionally maintains the
  /// (deadline, seq) heap.  The vector must outlive the queue and cover
  /// every task index pushed.
  explicit ReadyQueue(const std::vector<std::size_t>* fp_ranks = nullptr)
      : fp_ranks_(fp_ranks) {}

  /// Pre-sizes the pool and heap storage for `jobs` concurrently ready
  /// jobs (a hint, not a cap — growth past it just reallocates as usual).
  void reserve(std::size_t jobs) {
    pool_.reserve(jobs);
    sched_heap_.reserve(jobs);
    if (fp()) dl_heap_.reserve(jobs);
  }

  /// Inserts a job; assigns the next insertion sequence number.
  JobHandle push(const Job& job);

  /// Removes a job by handle.
  void erase(JobHandle h);

  /// The dispatch-order minimum, or kNoJob when empty.  O(1).
  [[nodiscard]] JobHandle top_sched() const {
    return sched_heap_.empty() ? kNoJob : sched_heap_.front().handle;
  }

  /// The (deadline, seq) minimum — the deadline-miss victim — or kNoJob
  /// when empty.  O(1) under fixed priority, O(n) arena scan under EDF
  /// (only called on the miss path; see header comment).
  [[nodiscard]] JobHandle top_deadline() const;

  /// Smallest absolute deadline over ready jobs, +inf when empty.  O(1):
  /// under EDF the dispatch key's primary component is the deadline, so
  /// the scheduling top is also the deadline minimum; under fixed priority
  /// the (deadline, seq) heap answers.
  [[nodiscard]] double earliest_deadline() const {
    if (sched_heap_.empty()) return std::numeric_limits<double>::infinity();
    return fp() ? dl_heap_.front().deadline : sched_heap_.front().key;
  }

  [[nodiscard]] Job& job(JobHandle h) { return pool_.job(h); }
  [[nodiscard]] const Job& job(JobHandle h) const { return pool_.job(h); }
  [[nodiscard]] std::uint64_t seq(JobHandle h) const { return pool_.seq(h); }

  /// True when `h` still holds exactly the job (task, number).
  [[nodiscard]] bool contains(JobHandle h, std::size_t task,
                              std::uint64_t number) const {
    return pool_.matches(h, task, number);
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return sched_heap_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return sched_heap_.empty(); }

  /// Refreshes `h`'s inline keys and restores heap order after its
  /// deadline changed.  O(log n).
  void update(JobHandle h);

  /// Refreshes every inline key and re-heapifies after a bulk deadline
  /// change.  O(n).
  void rebuild();

  /// Visits every ready handle in arbitrary (slot) order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    pool_.for_each_active(fn);
  }

  void clear();

 private:
  /// Scheduling-heap entry with the full dispatch key inline.  `key` is
  /// the scheduler's primary component — the absolute deadline under EDF,
  /// the fixed-priority rank (exact as a double: ranks are task indices)
  /// under FP — so one branch-free comparator serves both schedulers.
  struct SchedEntry {
    double key = 0.0;
    std::uint64_t task = 0;
    std::uint64_t number = 0;
    JobHandle handle = kNoJob;
  };
  /// (deadline, seq) heap entry (fixed-priority mode only).
  struct DlEntry {
    double deadline = 0.0;
    std::uint64_t seq = 0;
    JobHandle handle = kNoJob;
  };

  [[nodiscard]] bool fp() const noexcept { return fp_ranks_ != nullptr; }
  [[nodiscard]] SchedEntry make_sched_entry(JobHandle h) const;
  [[nodiscard]] DlEntry make_dl_entry(JobHandle h) const;
  [[nodiscard]] static bool sched_less(const SchedEntry& a,
                                       const SchedEntry& b);
  [[nodiscard]] static bool dl_less(const DlEntry& a, const DlEntry& b);

  // One set of d-ary sift primitives per heap; kHeapArity-way layout keeps
  // the tree shallow and the hot sift-down loop cache friendly.
  void sched_sift_up(std::size_t i);
  void sched_sift_down(std::size_t i);
  void dl_sift_up(std::size_t i);
  void dl_sift_down(std::size_t i);

  static constexpr std::size_t kHeapArity = 4;

  JobPool pool_;
  std::vector<SchedEntry> sched_heap_;
  std::vector<DlEntry> dl_heap_;  ///< empty unless fixed-priority
  const std::vector<std::size_t>* fp_ranks_;
};

}  // namespace mcs::sim
