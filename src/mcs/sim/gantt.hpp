// ASCII Gantt rendering of recorded engine traces.
//
// One row per task plus a mode strip per core:
//
//   t = [0, 40)                        one column ~ 0.5 time units
//   tau_0 |##r####..#########X   r###|
//   tau_1 |r###       r!          r##|
//   core0 |111122222222222111111111111|
//
//   '#' executing   'r' release   'x' release suppressed   'X' job dropped
//   '!' deadline miss   '*' completion   digits: core mode over time
//
// Built entirely from TraceEvents (kExecute segments supply the busy
// intervals), so it works for both the partitioned and the global engine.
#pragma once

#include <string>

#include "mcs/core/taskset.hpp"
#include "mcs/sim/trace.hpp"

namespace mcs::sim {

struct GanttOptions {
  double t_begin = 0.0;
  double t_end = 0.0;        ///< 0 selects the last event time
  std::size_t width = 100;   ///< columns of the timeline
  bool show_mode_strip = true;
};

/// Renders the recorded trace as an ASCII chart.  Tasks are labelled by
/// their McTask::id(); only tasks with at least one event appear.
[[nodiscard]] std::string render_gantt(const RecordingTraceSink& trace,
                                       const TaskSet& ts,
                                       const GanttOptions& options = {});

}  // namespace mcs::sim
