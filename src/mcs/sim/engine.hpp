// Event-driven runtime engine: partitioned EDF-VD with AMC mode switching.
//
// Each core runs independently (partitioned scheduling has no migration):
//  * jobs are released periodically from time 0; while a core operates at
//    mode l, releases of tasks with criticality < l are suppressed;
//  * the ready job with the earliest (virtual) absolute deadline runs;
//  * when a job of a task with level > l executes beyond its level-l WCET
//    without completing, the core switches to mode l+1 (cascading if the
//    job is already beyond higher budgets): ready jobs of criticality <= l
//    are dropped and remaining deadlines are re-derived from the
//    DeadlinePolicy for the new mode;
//  * a core that becomes idle resets to mode 1 (paper Sec. I / II-A);
//  * a job whose deadline passes before completion is a deadline miss.
//
// Virtual deadlines follow analysis::DeadlinePolicy (paper Sec. II-B); plain
// EDF (no shrinking) can be forced for baselines and property tests.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "mcs/analysis/vdeadlines.hpp"
#include "mcs/core/partition.hpp"
#include "mcs/sim/scenario.hpp"
#include "mcs/sim/trace.hpp"

namespace mcs::sim {

/// Per-core scheduling policy.
enum class SchedulerKind {
  kEdfVd,          ///< EDF with virtual deadlines (paper default)
  kFixedPriority,  ///< deadline-monotonic fixed priorities + AMC
};

/// Which simulation kernel executes the per-core event loop.  Both engines
/// are required to produce bit-identical SimResults and trace streams for
/// every configuration (enforced by verify::check_engine_parity and the
/// engine-parity fuzz target).
enum class EngineKind {
  /// Indexed-heap kernel: O(log n) per event via sim::ReadyQueue (dispatch
  /// + deadline heaps over a pooled job arena) and sim::ArrivalCalendar.
  kEventCalendar,
  /// The original O(n)-scan loop, kept as the differential-testing baseline
  /// and performance reference.
  kReference,
};

struct SimConfig {
  /// Simulation end time; 0 selects 20x the longest period in the set
  /// (default_horizon), or the exact hyperperiod when
  /// use_hyperperiod_horizon is set and one exists.
  double horizon = 0.0;
  /// When horizon == 0, prefer the exact hyperperiod of the set's periods
  /// over the 20x default.  Only takes effect when every period is integral
  /// and the LCM fits without overflow (see integral_hyperperiod); otherwise
  /// the 20x default is used.  The verify oracle's exact small-set mode
  /// relies on this for synchronous-release coverage of a full period-LCM
  /// window.
  bool use_hyperperiod_horizon = false;
  /// Per-core scheduler.  Fixed-priority mode ignores virtual deadlines
  /// (jobs keep their real deadlines; priority = deadline-monotonic rank).
  SchedulerKind scheduler = SchedulerKind::kEdfVd;
  /// Simulation kernel.  kEventCalendar is the production default; the
  /// reference engine exists for differential testing and benchmarking.
  EngineKind engine = EngineKind::kEventCalendar;
  /// Use EDF-VD virtual deadlines (false forces plain EDF).
  bool use_virtual_deadlines = true;
  /// Dual-criticality only: force this HI virtual-deadline scale factor in
  /// LO mode instead of the Theorem-1-derived policy (used to execute the
  /// scale chosen by the DBF analysis).  Ignored unless 0 < value <= 1 and
  /// the task set has exactly two levels.
  double dual_scale_override = 0.0;
  /// Dual-criticality only: per-task LO-mode virtual-deadline scales
  /// indexed by task index (e.g. from analysis::dbf_dual_test_tuned).
  /// Entries outside (0, 1] and LO tasks are ignored.  Takes precedence
  /// over dual_scale_override when non-empty.
  std::vector<double> dual_scales;
  /// Sporadic arrivals: each inter-arrival time is the period plus a
  /// uniform delay in [0, sporadic_jitter * period].  0 keeps strictly
  /// periodic releases.  All schedulability analyses in this library are
  /// sporadic-task analyses, so accepted partitions must tolerate any
  /// jitter; relative deadlines stay equal to the period.
  double sporadic_jitter = 0.0;
  /// Seed for the deterministic sporadic-delay stream.
  std::uint64_t arrival_seed = 0x5e0a11aULL;
  /// Fixed-priority mode: explicit per-task priority ranks indexed by task
  /// index (lower = higher priority), e.g. from an Audsley assignment.
  /// Empty selects deadline-monotonic ranks.
  std::vector<std::size_t> fp_priorities;
  /// Elastic degraded service (after Su & Zhu's E-MC model, the paper's
  /// reference [31]): while a core is above mode 1, tasks below the mode
  /// are not suppressed outright — they release with period and deadline
  /// stretched by this factor (> 1), i.e. they keep running at reduced
  /// rate.  Values <= 1 keep the classical AMC drop-and-suppress protocol.
  /// Jobs pending at a switch are still dropped.
  double degraded_period_stretch = 0.0;
  /// When false, a core that becomes idle does NOT return to mode 1 (the
  /// paper's protocol resets at idle instants; many deployed systems stay
  /// latched in the elevated mode until an explicit operator action).
  /// Degraded service matters most in this sticky regime — see
  /// bench_elastic.
  bool idle_reset = true;
  /// Stop a core's simulation at its first deadline miss (faster property
  /// tests); when false, the miss's job is abandoned and the run continues.
  bool stop_core_on_miss = true;
  /// Absolute slack added to deadlines before declaring a miss, absorbing
  /// floating-point accumulation over long traces.
  double miss_tolerance = 1e-6;
};

struct DeadlineMiss {
  std::size_t core = 0;
  std::size_t task = 0;      ///< task index within the TaskSet
  std::uint64_t job = 0;
  double deadline = 0.0;
  double detected_at = 0.0;
  Level mode = 1;            ///< core mode at detection
};

struct CoreStats {
  Level max_mode = 1;
  std::uint64_t mode_switches = 0;
  std::uint64_t jobs_released = 0;
  std::uint64_t jobs_degraded = 0;  ///< releases admitted at stretched rate
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_dropped = 0;
  std::uint64_t releases_suppressed = 0;
  std::uint64_t idle_resets = 0;
  std::uint64_t preemptions = 0;
  /// Simulated time spent at each mode (index = mode - 1); sums to the
  /// core's simulated span.
  std::vector<double> mode_residency;
};

/// Per-task runtime statistics, aggregated across the whole partition.
struct TaskSimStats {
  std::uint64_t released = 0;
  std::uint64_t degraded = 0;
  std::uint64_t completed = 0;
  std::uint64_t dropped = 0;
  std::uint64_t suppressed = 0;
  std::uint64_t missed = 0;
  double max_response = 0.0;  ///< max completion - release over completed jobs
  double sum_response = 0.0;

  [[nodiscard]] double mean_response() const noexcept {
    return completed > 0 ? sum_response / static_cast<double>(completed) : 0.0;
  }
};

struct SimResult {
  std::vector<DeadlineMiss> misses;
  std::vector<CoreStats> cores;
  /// Indexed by task index within the TaskSet (zeros for unassigned tasks).
  std::vector<TaskSimStats> tasks;
  double horizon = 0.0;

  [[nodiscard]] bool missed_deadline() const noexcept {
    return !misses.empty();
  }
  [[nodiscard]] std::uint64_t total(std::uint64_t CoreStats::* field) const {
    std::uint64_t sum = 0;
    for (const CoreStats& c : cores) sum += c.*field;
    return sum;
  }
};

/// The engine's default horizon: 20x the longest period in the set.
[[nodiscard]] double default_horizon(const TaskSet& ts);

/// Exact hyperperiod (LCM of the periods) when every period is integral
/// (within 1e-9 relative tolerance) and the LCM is exactly representable as
/// a double (< 2^53; the running LCM is overflow-checked in 64-bit integer
/// arithmetic).  Returns nullopt otherwise.  Deterministic: depends only on
/// the multiset of periods.
[[nodiscard]] std::optional<double> integral_hyperperiod(const TaskSet& ts);

/// integral_hyperperiod when it exists, else default_horizon (the 20x
/// fallback) — the horizon simulate() uses under use_hyperperiod_horizon.
[[nodiscard]] double hyperperiod_horizon(const TaskSet& ts);

/// Simulates the complete partition.  Unassigned tasks are ignored (callers
/// normally pass complete partitions).  `sink` receives events when non-null.
[[nodiscard]] SimResult simulate(const Partition& partition,
                                 const ExecutionScenario& scenario,
                                 const SimConfig& config = {},
                                 TraceSink* sink = nullptr);

/// Simulates a single core of the partition (used by per-core tests).
[[nodiscard]] SimResult simulate_core(const Partition& partition,
                                      std::size_t core,
                                      const ExecutionScenario& scenario,
                                      const SimConfig& config = {},
                                      TraceSink* sink = nullptr);

}  // namespace mcs::sim
