#include "mcs/sim/scenario.hpp"

#include <algorithm>
#include <stdexcept>

namespace mcs::sim {

FixedLevelScenario::FixedLevelScenario(Level level, double fraction)
    : level_(level), fraction_(fraction) {
  if (level_ < 1) {
    throw std::invalid_argument("FixedLevelScenario: level must be >= 1");
  }
  if (!(fraction_ > 0.0) || fraction_ > 1.0) {
    throw std::invalid_argument(
        "FixedLevelScenario: fraction must be in (0, 1]");
  }
}

double FixedLevelScenario::execution_time(const McTask& task,
                                          std::uint64_t /*job*/) const {
  const Level level = std::min(level_, task.level());
  return fraction_ * task.wcet(level);
}

RandomScenario::RandomScenario(std::uint64_t seed, double escalation_prob)
    : seed_(seed), escalation_prob_(escalation_prob) {
  if (escalation_prob_ < 0.0 || escalation_prob_ > 1.0) {
    throw std::invalid_argument(
        "RandomScenario: escalation probability must be in [0, 1]");
  }
}

double RandomScenario::execution_time(const McTask& task,
                                      std::uint64_t job) const {
  gen::Rng rng(
      gen::derive_seed(seed_, task.id() * 0x100000001ULL + job));
  Level b = 1;
  while (b < task.level() && rng.bernoulli(escalation_prob_)) ++b;
  const double lo = (b == 1) ? 0.0 : task.wcet(b - 1);
  const double hi = task.wcet(b);
  // Uniform over (lo, hi]: 1 - U[0,1) lies in (0, 1].
  const double u = 1.0 - rng.uniform(0.0, 1.0);
  return lo + u * (hi - lo);
}

}  // namespace mcs::sim
