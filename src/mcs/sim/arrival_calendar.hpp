// Implicit winner tree over per-member next-arrival times.
//
// The legacy engine recomputed the next release instant with an O(n) scan
// over the core's members at every event; the calendar keeps the same
// per-member next-arrival state in a complete binary tournament tree:
// leaves hold the members' next-arrival times (padded to a power of two
// with +inf), each internal node the minimum of its children.  The next
// release is an O(1) root peek, and advancing one member's clock updates a
// *fixed* leaf-to-root path — no heap positions to maintain, no entries to
// move, and the whole tree for a few hundred members fits in L1.
//
// Arrival processing must mirror the legacy engine's member-order loop: of
// the members due at time t, jobs are released for the *smallest member
// index first*, not the earliest arrival.  Leaves sit in member order, so
// the pruned left-to-right tree walk in collect_due() emits the due set
// already sorted by member index — no sort pass.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

namespace mcs::sim {

class ArrivalCalendar {
 public:
  ArrivalCalendar() = default;

  /// Resets to `members` entries, all with next arrival `start`.
  void reset(std::size_t members, double start = 0.0);

  [[nodiscard]] std::size_t members() const noexcept { return members_; }

  /// Earliest next-arrival time, +inf when there are no members.  O(1).
  [[nodiscard]] double next_time() const {
    return members_ == 0 ? std::numeric_limits<double>::infinity() : tree_[1];
  }

  [[nodiscard]] double time_of(std::size_t member) const {
    return tree_[cap_ + member];
  }

  /// Moves one member's next arrival and re-propagates the subtree minima
  /// along its leaf-to-root path.  O(log n), early-exiting at the first
  /// node whose min is unchanged (its ancestors are unchanged too).
  void set_time(std::size_t member, double t) {
    std::size_t k = cap_ + member;
    tree_[k] = t;
    for (k /= 2; k >= 1; k /= 2) {
      const double m = std::min(tree_[2 * k], tree_[2 * k + 1]);
      if (tree_[k] == m) break;
      tree_[k] = m;
    }
  }

  /// Collects every member with next arrival <= now + eps into `out`,
  /// sorted ascending by member index.  Pruned left-to-right tree walk —
  /// a node past the cutoff bounds its whole subtree, and left-to-right
  /// leaf order IS member order, so the result needs no sorting.
  void collect_due(double now, double eps, std::vector<std::size_t>& out) const;

 private:
  std::size_t members_ = 0;
  std::size_t cap_ = 0;        ///< leaf capacity, power of two (0 when empty)
  std::vector<double> tree_;   ///< [1, cap_) internal minima; [cap_, 2cap_) leaves
  mutable std::vector<std::size_t> scan_stack_;  ///< collect_due scratch
};

}  // namespace mcs::sim
