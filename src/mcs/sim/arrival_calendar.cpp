#include "mcs/sim/arrival_calendar.hpp"

#include <algorithm>
#include <limits>

namespace mcs::sim {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

void ArrivalCalendar::reset(std::size_t members, double start) {
  members_ = members;
  if (members == 0) {
    cap_ = 0;
    tree_.clear();
    return;
  }
  cap_ = 1;
  while (cap_ < members) cap_ *= 2;
  tree_.assign(2 * cap_, kInf);
  std::fill_n(tree_.begin() + static_cast<std::ptrdiff_t>(cap_), members,
              start);
  for (std::size_t k = cap_; k-- > 1;) {
    tree_[k] = std::min(tree_[2 * k], tree_[2 * k + 1]);
  }
}

void ArrivalCalendar::collect_due(double now, double eps,
                                  std::vector<std::size_t>& out) const {
  out.clear();
  if (members_ == 0 || tree_[1] > now + eps) return;
  const double cutoff = now + eps;
  // Pruned DFS, right child pushed first so leaves pop left to right —
  // i.e. ascending member index.  Padding leaves are +inf, never due.
  scan_stack_.clear();
  scan_stack_.push_back(1);
  while (!scan_stack_.empty()) {
    const std::size_t k = scan_stack_.back();
    scan_stack_.pop_back();
    if (tree_[k] > cutoff) continue;
    if (k >= cap_) {
      out.push_back(k - cap_);
      continue;
    }
    scan_stack_.push_back(2 * k + 1);
    scan_stack_.push_back(2 * k);
  }
}

}  // namespace mcs::sim
