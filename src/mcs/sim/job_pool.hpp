// Pooled job arena for the simulation kernel.
//
// Ready jobs live in a slot vector recycled through a free list, so
// releasing a job never shifts its neighbours (the legacy engine paid an
// O(n) vector::erase per completion) and a job's handle stays valid for its
// whole residency.  Each slot carries, besides the job itself:
//
//   * seq        -- a monotonically increasing insertion number.  The legacy
//                   engine's ready vector preserved insertion order across
//                   erases, and two of its tie-breaks (deadline-miss victim
//                   selection, mode-switch drop order) depend on it, so the
//                   fast kernel keeps the same total order explicitly;
//   * positions  -- the slot's current index in each of ReadyQueue's two
//                   heaps (intrusive indexed heaps: O(log n) erase/update
//                   needs to find the heap node from the handle).
//
// Handles are recycled, so a stale handle can point at a *different* live
// job; matches() disambiguates via the (task, number) pair, which is unique
// over a whole simulation.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace mcs::sim {

/// Index of a pooled job; stable while the job is ready.
using JobHandle = std::uint32_t;

inline constexpr JobHandle kNoJob = std::numeric_limits<JobHandle>::max();

/// One released, not-yet-retired job.
struct Job {
  std::size_t task = 0;      ///< index within the TaskSet
  std::uint64_t number = 0;  ///< 0-based job index
  double release = 0.0;
  double deadline = 0.0;     ///< current absolute (virtual) deadline
  double remaining = 0.0;
  double done = 0.0;
};

class JobPool {
 public:
  struct Slot {
    Job job;
    std::uint64_t seq = 0;
    std::uint32_t sched_pos = 0;  ///< index in the scheduling-order heap
    std::uint32_t dl_pos = 0;     ///< index in the (deadline, seq) heap
    JobHandle next_free = kNoJob;
    bool active = false;
  };

  /// Pre-sizes the slot vector for `jobs` concurrent residents.
  void reserve(std::size_t jobs) { slots_.reserve(jobs); }

  /// Stores `job` in a recycled or fresh slot and stamps the next insertion
  /// sequence number.  Heap positions are left for the caller to set.
  JobHandle allocate(const Job& job) {
    JobHandle h;
    if (free_head_ != kNoJob) {
      h = free_head_;
      free_head_ = slots_[h].next_free;
    } else {
      h = static_cast<JobHandle>(slots_.size());
      slots_.emplace_back();
    }
    Slot& slot = slots_[h];
    slot.job = job;
    slot.seq = next_seq_++;
    slot.next_free = kNoJob;
    slot.active = true;
    ++active_;
    return h;
  }

  void release(JobHandle h) {
    Slot& slot = slots_[h];
    slot.active = false;
    slot.next_free = free_head_;
    free_head_ = h;
    --active_;
  }

  [[nodiscard]] Job& job(JobHandle h) { return slots_[h].job; }
  [[nodiscard]] const Job& job(JobHandle h) const { return slots_[h].job; }
  [[nodiscard]] Slot& slot(JobHandle h) { return slots_[h]; }
  [[nodiscard]] const Slot& slot(JobHandle h) const { return slots_[h]; }
  [[nodiscard]] std::uint64_t seq(JobHandle h) const { return slots_[h].seq; }

  /// True when `h` currently holds exactly the job (task, number).  Safe on
  /// stale handles (slot freed or recycled): (task, number) never repeats.
  [[nodiscard]] bool matches(JobHandle h, std::size_t task,
                             std::uint64_t number) const {
    if (h >= slots_.size()) return false;
    const Slot& slot = slots_[h];
    return slot.active && slot.job.task == task && slot.job.number == number;
  }

  [[nodiscard]] std::size_t active_count() const noexcept { return active_; }

  /// Visits every active handle in slot order (NOT insertion order; callers
  /// that need insertion order sort by seq()).
  template <typename Fn>
  void for_each_active(Fn&& fn) const {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].active) fn(static_cast<JobHandle>(i));
    }
  }

  void clear() {
    slots_.clear();
    free_head_ = kNoJob;
    next_seq_ = 0;
    active_ = 0;
  }

 private:
  std::vector<Slot> slots_;
  JobHandle free_head_ = kNoJob;
  std::uint64_t next_seq_ = 0;
  std::size_t active_ = 0;
};

}  // namespace mcs::sim
