// Optional event tracing for the runtime engine.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "mcs/core/task.hpp"

namespace mcs::sim {

enum class EventKind {
  kRelease,
  kReleaseSuppressed,
  kComplete,
  kModeSwitch,
  kJobDropped,
  kDeadlineMiss,
  kIdleReset,
  kExecute,  ///< a job executed over [time, until) (emitted by the engines)
};

[[nodiscard]] const char* to_string(EventKind kind) noexcept;

struct TraceEvent {
  double time = 0.0;
  std::size_t core = 0;
  EventKind kind = EventKind::kRelease;
  std::size_t task = 0;       ///< task index (kUnassigned-like npos for core-level events)
  std::uint64_t job = 0;
  Level mode = 1;             ///< core mode after the event
  double deadline = 0.0;      ///< absolute deadline where applicable
  double until = 0.0;         ///< end of the interval (kExecute only)
};

/// Receives engine events; implementations must tolerate high event rates.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const TraceEvent& event) = 0;
};

/// Buffers every event in memory (tests, small demos).
class RecordingTraceSink final : public TraceSink {
 public:
  void on_event(const TraceEvent& event) override { events_.push_back(event); }
  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }

 private:
  std::vector<TraceEvent> events_;
};

/// Pretty-prints events as they happen (the runtime_trace example).
class StreamTraceSink final : public TraceSink {
 public:
  explicit StreamTraceSink(std::ostream& os) : os_(&os) {}
  void on_event(const TraceEvent& event) override;

 private:
  std::ostream* os_;
};

/// Bridges engine events into the obs:: span-trace timeline as instant
/// events ("sim.ev.<kind>"), so one exported trace interleaves scheduling
/// decisions with the engine/analysis cost spans.  Timestamps are
/// wall-clock (when the engine emitted the event); the simulated time rides
/// in the args, scaled to integer milli-units.  Emission respects the
/// obs::trace_enabled() gate like every other trace site.
class ObsTraceSink final : public TraceSink {
 public:
  void on_event(const TraceEvent& event) override;
};

}  // namespace mcs::sim
