#include "mcs/sim/ready_queue.hpp"

#include <algorithm>

namespace mcs::sim {

ReadyQueue::SchedEntry ReadyQueue::make_sched_entry(JobHandle h) const {
  const Job& j = pool_.job(h);
  SchedEntry e;
  e.key = fp() ? static_cast<double>((*fp_ranks_)[j.task]) : j.deadline;
  e.task = j.task;
  e.number = j.number;
  e.handle = h;
  return e;
}

ReadyQueue::DlEntry ReadyQueue::make_dl_entry(JobHandle h) const {
  return DlEntry{pool_.job(h).deadline, pool_.seq(h), h};
}

bool ReadyQueue::sched_less(const SchedEntry& a, const SchedEntry& b) {
  if (a.key != b.key) return a.key < b.key;
  if (a.task != b.task) return a.task < b.task;
  return a.number < b.number;
}

bool ReadyQueue::dl_less(const DlEntry& a, const DlEntry& b) {
  if (a.deadline != b.deadline) return a.deadline < b.deadline;
  return a.seq < b.seq;
}

void ReadyQueue::sched_sift_up(std::size_t i) {
  const SchedEntry e = sched_heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / kHeapArity;
    if (!sched_less(e, sched_heap_[parent])) break;
    sched_heap_[i] = sched_heap_[parent];
    pool_.slot(sched_heap_[i].handle).sched_pos =
        static_cast<std::uint32_t>(i);
    i = parent;
  }
  sched_heap_[i] = e;
  pool_.slot(e.handle).sched_pos = static_cast<std::uint32_t>(i);
}

void ReadyQueue::sched_sift_down(std::size_t i) {
  const SchedEntry e = sched_heap_[i];
  const std::size_t n = sched_heap_.size();
  for (;;) {
    const std::size_t first = kHeapArity * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + kHeapArity, n);
    for (std::size_t c = first + 1; c < last; ++c) {
      if (sched_less(sched_heap_[c], sched_heap_[best])) best = c;
    }
    if (!sched_less(sched_heap_[best], e)) break;
    sched_heap_[i] = sched_heap_[best];
    pool_.slot(sched_heap_[i].handle).sched_pos =
        static_cast<std::uint32_t>(i);
    i = best;
  }
  sched_heap_[i] = e;
  pool_.slot(e.handle).sched_pos = static_cast<std::uint32_t>(i);
}

void ReadyQueue::dl_sift_up(std::size_t i) {
  const DlEntry e = dl_heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / kHeapArity;
    if (!dl_less(e, dl_heap_[parent])) break;
    dl_heap_[i] = dl_heap_[parent];
    pool_.slot(dl_heap_[i].handle).dl_pos = static_cast<std::uint32_t>(i);
    i = parent;
  }
  dl_heap_[i] = e;
  pool_.slot(e.handle).dl_pos = static_cast<std::uint32_t>(i);
}

void ReadyQueue::dl_sift_down(std::size_t i) {
  const DlEntry e = dl_heap_[i];
  const std::size_t n = dl_heap_.size();
  for (;;) {
    const std::size_t first = kHeapArity * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + kHeapArity, n);
    for (std::size_t c = first + 1; c < last; ++c) {
      if (dl_less(dl_heap_[c], dl_heap_[best])) best = c;
    }
    if (!dl_less(dl_heap_[best], e)) break;
    dl_heap_[i] = dl_heap_[best];
    pool_.slot(dl_heap_[i].handle).dl_pos = static_cast<std::uint32_t>(i);
    i = best;
  }
  dl_heap_[i] = e;
  pool_.slot(e.handle).dl_pos = static_cast<std::uint32_t>(i);
}

JobHandle ReadyQueue::push(const Job& job) {
  const JobHandle h = pool_.allocate(job);
  sched_heap_.push_back(make_sched_entry(h));
  pool_.slot(h).sched_pos = static_cast<std::uint32_t>(sched_heap_.size() - 1);
  sched_sift_up(sched_heap_.size() - 1);
  if (fp()) {
    dl_heap_.push_back(make_dl_entry(h));
    pool_.slot(h).dl_pos = static_cast<std::uint32_t>(dl_heap_.size() - 1);
    dl_sift_up(dl_heap_.size() - 1);
  }
  return h;
}

void ReadyQueue::erase(JobHandle h) {
  {
    const std::size_t i = pool_.slot(h).sched_pos;
    const SchedEntry moved = sched_heap_.back();
    sched_heap_.pop_back();
    if (i < sched_heap_.size()) {
      sched_heap_[i] = moved;
      pool_.slot(moved.handle).sched_pos = static_cast<std::uint32_t>(i);
      sched_sift_down(i);
      // Only one direction can act; the common case is the root pop
      // (completion of the running job), where sifting up is impossible.
      if (pool_.slot(moved.handle).sched_pos == i) sched_sift_up(i);
    }
  }
  if (fp()) {
    const std::size_t i = pool_.slot(h).dl_pos;
    const DlEntry moved = dl_heap_.back();
    dl_heap_.pop_back();
    if (i < dl_heap_.size()) {
      dl_heap_[i] = moved;
      pool_.slot(moved.handle).dl_pos = static_cast<std::uint32_t>(i);
      dl_sift_down(i);
      if (pool_.slot(moved.handle).dl_pos == i) dl_sift_up(i);
    }
  }
  pool_.release(h);
}

JobHandle ReadyQueue::top_deadline() const {
  if (sched_heap_.empty()) return kNoJob;
  if (fp()) return dl_heap_.front().handle;
  // EDF: exact (deadline, seq) minimum by arena scan — the miss path only.
  JobHandle best = kNoJob;
  pool_.for_each_active([&](JobHandle h) {
    if (best == kNoJob) {
      best = h;
      return;
    }
    const Job& jh = pool_.job(h);
    const Job& jb = pool_.job(best);
    if (jh.deadline < jb.deadline ||
        (jh.deadline == jb.deadline && pool_.seq(h) < pool_.seq(best))) {
      best = h;
    }
  });
  return best;
}

void ReadyQueue::update(JobHandle h) {
  {
    const std::size_t i = pool_.slot(h).sched_pos;
    sched_heap_[i] = make_sched_entry(h);
    sched_sift_down(i);
    if (pool_.slot(h).sched_pos == i) sched_sift_up(i);
  }
  if (fp()) {
    const std::size_t i = pool_.slot(h).dl_pos;
    dl_heap_[i] = make_dl_entry(h);
    dl_sift_down(i);
    if (pool_.slot(h).dl_pos == i) dl_sift_up(i);
  }
}

void ReadyQueue::rebuild() {
  for (SchedEntry& e : sched_heap_) e = make_sched_entry(e.handle);
  if (sched_heap_.size() > 1) {
    for (std::size_t i = (sched_heap_.size() - 2) / kHeapArity + 1; i-- > 0;) {
      sched_sift_down(i);
    }
  }
  if (fp()) {
    for (DlEntry& e : dl_heap_) e = make_dl_entry(e.handle);
    if (dl_heap_.size() > 1) {
      for (std::size_t i = (dl_heap_.size() - 2) / kHeapArity + 1; i-- > 0;) {
        dl_sift_down(i);
      }
    }
  }
}

void ReadyQueue::clear() {
  pool_.clear();
  sched_heap_.clear();
  dl_heap_.clear();
}

}  // namespace mcs::sim
