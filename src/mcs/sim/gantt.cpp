#include "mcs/sim/gantt.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <vector>

namespace mcs::sim {

namespace {

/// Priority of a marker character: higher wins when several events fall
/// into the same column.
int marker_rank(char c) {
  switch (c) {
    case '!':
      return 6;
    case 'X':
      return 5;
    case 'x':
      return 4;
    case 'r':
      return 3;
    case '*':
      return 2;
    case '#':
      return 1;
    default:
      return 0;
  }
}

void put(std::string& row, std::size_t col, char c) {
  if (col >= row.size()) return;
  if (marker_rank(c) > marker_rank(row[col])) row[col] = c;
}

}  // namespace

std::string render_gantt(const RecordingTraceSink& trace, const TaskSet& ts,
                         const GanttOptions& options) {
  const auto& events = trace.events();
  double t_end = options.t_end;
  if (t_end <= options.t_begin) {
    for (const TraceEvent& e : events) {
      t_end = std::max({t_end, e.time, e.until});
    }
  }
  const double span = t_end - options.t_begin;
  std::ostringstream out;
  out << "t = [" << options.t_begin << ", " << t_end << ")  ('#' exec, 'r' "
      << "release, 'x' suppressed, 'X' dropped, '!' miss, '*' done)\n";
  if (span <= 0.0 || options.width == 0) return out.str();

  const double per_col = span / static_cast<double>(options.width);
  const auto col_of = [&](double t) {
    const double c = (t - options.t_begin) / per_col;
    return static_cast<std::size_t>(std::clamp(
        c, 0.0, static_cast<double>(options.width) - 1.0));
  };

  // Task rows, created lazily in task-index order.
  std::map<std::size_t, std::string> rows;
  std::map<std::size_t, std::string> mode_strips;  // per core
  const auto row_for = [&](std::size_t task) -> std::string& {
    auto [it, inserted] = rows.try_emplace(task);
    if (inserted) it->second.assign(options.width, ' ');
    return it->second;
  };
  const auto strip_for = [&](std::size_t core) -> std::string& {
    auto [it, inserted] = mode_strips.try_emplace(core);
    if (inserted) it->second.assign(options.width, '1');
    return it->second;
  };

  for (const TraceEvent& e : events) {
    if (e.time >= t_end) continue;
    switch (e.kind) {
      case EventKind::kExecute: {
        std::string& row = row_for(e.task);
        const std::size_t last =
            col_of(std::max(e.time, std::min(e.until, t_end) - 1e-12));
        for (std::size_t c = col_of(e.time); c <= last; ++c) put(row, c, '#');
        break;
      }
      case EventKind::kRelease:
        put(row_for(e.task), col_of(e.time), 'r');
        break;
      case EventKind::kReleaseSuppressed:
        put(row_for(e.task), col_of(e.time), 'x');
        break;
      case EventKind::kComplete:
        put(row_for(e.task), col_of(e.time), '*');
        break;
      case EventKind::kJobDropped:
        put(row_for(e.task), col_of(e.time), 'X');
        break;
      case EventKind::kDeadlineMiss:
        put(row_for(e.task), col_of(e.time), '!');
        break;
      case EventKind::kModeSwitch:
      case EventKind::kIdleReset: {
        if (!options.show_mode_strip) break;
        std::string& strip = strip_for(e.core);
        const char digit =
            static_cast<char>('0' + std::min<Level>(e.mode, 9));
        for (std::size_t c = col_of(e.time); c < options.width; ++c) {
          strip[c] = digit;
        }
        break;
      }
    }
  }

  std::size_t label_width = 6;
  for (const auto& [task, _] : rows) {
    label_width = std::max(label_width,
                           4 + std::to_string(ts[task].id()).size() + 1);
  }
  const auto emit_row = [&](const std::string& label, const std::string& row) {
    out << label << std::string(label_width - label.size(), ' ') << '|' << row
        << "|\n";
  };
  for (const auto& [task, row] : rows) {
    emit_row("tau_" + std::to_string(ts[task].id()), row);
  }
  if (options.show_mode_strip) {
    for (const auto& [core, strip] : mode_strips) {
      emit_row("core" + std::to_string(core), strip);
    }
  }
  return out.str();
}

}  // namespace mcs::sim
