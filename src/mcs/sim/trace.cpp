#include "mcs/sim/trace.hpp"

#include <cmath>
#include <iomanip>
#include <ostream>

#include "mcs/obs/trace.hpp"

namespace mcs::sim {

const char* to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kRelease:
      return "release";
    case EventKind::kReleaseSuppressed:
      return "release-suppressed";
    case EventKind::kComplete:
      return "complete";
    case EventKind::kModeSwitch:
      return "MODE-SWITCH";
    case EventKind::kJobDropped:
      return "job-dropped";
    case EventKind::kDeadlineMiss:
      return "DEADLINE-MISS";
    case EventKind::kIdleReset:
      return "idle-reset";
    case EventKind::kExecute:
      return "execute";
  }
  return "?";
}

void StreamTraceSink::on_event(const TraceEvent& event) {
  if (event.kind == EventKind::kExecute) return;  // too chatty for a log
  std::ostream& os = *os_;
  os << "[t=" << std::fixed << std::setprecision(3) << std::setw(10)
     << event.time << "] core " << event.core << " mode " << event.mode << "  "
     << to_string(event.kind);
  if (event.kind != EventKind::kModeSwitch &&
      event.kind != EventKind::kIdleReset) {
    os << "  task " << event.task << " job " << event.job;
    if (event.kind == EventKind::kRelease ||
        event.kind == EventKind::kDeadlineMiss) {
      os << " (deadline " << event.deadline << ")";
    }
  }
  os << '\n';
}

void ObsTraceSink::on_event(const TraceEvent& event) {
  // One static site per kind so record names stay static literals.
  static constexpr obs::TraceSite kSites[] = {
      {"sim.ev.release", "core", "task", "sim_time_milli"},
      {"sim.ev.release_suppressed", "core", "task", "sim_time_milli"},
      {"sim.ev.complete", "core", "task", "sim_time_milli"},
      {"sim.ev.mode_switch", "core", "mode", "sim_time_milli"},
      {"sim.ev.job_dropped", "core", "task", "sim_time_milli"},
      {"sim.ev.deadline_miss", "core", "task", "sim_time_milli"},
      {"sim.ev.idle_reset", "core", "mode", "sim_time_milli"},
      {"sim.ev.execute", "core", "task", "sim_time_milli"},
  };
  const auto index = static_cast<std::size_t>(event.kind);
  if (index >= std::size(kSites)) return;
  const std::uint64_t sim_time_milli =
      event.time > 0.0
          ? static_cast<std::uint64_t>(std::llround(event.time * 1000.0))
          : 0;
  const bool mode_arg = event.kind == EventKind::kModeSwitch ||
                        event.kind == EventKind::kIdleReset;
  obs::trace_instant(kSites[index], event.core,
                     mode_arg ? static_cast<std::uint64_t>(event.mode)
                              : static_cast<std::uint64_t>(event.task),
                     sim_time_milli);
}

}  // namespace mcs::sim
