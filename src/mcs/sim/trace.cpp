#include "mcs/sim/trace.hpp"

#include <iomanip>
#include <ostream>

namespace mcs::sim {

const char* to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kRelease:
      return "release";
    case EventKind::kReleaseSuppressed:
      return "release-suppressed";
    case EventKind::kComplete:
      return "complete";
    case EventKind::kModeSwitch:
      return "MODE-SWITCH";
    case EventKind::kJobDropped:
      return "job-dropped";
    case EventKind::kDeadlineMiss:
      return "DEADLINE-MISS";
    case EventKind::kIdleReset:
      return "idle-reset";
    case EventKind::kExecute:
      return "execute";
  }
  return "?";
}

void StreamTraceSink::on_event(const TraceEvent& event) {
  if (event.kind == EventKind::kExecute) return;  // too chatty for a log
  std::ostream& os = *os_;
  os << "[t=" << std::fixed << std::setprecision(3) << std::setw(10)
     << event.time << "] core " << event.core << " mode " << event.mode << "  "
     << to_string(event.kind);
  if (event.kind != EventKind::kModeSwitch &&
      event.kind != EventKind::kIdleReset) {
    os << "  task " << event.task << " job " << event.job;
    if (event.kind == EventKind::kRelease ||
        event.kind == EventKind::kDeadlineMiss) {
      os << " (deadline " << event.deadline << ")";
    }
  }
  os << '\n';
}

}  // namespace mcs::sim
