// Global EDF(-VD) / AMC runtime engine.
//
// The global counterpart of the partitioned engine: all m cores share one
// ready queue; at every instant the m earliest-(virtual-)deadline jobs run
// (jobs migrate freely and never execute on two cores at once).  The AMC
// mode is system-wide: a job exceeding its level budget escalates the whole
// system, dropping every lower-criticality job; the system resets to mode 1
// when fully idle.  Virtual deadlines follow the same DeadlinePolicy as the
// partitioned engine, computed over the whole task set (for K = 2 this is
// the classical uniform scaling; see analysis/global.hpp for why no global
// MC *acceptance* test is shipped).
//
// Fixed-priority mode (SimConfig::scheduler) yields global deadline-
// monotonic scheduling.
#pragma once

#include "mcs/core/taskset.hpp"
#include "mcs/sim/engine.hpp"

namespace mcs::sim {

/// Simulates the whole task set under global scheduling on `num_cores`
/// cores.  The SimResult carries one aggregate CoreStats entry (index 0)
/// for the whole system plus the usual per-task statistics and misses
/// (DeadlineMiss::core is always 0).
[[nodiscard]] SimResult simulate_global(const TaskSet& ts,
                                        std::size_t num_cores,
                                        const ExecutionScenario& scenario,
                                        const SimConfig& config = {},
                                        TraceSink* sink = nullptr);

}  // namespace mcs::sim
