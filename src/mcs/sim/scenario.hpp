// Execution scenarios: how long each job actually runs.
//
// The AMC runtime's behaviour depends on actual execution times, not just
// WCETs.  A scenario maps (task, job index) to an actual execution time and
// must be a pure function of its inputs so the engine can query it in any
// order (all randomized scenarios hash (seed, task id, job) into a private
// stream).
#pragma once

#include <cstdint>

#include "mcs/core/task.hpp"
#include "mcs/gen/rng.hpp"

namespace mcs::sim {

class ExecutionScenario {
 public:
  virtual ~ExecutionScenario() = default;

  /// Actual execution demand of job `job` (0-based) of `task`.  Must lie in
  /// (0, c_i(l_i)] — a job can never exceed its own-level WCET.
  [[nodiscard]] virtual double execution_time(const McTask& task,
                                              std::uint64_t job) const = 0;
};

/// Every job runs for `fraction` of its level-`level` WCET (level is clamped
/// to the task's own level).  fraction = 1, level = 1 reproduces exact
/// level-1 behaviour (no mode switches); level = K drives every job to its
/// highest budget.
class FixedLevelScenario final : public ExecutionScenario {
 public:
  FixedLevelScenario(Level level, double fraction = 1.0);

  [[nodiscard]] double execution_time(const McTask& task,
                                      std::uint64_t job) const override;

 private:
  Level level_;
  double fraction_;
};

/// Per-job random behaviour: each job escalates its behaviour level b from 1
/// upward, continuing with probability `escalation_prob` while b < l_i, then
/// draws its execution time uniformly from (c(b-1), c(b)] (with c(0) = 0).
/// escalation_prob = 0 keeps every job within its level-1 budget.
class RandomScenario final : public ExecutionScenario {
 public:
  RandomScenario(std::uint64_t seed, double escalation_prob);

  [[nodiscard]] double execution_time(const McTask& task,
                                      std::uint64_t job) const override;

 private:
  std::uint64_t seed_;
  double escalation_prob_;
};

}  // namespace mcs::sim
