#include "mcs/sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "mcs/gen/rng.hpp"
#include "mcs/obs/metrics.hpp"
#include "mcs/obs/trace.hpp"
#include "mcs/sim/arrival_calendar.hpp"
#include "mcs/sim/job_pool.hpp"
#include "mcs/sim/ready_queue.hpp"

// Two kernels implement the same per-core event loop and are required to be
// bit-identical (same SimResult, same trace stream, same tie-breaks):
//
//   * ReferenceCoreSim -- the original loop: linear scans over a ready
//     vector for dispatch/earliest-deadline/next-arrival and O(n) erases.
//     Kept as the differential-testing baseline (EngineKind::kReference).
//   * FastCoreSim      -- the event-calendar kernel: dispatch and deadline
//     minima from sim::ReadyQueue's indexed heaps, next arrivals from
//     sim::ArrivalCalendar, erases by pooled handle.  O(log n) per event.
//
// The reference loop's observable tie-breaks that the fast kernel must
// reproduce exactly:
//   * dispatch order is the total order (deadline, task, number) under EDF
//     and (rank, task, number) under fixed priority;
//   * the deadline-miss victim is the first job with the minimal deadline
//     in ready-vector order, i.e. minimal (deadline, insertion seq);
//   * mode-switch drops are emitted in reverse insertion order (the
//     reference iterates its ready vector backwards);
//   * simultaneous arrivals release in member-index order.

namespace mcs::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEps = 1e-9;
constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

// Shared protocol counters (incremented identically by both engines so
// experiment artifacts are engine-independent).
obs::Counter& g_mode_switches = obs::registry().counter("sim.mode_switches");
obs::Counter& g_deadline_checks =
    obs::registry().counter("sim.deadline_checks");
obs::Counter& g_deadline_misses =
    obs::registry().counter("sim.deadline_misses");
obs::Counter& g_jobs_dropped = obs::registry().counter("sim.jobs_dropped");

// Per-engine instruments (wall-clock timers, event-loop iteration counts,
// peak ready-queue depth) for before/after comparisons.
obs::Timer& g_ref_run_timer =
    obs::registry().timer("sim.engine.reference.core_run");
obs::Timer& g_fast_run_timer =
    obs::registry().timer("sim.engine.fast.core_run");
obs::Counter& g_ref_loop_iters =
    obs::registry().counter("sim.engine.reference.loop_iters");
obs::Counter& g_fast_loop_iters =
    obs::registry().counter("sim.engine.fast.loop_iters");
obs::Histogram& g_ref_ready_peak =
    obs::registry().histogram("sim.engine.reference.ready_peak");
obs::Histogram& g_fast_ready_peak =
    obs::registry().histogram("sim.engine.fast.ready_peak");

// Trace sites.  The per-core kernels sample the enable gate once per run
// (CoreSimBase::trace_armed_) so per-iteration sites like the calendar
// refill cost one predicted non-atomic branch while tracing is off.
constexpr obs::TraceSite kSimulateSite{"sim.simulate", "cores", "tasks"};
constexpr obs::TraceSite kRefRunSite{"sim.core_run.reference", "core",
                                     "members"};
constexpr obs::TraceSite kFastRunSite{"sim.core_run.fast", "core", "members"};
constexpr obs::TraceSite kModeSwitchSite{"sim.mode_switch", "core",
                                         "from_mode"};
constexpr obs::TraceSite kCalendarRefillSite{"sim.calendar_refill", "core",
                                             "due"};

/// Per-core state both kernels share: the member list, the deadline policy,
/// the fixed-priority rank table and the output sinks.  Centralizing the
/// deadline-scale and scenario-contract arithmetic here guarantees the two
/// engines compute identical doubles.
struct CoreEnv {
  const TaskSet& ts;
  const std::vector<std::size_t>& members;
  const ExecutionScenario& scenario;
  const SimConfig& cfg;
  TraceSink* sink;
  std::size_t core;
  analysis::DeadlinePolicy policy;
  std::vector<DeadlineMiss>& misses;
  std::vector<TaskSimStats>& task_stats;
  std::vector<std::size_t> fp_rank;

  CoreEnv(const Partition& partition, std::size_t core_index,
          const ExecutionScenario& scenario_in, const SimConfig& cfg_in,
          TraceSink* sink_in, std::vector<DeadlineMiss>& misses_in,
          std::vector<TaskSimStats>& task_stats_in)
      : ts(partition.taskset()),
        members(partition.tasks_on(core_index)),
        scenario(scenario_in),
        cfg(cfg_in),
        sink(sink_in),
        core(core_index),
        policy(partition.utils_on(core_index)),
        misses(misses_in),
        task_stats(task_stats_in) {
    // Priority ranks for fixed-priority mode (lower rank = higher
    // priority): an explicit assignment when provided, else deadline
    // monotonic.  Under EDF with no explicit assignment the table is never
    // read, so the O(N) fill + member sort is skipped — a fixed per-core
    // setup cost that dominated short small-N runs where both kernels
    // finish in microseconds.
    if (!cfg.fp_priorities.empty()) {
      if (cfg.fp_priorities.size() != ts.size()) {
        throw std::invalid_argument(
            "simulate: fp_priorities must have one rank per task");
      }
      fp_rank = cfg.fp_priorities;
    } else if (cfg.scheduler == SchedulerKind::kFixedPriority) {
      fp_rank.assign(ts.size(), std::numeric_limits<std::size_t>::max());
      std::vector<std::size_t> order(members.begin(), members.end());
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        if (ts[a].period() != ts[b].period()) {
          return ts[a].period() < ts[b].period();
        }
        return a < b;
      });
      for (std::size_t rank = 0; rank < order.size(); ++rank) {
        fp_rank[order[rank]] = rank;
      }
    }
  }

  [[nodiscard]] double deadline_scale(std::size_t task, Level task_level,
                                      Level mode) const {
    if (!cfg.use_virtual_deadlines ||
        cfg.scheduler == SchedulerKind::kFixedPriority) {
      return 1.0;
    }
    if (policy.num_levels() == 2 && !cfg.dual_scales.empty()) {
      // Per-task scales (e.g. from the tuned DBF analysis): HI tasks shrink
      // in LO mode, full deadlines once switched.
      if (task_level == 2 && mode == 1 && task < cfg.dual_scales.size()) {
        const double x = cfg.dual_scales[task];
        if (x > 0.0 && x <= 1.0) return x;
      }
      return 1.0;
    }
    if (cfg.dual_scale_override > 0.0 && cfg.dual_scale_override <= 1.0 &&
        policy.num_levels() == 2) {
      // HI tasks shrink in LO mode, full deadlines once switched.
      return (task_level == 2 && mode == 1) ? cfg.dual_scale_override : 1.0;
    }
    return policy.scale(task_level, mode);
  }

  /// Queries the scenario and enforces the (0, c_i(l_i)] contract.
  [[nodiscard]] double execution_time(const McTask& mt,
                                      std::uint64_t number) const {
    const double exec = scenario.execution_time(mt, number);
    if (!(exec > 0.0) || exec > mt.wcet(mt.level()) + kEps) {
      throw std::logic_error(
          "simulate: scenario returned an execution time outside "
          "(0, c_i(l_i)]");
    }
    return exec;
  }
};

/// State and helpers common to both kernels: the clock, the mode, the
/// per-core stats and the trace emission.
class CoreSimBase {
 protected:
  explicit CoreSimBase(CoreEnv& env) : env_(env) {
    stats_.mode_residency.assign(env_.policy.num_levels(), 0.0);
  }

  /// Advances the clock, accruing mode-residency time.
  void set_time(double to) {
    if (to > t_) {
      stats_.mode_residency[mode_ - 1] += to - t_;
      t_ = to;
    }
  }

  void emit(EventKind kind, std::size_t task, std::uint64_t job,
            double deadline) {
    if (env_.sink == nullptr) return;
    env_.sink->on_event(TraceEvent{.time = t_,
                                   .core = env_.core,
                                   .kind = kind,
                                   .task = task,
                                   .job = job,
                                   .mode = mode_,
                                   .deadline = deadline});
  }

  void emit_execute(const Job& job, double to) {
    if (env_.sink == nullptr) return;
    env_.sink->on_event(TraceEvent{.time = t_,
                                   .core = env_.core,
                                   .kind = EventKind::kExecute,
                                   .task = job.task,
                                   .job = job.number,
                                   .mode = mode_,
                                   .deadline = job.deadline,
                                   .until = to});
  }

  void record_miss(const Job& job) {
    g_deadline_misses.add();
    ++env_.task_stats[job.task].missed;
    env_.misses.push_back(DeadlineMiss{.core = env_.core,
                                       .task = job.task,
                                       .job = job.number,
                                       .deadline = job.deadline,
                                       .detected_at = t_,
                                       .mode = mode_});
    emit(EventKind::kDeadlineMiss, job.task, job.number, job.deadline);
  }

  void idle_reset() {
    mode_ = 1;
    ++stats_.idle_resets;
    emit(EventKind::kIdleReset, kNone, 0, 0.0);
  }

  [[nodiscard]] double deadline_scale(std::size_t task,
                                      Level task_level) const {
    return env_.deadline_scale(task, task_level, mode_);
  }

  CoreEnv& env_;
  Level mode_ = 1;
  double t_ = 0.0;
  CoreStats stats_;
  std::size_t last_ran_task_ = kNone;
  std::uint64_t last_ran_job_ = 0;
  std::size_t peak_ready_ = 0;
  /// Trace gate sampled once per core run; per-iteration sites branch on
  /// this plain bool instead of re-reading the atomic.
  const bool trace_armed_ = obs::trace_enabled();
};

// ---------------------------------------------------------------------------
// Reference kernel: the original linear-scan loop.
// ---------------------------------------------------------------------------

class ReferenceCoreSim : public CoreSimBase {
 public:
  explicit ReferenceCoreSim(CoreEnv& env) : CoreSimBase(env) {
    next_job_.assign(env_.members.size(), 0);
    next_arrival_.assign(env_.members.size(), 0.0);
  }

  CoreStats run(double horizon) {
    obs::ScopedTimer run_timer(g_ref_run_timer);
    const obs::ScopedSpan run_span(kRefRunSite,
                                   obs::ScopedSpan::Armed{trace_armed_},
                                   env_.core, env_.members.size());
    while (t_ < horizon - kEps) {
      g_ref_loop_iters.add();
      if (flag_expired_deadlines()) {
        if (env_.cfg.stop_core_on_miss) break;
        continue;
      }
      if (ready_.empty()) {
        if (mode_ > 1 && env_.cfg.idle_reset) idle_reset();
        const double ta = next_arrival_time();
        if (ta >= horizon - kEps) break;
        set_time(ta);
        process_arrivals();
        continue;
      }

      const std::size_t run_index = select_running();
      Job& run_job = ready_[run_index];
      const Level run_level = env_.ts[run_job.task].level();
      const double t_complete = t_ + run_job.remaining;
      double t_threshold = kInf;
      if (run_level > mode_) {
        const double budget = env_.ts[run_job.task].wcet(mode_);
        t_threshold = t_ + std::max(0.0, budget - run_job.done);
      }
      const double t_release = next_arrival_time();
      const double t_dl = earliest_deadline();
      double t_evt = std::min({t_complete, t_threshold, t_release});

      if (t_dl + env_.cfg.miss_tolerance < t_evt) {
        // Some ready job's deadline passes before the next event, so it
        // cannot finish in time (under EDF it is the running job itself;
        // under fixed priority it may be a preempted lower-priority job).
        // Advance the running job to the deadline instant and flag the
        // expiring job.
        advance(run_job, t_dl);
        std::size_t expiring = 0;
        for (std::size_t i = 1; i < ready_.size(); ++i) {
          if (ready_[i].deadline < ready_[expiring].deadline) expiring = i;
        }
        const Job victim = ready_[expiring];
        record_miss(victim);
        if (env_.cfg.stop_core_on_miss) break;
        erase_at(expiring, victim.task, victim.number);
        continue;
      }
      if (t_evt >= horizon - kEps) {
        advance(run_job, std::min(t_evt, horizon));
        break;
      }

      advance(run_job, t_evt);
      if (run_job.remaining <= kEps && t_complete <= t_threshold + kEps) {
        complete(run_index);
        continue;
      }
      if (run_level > mode_ &&
          run_job.done >= env_.ts[run_job.task].wcet(mode_) - kEps &&
          run_job.remaining > kEps) {
        switch_mode();
        continue;
      }
      if (t_evt >= t_release - kEps) {
        process_arrivals();
      }
    }
    set_time(horizon);
    g_ref_ready_peak.record(peak_ready_);
    return stats_;
  }

 private:
  void advance(Job& job, double to) {
    const double dt = to - t_;
    if (dt > 0.0) {
      emit_execute(job, to);
      job.done += dt;
      job.remaining -= dt;
      set_time(to);
      last_ran_task_ = job.task;
      last_ran_job_ = job.number;
    }
  }

  /// Index of the scheduled job: EDF (deadline, task, number) or fixed
  /// priority (rank, task, number) — both strict total orders, so the
  /// choice never depends on ready-vector order.
  std::size_t select_running() {
    const bool fp = env_.cfg.scheduler == SchedulerKind::kFixedPriority;
    std::size_t best = 0;
    for (std::size_t i = 1; i < ready_.size(); ++i) {
      const Job& a = ready_[i];
      const Job& b = ready_[best];
      bool a_wins = false;
      if (fp) {
        const std::size_t ra = env_.fp_rank[a.task];
        const std::size_t rb = env_.fp_rank[b.task];
        a_wins =
            ra < rb ||
            (ra == rb &&
             (a.task < b.task || (a.task == b.task && a.number < b.number)));
      } else {
        a_wins =
            a.deadline < b.deadline ||
            (a.deadline == b.deadline &&
             (a.task < b.task || (a.task == b.task && a.number < b.number)));
      }
      if (a_wins) best = i;
    }
    const Job& chosen = ready_[best];
    if (last_ran_task_ != kNone &&
        (chosen.task != last_ran_task_ || chosen.number != last_ran_job_) &&
        find_job(last_ran_task_, last_ran_job_) != kNone) {
      ++stats_.preemptions;
    }
    return best;
  }

  [[nodiscard]] double earliest_deadline() const {
    double dl = kInf;
    for (const Job& j : ready_) dl = std::min(dl, j.deadline);
    return dl;
  }

  [[nodiscard]] double next_arrival_time() const {
    double ta = kInf;
    for (std::size_t i = 0; i < env_.members.size(); ++i) {
      ta = std::min(ta, next_arrival_[i]);
    }
    return ta;
  }

  /// Advances a task's arrival pointer past the job just processed; under
  /// sporadic arrivals a deterministic per-job delay is added on top of the
  /// minimum inter-arrival time (the period).
  void schedule_next_arrival(std::size_t member, std::uint64_t job) {
    const McTask& mt = env_.ts[env_.members[member]];
    double delay = 0.0;
    if (env_.cfg.sporadic_jitter > 0.0) {
      gen::Rng rng(gen::derive_seed(env_.cfg.arrival_seed,
                                    mt.id() * 0x100000001ULL + job));
      delay = rng.uniform(0.0, env_.cfg.sporadic_jitter * mt.period());
    }
    next_arrival_[member] += mt.period() + delay;
  }

  void process_arrivals() {
    for (std::size_t i = 0; i < env_.members.size(); ++i) {
      while (next_arrival_[i] <= t_ + kEps) {
        const std::size_t task = env_.members[i];
        const McTask& mt = env_.ts[task];
        const std::uint64_t number = next_job_[i];
        const double release = next_arrival_[i];
        ++next_job_[i];
        schedule_next_arrival(i, number);
        const bool below_mode = mt.level() < mode_;
        const bool degrade =
            below_mode && env_.cfg.degraded_period_stretch > 1.0;
        if (below_mode && !degrade) {
          ++stats_.releases_suppressed;
          ++env_.task_stats[task].suppressed;
          emit(EventKind::kReleaseSuppressed, task, number, release);
          continue;
        }
        const double exec = env_.execution_time(mt, number);
        Job job;
        job.task = task;
        job.number = number;
        job.release = release;
        if (degrade) {
          // Degraded service: stretched deadline now, and the *next*
          // arrival pushed out by the same factor (minimum inter-arrival
          // grows while the mode is elevated).
          job.deadline =
              release + env_.cfg.degraded_period_stretch * mt.period();
          next_arrival_[i] +=
              (env_.cfg.degraded_period_stretch - 1.0) * mt.period();
          ++stats_.jobs_degraded;
          ++env_.task_stats[task].degraded;
        } else {
          job.deadline =
              release + deadline_scale(task, mt.level()) * mt.period();
        }
        job.remaining = exec;
        ready_.push_back(job);
        peak_ready_ = std::max(peak_ready_, ready_.size());
        ++stats_.jobs_released;
        ++env_.task_stats[task].released;
        emit(EventKind::kRelease, task, number, job.deadline);
      }
    }
  }

  void complete(std::size_t index) {
    const Job& job = ready_[index];
    ++stats_.jobs_completed;
    TaskSimStats& tstats = env_.task_stats[job.task];
    ++tstats.completed;
    const double response = t_ - job.release;
    tstats.sum_response += response;
    tstats.max_response = std::max(tstats.max_response, response);
    g_deadline_checks.add();
    if (t_ > job.deadline + env_.cfg.miss_tolerance) {
      record_miss(job);
    }
    emit(EventKind::kComplete, job.task, job.number, job.deadline);
    erase_at(index, job.task, job.number);
  }

  /// Flags ready jobs whose deadline already passed (can only happen within
  /// the miss tolerance window or after a non-stopping miss).  Returns true
  /// when a miss was recorded.
  bool flag_expired_deadlines() {
    g_deadline_checks.add(ready_.size());
    for (std::size_t i = 0; i < ready_.size(); ++i) {
      const Job& j = ready_[i];
      if (t_ > j.deadline + env_.cfg.miss_tolerance) {
        const Job victim = j;
        record_miss(victim);
        erase_at(i, victim.task, victim.number);
        return true;
      }
    }
    return false;
  }

  void switch_mode() {
    const obs::ScopedSpan span(kModeSwitchSite,
                               obs::ScopedSpan::Armed{trace_armed_},
                               env_.core, mode_);
    bool again = true;
    while (again && mode_ < env_.policy.num_levels()) {
      const Level old_mode = mode_;
      ++mode_;
      ++stats_.mode_switches;
      g_mode_switches.add();
      stats_.max_mode = std::max(stats_.max_mode, mode_);
      emit(EventKind::kModeSwitch, kNone, 0, 0.0);
      // Drop jobs at or below the exhausted mode.
      for (std::size_t i = ready_.size(); i-- > 0;) {
        if (env_.ts[ready_[i].task].level() <= old_mode) {
          ++stats_.jobs_dropped;
          g_jobs_dropped.add();
          ++env_.task_stats[ready_[i].task].dropped;
          emit(EventKind::kJobDropped, ready_[i].task, ready_[i].number,
               ready_[i].deadline);
          ready_.erase(ready_.begin() + static_cast<std::ptrdiff_t>(i));
        }
      }
      // Re-derive deadlines for the survivors under the new mode.
      for (Job& j : ready_) {
        j.deadline = j.release + deadline_scale(j.task, env_.ts[j.task].level()) *
                                     env_.ts[j.task].period();
      }
      // Cascade when a surviving job is already at the next budget (equal
      // consecutive WCETs).
      again = false;
      for (const Job& j : ready_) {
        const McTask& mt = env_.ts[j.task];
        if (mt.level() > mode_ && j.remaining > kEps &&
            j.done >= mt.wcet(mode_) - kEps) {
          again = true;
          break;
        }
      }
    }
  }

  [[nodiscard]] std::size_t find_job(std::size_t task,
                                     std::uint64_t number) const {
    for (std::size_t i = 0; i < ready_.size(); ++i) {
      if (ready_[i].task == task && ready_[i].number == number) return i;
    }
    return kNone;
  }

  /// Erases by index — the caller already knows where the job lives; the
  /// assert documents that the index really names the job it claims to.
  void erase_at(std::size_t index, [[maybe_unused]] std::size_t task,
                [[maybe_unused]] std::uint64_t number) {
    assert(index < ready_.size() && ready_[index].task == task &&
           ready_[index].number == number);
    ready_.erase(ready_.begin() + static_cast<std::ptrdiff_t>(index));
  }

  std::vector<Job> ready_;
  std::vector<std::uint64_t> next_job_;
  std::vector<double> next_arrival_;
};

// ---------------------------------------------------------------------------
// Fast kernel: indexed heaps + arrival calendar, O(log n) per event.
// ---------------------------------------------------------------------------

class FastCoreSim : public CoreSimBase {
 public:
  explicit FastCoreSim(CoreEnv& env)
      : CoreSimBase(env),
        queue_(env.cfg.scheduler == SchedulerKind::kFixedPriority
                   ? &env.fp_rank
                   : nullptr) {
    next_job_.assign(env_.members.size(), 0);
    calendar_.reset(env_.members.size(), 0.0);
    // The t=0 burst releases one job per member before anything retires;
    // sizing the pool/heap/scratch for it up front removes the doubling
    // reallocations from every run's first instants (overload can still
    // grow past this — those runs amortize the growth as before).
    queue_.reserve(env_.members.size());
    due_scratch_.reserve(env_.members.size());
    switch_scratch_.reserve(env_.members.size());
  }

  CoreStats run(double horizon) {
    obs::ScopedTimer run_timer(g_fast_run_timer);
    const obs::ScopedSpan run_span(kFastRunSite,
                                   obs::ScopedSpan::Armed{trace_armed_},
                                   env_.core, env_.members.size());
    while (t_ < horizon - kEps) {
      g_fast_loop_iters.add();
      if (flag_expired_deadlines()) {
        if (env_.cfg.stop_core_on_miss) break;
        continue;
      }
      if (queue_.empty()) {
        if (mode_ > 1 && env_.cfg.idle_reset) idle_reset();
        const double ta = calendar_.next_time();
        if (ta >= horizon - kEps) break;
        set_time(ta);
        process_arrivals();
        continue;
      }

      const JobHandle run_handle = select_running();
      Job& run_job = queue_.job(run_handle);
      const Level run_level = env_.ts[run_job.task].level();
      const double t_complete = t_ + run_job.remaining;
      double t_threshold = kInf;
      if (run_level > mode_) {
        const double budget = env_.ts[run_job.task].wcet(mode_);
        t_threshold = t_ + std::max(0.0, budget - run_job.done);
      }
      const double t_release = calendar_.next_time();
      const double t_dl = queue_.earliest_deadline();
      double t_evt = std::min({t_complete, t_threshold, t_release});

      if (t_dl + env_.cfg.miss_tolerance < t_evt) {
        // The (deadline, seq) heap top is exactly the reference loop's
        // victim: the first minimal-deadline job in insertion order.
        advance(run_handle, t_dl);
        const JobHandle victim_handle = queue_.top_deadline();
        const Job victim = queue_.job(victim_handle);
        record_miss(victim);
        if (env_.cfg.stop_core_on_miss) break;
        queue_.erase(victim_handle);
        continue;
      }
      if (t_evt >= horizon - kEps) {
        advance(run_handle, std::min(t_evt, horizon));
        break;
      }

      advance(run_handle, t_evt);
      if (run_job.remaining <= kEps && t_complete <= t_threshold + kEps) {
        complete(run_handle);
        continue;
      }
      if (run_level > mode_ &&
          run_job.done >= env_.ts[run_job.task].wcet(mode_) - kEps &&
          run_job.remaining > kEps) {
        switch_mode();
        continue;
      }
      if (t_evt >= t_release - kEps) {
        process_arrivals();
      }
    }
    set_time(horizon);
    g_fast_ready_peak.record(peak_ready_);
    return stats_;
  }

 private:
  void advance(JobHandle handle, double to) {
    Job& job = queue_.job(handle);
    const double dt = to - t_;
    if (dt > 0.0) {
      emit_execute(job, to);
      job.done += dt;
      job.remaining -= dt;
      set_time(to);
      last_ran_task_ = job.task;
      last_ran_job_ = job.number;
      last_ran_handle_ = handle;
    }
  }

  /// O(1) dispatch peek plus the reference loop's preemption accounting: a
  /// preemption is counted when the chosen job differs from the last job
  /// that executed while that job is still ready.
  JobHandle select_running() {
    const JobHandle chosen = queue_.top_sched();
    const Job& job = queue_.job(chosen);
    if (last_ran_task_ != kNone &&
        (job.task != last_ran_task_ || job.number != last_ran_job_) &&
        queue_.contains(last_ran_handle_, last_ran_task_, last_ran_job_)) {
      ++stats_.preemptions;
    }
    return chosen;
  }

  void process_arrivals() {
    calendar_.collect_due(t_, kEps, due_scratch_);
    if (trace_armed_ && !due_scratch_.empty()) {
      obs::trace_instant(kCalendarRefillSite, env_.core, due_scratch_.size());
    }
    for (const std::size_t i : due_scratch_) {
      while (calendar_.time_of(i) <= t_ + kEps) {
        const std::size_t task = env_.members[i];
        const McTask& mt = env_.ts[task];
        const std::uint64_t number = next_job_[i];
        const double release = calendar_.time_of(i);
        ++next_job_[i];
        // schedule_next_arrival, calendar edition: same arithmetic as the
        // reference (release + (period + delay)).
        {
          double delay = 0.0;
          if (env_.cfg.sporadic_jitter > 0.0) {
            gen::Rng rng(gen::derive_seed(env_.cfg.arrival_seed,
                                          mt.id() * 0x100000001ULL + number));
            delay = rng.uniform(0.0, env_.cfg.sporadic_jitter * mt.period());
          }
          calendar_.set_time(i, release + (mt.period() + delay));
        }
        const bool below_mode = mt.level() < mode_;
        const bool degrade =
            below_mode && env_.cfg.degraded_period_stretch > 1.0;
        if (below_mode && !degrade) {
          ++stats_.releases_suppressed;
          ++env_.task_stats[task].suppressed;
          emit(EventKind::kReleaseSuppressed, task, number, release);
          continue;
        }
        const double exec = env_.execution_time(mt, number);
        Job job;
        job.task = task;
        job.number = number;
        job.release = release;
        if (degrade) {
          job.deadline =
              release + env_.cfg.degraded_period_stretch * mt.period();
          calendar_.set_time(
              i, calendar_.time_of(i) +
                     (env_.cfg.degraded_period_stretch - 1.0) * mt.period());
          ++stats_.jobs_degraded;
          ++env_.task_stats[task].degraded;
        } else {
          job.deadline =
              release + deadline_scale(task, mt.level()) * mt.period();
        }
        job.remaining = exec;
        queue_.push(job);
        peak_ready_ = std::max(peak_ready_, queue_.size());
        ++stats_.jobs_released;
        ++env_.task_stats[task].released;
        emit(EventKind::kRelease, task, number, job.deadline);
      }
    }
  }

  void complete(JobHandle handle) {
    const Job job = queue_.job(handle);
    ++stats_.jobs_completed;
    TaskSimStats& tstats = env_.task_stats[job.task];
    ++tstats.completed;
    const double response = t_ - job.release;
    tstats.sum_response += response;
    tstats.max_response = std::max(tstats.max_response, response);
    g_deadline_checks.add();
    if (t_ > job.deadline + env_.cfg.miss_tolerance) {
      record_miss(job);
    }
    emit(EventKind::kComplete, job.task, job.number, job.deadline);
    queue_.erase(handle);
  }

  /// O(1) in the common no-miss case: some ready job is expired iff the
  /// minimal deadline is expired (a smaller deadline is at least as
  /// expired), so the earliest-deadline peek decides; the exact
  /// (deadline, seq) victim is resolved only when a miss actually fires —
  /// equivalent to the reference loop's O(n) scan.
  bool flag_expired_deadlines() {
    g_deadline_checks.add(queue_.size());
    if (queue_.empty()) return false;
    if (t_ <= queue_.earliest_deadline() + env_.cfg.miss_tolerance) {
      return false;
    }
    const JobHandle handle = queue_.top_deadline();
    const Job victim = queue_.job(handle);
    record_miss(victim);
    queue_.erase(handle);
    return true;
  }

  void switch_mode() {
    const obs::ScopedSpan span(kModeSwitchSite,
                               obs::ScopedSpan::Armed{trace_armed_},
                               env_.core, mode_);
    bool again = true;
    while (again && mode_ < env_.policy.num_levels()) {
      const Level old_mode = mode_;
      ++mode_;
      ++stats_.mode_switches;
      g_mode_switches.add();
      stats_.max_mode = std::max(stats_.max_mode, mode_);
      emit(EventKind::kModeSwitch, kNone, 0, 0.0);
      // Snapshot the ready set in insertion order; the reference loop walks
      // its vector backwards, so drops must be emitted in reverse seq order.
      switch_scratch_.clear();
      queue_.for_each(
          [&](JobHandle h) { switch_scratch_.push_back(h); });
      std::sort(switch_scratch_.begin(), switch_scratch_.end(),
                [&](JobHandle a, JobHandle b) {
                  return queue_.seq(a) < queue_.seq(b);
                });
      for (auto it = switch_scratch_.rbegin(); it != switch_scratch_.rend();
           ++it) {
        const Job& j = queue_.job(*it);
        if (env_.ts[j.task].level() <= old_mode) {
          ++stats_.jobs_dropped;
          g_jobs_dropped.add();
          ++env_.task_stats[j.task].dropped;
          emit(EventKind::kJobDropped, j.task, j.number, j.deadline);
          queue_.erase(*it);
        }
      }
      // Survivors: re-derive deadlines and detect a cascade (a job already
      // at the next budget) in one pass, then bulk-rebuild both heaps.
      again = false;
      queue_.for_each([&](JobHandle h) {
        Job& j = queue_.job(h);
        const McTask& mt = env_.ts[j.task];
        j.deadline =
            j.release + deadline_scale(j.task, mt.level()) * mt.period();
        if (mt.level() > mode_ && j.remaining > kEps &&
            j.done >= mt.wcet(mode_) - kEps) {
          again = true;
        }
      });
      queue_.rebuild();
    }
  }

  ReadyQueue queue_;
  ArrivalCalendar calendar_;
  std::vector<std::uint64_t> next_job_;
  std::vector<std::size_t> due_scratch_;
  std::vector<JobHandle> switch_scratch_;
  JobHandle last_ran_handle_ = kNoJob;
};

/// Horizon selection shared by simulate/simulate_core.
double resolve_horizon(const SimConfig& config, const TaskSet& ts) {
  if (config.horizon > 0.0) return config.horizon;
  return config.use_hyperperiod_horizon ? hyperperiod_horizon(ts)
                                        : default_horizon(ts);
}

CoreStats run_core(const Partition& partition, std::size_t core,
                   const ExecutionScenario& scenario, const SimConfig& config,
                   TraceSink* sink, double horizon,
                   std::vector<DeadlineMiss>& misses,
                   std::vector<TaskSimStats>& task_stats) {
  CoreEnv env(partition, core, scenario, config, sink, misses, task_stats);
  if (config.engine == EngineKind::kReference) {
    ReferenceCoreSim sim(env);
    return sim.run(horizon);
  }
  FastCoreSim sim(env);
  return sim.run(horizon);
}

}  // namespace

double default_horizon(const TaskSet& ts) {
  double max_p = 0.0;
  for (const McTask& t : ts) max_p = std::max(max_p, t.period());
  return 20.0 * max_p;
}

std::optional<double> integral_hyperperiod(const TaskSet& ts) {
  // Doubles represent integers exactly up to 2^53; beyond that the
  // "hyperperiod" would silently lose precision, so treat it as overflow.
  constexpr std::uint64_t kMaxExact = 1ULL << 53;
  std::uint64_t lcm = 1;
  for (const McTask& t : ts) {
    const double p = t.period();
    const double rounded = std::round(p);
    if (rounded < 1.0 || std::abs(p - rounded) > 1e-9 * std::max(1.0, p)) {
      return std::nullopt;
    }
    const auto ip = static_cast<std::uint64_t>(rounded);
    const std::uint64_t g = std::gcd(lcm, ip);
    const std::uint64_t step = lcm / g;
    if (ip > kMaxExact / step) return std::nullopt;  // lcm would overflow
    lcm = step * ip;
  }
  return static_cast<double>(lcm);
}

double hyperperiod_horizon(const TaskSet& ts) {
  const std::optional<double> hp = integral_hyperperiod(ts);
  return hp.has_value() ? *hp : default_horizon(ts);
}

SimResult simulate_core(const Partition& partition, std::size_t core,
                        const ExecutionScenario& scenario,
                        const SimConfig& config, TraceSink* sink) {
  SimResult result;
  result.horizon = resolve_horizon(config, partition.taskset());
  result.tasks.assign(partition.taskset().size(), TaskSimStats{});
  result.cores.push_back(run_core(partition, core, scenario, config, sink,
                                  result.horizon, result.misses,
                                  result.tasks));
  return result;
}

SimResult simulate(const Partition& partition,
                   const ExecutionScenario& scenario, const SimConfig& config,
                   TraceSink* sink) {
  const obs::ScopedSpan span(kSimulateSite, partition.num_cores(),
                             partition.taskset().size());
  SimResult result;
  result.horizon = resolve_horizon(config, partition.taskset());
  result.tasks.assign(partition.taskset().size(), TaskSimStats{});
  result.cores.reserve(partition.num_cores());
  for (std::size_t core = 0; core < partition.num_cores(); ++core) {
    result.cores.push_back(run_core(partition, core, scenario, config, sink,
                                    result.horizon, result.misses,
                                    result.tasks));
  }
  return result;
}

}  // namespace mcs::sim
