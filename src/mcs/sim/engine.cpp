#include "mcs/sim/engine.hpp"

#include "mcs/gen/rng.hpp"
#include "mcs/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace mcs::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEps = 1e-9;
constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

obs::Counter& g_mode_switches = obs::registry().counter("sim.mode_switches");
obs::Counter& g_deadline_checks =
    obs::registry().counter("sim.deadline_checks");
obs::Counter& g_deadline_misses =
    obs::registry().counter("sim.deadline_misses");
obs::Counter& g_jobs_dropped = obs::registry().counter("sim.jobs_dropped");

struct Job {
  std::size_t task = 0;       ///< index within the TaskSet
  std::uint64_t number = 0;   ///< 0-based job index
  double release = 0.0;
  double deadline = 0.0;      ///< current absolute (virtual) deadline
  double remaining = 0.0;
  double done = 0.0;
};

/// Simulates one core of a partition from time 0 to the horizon.
class CoreSim {
 public:
  CoreSim(const Partition& partition, std::size_t core,
          const ExecutionScenario& scenario, const SimConfig& cfg,
          TraceSink* sink, std::vector<DeadlineMiss>& misses,
          std::vector<TaskSimStats>& task_stats)
      : ts_(partition.taskset()),
        members_(partition.tasks_on(core)),
        scenario_(scenario),
        cfg_(cfg),
        sink_(sink),
        core_(core),
        policy_(partition.utils_on(core)),
        misses_(misses),
        task_stats_(task_stats) {
    stats_.mode_residency.assign(policy_.num_levels(), 0.0);
    next_job_.assign(members_.size(), 0);
    next_arrival_.assign(members_.size(), 0.0);
    // Priority ranks for fixed-priority mode (lower rank = higher
    // priority): an explicit assignment when provided, else deadline
    // monotonic.
    if (!cfg_.fp_priorities.empty()) {
      if (cfg_.fp_priorities.size() != ts_.size()) {
        throw std::invalid_argument(
            "simulate: fp_priorities must have one rank per task");
      }
      fp_rank_ = cfg_.fp_priorities;
    } else {
      fp_rank_.assign(ts_.size(), std::numeric_limits<std::size_t>::max());
      std::vector<std::size_t> order(members_.begin(), members_.end());
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        if (ts_[a].period() != ts_[b].period()) {
          return ts_[a].period() < ts_[b].period();
        }
        return a < b;
      });
      for (std::size_t rank = 0; rank < order.size(); ++rank) {
        fp_rank_[order[rank]] = rank;
      }
    }
  }

  CoreStats run(double horizon) {
    while (t_ < horizon - kEps) {
      if (flag_expired_deadlines()) {
        if (cfg_.stop_core_on_miss) break;
        continue;
      }
      if (ready_.empty()) {
        if (mode_ > 1 && cfg_.idle_reset) idle_reset();
        const double ta = next_arrival_time();
        if (ta >= horizon - kEps) break;
        set_time(ta);
        process_arrivals();
        continue;
      }

      Job& run_job = ready_[select_running()];
      const Level run_level = ts_[run_job.task].level();
      const double t_complete = t_ + run_job.remaining;
      double t_threshold = kInf;
      if (run_level > mode_) {
        const double budget = ts_[run_job.task].wcet(mode_);
        t_threshold = t_ + std::max(0.0, budget - run_job.done);
      }
      const double t_release = next_arrival_time();
      const double t_dl = earliest_deadline();
      double t_evt = std::min({t_complete, t_threshold, t_release});

      if (t_dl + cfg_.miss_tolerance < t_evt) {
        // Some ready job's deadline passes before the next event, so it
        // cannot finish in time (under EDF it is the running job itself;
        // under fixed priority it may be a preempted lower-priority job).
        // Advance the running job to the deadline instant and flag the
        // expiring job.
        advance(run_job, t_dl);
        std::size_t expiring = 0;
        for (std::size_t i = 1; i < ready_.size(); ++i) {
          if (ready_[i].deadline < ready_[expiring].deadline) expiring = i;
        }
        const Job victim = ready_[expiring];
        record_miss(victim);
        if (cfg_.stop_core_on_miss) break;
        erase_job(victim.task, victim.number);
        continue;
      }
      if (t_evt >= horizon - kEps) {
        advance(run_job, std::min(t_evt, horizon));
        break;
      }

      advance(run_job, t_evt);
      if (run_job.remaining <= kEps && t_complete <= t_threshold + kEps) {
        complete(run_job);
        continue;
      }
      if (run_level > mode_ &&
          run_job.done >= ts_[run_job.task].wcet(mode_) - kEps &&
          run_job.remaining > kEps) {
        switch_mode();
        continue;
      }
      if (t_evt >= t_release - kEps) {
        process_arrivals();
      }
    }
    set_time(horizon);
    return stats_;
  }

 private:
  /// Advances the clock, accruing mode-residency time.
  void set_time(double to) {
    if (to > t_) {
      stats_.mode_residency[mode_ - 1] += to - t_;
      t_ = to;
    }
  }

  void advance(Job& job, double to) {
    const double dt = to - t_;
    if (dt > 0.0) {
      if (sink_ != nullptr) {
        sink_->on_event(TraceEvent{.time = t_,
                                   .core = core_,
                                   .kind = EventKind::kExecute,
                                   .task = job.task,
                                   .job = job.number,
                                   .mode = mode_,
                                   .deadline = job.deadline,
                                   .until = to});
      }
      job.done += dt;
      job.remaining -= dt;
      set_time(to);
      last_ran_task_ = job.task;
      last_ran_job_ = job.number;
    }
  }

  /// Index of the scheduled job: EDF (smallest deadline; ties to the
  /// smaller task index, then the earlier job) or fixed priority (smallest
  /// deadline-monotonic rank; FIFO within a task).
  std::size_t select_running() {
    const bool fp = cfg_.scheduler == SchedulerKind::kFixedPriority;
    std::size_t best = 0;
    for (std::size_t i = 1; i < ready_.size(); ++i) {
      const Job& a = ready_[i];
      const Job& b = ready_[best];
      bool a_wins = false;
      if (fp) {
        a_wins = fp_rank_[a.task] < fp_rank_[b.task] ||
                 (a.task == b.task && a.number < b.number);
      } else {
        a_wins =
            a.deadline < b.deadline ||
            (a.deadline == b.deadline &&
             (a.task < b.task || (a.task == b.task && a.number < b.number)));
      }
      if (a_wins) best = i;
    }
    const Job& chosen = ready_[best];
    if (last_ran_task_ != kNone &&
        (chosen.task != last_ran_task_ || chosen.number != last_ran_job_) &&
        find_job(last_ran_task_, last_ran_job_) != kNone) {
      ++stats_.preemptions;
    }
    return best;
  }

  [[nodiscard]] double earliest_deadline() const {
    double dl = kInf;
    for (const Job& j : ready_) dl = std::min(dl, j.deadline);
    return dl;
  }

  [[nodiscard]] double next_arrival_time() const {
    double ta = kInf;
    for (std::size_t i = 0; i < members_.size(); ++i) {
      ta = std::min(ta, arrival_of(i));
    }
    return ta;
  }

  [[nodiscard]] double arrival_of(std::size_t member) const {
    return next_arrival_[member];
  }

  /// Advances a task's arrival pointer past the job just processed; under
  /// sporadic arrivals a deterministic per-job delay is added on top of the
  /// minimum inter-arrival time (the period).
  void schedule_next_arrival(std::size_t member, std::uint64_t job) {
    const McTask& mt = ts_[members_[member]];
    double delay = 0.0;
    if (cfg_.sporadic_jitter > 0.0) {
      gen::Rng rng(gen::derive_seed(cfg_.arrival_seed,
                                    mt.id() * 0x100000001ULL + job));
      delay = rng.uniform(0.0, cfg_.sporadic_jitter * mt.period());
    }
    next_arrival_[member] += mt.period() + delay;
  }

  [[nodiscard]] double deadline_scale(std::size_t task,
                                      Level task_level) const {
    if (!cfg_.use_virtual_deadlines ||
        cfg_.scheduler == SchedulerKind::kFixedPriority) {
      return 1.0;
    }
    if (policy_.num_levels() == 2 && !cfg_.dual_scales.empty()) {
      // Per-task scales (e.g. from the tuned DBF analysis): HI tasks shrink
      // in LO mode, full deadlines once switched.
      if (task_level == 2 && mode_ == 1 && task < cfg_.dual_scales.size()) {
        const double x = cfg_.dual_scales[task];
        if (x > 0.0 && x <= 1.0) return x;
      }
      return 1.0;
    }
    if (cfg_.dual_scale_override > 0.0 && cfg_.dual_scale_override <= 1.0 &&
        policy_.num_levels() == 2) {
      // HI tasks shrink in LO mode, full deadlines once switched.
      return (task_level == 2 && mode_ == 1) ? cfg_.dual_scale_override : 1.0;
    }
    return policy_.scale(task_level, mode_);
  }

  void process_arrivals() {
    for (std::size_t i = 0; i < members_.size(); ++i) {
      while (arrival_of(i) <= t_ + kEps) {
        const std::size_t task = members_[i];
        const McTask& mt = ts_[task];
        const std::uint64_t number = next_job_[i];
        const double release = arrival_of(i);
        ++next_job_[i];
        schedule_next_arrival(i, number);
        const bool below_mode = mt.level() < mode_;
        const bool degrade = below_mode && cfg_.degraded_period_stretch > 1.0;
        if (below_mode && !degrade) {
          ++stats_.releases_suppressed;
          ++task_stats_[task].suppressed;
          emit(EventKind::kReleaseSuppressed, task, number, release);
          continue;
        }
        const double exec = scenario_.execution_time(mt, number);
        if (!(exec > 0.0) || exec > mt.wcet(mt.level()) + kEps) {
          throw std::logic_error(
              "simulate: scenario returned an execution time outside "
              "(0, c_i(l_i)]");
        }
        Job job;
        job.task = task;
        job.number = number;
        job.release = release;
        if (degrade) {
          // Degraded service: stretched deadline now, and the *next*
          // arrival pushed out by the same factor (minimum inter-arrival
          // grows while the mode is elevated).
          job.deadline =
              release + cfg_.degraded_period_stretch * mt.period();
          next_arrival_[i] +=
              (cfg_.degraded_period_stretch - 1.0) * mt.period();
          ++stats_.jobs_degraded;
          ++task_stats_[task].degraded;
        } else {
          job.deadline =
              release + deadline_scale(task, mt.level()) * mt.period();
        }
        job.remaining = exec;
        ready_.push_back(job);
        ++stats_.jobs_released;
        ++task_stats_[task].released;
        emit(EventKind::kRelease, task, number, job.deadline);
      }
    }
  }

  void complete(const Job& job) {
    ++stats_.jobs_completed;
    TaskSimStats& tstats = task_stats_[job.task];
    ++tstats.completed;
    const double response = t_ - job.release;
    tstats.sum_response += response;
    tstats.max_response = std::max(tstats.max_response, response);
    g_deadline_checks.add();
    if (t_ > job.deadline + cfg_.miss_tolerance) {
      record_miss(job);
    }
    emit(EventKind::kComplete, job.task, job.number, job.deadline);
    erase_job(job.task, job.number);
  }

  /// Flags ready jobs whose deadline already passed (can only happen within
  /// the miss tolerance window or after a non-stopping miss).  Returns true
  /// when a miss was recorded.
  bool flag_expired_deadlines() {
    g_deadline_checks.add(ready_.size());
    for (const Job& j : ready_) {
      if (t_ > j.deadline + cfg_.miss_tolerance) {
        record_miss(j);
        erase_job(j.task, j.number);
        return true;
      }
    }
    return false;
  }

  void switch_mode() {
    bool again = true;
    while (again && mode_ < policy_.num_levels()) {
      const Level old_mode = mode_;
      ++mode_;
      ++stats_.mode_switches;
      g_mode_switches.add();
      stats_.max_mode = std::max(stats_.max_mode, mode_);
      emit(EventKind::kModeSwitch, kNone, 0, 0.0);
      // Drop jobs at or below the exhausted mode.
      for (std::size_t i = ready_.size(); i-- > 0;) {
        if (ts_[ready_[i].task].level() <= old_mode) {
          ++stats_.jobs_dropped;
          g_jobs_dropped.add();
          ++task_stats_[ready_[i].task].dropped;
          emit(EventKind::kJobDropped, ready_[i].task, ready_[i].number,
               ready_[i].deadline);
          ready_.erase(ready_.begin() + static_cast<std::ptrdiff_t>(i));
        }
      }
      // Re-derive deadlines for the survivors under the new mode.
      for (Job& j : ready_) {
        j.deadline = j.release + deadline_scale(j.task, ts_[j.task].level()) *
                                     ts_[j.task].period();
      }
      // Cascade when a surviving job is already at the next budget (equal
      // consecutive WCETs).
      again = false;
      for (const Job& j : ready_) {
        const McTask& mt = ts_[j.task];
        if (mt.level() > mode_ && j.remaining > kEps &&
            j.done >= mt.wcet(mode_) - kEps) {
          again = true;
          break;
        }
      }
    }
  }

  void idle_reset() {
    mode_ = 1;
    ++stats_.idle_resets;
    emit(EventKind::kIdleReset, kNone, 0, 0.0);
  }

  void record_miss(const Job& job) {
    g_deadline_misses.add();
    ++task_stats_[job.task].missed;
    misses_.push_back(DeadlineMiss{.core = core_,
                                   .task = job.task,
                                   .job = job.number,
                                   .deadline = job.deadline,
                                   .detected_at = t_,
                                   .mode = mode_});
    emit(EventKind::kDeadlineMiss, job.task, job.number, job.deadline);
  }

  [[nodiscard]] std::size_t find_job(std::size_t task,
                                     std::uint64_t number) const {
    for (std::size_t i = 0; i < ready_.size(); ++i) {
      if (ready_[i].task == task && ready_[i].number == number) return i;
    }
    return kNone;
  }

  void erase_job(std::size_t task, std::uint64_t number) {
    const std::size_t i = find_job(task, number);
    if (i != kNone) {
      ready_.erase(ready_.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }

  void emit(EventKind kind, std::size_t task, std::uint64_t job,
            double deadline) {
    if (sink_ == nullptr) return;
    sink_->on_event(TraceEvent{.time = t_,
                               .core = core_,
                               .kind = kind,
                               .task = task,
                               .job = job,
                               .mode = mode_,
                               .deadline = deadline});
  }

  const TaskSet& ts_;
  const std::vector<std::size_t>& members_;
  const ExecutionScenario& scenario_;
  const SimConfig& cfg_;
  TraceSink* sink_;
  std::size_t core_;
  analysis::DeadlinePolicy policy_;
  std::vector<DeadlineMiss>& misses_;
  std::vector<TaskSimStats>& task_stats_;

  Level mode_ = 1;
  double t_ = 0.0;
  std::vector<Job> ready_;
  std::vector<std::uint64_t> next_job_;
  std::vector<double> next_arrival_;
  std::vector<std::size_t> fp_rank_;
  CoreStats stats_;
  std::size_t last_ran_task_ = kNone;
  std::uint64_t last_ran_job_ = 0;
};

/// Horizon selection shared by simulate/simulate_core.
double resolve_horizon(const SimConfig& config, const TaskSet& ts) {
  if (config.horizon > 0.0) return config.horizon;
  return config.use_hyperperiod_horizon ? hyperperiod_horizon(ts)
                                        : default_horizon(ts);
}

}  // namespace

double default_horizon(const TaskSet& ts) {
  double max_p = 0.0;
  for (const McTask& t : ts) max_p = std::max(max_p, t.period());
  return 20.0 * max_p;
}

std::optional<double> integral_hyperperiod(const TaskSet& ts) {
  // Doubles represent integers exactly up to 2^53; beyond that the
  // "hyperperiod" would silently lose precision, so treat it as overflow.
  constexpr std::uint64_t kMaxExact = 1ULL << 53;
  std::uint64_t lcm = 1;
  for (const McTask& t : ts) {
    const double p = t.period();
    const double rounded = std::round(p);
    if (rounded < 1.0 || std::abs(p - rounded) > 1e-9 * std::max(1.0, p)) {
      return std::nullopt;
    }
    const auto ip = static_cast<std::uint64_t>(rounded);
    const std::uint64_t g = std::gcd(lcm, ip);
    const std::uint64_t step = lcm / g;
    if (ip > kMaxExact / step) return std::nullopt;  // lcm would overflow
    lcm = step * ip;
  }
  return static_cast<double>(lcm);
}

double hyperperiod_horizon(const TaskSet& ts) {
  const std::optional<double> hp = integral_hyperperiod(ts);
  return hp.has_value() ? *hp : default_horizon(ts);
}

SimResult simulate_core(const Partition& partition, std::size_t core,
                        const ExecutionScenario& scenario,
                        const SimConfig& config, TraceSink* sink) {
  SimResult result;
  result.horizon = resolve_horizon(config, partition.taskset());
  result.tasks.assign(partition.taskset().size(), TaskSimStats{});
  CoreSim sim(partition, core, scenario, config, sink, result.misses,
              result.tasks);
  result.cores.push_back(sim.run(result.horizon));
  return result;
}

SimResult simulate(const Partition& partition,
                   const ExecutionScenario& scenario, const SimConfig& config,
                   TraceSink* sink) {
  SimResult result;
  result.horizon = resolve_horizon(config, partition.taskset());
  result.tasks.assign(partition.taskset().size(), TaskSimStats{});
  result.cores.reserve(partition.num_cores());
  for (std::size_t core = 0; core < partition.num_cores(); ++core) {
    CoreSim sim(partition, core, scenario, config, sink, result.misses,
                result.tasks);
    result.cores.push_back(sim.run(result.horizon));
  }
  return result;
}

}  // namespace mcs::sim
