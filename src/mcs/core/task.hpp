// Mixed-criticality task model (Vestal model, implicit deadlines).
//
// A task tau_i = {C_i, p_i, l_i} has criticality level l_i in [1, K], period
// (= relative deadline) p_i, and a WCET vector C_i = <c_i(1), ..., c_i(l_i)>
// with c_i(1) <= c_i(2) <= ... <= c_i(l_i).  The level-k utilization is
// u_i(k) = c_i(k) / p_i.
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace mcs {

/// Criticality level, 1-based.  Level 1 is the lowest criticality; a system
/// with K levels supports tasks at levels 1..K.
using Level = unsigned;

/// One mixed-criticality periodic task.
class McTask {
 public:
  /// Builds a task from its WCET vector (index 0 holds c_i(1)), period and
  /// implicit criticality level `wcets.size()`.
  /// Throws std::invalid_argument on malformed parameters (empty WCETs,
  /// non-increasing WCET vector, non-positive period or WCET, or a WCET
  /// exceeding the period at any level).
  McTask(std::size_t id, std::vector<double> wcets, double period);

  /// Re-initializes the task in place from a fresh parameter draw, copying
  /// `wcets` into the existing WCET vector (no allocation once its capacity
  /// covers the new level).  Same validation as the constructor.  Arena hot
  /// path: lets trial generators recycle task shells instead of
  /// constructing a fresh vector per task.
  void assign(std::size_t id, std::span<const double> wcets, double period);

  [[nodiscard]] std::size_t id() const noexcept { return id_; }
  [[nodiscard]] double period() const noexcept { return period_; }

  /// The task's own criticality level l_i (= number of WCET entries).
  [[nodiscard]] Level level() const noexcept {
    return static_cast<Level>(wcets_.size());
  }

  /// c_i(k) for 1 <= k <= l_i.
  [[nodiscard]] double wcet(Level k) const;

  /// u_i(k) = c_i(k) / p_i for 1 <= k <= l_i.
  [[nodiscard]] double utilization(Level k) const;

  /// u_i(l_i): the task's utilization at its own criticality level, the only
  /// quantity classical partitioning heuristics look at.
  [[nodiscard]] double max_utilization() const;

  [[nodiscard]] const std::vector<double>& wcets() const noexcept {
    return wcets_;
  }

  [[nodiscard]] bool operator==(const McTask&) const = default;

  /// Human-readable one-line description for traces and examples.
  [[nodiscard]] std::string describe() const;

 private:
  std::size_t id_;
  std::vector<double> wcets_;
  double period_;
};

}  // namespace mcs
