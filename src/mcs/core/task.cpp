#include "mcs/core/task.hpp"

#include <sstream>

namespace mcs {

namespace {

void validate_task(const std::vector<double>& wcets, double period) {
  if (wcets.empty()) {
    throw std::invalid_argument("McTask: WCET vector must be non-empty");
  }
  if (!(period > 0.0)) {
    throw std::invalid_argument("McTask: period must be positive");
  }
  double prev = 0.0;
  for (double c : wcets) {
    if (!(c > 0.0)) {
      throw std::invalid_argument("McTask: WCETs must be positive");
    }
    if (c < prev) {
      throw std::invalid_argument(
          "McTask: WCETs must be non-decreasing across criticality levels");
    }
    if (c > period) {
      throw std::invalid_argument(
          "McTask: WCET exceeds period (task infeasible in isolation)");
    }
    prev = c;
  }
}

}  // namespace

McTask::McTask(std::size_t id, std::vector<double> wcets, double period)
    : id_(id), wcets_(std::move(wcets)), period_(period) {
  validate_task(wcets_, period_);
}

void McTask::assign(std::size_t id, std::span<const double> wcets,
                    double period) {
  wcets_.assign(wcets.begin(), wcets.end());
  id_ = id;
  period_ = period;
  validate_task(wcets_, period_);
}

double McTask::wcet(Level k) const {
  if (k < 1 || k > level()) {
    throw std::out_of_range("McTask::wcet: level out of range");
  }
  return wcets_[k - 1];
}

double McTask::utilization(Level k) const { return wcet(k) / period_; }

double McTask::max_utilization() const { return wcets_.back() / period_; }

std::string McTask::describe() const {
  std::ostringstream os;
  os << "tau_" << id_ << " (L" << level() << ", p=" << period_ << ", C=<";
  for (std::size_t i = 0; i < wcets_.size(); ++i) {
    if (i != 0) os << ", ";
    os << wcets_[i];
  }
  os << ">)";
  return os.str();
}

}  // namespace mcs
