#include "mcs/core/taskset.hpp"

#include <stdexcept>

namespace mcs {

UtilMatrix::UtilMatrix(Level num_levels) : levels_(num_levels) {
  if (num_levels < 1) {
    throw std::invalid_argument("UtilMatrix: need at least one level");
  }
  u_.assign(static_cast<std::size_t>(levels_) * levels_, 0.0);
}

void UtilMatrix::reset(Level num_levels) {
  if (num_levels < 1) {
    throw std::invalid_argument("UtilMatrix::reset: need at least one level");
  }
  levels_ = num_levels;
  count_ = 0;
  u_.assign(static_cast<std::size_t>(levels_) * levels_, 0.0);
}

void UtilMatrix::add(const McTask& task) {
  const Level j = task.level();
  if (j > levels_) {
    throw std::invalid_argument("UtilMatrix::add: task level exceeds system K");
  }
  for (Level k = 1; k <= j; ++k) {
    u_[index(j, k)] += task.utilization(k);
  }
  ++count_;
}

void UtilMatrix::remove(const McTask& task) {
  const Level j = task.level();
  if (j > levels_) {
    throw std::invalid_argument(
        "UtilMatrix::remove: task level exceeds system K");
  }
  if (count_ == 0) {
    throw std::logic_error("UtilMatrix::remove: matrix is empty");
  }
  for (Level k = 1; k <= j; ++k) {
    u_[index(j, k)] -= task.utilization(k);
    // Clamp tiny negative residue from floating-point cancellation.
    if (u_[index(j, k)] < 0.0 && u_[index(j, k)] > -1e-12) {
      u_[index(j, k)] = 0.0;
    }
  }
  --count_;
}

double UtilMatrix::level_util(Level j, Level k) const {
  if (k < 1 || j < k || j > levels_) {
    throw std::out_of_range("UtilMatrix::level_util: (j, k) out of range");
  }
  return u_[index(j, k)];
}

double UtilMatrix::total_at_or_above(Level k) const {
  if (k < 1 || k > levels_) {
    throw std::out_of_range("UtilMatrix::total_at_or_above: k out of range");
  }
  double total = 0.0;
  for (Level j = k; j <= levels_; ++j) {
    total += u_[index(j, k)];
  }
  return total;
}

double UtilMatrix::own_level_sum() const {
  double total = 0.0;
  for (Level k = 1; k <= levels_; ++k) {
    total += u_[index(k, k)];
  }
  return total;
}

TaskSet::TaskSet(std::vector<McTask> tasks, Level num_levels)
    : tasks_(std::move(tasks)), levels_(num_levels), utils_(num_levels) {
  if (tasks_.empty()) {
    throw std::invalid_argument("TaskSet: must contain at least one task");
  }
  for (const McTask& t : tasks_) {
    utils_.add(t);  // throws if t.level() > num_levels
  }
}

void TaskSet::assign(std::vector<McTask> tasks, Level num_levels) {
  if (tasks.empty()) {
    throw std::invalid_argument("TaskSet: must contain at least one task");
  }
  tasks_ = std::move(tasks);
  levels_ = num_levels;
  utils_.reset(num_levels);
  for (const McTask& t : tasks_) {
    utils_.add(t);  // throws if t.level() > num_levels
  }
}

std::vector<McTask> TaskSet::release() noexcept {
  return std::move(tasks_);
}

double TaskSet::raw_level1_util() const {
  double total = 0.0;
  for (const McTask& t : tasks_) {
    total += t.utilization(1);
  }
  return total;
}

}  // namespace mcs
