#include "mcs/core/partition.hpp"

#include <algorithm>
#include <stdexcept>

namespace mcs {

Partition::Partition(const TaskSet& ts, std::size_t num_cores) : ts_(&ts) {
  if (num_cores == 0) {
    throw std::invalid_argument("Partition: need at least one core");
  }
  cores_.reserve(num_cores);
  for (std::size_t m = 0; m < num_cores; ++m) {
    cores_.emplace_back(ts.num_levels());
  }
  core_of_.assign(ts.size(), kUnassigned);
}

void Partition::reset(const TaskSet& ts, std::size_t num_cores) {
  if (num_cores == 0) {
    throw std::invalid_argument("Partition::reset: need at least one core");
  }
  ts_ = &ts;
  if (cores_.size() > num_cores) {
    cores_.erase(cores_.begin() + static_cast<std::ptrdiff_t>(num_cores),
                 cores_.end());
  }
  for (CoreState& core : cores_) {
    core.members.clear();
    core.utils.reset(ts.num_levels());
  }
  cores_.reserve(num_cores);
  while (cores_.size() < num_cores) {
    cores_.emplace_back(ts.num_levels());
  }
  core_of_.assign(ts.size(), kUnassigned);
  assigned_ = 0;
}

void Partition::assign(std::size_t task_index, std::size_t core) {
  if (task_index >= ts_->size()) {
    throw std::out_of_range("Partition::assign: task index out of range");
  }
  if (core >= cores_.size()) {
    throw std::out_of_range("Partition::assign: core index out of range");
  }
  if (core_of_[task_index] != kUnassigned) {
    throw std::logic_error("Partition::assign: task already assigned");
  }
  cores_[core].members.push_back(task_index);
  cores_[core].utils.add((*ts_)[task_index]);
  core_of_[task_index] = core;
  ++assigned_;
}

void Partition::unassign(std::size_t task_index) {
  if (task_index >= ts_->size()) {
    throw std::out_of_range("Partition::unassign: task index out of range");
  }
  const std::size_t core = core_of_[task_index];
  if (core == kUnassigned) {
    throw std::logic_error("Partition::unassign: task is not assigned");
  }
  auto& members = cores_[core].members;
  members.erase(std::find(members.begin(), members.end(), task_index));
  cores_[core].utils.remove((*ts_)[task_index]);
  core_of_[task_index] = kUnassigned;
  --assigned_;
}

}  // namespace mcs
