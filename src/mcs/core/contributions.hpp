// Utilization contributions and the CA-TPA task ordering (paper Sec. III-A).
//
// The utilization contribution of task tau_i at level k is
//     C_i(k) = u_i(k) / U(k)                                (Eq. 12)
// where U(k) is the total level-k utilization of all tasks at criticality
// level k or higher.  The task's overall contribution is
//     C_i = max_{k = 1..l_i} C_i(k)                         (Eq. 13)
// i.e. its largest relative weight in the system across its valid levels.
//
// CA-TPA orders tasks by decreasing C_i, breaking ties first by higher
// criticality level and then by smaller task index.
#pragma once

#include <cstddef>
#include <vector>

#include "mcs/core/taskset.hpp"

namespace mcs {

/// Per-task contribution values for one task set.
struct Contribution {
  std::size_t task_index = 0;  ///< index into the TaskSet
  double value = 0.0;          ///< C_i (Eq. 13)
  Level argmax_level = 1;      ///< the level attaining the max in Eq. 13
};

/// Computes C_i(k) for one task (Eq. 12).  U(k) values are taken from the
/// whole task set.  Returns 0 when U(k) == 0 (no demand at that level).
[[nodiscard]] double utilization_contribution(const TaskSet& ts,
                                              std::size_t task_index, Level k);

/// Computes C_i for every task (Eq. 13).
[[nodiscard]] std::vector<Contribution> utilization_contributions(
    const TaskSet& ts);

/// Returns task indices sorted by the CA-TPA ordering-priority rules:
/// decreasing C_i; ties to the higher criticality level; remaining ties to
/// the smaller task index.
[[nodiscard]] std::vector<std::size_t> order_by_contribution(const TaskSet& ts);

/// Returns task indices sorted by decreasing maximum utilization u_i(l_i)
/// (the classical FFD/BFD/WFD key); ties to higher level, then smaller index.
[[nodiscard]] std::vector<std::size_t> order_by_max_utilization(
    const TaskSet& ts);

}  // namespace mcs
