// Task-to-core partitions (Gamma = {Psi_1, ..., Psi_M}).
//
// A Partition tracks which core each task of a TaskSet is assigned to and
// incrementally maintains each core's UtilMatrix so that analysis probes are
// O(K^2) instead of O(|Psi_m| * K).
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "mcs/core/taskset.hpp"

namespace mcs {

/// Sentinel for "task not assigned to any core".
inline constexpr std::size_t kUnassigned = std::numeric_limits<std::size_t>::max();

class Partition {
 public:
  /// An empty partition of `ts` over `num_cores` cores.  The TaskSet must
  /// outlive the Partition (it is held by reference).
  Partition(const TaskSet& ts, std::size_t num_cores);

  /// Rebinds to a (possibly different) task set and core count and clears
  /// all assignments, reusing the per-core buffers — the no-allocation path
  /// for harnesses that partition many task sets in a row.
  void reset(const TaskSet& ts, std::size_t num_cores);

  [[nodiscard]] std::size_t num_cores() const noexcept { return cores_.size(); }
  [[nodiscard]] const TaskSet& taskset() const noexcept { return *ts_; }

  /// Assigns task `task_index` to core `core`; the task must be unassigned.
  void assign(std::size_t task_index, std::size_t core);

  /// Removes task `task_index` from its core.
  void unassign(std::size_t task_index);

  /// Core of a task, or kUnassigned.
  [[nodiscard]] std::size_t core_of(std::size_t task_index) const {
    return core_of_.at(task_index);
  }

  /// Indices of the tasks currently on core m (insertion order).
  [[nodiscard]] const std::vector<std::size_t>& tasks_on(std::size_t core) const {
    return cores_.at(core).members;
  }

  /// The level-utilization matrix of core m's subset Psi_m.
  [[nodiscard]] const UtilMatrix& utils_on(std::size_t core) const {
    return cores_.at(core).utils;
  }

  /// Number of tasks assigned so far.
  [[nodiscard]] std::size_t assigned_count() const noexcept { return assigned_; }

  /// True when every task of the set has a core.
  [[nodiscard]] bool complete() const noexcept {
    return assigned_ == ts_->size();
  }

 private:
  struct CoreState {
    explicit CoreState(Level levels) : utils(levels) {}
    std::vector<std::size_t> members;
    UtilMatrix utils;
  };

  const TaskSet* ts_;
  std::vector<CoreState> cores_;
  std::vector<std::size_t> core_of_;
  std::size_t assigned_ = 0;
};

}  // namespace mcs
