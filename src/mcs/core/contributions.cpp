#include "mcs/core/contributions.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace mcs {

double utilization_contribution(const TaskSet& ts, std::size_t task_index,
                                Level k) {
  const McTask& task = ts[task_index];
  if (k < 1 || k > task.level()) {
    throw std::out_of_range(
        "utilization_contribution: level outside the task's valid range");
  }
  const double total = ts.total_util(k);
  if (total <= 0.0) return 0.0;
  return task.utilization(k) / total;
}

std::vector<Contribution> utilization_contributions(const TaskSet& ts) {
  std::vector<Contribution> out;
  out.reserve(ts.size());
  for (std::size_t i = 0; i < ts.size(); ++i) {
    Contribution c{.task_index = i, .value = -1.0, .argmax_level = 1};
    for (Level k = 1; k <= ts[i].level(); ++k) {
      const double v = utilization_contribution(ts, i, k);
      if (v > c.value) {
        c.value = v;
        c.argmax_level = k;
      }
    }
    out.push_back(c);
  }
  return out;
}

namespace {

/// Sorts indices by a (key, level, index) triple: larger key first, then
/// higher criticality level, then smaller index.
std::vector<std::size_t> order_by_key(const TaskSet& ts,
                                      const std::vector<double>& key) {
  std::vector<std::size_t> idx(ts.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    if (key[a] != key[b]) return key[a] > key[b];
    if (ts[a].level() != ts[b].level()) return ts[a].level() > ts[b].level();
    return a < b;
  });
  return idx;
}

}  // namespace

std::vector<std::size_t> order_by_contribution(const TaskSet& ts) {
  const std::vector<Contribution> contribs = utilization_contributions(ts);
  std::vector<double> key(ts.size());
  for (const Contribution& c : contribs) key[c.task_index] = c.value;
  return order_by_key(ts, key);
}

std::vector<std::size_t> order_by_max_utilization(const TaskSet& ts) {
  std::vector<double> key(ts.size());
  for (std::size_t i = 0; i < ts.size(); ++i) key[i] = ts[i].max_utilization();
  return order_by_key(ts, key);
}

}  // namespace mcs
