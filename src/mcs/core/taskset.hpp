// Task sets and level-utilization bookkeeping.
//
// UtilMatrix maintains, for a (sub)set of MC tasks, the quantities the
// EDF-VD schedulability analysis is written in terms of:
//
//   U_j(k)  (Eq. 1): total level-k utilization of the tasks whose own
//                    criticality level is exactly j       (defined for k <= j)
//   U(k)    (Eq. 2): sum over j >= k of U_j(k) -- the level-k utilization of
//                    all tasks at criticality k or higher
//
// The matrix supports O(K) add/remove so that probe-based partitioners can
// evaluate "what if task tau_i joined core P_m" without rescanning the core's
// task list (K <= 6 in practice, so probes are effectively O(1)).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "mcs/core/task.hpp"

namespace mcs {

/// Lower-triangular K x K accumulator of level utilizations for a set of
/// tasks.  Entry (j, k), k <= j, stores U_j(k).
class UtilMatrix {
 public:
  /// An empty matrix for a system with `num_levels` criticality levels.
  explicit UtilMatrix(Level num_levels);

  /// Re-initializes to an empty matrix for `num_levels` levels, reusing the
  /// existing storage when possible (no allocation on the steady state of
  /// probe/trial loops).
  void reset(Level num_levels);

  [[nodiscard]] Level num_levels() const noexcept { return levels_; }

  /// Number of tasks currently accounted for.
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

  /// Adds / removes one task's utilizations.  The task's level must not
  /// exceed num_levels().
  void add(const McTask& task);
  void remove(const McTask& task);

  /// U_j(k): level-k utilization of tasks at criticality level exactly j.
  /// Requires 1 <= k <= j <= num_levels().
  [[nodiscard]] double level_util(Level j, Level k) const;

  /// U(k) = sum_{j >= k} U_j(k): total level-k utilization of tasks with
  /// criticality level k or higher (Eq. 2).
  [[nodiscard]] double total_at_or_above(Level k) const;

  /// sum_{k=1..K} U_k(k): the left-hand side of the basic EDF-VD
  /// schedulability condition (Eq. 4).
  [[nodiscard]] double own_level_sum() const;

  [[nodiscard]] bool operator==(const UtilMatrix&) const = default;

 private:
  [[nodiscard]] std::size_t index(Level j, Level k) const noexcept {
    return static_cast<std::size_t>(j - 1) * levels_ +
           static_cast<std::size_t>(k - 1);
  }

  Level levels_;
  std::size_t count_ = 0;
  std::vector<double> u_;  // row-major K x K, zero above the diagonal
};

/// An immutable collection of MC tasks plus the number of criticality levels
/// K of the hosting system.  Tasks are indexed 0..size()-1 in insertion
/// order; McTask::id() is free-form and preserved for display.
class TaskSet {
 public:
  /// Builds a task set.  `num_levels` must be >= the highest task level.
  /// Throws std::invalid_argument if any task's level exceeds num_levels or
  /// if the set is empty.
  TaskSet(std::vector<McTask> tasks, Level num_levels);

  /// Rebuilds the set in place from a fresh task vector — same validation
  /// as the constructor, but the utilization matrix storage is recycled
  /// (UtilMatrix::reset), so the steady state of a trial loop allocates
  /// nothing beyond what `tasks` itself carries.
  void assign(std::vector<McTask> tasks, Level num_levels);

  /// Moves the task vector out for shell recycling, leaving the set EMPTY —
  /// a state every other member (and the class invariant) forbids; the set
  /// must be re-assign()ed before any further use.  Hot-loop arena hook
  /// (gen::TrialArena), not a general API.
  [[nodiscard]] std::vector<McTask> release() noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return tasks_.size(); }
  [[nodiscard]] Level num_levels() const noexcept { return levels_; }

  [[nodiscard]] const McTask& operator[](std::size_t i) const {
    return tasks_[i];
  }
  [[nodiscard]] const std::vector<McTask>& tasks() const noexcept {
    return tasks_;
  }
  [[nodiscard]] auto begin() const noexcept { return tasks_.begin(); }
  [[nodiscard]] auto end() const noexcept { return tasks_.end(); }

  /// Aggregate level utilizations of the whole set.
  [[nodiscard]] const UtilMatrix& utils() const noexcept { return utils_; }

  /// U(k) of the whole set (Eq. 2); shorthand for utils().total_at_or_above.
  [[nodiscard]] double total_util(Level k) const {
    return utils_.total_at_or_above(k);
  }

  /// Sum of u_i(1) over all tasks: the "raw" level-1 system utilization used
  /// by the workload generator's NSU normalization.
  [[nodiscard]] double raw_level1_util() const;

 private:
  std::vector<McTask> tasks_;
  Level levels_;
  UtilMatrix utils_;
};

}  // namespace mcs
