#include "mcs/exp/spec.hpp"

#include <cctype>
#include <initializer_list>
#include <string_view>

#include "mcs/util/fnv.hpp"

namespace mcs::exp {

const char* axis_name(Axis axis) noexcept {
  switch (axis) {
    case Axis::kNsu:
      return "nsu";
    case Axis::kIfc:
      return "ifc";
    case Axis::kAlpha:
      return "alpha";
    case Axis::kCores:
      return "cores";
    case Axis::kLevels:
      return "levels";
  }
  return "?";
}

namespace {

std::vector<double> to_doubles(std::initializer_list<double> values) {
  return {values};
}

SweepSpec figure_spec(std::string name, std::string title, std::string x_label,
                      Axis axis, std::vector<double> values) {
  SweepSpec spec;
  spec.name = std::move(name);
  spec.title = std::move(title);
  spec.x_label = std::move(x_label);
  spec.axis = axis;
  spec.values = std::move(values);
  spec.base = default_gen_params();
  return spec;
}

SweepSpec ablation_spec(std::string name, std::string title,
                        std::vector<std::string> schemes) {
  SweepSpec spec = figure_spec(std::move(name), std::move(title), "NSU",
                               Axis::kNsu, {kNsuRange.begin(), kNsuRange.end()});
  spec.schemes = std::move(schemes);
  return spec;
}

std::vector<SweepSpec> build_specs() {
  std::vector<SweepSpec> specs;

  specs.push_back(figure_spec("fig1", "Figure 1 - varying NSU", "NSU",
                              Axis::kNsu,
                              {kNsuRange.begin(), kNsuRange.end()}));
  specs.push_back(figure_spec("fig2", "Figure 2 - varying IFC", "IFC",
                              Axis::kIfc,
                              {kIfcRange.begin(), kIfcRange.end()}));
  SweepSpec fig3 =
      figure_spec("fig3", "Figure 3 - varying alpha", "alpha", Axis::kAlpha,
                  {kAlphaRange.begin(), kAlphaRange.end()});
  fig3.share_workloads_across_points = true;
  specs.push_back(std::move(fig3));
  specs.push_back(figure_spec("fig4", "Figure 4 - varying cores", "M",
                              Axis::kCores, to_doubles({2, 4, 8, 16, 32})));
  specs.push_back(figure_spec("fig5", "Figure 5 - varying criticality levels",
                              "K", Axis::kLevels,
                              to_doubles({2, 3, 4, 5, 6})));

  specs.push_back(ablation_spec(
      "a1", "Ablation A1 - imbalance control",
      {"CA-TPA/noBal", "CA-TPA(a=0.1)", "CA-TPA(a=0.3)", "CA-TPA(a=0.5)",
       "CA-TPA(a=0.7)", "CA-TPA(a=0.9)"}));
  specs.push_back(ablation_spec(
      "a2", "Ablation A2 - task ordering",
      {"CA-TPA(contrib)", "CA-TPA(maxutil)", "FFD"}));
  specs.push_back(ablation_spec(
      "a3", "Ablation A3 - probe policy",
      {"CA-TPA(min)", "CA-TPA(first)", "CA-TPA(max)"}));
  specs.push_back(ablation_spec(
      "a4", "Ablation A4 - test strength",
      {"FFD/eq4", "FFD", "WFD/eq4", "WFD"}));

  // Head-to-head panels racing the retrieved competitor schemes against
  // CA-TPA (see ALGORITHMS.md).  H1 runs the utilization-difference
  // partitioner on the paper's K=4 workload; H2 drops to dual-criticality,
  // where the demand-bound gates (DBF, GE) are defined, and races the gate
  // strengths.
  specs.push_back(ablation_spec(
      "h1", "Head-to-head H1 - utilization-difference partitioning (K=4)",
      {"CA-TPA", "UD-TPA", "UD-TPA/eq4", "WFD", "FFD"}));
  SweepSpec h2 = ablation_spec(
      "h2", "Head-to-head H2 - dual-criticality acceptance gates (K=2)",
      {"CA-TPA", "UD-TPA", "UD-TPA/ge", "GE-FFD", "DBF-FFD"});
  h2.base.num_levels = 2;
  // The demand-bound gates scan breakpoint lists per probe, so this panel
  // runs a smaller platform than the utilization-based ones: M=4 and a
  // fixed N keep a full sweep affordable while the gate ranking is already
  // visible at this scale.
  h2.base.num_cores = 4;
  h2.base.num_tasks = 48;
  // The K=2 platform saturates later than the K=4 one, and the gate
  // strengths only separate near saturation — sweep the upper NSU range.
  h2.values = {0.6, 0.7, 0.8, 0.85, 0.9, 0.95};
  specs.push_back(std::move(h2));

  return specs;
}

std::string lower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace

const std::vector<SweepSpec>& builtin_specs() {
  static const std::vector<SweepSpec> specs = build_specs();
  return specs;
}

const SweepSpec* find_spec(const std::string& name) {
  const std::string key = lower(name);
  for (const SweepSpec& spec : builtin_specs()) {
    if (spec.name == key) return &spec;
  }
  return nullptr;
}

std::string spec_names() {
  std::string out;
  for (const SweepSpec& spec : builtin_specs()) {
    if (!out.empty()) out += ", ";
    out += spec.name;
  }
  return out;
}

Sweep to_sweep(const SweepSpec& spec, double alpha) {
  Sweep sweep;
  sweep.name = spec.name;
  sweep.x_label = spec.x_label;
  sweep.share_workloads_across_points = spec.share_workloads_across_points;
  sweep.points.reserve(spec.values.size());
  for (const double value : spec.values) {
    gen::GenParams params = spec.base;
    double point_alpha = alpha;
    switch (spec.axis) {
      case Axis::kNsu:
        params.nsu = value;
        break;
      case Axis::kIfc:
        params.ifc = value;
        break;
      case Axis::kAlpha:
        point_alpha = value;
        break;
      case Axis::kCores:
        params.num_cores = static_cast<std::size_t>(value);
        break;
      case Axis::kLevels:
        params.num_levels = static_cast<Level>(value);
        break;
    }
    const std::vector<std::string> schemes = spec.schemes;
    sweep.points.push_back(SweepPoint{
        .x = value,
        .params = params,
        .make_schemes = [schemes, point_alpha] {
          return schemes.empty()
                     ? partition::paper_schemes(point_alpha)
                     : partition::make_scheme_list(schemes, point_alpha);
        }});
  }
  return sweep;
}

std::string spec_fingerprint(const SweepSpec& spec, std::uint64_t trials,
                             std::uint64_t seed, double alpha) {
  util::Fnv1a h;
  h.feed_str("mcs-spec-fingerprint/1");
  h.feed_str(spec.name);
  h.feed_str(axis_name(spec.axis));
  h.feed_u64(spec.values.size());
  for (const double v : spec.values) h.feed_double(v);
  const gen::GenParams& p = spec.base;
  h.feed_u64(p.num_cores);
  h.feed_u64(p.num_levels);
  h.feed_u64(p.random_levels ? 1 : 0);
  h.feed_double(p.nsu);
  h.feed_double(p.ifc);
  h.feed_u64(p.num_tasks);
  for (const auto& [lo, hi] : p.period_classes) {
    h.feed_double(lo);
    h.feed_double(hi);
  }
  h.feed_double(p.wcet_spread_lo);
  h.feed_double(p.wcet_spread_hi);
  h.feed_u64(spec.schemes.size());
  for (const std::string& s : spec.schemes) h.feed_str(s);
  h.feed_u64(spec.share_workloads_across_points ? 1 : 0);
  h.feed_u64(trials);
  h.feed_u64(seed);
  h.feed_double(alpha);
  return h.hex();
}

}  // namespace mcs::exp
