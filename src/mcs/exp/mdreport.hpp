// Markdown rendering of experiment artifacts, and marker-block injection
// into docs.  The docs renderer (tools/mcs_report) rewrites the region
// between
//
//   <!-- mcs_report:begin <spec>[:<metric>] -->
//   ...
//   <!-- mcs_report:end <spec>[:<metric>] -->
//
// with a provenance comment plus a markdown table generated from
// <artifacts>/<spec>.json, so every number in the rendered docs traces to a
// committed artifact and `mcs_report --check` detects drift byte-exactly.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "mcs/exp/orchestrator.hpp"
#include "mcs/obs/trace.hpp"
#include "mcs/util/json.hpp"

namespace mcs::exp {

/// Block names in document order (the text between begin/end markers is the
/// renderer's property; names may repeat).  Throws std::runtime_error on
/// malformed marker structure (unterminated or mismatched blocks).
[[nodiscard]] std::vector<std::string> doc_block_names(const std::string& doc);

/// Returns `doc` with every marker block's body replaced by
/// `body_for(name)` (the markers themselves are kept).  Bodies are expected
/// to be newline-terminated.
[[nodiscard]] std::string replace_blocks(
    const std::string& doc,
    const std::function<std::string(const std::string&)>& body_for);

/// Renders one block body: the provenance comment plus the table for
/// `metric` — "ratio" (default), "u_sys", "u_avg", "imbalance" (scheme
/// columns per x row) or "counters" (observability counter deltas per x).
/// Throws std::runtime_error on an unknown metric.
[[nodiscard]] std::string render_block(const Artifact& artifact,
                                       const std::string& metric);

/// Renders the per-phase timing panel for a "trace:<name>" block from a
/// committed trace summary (<artifacts>/<name>.trace_summary.json): a
/// provenance comment naming the summary file and its recorded source,
/// then a per-span-name count/total/self/p50/p99 self-time table.  The
/// numbers are wall-clock, so they are frozen in the committed summary
/// (regenerated only deliberately via mcs_trace --summary-json); rendering
/// itself is byte-deterministic for a given summary file.
[[nodiscard]] std::string render_trace_block(const obs::TraceSummary& summary,
                                             const std::string& file_name);

/// Renders the mcs_serve latency/throughput panel for a "serve:<stem>"
/// block from a committed <stem>.json bench document (mcs_serve --selftest
/// --out): a provenance comment, a per-task-set-size table of cold/warm
/// client latency percentiles, warm throughput and the server-side cache
/// speedup, and an aggregate footer.  Like trace blocks, the wall-clock
/// numbers are frozen in the committed JSON; rendering is byte-
/// deterministic for a given file.  Throws std::runtime_error when the
/// document is not an mcs_serve bench.
[[nodiscard]] std::string render_serve_block(const util::Json& bench,
                                             const std::string& file_name);

}  // namespace mcs::exp
