// Per-point sweep checkpointing (JSONL).
//
// The orchestrator appends one JSON line per completed experiment point, so
// an interrupted sweep resumes from the last flushed point and — because a
// point's results are a pure function of (spec, point index, trial index,
// seed) — the resumed run's artifacts are bit-identical to an uninterrupted
// run's.  Exactness is achieved by serializing every double as the 16-hex
//-digit bit pattern of its IEEE-754 representation ("x3fe5…"), including
// the Welford accumulator internals (count, mean, m2, raw min/max).
//
// File layout:
//   line 1:  {"kind":"header","format":"mcs-exp-checkpoint/1",
//             "spec":…,"fingerprint":…,"points":…}
//   line 2+: {"kind":"point","index":…,"x":…,"schemes":[…],"counters":{…}}
//
// A truncated trailing line (the process was killed mid-write) is ignored
// on load; a fingerprint mismatch invalidates the whole file.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "mcs/exp/montecarlo.hpp"
#include "mcs/util/json.hpp"

namespace mcs::exp {

/// Exact double <-> 16-hex-digit bit pattern ("x" prefix distinguishes the
/// encoding from ordinary numbers at a glance).
[[nodiscard]] std::string hex_double(double value);
[[nodiscard]] double unhex_double(const std::string& text);

/// Exact Welford <-> JSON.
[[nodiscard]] util::Json welford_to_json(const util::Welford& w);
[[nodiscard]] util::Welford welford_from_json(const util::Json& json);

/// One completed experiment point: its aggregates plus the deterministic
/// observability counter deltas recorded while it ran.
struct PointCheckpoint {
  std::size_t index = 0;
  PointResult result;
  std::map<std::string, std::uint64_t> counters;
};

[[nodiscard]] util::Json point_to_json(const PointCheckpoint& point);
[[nodiscard]] PointCheckpoint point_from_json(const util::Json& json);

/// Everything recovered from a checkpoint file.
struct CheckpointData {
  std::string spec;
  std::string fingerprint;
  std::size_t total_points = 0;
  std::vector<PointCheckpoint> points;
};

/// Loads a checkpoint; nullopt when the file is missing or its header is
/// unreadable.  Unparsable trailing point lines are dropped silently.
[[nodiscard]] std::optional<CheckpointData> load_checkpoint(
    const std::string& path);

/// Append-only checkpoint writer.  `resume` keeps an existing file (whose
/// header the caller has already validated); otherwise the file is
/// truncated and a fresh header written.  Every append flushes.
class CheckpointWriter {
 public:
  CheckpointWriter(const std::string& path, const std::string& spec,
                   const std::string& fingerprint, std::size_t total_points,
                   bool resume);

  void append(const PointCheckpoint& point);

 private:
  std::ofstream out_;
};

}  // namespace mcs::exp
