// Parameter sweeps: the figure-level experiment driver.
//
// A Sweep is a named list of points; each point carries its x value, a
// generator configuration, and the scheme line-up to evaluate (rebuilt per
// point so that scheme parameters like CA-TPA's alpha can vary with x, as in
// Fig. 3).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "mcs/exp/montecarlo.hpp"

namespace mcs::exp {

struct SweepPoint {
  double x = 0.0;
  gen::GenParams params;
  /// Builds the schemes for this point; defaults to the paper line-up with
  /// the default alpha when empty.
  std::function<partition::PartitionerList()> make_schemes;
};

struct Sweep {
  std::string name;     ///< e.g. "fig1"
  std::string x_label;  ///< e.g. "NSU"
  std::vector<SweepPoint> points;
  /// When set, every point draws the *same* workloads (common random
  /// numbers).  Used by Fig. 3, where only CA-TPA's alpha varies with x, so
  /// the baselines stay exactly constant across the sweep as in the paper.
  bool share_workloads_across_points = false;
};

struct SweepResult {
  Sweep sweep;  ///< the configuration that produced it (points retained)
  std::vector<PointResult> points;
};

/// Runs every point of the sweep.  `progress`, when non-null, is invoked
/// after each point with (index, total).
[[nodiscard]] SweepResult run_sweep(
    const Sweep& sweep, const RunOptions& options,
    const std::function<void(std::size_t, std::size_t)>& progress = {});

/// Builders for the paper's five figures.  `base` supplies the non-swept
/// parameters; alpha parameterizes CA-TPA except in fig3 where it is the
/// x axis.
[[nodiscard]] Sweep make_fig1_nsu(const gen::GenParams& base, double alpha);
[[nodiscard]] Sweep make_fig2_ifc(const gen::GenParams& base, double alpha);
[[nodiscard]] Sweep make_fig3_alpha(const gen::GenParams& base);
[[nodiscard]] Sweep make_fig4_cores(const gen::GenParams& base, double alpha);
[[nodiscard]] Sweep make_fig5_levels(const gen::GenParams& base, double alpha);

}  // namespace mcs::exp
