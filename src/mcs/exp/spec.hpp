// Declarative experiment specifications.
//
// A SweepSpec describes a figure- or ablation-level experiment as *data*:
// one swept axis with its values, the non-swept generator parameters, and
// the scheme line-up as registry spec strings (partition::make_scheme_spec
// grammar).  Every consumer — the mcs_exp orchestrator, the bench_fig*/
// bench_ablation_* wrappers, examples/sweep_cli — resolves named specs from
// the same builtin registry, so "fig1" means exactly one thing everywhere
// and the docs pipeline can reference experiments by name.
//
// The seeding contract: trial results are a pure function of
// (spec, point index, trial index, base seed).  Points draw workloads from
// derive_seed(seed, point) unless the spec shares workloads across points
// (common random numbers; fig3), in which case every point uses the base
// seed directly.  This holds for any thread count, which is what makes
// checkpoint resume bit-identical.
#pragma once

#include <string>
#include <vector>

#include "mcs/exp/sweep.hpp"

namespace mcs::exp {

/// The parameter a spec sweeps.
enum class Axis {
  kNsu,     ///< normalized system utilization
  kIfc,     ///< WCET increment factor
  kAlpha,   ///< CA-TPA imbalance threshold (schemes rebuilt per point)
  kCores,   ///< M
  kLevels,  ///< K
};

[[nodiscard]] const char* axis_name(Axis axis) noexcept;

struct SweepSpec {
  std::string name;     ///< registry key, e.g. "fig1", "a3"
  std::string title;    ///< display title, e.g. "Figure 1 - varying NSU"
  std::string x_label;  ///< e.g. "NSU"
  Axis axis = Axis::kNsu;
  std::vector<double> values;  ///< axis values (cores/levels as doubles)
  gen::GenParams base;         ///< the non-swept parameters
  /// Scheme line-up as make_scheme_spec strings; empty selects the paper's
  /// five-scheme line-up at the run-time alpha.
  std::vector<std::string> schemes;
  /// Common random numbers across points (fig3: only alpha varies).
  bool share_workloads_across_points = false;
};

/// The builtin specs: the paper's five figures ("fig1".."fig5"), the
/// CA-TPA ablations ("a1".."a4"), and the competitor head-to-heads
/// ("h1".."h2").
[[nodiscard]] const std::vector<SweepSpec>& builtin_specs();

/// Looks up a builtin spec by name (case-insensitive); nullptr if unknown.
[[nodiscard]] const SweepSpec* find_spec(const std::string& name);

/// Comma-separated builtin spec names (for CLI help/errors).
[[nodiscard]] std::string spec_names();

/// Materializes the spec into a runnable Sweep.  `alpha` parameterizes
/// schemes that do not pin their own alpha; on the kAlpha axis the point's
/// x value overrides it (the paper's Fig. 3).
[[nodiscard]] Sweep to_sweep(const SweepSpec& spec, double alpha);

/// Stable 64-bit fingerprint (as 16 hex digits) of everything that
/// determines a run's numbers: the spec (axis, values, base generator
/// parameters, schemes, sharing) plus trials, seed and alpha.  Checkpoints
/// record it so a resume against a different configuration is detected.
[[nodiscard]] std::string spec_fingerprint(const SweepSpec& spec,
                                           std::uint64_t trials,
                                           std::uint64_t seed, double alpha);

}  // namespace mcs::exp
