#include "mcs/exp/report.hpp"

#include <ostream>

#include <cmath>

#include "mcs/util/csv.hpp"
#include "mcs/util/table.hpp"

namespace mcs::exp {

const char* metric_name(Metric metric) noexcept {
  switch (metric) {
    case Metric::kRatio:
      return "schedulability ratio";
    case Metric::kUsys:
      return "system utilization U_sys";
    case Metric::kUavg:
      return "average core utilization U_avg";
    case Metric::kImbalance:
      return "workload imbalance factor Lambda";
  }
  return "?";
}

namespace {

double metric_value(const SchemeAggregate& agg, Metric metric) {
  switch (metric) {
    case Metric::kRatio:
      return agg.ratio();
    case Metric::kUsys:
      return agg.u_sys.mean();
    case Metric::kUavg:
      return agg.u_avg.mean();
    case Metric::kImbalance:
      return agg.imbalance.mean();
  }
  return 0.0;
}

}  // namespace

void print_panel(std::ostream& os, const SweepResult& result, Metric metric) {
  if (result.points.empty()) return;
  std::vector<std::string> header{result.sweep.x_label};
  for (const SchemeAggregate& agg : result.points.front().schemes) {
    header.push_back(agg.scheme);
  }
  util::Table table(std::move(header));
  for (const PointResult& pt : result.points) {
    table.begin_row();
    table.add_cell(pt.x, 2);
    for (const SchemeAggregate& agg : pt.schemes) {
      table.add_cell(metric_value(agg, metric), 4);
    }
  }
  table.print(os);
}

void print_figure(std::ostream& os, const SweepResult& result,
                  const std::string& title) {
  os << "=== " << title << " ===\n";
  const char panel = 'a';
  const Metric metrics[] = {Metric::kRatio, Metric::kUsys, Metric::kUavg,
                            Metric::kImbalance};
  for (int i = 0; i < 4; ++i) {
    os << '\n'
       << '(' << static_cast<char>(panel + i) << ") " << metric_name(metrics[i])
       << '\n';
    print_panel(os, result, metrics[i]);
  }
  if (!result.points.empty() && !result.points.front().schemes.empty()) {
    os << "\n[" << result.points.front().schemes.front().trials
       << " task sets per point]\n";
  }
}

double ratio_ci95(double ratio, std::uint64_t trials) {
  if (trials == 0) return 0.0;
  return 1.96 * std::sqrt(ratio * (1.0 - ratio) /
                          static_cast<double>(trials));
}

void print_summary(std::ostream& os, const SweepResult& result) {
  if (result.points.empty()) return;
  util::Table table({"scheme", "weighted schedulability",
                     "ratio@max-x (+/- 95% CI)"});
  const PointResult& last = result.points.back();
  for (std::size_t s = 0; s < last.schemes.size(); ++s) {
    double weighted = 0.0;
    double weight_sum = 0.0;
    for (const PointResult& pt : result.points) {
      weighted += pt.x * pt.schemes[s].ratio();
      weight_sum += pt.x;
    }
    table.begin_row();
    table.add_cell(last.schemes[s].scheme);
    table.add_cell(weight_sum > 0.0 ? weighted / weight_sum : 0.0, 4);
    const double r = last.schemes[s].ratio();
    table.add_cell(util::format_double(r, 4) + " +/- " +
                   util::format_double(
                       ratio_ci95(r, last.schemes[s].trials), 4));
  }
  table.print(os);
}

void write_csv(const std::string& path, const SweepResult& result) {
  util::CsvWriter csv(path,
                      {"sweep", "x", "scheme", "trials", "schedulable",
                       "ratio", "ratio_ci95", "u_sys", "u_avg", "imbalance"});
  for (const PointResult& pt : result.points) {
    for (const SchemeAggregate& agg : pt.schemes) {
      csv.write_row({result.sweep.name, util::format_double(pt.x, 4),
                     agg.scheme, std::to_string(agg.trials),
                     std::to_string(agg.schedulable),
                     util::format_double(agg.ratio(), 6),
                     util::format_double(ratio_ci95(agg.ratio(), agg.trials), 6),
                     util::format_double(agg.u_sys.mean(), 6),
                     util::format_double(agg.u_avg.mean(), 6),
                     util::format_double(agg.imbalance.mean(), 6)});
    }
  }
}

}  // namespace mcs::exp
