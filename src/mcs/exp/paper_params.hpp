// The paper's simulation parameters (Table IV and Sec. IV-A defaults).
#pragma once

#include <array>
#include <cstdint>

#include "mcs/gen/taskset_generator.hpp"

namespace mcs::exp {

/// Defaults: M = 8, K = 4, NSU = 0.6, alpha = 0.7, IFC = 0.4.
inline constexpr std::size_t kDefaultCores = 8;
inline constexpr Level kDefaultLevels = 4;
inline constexpr double kDefaultNsu = 0.6;
inline constexpr double kDefaultAlpha = 0.7;
inline constexpr double kDefaultIfc = 0.4;

/// Paper: each data point averages 50,000 task sets.  The bench binaries
/// default lower for laptop runs; pass --trials 50000 for full fidelity.
inline constexpr std::uint64_t kPaperTrials = 50000;
inline constexpr std::uint64_t kDefaultTrials = 2000;

/// Sweep ranges (Table IV / Figs. 1-5).
inline constexpr std::array<double, 5> kNsuRange{0.4, 0.5, 0.6, 0.7, 0.8};
inline constexpr std::array<double, 5> kIfcRange{0.3, 0.4, 0.5, 0.6, 0.7};
inline constexpr std::array<double, 5> kAlphaRange{0.1, 0.3, 0.5, 0.7, 0.9};
inline constexpr std::array<std::size_t, 5> kCoreRange{2, 4, 8, 16, 32};
inline constexpr std::array<Level, 5> kLevelRange{2, 3, 4, 5, 6};

/// The generator configured with the paper defaults.
[[nodiscard]] inline gen::GenParams default_gen_params() {
  gen::GenParams p;
  p.num_cores = kDefaultCores;
  p.num_levels = kDefaultLevels;
  p.nsu = kDefaultNsu;
  p.ifc = kDefaultIfc;
  return p;
}

}  // namespace mcs::exp
