#include "mcs/exp/checkpoint.hpp"

#include <bit>
#include <stdexcept>

namespace mcs::exp {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string hex_double(double value) {
  const auto bits = std::bit_cast<std::uint64_t>(value);
  std::string out(17, 'x');
  for (int i = 0; i < 16; ++i) {
    out[static_cast<std::size_t>(i + 1)] = kHexDigits[(bits >> (60 - 4 * i)) & 0xF];
  }
  return out;
}

double unhex_double(const std::string& text) {
  if (text.size() != 17 || text[0] != 'x') {
    throw std::runtime_error("unhex_double: bad encoding '" + text + "'");
  }
  std::uint64_t bits = 0;
  for (std::size_t i = 1; i < 17; ++i) {
    const int digit = hex_value(text[i]);
    if (digit < 0) {
      throw std::runtime_error("unhex_double: bad encoding '" + text + "'");
    }
    bits = (bits << 4) | static_cast<std::uint64_t>(digit);
  }
  return std::bit_cast<double>(bits);
}

util::Json welford_to_json(const util::Welford& w) {
  util::Json out = util::Json::object();
  out.set("n", util::Json::number(w.count()));
  out.set("mean", util::Json::string(hex_double(w.mean())));
  out.set("m2", util::Json::string(hex_double(w.m2())));
  out.set("min", util::Json::string(hex_double(w.raw_min())));
  out.set("max", util::Json::string(hex_double(w.raw_max())));
  return out;
}

util::Welford welford_from_json(const util::Json& json) {
  return util::Welford::restore(
      static_cast<std::size_t>(json.at("n").as_u64()),
      unhex_double(json.at("mean").as_string()),
      unhex_double(json.at("m2").as_string()),
      unhex_double(json.at("min").as_string()),
      unhex_double(json.at("max").as_string()));
}

util::Json point_to_json(const PointCheckpoint& point) {
  util::Json out = util::Json::object();
  out.set("kind", util::Json::string("point"));
  out.set("index", util::Json::number(point.index));
  out.set("x", util::Json::string(hex_double(point.result.x)));
  util::Json schemes = util::Json::array();
  for (const SchemeAggregate& agg : point.result.schemes) {
    util::Json s = util::Json::object();
    s.set("scheme", util::Json::string(agg.scheme));
    s.set("trials", util::Json::number(agg.trials));
    s.set("schedulable", util::Json::number(agg.schedulable));
    s.set("u_sys", welford_to_json(agg.u_sys));
    s.set("u_avg", welford_to_json(agg.u_avg));
    s.set("imbalance", welford_to_json(agg.imbalance));
    s.set("probes", welford_to_json(agg.probes));
    schemes.push(std::move(s));
  }
  out.set("schemes", std::move(schemes));
  util::Json counters = util::Json::object();
  for (const auto& [name, value] : point.counters) {
    counters.set(name, util::Json::number(value));
  }
  out.set("counters", std::move(counters));
  return out;
}

PointCheckpoint point_from_json(const util::Json& json) {
  PointCheckpoint point;
  point.index = static_cast<std::size_t>(json.at("index").as_u64());
  point.result.x = unhex_double(json.at("x").as_string());
  for (const util::Json& s : json.at("schemes").items()) {
    SchemeAggregate agg;
    agg.scheme = s.at("scheme").as_string();
    agg.trials = s.at("trials").as_u64();
    agg.schedulable = s.at("schedulable").as_u64();
    agg.u_sys = welford_from_json(s.at("u_sys"));
    agg.u_avg = welford_from_json(s.at("u_avg"));
    agg.imbalance = welford_from_json(s.at("imbalance"));
    agg.probes = welford_from_json(s.at("probes"));
    point.result.schemes.push_back(std::move(agg));
  }
  for (const auto& [name, value] : json.at("counters").members()) {
    point.counters[name] = value.as_u64();
  }
  return point;
}

std::optional<CheckpointData> load_checkpoint(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;

  std::string line;
  if (!std::getline(in, line)) return std::nullopt;

  CheckpointData data;
  try {
    const util::Json header = util::Json::parse(line);
    if (header.at("kind").as_string() != "header" ||
        header.at("format").as_string() != "mcs-exp-checkpoint/1") {
      return std::nullopt;
    }
    data.spec = header.at("spec").as_string();
    data.fingerprint = header.at("fingerprint").as_string();
    data.total_points = static_cast<std::size_t>(header.at("points").as_u64());
  } catch (const std::exception&) {
    return std::nullopt;
  }

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    try {
      const util::Json record = util::Json::parse(line);
      if (record.at("kind").as_string() != "point") break;
      data.points.push_back(point_from_json(record));
    } catch (const std::exception&) {
      // A truncated trailing line means the previous run died mid-write;
      // the point it described simply reruns.
      break;
    }
  }
  return data;
}

CheckpointWriter::CheckpointWriter(const std::string& path,
                                   const std::string& spec,
                                   const std::string& fingerprint,
                                   std::size_t total_points, bool resume) {
  out_.open(path, resume ? (std::ios::out | std::ios::app) : std::ios::out);
  if (!out_) {
    throw std::runtime_error("CheckpointWriter: cannot open '" + path + "'");
  }
  if (!resume) {
    util::Json header = util::Json::object();
    header.set("kind", util::Json::string("header"));
    header.set("format", util::Json::string("mcs-exp-checkpoint/1"));
    header.set("spec", util::Json::string(spec));
    header.set("fingerprint", util::Json::string(fingerprint));
    header.set("points", util::Json::number(total_points));
    out_ << header.dump() << '\n';
    out_.flush();
  }
}

void CheckpointWriter::append(const PointCheckpoint& point) {
  out_ << point_to_json(point).dump() << '\n';
  out_.flush();
}

}  // namespace mcs::exp
