#include "mcs/exp/orchestrator.hpp"

#include <filesystem>
#include <fstream>
#include <iterator>
#include <utility>

#include "mcs/exp/report.hpp"
#include "mcs/obs/metrics.hpp"
#include "mcs/obs/trace.hpp"
#include "mcs/util/table.hpp"

namespace mcs::exp {

namespace {

constexpr obs::TraceSite kPointSite{"exp.point", "index", "fingerprint"};

/// The spec fingerprint as a span arg: the 16-hex-digit FNV-1a string,
/// parsed back to its u64 (0 when malformed, which cannot happen for
/// spec_fingerprint output).
std::uint64_t fingerprint_arg(const std::string& fingerprint) noexcept {
  std::uint64_t value = 0;
  for (const char c : fingerprint) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return 0;
    }
    value = (value << 4) | static_cast<std::uint64_t>(digit);
  }
  return value;
}

util::Json artifact_json(const SweepSpec& spec, const SpecRunOptions& options,
                         const std::string& fingerprint,
                         const std::vector<PointCheckpoint>& points) {
  util::Json out = util::Json::object();
  out.set("format", util::Json::string("mcs-exp-artifact/1"));
  out.set("spec", util::Json::string(spec.name));
  out.set("title", util::Json::string(spec.title));
  out.set("x_label", util::Json::string(spec.x_label));
  out.set("axis", util::Json::string(axis_name(spec.axis)));
  out.set("trials", util::Json::number(options.trials));
  out.set("seed", util::Json::number(options.seed));
  out.set("alpha",
          util::Json::number_raw(util::format_double(options.alpha, 4)));
  out.set("source", util::Json::string(options.source));
  out.set("fingerprint", util::Json::string(fingerprint));
  util::Json point_array = util::Json::array();
  for (const PointCheckpoint& point : points) {
    point_array.push(point_to_json(point));
  }
  out.set("points", std::move(point_array));
  return out;
}

}  // namespace

std::string checkpoint_path_for(const SpecRunOptions& options,
                                const SweepSpec& spec) {
  return options.artifacts_dir + "/" + spec.name + ".checkpoint.jsonl";
}

PointCheckpoint run_checkpointed_point(const Sweep& sweep, std::size_t index,
                                       const SpecRunOptions& options,
                                       const std::string& fingerprint,
                                       PointCapture capture) {
  const SweepPoint& pt = sweep.points[index];
  RunOptions run_options{.trials = options.trials,
                         .seed = options.seed,
                         .threads = options.threads};
  if (!sweep.share_workloads_across_points) {
    run_options.seed = gen::derive_seed(options.seed, index);
  }
  // Under a thread sink only this thread's increments are attributed to the
  // point, so its trials must not fan out to pool threads.
  if (capture == PointCapture::kThreadSink) run_options.threads = 1;

  PointCheckpoint point;
  point.index = index;
  const obs::ScopedSpan span(kPointSite, index, fingerprint_arg(fingerprint));
  if (capture == PointCapture::kRegistrySnapshot) {
    obs::MetricsEnabledGuard guard(options.collect_metrics);
    const obs::MetricsSnapshot before = obs::registry().snapshot();
    point.result = run_point(pt.params, pt.make_schemes(), run_options, pt.x);
    const obs::MetricsSnapshot after = obs::registry().snapshot();
    point.counters = obs::counter_deltas(before, after);
    // Histogram values are deterministic per-trial quantities, so their
    // percentiles merge into the counter map as "<name>.pNN" rows and
    // stay checkpoint-safe (unlike wall-clock timers, which are never
    // persisted).
    point.counters.merge(obs::histogram_percentile_deltas(before, after));
  } else if (options.collect_metrics) {
    // Caller keeps the registry globally enabled for the whole parallel
    // section (obs::MetricsEnabledGuard); the sink scopes attribution.
    const obs::ThreadMetricsSink sink;
    point.result = run_point(pt.params, pt.make_schemes(), run_options, pt.x);
    point.counters = obs::registry().resolve_counter_deltas(sink);
    point.counters.merge(obs::registry().resolve_histogram_percentiles(sink));
  } else {
    point.result = run_point(pt.params, pt.make_schemes(), run_options, pt.x);
  }
  return point;
}

ResumeState load_resume_state(const std::string& path,
                              const std::string& fingerprint, std::size_t total,
                              bool resume) {
  ResumeState state;
  state.done.resize(total);
  if (!resume) return state;
  if (std::optional<CheckpointData> cp = load_checkpoint(path);
      cp && cp->fingerprint == fingerprint && cp->total_points == total) {
    for (PointCheckpoint& point : cp->points) {
      if (point.index < total && !state.done[point.index]) {
        state.done[point.index] = std::move(point);
        ++state.resumed_points;
      }
    }
    state.resuming = true;
  }
  return state;
}

void write_spec_artifacts(const SweepSpec& spec, const SpecRunOptions& options,
                          const std::string& fingerprint,
                          std::vector<std::optional<PointCheckpoint>>& done,
                          SpecRunResult& out) {
  std::vector<PointCheckpoint> points;
  points.reserve(done.size());
  for (std::optional<PointCheckpoint>& point : done) {
    points.push_back(std::move(*point));
  }
  out.json_path = options.artifacts_dir + "/" + spec.name + ".json";
  {
    std::ofstream json_out(out.json_path);
    json_out << artifact_json(spec, options, fingerprint, points).dump()
             << '\n';
  }
  out.csv_path = options.artifacts_dir + "/" + spec.name + ".csv";
  write_csv(out.csv_path, out.result);
  if (!options.keep_checkpoint) {
    std::filesystem::remove(out.checkpoint_path);
  }
}

SpecRunResult run_spec(const SweepSpec& spec, const SpecRunOptions& options) {
  const Sweep sweep = to_sweep(spec, options.alpha);
  const std::size_t total = sweep.points.size();

  SpecRunResult out;
  out.fingerprint =
      spec_fingerprint(spec, options.trials, options.seed, options.alpha);
  out.checkpoint_path = checkpoint_path_for(options, spec);

  std::filesystem::create_directories(options.artifacts_dir);

  // Recover completed points from a checkpoint that matches this exact
  // configuration; anything else is discarded.
  ResumeState state = load_resume_state(out.checkpoint_path, out.fingerprint,
                                        total, options.resume);
  std::vector<std::optional<PointCheckpoint>>& done = state.done;
  out.resumed_points = state.resumed_points;

  std::size_t completed = out.resumed_points;
  {
    CheckpointWriter writer(out.checkpoint_path, spec.name, out.fingerprint,
                            total, state.resuming);
    std::size_t ran = 0;
    for (std::size_t i = 0; i < total; ++i) {
      if (done[i]) continue;
      if (options.stop_after_points != 0 && ran >= options.stop_after_points) {
        break;
      }
      PointCheckpoint point = run_checkpointed_point(
          sweep, i, options, out.fingerprint, PointCapture::kRegistrySnapshot);
      writer.append(point);
      done[i] = std::move(point);
      ++ran;
      ++completed;
      if (options.progress) options.progress(completed, total);
    }
  }

  out.complete = completed == total;
  out.result.sweep = sweep;
  for (std::size_t i = 0; i < total; ++i) {
    if (!done[i]) continue;
    out.result.points.push_back(done[i]->result);
    out.point_counters.push_back(done[i]->counters);
  }

  if (out.complete && options.write_artifacts) {
    write_spec_artifacts(spec, options, out.fingerprint, done, out);
  }
  return out;
}

std::optional<Artifact> load_artifact(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  try {
    const util::Json json = util::Json::parse(text);
    if (json.at("format").as_string() != "mcs-exp-artifact/1") {
      return std::nullopt;
    }
    Artifact artifact;
    artifact.spec = json.at("spec").as_string();
    artifact.title = json.at("title").as_string();
    artifact.x_label = json.at("x_label").as_string();
    artifact.trials = json.at("trials").as_u64();
    artifact.seed = json.at("seed").as_u64();
    artifact.alpha = json.at("alpha").as_double();
    artifact.source = json.at("source").as_string();
    artifact.fingerprint = json.at("fingerprint").as_string();
    for (const util::Json& point : json.at("points").items()) {
      artifact.points.push_back(point_from_json(point));
    }
    return artifact;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

SweepResult artifact_to_sweep_result(const Artifact& artifact) {
  SweepResult result;
  result.sweep.name = artifact.spec;
  result.sweep.x_label = artifact.x_label;
  for (const PointCheckpoint& point : artifact.points) {
    result.sweep.points.push_back(SweepPoint{.x = point.result.x,
                                             .params = {},
                                             .make_schemes = {}});
    result.points.push_back(point.result);
  }
  return result;
}

}  // namespace mcs::exp
