// Monte-Carlo evaluation of partitioning schemes (paper Sec. IV).
//
// For one experiment point (a GenParams configuration), `run_point` draws
// `trials` independent task sets and runs every scheme on each, aggregating:
//   * schedulability ratio  -- fraction of sets the scheme partitioned,
//   * U_sys, U_avg, Lambda  -- averaged over the sets the scheme scheduled
//                              (matching the paper: quality metrics consider
//                              only schedulable task sets).
// Trials are distributed over a thread pool; every trial re-derives its RNG
// stream from (seed, trial) and per-chunk partial aggregates are merged in
// chunk index order after the join, so results are *bit-identical* for any
// thread count (pinned by MonteCarloTest.DeterministicAcrossThreadCounts).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mcs/analysis/metrics.hpp"
#include "mcs/exp/paper_params.hpp"
#include "mcs/gen/taskset_generator.hpp"
#include "mcs/partition/registry.hpp"
#include "mcs/util/stats.hpp"

namespace mcs::exp {

/// Aggregated outcome of one scheme at one experiment point.
struct SchemeAggregate {
  std::string scheme;
  std::uint64_t trials = 0;
  std::uint64_t schedulable = 0;
  util::Welford u_sys;
  util::Welford u_avg;
  util::Welford imbalance;
  util::Welford probes;

  [[nodiscard]] double ratio() const noexcept {
    return trials == 0
               ? 0.0
               : static_cast<double>(schedulable) / static_cast<double>(trials);
  }
};

/// One experiment point: an x-axis value plus per-scheme aggregates.
struct PointResult {
  double x = 0.0;
  std::vector<SchemeAggregate> schemes;
};

struct RunOptions {
  std::uint64_t trials = kDefaultTrials;
  std::uint64_t seed = 1;
  std::size_t threads = 0;  ///< 0 = hardware concurrency
};

/// Evaluates `schemes` on `trials` task sets drawn from `params`.
[[nodiscard]] PointResult run_point(const gen::GenParams& params,
                                    const partition::PartitionerList& schemes,
                                    const RunOptions& options, double x_value);

}  // namespace mcs::exp
