// Rendering of sweep results: the four figure panels as aligned tables
// ((a) schedulability ratio, (b) U_sys, (c) U_avg, (d) Lambda), plus a
// long-form CSV dump for external plotting.
#pragma once

#include <iosfwd>
#include <string>

#include "mcs/exp/sweep.hpp"

namespace mcs::exp {

/// Which aggregate a panel shows.
enum class Metric { kRatio, kUsys, kUavg, kImbalance };

[[nodiscard]] const char* metric_name(Metric metric) noexcept;

/// Prints one panel: rows are x values, columns are schemes.
void print_panel(std::ostream& os, const SweepResult& result, Metric metric);

/// Prints all four panels with (a)-(d) captions, paper style.
void print_figure(std::ostream& os, const SweepResult& result,
                  const std::string& title);

/// Prints a per-scheme summary across the sweep: the weighted
/// schedulability (sum_x x * ratio(x) / sum_x x — the standard collapse of
/// an acceptance curve into one number, weighting loaded points more) and
/// the 95% binomial half-width of the ratio at the most loaded point.
void print_summary(std::ostream& os, const SweepResult& result);

/// 95% binomial confidence half-width for a ratio out of n trials.
[[nodiscard]] double ratio_ci95(double ratio, std::uint64_t trials);

/// Appends the sweep in long form:
/// sweep,x,scheme,trials,schedulable,ratio,ratio_ci95,u_sys,u_avg,imbalance.
void write_csv(const std::string& path, const SweepResult& result);

}  // namespace mcs::exp
