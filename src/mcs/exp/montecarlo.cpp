#include "mcs/exp/montecarlo.hpp"

#include "mcs/analysis/placement.hpp"
#include "mcs/util/thread_pool.hpp"

namespace mcs::exp {

PointResult run_point(const gen::GenParams& params,
                      const partition::PartitionerList& schemes,
                      const RunOptions& options, double x_value) {
  PointResult point;
  point.x = x_value;
  point.schemes.resize(schemes.size());
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    point.schemes[s].scheme = schemes[s]->name();
  }

  // Each chunk writes its partial aggregates into its own pre-sized slot;
  // the join below merges them in chunk index order.  Welford::merge is not
  // order-insensitive at the bit level, so merging in completion order
  // would make the result depend on thread scheduling — slot-then-ordered-
  // merge is what makes run_point a pure function of (params, schemes,
  // trials, seed) for *any* thread count, which the checkpoint layer and
  // the parallel sweep executor (svc::) both rely on.
  constexpr std::uint64_t kChunk = 64;
  const std::uint64_t chunks = (options.trials + kChunk - 1) / kChunk;
  std::vector<std::vector<SchemeAggregate>> partials(
      static_cast<std::size_t>(chunks));

  util::parallel_for(
      static_cast<std::size_t>(chunks),
      [&](std::size_t chunk) {
        std::vector<SchemeAggregate>& local = partials[chunk];
        local.resize(schemes.size());
        // One engine + one trial arena per chunk: partition, scratch
        // matrices, utilization caches, the SoA level-utilization planes,
        // the batched-probe scratch AND the task-set shells are all
        // recycled across every trial x scheme of the chunk (reset() /
        // TrialArena re-assign in place), so the whole trial loop runs
        // allocation-free in the steady state of a sweep.
        analysis::PlacementEngine engine;
        gen::TrialArena arena;
        const std::uint64_t begin = static_cast<std::uint64_t>(chunk) * kChunk;
        const std::uint64_t end = std::min(begin + kChunk, options.trials);
        for (std::uint64_t trial = begin; trial < end; ++trial) {
          const TaskSet& ts =
              arena.generate_trial(params, options.seed, trial);
          for (std::size_t s = 0; s < schemes.size(); ++s) {
            SchemeAggregate& agg = local[s];
            ++agg.trials;
            engine.reset(ts, params.num_cores);
            const partition::PlacementOutcome outcome =
                schemes[s]->run_on(engine);
            agg.probes.add(static_cast<double>(engine.probes()));
            if (!outcome.success) continue;
            ++agg.schedulable;
            const analysis::PartitionMetrics m =
                analysis::partition_metrics(engine.partition());
            agg.u_sys.add(m.u_sys);
            agg.u_avg.add(m.u_avg);
            agg.imbalance.add(m.imbalance);
          }
        }
      },
      options.threads);

  for (const std::vector<SchemeAggregate>& local : partials) {
    for (std::size_t s = 0; s < schemes.size(); ++s) {
      point.schemes[s].trials += local[s].trials;
      point.schemes[s].schedulable += local[s].schedulable;
      point.schemes[s].u_sys.merge(local[s].u_sys);
      point.schemes[s].u_avg.merge(local[s].u_avg);
      point.schemes[s].imbalance.merge(local[s].imbalance);
      point.schemes[s].probes.merge(local[s].probes);
    }
  }
  return point;
}

}  // namespace mcs::exp
