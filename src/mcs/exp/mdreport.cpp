#include "mcs/exp/mdreport.hpp"

#include <cmath>
#include <set>
#include <stdexcept>
#include <string_view>

#include "mcs/util/table.hpp"

namespace mcs::exp {

namespace {

constexpr std::string_view kBegin = "<!-- mcs_report:begin ";
constexpr std::string_view kEnd = "<!-- mcs_report:end ";
constexpr std::string_view kClose = " -->";

/// Parses a marker line of the given kind; returns the block name or empty.
std::string marker_name(std::string_view line, std::string_view kind) {
  // Tolerate trailing spaces/CR but nothing else around the marker.
  while (!line.empty() && (line.back() == ' ' || line.back() == '\r')) {
    line.remove_suffix(1);
  }
  if (line.substr(0, kind.size()) != kind) return {};
  if (line.size() < kind.size() + kClose.size()) return {};
  if (line.substr(line.size() - kClose.size()) != kClose) return {};
  return std::string(
      line.substr(kind.size(), line.size() - kind.size() - kClose.size()));
}

/// Calls `on_line(line_without_newline, has_newline)` for every line.
template <typename Fn>
void for_each_line(const std::string& doc, Fn&& on_line) {
  std::size_t begin = 0;
  while (begin < doc.size()) {
    const std::size_t end = doc.find('\n', begin);
    if (end == std::string::npos) {
      on_line(std::string_view(doc).substr(begin), false);
      return;
    }
    on_line(std::string_view(doc).substr(begin, end - begin), true);
    begin = end + 1;
  }
}

std::string format_x(double x) {
  if (x == std::floor(x) && std::abs(x) < 1e6) {
    return std::to_string(static_cast<long long>(x));
  }
  return util::format_double(x, 2);
}

double metric_value(const SchemeAggregate& agg, const std::string& metric) {
  if (metric == "ratio") return agg.ratio();
  if (metric == "u_sys") return agg.u_sys.mean();
  if (metric == "u_avg") return agg.u_avg.mean();
  if (metric == "imbalance") return agg.imbalance.mean();
  throw std::runtime_error("mcs_report: unknown metric '" + metric + "'");
}

std::string provenance_line(const Artifact& artifact) {
  std::string out = "<!-- rendered by mcs_report from ";
  out += artifact.spec;
  out += ".json: spec=";
  out += artifact.spec;
  out += " trials=" + std::to_string(artifact.trials);
  out += " seed=" + std::to_string(artifact.seed);
  out += " alpha=" + util::format_double(artifact.alpha, 2);
  if (!artifact.source.empty()) out += " commit=" + artifact.source;
  out += " fingerprint=" + artifact.fingerprint;
  out += " -->\n";
  return out;
}

std::string metric_table(const Artifact& artifact, const std::string& metric) {
  if (artifact.points.empty()) return "(empty artifact)\n";
  std::string out = "| " + artifact.x_label;
  for (const SchemeAggregate& agg : artifact.points.front().result.schemes) {
    out += " | " + agg.scheme;
  }
  out += " |\n|";
  for (std::size_t i = 0;
       i <= artifact.points.front().result.schemes.size(); ++i) {
    out += "---|";
  }
  out += "\n";
  for (const PointCheckpoint& point : artifact.points) {
    out += "| " + format_x(point.result.x);
    for (const SchemeAggregate& agg : point.result.schemes) {
      out += " | " + util::format_double(metric_value(agg, metric), 4);
    }
    out += " |\n";
  }
  return out;
}

std::string counters_table(const Artifact& artifact) {
  std::set<std::string> names;
  for (const PointCheckpoint& point : artifact.points) {
    for (const auto& [name, value] : point.counters) names.insert(name);
  }
  if (names.empty()) return "(no counters recorded)\n";
  std::string out = "| counter";
  for (const PointCheckpoint& point : artifact.points) {
    out += " | " + artifact.x_label + "=" + format_x(point.result.x);
  }
  out += " |\n|";
  for (std::size_t i = 0; i <= artifact.points.size(); ++i) out += "---|";
  out += "\n";
  for (const std::string& name : names) {
    out += "| " + name;
    for (const PointCheckpoint& point : artifact.points) {
      const auto it = point.counters.find(name);
      out += " | " +
             std::to_string(it == point.counters.end() ? 0 : it->second);
    }
    out += " |\n";
  }
  return out;
}

}  // namespace

std::vector<std::string> doc_block_names(const std::string& doc) {
  std::vector<std::string> names;
  std::string open;  // name of the currently open block, if any
  for_each_line(doc, [&](std::string_view line, bool /*has_newline*/) {
    if (const std::string begin = marker_name(line, kBegin); !begin.empty()) {
      if (!open.empty()) {
        throw std::runtime_error("mcs_report: block '" + open +
                                 "' not closed before '" + begin + "' opens");
      }
      open = begin;
      names.push_back(begin);
    } else if (const std::string end = marker_name(line, kEnd); !end.empty()) {
      if (end != open) {
        throw std::runtime_error("mcs_report: end marker '" + end +
                                 "' does not match open block '" + open + "'");
      }
      open.clear();
    }
  });
  if (!open.empty()) {
    throw std::runtime_error("mcs_report: block '" + open + "' never closed");
  }
  return names;
}

std::string replace_blocks(
    const std::string& doc,
    const std::function<std::string(const std::string&)>& body_for) {
  std::string out;
  out.reserve(doc.size());
  std::string open;
  for_each_line(doc, [&](std::string_view line, bool has_newline) {
    if (const std::string begin = marker_name(line, kBegin); !begin.empty()) {
      open = begin;
      out += line;
      out += '\n';
      out += body_for(begin);
      return;
    }
    if (const std::string end = marker_name(line, kEnd); !end.empty()) {
      open.clear();
      out += line;
      if (has_newline) out += '\n';
      return;
    }
    if (!open.empty()) return;  // old body text, superseded
    out += line;
    if (has_newline) out += '\n';
  });
  return out;
}

std::string render_block(const Artifact& artifact, const std::string& metric) {
  std::string out = provenance_line(artifact);
  if (metric == "counters") {
    out += counters_table(artifact);
  } else {
    out += metric_table(artifact, metric);
  }
  return out;
}

std::string render_trace_block(const obs::TraceSummary& summary,
                               const std::string& file_name) {
  std::string out = "<!-- rendered by mcs_report from " + file_name;
  if (!summary.source.empty()) out += ": source=" + summary.source;
  out += " -->\n";
  if (summary.spans.empty()) return out + "(no spans recorded)\n";
  out +=
      "| span | count | total ms | self ms | p50 self µs | p99 self µs |\n"
      "|---|---|---|---|---|---|\n";
  for (const obs::SpanStats& stats : summary.spans) {
    out += "| " + stats.name;
    out += " | " + std::to_string(stats.count);
    out += " | " +
           util::format_double(static_cast<double>(stats.total_ns) / 1e6, 3);
    out += " | " +
           util::format_double(static_cast<double>(stats.self_ns) / 1e6, 3);
    out += " | " + util::format_double(
                       static_cast<double>(stats.p50_self_ns) / 1e3, 1);
    out += " | " + util::format_double(
                       static_cast<double>(stats.p99_self_ns) / 1e3, 1);
    out += " |\n";
  }
  return out;
}

std::string render_serve_block(const util::Json& bench,
                               const std::string& file_name) {
  const util::Json* kind = bench.find("bench");
  if (kind == nullptr || kind->as_string() != "mcs_serve") {
    throw std::runtime_error("serve block: " + file_name +
                             " is not an mcs_serve bench document");
  }
  std::string out = "<!-- rendered by mcs_report from " + file_name +
                    ": scheme=" + bench.at("scheme").as_string() +
                    " cores=" + std::to_string(bench.at("cores").as_u64()) +
                    " workers=" + std::to_string(bench.at("workers").as_u64()) +
                    " -->\n";
  out +=
      "| N | requests | cold p50 µs | cold p99 µs | warm p50 µs | "
      "warm p99 µs | warm req/s | cache speedup |\n"
      "|---|---|---|---|---|---|---|---|\n";
  for (const util::Json& size : bench.at("sizes").items()) {
    out += "| " + std::to_string(size.at("tasks").as_u64());
    out += " | " + std::to_string(size.at("requests").as_u64());
    out += " | " + util::format_double(size.at("cold").at("p50_us").as_double(), 1);
    out += " | " + util::format_double(size.at("cold").at("p99_us").as_double(), 1);
    out += " | " + util::format_double(size.at("warm").at("p50_us").as_double(), 1);
    out += " | " + util::format_double(size.at("warm").at("p99_us").as_double(), 1);
    out += " | " +
           util::format_double(
               size.at("warm").at("requests_per_sec").as_double(), 0);
    out += " | " + util::format_double(size.at("speedup").as_double(), 2);
    out += " |\n";
  }
  out += "\nAggregate cache speedup **" +
         util::format_double(bench.at("aggregate_speedup").as_double(), 2) +
         "×** over " + std::to_string(bench.at("requests").as_u64()) +
         " requests (" +
         util::format_double(bench.at("requests_per_sec").as_double(), 0) +
         " req/s closed-loop; speedups are server-side cold/warm handling-"
         "time ratios).\n";
  return out;
}

}  // namespace mcs::exp
