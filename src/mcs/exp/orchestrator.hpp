// The experiment orchestrator: runs a SweepSpec end-to-end with resumable
// per-point checkpointing and deterministic observability capture, and
// writes versioned artifacts that the docs renderer (mcs_report) consumes.
//
// Determinism: a point's aggregates depend only on (spec, point index,
// trial index, seed), and the checkpoint stores their exact bit patterns,
// so a sweep interrupted at any point and resumed produces artifacts
// byte-identical to an uninterrupted run.  Observability counter deltas are
// captured around each point under MetricsEnabledGuard; they too are
// deterministic (every counted event derives from deterministic trial
// work), so they are safe to persist.  Timers are wall-clock and never
// enter artifacts.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "mcs/exp/checkpoint.hpp"
#include "mcs/exp/spec.hpp"

namespace mcs::exp {

struct SpecRunOptions {
  std::uint64_t trials = kDefaultTrials;
  std::uint64_t seed = 1;
  std::size_t threads = 0;  ///< 0 = hardware concurrency
  double alpha = kDefaultAlpha;
  /// Where checkpoints and artifacts live.
  std::string artifacts_dir = "artifacts";
  /// Reuse a checkpoint whose fingerprint matches; a stale or mismatching
  /// checkpoint is discarded and the sweep starts fresh.
  bool resume = true;
  /// Keep the checkpoint file after a completed run (tests; normally it is
  /// removed once artifacts are written).
  bool keep_checkpoint = false;
  /// Stop after running this many *new* points (0 = run to completion).
  /// Simulates an interrupted sweep deterministically for resume tests.
  std::size_t stop_after_points = 0;
  /// Write <name>.json / <name>.csv artifacts when the sweep completes.
  bool write_artifacts = true;
  /// Enable the obs metrics registry around each point and record counter
  /// deltas into the checkpoint/artifact.
  bool collect_metrics = true;
  /// Provenance string recorded in artifacts (e.g. the git commit).
  std::string source;
  /// Invoked after every completed point with (points done, total).
  std::function<void(std::size_t, std::size_t)> progress;
};

struct SpecRunResult {
  SweepResult result;  ///< completed points, in index order
  /// Per completed point: the deterministic counter deltas observed.
  std::vector<std::map<std::string, std::uint64_t>> point_counters;
  std::size_t resumed_points = 0;  ///< points recovered from the checkpoint
  bool complete = false;
  std::string fingerprint;
  std::string checkpoint_path;
  std::string json_path;  ///< empty unless an artifact was written
  std::string csv_path;   ///< empty unless an artifact was written
};

/// Runs `spec` per `options`: loads a matching checkpoint, runs the missing
/// points (appending each to the checkpoint as it completes), and on
/// completion writes the JSON + CSV artifacts and removes the checkpoint.
[[nodiscard]] SpecRunResult run_spec(const SweepSpec& spec,
                                     const SpecRunOptions& options);

// -- building blocks (shared with the svc:: parallel sweep executor) -------

/// The checkpoint file location run_spec uses for `spec`.
[[nodiscard]] std::string checkpoint_path_for(const SpecRunOptions& options,
                                              const SweepSpec& spec);

/// How a point's observability deltas are captured.
enum class PointCapture {
  /// Global registry snapshot diff around the point.  Correct only when the
  /// point is the sole metered work in the process (the sequential
  /// orchestrator); the point's trials may then use the full thread pool.
  kRegistrySnapshot,
  /// Thread-local obs::ThreadMetricsSink.  Correct when several points run
  /// concurrently; forces the point's trials onto the calling thread so the
  /// sink sees exactly this point's increments.
  kThreadSink,
};

/// Runs point `index` of `sweep` end-to-end: per-point seed derivation, the
/// exp.point trace span, metrics capture per `capture`.  A pure function of
/// (sweep, index, options.trials/seed/alpha) — both capture modes yield
/// bit-identical checkpoints, which is what makes `--jobs N` artifacts
/// byte-identical to sequential ones.
[[nodiscard]] PointCheckpoint run_checkpointed_point(
    const Sweep& sweep, std::size_t index, const SpecRunOptions& options,
    const std::string& fingerprint, PointCapture capture);

/// Completed points recovered from a checkpoint matching (fingerprint,
/// total); `resuming` reports whether a usable checkpoint existed (its file
/// is then appended to rather than truncated).
struct ResumeState {
  std::vector<std::optional<PointCheckpoint>> done;
  std::size_t resumed_points = 0;
  bool resuming = false;
};

[[nodiscard]] ResumeState load_resume_state(const std::string& path,
                                            const std::string& fingerprint,
                                            std::size_t total, bool resume);

/// Writes <name>.json/<name>.csv for a completed run (and removes the
/// checkpoint unless options.keep_checkpoint), filling out.json_path /
/// out.csv_path.  `done` must hold every point.
void write_spec_artifacts(const SweepSpec& spec, const SpecRunOptions& options,
                          const std::string& fingerprint,
                          std::vector<std::optional<PointCheckpoint>>& done,
                          SpecRunResult& out);

/// A loaded "mcs-exp-artifact/1" file: provenance plus the exact per-point
/// aggregates and counter deltas.
struct Artifact {
  std::string spec;
  std::string title;
  std::string x_label;
  std::uint64_t trials = 0;
  std::uint64_t seed = 0;
  double alpha = 0.0;
  std::string source;
  std::string fingerprint;
  std::vector<PointCheckpoint> points;
};

/// Parses an artifact file; nullopt when missing or not a v1 artifact.
[[nodiscard]] std::optional<Artifact> load_artifact(const std::string& path);

/// Rebuilds a renderable SweepResult (report.hpp consumers) from an
/// artifact.  Sweep points carry only x values — the generator config is
/// not needed for rendering.
[[nodiscard]] SweepResult artifact_to_sweep_result(const Artifact& artifact);

}  // namespace mcs::exp
