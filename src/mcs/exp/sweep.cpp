#include "mcs/exp/sweep.hpp"

namespace mcs::exp {

SweepResult run_sweep(
    const Sweep& sweep, const RunOptions& options,
    const std::function<void(std::size_t, std::size_t)>& progress) {
  SweepResult result;
  result.sweep = sweep;
  result.points.reserve(sweep.points.size());
  for (std::size_t i = 0; i < sweep.points.size(); ++i) {
    const SweepPoint& pt = sweep.points[i];
    const partition::PartitionerList schemes =
        pt.make_schemes ? pt.make_schemes()
                        : partition::paper_schemes(kDefaultAlpha);
    // Offset the seed per point so points draw independent workloads
    // (unless the sweep wants common random numbers across points).
    RunOptions point_options = options;
    if (!sweep.share_workloads_across_points) {
      point_options.seed = gen::derive_seed(options.seed, i);
    }
    result.points.push_back(run_point(pt.params, schemes, point_options, pt.x));
    if (progress) progress(i + 1, sweep.points.size());
  }
  return result;
}

namespace {

SweepPoint make_point(double x, gen::GenParams params, double alpha) {
  return SweepPoint{
      .x = x,
      .params = params,
      .make_schemes = [alpha] { return partition::paper_schemes(alpha); }};
}

}  // namespace

Sweep make_fig1_nsu(const gen::GenParams& base, double alpha) {
  Sweep s{.name = "fig1", .x_label = "NSU", .points = {}};
  for (double nsu : kNsuRange) {
    gen::GenParams p = base;
    p.nsu = nsu;
    s.points.push_back(make_point(nsu, p, alpha));
  }
  return s;
}

Sweep make_fig2_ifc(const gen::GenParams& base, double alpha) {
  Sweep s{.name = "fig2", .x_label = "IFC", .points = {}};
  for (double ifc : kIfcRange) {
    gen::GenParams p = base;
    p.ifc = ifc;
    s.points.push_back(make_point(ifc, p, alpha));
  }
  return s;
}

Sweep make_fig3_alpha(const gen::GenParams& base) {
  Sweep s{.name = "fig3", .x_label = "alpha", .points = {}};
  s.share_workloads_across_points = true;  // only alpha varies with x
  for (double alpha : kAlphaRange) {
    s.points.push_back(make_point(alpha, base, alpha));
  }
  return s;
}

Sweep make_fig4_cores(const gen::GenParams& base, double alpha) {
  Sweep s{.name = "fig4", .x_label = "M", .points = {}};
  for (std::size_t m : kCoreRange) {
    gen::GenParams p = base;
    p.num_cores = m;
    s.points.push_back(make_point(static_cast<double>(m), p, alpha));
  }
  return s;
}

Sweep make_fig5_levels(const gen::GenParams& base, double alpha) {
  Sweep s{.name = "fig5", .x_label = "K", .points = {}};
  for (Level k : kLevelRange) {
    gen::GenParams p = base;
    p.num_levels = k;
    s.points.push_back(make_point(static_cast<double>(k), p, alpha));
  }
  return s;
}

}  // namespace mcs::exp
