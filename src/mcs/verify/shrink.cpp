#include "mcs/verify/shrink.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace mcs::verify {

namespace {

/// Mutable working form of a case (TaskSet is immutable).
struct Working {
  std::vector<McTask> tasks;
  Level levels = 1;
  std::size_t num_cores = 1;

  [[nodiscard]] FuzzCase to_case() const {
    return FuzzCase{TaskSet(tasks, levels), num_cores};
  }
};

Working to_working(const FuzzCase& c) {
  return Working{c.ts.tasks(), c.ts.num_levels(), c.num_cores};
}

class Shrinker {
 public:
  Shrinker(const FailurePredicate& predicate, const ShrinkOptions& options)
      : predicate_(predicate), options_(options) {}

  ShrinkResult run(const FuzzCase& original) {
    Working current = to_working(original);
    for (std::size_t round = 0; round < options_.max_rounds; ++round) {
      const std::size_t steps_before = steps_;
      drop_tasks(current);
      if (options_.reduce_cores) reduce_cores(current);
      if (options_.reduce_levels) {
        reduce_system_levels(current);
        demote_tasks(current);
      }
      if (options_.coarsen_values) coarsen_values(current);
      if (steps_ == steps_before || attempts_ >= options_.max_attempts) break;
    }
    return ShrinkResult{current.to_case(), steps_, attempts_};
  }

 private:
  /// Evaluates the predicate on `candidate`; on success makes it current.
  bool accept(Working& current, const Working& candidate) {
    if (attempts_ >= options_.max_attempts) return false;
    ++attempts_;
    bool fails = false;
    try {
      fails = predicate_(candidate.to_case());
    } catch (const std::exception&) {
      // A reduction that makes the case malformed for the predicate's
      // machinery (e.g. a scheme that needs K == 2) is simply not taken.
      fails = false;
    }
    if (fails) {
      current = candidate;
      ++steps_;
    }
    return fails;
  }

  /// ddmin-style chunked task removal, halving chunk sizes down to 1.
  void drop_tasks(Working& current) {
    for (std::size_t chunk = std::max<std::size_t>(current.tasks.size() / 2, 1);
         chunk >= 1; chunk /= 2) {
      bool removed_any = true;
      while (removed_any && current.tasks.size() > 1) {
        removed_any = false;
        for (std::size_t start = 0;
             start < current.tasks.size() && current.tasks.size() > 1;) {
          Working candidate = current;
          const std::size_t take =
              std::min(chunk, candidate.tasks.size() - start);
          if (take >= candidate.tasks.size()) {  // never empty the set
            start += take;
            continue;
          }
          candidate.tasks.erase(
              candidate.tasks.begin() + static_cast<std::ptrdiff_t>(start),
              candidate.tasks.begin() +
                  static_cast<std::ptrdiff_t>(start + take));
          if (accept(current, candidate)) {
            removed_any = true;  // same start now names the next chunk
          } else {
            start += take;
          }
        }
      }
      if (chunk == 1) break;
    }
  }

  void reduce_cores(Working& current) {
    while (current.num_cores > 1) {
      Working candidate = current;
      --candidate.num_cores;
      if (!accept(current, candidate)) break;
    }
  }

  /// Truncates the whole system to K-1 levels (every WCET vector clipped).
  void reduce_system_levels(Working& current) {
    while (current.levels > 1) {
      Working candidate = current;
      --candidate.levels;
      for (McTask& t : candidate.tasks) {
        if (t.level() > candidate.levels) {
          std::vector<double> wcets(t.wcets().begin(),
                                    t.wcets().begin() + candidate.levels);
          t = McTask(t.id(), std::move(wcets), t.period());
        }
      }
      if (!accept(current, candidate)) break;
    }
  }

  /// Truncates single tasks to their level-1 budget.
  void demote_tasks(Working& current) {
    for (std::size_t i = 0; i < current.tasks.size(); ++i) {
      if (current.tasks[i].level() == 1) continue;
      Working candidate = current;
      const McTask& t = candidate.tasks[i];
      candidate.tasks[i] = McTask(t.id(), {t.wcets().front()}, t.period());
      accept(current, candidate);
    }
  }

  /// Rounds one task's parameters up to integers: the period only grows and
  /// the WCETs round up but stay capped at the (old, smaller) period, so the
  /// task remains well-formed and the WCET vector stays non-decreasing.
  void coarsen_values(Working& current) {
    for (std::size_t i = 0; i < current.tasks.size(); ++i) {
      const McTask& t = current.tasks[i];
      const double period = std::ceil(t.period());
      std::vector<double> wcets = t.wcets();
      bool changed = period != t.period();
      for (double& c : wcets) {
        const double rounded = std::min(std::ceil(c), t.period());
        changed = changed || rounded != c;
        c = rounded;
      }
      if (!changed) continue;
      Working candidate = current;
      candidate.tasks[i] = McTask(t.id(), std::move(wcets), period);
      accept(current, candidate);
    }
  }

  const FailurePredicate& predicate_;
  const ShrinkOptions& options_;
  std::size_t steps_ = 0;
  std::size_t attempts_ = 0;
};

}  // namespace

ShrinkResult shrink(const FuzzCase& original,
                    const FailurePredicate& still_fails,
                    const ShrinkOptions& options) {
  if (!still_fails(original)) {
    throw std::invalid_argument(
        "shrink: the failure predicate does not hold on the original case");
  }
  Shrinker shrinker(still_fails, options);
  return shrinker.run(original);
}

}  // namespace mcs::verify
