#include "mcs/verify/differential.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "mcs/analysis/amc_rta.hpp"
#include "mcs/analysis/core_util.hpp"
#include "mcs/analysis/dbf.hpp"
#include "mcs/analysis/edfvd.hpp"
#include "mcs/analysis/placement.hpp"
#include "mcs/gen/rng.hpp"
#include "mcs/io/taskset_io.hpp"
#include "mcs/partition/dbf_ffd.hpp"
#include "mcs/partition/fp_amc.hpp"
#include "mcs/partition/registry.hpp"

namespace mcs::verify {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Relative comparison that treats two infinities of the same sign as equal.
bool close(double a, double b, double tol = 1e-9) {
  if (a == b) return true;  // covers +-inf and exact matches
  if (!std::isfinite(a) || !std::isfinite(b)) return false;
  return std::abs(a - b) <= tol * std::max({1.0, std::abs(a), std::abs(b)});
}

CheckResult fail(std::string detail) {
  return CheckResult{false, std::move(detail)};
}

/// Rebuilds a core's UtilMatrix from scratch out of its member list.
UtilMatrix rebuild(const TaskSet& ts, const std::vector<std::size_t>& members) {
  UtilMatrix m(ts.num_levels());
  for (const std::size_t t : members) m.add(ts[t]);
  return m;
}

/// Compares an incrementally-maintained matrix against a from-scratch one.
/// Incremental remove is floating-point subtraction, so the comparison is
/// tolerance-based, not bitwise.
bool matrices_agree(const UtilMatrix& incremental, const UtilMatrix& scratch,
                    std::string& why) {
  if (incremental.size() != scratch.size()) {
    why = "task count mismatch";
    return false;
  }
  for (Level j = 1; j <= scratch.num_levels(); ++j) {
    for (Level k = 1; k <= j; ++k) {
      if (!close(incremental.level_util(j, k), scratch.level_util(j, k))) {
        std::ostringstream os;
        os << "U_" << j << "(" << k << ") " << incremental.level_util(j, k)
           << " vs " << scratch.level_util(j, k);
        why = os.str();
        return false;
      }
    }
  }
  return true;
}

}  // namespace

CheckResult check_engine_consistency(const TaskSet& ts, std::size_t num_cores,
                                     std::uint64_t seed) {
  analysis::PlacementEngine engine(ts, num_cores);
  std::vector<std::vector<std::size_t>> members(num_cores);
  std::vector<std::size_t> core_of(ts.size(), kUnassigned);
  gen::Rng rng(gen::derive_seed(seed, 0xE16));

  const auto naive_util = [&](std::size_t core) {
    return analysis::core_utilization(rebuild(ts, members[core]),
                                      analysis::ProbePolicy::kMinOverFeasible);
  };

  const auto verify_state = [&](const char* when) -> CheckResult {
    for (std::size_t m = 0; m < num_cores; ++m) {
      std::string why;
      if (!matrices_agree(engine.partition().utils_on(m),
                          rebuild(ts, members[m]), why)) {
        std::ostringstream os;
        os << "engine/" << when << ": core " << m << " matrix diverged ("
           << why << ")";
        return fail(os.str());
      }
      const double load = rebuild(ts, members[m]).own_level_sum();
      if (!close(engine.load(m), load)) {
        std::ostringstream os;
        os << "engine/" << when << ": core " << m << " load "
           << engine.load(m) << " vs scratch " << load;
        return fail(os.str());
      }
    }
    // The running min/max tracker vs. a direct scan of the cached utils.
    double max_u = 0.0;
    double min_u = kInf;
    for (std::size_t m = 0; m < num_cores; ++m) {
      max_u = std::max(max_u, engine.util(m));
      min_u = std::min(min_u, engine.util(m));
    }
    const double direct = max_u > 0.0 ? (max_u - min_u) / max_u : 0.0;
    if (!close(engine.imbalance(), direct)) {
      std::ostringstream os;
      os << "engine/" << when << ": imbalance " << engine.imbalance()
         << " vs direct " << direct;
      return fail(os.str());
    }
    return {};
  };

  const std::size_t steps = 4 * ts.size() + 8;
  for (std::size_t step = 0; step < steps; ++step) {
    // Occasionally tear a task back out (exercises remove + stale-cache
    // repair, the path CA-TPA-R uses).
    if (engine.partition().assigned_count() > 0 && rng.bernoulli(0.25)) {
      std::size_t t = rng.uniform_int(0, ts.size() - 1);
      while (core_of[t] == kUnassigned) t = (t + 1) % ts.size();
      const std::size_t m = core_of[t];
      engine.uncommit(t);
      std::erase(members[m], t);
      core_of[t] = kUnassigned;
      engine.set_util(m, naive_util(m));
      if (CheckResult r = verify_state("uncommit"); !r.ok) return r;
      continue;
    }
    if (engine.partition().assigned_count() == ts.size()) break;
    std::size_t t = rng.uniform_int(0, ts.size() - 1);
    while (core_of[t] != kUnassigned) t = (t + 1) % ts.size();
    const std::size_t m = rng.uniform_int(0, num_cores - 1);

    // Reference probe: the allocation-per-call free function, evaluated on
    // the engine's own partition state.  (A freshly rebuilt mirror would
    // carry a different floating-point summation history, and near the
    // theta <= mu boundary that genuinely flips feasibility — the
    // incremental-vs-scratch comparison is the tolerance-based one in
    // verify_state.)
    const Partition& ref = engine.partition();
    const analysis::ProbePolicy policies[] = {
        analysis::ProbePolicy::kFirstFeasible,
        analysis::ProbePolicy::kMinOverFeasible,
        analysis::ProbePolicy::kMaxOverFeasible};
    for (const analysis::ProbePolicy policy : policies) {
      const analysis::ProbeResult a = engine.probe(t, m, policy);
      const analysis::ProbeResult b =
          analysis::probe_assignment(ref, t, m, engine.util(m), policy);
      if (a.feasible != b.feasible || !close(a.new_util, b.new_util) ||
          !close(a.increment, b.increment)) {
        std::ostringstream os;
        os << "engine/probe: task " << t << " core " << m << " policy "
           << static_cast<int>(policy) << ": engine {" << a.feasible << ", "
           << a.new_util << ", " << a.increment << "} vs reference {"
           << b.feasible << ", " << b.new_util << ", " << b.increment << "}";
        return fail(os.str());
      }
    }

    // probe_fits vs. an independent basic/improved evaluation of the same
    // hypothetical matrix (same FP state, so any disagreement is logic).
    UtilMatrix hyp = engine.partition().utils_on(m);
    hyp.add(ts[t]);
    const bool fits_scratch = analysis::basic_test(hyp) ||
                              analysis::improved_test(hyp).schedulable;
    if (engine.probe_fits(t, m) != fits_scratch) {
      std::ostringstream os;
      os << "engine/probe_fits: task " << t << " core " << m
         << " disagrees with from-scratch test (" << !fits_scratch
         << " expected " << fits_scratch << ")";
      return fail(os.str());
    }

    const analysis::ProbeResult decide =
        engine.probe(t, m, analysis::ProbePolicy::kMinOverFeasible);
    if (decide.feasible && rng.bernoulli(0.8)) {
      engine.commit(t, m, decide.new_util);
      members[m].push_back(t);
      core_of[t] = m;
      // The cached utilization must equal the core utilization recomputed
      // from the now-committed matrix (identical FP history to the probe's
      // scratch, so this comparison is exact-by-construction).
      const double recomputed = analysis::core_utilization(
          engine.partition().utils_on(m),
          analysis::ProbePolicy::kMinOverFeasible);
      if (!close(engine.util(m), recomputed)) {
        std::ostringstream os;
        os << "engine/commit: core " << m << " cached util " << engine.util(m)
           << " vs recomputed " << recomputed;
        return fail(os.str());
      }
      if (CheckResult r = verify_state("commit"); !r.ok) return r;
    }
  }
  return {};
}

CheckResult check_test_dominance(const TaskSet& ts, std::uint64_t seed) {
  gen::Rng rng(gen::derive_seed(seed, 0xD0));
  // The whole set first, then random subsets.
  for (std::size_t round = 0; round < 16; ++round) {
    UtilMatrix m(ts.num_levels());
    std::size_t picked = 0;
    for (std::size_t i = 0; i < ts.size(); ++i) {
      if (round == 0 || rng.bernoulli(0.4)) {
        m.add(ts[i]);
        ++picked;
      }
    }
    if (picked == 0) continue;
    const bool basic = analysis::basic_test(m);
    const analysis::Theorem1Result improved = analysis::improved_test(m);
    if (basic && !improved.schedulable) {
      std::ostringstream os;
      os << "dominance: Eq.(4) accepts a " << picked
         << "-task subset Theorem 1 rejects (round " << round << ")";
      return fail(os.str());
    }
    if (ts.num_levels() == 2 &&
        analysis::dual_test(m) != improved.schedulable) {
      std::ostringstream os;
      os << "dominance: Eq.(7) and Theorem 1 disagree on a " << picked
         << "-task dual-criticality subset (round " << round << ")";
      return fail(os.str());
    }
  }
  return {};
}

CheckResult check_scheme_claims(const TaskSet& ts, std::size_t num_cores) {
  // The EDF-VD line-up: claimed success means every core passes the gating
  // Eq.(4)-or-Theorem-1 test recomputed from scratch.
  std::vector<std::string> names = {"WFD",    "FFD",     "BFD",
                                    "Hybrid", "CA-TPA",  "CA-TPA-R"};
  if (ts.num_levels() == 2) {
    names.emplace_back("FP-AMC");
    names.emplace_back("DBF-FFD");
  }
  for (const std::string& name : names) {
    const auto scheme = partition::make_scheme(name);
    const partition::PartitionResult result = scheme->run(ts, num_cores);
    if (!result.success) {
      if (result.partition.complete()) {
        return fail("claims: " + name +
                    " reported failure with a complete partition");
      }
      if (!result.failed_task.has_value()) {
        return fail("claims: " + name + " reported failure without a "
                    "failed task");
      }
      continue;
    }
    if (!result.partition.complete()) {
      return fail("claims: " + name +
                  " claimed success with an incomplete partition");
    }
    // Structural invariant: core_of and tasks_on must be two views of the
    // same assignment.
    for (std::size_t m = 0; m < num_cores; ++m) {
      for (const std::size_t t : result.partition.tasks_on(m)) {
        if (result.partition.core_of(t) != m) {
          return fail("claims: " + name + " partition views disagree");
        }
      }
    }
    for (std::size_t m = 0; m < num_cores; ++m) {
      const std::vector<std::size_t>& members = result.partition.tasks_on(m);
      if (members.empty()) continue;
      bool core_ok = true;
      if (name == "FP-AMC") {
        // DM is the partitioner's default assignment; Audsley dominates DM,
        // so a DM-accepted core must also pass the from-scratch DM test.
        core_ok = analysis::amc_rtb_test(ts, members).schedulable;
      } else if (name == "DBF-FFD") {
        core_ok = analysis::dbf_dual_test(ts, members).schedulable;
      } else {
        const UtilMatrix m_scratch = rebuild(ts, members);
        core_ok = analysis::basic_test(m_scratch) ||
                  analysis::improved_test(m_scratch).schedulable;
      }
      if (!core_ok) {
        std::ostringstream os;
        os << "claims: " << name << " claimed success but core " << m << " ("
           << members.size() << " tasks) fails the from-scratch analysis";
        return fail(os.str());
      }
    }
  }
  return {};
}

CheckResult check_io_roundtrip(const TaskSet& ts, std::size_t num_cores,
                               std::uint64_t seed) {
  std::ostringstream out;
  io::write_taskset(out, ts);
  std::istringstream in(out.str());
  const TaskSet parsed = io::read_taskset(in);
  if (parsed.size() != ts.size()) {
    return fail("io: task count changed across round-trip");
  }
  if (parsed.num_levels() != ts.num_levels()) {
    return fail("io: K changed across round-trip");
  }
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (!(parsed[i] == ts[i])) {
      std::ostringstream os;
      os << "io: task " << ts[i].id()
         << " not bit-identical across round-trip";
      return fail(os.str());
    }
  }

  // A random partial partition (unassigned tasks stay unassigned).
  gen::Rng rng(gen::derive_seed(seed, 0x10));
  Partition partition(ts, num_cores);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (rng.bernoulli(0.8)) {
      partition.assign(i, rng.uniform_int(0, num_cores - 1));
    }
  }
  std::ostringstream pout;
  io::write_partition(pout, partition);
  std::istringstream pin(pout.str());
  const Partition reparsed = io::read_partition(pin, ts);
  if (reparsed.num_cores() != partition.num_cores()) {
    return fail("io: core count changed across partition round-trip");
  }
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (reparsed.core_of(i) != partition.core_of(i)) {
      std::ostringstream os;
      os << "io: task " << ts[i].id() << " assignment changed across "
         << "partition round-trip";
      return fail(os.str());
    }
  }
  return {};
}

CheckResult run_differential(const TaskSet& ts, std::size_t num_cores,
                             std::uint64_t seed) {
  if (CheckResult r = check_engine_consistency(ts, num_cores, seed); !r.ok) {
    return r;
  }
  if (CheckResult r = check_test_dominance(ts, seed); !r.ok) return r;
  return check_scheme_claims(ts, num_cores);
}

}  // namespace mcs::verify
