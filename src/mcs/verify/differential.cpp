#include "mcs/verify/differential.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>
#include <string_view>

#include "mcs/analysis/amc_rta.hpp"
#include "mcs/analysis/core_util.hpp"
#include "mcs/analysis/dbf.hpp"
#include "mcs/analysis/edfvd.hpp"
#include "mcs/analysis/ge_test.hpp"
#include "mcs/analysis/placement.hpp"
#include "mcs/gen/rng.hpp"
#include "mcs/io/taskset_io.hpp"
#include "mcs/partition/dbf_ffd.hpp"
#include "mcs/partition/fp_amc.hpp"
#include "mcs/partition/registry.hpp"
#include "mcs/sim/scenario.hpp"

namespace mcs::verify {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Relative comparison that treats two infinities of the same sign as equal.
bool close(double a, double b, double tol = 1e-9) {
  if (a == b) return true;  // covers +-inf and exact matches
  if (!std::isfinite(a) || !std::isfinite(b)) return false;
  return std::abs(a - b) <= tol * std::max({1.0, std::abs(a), std::abs(b)});
}

CheckResult fail(std::string detail) {
  return CheckResult{false, std::move(detail)};
}

/// Rebuilds a core's UtilMatrix from scratch out of its member list.
UtilMatrix rebuild(const TaskSet& ts, const std::vector<std::size_t>& members) {
  UtilMatrix m(ts.num_levels());
  for (const std::size_t t : members) m.add(ts[t]);
  return m;
}

/// Compares an incrementally-maintained matrix against a from-scratch one.
/// Incremental remove is floating-point subtraction, so the comparison is
/// tolerance-based, not bitwise.
bool matrices_agree(const UtilMatrix& incremental, const UtilMatrix& scratch,
                    std::string& why) {
  if (incremental.size() != scratch.size()) {
    why = "task count mismatch";
    return false;
  }
  for (Level j = 1; j <= scratch.num_levels(); ++j) {
    for (Level k = 1; k <= j; ++k) {
      if (!close(incremental.level_util(j, k), scratch.level_util(j, k))) {
        std::ostringstream os;
        os << "U_" << j << "(" << k << ") " << incremental.level_util(j, k)
           << " vs " << scratch.level_util(j, k);
        why = os.str();
        return false;
      }
    }
  }
  return true;
}

}  // namespace

CheckResult check_engine_consistency(const TaskSet& ts, std::size_t num_cores,
                                     std::uint64_t seed) {
  analysis::PlacementEngine engine(ts, num_cores);
  std::vector<std::vector<std::size_t>> members(num_cores);
  std::vector<std::size_t> core_of(ts.size(), kUnassigned);
  gen::Rng rng(gen::derive_seed(seed, 0xE16));

  const auto naive_util = [&](std::size_t core) {
    return analysis::core_utilization(rebuild(ts, members[core]),
                                      analysis::ProbePolicy::kMinOverFeasible);
  };

  const auto verify_state = [&](const char* when) -> CheckResult {
    for (std::size_t m = 0; m < num_cores; ++m) {
      std::string why;
      if (!matrices_agree(engine.partition().utils_on(m),
                          rebuild(ts, members[m]), why)) {
        std::ostringstream os;
        os << "engine/" << when << ": core " << m << " matrix diverged ("
           << why << ")";
        return fail(os.str());
      }
      const double load = rebuild(ts, members[m]).own_level_sum();
      if (!close(engine.load(m), load)) {
        std::ostringstream os;
        os << "engine/" << when << ": core " << m << " load "
           << engine.load(m) << " vs scratch " << load;
        return fail(os.str());
      }
    }
    // The running min/max tracker vs. a direct scan of the cached utils.
    double max_u = 0.0;
    double min_u = kInf;
    for (std::size_t m = 0; m < num_cores; ++m) {
      max_u = std::max(max_u, engine.util(m));
      min_u = std::min(min_u, engine.util(m));
    }
    const double direct = max_u > 0.0 ? (max_u - min_u) / max_u : 0.0;
    if (!close(engine.imbalance(), direct)) {
      std::ostringstream os;
      os << "engine/" << when << ": imbalance " << engine.imbalance()
         << " vs direct " << direct;
      return fail(os.str());
    }
    return {};
  };

  const std::size_t steps = 4 * ts.size() + 8;
  for (std::size_t step = 0; step < steps; ++step) {
    // Occasionally tear a task back out (exercises remove + stale-cache
    // repair, the path CA-TPA-R uses).
    if (engine.partition().assigned_count() > 0 && rng.bernoulli(0.25)) {
      std::size_t t = rng.uniform_int(0, ts.size() - 1);
      while (core_of[t] == kUnassigned) t = (t + 1) % ts.size();
      const std::size_t m = core_of[t];
      engine.uncommit(t);
      std::erase(members[m], t);
      core_of[t] = kUnassigned;
      engine.set_util(m, naive_util(m));
      if (CheckResult r = verify_state("uncommit"); !r.ok) return r;
      continue;
    }
    if (engine.partition().assigned_count() == ts.size()) break;
    std::size_t t = rng.uniform_int(0, ts.size() - 1);
    while (core_of[t] != kUnassigned) t = (t + 1) % ts.size();
    const std::size_t m = rng.uniform_int(0, num_cores - 1);

    // Reference probe: the allocation-per-call free function, evaluated on
    // the engine's own partition state.  (A freshly rebuilt mirror would
    // carry a different floating-point summation history, and near the
    // theta <= mu boundary that genuinely flips feasibility — the
    // incremental-vs-scratch comparison is the tolerance-based one in
    // verify_state.)
    const Partition& ref = engine.partition();
    const analysis::ProbePolicy policies[] = {
        analysis::ProbePolicy::kFirstFeasible,
        analysis::ProbePolicy::kMinOverFeasible,
        analysis::ProbePolicy::kMaxOverFeasible};
    for (const analysis::ProbePolicy policy : policies) {
      const analysis::ProbeResult a = engine.probe(t, m, policy);
      const analysis::ProbeResult b =
          analysis::probe_assignment(ref, t, m, engine.util(m), policy);
      if (a.feasible != b.feasible || !close(a.new_util, b.new_util) ||
          !close(a.increment, b.increment)) {
        std::ostringstream os;
        os << "engine/probe: task " << t << " core " << m << " policy "
           << static_cast<int>(policy) << ": engine {" << a.feasible << ", "
           << a.new_util << ", " << a.increment << "} vs reference {"
           << b.feasible << ", " << b.new_util << ", " << b.increment << "}";
        return fail(os.str());
      }
    }

    // probe_fits vs. an independent basic/improved evaluation of the same
    // hypothetical matrix (same FP state, so any disagreement is logic).
    UtilMatrix hyp = engine.partition().utils_on(m);
    hyp.add(ts[t]);
    const bool fits_scratch = analysis::basic_test(hyp) ||
                              analysis::improved_test(hyp).schedulable;
    if (engine.probe_fits(t, m) != fits_scratch) {
      std::ostringstream os;
      os << "engine/probe_fits: task " << t << " core " << m
         << " disagrees with from-scratch test (" << !fits_scratch
         << " expected " << fits_scratch << ")";
      return fail(os.str());
    }

    const analysis::ProbeResult decide =
        engine.probe(t, m, analysis::ProbePolicy::kMinOverFeasible);
    if (decide.feasible && rng.bernoulli(0.8)) {
      engine.commit(t, m, decide.new_util);
      members[m].push_back(t);
      core_of[t] = m;
      // The cached utilization must equal the core utilization recomputed
      // from the now-committed matrix (identical FP history to the probe's
      // scratch, so this comparison is exact-by-construction).
      const double recomputed = analysis::core_utilization(
          engine.partition().utils_on(m),
          analysis::ProbePolicy::kMinOverFeasible);
      if (!close(engine.util(m), recomputed)) {
        std::ostringstream os;
        os << "engine/commit: core " << m << " cached util " << engine.util(m)
           << " vs recomputed " << recomputed;
        return fail(os.str());
      }
      if (CheckResult r = verify_state("commit"); !r.ok) return r;
    }
  }
  return {};
}

CheckResult check_test_dominance(const TaskSet& ts, std::uint64_t seed) {
  gen::Rng rng(gen::derive_seed(seed, 0xD0));
  // The whole set first, then random subsets.
  for (std::size_t round = 0; round < 16; ++round) {
    UtilMatrix m(ts.num_levels());
    std::vector<std::size_t> picked_members;
    std::size_t picked = 0;
    for (std::size_t i = 0; i < ts.size(); ++i) {
      if (round == 0 || rng.bernoulli(0.4)) {
        m.add(ts[i]);
        picked_members.push_back(i);
        ++picked;
      }
    }
    if (picked == 0) continue;
    const bool basic = analysis::basic_test(m);
    const analysis::Theorem1Result improved = analysis::improved_test(m);
    if (basic && !improved.schedulable) {
      std::ostringstream os;
      os << "dominance: Eq.(4) accepts a " << picked
         << "-task subset Theorem 1 rejects (round " << round << ")";
      return fail(os.str());
    }
    if (ts.num_levels() == 2 &&
        analysis::dual_test(m) != improved.schedulable) {
      std::ostringstream os;
      os << "dominance: Eq.(7) and Theorem 1 disagree on a " << picked
         << "-task dual-criticality subset (round " << round << ")";
      return fail(os.str());
    }
    // The GE test's credited curves lower-bound the dbf.hpp curves at equal
    // scales and its candidate list is a superset, so every DBF acceptance
    // must be a GE acceptance.  The demand scans are costly, so only the
    // first few rounds race them.
    if (ts.num_levels() == 2 && round < 4) {
      if (analysis::dbf_dual_test(ts, picked_members).schedulable &&
          !analysis::ge_dual_test(ts, picked_members).schedulable) {
        std::ostringstream os;
        os << "dominance: the DBF test accepts a " << picked
           << "-task subset the GE test rejects (round " << round << ")";
        return fail(os.str());
      }
    }
  }
  return {};
}

CheckResult check_scheme_claims(const TaskSet& ts, std::size_t num_cores) {
  // The EDF-VD line-up: claimed success means every core passes the gating
  // Eq.(4)-or-Theorem-1 test recomputed from scratch.
  std::vector<std::string> names = {"WFD",      "FFD",    "BFD",   "Hybrid",
                                    "CA-TPA",   "CA-TPA-R", "UD-TPA"};
  if (ts.num_levels() == 2) {
    names.emplace_back("FP-AMC");
    names.emplace_back("DBF-FFD");
    names.emplace_back("GE-FFD");
    names.emplace_back("UD-TPA/ge");
  }
  for (const std::string& name : names) {
    const auto scheme = partition::make_scheme_spec(name);
    const partition::PartitionResult result = scheme->run(ts, num_cores);
    if (!result.success) {
      if (result.partition.complete()) {
        return fail("claims: " + name +
                    " reported failure with a complete partition");
      }
      if (!result.failed_task.has_value()) {
        return fail("claims: " + name + " reported failure without a "
                    "failed task");
      }
      continue;
    }
    if (!result.partition.complete()) {
      return fail("claims: " + name +
                  " claimed success with an incomplete partition");
    }
    // Structural invariant: core_of and tasks_on must be two views of the
    // same assignment.
    for (std::size_t m = 0; m < num_cores; ++m) {
      for (const std::size_t t : result.partition.tasks_on(m)) {
        if (result.partition.core_of(t) != m) {
          return fail("claims: " + name + " partition views disagree");
        }
      }
    }
    for (std::size_t m = 0; m < num_cores; ++m) {
      const std::vector<std::size_t>& members = result.partition.tasks_on(m);
      if (members.empty()) continue;
      bool core_ok = true;
      if (name == "FP-AMC") {
        // DM is the partitioner's default assignment; Audsley dominates DM,
        // so a DM-accepted core must also pass the from-scratch DM test.
        core_ok = analysis::amc_rtb_test(ts, members).schedulable;
      } else if (name == "DBF-FFD") {
        core_ok = analysis::dbf_dual_test(ts, members).schedulable;
      } else if (name == "GE-FFD" || name == "UD-TPA/ge") {
        core_ok = analysis::ge_dual_test(ts, members).schedulable;
      } else {
        const UtilMatrix m_scratch = rebuild(ts, members);
        core_ok = analysis::basic_test(m_scratch) ||
                  analysis::improved_test(m_scratch).schedulable;
      }
      if (!core_ok) {
        std::ostringstream os;
        os << "claims: " << name << " claimed success but core " << m << " ("
           << members.size() << " tasks) fails the from-scratch analysis";
        return fail(os.str());
      }
    }
  }
  return {};
}

CheckResult check_io_roundtrip(const TaskSet& ts, std::size_t num_cores,
                               std::uint64_t seed) {
  std::ostringstream out;
  io::write_taskset(out, ts);
  std::istringstream in(out.str());
  const TaskSet parsed = io::read_taskset(in);
  if (parsed.size() != ts.size()) {
    return fail("io: task count changed across round-trip");
  }
  if (parsed.num_levels() != ts.num_levels()) {
    return fail("io: K changed across round-trip");
  }
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (!(parsed[i] == ts[i])) {
      std::ostringstream os;
      os << "io: task " << ts[i].id()
         << " not bit-identical across round-trip";
      return fail(os.str());
    }
  }

  // A random partial partition (unassigned tasks stay unassigned).
  gen::Rng rng(gen::derive_seed(seed, 0x10));
  Partition partition(ts, num_cores);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (rng.bernoulli(0.8)) {
      partition.assign(i, rng.uniform_int(0, num_cores - 1));
    }
  }
  std::ostringstream pout;
  io::write_partition(pout, partition);
  std::istringstream pin(pout.str());
  const Partition reparsed = io::read_partition(pin, ts);
  if (reparsed.num_cores() != partition.num_cores()) {
    return fail("io: core count changed across partition round-trip");
  }
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (reparsed.core_of(i) != partition.core_of(i)) {
      std::ostringstream os;
      os << "io: task " << ts[i].id() << " assignment changed across "
         << "partition round-trip";
      return fail(os.str());
    }
  }
  return {};
}

CheckResult run_differential(const TaskSet& ts, std::size_t num_cores,
                             std::uint64_t seed) {
  if (CheckResult r = check_engine_consistency(ts, num_cores, seed); !r.ok) {
    return r;
  }
  if (CheckResult r = check_test_dominance(ts, seed); !r.ok) return r;
  return check_scheme_claims(ts, num_cores);
}

namespace {

const char* kind_name(sim::EventKind kind) {
  switch (kind) {
    case sim::EventKind::kRelease: return "Release";
    case sim::EventKind::kReleaseSuppressed: return "ReleaseSuppressed";
    case sim::EventKind::kComplete: return "Complete";
    case sim::EventKind::kModeSwitch: return "ModeSwitch";
    case sim::EventKind::kJobDropped: return "JobDropped";
    case sim::EventKind::kDeadlineMiss: return "DeadlineMiss";
    case sim::EventKind::kIdleReset: return "IdleReset";
    case sim::EventKind::kExecute: return "Execute";
  }
  return "?";
}

std::string event_str(const sim::TraceEvent& e) {
  std::ostringstream os;
  os << std::setprecision(17) << kind_name(e.kind) << "{t=" << e.time
     << " core=" << e.core << " task=" << e.task << " job=" << e.job
     << " mode=" << e.mode << " dl=" << e.deadline << " until=" << e.until
     << "}";
  return os.str();
}

bool events_equal(const sim::TraceEvent& a, const sim::TraceEvent& b) {
  return a.time == b.time && a.core == b.core && a.kind == b.kind &&
         a.task == b.task && a.job == b.job && a.mode == b.mode &&
         a.deadline == b.deadline && a.until == b.until;
}

/// Compares one uint64 CoreStats/TaskSimStats field, naming it on mismatch.
template <typename T>
bool field_diff(std::ostringstream& os, const char* name, const T& fast,
                const T& ref) {
  if (fast == ref) return false;
  os << name << " " << std::setprecision(17) << fast << " vs " << ref;
  return true;
}

}  // namespace

CheckResult compare_sim_runs(const sim::SimResult& fast,
                             const sim::SimResult& ref,
                             const std::vector<sim::TraceEvent>& fast_trace,
                             const std::vector<sim::TraceEvent>& ref_trace) {
  // Traces first: a stats divergence almost always shows up earlier and
  // more precisely as the first differing event.
  const std::size_t n = std::min(fast_trace.size(), ref_trace.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (!events_equal(fast_trace[i], ref_trace[i])) {
      std::ostringstream os;
      os << "parity: trace event " << i << " differs: fast "
         << event_str(fast_trace[i]) << " vs ref " << event_str(ref_trace[i]);
      return fail(os.str());
    }
  }
  if (fast_trace.size() != ref_trace.size()) {
    std::ostringstream os;
    os << "parity: trace length " << fast_trace.size() << " vs "
       << ref_trace.size() << "; first extra event "
       << event_str(fast_trace.size() > ref_trace.size() ? fast_trace[n]
                                                         : ref_trace[n]);
    return fail(os.str());
  }

  if (fast.horizon != ref.horizon) {
    std::ostringstream os;
    os << "parity: horizon " << std::setprecision(17) << fast.horizon
       << " vs " << ref.horizon;
    return fail(os.str());
  }

  if (fast.misses.size() != ref.misses.size()) {
    std::ostringstream os;
    os << "parity: miss count " << fast.misses.size() << " vs "
       << ref.misses.size();
    return fail(os.str());
  }
  for (std::size_t i = 0; i < fast.misses.size(); ++i) {
    const sim::DeadlineMiss& a = fast.misses[i];
    const sim::DeadlineMiss& b = ref.misses[i];
    std::ostringstream os;
    if (field_diff(os, "core", a.core, b.core) ||
        field_diff(os, "task", a.task, b.task) ||
        field_diff(os, "job", a.job, b.job) ||
        field_diff(os, "deadline", a.deadline, b.deadline) ||
        field_diff(os, "detected_at", a.detected_at, b.detected_at) ||
        field_diff(os, "mode", a.mode, b.mode)) {
      return fail("parity: miss " + std::to_string(i) + ": " + os.str());
    }
  }

  if (fast.cores.size() != ref.cores.size()) {
    std::ostringstream os;
    os << "parity: core count " << fast.cores.size() << " vs "
       << ref.cores.size();
    return fail(os.str());
  }
  for (std::size_t m = 0; m < fast.cores.size(); ++m) {
    const sim::CoreStats& a = fast.cores[m];
    const sim::CoreStats& b = ref.cores[m];
    std::ostringstream os;
    if (field_diff(os, "max_mode", a.max_mode, b.max_mode) ||
        field_diff(os, "mode_switches", a.mode_switches, b.mode_switches) ||
        field_diff(os, "jobs_released", a.jobs_released, b.jobs_released) ||
        field_diff(os, "jobs_degraded", a.jobs_degraded, b.jobs_degraded) ||
        field_diff(os, "jobs_completed", a.jobs_completed,
                   b.jobs_completed) ||
        field_diff(os, "jobs_dropped", a.jobs_dropped, b.jobs_dropped) ||
        field_diff(os, "releases_suppressed", a.releases_suppressed,
                   b.releases_suppressed) ||
        field_diff(os, "idle_resets", a.idle_resets, b.idle_resets) ||
        field_diff(os, "preemptions", a.preemptions, b.preemptions)) {
      return fail("parity: core " + std::to_string(m) + ": " + os.str());
    }
    if (a.mode_residency != b.mode_residency) {
      return fail("parity: core " + std::to_string(m) +
                  ": mode_residency differs");
    }
  }

  if (fast.tasks.size() != ref.tasks.size()) {
    std::ostringstream os;
    os << "parity: task stats count " << fast.tasks.size() << " vs "
       << ref.tasks.size();
    return fail(os.str());
  }
  for (std::size_t t = 0; t < fast.tasks.size(); ++t) {
    const sim::TaskSimStats& a = fast.tasks[t];
    const sim::TaskSimStats& b = ref.tasks[t];
    std::ostringstream os;
    if (field_diff(os, "released", a.released, b.released) ||
        field_diff(os, "degraded", a.degraded, b.degraded) ||
        field_diff(os, "completed", a.completed, b.completed) ||
        field_diff(os, "dropped", a.dropped, b.dropped) ||
        field_diff(os, "suppressed", a.suppressed, b.suppressed) ||
        field_diff(os, "missed", a.missed, b.missed) ||
        field_diff(os, "max_response", a.max_response, b.max_response) ||
        field_diff(os, "sum_response", a.sum_response, b.sum_response)) {
      return fail("parity: task " + std::to_string(t) + ": " + os.str());
    }
  }
  return {};
}

CheckResult check_engine_parity(const TaskSet& ts, std::size_t num_cores,
                                std::uint64_t seed) {
  gen::Rng rng(gen::derive_seed(seed, 0xEA127));
  constexpr std::size_t kRounds = 6;
  for (std::size_t round = 0; round < kRounds; ++round) {
    // A random partial partition — parity must hold on incomplete and
    // overloaded placements too, not just feasible ones.
    Partition partition(ts, num_cores);
    for (std::size_t i = 0; i < ts.size(); ++i) {
      if (rng.bernoulli(0.85)) {
        partition.assign(i, rng.uniform_int(0, num_cores - 1));
      }
    }

    sim::SimConfig cfg;
    if (rng.bernoulli(0.3)) {
      cfg.scheduler = sim::SchedulerKind::kFixedPriority;
      if (rng.bernoulli(0.5)) {
        // Explicit ranks drawn from a small pool so duplicates are common:
        // the FP tie-break (rank, task, number) must be engine-independent.
        cfg.fp_priorities.resize(ts.size());
        const std::size_t pool = 1 + ts.size() / 2;
        for (std::size_t i = 0; i < ts.size(); ++i) {
          cfg.fp_priorities[i] = rng.uniform_int(0, pool - 1);
        }
      }
    }
    cfg.use_virtual_deadlines = !rng.bernoulli(0.25);
    if (rng.bernoulli(0.3)) cfg.dual_scale_override = rng.uniform(0.5, 1.0);
    if (rng.bernoulli(0.4)) {
      cfg.sporadic_jitter = rng.uniform(0.05, 0.5);
      cfg.arrival_seed = gen::derive_seed(seed, round * 0x9E37ULL + 1);
    }
    if (rng.bernoulli(0.3)) {
      cfg.degraded_period_stretch = rng.uniform(1.2, 2.5);
    }
    cfg.idle_reset = !rng.bernoulli(0.3);
    cfg.stop_core_on_miss = rng.bernoulli(0.5);
    // Keep fuzz rounds bounded: the exact hyperperiod only when it is
    // small, else an explicit modest horizon.
    const std::optional<double> hp = sim::integral_hyperperiod(ts);
    if (hp.has_value() && *hp <= 5000.0 && rng.bernoulli(0.5)) {
      cfg.use_hyperperiod_horizon = true;
    } else {
      cfg.horizon = rng.uniform(50.0, 400.0);
    }

    const sim::RandomScenario scenario(
        gen::derive_seed(seed, round ^ 0x5CE7A12ULL), rng.uniform(0.0, 0.35));

    sim::SimConfig cfg_fast = cfg;
    cfg_fast.engine = sim::EngineKind::kEventCalendar;
    sim::SimConfig cfg_ref = cfg;
    cfg_ref.engine = sim::EngineKind::kReference;

    sim::RecordingTraceSink fast_sink;
    sim::RecordingTraceSink ref_sink;
    const sim::SimResult fast =
        sim::simulate(partition, scenario, cfg_fast, &fast_sink);
    const sim::SimResult ref =
        sim::simulate(partition, scenario, cfg_ref, &ref_sink);
    if (CheckResult r = compare_sim_runs(fast, ref, fast_sink.events(),
                                         ref_sink.events());
        !r.ok) {
      r.detail += " (round " + std::to_string(round) + ")";
      return r;
    }
  }
  return {};
}

namespace {

/// Strict bitwise double equality (== would conflate +0.0 and -0.0).
bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

}  // namespace

CheckResult check_probe_parity(const TaskSet& ts, std::size_t num_cores,
                               std::uint64_t seed) {
  analysis::PlacementEngine engine(ts, num_cores);
  gen::Rng rng(gen::derive_seed(seed, 0xBA7C4));
  std::vector<std::size_t> core_of(ts.size(), kUnassigned);
  std::vector<analysis::ProbeResult> batched(num_cores);
  std::vector<unsigned char> mask(num_cores, 0);

  // Independent SoA mirror, fed the same add/remove sequence as the
  // engine's internal planes (so it is bitwise identical to them): the raw
  // 2-D kernel is driven directly through it for the forced-backend check.
  analysis::LevelUtilPlanes mirror;
  mirror.reset(ts.num_levels(), num_cores);
  analysis::BatchProbeScratch scratch2d;

  // Compares every batched API against num_cores() scalar probes for one
  // task on the CURRENT engine state.  Scalar and batched results must be
  // bitwise identical — not merely close — and each batched call must count
  // exactly num_cores() probes.
  const auto compare_task = [&](std::size_t t) -> CheckResult {
    const analysis::ProbePolicy policies[] = {
        analysis::ProbePolicy::kFirstFeasible,
        analysis::ProbePolicy::kMinOverFeasible,
        analysis::ProbePolicy::kMaxOverFeasible};
    for (const analysis::ProbePolicy policy : policies) {
      const std::size_t before = engine.probes();
      engine.probe_all_cores(t, policy, batched);
      if (engine.probes() != before + num_cores) {
        std::ostringstream os;
        os << "probe_all_cores accounting: probes() advanced by "
           << engine.probes() - before << ", expected " << num_cores;
        return fail(os.str());
      }
      for (std::size_t m = 0; m < num_cores; ++m) {
        const analysis::ProbeResult scalar = engine.probe(t, m, policy);
        if (scalar.feasible != batched[m].feasible ||
            !bits_equal(scalar.new_util, batched[m].new_util) ||
            !bits_equal(scalar.increment, batched[m].increment)) {
          std::ostringstream os;
          os << std::setprecision(17) << "probe_all_cores: task " << t
             << " core " << m << " policy " << static_cast<int>(policy)
             << ": batched {" << batched[m].feasible << ", "
             << batched[m].new_util << ", " << batched[m].increment
             << "} vs scalar {" << scalar.feasible << ", " << scalar.new_util
             << ", " << scalar.increment << "}";
          return fail(os.str());
        }
      }
    }
    {
      const std::size_t before = engine.probes();
      engine.probe_fits_all(t, mask);
      if (engine.probes() != before + num_cores) {
        return fail("probe_fits_all accounting: expected num_cores() probes");
      }
      for (std::size_t m = 0; m < num_cores; ++m) {
        if ((mask[m] != 0) != engine.probe_fits(t, m)) {
          std::ostringstream os;
          os << "probe_fits_all: task " << t << " core " << m << " mask "
             << static_cast<int>(mask[m]) << " disagrees with scalar";
          return fail(os.str());
        }
      }
    }
    {
      const std::size_t before = engine.probes();
      engine.probe_fits_basic_all(t, mask);
      if (engine.probes() != before + num_cores) {
        return fail(
            "probe_fits_basic_all accounting: expected num_cores() probes");
      }
      for (std::size_t m = 0; m < num_cores; ++m) {
        if ((mask[m] != 0) != engine.probe_fits_basic(t, m)) {
          std::ostringstream os;
          os << "probe_fits_basic_all: task " << t << " core " << m
             << " mask " << static_cast<int>(mask[m])
             << " disagrees with scalar";
          return fail(os.str());
        }
      }
    }
    return {};
  };

  // 2-D trials: a random task list (random T, duplicates allowed, tile-tail
  // sizes included) probed against all cores in one task x core call.  Every
  // row must be bitwise identical to the scalar per-core probes, the call
  // must charge exactly T x num_cores() probes, and the forced-scalar
  // kernel must reproduce the active (possibly SIMD) backend bit for bit.
  std::vector<std::size_t> tile_tasks;
  std::vector<analysis::ProbeResult> batched2d;
  std::vector<double> util2d;
  std::vector<double> util2d_scalar;
  std::vector<unsigned char> mask2d;
  const auto compare_tile = [&]() -> CheckResult {
    const std::size_t T =
        rng.uniform_int(1, std::min<std::size_t>(ts.size(), 17));
    tile_tasks.clear();
    for (std::size_t i = 0; i < T; ++i) {
      tile_tasks.push_back(rng.uniform_int(0, ts.size() - 1));
    }
    batched2d.resize(T * num_cores);
    mask2d.resize(T * num_cores);
    const analysis::ProbePolicy policies[] = {
        analysis::ProbePolicy::kFirstFeasible,
        analysis::ProbePolicy::kMinOverFeasible,
        analysis::ProbePolicy::kMaxOverFeasible};
    for (const analysis::ProbePolicy policy : policies) {
      const std::size_t before = engine.probes();
      engine.probe_all_cores_2d(tile_tasks, policy,
                                std::span<analysis::ProbeResult>(batched2d));
      if (engine.probes() != before + T * num_cores) {
        std::ostringstream os;
        os << "probe_all_cores_2d accounting: probes() advanced by "
           << engine.probes() - before << ", expected " << T * num_cores;
        return fail(os.str());
      }
      for (std::size_t i = 0; i < T; ++i) {
        for (std::size_t m = 0; m < num_cores; ++m) {
          const analysis::ProbeResult& got = batched2d[i * num_cores + m];
          const analysis::ProbeResult scalar =
              engine.probe(tile_tasks[i], m, policy);
          if (scalar.feasible != got.feasible ||
              !bits_equal(scalar.new_util, got.new_util) ||
              !bits_equal(scalar.increment, got.increment)) {
            std::ostringstream os;
            os << std::setprecision(17) << "probe_all_cores_2d: row " << i
               << " (task " << tile_tasks[i] << ") core " << m << " policy "
               << static_cast<int>(policy) << ": 2-D {" << got.feasible
               << ", " << got.new_util << ", " << got.increment
               << "} vs scalar {" << scalar.feasible << ", "
               << scalar.new_util << ", " << scalar.increment << "}";
            return fail(os.str());
          }
        }
      }
    }
    {
      const std::size_t before = engine.probes();
      engine.probe_fits_all_2d(tile_tasks,
                               std::span<unsigned char>(mask2d));
      if (engine.probes() != before + T * num_cores) {
        return fail("probe_fits_all_2d accounting: expected T x cores");
      }
      for (std::size_t i = 0; i < T; ++i) {
        for (std::size_t m = 0; m < num_cores; ++m) {
          if ((mask2d[i * num_cores + m] != 0) !=
              engine.probe_fits(tile_tasks[i], m)) {
            std::ostringstream os;
            os << "probe_fits_all_2d: row " << i << " (task " << tile_tasks[i]
               << ") core " << m << " disagrees with scalar";
            return fail(os.str());
          }
        }
      }
    }
    {
      const std::size_t before = engine.probes();
      engine.probe_fits_basic_all_2d(tile_tasks,
                                     std::span<unsigned char>(mask2d));
      if (engine.probes() != before + T * num_cores) {
        return fail("probe_fits_basic_all_2d accounting: expected T x cores");
      }
      for (std::size_t i = 0; i < T; ++i) {
        for (std::size_t m = 0; m < num_cores; ++m) {
          if ((mask2d[i * num_cores + m] != 0) !=
              engine.probe_fits_basic(tile_tasks[i], m)) {
            std::ostringstream os;
            os << "probe_fits_basic_all_2d: row " << i << " (task "
               << tile_tasks[i] << ") core " << m
               << " disagrees with scalar";
            return fail(os.str());
          }
        }
      }
    }
    // SIMD-vs-scalar: re-run one 2-D utilization pass with the kernel forced
    // to the scalar backend; the lane-ops contract promises bitwise equality.
    if (std::string_view(analysis::batch_probe_backend()) != "scalar") {
      util2d.resize(T * num_cores);
      util2d_scalar.resize(T * num_cores);
      analysis::batch_core_utilization_2d(
          mirror, ts, tile_tasks, analysis::ProbePolicy::kMinOverFeasible,
          scratch2d, util2d.data());
      if (!analysis::set_batch_probe_backend("scalar")) {
        return fail("set_batch_probe_backend(scalar) refused");
      }
      analysis::batch_core_utilization_2d(
          mirror, ts, tile_tasks, analysis::ProbePolicy::kMinOverFeasible,
          scratch2d, util2d_scalar.data());
      if (!analysis::set_batch_probe_backend("auto")) {
        return fail("set_batch_probe_backend(auto) refused");
      }
      for (std::size_t i = 0; i < T * num_cores; ++i) {
        if (!bits_equal(util2d[i], util2d_scalar[i])) {
          std::ostringstream os;
          os << std::setprecision(17) << "2-D SIMD/scalar divergence at lane "
             << i << ": " << util2d[i] << " vs " << util2d_scalar[i]
             << " (backend " << analysis::batch_probe_backend() << ")";
          return fail(os.str());
        }
      }
    }
    return {};
  };

  // Random placement workout: probe-parity must hold on empty, partially
  // filled, overloaded and churned (uncommit/relocate) plane states alike.
  const std::size_t steps = 3 * ts.size() + 8;
  for (std::size_t step = 0; step < steps; ++step) {
    const std::size_t t = rng.uniform_int(0, ts.size() - 1);
    if (CheckResult r = compare_task(t); !r.ok) return r;
    if (step % 4 == 0) {
      if (CheckResult r = compare_tile(); !r.ok) return r;
    }

    if (core_of[t] == kUnassigned) {
      // Place it somewhere (feasible or not: the planes must track the
      // matrices regardless of schedulability).
      const std::size_t m = rng.uniform_int(0, num_cores - 1);
      engine.commit(t, m);
      mirror.add(ts[t], m);
      core_of[t] = m;
    } else if (rng.bernoulli(0.5) && num_cores > 1) {
      const std::size_t m = rng.uniform_int(0, num_cores - 1);
      engine.relocate(t, m);
      mirror.remove(ts[t], core_of[t]);
      mirror.add(ts[t], m);
      core_of[t] = m;
    } else {
      engine.uncommit(t);
      mirror.remove(ts[t], core_of[t]);
      core_of[t] = kUnassigned;
    }
  }
  return {};
}

}  // namespace mcs::verify
