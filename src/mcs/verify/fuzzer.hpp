// Seeded generate -> check -> shrink fuzz loop.
//
// Each trial derives its generator parameters and seeds deterministically
// from (base seed, trial index), so any finding is reproducible from the
// two numbers alone — the parallel schedule never affects what a trial
// does, only when it runs (the same discipline as exp/montecarlo).  Trials
// run in parallel on util::parallel_for in batches until the wall-clock
// budget (or the trial cap) is exhausted; failing trials are shrunk with
// verify::shrink and, when a corpus directory is configured, serialized as
// replayable corpus files.
//
// Targets:
//   * soundness     -- partition with a randomly drawn scheme; accepted
//                      partitions must survive the SoundnessOracle;
//   * differential  -- the incremental-vs-scratch checkers (differential.hpp);
//   * io            -- serialization round-trips;
//   * engine-parity -- the fast and reference simulation kernels must be
//                      bit-identical (check_engine_parity);
//   * probe-parity  -- the batched all-cores placement probes must be
//                      bit-identical to scalar probes (check_probe_parity).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mcs/verify/shrink.hpp"

namespace mcs::verify {

enum class FuzzTarget {
  kSoundness,
  kDifferential,
  kIo,
  kEngineParity,
  kProbeParity
};

/// Parses "soundness" | "differential" | "io" | "engine-parity" |
/// "probe-parity"; throws std::invalid_argument otherwise.
[[nodiscard]] FuzzTarget parse_target(const std::string& name);
[[nodiscard]] std::string target_name(FuzzTarget target);

struct FuzzOptions {
  FuzzTarget target = FuzzTarget::kSoundness;
  /// Wall-clock budget; the loop stops starting new batches once exceeded.
  double budget_s = 30.0;
  std::uint64_t seed = 1;
  /// Hard trial cap; 0 means budget-only.  With a cap and enough budget the
  /// run is fully deterministic (exactly trials 0..max_trials-1 execute).
  std::uint64_t max_trials = 0;
  /// Worker threads for util::parallel_for (0 = hardware default).
  std::size_t threads = 0;
  /// Stop after this many findings (each one is shrunk, which is the
  /// expensive part).
  std::size_t max_findings = 4;
  /// When non-empty, shrunk findings are saved here as corpus files named
  /// <target>_seed<seed>_trial<trial>.mcs.
  std::string corpus_dir;
  ShrinkOptions shrink;
};

/// One shrunk, reproducible failure.
struct Finding {
  std::uint64_t trial = 0;        ///< failing trial index under the base seed
  std::string detail;             ///< what went wrong (oracle/checker text)
  std::string scheme;             ///< accepting scheme (soundness only)
  FuzzCase shrunk;                ///< minimized reproducer
  std::size_t original_tasks = 0;
  std::size_t shrink_steps = 0;
  std::size_t shrink_attempts = 0;
  std::string corpus_path;        ///< where the reproducer was saved ("" if not)
  /// Flight-recorder dump (trace of the failing trial re-run with spans on);
  /// written next to the corpus file, "" when no corpus dir is configured.
  std::string flight_path;
};

struct FuzzReport {
  FuzzTarget target = FuzzTarget::kSoundness;
  std::uint64_t seed = 0;
  std::uint64_t trials = 0;
  double elapsed_s = 0.0;
  std::vector<Finding> findings;

  [[nodiscard]] bool clean() const noexcept { return findings.empty(); }
  [[nodiscard]] double trials_per_sec() const noexcept {
    return elapsed_s > 0.0 ? static_cast<double>(trials) / elapsed_s : 0.0;
  }
};

/// Runs the fuzz loop.  Never throws on findings (they are data); throws
/// std::invalid_argument on nonsensical options.
[[nodiscard]] FuzzReport run_fuzz(const FuzzOptions& options);

/// Re-executes a single trial (the reproduction path printed with every
/// finding); returns the failure detail or empty when the trial is clean.
[[nodiscard]] std::string run_trial(FuzzTarget target, std::uint64_t seed,
                                    std::uint64_t trial);

/// Renders the stats table (trials, trials/sec, findings, shrink steps) plus
/// one line per finding with its reproduction command.
[[nodiscard]] std::string describe(const FuzzReport& report);

}  // namespace mcs::verify
