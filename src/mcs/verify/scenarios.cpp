#include "mcs/verify/scenarios.hpp"

#include <algorithm>
#include <stdexcept>

namespace mcs::verify {

SingleTaskEscalationScenario::SingleTaskEscalationScenario(
    std::size_t target_task_id, Level base)
    : target_id_(target_task_id), base_(base) {
  if (base_ < 1) {
    throw std::invalid_argument(
        "SingleTaskEscalationScenario: base level must be >= 1");
  }
}

double SingleTaskEscalationScenario::execution_time(
    const McTask& task, std::uint64_t /*job*/) const {
  if (task.id() == target_id_) return task.wcet(task.level());
  return task.wcet(std::min(base_, task.level()));
}

ThresholdOverrunScenario::ThresholdOverrunScenario(std::size_t target_task_id,
                                                   Level threshold,
                                                   double epsilon)
    : target_id_(target_task_id), threshold_(threshold), epsilon_(epsilon) {
  if (threshold_ < 1) {
    throw std::invalid_argument(
        "ThresholdOverrunScenario: threshold level must be >= 1");
  }
  if (!(epsilon_ > 0.0) || epsilon_ > 1.0) {
    throw std::invalid_argument(
        "ThresholdOverrunScenario: epsilon must be in (0, 1]");
  }
}

double ThresholdOverrunScenario::execution_time(const McTask& task,
                                                std::uint64_t /*job*/) const {
  if (task.id() != target_id_) return task.wcet(1);
  const Level k = std::min(threshold_, task.level());
  if (k == task.level()) return task.wcet(k);  // no higher band to creep into
  const double at = task.wcet(k);
  const double next = task.wcet(k + 1);
  return std::min(at + epsilon_ * (next - at) + 1e-12 * at, next);
}

}  // namespace mcs::verify
