// Delta-debugging counterexample minimizer.
//
// Given a fuzz case (task set + core count) and a failure predicate that
// holds on it, shrink() searches for a smaller case on which the predicate
// still holds, using reduction moves in decreasing order of aggressiveness:
//
//   * drop tasks      -- ddmin-style chunk removal, halving chunk sizes down
//                        to single tasks;
//   * reduce M        -- fewer cores;
//   * reduce K        -- truncate every WCET vector to K-1 levels;
//   * demote tasks    -- truncate one task's WCET vector to a single level;
//   * coarsen values  -- round periods and WCETs up to integers (rounding up
//                        keeps every task individually feasible: periods only
//                        grow and WCETs stay capped at the period).
//
// Moves repeat to a fixpoint.  Every candidate is validated by re-running
// the predicate, so the minimized case is guaranteed to still fail; the
// fuzz driver serializes it into the corpus as a reproducer.  The search is
// deterministic: no randomness, and the predicate is assumed pure.
#pragma once

#include <cstddef>
#include <functional>

#include "mcs/core/taskset.hpp"

namespace mcs::verify {

/// One fuzzable input: the task set plus the platform size.
struct FuzzCase {
  TaskSet ts;
  std::size_t num_cores = 1;
};

/// True when the failure of interest still reproduces on `candidate`.
using FailurePredicate = std::function<bool(const FuzzCase&)>;

struct ShrinkOptions {
  /// Fixpoint rounds cap (each round tries every move class once).
  std::size_t max_rounds = 8;
  bool reduce_cores = true;
  bool reduce_levels = true;
  bool coarsen_values = true;
  /// Hard cap on predicate evaluations (a soundness predicate simulates, so
  /// the budget matters); the search stops early when exhausted.
  std::size_t max_attempts = 2000;
};

struct ShrinkResult {
  FuzzCase minimized;
  std::size_t steps = 0;     ///< accepted reductions
  std::size_t attempts = 0;  ///< predicate evaluations
};

/// Minimizes `original` (on which `still_fails` must hold) under the moves
/// above.  Throws std::invalid_argument if the predicate rejects the
/// original case.
[[nodiscard]] ShrinkResult shrink(const FuzzCase& original,
                                  const FailurePredicate& still_fails,
                                  const ShrinkOptions& options = {});

}  // namespace mcs::verify
