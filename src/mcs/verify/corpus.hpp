// Corpus files: shrunk reproducers that replay through the verify oracles.
//
// A corpus file is a regular task-set file (io/taskset_io.hpp) whose comment
// header carries replay metadata:
//
//   # fuzz: target=soundness scheme=CA-TPA cores=2 seed=7
//   # note: found by mcs_fuzz --target=soundness --seed=42 (trial 1234)
//   K 2
//   task 0 20 4 9
//   ...
//
// Recognized keys: target (soundness|differential|io|engine-parity), cores,
// seed, scheme
// (soundness only; any name partition::make_scheme accepts).  Because the
// metadata lives in comments, every corpus file is also a plain task-set
// file any other tool can load.
//
// tests/corpus/ holds the standing corpus; corpus_replay_test replays every
// file through replay() on each ctest run, and the fuzz driver appends new
// shrunk findings to the directory named by FuzzOptions::corpus_dir.
#pragma once

#include <cstdint>
#include <string>

#include "mcs/core/taskset.hpp"
#include "mcs/verify/differential.hpp"

namespace mcs::verify {

struct CorpusMeta {
  std::string target = "soundness";  ///< soundness|differential|io|engine-parity
  std::string scheme = "CA-TPA";     ///< accepting scheme (soundness only)
  std::size_t num_cores = 2;
  std::uint64_t seed = 1;
  std::string note;
};

struct CorpusCase {
  CorpusMeta meta;
  TaskSet ts;
};

/// Parses a corpus file (metadata comments + task set).  Throws
/// std::runtime_error on malformed input or unknown metadata keys.
[[nodiscard]] CorpusCase load_corpus_case(const std::string& path);

/// Serializes a corpus case (round-trips through load_corpus_case).
void save_corpus_case(const std::string& path, const CorpusCase& c);

/// Replays a case through the oracle its target names.  ok means the
/// current tree handles the reproducer correctly:
///   * soundness    -- the named scheme either rejects the set or the
///                     accepted partition survives the SoundnessOracle;
///   * differential -- run_differential + the io round-trip pass;
///   * io            -- the io round-trip passes;
///   * engine-parity -- check_engine_parity passes (fast kernel == reference).
[[nodiscard]] CheckResult replay(const CorpusCase& c);

/// On failure, dumps the current trace rings as a flight record
/// (`<dir>/<tag>.flight.json`, obs/flight_recorder.hpp) and appends the
/// dump path to the failure detail.  ok results — and failures whose dump
/// could not be written — pass through unchanged.
[[nodiscard]] CheckResult attach_flight_record(CheckResult r,
                                               const std::string& dir,
                                               const std::string& tag);

/// replay() under span tracing: enables the trace gate, clears the rings,
/// replays the case, and on failure attaches a flight-record dump so the
/// failure message points at a timeline of what the replay actually did.
[[nodiscard]] CheckResult replay_with_flight_record(const CorpusCase& c,
                                                    const std::string& dump_dir,
                                                    const std::string& tag);

}  // namespace mcs::verify
