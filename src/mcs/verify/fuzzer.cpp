#include "mcs/verify/fuzzer.hpp"

#include <chrono>
#include <cmath>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "mcs/gen/taskset_generator.hpp"
#include "mcs/obs/flight_recorder.hpp"
#include "mcs/obs/trace.hpp"
#include "mcs/partition/registry.hpp"
#include "mcs/util/table.hpp"
#include "mcs/util/thread_pool.hpp"
#include "mcs/verify/corpus.hpp"
#include "mcs/verify/differential.hpp"
#include "mcs/verify/oracle.hpp"

namespace mcs::verify {

namespace {

/// Everything a trial does is derived from these, which in turn are derived
/// from (base seed, trial index) alone.
struct TrialParams {
  gen::GenParams gp;
  std::string scheme;
  bool integral_periods = false;
  std::uint64_t case_seed = 0;   ///< oracle / differential / io seed
  std::uint64_t gen_seed = 0;    ///< taskset generator seed
};

TrialParams draw_params(std::uint64_t seed, std::uint64_t trial) {
  gen::Rng rng(gen::derive_seed(seed, trial));
  TrialParams p;
  p.gp.num_cores = 1 + rng.uniform_int(0, 3);
  p.gp.num_levels = static_cast<Level>(1 + rng.uniform_int(0, 4));
  // Small sets keep simulation and shrinking cheap while still covering the
  // multi-core interactions; the short periods bound the 20x horizon.
  p.gp.num_tasks = 3 + rng.uniform_int(0, 21);
  p.gp.nsu = rng.uniform(0.35, 0.95);
  p.gp.ifc = rng.uniform(0.2, 1.0);
  p.gp.period_classes = {{{10.0, 40.0}, {20.0, 60.0}, {40.0, 80.0}}};
  std::vector<std::string> pool = {"CA-TPA", "CA-TPA-R", "FFD",   "BFD",
                                   "WFD",    "Hybrid",   "UD-TPA"};
  if (p.gp.num_levels == 2) {
    pool.emplace_back("FP-AMC");
    pool.emplace_back("DBF-FFD");
    pool.emplace_back("GE-FFD");
    pool.emplace_back("UD-TPA/ge");
  }
  p.scheme = pool[rng.uniform_int(0, pool.size() - 1)];
  // Integral periods open the exact-hyperperiod oracle family.
  p.integral_periods = rng.bernoulli(0.35);
  p.case_seed = gen::derive_seed(seed, trial ^ 0xACEDULL);
  p.gen_seed = gen::derive_seed(seed, 0x9e0b5ULL);
  return p;
}

/// Rounds every period up to an integer (WCETs stay within the old, smaller
/// period, so tasks remain well-formed).
TaskSet integralize(const TaskSet& ts) {
  std::vector<McTask> tasks;
  tasks.reserve(ts.size());
  for (const McTask& t : ts) {
    tasks.emplace_back(t.id(), t.wcets(), std::ceil(t.period()));
  }
  return TaskSet(std::move(tasks), ts.num_levels());
}

FuzzCase make_case(const TrialParams& p, std::uint64_t trial) {
  TaskSet ts = gen::generate_trial(p.gp, p.gen_seed, trial);
  if (p.integral_periods) ts = integralize(ts);
  return FuzzCase{std::move(ts), p.gp.num_cores};
}

/// The per-target failure predicate (also the shrinker's).  Returns the
/// failure detail, or empty when the case is clean.
std::string check_case(FuzzTarget target, const FuzzCase& c,
                       const std::string& scheme, std::uint64_t case_seed) {
  switch (target) {
    case FuzzTarget::kIo: {
      const CheckResult r = check_io_roundtrip(c.ts, c.num_cores, case_seed);
      return r.ok ? std::string() : r.detail;
    }
    case FuzzTarget::kDifferential: {
      const CheckResult r = run_differential(c.ts, c.num_cores, case_seed);
      return r.ok ? std::string() : r.detail;
    }
    case FuzzTarget::kEngineParity: {
      const CheckResult r = check_engine_parity(c.ts, c.num_cores, case_seed);
      return r.ok ? std::string() : r.detail;
    }
    case FuzzTarget::kProbeParity: {
      const CheckResult r = check_probe_parity(c.ts, c.num_cores, case_seed);
      return r.ok ? std::string() : r.detail;
    }
    case FuzzTarget::kSoundness: {
      const auto partitioner = partition::make_scheme_spec(scheme);
      const partition::PartitionResult result =
          partitioner->run(c.ts, c.num_cores);
      if (!result.success) return {};  // nothing was promised
      const SoundnessOracle oracle(
          options_for_scheme(scheme, result.partition, case_seed));
      const OracleVerdict verdict = oracle.check(result.partition);
      return verdict.sound ? std::string()
                           : scheme + ": " + verdict.describe();
    }
  }
  return {};
}

Finding shrink_finding(const FuzzOptions& options, const TrialParams& p,
                       std::uint64_t trial, std::string detail) {
  const FuzzCase original = make_case(p, trial);
  const FailurePredicate predicate = [&](const FuzzCase& candidate) {
    return !check_case(options.target, candidate, p.scheme, p.case_seed)
                .empty();
  };
  ShrinkResult shrunk = shrink(original, predicate, options.shrink);
  return Finding{
      trial,
      std::move(detail),
      options.target == FuzzTarget::kSoundness ? p.scheme : std::string{},
      std::move(shrunk.minimized),
      original.ts.size(),
      shrunk.steps,
      shrunk.attempts,
      std::string{}};
}

void save_finding(const FuzzOptions& options, Finding& finding) {
  if (options.corpus_dir.empty()) return;
  std::ostringstream path;
  path << options.corpus_dir << '/' << target_name(options.target) << "_seed"
       << options.seed << "_trial" << finding.trial << ".mcs";
  CorpusMeta meta;
  meta.target = target_name(options.target);
  meta.scheme = finding.scheme.empty() ? "CA-TPA" : finding.scheme;
  meta.num_cores = finding.shrunk.num_cores;
  meta.seed = draw_params(options.seed, finding.trial).case_seed;
  std::ostringstream note;
  note << "found by mcs_fuzz --target=" << target_name(options.target)
       << " --seed=" << options.seed << " (trial " << finding.trial << "); "
       << finding.detail;
  meta.note = note.str();
  save_corpus_case(path.str(), CorpusCase{std::move(meta), finding.shrunk.ts});
  finding.corpus_path = path.str();
}

/// Re-runs the failing trial with span tracing enabled and dumps the trace
/// rings next to the corpus file, so every saved reproducer carries a
/// timeline of the placement/sim activity that led into the failure.  Runs
/// in the serial shrink phase, so the quiescence contract holds.
void record_flight(const FuzzOptions& options, Finding& finding) {
  if (options.corpus_dir.empty()) return;
  const obs::TraceEnabledGuard guard(true);
  obs::reset_trace();
  (void)run_trial(options.target, options.seed, finding.trial);
  std::ostringstream tag;
  tag << target_name(options.target) << "_seed" << options.seed << "_trial"
      << finding.trial;
  finding.flight_path =
      obs::dump_flight_record(options.corpus_dir, tag.str(), finding.detail);
}

}  // namespace

FuzzTarget parse_target(const std::string& name) {
  if (name == "soundness") return FuzzTarget::kSoundness;
  if (name == "differential") return FuzzTarget::kDifferential;
  if (name == "io") return FuzzTarget::kIo;
  if (name == "engine-parity") return FuzzTarget::kEngineParity;
  if (name == "probe-parity") return FuzzTarget::kProbeParity;
  throw std::invalid_argument(
      "parse_target: unknown target '" + name +
      "' (soundness|differential|io|engine-parity|probe-parity)");
}

std::string target_name(FuzzTarget target) {
  switch (target) {
    case FuzzTarget::kSoundness:
      return "soundness";
    case FuzzTarget::kDifferential:
      return "differential";
    case FuzzTarget::kIo:
      return "io";
    case FuzzTarget::kEngineParity:
      return "engine-parity";
    case FuzzTarget::kProbeParity:
      return "probe-parity";
  }
  return "?";
}

std::string run_trial(FuzzTarget target, std::uint64_t seed,
                      std::uint64_t trial) {
  const TrialParams p = draw_params(seed, trial);
  return check_case(target, make_case(p, trial), p.scheme, p.case_seed);
}

FuzzReport run_fuzz(const FuzzOptions& options) {
  if (options.budget_s <= 0.0 && options.max_trials == 0) {
    throw std::invalid_argument(
        "run_fuzz: need a positive budget or a trial cap");
  }
  const auto start = std::chrono::steady_clock::now();
  const auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  FuzzReport report;
  report.target = options.target;
  report.seed = options.seed;

  const std::size_t workers = options.threads != 0
                                  ? options.threads
                                  : util::default_thread_count();
  const std::uint64_t batch = std::max<std::uint64_t>(8 * workers, 32);
  std::uint64_t next_trial = 0;

  while (report.findings.size() < options.max_findings) {
    if (options.budget_s > 0.0 && elapsed() >= options.budget_s) break;
    std::uint64_t n = batch;
    if (options.max_trials != 0) {
      if (next_trial >= options.max_trials) break;
      n = std::min<std::uint64_t>(n, options.max_trials - next_trial);
    }
    // Failures are rare: record details in per-trial slots and shrink
    // afterwards, serially and in trial order, so reports are independent of
    // the parallel schedule.
    std::vector<std::string> failures(static_cast<std::size_t>(n));
    util::parallel_for(
        static_cast<std::size_t>(n),
        [&](std::size_t i) {
          failures[i] =
              run_trial(options.target, options.seed, next_trial + i);
        },
        options.threads);
    for (std::size_t i = 0; i < failures.size(); ++i) {
      if (failures[i].empty()) continue;
      if (report.findings.size() >= options.max_findings) break;
      const std::uint64_t trial = next_trial + i;
      const TrialParams p = draw_params(options.seed, trial);
      Finding finding =
          shrink_finding(options, p, trial, std::move(failures[i]));
      save_finding(options, finding);
      record_flight(options, finding);
      report.findings.push_back(std::move(finding));
    }
    next_trial += n;
    report.trials = next_trial;
  }
  report.elapsed_s = elapsed();
  return report;
}

std::string describe(const FuzzReport& report) {
  std::ostringstream os;
  util::Table table({"target", "seed", "trials", "trials/s", "findings",
                     "shrink steps", "elapsed (s)"});
  table.begin_row();
  table.add_cell(target_name(report.target));
  table.add_cell(std::to_string(report.seed));
  table.add_cell(static_cast<std::size_t>(report.trials));
  table.add_cell(report.trials_per_sec(), 1);
  table.add_cell(report.findings.size());
  std::size_t steps = 0;
  for (const Finding& f : report.findings) steps += f.shrink_steps;
  table.add_cell(steps);
  table.add_cell(report.elapsed_s, 2);
  table.print(os);
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    os << "\nfinding #" << i + 1 << " (trial " << f.trial;
    if (!f.scheme.empty()) os << ", scheme " << f.scheme;
    os << "): " << f.detail << "\n  shrunk " << f.original_tasks << " -> "
       << f.shrunk.ts.size() << " tasks (K=" << f.shrunk.ts.num_levels()
       << ", M=" << f.shrunk.num_cores << ") in " << f.shrink_steps
       << " steps / " << f.shrink_attempts << " attempts";
    if (!f.corpus_path.empty()) {
      os << "\n  reproducer: " << f.corpus_path << " (replay with "
         << "mcs_fuzz --replay <file>)";
    }
    if (!f.flight_path.empty()) {
      os << "\n  flight recording: " << f.flight_path;
    }
    os << "\n  reproduce: mcs_fuzz --target=" << target_name(report.target)
       << " --seed=" << report.seed << " --max-trials=" << f.trial + 1
       << " --budget-s=0";
  }
  return os.str();
}

}  // namespace mcs::verify
