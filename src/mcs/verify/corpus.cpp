#include "mcs/verify/corpus.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "mcs/io/taskset_io.hpp"
#include "mcs/obs/flight_recorder.hpp"
#include "mcs/obs/trace.hpp"
#include "mcs/partition/registry.hpp"
#include "mcs/verify/oracle.hpp"

namespace mcs::verify {

namespace {

constexpr const char* kMetaPrefix = "# fuzz:";
constexpr const char* kNotePrefix = "# note:";

void parse_meta_line(const std::string& line, CorpusMeta& meta,
                     const std::string& path) {
  std::istringstream is(line.substr(std::string(kMetaPrefix).size()));
  std::string token;
  while (is >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("corpus: " + path +
                               ": malformed metadata token '" + token + "'");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "target") {
      if (value != "soundness" && value != "differential" && value != "io" &&
          value != "engine-parity" && value != "probe-parity") {
        throw std::runtime_error("corpus: " + path + ": unknown target '" +
                                 value + "'");
      }
      meta.target = value;
    } else if (key == "scheme") {
      meta.scheme = value;
    } else if (key == "cores") {
      meta.num_cores = static_cast<std::size_t>(std::stoull(value));
      if (meta.num_cores == 0) {
        throw std::runtime_error("corpus: " + path + ": cores must be >= 1");
      }
    } else if (key == "seed") {
      meta.seed = std::stoull(value);
    } else {
      throw std::runtime_error("corpus: " + path + ": unknown metadata key '" +
                               key + "'");
    }
  }
}

}  // namespace

CorpusCase load_corpus_case(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("corpus: cannot open '" + path + "'");
  }
  std::ostringstream content;
  CorpusMeta meta;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(kMetaPrefix, 0) == 0) {
      parse_meta_line(line, meta, path);
    } else if (line.rfind(kNotePrefix, 0) == 0) {
      meta.note = line.substr(std::string(kNotePrefix).size() + 1);
    }
    content << line << '\n';
  }
  std::istringstream body(content.str());
  return CorpusCase{std::move(meta), io::read_taskset(body)};
}

void save_corpus_case(const std::string& path, const CorpusCase& c) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("corpus: cannot open '" + path +
                             "' for writing");
  }
  out << kMetaPrefix << " target=" << c.meta.target;
  if (c.meta.target == "soundness") out << " scheme=" << c.meta.scheme;
  out << " cores=" << c.meta.num_cores << " seed=" << c.meta.seed << '\n';
  if (!c.meta.note.empty()) out << kNotePrefix << ' ' << c.meta.note << '\n';
  io::write_taskset(out, c.ts);
}

CheckResult replay(const CorpusCase& c) {
  if (c.meta.target == "io") {
    return check_io_roundtrip(c.ts, c.meta.num_cores, c.meta.seed);
  }
  if (c.meta.target == "differential") {
    if (CheckResult r = run_differential(c.ts, c.meta.num_cores, c.meta.seed);
        !r.ok) {
      return r;
    }
    return check_io_roundtrip(c.ts, c.meta.num_cores, c.meta.seed);
  }
  if (c.meta.target == "engine-parity") {
    return check_engine_parity(c.ts, c.meta.num_cores, c.meta.seed);
  }
  if (c.meta.target == "probe-parity") {
    return check_probe_parity(c.ts, c.meta.num_cores, c.meta.seed);
  }
  // Soundness: re-partition with the accepting scheme and re-run the oracle.
  // Scheme names are grammar spec strings (slash-forms like "UD-TPA/ge"
  // included), so resolve through make_scheme_spec.
  const auto scheme = partition::make_scheme_spec(c.meta.scheme);
  const partition::PartitionResult result =
      scheme->run(c.ts, c.meta.num_cores);
  if (!result.success) {
    return {};  // the analysis now (correctly) rejects the set
  }
  const SoundnessOracle oracle(
      options_for_scheme(c.meta.scheme, result.partition, c.meta.seed));
  const OracleVerdict verdict = oracle.check(result.partition);
  if (!verdict.sound) {
    return CheckResult{false, "soundness: " + verdict.describe()};
  }
  return {};
}

CheckResult attach_flight_record(CheckResult r, const std::string& dir,
                                 const std::string& tag) {
  if (r.ok) return r;
  const std::string path = obs::dump_flight_record(dir, tag, r.detail);
  if (!path.empty()) r.detail += "; flight recording: " + path;
  return r;
}

CheckResult replay_with_flight_record(const CorpusCase& c,
                                      const std::string& dump_dir,
                                      const std::string& tag) {
  const obs::TraceEnabledGuard guard(true);
  obs::reset_trace();
  return attach_flight_record(replay(c), dump_dir, tag);
}

}  // namespace mcs::verify
