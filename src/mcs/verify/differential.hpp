// Differential checkers: two independent computations of the same fact must
// agree.
//
// Each checker pits a fast/incremental/claimed result against a naive
// from-scratch recomputation:
//
//   * engine consistency -- a random probe/commit/uncommit workout of
//     analysis::PlacementEngine, cross-checked after every step against
//     UtilMatrix instances rebuilt from the member lists and against the
//     allocation-per-call probe_assignment reference;
//   * test dominance     -- Eq. (4) acceptance must imply Theorem 1
//     acceptance (the improved test accepts a superset), and for K == 2 the
//     improved test must coincide with the paper's Eq. (7) dual test;
//   * scheme claims      -- every partitioner's claimed success is re-judged
//     by re-running the gating analysis from scratch on each core's final
//     subset (Theorem 1 for the EDF-VD schemes, AMC-rtb for FP-AMC, the DBF
//     test for DBF-FFD), plus structural partition invariants;
//   * io round-trip      -- write_taskset/read_taskset and
//     write_partition/read_partition must be lossless (including unassigned
//     tasks);
//   * engine parity      -- the fast event-calendar simulation kernel and
//     the reference O(n)-scan loop must produce bit-identical SimResults
//     and trace streams on randomized partitions, schedulers (including
//     explicit fixed priorities with duplicate ranks), sporadic jitter,
//     degraded service and mode-reset configurations;
//   * probe parity       -- the batched struct-of-arrays all-cores probes
//     (probe_all_cores / probe_fits_all / probe_fits_basic_all) must be
//     BITWISE identical to num_cores() scalar probes — every ProbeResult
//     field under all three policies plus both accept masks — across a
//     random commit/uncommit/relocate workout, and each batched call must
//     advance probes() by exactly num_cores().
//
// Checkers return ok/detail rather than asserting so the fuzz driver can
// shrink a failing input and the corpus replayer can report it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mcs/core/taskset.hpp"
#include "mcs/sim/engine.hpp"
#include "mcs/sim/trace.hpp"

namespace mcs::verify {

struct CheckResult {
  bool ok = true;
  std::string detail;  ///< empty when ok; names the disagreement otherwise
};

/// Random PlacementEngine workout vs. from-scratch recomputation.
[[nodiscard]] CheckResult check_engine_consistency(const TaskSet& ts,
                                                   std::size_t num_cores,
                                                   std::uint64_t seed);

/// basic => improved dominance on the whole set and on random subsets; for
/// K == 2 additionally improved <=> dual (Eq. 7).
[[nodiscard]] CheckResult check_test_dominance(const TaskSet& ts,
                                               std::uint64_t seed);

/// Re-judges every scheme's claimed success/failure on (ts, num_cores).
[[nodiscard]] CheckResult check_scheme_claims(const TaskSet& ts,
                                              std::size_t num_cores);

/// Task-set and partition serialization round-trips exactly.
[[nodiscard]] CheckResult check_io_roundtrip(const TaskSet& ts,
                                             std::size_t num_cores,
                                             std::uint64_t seed);

/// Runs engine consistency, dominance and scheme claims (the "differential"
/// fuzz target); returns the first failure.
[[nodiscard]] CheckResult run_differential(const TaskSet& ts,
                                           std::size_t num_cores,
                                           std::uint64_t seed);

/// Field-exact (bitwise, no tolerances) comparison of two engines' outputs
/// on the same run: every DeadlineMiss, CoreStats and TaskSimStats field
/// and every TraceEvent must agree.  `fast`/`ref` name the sides in the
/// failure detail.
[[nodiscard]] CheckResult compare_sim_runs(
    const sim::SimResult& fast, const sim::SimResult& ref,
    const std::vector<sim::TraceEvent>& fast_trace,
    const std::vector<sim::TraceEvent>& ref_trace);

/// Runs both simulation kernels over several randomized partition/config
/// rounds on (ts, num_cores) and requires bit-identical results, traces
/// included (the "engine-parity" fuzz target).
[[nodiscard]] CheckResult check_engine_parity(const TaskSet& ts,
                                              std::size_t num_cores,
                                              std::uint64_t seed);

/// Batched-vs-scalar probe differential on a random placement workout (the
/// "probe-parity" fuzz target): bitwise ProbeResult equality under every
/// policy, accept-mask equality, and the one-batched-call ==
/// num_cores()-probes accounting contract.
[[nodiscard]] CheckResult check_probe_parity(const TaskSet& ts,
                                             std::size_t num_cores,
                                             std::uint64_t seed);

}  // namespace mcs::verify
