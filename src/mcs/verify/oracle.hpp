// SoundnessOracle: hunts for deadline misses in partitions an analysis
// accepted.
//
// The paper's claims are safety claims: whenever the improved EDF-VD test
// (Theorem 1) or the AMC-rtb response-time analysis accepts a partition, the
// matching runtime protocol must never miss a deadline under *any* execution
// behaviour.  The oracle operationalizes "any" as a battery of adversarial
// scenario families run through the event-driven engine:
//
//   * fixed-level sweeps      -- every task at its level-k budget, k = 1..K
//                                (the uniform storms the property test used);
//   * single-task escalation  -- exactly one task overruns to its own-level
//                                WCET while the rest stay nominal (one trial
//                                per task, asymmetric interference);
//   * threshold overruns      -- one task creeps just past an intermediate
//                                budget, switching the mode as late as
//                                possible (one trial per task and level);
//   * random batches          -- seeded RandomScenario draws at several
//                                escalation probabilities;
//   * sporadic jitter         -- the random batches re-run with release
//                                jitter (every analysis here is a sporadic
//                                analysis, so accepted sets must tolerate it);
//   * exact hyperperiod       -- for integral-period sets whose LCM is small
//                                enough, the sweeps re-run over the true
//                                hyperperiod instead of the 20x default.
//
// Any miss found is a counterexample to the accepting analysis (or to the
// engine) and is reported with the scenario that produced it so the fuzz
// driver can shrink and replay it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mcs/sim/engine.hpp"

namespace mcs::verify {

/// Which runtime protocol the accepting analysis targets.
enum class RuntimeKind {
  kEdfVd,          ///< partitioned EDF-VD (Theorem 1 / DBF analyses)
  kFixedPriority,  ///< partitioned fixed-priority AMC (AMC-rtb)
};

struct OracleOptions {
  RuntimeKind runtime = RuntimeKind::kEdfVd;
  std::uint64_t seed = 1;
  /// RandomScenario draws per escalation probability in {0.1, 0.3, 0.5, 0.9}.
  std::size_t random_batches = 2;
  bool fixed_level_sweep = true;
  bool single_task_escalations = true;
  bool threshold_overruns = true;
  /// Cap on targeted per-task trials (escalation/threshold families scale
  /// with the task count; large sets get a seeded sample instead).
  std::size_t max_targeted_tasks = 24;
  /// Jitter factors for the sporadic re-runs; empty disables the family.
  std::vector<double> jitter_sweep = {0.25, 1.0};
  /// Re-run the sweeps over the exact hyperperiod when the set has one and
  /// it does not exceed max_exact_horizon (see sim::integral_hyperperiod).
  bool exact_hyperperiod = true;
  double max_exact_horizon = 100000.0;
  /// Stop at the first counterexample (the shrinker's predicate only needs
  /// one); when false every family reports its first miss.
  bool stop_at_first = true;
  /// Per-task LO-mode virtual-deadline scales forwarded to the engine
  /// (dual-criticality only) — required when the accepting analysis is the
  /// DBF test, whose acceptance is tied to the scales it chose.
  std::vector<double> dual_scales;
};

/// One observed soundness violation: the scenario family + parameters that
/// produced it and the first deadline miss of the run.
struct CounterExample {
  std::string scenario;  ///< human-readable, e.g. "single-task-escalation id=3"
  sim::DeadlineMiss miss;
};

struct OracleVerdict {
  bool sound = true;
  std::vector<CounterExample> counterexamples;
  std::size_t scenarios_run = 0;

  [[nodiscard]] std::string describe() const;
};

class SoundnessOracle {
 public:
  explicit SoundnessOracle(OracleOptions options = {});

  /// Runs the full battery against `partition` (which some analysis
  /// accepted).  A returned counterexample means the accepting analysis (or
  /// the engine) is unsound for this input.
  [[nodiscard]] OracleVerdict check(const Partition& partition) const;

  [[nodiscard]] const OracleOptions& options() const noexcept {
    return options_;
  }

 private:
  OracleOptions options_;
};

/// Oracle options matched to the scheme that accepted `partition`: FP-AMC
/// partitions run under the fixed-priority engine, and DBF-accepted
/// partitions execute the per-core deadline scales the DBF analysis chose
/// (re-derived from each core's final subset).
[[nodiscard]] OracleOptions options_for_scheme(const std::string& scheme,
                                               const Partition& partition,
                                               std::uint64_t seed);

}  // namespace mcs::verify

