// Adversarial execution scenarios for the soundness oracle.
//
// The stock scenarios (sim/scenario.hpp) stress a partition uniformly: every
// task behaves the same way.  Soundness bugs in MC schedulability tests tend
// to hide in *asymmetric* behaviours — one task overrunning while the rest
// stay nominal concentrates the mode-switch interference exactly where an
// unsound test has over-promised capacity.  These scenarios are the targeted
// counterparts the oracle sweeps in addition to the stock families.
//
// Like every ExecutionScenario they are pure functions of (task, job) — see
// the determinism contract pinned in tests/sim/scenario_test.cpp.
#pragma once

#include <cstdint>

#include "mcs/sim/scenario.hpp"

namespace mcs::verify {

/// Exactly one task (picked by id) overruns: its jobs all run at the full
/// own-level WCET c_i(l_i) while every other task stays at its level-`base`
/// budget (clamped to the task's own level).  One oracle trial per task
/// isolates which victim's escalation breaks the analysis.
class SingleTaskEscalationScenario final : public sim::ExecutionScenario {
 public:
  SingleTaskEscalationScenario(std::size_t target_task_id, Level base = 1);

  [[nodiscard]] double execution_time(const McTask& task,
                                      std::uint64_t job) const override;

 private:
  std::size_t target_id_;
  Level base_;
};

/// The target task runs *just past* its level-`threshold` budget
/// (c(threshold) + epsilon-fraction of the next band, capped at c(l_i)),
/// triggering the mode switch as late as possible with minimal extra demand;
/// other tasks run at level-1 budgets.  Exercises the switch-instant edge
/// the AMC analyses reason about (latest-switch-time arguments).
class ThresholdOverrunScenario final : public sim::ExecutionScenario {
 public:
  ThresholdOverrunScenario(std::size_t target_task_id, Level threshold,
                           double epsilon = 1e-3);

  [[nodiscard]] double execution_time(const McTask& task,
                                      std::uint64_t job) const override;

 private:
  std::size_t target_id_;
  Level threshold_;
  double epsilon_;
};

}  // namespace mcs::verify
