#include "mcs/verify/oracle.hpp"

#include <algorithm>
#include <sstream>

#include "mcs/analysis/dbf.hpp"
#include "mcs/analysis/ge_test.hpp"
#include "mcs/gen/rng.hpp"
#include "mcs/verify/scenarios.hpp"

namespace mcs::verify {

namespace {

/// The task indices the targeted per-task families aim at: everything when
/// the set is small, a seeded sample otherwise (determinism over coverage).
std::vector<std::size_t> targeted_tasks(const Partition& partition,
                                        const OracleOptions& opts) {
  const std::size_t n = partition.taskset().size();
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < n; ++i) {
    if (partition.core_of(i) != kUnassigned) out.push_back(i);
  }
  if (out.size() <= opts.max_targeted_tasks) return out;
  gen::Rng rng(gen::derive_seed(opts.seed, 0x7a26ULL));
  for (std::size_t i = 0; i < opts.max_targeted_tasks; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.uniform_int(0, out.size() - 1 - i));
    std::swap(out[i], out[j]);
  }
  out.resize(opts.max_targeted_tasks);
  return out;
}

}  // namespace

SoundnessOracle::SoundnessOracle(OracleOptions options)
    : options_(std::move(options)) {}

OracleVerdict SoundnessOracle::check(const Partition& partition) const {
  OracleVerdict verdict;
  const TaskSet& ts = partition.taskset();
  const Level K = ts.num_levels();

  sim::SimConfig base;
  if (options_.runtime == RuntimeKind::kFixedPriority) {
    base.scheduler = sim::SchedulerKind::kFixedPriority;
  }
  base.dual_scales = options_.dual_scales;

  const auto probe = [&](const sim::ExecutionScenario& scenario,
                         const sim::SimConfig& config,
                         const std::string& label) -> bool {
    if (!verdict.sound && options_.stop_at_first) return true;
    ++verdict.scenarios_run;
    const sim::SimResult r = sim::simulate(partition, scenario, config);
    if (r.missed_deadline()) {
      verdict.sound = false;
      verdict.counterexamples.push_back(
          CounterExample{label, r.misses.front()});
      if (options_.stop_at_first) return true;
    }
    return false;
  };

  // Whether the exact-hyperperiod re-run is worthwhile: the set has a true
  // hyperperiod, it is affordable, and it actually differs from the default
  // window.
  const std::optional<double> hp = sim::integral_hyperperiod(ts);
  const bool run_exact = options_.exact_hyperperiod && hp.has_value() &&
                         *hp <= options_.max_exact_horizon &&
                         *hp > sim::default_horizon(ts);
  sim::SimConfig exact = base;
  exact.use_hyperperiod_horizon = true;

  if (options_.fixed_level_sweep) {
    for (Level k = 1; k <= K; ++k) {
      const sim::FixedLevelScenario scenario(k);
      std::ostringstream label;
      label << "fixed-level k=" << k;
      if (probe(scenario, base, label.str())) return verdict;
      if (run_exact &&
          probe(scenario, exact, label.str() + " hyperperiod")) {
        return verdict;
      }
    }
  }

  const std::vector<std::size_t> targets = targeted_tasks(partition, options_);

  if (options_.single_task_escalations) {
    for (const std::size_t t : targets) {
      if (ts[t].level() < 2) continue;  // a level-1 task cannot escalate
      const SingleTaskEscalationScenario scenario(ts[t].id());
      std::ostringstream label;
      label << "single-task-escalation id=" << ts[t].id();
      if (probe(scenario, base, label.str())) return verdict;
    }
  }

  if (options_.threshold_overruns) {
    for (const std::size_t t : targets) {
      for (Level k = 1; k < ts[t].level(); ++k) {
        const ThresholdOverrunScenario scenario(ts[t].id(), k);
        std::ostringstream label;
        label << "threshold-overrun id=" << ts[t].id() << " k=" << k;
        if (probe(scenario, base, label.str())) return verdict;
      }
    }
  }

  const double probs[] = {0.1, 0.3, 0.5, 0.9};
  for (std::size_t batch = 0; batch < options_.random_batches; ++batch) {
    for (const double p : probs) {
      const std::uint64_t seed = gen::derive_seed(
          options_.seed, batch * 16 + static_cast<std::uint64_t>(p * 10));
      const sim::RandomScenario scenario(seed, p);
      std::ostringstream label;
      label << "random p=" << p << " seed=" << seed;
      if (probe(scenario, base, label.str())) return verdict;
      if (run_exact && batch == 0 &&
          probe(scenario, exact, label.str() + " hyperperiod")) {
        return verdict;
      }
      for (const double jitter : options_.jitter_sweep) {
        sim::SimConfig cfg = base;
        cfg.sporadic_jitter = jitter;
        cfg.arrival_seed = gen::derive_seed(seed, 0x51);
        std::ostringstream jlabel;
        jlabel << label.str() << " jitter=" << jitter;
        if (probe(scenario, cfg, jlabel.str())) return verdict;
      }
    }
  }

  return verdict;
}

OracleOptions options_for_scheme(const std::string& scheme,
                                 const Partition& partition,
                                 std::uint64_t seed) {
  OracleOptions opts;
  opts.seed = seed;
  if (scheme == "FP-AMC") opts.runtime = RuntimeKind::kFixedPriority;
  if (scheme == "DBF-FFD" || scheme == "DBF-FFD/contrib") {
    const TaskSet& ts = partition.taskset();
    opts.dual_scales.assign(ts.size(), 1.0);
    for (std::size_t m = 0; m < partition.num_cores(); ++m) {
      const auto& members = partition.tasks_on(m);
      if (members.empty()) continue;
      const analysis::DbfResult r = analysis::dbf_dual_test(ts, members);
      if (!r.schedulable) continue;  // the claims checker flags this case
      for (const std::size_t t : members) {
        if (ts[t].level() == 2) opts.dual_scales[t] = r.scale;
      }
    }
  }
  if (scheme == "GE-FFD" || scheme == "UD-TPA/ge") {
    // The GE acceptance is tied to the per-task deadline scales it tuned;
    // re-derive them per core (the test is deterministic, so this matches
    // what the partitioner's final accept of each core chose).
    const TaskSet& ts = partition.taskset();
    opts.dual_scales.assign(ts.size(), 1.0);
    for (std::size_t m = 0; m < partition.num_cores(); ++m) {
      const auto& members = partition.tasks_on(m);
      if (members.empty()) continue;
      const analysis::GeResult r = analysis::ge_dual_test(ts, members);
      if (!r.schedulable) continue;  // the claims checker flags this case
      for (const std::size_t t : members) {
        if (ts[t].level() == 2) opts.dual_scales[t] = r.scales[t];
      }
    }
  }
  return opts;
}

std::string OracleVerdict::describe() const {
  std::ostringstream os;
  if (sound) {
    os << "sound (" << scenarios_run << " scenarios)";
  } else {
    const CounterExample& ce = counterexamples.front();
    os << "UNSOUND after " << scenarios_run << " scenarios: [" << ce.scenario
       << "] task " << ce.miss.task << " job " << ce.miss.job
       << " missed deadline " << ce.miss.deadline << " at t="
       << ce.miss.detected_at << " (core " << ce.miss.core << ", mode "
       << static_cast<int>(ce.miss.mode) << ")";
  }
  return os.str();
}

}  // namespace mcs::verify
