// Streaming statistics (Welford's online algorithm).
#pragma once

#include <cmath>
#include <cstddef>
#include <limits>

namespace mcs::util {

/// Numerically stable accumulator of mean/variance/min/max.
class Welford {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  /// Merges another accumulator (parallel reduction; Chan et al.).
  void merge(const Welford& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept {
    return n_ > 0 ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double max() const noexcept {
    return n_ > 0 ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

  /// Half-width of the ~95% confidence interval of the mean.
  [[nodiscard]] double ci95() const noexcept {
    return n_ > 1 ? 1.96 * stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
  }

  /// Raw sum of squared deviations (for exact serialization).
  [[nodiscard]] double m2() const noexcept { return m2_; }

  /// Reconstructs an accumulator from serialized state (count, mean, m2 and
  /// the raw min/max fields, which are +/-infinity for an empty
  /// accumulator).  Exact inverse of reading count()/mean()/m2()/the raw
  /// extrema, so checkpoint restore is bit-identical.
  [[nodiscard]] static Welford restore(std::size_t n, double mean, double m2,
                                       double min, double max) noexcept {
    Welford w;
    w.n_ = n;
    w.mean_ = mean;
    w.m2_ = m2;
    w.min_ = min;
    w.max_ = max;
    return w;
  }

  /// The raw extremum fields (infinities when empty), unlike min()/max()
  /// which report NaN for an empty accumulator.
  [[nodiscard]] double raw_min() const noexcept { return min_; }
  [[nodiscard]] double raw_max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace mcs::util
