#include "mcs/util/csv.hpp"

#include <stdexcept>

namespace mcs::util {

namespace {

std::string escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), path_(path) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open '" + path + "'");
  }
  emit(header);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  emit(cells);
}

void CsvWriter::emit(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  if (!out_) {
    throw std::runtime_error("CsvWriter: write failed on '" + path_ + "'");
  }
}

void CsvWriter::close() {
  if (out_.is_open()) out_.close();
}

CsvWriter::~CsvWriter() { close(); }

}  // namespace mcs::util
