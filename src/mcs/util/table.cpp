#include "mcs/util/table.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

namespace mcs::util {

std::string format_double(double value, int precision) {
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  if (std::isnan(value)) return "nan";
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::begin_row() { rows_.emplace_back(); }

void Table::add_cell(std::string text) {
  if (rows_.empty()) begin_row();
  rows_.back().push_back(std::move(text));
}

void Table::add_cell(double value, int precision) {
  add_cell(format_double(value, precision));
}

void Table::add_cell(std::size_t value) { add_cell(std::to_string(value)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& text = c < cells.size() ? cells[c] : std::string{};
      os << text << std::string(width[c] - text.size(), ' ');
      if (c + 1 < header_.size()) os << "  ";
    }
    os << '\n';
  };
  emit(header_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < width.size(); ++c) rule += width[c];
  rule += 2 * (width.empty() ? 0 : width.size() - 1);
  os << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

}  // namespace mcs::util
