// Minimal CSV emission for experiment results.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace mcs::util {

/// Writes rows of string cells as RFC-4180-ish CSV (quotes cells containing
/// commas, quotes or newlines).  Throws std::runtime_error on I/O failure.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void write_row(const std::vector<std::string>& cells);

  /// Flushes and closes; called by the destructor as well.
  void close();

  ~CsvWriter();
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

 private:
  void emit(const std::vector<std::string>& cells);

  std::ofstream out_;
  std::string path_;
};

}  // namespace mcs::util
