// Aligned plain-text tables for bench/example output.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mcs::util {

/// A simple column-aligned table.  Cells are strings; numeric helpers format
/// with fixed precision.  Rendered with two-space gutters and a rule under
/// the header.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row; subsequent add_cell calls fill it left to right.
  void begin_row();
  void add_cell(std::string text);
  void add_cell(double value, int precision = 4);
  void add_cell(std::size_t value);

  /// Renders to the stream; rows shorter than the header are padded.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (shared by Table and CSV output).
[[nodiscard]] std::string format_double(double value, int precision);

}  // namespace mcs::util
