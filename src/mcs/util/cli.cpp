#include "mcs/util/cli.hpp"

#include <sstream>
#include <stdexcept>

namespace mcs::util {

// GCC 12's -Wrestrict false-positives on the `value = "1"` assignment below
// under -O2/-O3 (inlined basic_string::assign; GCC PR105329 family): it
// invents impossible overlap between the SSO buffer and the literal.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wrestrict"
#endif

Cli::Cli(int argc, const char* const* argv,
         std::map<std::string, std::string> allowed)
    : allowed_(std::move(allowed)) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected positional argument '" + arg +
                                  "'");
    }
    arg.erase(0, 2);
    std::string key = arg;
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      key = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    }
    if (!allowed_.contains(key)) {
      std::ostringstream os;
      os << "unknown option '--" << key << "'; accepted:";
      for (const auto& [name, _] : allowed_) os << " --" << name;
      throw std::invalid_argument(os.str());
    }
    if (!has_value) {
      // `--key value` form when the next token is not another option;
      // otherwise a boolean flag.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "1";
      }
    }
    values_[key] = value;
  }
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

std::string Cli::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [options]\n";
  for (const auto& [name, help] : allowed_) {
    os << "  --" << name << "  " << help << '\n';
  }
  return os.str();
}

std::optional<std::string> Cli::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Cli::get_or(const std::string& key,
                        const std::string& fallback) const {
  return get(key).value_or(fallback);
}

double Cli::get_or(const std::string& key, double fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  try {
    return std::stod(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + key + " expects a number, got '" +
                                *v + "'");
  }
}

std::uint64_t Cli::get_or(const std::string& key, std::uint64_t fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  try {
    return std::stoull(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + key +
                                " expects an integer, got '" + *v + "'");
  }
}

bool Cli::has(const std::string& key) const { return values_.contains(key); }

}  // namespace mcs::util
