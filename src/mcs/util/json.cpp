#include "mcs/util/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace mcs::util {

Json Json::null() { return Json{}; }

Json Json::boolean(bool b) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = b;
  return j;
}

Json Json::number(std::uint64_t n) { return number_raw(std::to_string(n)); }

Json Json::number_raw(std::string lexeme) {
  Json j;
  j.type_ = Type::kNumber;
  j.scalar_ = std::move(lexeme);
  return j;
}

Json Json::string(std::string s) {
  Json j;
  j.type_ = Type::kString;
  j.scalar_ = std::move(s);
  return j;
}

Json Json::array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

Json& Json::set(std::string key, Json value) {
  if (type_ != Type::kObject) throw std::runtime_error("json: set on non-object");
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

const Json* Json::find(const std::string& key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  if (const Json* v = find(key)) return *v;
  throw std::runtime_error("json: missing key '" + key + "'");
}

Json& Json::push(Json value) {
  if (type_ != Type::kArray) throw std::runtime_error("json: push on non-array");
  items_.push_back(std::move(value));
  return items_.back();
}

bool Json::as_bool() const {
  if (type_ != Type::kBool) throw std::runtime_error("json: not a bool");
  return bool_;
}

std::uint64_t Json::as_u64() const {
  if (type_ != Type::kNumber) throw std::runtime_error("json: not a number");
  std::uint64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(scalar_.data(), scalar_.data() + scalar_.size(), out);
  if (ec != std::errc{} || ptr != scalar_.data() + scalar_.size()) {
    throw std::runtime_error("json: '" + scalar_ + "' is not a u64");
  }
  return out;
}

double Json::as_double() const {
  if (type_ != Type::kNumber) throw std::runtime_error("json: not a number");
  return std::strtod(scalar_.c_str(), nullptr);
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) throw std::runtime_error("json: not a string");
  return scalar_;
}

namespace {

void escape_into(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

std::string Json::dump() const {
  std::string out;
  switch (type_) {
    case Type::kNull:
      out = "null";
      break;
    case Type::kBool:
      out = bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      out = scalar_;
      break;
    case Type::kString:
      escape_into(scalar_, out);
      break;
    case Type::kArray: {
      out.push_back('[');
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out.push_back(',');
        out += items_[i].dump();
      }
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      out.push_back('{');
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out.push_back(',');
        escape_into(members_[i].first, out);
        out.push_back(':');
        out += members_[i].second.dump();
      }
      out.push_back('}');
      break;
    }
  }
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Json::string(parse_string());
    if (c == 't') {
      if (!consume_literal("true")) fail("bad literal");
      return Json::boolean(true);
    }
    if (c == 'f') {
      if (!consume_literal("false")) fail("bad literal");
      return Json::boolean(false);
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
      return Json::null();
    }
    return parse_number();
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // The writer only emits \u00XX; decode the Latin-1 subset and
          // reject anything that would need real UTF-16 handling.
          if (code > 0xFF) fail("unsupported \\u escape > 0xFF");
          out.push_back(static_cast<char>(code));
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    return Json::number_raw(std::string(text_.substr(start, pos_ - start)));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace mcs::util
