// Minimal JSON value, writer and parser for the experiment artifacts and
// checkpoints.  Deliberately small: objects preserve insertion order (so
// serialization is byte-deterministic), numbers keep their raw lexeme (the
// orchestrator stores exact doubles as hex-bit-pattern *strings*, so the
// parser never has to round-trip floating point), and the parser accepts
// exactly the subset the writer emits plus standard JSON.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mcs::util {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;

  [[nodiscard]] static Json null();
  [[nodiscard]] static Json boolean(bool b);
  [[nodiscard]] static Json number(std::uint64_t n);
  [[nodiscard]] static Json number_raw(std::string lexeme);
  [[nodiscard]] static Json string(std::string s);
  [[nodiscard]] static Json array();
  [[nodiscard]] static Json object();

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::kObject;
  }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::kArray; }

  // -- object access -------------------------------------------------------
  /// Adds (or appends; keys are not deduplicated) a member.
  Json& set(std::string key, Json value);
  /// First member with `key`, or nullptr.
  [[nodiscard]] const Json* find(const std::string& key) const;
  /// Like find() but throws std::runtime_error when absent.
  [[nodiscard]] const Json& at(const std::string& key) const;
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members()
      const {
    return members_;
  }

  // -- array access --------------------------------------------------------
  Json& push(Json value);
  [[nodiscard]] const std::vector<Json>& items() const { return items_; }

  // -- scalar access (throw std::runtime_error on type mismatch) -----------
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::uint64_t as_u64() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;

  /// Compact serialization (no whitespace); deterministic for a given value.
  [[nodiscard]] std::string dump() const;

  /// Parses one JSON document (throws std::runtime_error on malformed or
  /// trailing input).
  [[nodiscard]] static Json parse(std::string_view text);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  std::string scalar_;  ///< number lexeme or string payload
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace mcs::util
