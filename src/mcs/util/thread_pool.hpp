// Minimal data-parallel helpers for the Monte-Carlo harness.
//
// parallel_for(n, fn) executes fn(i) for i in [0, n) across a set of worker
// threads using atomic chunked work stealing.  Results must be written to
// pre-sized per-index slots by the callee, which keeps the harness
// deterministic regardless of scheduling order.
#pragma once

#include <cstddef>
#include <functional>

namespace mcs::util {

/// Number of workers to use by default (hardware concurrency, at least 1).
[[nodiscard]] std::size_t default_thread_count() noexcept;

/// Runs fn(i) for every i in [0, n), distributing indices over `threads`
/// workers (the calling thread participates).  threads == 0 selects the
/// default.  Exceptions thrown by fn propagate to the caller (first one
/// wins; remaining work is drained).
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads = 0);

}  // namespace mcs::util
