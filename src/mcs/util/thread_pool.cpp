#include "mcs/util/thread_pool.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace mcs::util {

std::size_t default_thread_count() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads) {
  if (n == 0) return;
  if (threads == 0) threads = default_thread_count();
  if (threads > n) threads = n;

  if (threads == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  {
    std::vector<std::jthread> pool;
    pool.reserve(threads - 1);
    for (std::size_t t = 0; t + 1 < threads; ++t) pool.emplace_back(worker);
    worker();  // the calling thread joins the work
  }

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace mcs::util
