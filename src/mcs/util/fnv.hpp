// FNV-1a streaming hasher shared by every fingerprinting layer.
//
// The experiment registry fingerprints SweepSpecs with it (exp::spec.cpp)
// and the service layer fingerprints task-set analysis requests (svc::
// fingerprint.cpp); both feed doubles as their exact IEEE-754 bit patterns
// so a fingerprint never depends on decimal formatting.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>

namespace mcs::util {

/// Formats v as 16 lowercase hex digits (the canonical fingerprint form).
[[nodiscard]] inline std::string u64_hex16(std::uint64_t v) {
  std::string out(16, '0');
  for (int i = 0; i < 16; ++i) {
    out[static_cast<std::size_t>(i)] =
        "0123456789abcdef"[(v >> (60 - 4 * i)) & 0xF];
  }
  return out;
}

/// Streaming 64-bit FNV-1a.  Every feed_* terminates its field with a '|'
/// separator so adjacent variable-length fields cannot alias.
class Fnv1a {
 public:
  void feed(std::string_view bytes) noexcept {
    for (const char c : bytes) {
      hash_ ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
      hash_ *= 0x100000001b3ULL;
    }
  }
  void feed_u64(std::uint64_t v) {
    char buf[16];
    for (int i = 0; i < 16; ++i) {
      buf[i] = "0123456789abcdef"[(v >> (60 - 4 * i)) & 0xF];
    }
    feed(std::string_view(buf, 16));
    feed("|");
  }
  void feed_double(double v) { feed_u64(std::bit_cast<std::uint64_t>(v)); }
  void feed_str(std::string_view s) {
    feed(s);
    feed("|");
  }
  [[nodiscard]] std::uint64_t value() const noexcept { return hash_; }
  [[nodiscard]] std::string hex() const { return u64_hex16(hash_); }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

}  // namespace mcs::util
