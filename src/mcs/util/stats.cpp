// stats.hpp is header-only; this translation unit only anchors the target.
#include "mcs/util/stats.hpp"
