// Tiny command-line option parser shared by the bench/example binaries.
//
// Supports `--key value` and `--key=value` forms plus boolean `--flag`.
// Unknown options raise an error listing the accepted keys, so every bench
// gets consistent, self-describing CLI handling for free.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mcs::util {

class Cli {
 public:
  /// Parses argv.  `allowed` lists option names (without the leading "--")
  /// mapped to a one-line help string.  Throws std::invalid_argument on an
  /// unknown or malformed option; `--help` sets help_requested().
  Cli(int argc, const char* const* argv,
      std::map<std::string, std::string> allowed);

  [[nodiscard]] bool help_requested() const noexcept { return help_; }

  /// Renders usage text from the allowed-option table.
  [[nodiscard]] std::string usage(const std::string& program) const;

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;
  [[nodiscard]] std::string get_or(const std::string& key,
                                   const std::string& fallback) const;
  [[nodiscard]] double get_or(const std::string& key, double fallback) const;
  [[nodiscard]] std::uint64_t get_or(const std::string& key,
                                     std::uint64_t fallback) const;
  [[nodiscard]] bool has(const std::string& key) const;

 private:
  std::map<std::string, std::string> allowed_;
  std::map<std::string, std::string> values_;
  bool help_ = false;
};

}  // namespace mcs::util
