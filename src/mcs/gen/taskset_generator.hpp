// Synthetic MC workload generator (paper Sec. IV-A, Table IV).
//
// For M cores, N tasks and normalized system utilization NSU, the base
// level-1 task utilization is u_base = NSU * M / N.  For each task:
//   * the period p_i is drawn uniformly from one of the three period classes
//     (the class itself drawn uniformly),
//   * c_i(1) ~ U[0.2, 1.8] * p_i * u_base,
//   * the criticality level l_i ~ U{1..K},
//   * c_i(k) = (1 + IFC) * c_i(k-1) for k = 2..l_i, capped at p_i so the
//     task stays individually feasible (cap occurrences are rare at the
//     paper's parameter ranges and are counted in GenStats).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "mcs/core/taskset.hpp"
#include "mcs/gen/rng.hpp"

namespace mcs::gen {

struct GenParams {
  std::size_t num_cores = 8;  ///< M
  Level num_levels = 4;       ///< K; ignored when random_levels is set
  bool random_levels = false; ///< draw K ~ U{2..6} per task set
  double nsu = 0.6;           ///< normalized system utilization
  double ifc = 0.4;           ///< WCET increment factor between levels
  /// Fixed task count; 0 draws N ~ U{40..200} per set (Table IV).
  std::size_t num_tasks = 0;
  /// Period classes (Table IV): [50,200], [200,500], [500,2000].
  std::array<std::pair<double, double>, 3> period_classes{
      {{50.0, 200.0}, {200.0, 500.0}, {500.0, 2000.0}}};
  /// c_i(1) spread around u_base (paper: [0.2, 1.8]).
  double wcet_spread_lo = 0.2;
  double wcet_spread_hi = 1.8;
};

struct GenStats {
  std::size_t wcet_caps = 0;  ///< WCET entries clamped to the period
  Level levels = 0;           ///< the K actually used
  std::size_t tasks = 0;      ///< the N actually used
};

/// Generates one task set.  `stats`, when non-null, receives bookkeeping
/// about the draw.  Throws std::invalid_argument on nonsensical parameters.
[[nodiscard]] TaskSet generate(const GenParams& params, Rng& rng,
                               GenStats* stats = nullptr);

/// Convenience: generator for trial `trial` of an experiment with base seed
/// `seed` (deterministic irrespective of threading).
[[nodiscard]] TaskSet generate_trial(const GenParams& params,
                                     std::uint64_t seed, std::uint64_t trial,
                                     GenStats* stats = nullptr);

/// Allocation-free trial generation for Monte-Carlo hot loops.  One arena
/// recycles a single TaskSet shell plus a pool of McTask shells (and their
/// WCET vectors' capacity) across generate_trial calls, so the steady state
/// of a sweep chunk draws trials with zero per-trial allocation.  The draw
/// runs the exact RNG sequence of generate(), so the produced sets are
/// bit-identical to the free generate_trial()'s — verified by
/// GeneratorTest.ArenaMatchesFreeFunction and the probe-parity fuzz target.
///
/// Not thread-safe; use one arena per worker (e.g. per sweep chunk).
class TrialArena {
 public:
  /// Generates trial `trial` into the recycled shell.  The returned
  /// reference is invalidated by the next generate_trial call on the same
  /// arena.
  const TaskSet& generate_trial(const GenParams& params, std::uint64_t seed,
                                std::uint64_t trial, GenStats* stats = nullptr);

 private:
  std::optional<TaskSet> set_;  ///< recycled shell, engaged after first call
  std::vector<McTask> build_;   ///< task vector under construction
  std::vector<McTask> pool_;    ///< spare shells from larger past trials
  std::vector<double> wcets_;   ///< per-task WCET scratch
};

}  // namespace mcs::gen
