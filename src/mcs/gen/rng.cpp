// rng.hpp is header-only; this translation unit only anchors the target.
#include "mcs/gen/rng.hpp"
