// Deterministic, splittable random-number generation.
//
// All randomness in the library flows from explicit 64-bit seeds through
// xoshiro256** (seeded via splitmix64), so experiments are bit-reproducible
// regardless of thread count: each Monte-Carlo trial forks its own stream
// from (base_seed, trial_index) and never shares state across threads.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace mcs::gen {

/// splitmix64 step; used for seeding and for hashing seed hierarchies.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Combines a seed with a stream index into a new independent seed.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t seed,
                                                  std::uint64_t stream) noexcept {
  std::uint64_t s = seed ^ (0x9e3779b97f4a7c15ULL + stream * 0xD1B54A32D192ED03ULL);
  return splitmix64(s);
}

/// xoshiro256** PRNG.  Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    // 53-bit mantissa path: uniform in [0, 1).
    const double unit =
        static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    return lo + (hi - lo) * unit;
  }

  /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t lo,
                                          std::uint64_t hi) noexcept {
    const std::uint64_t span = hi - lo + 1;  // span == 0 means the full range
    if (span == 0) return (*this)();
    // Lemire-style rejection to remove modulo bias.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * span;
    auto l = static_cast<std::uint64_t>(m);
    if (l < span) {
      const std::uint64_t t = (0 - span) % span;
      while (l < t) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * span;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return lo + static_cast<std::uint64_t>(m >> 64);
  }

  /// Bernoulli trial with probability p.
  [[nodiscard]] bool bernoulli(double p) noexcept { return uniform(0, 1) < p; }

  /// A new generator seeded independently from this one's stream `index`.
  [[nodiscard]] Rng fork(std::uint64_t index) const noexcept {
    return Rng(derive_seed(state_[0] ^ state_[3], index));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace mcs::gen
