#include "mcs/gen/taskset_generator.hpp"

#include <algorithm>
#include <stdexcept>

namespace mcs::gen {

TaskSet generate(const GenParams& params, Rng& rng, GenStats* stats) {
  if (params.num_cores == 0) {
    throw std::invalid_argument("generate: need at least one core");
  }
  if (!(params.nsu > 0.0)) {
    throw std::invalid_argument("generate: NSU must be positive");
  }
  if (params.ifc < 0.0) {
    throw std::invalid_argument("generate: IFC must be nonnegative");
  }
  if (!params.random_levels && params.num_levels < 1) {
    throw std::invalid_argument("generate: need at least one level");
  }
  for (const auto& [lo, hi] : params.period_classes) {
    if (!(lo > 0.0) || hi < lo) {
      throw std::invalid_argument("generate: malformed period class");
    }
  }

  const Level K = params.random_levels
                      ? static_cast<Level>(rng.uniform_int(2, 6))
                      : params.num_levels;
  const std::size_t N = params.num_tasks != 0
                            ? params.num_tasks
                            : static_cast<std::size_t>(rng.uniform_int(40, 200));

  const double u_base =
      params.nsu * static_cast<double>(params.num_cores) /
      static_cast<double>(N);

  std::vector<McTask> tasks;
  tasks.reserve(N);
  std::size_t caps = 0;
  for (std::size_t i = 0; i < N; ++i) {
    const auto cls = static_cast<std::size_t>(
        rng.uniform_int(0, params.period_classes.size() - 1));
    const auto [plo, phi] = params.period_classes[cls];
    const double period = rng.uniform(plo, phi);

    double c1 = rng.uniform(params.wcet_spread_lo, params.wcet_spread_hi) *
                period * u_base;
    if (c1 > period) {
      c1 = period;
      ++caps;
    }

    const Level level = static_cast<Level>(rng.uniform_int(1, K));
    std::vector<double> wcets;
    wcets.reserve(level);
    double c = c1;
    for (Level k = 1; k <= level; ++k) {
      if (k > 1) c *= (1.0 + params.ifc);
      if (c > period) {
        c = period;
        ++caps;
      }
      wcets.push_back(c);
    }
    tasks.emplace_back(i, std::move(wcets), period);
  }

  if (stats != nullptr) {
    stats->wcet_caps = caps;
    stats->levels = K;
    stats->tasks = N;
  }
  return TaskSet(std::move(tasks), K);
}

TaskSet generate_trial(const GenParams& params, std::uint64_t seed,
                       std::uint64_t trial, GenStats* stats) {
  Rng rng(derive_seed(seed, trial));
  return generate(params, rng, stats);
}

}  // namespace mcs::gen
