#include "mcs/gen/taskset_generator.hpp"

#include <algorithm>
#include <stdexcept>

namespace mcs::gen {

namespace {

// The draw helpers below are the ONE definition of the generator's RNG
// sequence: generate() and TrialArena::generate_trial() both run
// draw_header then N x draw_task, so the two paths consume bit-identical
// random streams and produce bit-identical task parameters.

struct SetHeader {
  Level K = 0;
  std::size_t N = 0;
  double u_base = 0.0;
};

void validate_params(const GenParams& params) {
  if (params.num_cores == 0) {
    throw std::invalid_argument("generate: need at least one core");
  }
  if (!(params.nsu > 0.0)) {
    throw std::invalid_argument("generate: NSU must be positive");
  }
  if (params.ifc < 0.0) {
    throw std::invalid_argument("generate: IFC must be nonnegative");
  }
  if (!params.random_levels && params.num_levels < 1) {
    throw std::invalid_argument("generate: need at least one level");
  }
  for (const auto& [lo, hi] : params.period_classes) {
    if (!(lo > 0.0) || hi < lo) {
      throw std::invalid_argument("generate: malformed period class");
    }
  }
}

SetHeader draw_header(const GenParams& params, Rng& rng) {
  SetHeader h;
  h.K = params.random_levels ? static_cast<Level>(rng.uniform_int(2, 6))
                             : params.num_levels;
  h.N = params.num_tasks != 0
            ? params.num_tasks
            : static_cast<std::size_t>(rng.uniform_int(40, 200));
  h.u_base = params.nsu * static_cast<double>(params.num_cores) /
             static_cast<double>(h.N);
  return h;
}

// Draws one task (period class, period, c_1 spread, level — in that order)
// and writes its WCET vector into `wcets`; returns the period.
double draw_task(const GenParams& params, Rng& rng, const SetHeader& h,
                 std::vector<double>& wcets, std::size_t& caps) {
  const auto cls = static_cast<std::size_t>(
      rng.uniform_int(0, params.period_classes.size() - 1));
  const auto [plo, phi] = params.period_classes[cls];
  const double period = rng.uniform(plo, phi);

  double c1 = rng.uniform(params.wcet_spread_lo, params.wcet_spread_hi) *
              period * h.u_base;
  if (c1 > period) {
    c1 = period;
    ++caps;
  }

  const Level level = static_cast<Level>(rng.uniform_int(1, h.K));
  wcets.clear();
  wcets.reserve(level);
  double c = c1;
  for (Level k = 1; k <= level; ++k) {
    if (k > 1) c *= (1.0 + params.ifc);
    if (c > period) {
      c = period;
      ++caps;
    }
    wcets.push_back(c);
  }
  return period;
}

}  // namespace

TaskSet generate(const GenParams& params, Rng& rng, GenStats* stats) {
  validate_params(params);
  const SetHeader h = draw_header(params, rng);

  std::vector<McTask> tasks;
  tasks.reserve(h.N);
  std::vector<double> wcets;
  std::size_t caps = 0;
  for (std::size_t i = 0; i < h.N; ++i) {
    const double period = draw_task(params, rng, h, wcets, caps);
    tasks.emplace_back(i, wcets, period);
  }

  if (stats != nullptr) {
    stats->wcet_caps = caps;
    stats->levels = h.K;
    stats->tasks = h.N;
  }
  return TaskSet(std::move(tasks), h.K);
}

const TaskSet& TrialArena::generate_trial(const GenParams& params,
                                          std::uint64_t seed,
                                          std::uint64_t trial,
                                          GenStats* stats) {
  validate_params(params);
  Rng rng(derive_seed(seed, trial));
  const SetHeader h = draw_header(params, rng);

  // Reclaim the previous trial's task vector; its shells (and their WCET
  // vectors' capacity) are overwritten in place via McTask::assign.
  if (set_.has_value()) build_ = set_->release();

  std::size_t caps = 0;
  for (std::size_t i = 0; i < h.N; ++i) {
    const double period = draw_task(params, rng, h, wcets_, caps);
    if (i < build_.size()) {
      build_[i].assign(i, wcets_, period);
    } else if (!pool_.empty()) {
      build_.push_back(std::move(pool_.back()));
      pool_.pop_back();
      build_.back().assign(i, wcets_, period);
    } else {
      build_.emplace_back(i, wcets_, period);
    }
  }
  // A smaller trial parks the leftover shells for later reuse instead of
  // destroying them (which would free their WCET storage).
  while (build_.size() > h.N) {
    pool_.push_back(std::move(build_.back()));
    build_.pop_back();
  }

  if (stats != nullptr) {
    stats->wcet_caps = caps;
    stats->levels = h.K;
    stats->tasks = h.N;
  }
  if (set_.has_value()) {
    set_->assign(std::move(build_), h.K);
  } else {
    set_.emplace(std::move(build_), h.K);
  }
  return *set_;
}

TaskSet generate_trial(const GenParams& params, std::uint64_t seed,
                       std::uint64_t trial, GenStats* stats) {
  Rng rng(derive_seed(seed, trial));
  return generate(params, rng, stats);
}

}  // namespace mcs::gen
