// mcs_serve: partitioning-as-a-service daemon over a local socket.
//
// Serve mode (foreground; stop with a client "shutdown" or SIGINT):
//
//   $ mcs_serve --socket /tmp/mcs.sock --workers 4 --cache 256
//
// One-shot client mode (partition a task-set file through a running
// daemon; prints the JSON response):
//
//   $ mcs_serve --client --socket /tmp/mcs.sock
//       --file taskset.txt --scheme CA-TPA --cores 8
//
// Selftest / bench mode (boots a private daemon, drives it with the
// closed-loop load generator, validates every response differentially,
// and writes the BENCH_serve.json latency/throughput document):
//
//   $ mcs_serve --selftest --out BENCH_serve.json
#include <fstream>
#include <iostream>

#include "mcs/mcs.hpp"

int main(int argc, char** argv) {
  using namespace mcs;
  const util::Cli cli(
      argc, argv,
      {{"socket", "AF_UNIX socket path (default /tmp/mcs_serve.sock)"},
       {"workers", "connection worker threads (default 2)"},
       {"cache", "analysis cache capacity in entries (default 256)"},
       {"client", "one-shot client mode: send one analyze request"},
       {"file", "client: task-set file (io:: text format)"},
       {"scheme", "client: scheme spec (default CA-TPA)"},
       {"cores", "client: core count M (default 8)"},
       {"alpha", "client/selftest: CA-TPA threshold (default 0.7)"},
       {"stats", "client mode: also print the daemon's stats line"},
       {"selftest", "run the closed-loop selftest/bench and exit"},
       {"quick", "selftest: quarter the request count (CI smoke)"},
       {"requests", "selftest: distinct task sets per size (default 32)"},
       {"seed", "selftest: base RNG seed (default 1)"},
       {"out", "selftest: write the bench JSON here"}});
  if (cli.help_requested()) {
    std::cout << cli.usage("mcs_serve");
    return 0;
  }

  const std::string socket_path =
      cli.get_or("socket", std::string("/tmp/mcs_serve.sock"));

  try {
    if (cli.has("selftest")) {
      svc::SelftestOptions options;
      options.workers =
          static_cast<std::size_t>(cli.get_or("workers", std::uint64_t{2}));
      options.requests_per_size = static_cast<std::size_t>(
          cli.get_or("requests", std::uint64_t{32}));
      options.seed = cli.get_or("seed", std::uint64_t{1});
      options.alpha = cli.get_or("alpha", 0.7);
      options.quick = cli.has("quick");
      const svc::SelftestReport report = svc::run_selftest(options);
      print_selftest(std::cout, report);
      if (const auto out_path = cli.get("out")) {
        std::ofstream out(*out_path);
        if (!out) {
          std::cerr << "mcs_serve: cannot write " << *out_path << '\n';
          return 1;
        }
        out << selftest_json(report).dump() << '\n';
        std::cerr << "mcs_serve: wrote " << *out_path << '\n';
      }
      return report.differential_ok ? 0 : 1;
    }

    if (cli.has("client")) {
      const auto file = cli.get("file");
      if (!file) {
        std::cerr << "mcs_serve: --client needs --file <taskset>\n";
        return 1;
      }
      svc::AnalysisRequest request{
          cli.get_or("scheme", std::string("CA-TPA")),
          static_cast<std::size_t>(cli.get_or("cores", std::uint64_t{8})),
          cli.get_or("alpha", 0.7), io::load_taskset(*file)};
      svc::Client client(socket_path);
      std::cout << client.analyze(request).dump() << '\n';
      if (cli.has("stats")) {
        std::cout << client.stats().dump() << '\n';
      }
      return 0;
    }

    svc::ServerConfig config;
    config.socket_path = socket_path;
    config.workers =
        static_cast<std::size_t>(cli.get_or("workers", std::uint64_t{2}));
    config.cache_capacity =
        static_cast<std::size_t>(cli.get_or("cache", std::uint64_t{256}));
    svc::Server server(config);
    std::cerr << "mcs_serve: listening on " << server.socket_path() << " ("
              << config.workers << " worker(s), cache "
              << config.cache_capacity << ")\n";
    server.wait();
    std::cerr << "mcs_serve: shut down after " << server.requests_served()
              << " request(s)\n";
  } catch (const std::exception& e) {
    std::cerr << "mcs_serve: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
