#!/usr/bin/env sh
# Vectorization sanity check for the batched probe kernel.
#
# The kernel (src/mcs/analysis/batch_probe_impl.hpp, compiled once per ISA:
# batch_probe.cpp at the x86-64 baseline, batch_probe_avx2.cpp with -mavx2)
# marks its hot loops two ways:
#
#   * `// lane loop: <name>`  — plain per-core loops the auto-vectorizer
#     must handle.  Checked against GCC's -fopt-info-vec-optimized report,
#     per TU: some loops only clear the SSE2 cost model under AVX2, so the
#     baseline and AVX2 builds carry separate REQUIRED lists.
#   * `// simd loop: <name>`  — explicitly vectorized via the lane-ops packs
#     (lane_ops.hpp).  The vectorizer report says nothing about intrinsics,
#     so these are checked in the machine code: the AVX2 TU must touch ymm
#     registers and emit vcmppd/vblendvpd, and the baseline TU must emit the
#     SSE2 compare/andnot sequences the Sse2Ops blend lowers to.
#
# A third probe guards the dispatch itself: on x86-64 a TU compiled with
# MCS_LANE_REQUIRE_SIMD must build (lane_ops.hpp #errors when the scalar
# backend is selected), so a header edit that silently demotes the default
# backend to scalar fails CI here instead of just slowing the bench down.
#
# Loops NOT listed (the per-level "min term" / "base min term" reductions)
# carry genuine serial dependencies and are expected to stay scalar.
#
# Usage: tools/check_vectorization.sh [compiler]   (default: c++)
set -eu

cd "$(dirname "$0")/.."
CXX="${1:-c++}"
IMPL=src/mcs/analysis/batch_probe_impl.hpp
BASE_TU=src/mcs/analysis/batch_probe.cpp
AVX2_TU=src/mcs/analysis/batch_probe_avx2.cpp
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT INT TERM

arch=$(uname -m)
case "$arch" in
  x86_64|amd64) on_x86=1 ;;
  *) on_x86=0 ;;
esac
if [ "$on_x86" -eq 0 ]; then
  echo "skip: $arch is not x86-64; the lane-ops ISA checks do not apply"
  exit 0
fi

# --- 1. auto-vectorized lane loops, per ISA ------------------------------
# Same language/optimization surface as the Release CI build; the report
# lists one "loop vectorized" note per vectorized loop with its line.
"$CXX" -std=c++20 -O3 -DNDEBUG -Isrc -c "$BASE_TU" -o /dev/null \
  -fopt-info-vec-optimized 2>"$WORK/base.rpt"
"$CXX" -std=c++20 -O3 -DNDEBUG -Isrc -mavx2 -c "$AVX2_TU" -o /dev/null \
  -fopt-info-vec-optimized 2>"$WORK/avx2.rpt"

# Labels that must vectorize in BOTH TUs.  Line numbers are resolved from
# the markers at check time, so editing the kernel does not stale them.
REQUIRED_BOTH="hrow
hrow tile
lambda init
lambda numerator
theta
mu/fold init
Eq. (4) sum
K == 1 utilization
base Eq. (4)
base numerator
base theta
numerator resume
numerator extend
theta re-term
theta resume
theta extend
Eq. (4) resume
Eq. (4) extend"

# Labels that only clear the vectorizer cost model with AVX2 (mask-byte
# stores and mixed double/uint8 writebacks stay scalar under bare SSE2).
REQUIRED_AVX2="utilization writeback
Eq. (4) mask
accept mask"

check_report() {
  # $1 = report file, $2 = TU name for messages, $3 = newline list of labels
  echo "$3" | while IFS= read -r label; do
    line=$(grep -n "lane loop: $label\$" "$IMPL" | head -1 | cut -d: -f1)
    if [ -z "$line" ]; then
      echo "FAIL: marker 'lane loop: $label' not found in $IMPL" >&2
      exit 1
    fi
    if grep -q "batch_probe_impl.hpp:$line:.*loop vectorized" "$1"; then
      echo "ok: lane loop '$label' ($IMPL:$line) vectorized [$2]"
    else
      echo "FAIL: lane loop '$label' ($IMPL:$line) did NOT vectorize [$2]" >&2
      echo "---- vectorizer notes ----" >&2
      grep "batch_probe_impl.hpp" "$1" >&2 || true
      exit 1
    fi
  done
}

check_report "$WORK/base.rpt" baseline "$REQUIRED_BOTH"
check_report "$WORK/avx2.rpt" avx2 "$REQUIRED_BOTH"
check_report "$WORK/avx2.rpt" avx2 "$REQUIRED_AVX2"

# --- 2. explicit lane-ops (simd loop) machine code -----------------------
for label in "lambda validity" "mu + fold"; do
  if ! grep -q "simd loop: $label\$" "$IMPL"; then
    echo "FAIL: marker 'simd loop: $label' not found in $IMPL" >&2
    exit 1
  fi
done

"$CXX" -std=c++20 -O3 -DNDEBUG -Isrc -mavx2 -S "$AVX2_TU" -o "$WORK/avx2.s"
if grep -q "ymm" "$WORK/avx2.s" && grep -qE "vcmppd|vblendvpd" "$WORK/avx2.s"; then
  echo "ok: simd loops use 256-bit ymm packs in the AVX2 TU"
else
  echo "FAIL: the AVX2 TU emits no ymm pack code — the explicit" >&2
  echo "      intrinsics path silently fell back to scalar" >&2
  exit 1
fi

"$CXX" -std=c++20 -O3 -DNDEBUG -Isrc -S "$BASE_TU" -o "$WORK/base.s"
if grep -qE "cmpltpd|cmplepd|cmpeqpd|cmppd" "$WORK/base.s" \
   && grep -qE "andnpd|andnps" "$WORK/base.s"; then
  echo "ok: simd loops use SSE2 compare/blend packs in the baseline TU"
else
  echo "FAIL: the baseline TU emits no SSE2 pack code — the explicit" >&2
  echo "      intrinsics path silently fell back to scalar" >&2
  exit 1
fi

# --- 3. scalar-fallback guard --------------------------------------------
cat > "$WORK/require_simd.cpp" <<'EOF'
#define MCS_LANE_REQUIRE_SIMD 1
#include "mcs/analysis/lane_ops.hpp"
int main() { return 0; }
EOF
if "$CXX" -std=c++20 -O2 -Isrc -c "$WORK/require_simd.cpp" \
     -o /dev/null 2>"$WORK/require.err"; then
  echo "ok: lane-ops default backend is SIMD on x86-64"
else
  echo "FAIL: lane_ops.hpp selected the scalar backend on x86-64:" >&2
  cat "$WORK/require.err" >&2
  exit 1
fi

echo "vectorization check passed"
