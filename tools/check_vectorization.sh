#!/usr/bin/env sh
# Vectorization sanity check for the batched probe kernel.
#
# The batched all-cores probe (src/mcs/analysis/batch_probe.cpp) gets its
# speedup from the compiler auto-vectorizing the per-core "lane loops"
# (each labeled `// lane loop: <name>` on the loop line).  This script
# compiles that one TU with GCC's vectorizer report (-fopt-info-vec) and
# asserts that every loop in the REQUIRED list below still vectorizes, so
# a kernel edit or toolchain change that silently serializes the hot path
# fails CI instead of just slowing the bench down.
#
# Loops NOT in the list carry genuine cross-lane serial dependencies (the
# min/max policy fold, the monotone validity counter) or store through
# type-mixed masks; they are expected to stay scalar and are not checked.
#
# Usage: tools/check_vectorization.sh [compiler]   (default: c++)
set -eu

cd "$(dirname "$0")/.."
CXX="${1:-c++}"
TU=src/mcs/analysis/batch_probe.cpp
REPORT=$(mktemp)
trap 'rm -f "$REPORT"' EXIT INT TERM

# Same language/optimization surface as the Release CI build; the report
# lists one "loop vectorized" note per vectorized loop with its line.
"$CXX" -std=c++20 -O3 -DNDEBUG -Isrc -c "$TU" -o /dev/null \
  -fopt-info-vec-optimized 2>"$REPORT"

# Labels of the lane loops that must vectorize.  Line numbers are resolved
# from the markers at check time, so editing the file does not stale them.
REQUIRED="hrow
lambda init
lambda numerator
theta
mu/fold init
Eq. (4) sum
K == 1 utilization
accept mask"

status=0
echo "$REQUIRED" | while IFS= read -r label; do
  line=$(grep -n "lane loop: $label\$" "$TU" | head -1 | cut -d: -f1)
  if [ -z "$line" ]; then
    echo "FAIL: marker 'lane loop: $label' not found in $TU" >&2
    exit 1
  fi
  if grep -q "^$TU:$line:.*loop vectorized" "$REPORT"; then
    echo "ok: lane loop '$label' ($TU:$line) vectorized"
  else
    echo "FAIL: lane loop '$label' ($TU:$line) did NOT vectorize" >&2
    echo "---- vectorizer notes for $TU ----" >&2
    grep "^$TU" "$REPORT" >&2 || true
    exit 1
  fi
done || status=1

exit $status
