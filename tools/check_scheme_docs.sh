#!/usr/bin/env bash
# Docs-coverage gate: every enumerable scheme of the partition grammar
# (mcs_report --list-schemes) must have a backticked heading in
# ALGORITHMS.md, e.g.
#
#   ### `UD-TPA/ge`
#
# so adding a scheme to the registry without documenting it fails CI.
#
#   usage: tools/check_scheme_docs.sh [path/to/mcs_report] [ALGORITHMS.md]
set -u

report="${1:-build/tools/mcs_report}"
doc="${2:-ALGORITHMS.md}"

if [[ ! -x "$report" ]]; then
  echo "check_scheme_docs: mcs_report not found at $report" >&2
  exit 2
fi
if [[ ! -f "$doc" ]]; then
  echo "check_scheme_docs: doc not found at $doc" >&2
  exit 2
fi

schemes="$("$report" --list-schemes)" || {
  echo "check_scheme_docs: $report --list-schemes failed" >&2
  exit 2
}

missing=0
count=0
while IFS= read -r scheme; do
  [[ -z "$scheme" ]] && continue
  count=$((count + 1))
  # A heading line containing the exact backticked scheme name.  The
  # backticks delimit the match, so `UD-TPA` does not match `UD-TPA/ge`;
  # the fixed-string grep keeps grammar names free of regex surprises.
  if ! grep '^#' "$doc" | grep -Fq "\`${scheme}\`"; then
    echo "check_scheme_docs: scheme '$scheme' has no heading in $doc" >&2
    missing=$((missing + 1))
  fi
done <<< "$schemes"

if [[ "$count" -eq 0 ]]; then
  echo "check_scheme_docs: --list-schemes printed nothing" >&2
  exit 2
fi
if [[ "$missing" -gt 0 ]]; then
  echo "check_scheme_docs: $missing of $count schemes undocumented" >&2
  exit 1
fi
echo "check_scheme_docs: all $count schemes documented in $doc"
