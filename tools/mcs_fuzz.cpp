// mcs_fuzz: seeded generate -> check -> shrink fuzzing of the library's
// safety claims.
//
//   mcs_fuzz                               # all five targets, 30 s each
//   mcs_fuzz --target=soundness --budget-s 120
//   mcs_fuzz --seed 7 --corpus-dir tests/corpus
//   mcs_fuzz --replay tests/corpus/boundary_util_one.mcs
//
// Every finding prints a reproduction command (same seed + trial cap) and,
// with --corpus-dir, a shrunk reproducer file.  Replays run under span
// tracing: a failing replay dumps a flight record into --dump-dir and the
// FAIL line names the dump, so a regression comes with its own timeline.
// Exit status is nonzero when any target produced a finding or any replayed
// case failed.
#include <exception>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "mcs/util/cli.hpp"
#include "mcs/verify/corpus.hpp"
#include "mcs/verify/fuzzer.hpp"

namespace {

int replay_files(const std::vector<std::string>& paths,
                 const std::string& dump_dir) {
  int failures = 0;
  for (const std::string& path : paths) {
    try {
      const mcs::verify::CorpusCase c = mcs::verify::load_corpus_case(path);
      const std::string tag = std::filesystem::path(path).stem().string();
      const mcs::verify::CheckResult r =
          mcs::verify::replay_with_flight_record(c, dump_dir, tag);
      if (r.ok) {
        std::cout << "PASS " << path << " (target=" << c.meta.target << ")\n";
      } else {
        ++failures;
        std::cout << "FAIL " << path << ": " << r.detail << "\n";
      }
    } catch (const std::exception& e) {
      ++failures;
      std::cout << "FAIL " << path << ": " << e.what() << "\n";
    }
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const mcs::util::Cli cli(
        argc, argv,
        {{"target",
          "soundness|differential|io|engine-parity|probe-parity "
          "(default: all five)"},
         {"budget-s", "wall-clock budget per target in seconds (default 30)"},
         {"seed", "base seed; findings reproduce from (seed, trial)"},
         {"max-trials", "stop after this many trials (0 = budget only)"},
         {"max-findings", "stop a target after this many findings (default 4)"},
         {"threads", "worker threads (0 = hardware default)"},
         {"corpus-dir", "save shrunk reproducers into this directory"},
         {"replay", "replay a corpus file instead of fuzzing"},
         {"dump-dir",
          "directory for flight-recorder dumps on replay failure "
          "(default: flight)"}});
    if (cli.help_requested()) {
      std::cout << cli.usage("mcs_fuzz");
      return 0;
    }
    if (const auto path = cli.get("replay")) {
      const std::string dump_dir =
          cli.get_or("dump-dir", std::string("flight"));
      return replay_files({*path}, dump_dir) == 0 ? 0 : 1;
    }

    std::vector<mcs::verify::FuzzTarget> targets;
    if (const auto name = cli.get("target")) {
      targets.push_back(mcs::verify::parse_target(*name));
    } else {
      targets = {mcs::verify::FuzzTarget::kSoundness,
                 mcs::verify::FuzzTarget::kDifferential,
                 mcs::verify::FuzzTarget::kIo,
                 mcs::verify::FuzzTarget::kEngineParity,
                 mcs::verify::FuzzTarget::kProbeParity};
    }

    std::size_t total_findings = 0;
    for (const mcs::verify::FuzzTarget target : targets) {
      mcs::verify::FuzzOptions options;
      options.target = target;
      options.budget_s = cli.get_or("budget-s", 30.0);
      options.seed = cli.get_or("seed", std::uint64_t{1});
      options.max_trials = cli.get_or("max-trials", std::uint64_t{0});
      options.max_findings = static_cast<std::size_t>(
          cli.get_or("max-findings", std::uint64_t{4}));
      options.threads =
          static_cast<std::size_t>(cli.get_or("threads", std::uint64_t{0}));
      options.corpus_dir = cli.get_or("corpus-dir", std::string{});

      const mcs::verify::FuzzReport report = mcs::verify::run_fuzz(options);
      std::cout << mcs::verify::describe(report) << "\n\n";
      total_findings += report.findings.size();
    }
    return total_findings == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "mcs_fuzz: " << e.what() << "\n";
    return 2;
  }
}
