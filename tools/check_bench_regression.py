#!/usr/bin/env python3
"""Bench regression gate: compare fresh --quick bench JSON against the
committed baselines.

Usage:
    tools/check_bench_regression.py [--tolerance 0.25] \
        BENCH_sim.json:build/BENCH_sim_ci.json \
        BENCH_probe.json:build/BENCH_probe_ci.json

    tools/check_bench_regression.py --discover FRESH_DIR [--baseline-dir .]

Each positional argument is a baseline:fresh pair of bench JSON files (as
written by bench_sim_engine / bench_probe / mcs_serve --selftest --out).

--discover removes the need to enumerate pairs by hand: every committed
BENCH_*.json in --baseline-dir (the repo root by default) is gated against
FRESH_DIR/BENCH_*_ci.json, and a baseline whose fresh counterpart is missing
is an error -- so adding a new committed BENCH_ file without teaching CI to
regenerate it fails loudly instead of silently going ungated.

Only the dimensionless
speedup ratios are compared -- the aggregates and the per-size entries
(including the 2-D "speedup_2d" / "aggregate_speedup_2d" ratios when the
bench emits them, labelled "tasks=N/2d" and "aggregate/2d") --
because absolute ns/op numbers are machine-dependent while fast-vs-reference
(or batched-vs-scalar) ratios on the same machine are not.  A fresh ratio may
fall below its committed baseline by a per-ratio fractional tolerance,
resolved in precedence order:

  1. baseline JSON "gate_tolerances" entry for the ratio's exact label
     (e.g. "aggregate", "tasks=50/2d"),
  2. baseline JSON "gate_tolerances" "default" entry,
  3. the --tolerance flag (default 0.25, which absorbs --quick jitter on
     shared CI runners).

The bench that writes the baseline owns its tolerances: stable headline
aggregates can carry a tight floor while microsecond-scale small-N sweeps
stay loose, without CI ever touching a global knob.  Speedups above
baseline never fail.

Exit status: 0 when every ratio is within tolerance, 1 on regression, 2 on
unreadable/mismatched inputs.  Stdlib only.
"""

import argparse
import glob
import json
import os
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError) as e:
        sys.exit(f"check_bench_regression: cannot load {path}: {e}")


def ratios(doc, path):
    """Extracts {label: speedup} from one bench JSON document."""
    out = {}
    try:
        out["aggregate"] = float(doc["aggregate_speedup"])
        if "aggregate_speedup_2d" in doc:
            out["aggregate/2d"] = float(doc["aggregate_speedup_2d"])
        for size in doc["sizes"]:
            out[f"tasks={size['tasks']}"] = float(size["speedup"])
            if "speedup_2d" in size:
                out[f"tasks={size['tasks']}/2d"] = float(size["speedup_2d"])
    except (KeyError, TypeError) as e:
        sys.exit(f"check_bench_regression: {path} is not a bench JSON ({e})")
    return out


def tolerances(doc, path, default):
    """Per-label tolerance lookup from the baseline's gate_tolerances.

    Returns a function label -> fractional tolerance, falling back to the
    document's "default" entry and then to the CLI default.
    """
    table = doc.get("gate_tolerances", {})
    if not isinstance(table, dict):
        sys.exit(f"check_bench_regression: {path} gate_tolerances must be "
                 "an object of label -> fraction")
    for label, value in table.items():
        try:
            frac = float(value)
        except (TypeError, ValueError):
            sys.exit(f"check_bench_regression: {path} gate_tolerances"
                     f"['{label}'] is not a number")
        if not 0.0 <= frac < 1.0:
            sys.exit(f"check_bench_regression: {path} gate_tolerances"
                     f"['{label}'] = {frac} must be in [0, 1)")
    doc_default = float(table["default"]) if "default" in table else default
    return lambda label: float(table.get(label, doc_default))


def discover_pairs(baseline_dir, fresh_dir):
    """BASELINE:FRESH pairs for every committed BENCH_*.json.

    BENCH_foo.json gates against FRESH_DIR/BENCH_foo_ci.json (the naming
    the CI bench-smoke steps already use).
    """
    baselines = sorted(glob.glob(os.path.join(baseline_dir, "BENCH_*.json")))
    baselines = [p for p in baselines if not p.endswith("_ci.json")]
    if not baselines:
        sys.exit(f"check_bench_regression: no BENCH_*.json in {baseline_dir}")
    pairs = []
    for baseline in baselines:
        stem = os.path.basename(baseline)[:-len(".json")]
        fresh = os.path.join(fresh_dir, stem + "_ci.json")
        if not os.path.exists(fresh):
            sys.exit(f"check_bench_regression: {baseline} is committed but "
                     f"{fresh} was not generated -- every committed bench "
                     "baseline must be regenerated and gated")
        pairs.append(f"{baseline}:{fresh}")
    return pairs


def main():
    parser = argparse.ArgumentParser(
        description="fail when fresh bench speedups regress vs committed "
        "baselines")
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="fallback fractional drop allowed below baseline when the "
        "baseline JSON carries no gate_tolerances entry (default 0.25)")
    parser.add_argument(
        "--discover", metavar="FRESH_DIR",
        help="gate every BENCH_*.json in --baseline-dir against "
        "FRESH_DIR/BENCH_*_ci.json instead of explicit pairs")
    parser.add_argument(
        "--baseline-dir", default=".",
        help="where committed BENCH_*.json baselines live (default .)")
    parser.add_argument(
        "pairs", nargs="*", metavar="BASELINE:FRESH",
        help="baseline and fresh bench JSON paths, colon-separated")
    args = parser.parse_args()
    if not 0.0 <= args.tolerance < 1.0:
        sys.exit("check_bench_regression: --tolerance must be in [0, 1)")
    if bool(args.discover) == bool(args.pairs):
        sys.exit("check_bench_regression: pass either --discover FRESH_DIR "
                 "or explicit BASELINE:FRESH pairs")
    pairs = discover_pairs(args.baseline_dir, args.discover) \
        if args.discover else args.pairs

    rows = []
    failed = False
    for pair in pairs:
        baseline_path, sep, fresh_path = pair.partition(":")
        if not sep or not fresh_path:
            sys.exit(f"check_bench_regression: malformed pair '{pair}' "
                     "(expected BASELINE:FRESH)")
        baseline_doc = load(baseline_path)
        fresh_doc = load(fresh_path)
        bench = baseline_doc.get("bench", baseline_path)
        if fresh_doc.get("bench") != baseline_doc.get("bench"):
            sys.exit(f"check_bench_regression: {fresh_path} is "
                     f"'{fresh_doc.get('bench')}' but {baseline_path} is "
                     f"'{baseline_doc.get('bench')}'")
        base = ratios(baseline_doc, baseline_path)
        fresh = ratios(fresh_doc, fresh_path)
        tol_of = tolerances(baseline_doc, baseline_path, args.tolerance)
        for label, base_speedup in sorted(base.items()):
            if label not in fresh:
                sys.exit(f"check_bench_regression: {fresh_path} lacks "
                         f"'{label}' present in {baseline_path}")
            tol = tol_of(label)
            floor = base_speedup * (1.0 - tol)
            ok = fresh[label] >= floor
            failed = failed or not ok
            rows.append((bench, label, base_speedup, fresh[label], tol,
                         floor, "ok" if ok else "REGRESSED"))

    width = max(len(r[0]) for r in rows)
    lwidth = max(len(r[1]) for r in rows)
    print(f"{'bench':{width}}  {'ratio':{lwidth}}  {'baseline':>8}  "
          f"{'fresh':>8}  {'tol':>5}  {'floor':>8}  verdict")
    for bench, label, base_speedup, fresh_speedup, tol, floor, verdict \
            in rows:
        print(f"{bench:{width}}  {label:{lwidth}}  {base_speedup:8.3f}  "
              f"{fresh_speedup:8.3f}  {tol:5.0%}  {floor:8.3f}  {verdict}")
    if failed:
        print("\ncheck_bench_regression: speedup regressed beyond its "
              "per-ratio tolerance", file=sys.stderr)
        return 1
    print("\nall speedups within their per-ratio tolerances")
    return 0


if __name__ == "__main__":
    sys.exit(main())
