// Docs renderer: regenerates the experiment tables in the markdown docs
// from the committed artifacts (written by tools/mcs_exp).
//
//   $ mcs_report                       # rewrite EXPERIMENTS.md in place
//   $ mcs_report --check               # exit 1 if the docs drifted
//   $ mcs_report --doc OTHER.md --artifacts artifacts
//
// The renderer owns the region between
//   <!-- mcs_report:begin <spec>[:<metric>] -->  and
//   <!-- mcs_report:end <spec>[:<metric>] -->
// markers: each block becomes a provenance comment plus the table for the
// requested metric (ratio by default; u_sys, u_avg, imbalance, counters).
// `mcs_exp --figure all && mcs_report` regenerates the docs end-to-end.
#include <fstream>
#include <iostream>
#include <iterator>
#include <map>

#include "mcs/mcs.hpp"

namespace {

/// Splits "spec[:metric]".
std::pair<std::string, std::string> split_block_name(const std::string& name) {
  const std::size_t colon = name.find(':');
  if (colon == std::string::npos) return {name, "ratio"};
  return {name.substr(0, colon), name.substr(colon + 1)};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcs;
  const util::Cli cli(
      argc, argv,
      {{"artifacts", "artifacts directory (default: artifacts)"},
       {"doc", "markdown file to render (default: EXPERIMENTS.md)"},
       {"check", "verify the doc matches the artifacts; write nothing"},
       {"list-schemes",
        "print every enumerable scheme spec of the partition grammar "
        "(one per line) and exit"}});
  if (cli.help_requested()) {
    std::cout << cli.usage("mcs_report");
    return 0;
  }
  if (cli.has("list-schemes")) {
    // The docs-coverage CI check (tools/check_scheme_docs.sh) diffs this
    // list against the ALGORITHMS.md section headings.
    for (const std::string& spec : partition::registered_scheme_specs()) {
      std::cout << spec << '\n';
    }
    return 0;
  }
  const std::string artifacts_dir =
      cli.get_or("artifacts", std::string("artifacts"));
  const std::string doc_path = cli.get_or("doc", std::string("EXPERIMENTS.md"));

  std::string doc;
  {
    std::ifstream in(doc_path);
    if (!in) {
      std::cerr << "mcs_report: cannot read " << doc_path << '\n';
      return 2;
    }
    doc.assign(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
  }

  try {
    const std::vector<std::string> blocks = exp::doc_block_names(doc);
    if (blocks.empty()) {
      std::cerr << "mcs_report: no mcs_report marker blocks in " << doc_path
                << '\n';
      return 2;
    }

    // Load every referenced artifact (and trace summary) once.  Blocks
    // named "trace:<name>" render from <artifacts>/<name>.trace_summary.json
    // instead of a sweep artifact; blocks named "serve:<stem>" render from
    // <stem>.json next to the doc (the committed BENCH_serve.json).
    std::map<std::string, exp::Artifact> artifacts;
    std::map<std::string, obs::TraceSummary> summaries;
    std::map<std::string, std::string> summary_files;
    std::map<std::string, util::Json> serve_benches;
    for (const std::string& block : blocks) {
      const auto [spec, metric] = split_block_name(block);
      if (spec == "serve") {
        if (serve_benches.count(metric) != 0) continue;
        const std::string path = metric + ".json";
        std::ifstream in(path);
        if (!in) {
          std::cerr << "mcs_report: block '" << block
                    << "' needs missing bench file " << path
                    << " (run mcs_serve --selftest --out " << path << ")\n";
          return 2;
        }
        const std::string text{std::istreambuf_iterator<char>(in),
                               std::istreambuf_iterator<char>()};
        serve_benches.emplace(metric, util::Json::parse(text));
        continue;
      }
      if (spec == "trace") {
        if (summaries.count(metric) != 0) continue;
        const std::string file = metric + ".trace_summary.json";
        const std::string path = artifacts_dir + "/" + file;
        std::ifstream in(path);
        if (!in) {
          std::cerr << "mcs_report: block '" << block
                    << "' needs missing trace summary " << path
                    << " (run mcs_trace --summary-json)\n";
          return 2;
        }
        const std::string text{std::istreambuf_iterator<char>(in),
                               std::istreambuf_iterator<char>()};
        summaries.emplace(metric,
                          obs::parse_trace_summary(util::Json::parse(text)));
        summary_files.emplace(metric, file);
        continue;
      }
      if (artifacts.count(spec) != 0) continue;
      const std::string path = artifacts_dir + "/" + spec + ".json";
      std::optional<exp::Artifact> artifact = exp::load_artifact(path);
      if (!artifact) {
        std::cerr << "mcs_report: block '" << block
                  << "' needs missing/invalid artifact " << path
                  << " (run mcs_exp --figure " << spec << ")\n";
        return 2;
      }
      artifacts.emplace(spec, std::move(*artifact));
    }

    const std::string rendered =
        exp::replace_blocks(doc, [&](const std::string& block) {
          const auto [spec, metric] = split_block_name(block);
          if (spec == "serve") {
            return exp::render_serve_block(serve_benches.at(metric),
                                           metric + ".json");
          }
          if (spec == "trace") {
            return exp::render_trace_block(summaries.at(metric),
                                           summary_files.at(metric));
          }
          return exp::render_block(artifacts.at(spec), metric);
        });

    if (cli.has("check")) {
      if (rendered != doc) {
        std::cerr << "mcs_report: " << doc_path
                  << " is out of date with " << artifacts_dir
                  << " — run mcs_report to regenerate\n";
        return 1;
      }
      std::cout << doc_path << ": " << blocks.size()
                << " block(s) up to date\n";
      return 0;
    }

    if (rendered == doc) {
      std::cout << doc_path << ": " << blocks.size()
                << " block(s) already up to date\n";
      return 0;
    }
    std::ofstream out(doc_path, std::ios::binary);
    out << rendered;
    std::cout << doc_path << ": rendered " << blocks.size() << " block(s)\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "mcs_report: " << e.what() << '\n';
    return 2;
  }
}
