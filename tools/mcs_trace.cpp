// Trace digester: summarizes a Chrome trace-event JSON file (as exported
// by mcs_exp --trace or an obs::flight dump) into a per-span-name table of
// count, total time and p50/p99 self time.
//
//   $ mcs_trace --in artifacts/fig1.trace.json
//   $ mcs_trace --in fig1.trace.json --summary-json artifacts/fig1.trace_summary.json
//   $ mcs_trace --in fig1.trace.json --export-chrome clean.json
//   $ mcs_trace --in fig1.trace.json --require catpa.place,sim.simulate
//
// --require fails (exit 1) unless every named event appears in the trace —
// the CI trace-smoke job uses it to prove all instrumented layers emitted.
// --export-chrome rewrites the input as a minimal {"traceEvents":[...]}
// document (e.g. to strip a flight dump's note for sharing).
#include <fstream>
#include <iostream>
#include <iterator>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "mcs/mcs.hpp"

namespace {

std::vector<std::string> split_csv(const std::string& arg) {
  std::vector<std::string> out;
  std::istringstream in(arg);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcs;
  try {
    const util::Cli cli(
        argc, argv,
        {{"in", "Chrome trace-event JSON file to digest (required)"},
         {"top", "print only the N most self-time-heavy spans (default: all)"},
         {"require",
          "comma list of event names that must appear; exit 1 otherwise"},
         {"summary-json", "write the summary as JSON to this path"},
         {"export-chrome",
          "rewrite the events as a plain {\"traceEvents\":[...]} file"},
         {"source",
          "provenance string recorded in the summary (default: --in path)"},
         {"quiet", "suppress the console table"}});
    if (cli.help_requested()) {
      std::cout << cli.usage("mcs_trace");
      return 0;
    }
    const auto in_path = cli.get("in");
    if (!in_path) {
      std::cerr << "mcs_trace: --in <trace.json> is required\n";
      return 2;
    }

    std::ifstream in(*in_path);
    if (!in) {
      std::cerr << "mcs_trace: cannot read " << *in_path << '\n';
      return 2;
    }
    const std::string text{std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>()};
    const util::Json doc = util::Json::parse(text);
    const util::Json* events = doc.find("traceEvents");
    if (events == nullptr || !events->is_array()) {
      std::cerr << "mcs_trace: " << *in_path << " has no traceEvents array\n";
      return 2;
    }

    if (const auto require = cli.get("require")) {
      std::set<std::string> present;
      for (const util::Json& event : events->items()) {
        if (const util::Json* name = event.find("name"); name != nullptr) {
          present.insert(name->as_string());
        }
      }
      std::vector<std::string> missing;
      for (const std::string& name : split_csv(*require)) {
        if (present.count(name) == 0) missing.push_back(name);
      }
      if (!missing.empty()) {
        std::cerr << "mcs_trace: required event name(s) absent from "
                  << *in_path << ":";
        for (const std::string& name : missing) std::cerr << ' ' << name;
        std::cerr << '\n';
        return 1;
      }
    }

    const std::string source = cli.get_or("source", *in_path);
    const obs::TraceSummary summary = obs::summarize_chrome_trace(doc, source);

    if (!cli.has("quiet")) {
      util::Table table({"span", "count", "total ms", "self ms",
                         "p50 self us", "p99 self us"});
      const std::size_t top = static_cast<std::size_t>(
          cli.get_or("top", std::uint64_t{0}));
      std::size_t shown = 0;
      for (const obs::SpanStats& stats : summary.spans) {
        if (top != 0 && shown >= top) break;
        table.begin_row();
        table.add_cell(stats.name);
        table.add_cell(static_cast<std::size_t>(stats.count));
        table.add_cell(static_cast<double>(stats.total_ns) / 1e6, 3);
        table.add_cell(static_cast<double>(stats.self_ns) / 1e6, 3);
        table.add_cell(static_cast<double>(stats.p50_self_ns) / 1e3, 1);
        table.add_cell(static_cast<double>(stats.p99_self_ns) / 1e3, 1);
        ++shown;
      }
      table.print(std::cout);
      if (top != 0 && summary.spans.size() > top) {
        std::cout << "(" << summary.spans.size() - top
                  << " more span name(s) below --top cutoff)\n";
      }
    }

    if (const auto out_path = cli.get("summary-json")) {
      std::ofstream out(*out_path);
      if (!out) {
        std::cerr << "mcs_trace: cannot write " << *out_path << '\n';
        return 2;
      }
      out << obs::trace_summary_json(summary).dump() << '\n';
      std::cerr << "mcs_trace: wrote summary " << *out_path << '\n';
    }

    if (const auto out_path = cli.get("export-chrome")) {
      std::ofstream out(*out_path);
      if (!out) {
        std::cerr << "mcs_trace: cannot write " << *out_path << '\n';
        return 2;
      }
      util::Json clean = util::Json::object();
      clean.set("traceEvents", *events);
      out << clean.dump() << '\n';
      std::cerr << "mcs_trace: wrote " << *out_path << '\n';
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "mcs_trace: " << e.what() << '\n';
    return 2;
  }
}
