// Unified experiment orchestrator CLI.
//
// Runs the builtin experiment specs (the paper's figures fig1..fig5 and the
// CA-TPA ablations a1..a4) with per-point checkpointing and versioned
// artifact output:
//
//   $ mcs_exp --figure fig1 --trials 2000 --seed 1
//   $ mcs_exp --figure all --out artifacts --commit $(git rev-parse --short HEAD)
//   $ mcs_exp --figure fig3,a1 --trials 500
//
// Each run writes <out>/<spec>.json (exact, bit-reproducible aggregates +
// observability counters) and <out>/<spec>.csv.  An interrupted run leaves
// <out>/<spec>.checkpoint.jsonl behind; re-running the same command resumes
// from it and produces byte-identical artifacts.  tools/mcs_report renders
// the committed docs from these artifacts.
//
// --trace <path> enables span tracing for the whole run and exports one
// Chrome trace-event JSON (Perfetto-loadable) covering every layer:
// exp.point spans from the sweeps, analysis/partitioner spans from the
// placement work, and — because sweep points only run partitioning — a
// short post-sweep "trace probe" that partitions and simulates one
// workload so the engine spans and scheduling instants appear on the same
// timeline.
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <thread>

#include "mcs/mcs.hpp"

namespace {

std::vector<std::string> parse_spec_list(const std::string& arg) {
  std::vector<std::string> names;
  if (arg == "all") {
    for (const mcs::exp::SweepSpec& spec : mcs::exp::builtin_specs()) {
      names.push_back(spec.name);
    }
    return names;
  }
  std::istringstream in(arg);
  std::string name;
  while (std::getline(in, name, ',')) {
    if (!name.empty()) names.push_back(name);
  }
  return names;
}

/// Emits sim-layer spans into the trace: generates workloads from the
/// spec's first point, partitions them, and simulates the first feasible
/// partition over one hyperperiod with the ObsTraceSink bridge attached.
void run_trace_probe(const mcs::exp::SweepSpec& spec, double alpha,
                     std::uint64_t seed) {
  using namespace mcs;
  static constexpr obs::TraceSite kProbeSite{"exp.trace_probe", "trial"};
  const exp::Sweep sweep = exp::to_sweep(spec, alpha);
  if (sweep.points.empty()) return;
  const exp::SweepPoint& pt = sweep.points.front();
  const partition::PartitionerList schemes =
      pt.make_schemes ? pt.make_schemes() : partition::paper_schemes(alpha);
  for (std::uint64_t trial = 0; trial < 32; ++trial) {
    const obs::ScopedSpan span(kProbeSite, trial);
    const TaskSet ts = gen::generate_trial(pt.params, seed, trial);
    for (const auto& scheme : schemes) {
      const partition::PartitionResult result =
          scheme->run(ts, pt.params.num_cores);
      if (!result.success) continue;
      sim::ObsTraceSink sink;
      sim::SimConfig cfg;
      cfg.use_hyperperiod_horizon = true;
      const sim::RandomScenario scenario(gen::derive_seed(seed, trial), 0.1);
      (void)sim::simulate(result.partition, scenario, cfg, &sink);
      return;  // one simulated workload is enough for the timeline
    }
  }
  std::cerr << "mcs_exp: trace probe found no feasible partition in 32 "
               "trials; the trace has no sim-layer spans\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcs;
  const util::Cli cli(
      argc, argv,
      {{"figure", "spec(s) to run: a name, a comma list, or 'all'"},
       {"list", "list the builtin specs and exit"},
       {"trials", "task sets per data point (default 2000)"},
       {"seed", "base RNG seed (default 1)"},
       {"threads", "worker threads per point (default: hardware concurrency)"},
       {"jobs",
        "run N sweep points concurrently (default 1; clamped to hardware "
        "concurrency; artifacts are byte-identical for any N)"},
       {"alpha", "CA-TPA imbalance threshold (default 0.7)"},
       {"full", "paper fidelity: 50000 task sets per point"},
       {"out", "artifacts directory (default: artifacts)"},
       {"commit", "provenance string recorded in artifacts"},
       {"no-resume", "ignore existing checkpoints; start fresh"},
       {"no-metrics", "skip observability counter capture"},
       {"stop-after", "stop after N new points (interruption testing)"},
       {"trace",
        "enable span tracing and export a Chrome/Perfetto trace to this "
        "path"},
       {"quiet", "suppress the console panels"}});
  if (cli.help_requested()) {
    std::cout << cli.usage("mcs_exp");
    return 0;
  }
  if (cli.has("list")) {
    for (const exp::SweepSpec& spec : exp::builtin_specs()) {
      std::cout << spec.name << "\t" << spec.title << '\n';
    }
    return 0;
  }

  exp::SpecRunOptions options;
  options.trials = cli.has("full") ? exp::kPaperTrials
                                   : cli.get_or("trials", exp::kDefaultTrials);
  options.seed = cli.get_or("seed", std::uint64_t{1});
  options.threads =
      static_cast<std::size_t>(cli.get_or("threads", std::uint64_t{0}));
  options.alpha = cli.get_or("alpha", exp::kDefaultAlpha);
  options.artifacts_dir = cli.get_or("out", std::string("artifacts"));
  options.resume = !cli.has("no-resume");
  options.collect_metrics = !cli.has("no-metrics");
  options.stop_after_points =
      static_cast<std::size_t>(cli.get_or("stop-after", std::uint64_t{0}));
  options.source = cli.get_or("commit", std::string());

  std::size_t jobs = 1;
  try {
    jobs = svc::resolve_jobs(cli.get_or("jobs", std::uint64_t{1}));
  } catch (const std::invalid_argument& e) {
    std::cerr << "mcs_exp: " << e.what() << '\n';
    return 1;
  }

  const std::vector<std::string> names =
      parse_spec_list(cli.get_or("figure", std::string("all")));
  if (names.empty()) {
    std::cerr << "mcs_exp: no specs selected (builtin: " << exp::spec_names()
              << ")\n";
    return 1;
  }

  const std::optional<std::string> trace_path = cli.get("trace");
  std::optional<obs::TraceEnabledGuard> trace_guard;
  if (trace_path) {
    obs::reset_trace();
    trace_guard.emplace(true);
  }
  const exp::SweepSpec* traced_spec = nullptr;

  for (const std::string& name : names) {
    const exp::SweepSpec* spec = exp::find_spec(name);
    if (spec == nullptr) {
      std::cerr << "mcs_exp: unknown spec '" << name << "' (builtin: "
                << exp::spec_names() << ")\n";
      return 1;
    }
    if (traced_spec == nullptr) traced_spec = spec;

    exp::SpecRunOptions run_options = options;
    run_options.progress = [&](std::size_t done, std::size_t total) {
      std::cerr << "[" << spec->name << "] point " << done << "/" << total
                << " done\n";
    };
    const exp::SpecRunResult run =
        jobs > 1 ? svc::run_spec_parallel(*spec, run_options, jobs)
                 : run_spec(*spec, run_options);

    if (run.resumed_points > 0) {
      std::cerr << "[" << spec->name << "] resumed " << run.resumed_points
                << " point(s) from " << run.checkpoint_path << '\n';
    }
    if (!run.complete) {
      std::cerr << "[" << spec->name << "] interrupted after "
                << run.result.points.size() << " point(s); checkpoint kept at "
                << run.checkpoint_path << '\n';
      return 2;
    }
    if (!cli.has("quiet")) {
      print_figure(std::cout, run.result, spec->title);
      std::cout << '\n';
    }
    std::cerr << "[" << spec->name << "] artifacts: " << run.json_path << ", "
              << run.csv_path << '\n';
  }

  if (trace_path) {
    if (traced_spec != nullptr) {
      // The probe floods its ring with thousands of per-event sim instants;
      // running it on its own thread gives it its own ring (and its own
      // Perfetto track) instead of wrapping the main ring and evicting the
      // sweep's exp/analysis spans.  Joined before collection, so the
      // quiescence contract holds.
      std::thread probe([&] {
        run_trace_probe(*traced_spec, options.alpha, options.seed);
      });
      probe.join();
    }
    std::ofstream out(*trace_path);
    if (!out) {
      std::cerr << "mcs_exp: cannot write trace " << *trace_path << '\n';
      return 1;
    }
    out << obs::chrome_trace_json(obs::collect_trace()).dump() << '\n';
    std::cerr << "mcs_exp: wrote trace " << *trace_path << '\n';
  }
  return 0;
}
