// Unified experiment orchestrator CLI.
//
// Runs the builtin experiment specs (the paper's figures fig1..fig5 and the
// CA-TPA ablations a1..a4) with per-point checkpointing and versioned
// artifact output:
//
//   $ mcs_exp --figure fig1 --trials 2000 --seed 1
//   $ mcs_exp --figure all --out artifacts --commit $(git rev-parse --short HEAD)
//   $ mcs_exp --figure fig3,a1 --trials 500
//
// Each run writes <out>/<spec>.json (exact, bit-reproducible aggregates +
// observability counters) and <out>/<spec>.csv.  An interrupted run leaves
// <out>/<spec>.checkpoint.jsonl behind; re-running the same command resumes
// from it and produces byte-identical artifacts.  tools/mcs_report renders
// the committed docs from these artifacts.
#include <iostream>
#include <sstream>

#include "mcs/mcs.hpp"

namespace {

std::vector<std::string> parse_spec_list(const std::string& arg) {
  std::vector<std::string> names;
  if (arg == "all") {
    for (const mcs::exp::SweepSpec& spec : mcs::exp::builtin_specs()) {
      names.push_back(spec.name);
    }
    return names;
  }
  std::istringstream in(arg);
  std::string name;
  while (std::getline(in, name, ',')) {
    if (!name.empty()) names.push_back(name);
  }
  return names;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcs;
  const util::Cli cli(
      argc, argv,
      {{"figure", "spec(s) to run: a name, a comma list, or 'all'"},
       {"list", "list the builtin specs and exit"},
       {"trials", "task sets per data point (default 2000)"},
       {"seed", "base RNG seed (default 1)"},
       {"threads", "worker threads (default: hardware concurrency)"},
       {"alpha", "CA-TPA imbalance threshold (default 0.7)"},
       {"full", "paper fidelity: 50000 task sets per point"},
       {"out", "artifacts directory (default: artifacts)"},
       {"commit", "provenance string recorded in artifacts"},
       {"no-resume", "ignore existing checkpoints; start fresh"},
       {"no-metrics", "skip observability counter capture"},
       {"stop-after", "stop after N new points (interruption testing)"},
       {"quiet", "suppress the console panels"}});
  if (cli.help_requested()) {
    std::cout << cli.usage("mcs_exp");
    return 0;
  }
  if (cli.has("list")) {
    for (const exp::SweepSpec& spec : exp::builtin_specs()) {
      std::cout << spec.name << "\t" << spec.title << '\n';
    }
    return 0;
  }

  exp::SpecRunOptions options;
  options.trials = cli.has("full") ? exp::kPaperTrials
                                   : cli.get_or("trials", exp::kDefaultTrials);
  options.seed = cli.get_or("seed", std::uint64_t{1});
  options.threads =
      static_cast<std::size_t>(cli.get_or("threads", std::uint64_t{0}));
  options.alpha = cli.get_or("alpha", exp::kDefaultAlpha);
  options.artifacts_dir = cli.get_or("out", std::string("artifacts"));
  options.resume = !cli.has("no-resume");
  options.collect_metrics = !cli.has("no-metrics");
  options.stop_after_points =
      static_cast<std::size_t>(cli.get_or("stop-after", std::uint64_t{0}));
  options.source = cli.get_or("commit", std::string());

  const std::vector<std::string> names =
      parse_spec_list(cli.get_or("figure", std::string("all")));
  if (names.empty()) {
    std::cerr << "mcs_exp: no specs selected (builtin: " << exp::spec_names()
              << ")\n";
    return 1;
  }

  for (const std::string& name : names) {
    const exp::SweepSpec* spec = exp::find_spec(name);
    if (spec == nullptr) {
      std::cerr << "mcs_exp: unknown spec '" << name << "' (builtin: "
                << exp::spec_names() << ")\n";
      return 1;
    }

    exp::SpecRunOptions run_options = options;
    run_options.progress = [&](std::size_t done, std::size_t total) {
      std::cerr << "[" << spec->name << "] point " << done << "/" << total
                << " done\n";
    };
    const exp::SpecRunResult run = run_spec(*spec, run_options);

    if (run.resumed_points > 0) {
      std::cerr << "[" << spec->name << "] resumed " << run.resumed_points
                << " point(s) from " << run.checkpoint_path << '\n';
    }
    if (!run.complete) {
      std::cerr << "[" << spec->name << "] interrupted after "
                << run.result.points.size() << " point(s); checkpoint kept at "
                << run.checkpoint_path << '\n';
      return 2;
    }
    if (!cli.has("quiet")) {
      print_figure(std::cout, run.result, spec->title);
      std::cout << '\n';
    }
    std::cerr << "[" << spec->name << "] artifacts: " << run.json_path << ", "
              << run.csv_path << '\n';
  }
  return 0;
}
