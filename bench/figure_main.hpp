// Shared driver for the figure-reproduction benches.  Each bench binary
// supplies a sweep builder; this header provides the standard CLI
// (--trials/--seed/--threads/--csv/--full) and rendering.
#pragma once

#include <functional>
#include <iostream>
#include <string>

#include "mcs/mcs.hpp"

namespace mcs::bench {

using SweepBuilder =
    std::function<exp::Sweep(const gen::GenParams& base, double alpha)>;

/// Runs a figure bench: builds the sweep with paper-default base parameters,
/// executes it, prints the four panels, and optionally writes CSV.
inline int figure_main(int argc, char** argv, const std::string& title,
                       const SweepBuilder& build) {
  const util::Cli cli(
      argc, argv,
      {{"trials", "task sets per data point (default 2000)"},
       {"seed", "base RNG seed (default 1)"},
       {"threads", "worker threads (default: hardware concurrency)"},
       {"alpha", "CA-TPA imbalance threshold (default 0.7)"},
       {"csv", "also write results to this CSV file"},
       {"full", "paper fidelity: 50000 task sets per point"}});
  if (cli.help_requested()) {
    std::cout << cli.usage(title);
    return 0;
  }

  exp::RunOptions options;
  options.trials = cli.has("full") ? exp::kPaperTrials
                                   : cli.get_or("trials", exp::kDefaultTrials);
  options.seed = cli.get_or("seed", std::uint64_t{1});
  options.threads =
      static_cast<std::size_t>(cli.get_or("threads", std::uint64_t{0}));
  const double alpha = cli.get_or("alpha", exp::kDefaultAlpha);

  const exp::Sweep sweep = build(exp::default_gen_params(), alpha);
  const exp::SweepResult result =
      run_sweep(sweep, options, [&](std::size_t done, std::size_t total) {
        std::cerr << "[" << title << "] point " << done << "/" << total
                  << " done\n";
      });
  print_figure(std::cout, result, title);
  std::cout << "\nSummary across the sweep:\n";
  print_summary(std::cout, result);
  if (const auto csv = cli.get("csv")) {
    write_csv(*csv, result);
    std::cout << "CSV written to " << *csv << '\n';
  }
  return 0;
}

}  // namespace mcs::bench
