// Reproduces paper Fig. 5: scheme performance vs the number of criticality
// levels (K in 2..6; M=8, NSU=0.6, alpha=0.7, IFC=0.4).
#include "figure_main.hpp"

int main(int argc, char** argv) {
  return mcs::bench::figure_main(
      argc, argv, "Figure 5 - varying K",
      [](const mcs::gen::GenParams& base, double alpha) {
        return mcs::exp::make_fig5_levels(base, alpha);
      });
}
