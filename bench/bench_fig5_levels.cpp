// Reproduces paper Fig. 5: scheme performance vs the number of criticality
// levels (K in 2..6; M=8, alpha=0.7, NSU=0.6, IFC=0.4).
#include "spec_main.hpp"

int main(int argc, char** argv) { return mcs::bench::spec_main(argc, argv, "fig5"); }
