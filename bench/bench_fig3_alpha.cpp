// Reproduces paper Fig. 3: scheme performance vs CA-TPA's imbalance
// threshold (alpha in 0.1..0.9; only CA-TPA depends on alpha, so the
// baselines stay flat across the sweep).
#include "spec_main.hpp"

int main(int argc, char** argv) { return mcs::bench::spec_main(argc, argv, "fig3"); }
