// Reproduces paper Fig. 3: scheme performance vs CA-TPA's imbalance
// threshold (alpha in 0.1..0.9; only CA-TPA depends on alpha, so the
// baselines stay flat across the sweep).
#include "figure_main.hpp"

int main(int argc, char** argv) {
  return mcs::bench::figure_main(
      argc, argv, "Figure 3 - varying alpha",
      [](const mcs::gen::GenParams& base, double /*alpha*/) {
        return mcs::exp::make_fig3_alpha(base);
      });
}
