// Shared driver for the ablation benches: an NSU sweep (the paper's Fig. 1
// axis) evaluated over a custom scheme line-up that isolates one design
// choice of CA-TPA.
#pragma once

#include <functional>
#include <iostream>
#include <string>

#include "mcs/mcs.hpp"

namespace mcs::bench {

using SchemeFactory = std::function<partition::PartitionerList(double alpha)>;

inline int ablation_main(int argc, char** argv, const std::string& title,
                         const SchemeFactory& make_schemes) {
  const util::Cli cli(
      argc, argv,
      {{"trials", "task sets per data point (default 2000)"},
       {"seed", "base RNG seed (default 1)"},
       {"threads", "worker threads (default: hardware concurrency)"},
       {"alpha", "CA-TPA imbalance threshold (default 0.7)"},
       {"csv", "also write results to this CSV file"}});
  if (cli.help_requested()) {
    std::cout << cli.usage(title);
    return 0;
  }

  exp::RunOptions options;
  options.trials = cli.get_or("trials", exp::kDefaultTrials);
  options.seed = cli.get_or("seed", std::uint64_t{1});
  options.threads =
      static_cast<std::size_t>(cli.get_or("threads", std::uint64_t{0}));
  const double alpha = cli.get_or("alpha", exp::kDefaultAlpha);

  exp::Sweep sweep;
  sweep.name = title;
  sweep.x_label = "NSU";
  for (double nsu : exp::kNsuRange) {
    gen::GenParams p = exp::default_gen_params();
    p.nsu = nsu;
    sweep.points.push_back(exp::SweepPoint{
        .x = nsu,
        .params = p,
        .make_schemes = [&make_schemes, alpha] { return make_schemes(alpha); }});
  }

  const exp::SweepResult result =
      run_sweep(sweep, options, [&](std::size_t done, std::size_t total) {
        std::cerr << "[" << title << "] point " << done << "/" << total
                  << " done\n";
      });
  print_figure(std::cout, result, title);
  if (const auto csv = cli.get("csv")) {
    write_csv(*csv, result);
    std::cout << "CSV written to " << *csv << '\n';
  }
  return 0;
}

}  // namespace mcs::bench
