// Ablation A1: how much does CA-TPA's workload-imbalance fallback matter?
// Compares CA-TPA without balancing against several alpha settings.
#include "spec_main.hpp"

int main(int argc, char** argv) {
  return mcs::bench::spec_main(argc, argv, "a1", /*figure_style=*/false);
}
