// Ablation A1: how much does CA-TPA's workload-imbalance fallback matter?
// Compares CA-TPA without balancing against several alpha settings.
#include "ablation_main.hpp"

int main(int argc, char** argv) {
  using namespace mcs::partition;
  return mcs::bench::ablation_main(
      argc, argv, "Ablation A1 - imbalance control", [](double /*alpha*/) {
        PartitionerList out;
        out.push_back(std::make_unique<CaTpaPartitioner>(
            CaTpaOptions{.use_imbalance_control = false}));
        for (double a : {0.1, 0.3, 0.5, 0.7, 0.9}) {
          out.push_back(std::make_unique<CaTpaPartitioner>(CaTpaOptions{
              .alpha = a,
              .display_name =
                  "CA-TPA(a=" + mcs::util::format_double(a, 1) + ")"}));
        }
        return out;
      });
}
