// Ablation A3: Eq. (9b)'s fold over feasible conditions.  The paper prints
// "max" (conservative); the OCR makes the operator ambiguous, so this bench
// quantifies how much the choice matters.
#include "spec_main.hpp"

int main(int argc, char** argv) {
  return mcs::bench::spec_main(argc, argv, "a3", /*figure_style=*/false);
}
