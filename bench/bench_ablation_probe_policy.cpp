// Ablation A3: Eq. (9b)'s fold over feasible conditions.  The paper prints
// "max" (conservative); the OCR makes the operator ambiguous, so this bench
// quantifies how much the choice matters.
#include "ablation_main.hpp"

int main(int argc, char** argv) {
  using namespace mcs::partition;
  using mcs::analysis::ProbePolicy;
  return mcs::bench::ablation_main(
      argc, argv, "Ablation A3 - probe policy", [](double alpha) {
        PartitionerList out;
        out.push_back(std::make_unique<CaTpaPartitioner>(CaTpaOptions{
            .alpha = alpha,
            .probe_policy = ProbePolicy::kMinOverFeasible,
            .display_name = "CA-TPA(min)"}));
        out.push_back(std::make_unique<CaTpaPartitioner>(CaTpaOptions{
            .alpha = alpha,
            .probe_policy = ProbePolicy::kFirstFeasible,
            .display_name = "CA-TPA(first)"}));
        out.push_back(std::make_unique<CaTpaPartitioner>(CaTpaOptions{
            .alpha = alpha,
            .probe_policy = ProbePolicy::kMaxOverFeasible,
            .display_name = "CA-TPA(max)"}));
        return out;
      });
}
