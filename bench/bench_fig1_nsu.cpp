// Reproduces paper Fig. 1: scheme performance vs normalized system
// utilization (NSU in 0.4..0.8; M=8, K=4, alpha=0.7, IFC=0.4).
#include "spec_main.hpp"

int main(int argc, char** argv) { return mcs::bench::spec_main(argc, argv, "fig1"); }
