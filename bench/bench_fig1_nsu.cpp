// Reproduces paper Fig. 1: scheme performance vs normalized system
// utilization (NSU in 0.4..0.8; M=8, K=4, alpha=0.7, IFC=0.4).
#include "figure_main.hpp"

int main(int argc, char** argv) {
  return mcs::bench::figure_main(
      argc, argv, "Figure 1 - varying NSU",
      [](const mcs::gen::GenParams& base, double alpha) {
        return mcs::exp::make_fig1_nsu(base, alpha);
      });
}
