// Microbenchmarks of the partitioners themselves (google-benchmark),
// validating the paper's Sec. III-C complexity claim: CA-TPA runs in
// O((M + N) * N) — the probe count is ~M*N and each probe is O(K^2).
//
// The N-sweep at fixed M should scale ~quadratically, the M-sweep at fixed
// N ~linearly; `probes` is reported as a counter for direct verification.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "mcs/mcs.hpp"

// Global allocation counter so each benchmark can report heap allocations on
// its hot path (the engine refactor's claim is zero allocs per probe).
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

// GCC pairs the replaced delete below with the *default* operator new at
// inlined call sites and flags free() as mismatched; the pairing is in fact
// consistent (new uses malloc), so silence the false positive.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

#pragma GCC diagnostic pop

namespace {

using namespace mcs;

gen::GenParams params_for(std::size_t cores, std::size_t tasks) {
  gen::GenParams p;
  p.num_cores = cores;
  p.num_levels = 4;
  p.nsu = 0.5;  // moderate load so runs rarely abort early on failure
  p.num_tasks = tasks;
  return p;
}

void run_partitioner(benchmark::State& state,
                     const partition::Partitioner& scheme, std::size_t cores,
                     std::size_t tasks) {
  const gen::GenParams params = params_for(cores, tasks);
  // A pool of pre-generated task sets so generation cost stays out of the
  // measured loop.
  std::vector<TaskSet> pool;
  for (std::uint64_t trial = 0; trial < 16; ++trial) {
    pool.push_back(gen::generate_trial(params, 42, trial));
  }
  std::size_t i = 0;
  double probes = 0.0;
  std::uint64_t runs = 0;
  const std::uint64_t allocs_before =
      g_alloc_count.load(std::memory_order_relaxed);
  for (auto _ : state) {
    const partition::PartitionResult r = scheme.run(pool[i], cores);
    benchmark::DoNotOptimize(r.success);
    probes += static_cast<double>(r.probes);
    ++runs;
    i = (i + 1) % pool.size();
  }
  const std::uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  state.counters["probes"] =
      benchmark::Counter(probes / static_cast<double>(runs));
  state.counters["allocs"] = benchmark::Counter(
      static_cast<double>(allocs) / static_cast<double>(runs));
  state.SetComplexityN(static_cast<std::int64_t>(tasks));
}

void BM_CaTpa_TaskSweep(benchmark::State& state) {
  const partition::CaTpaPartitioner catpa;
  run_partitioner(state, catpa, 8, static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_CaTpa_TaskSweep)->RangeMultiplier(2)->Range(25, 400)->Complexity();

void BM_CaTpa_CoreSweep(benchmark::State& state) {
  const partition::CaTpaPartitioner catpa;
  run_partitioner(state, catpa, static_cast<std::size_t>(state.range(0)), 100);
}
BENCHMARK(BM_CaTpa_CoreSweep)->RangeMultiplier(2)->Range(2, 32);

void BM_Ffd(benchmark::State& state) {
  const partition::ClassicPartitioner ffd(partition::FitRule::kFirst);
  run_partitioner(state, ffd, 8, static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_Ffd)->RangeMultiplier(2)->Range(25, 400);

void BM_Wfd(benchmark::State& state) {
  const partition::ClassicPartitioner wfd(partition::FitRule::kWorst);
  run_partitioner(state, wfd, 8, static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_Wfd)->RangeMultiplier(2)->Range(25, 400);

void BM_Hybrid(benchmark::State& state) {
  const partition::HybridPartitioner hybrid;
  run_partitioner(state, hybrid, 8, static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_Hybrid)->RangeMultiplier(2)->Range(25, 400);

// The building blocks: one improved-test evaluation and one full-core probe.
void BM_ImprovedTest(benchmark::State& state) {
  const auto K = static_cast<Level>(state.range(0));
  gen::GenParams params = params_for(1, 20);
  params.num_levels = K;
  const TaskSet ts = gen::generate_trial(params, 7, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::improved_test(ts.utils()).schedulable);
  }
}
BENCHMARK(BM_ImprovedTest)->DenseRange(2, 6);

void BM_TaskSetGeneration(benchmark::State& state) {
  const gen::GenParams params = params_for(8, 0);
  std::uint64_t trial = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen::generate_trial(params, 11, trial++).size());
  }
}
BENCHMARK(BM_TaskSetGeneration);

}  // namespace

BENCHMARK_MAIN();
