// Microbenchmarks of the partitioners themselves (google-benchmark),
// validating the paper's Sec. III-C complexity claim: CA-TPA runs in
// O((M + N) * N) — the probe count is ~M*N and each probe is O(K^2).
//
// The N-sweep at fixed M should scale ~quadratically, the M-sweep at fixed
// N ~linearly; `probes` is reported as a counter for direct verification.
#include <benchmark/benchmark.h>

#include "mcs/mcs.hpp"

namespace {

using namespace mcs;

gen::GenParams params_for(std::size_t cores, std::size_t tasks) {
  gen::GenParams p;
  p.num_cores = cores;
  p.num_levels = 4;
  p.nsu = 0.5;  // moderate load so runs rarely abort early on failure
  p.num_tasks = tasks;
  return p;
}

void run_partitioner(benchmark::State& state,
                     const partition::Partitioner& scheme, std::size_t cores,
                     std::size_t tasks) {
  const gen::GenParams params = params_for(cores, tasks);
  // A pool of pre-generated task sets so generation cost stays out of the
  // measured loop.
  std::vector<TaskSet> pool;
  for (std::uint64_t trial = 0; trial < 16; ++trial) {
    pool.push_back(gen::generate_trial(params, 42, trial));
  }
  std::size_t i = 0;
  double probes = 0.0;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    const partition::PartitionResult r = scheme.run(pool[i], cores);
    benchmark::DoNotOptimize(r.success);
    probes += static_cast<double>(r.probes);
    ++runs;
    i = (i + 1) % pool.size();
  }
  state.counters["probes"] =
      benchmark::Counter(probes / static_cast<double>(runs));
  state.SetComplexityN(static_cast<std::int64_t>(tasks));
}

void BM_CaTpa_TaskSweep(benchmark::State& state) {
  const partition::CaTpaPartitioner catpa;
  run_partitioner(state, catpa, 8, static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_CaTpa_TaskSweep)->RangeMultiplier(2)->Range(25, 400)->Complexity();

void BM_CaTpa_CoreSweep(benchmark::State& state) {
  const partition::CaTpaPartitioner catpa;
  run_partitioner(state, catpa, static_cast<std::size_t>(state.range(0)), 100);
}
BENCHMARK(BM_CaTpa_CoreSweep)->RangeMultiplier(2)->Range(2, 32);

void BM_Ffd(benchmark::State& state) {
  const partition::ClassicPartitioner ffd(partition::FitRule::kFirst);
  run_partitioner(state, ffd, 8, static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_Ffd)->RangeMultiplier(2)->Range(25, 400);

void BM_Wfd(benchmark::State& state) {
  const partition::ClassicPartitioner wfd(partition::FitRule::kWorst);
  run_partitioner(state, wfd, 8, static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_Wfd)->RangeMultiplier(2)->Range(25, 400);

void BM_Hybrid(benchmark::State& state) {
  const partition::HybridPartitioner hybrid;
  run_partitioner(state, hybrid, 8, static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_Hybrid)->RangeMultiplier(2)->Range(25, 400);

// The building blocks: one improved-test evaluation and one full-core probe.
void BM_ImprovedTest(benchmark::State& state) {
  const auto K = static_cast<Level>(state.range(0));
  gen::GenParams params = params_for(1, 20);
  params.num_levels = K;
  const TaskSet ts = gen::generate_trial(params, 7, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::improved_test(ts.utils()).schedulable);
  }
}
BENCHMARK(BM_ImprovedTest)->DenseRange(2, 6);

void BM_TaskSetGeneration(benchmark::State& state) {
  const gen::GenParams params = params_for(8, 0);
  std::uint64_t trial = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen::generate_trial(params, 11, trial++).size());
  }
}
BENCHMARK(BM_TaskSetGeneration);

}  // namespace

BENCHMARK_MAIN();
