// Extra experiment E5 (beyond the paper): partitioned vs global scheduling,
// the empirical methodology of Bastoni et al. that the paper cites when
// motivating partitioned scheduling.  For dual-criticality workloads we
// report, per NSU point:
//
//   * CA-TPA acceptance ratio (analysis-backed; accepted partitions are
//     adversarially simulated and their observed miss ratio printed — it
//     must be 0),
//   * the fraction of *all* sets that survive global EDF-VD simulation
//     without a miss under the same adversarial scenarios (global has no
//     comparable acceptance test, so survival is measured, not proven),
//   * GFB acceptance of the level-1 workload as a reference point.
#include <iostream>

#include "mcs/analysis/global.hpp"
#include "mcs/mcs.hpp"
#include "mcs/sim/global_engine.hpp"

int main(int argc, char** argv) {
  using namespace mcs;
  const util::Cli cli(
      argc, argv,
      {{"trials", "task sets per data point (default 150; each set is "
                  "simulated under three scenarios)"},
       {"seed", "base RNG seed (default 1)"},
       {"cores", "number of cores (default 4)"}});
  if (cli.help_requested()) {
    std::cout << cli.usage("bench_global");
    return 0;
  }
  const std::uint64_t trials = cli.get_or("trials", std::uint64_t{150});
  const std::uint64_t seed = cli.get_or("seed", std::uint64_t{1});

  gen::GenParams params = exp::default_gen_params();
  params.num_levels = 2;
  params.num_cores =
      static_cast<std::size_t>(cli.get_or("cores", std::uint64_t{4}));
  params.num_tasks = 8 * params.num_cores;
  params.period_classes = {{{10.0, 40.0}, {20.0, 60.0}, {40.0, 80.0}}};

  const partition::CaTpaPartitioner catpa;
  util::Table table({"NSU", "CA-TPA accept", "CA-TPA sim-miss",
                     "global EDF-VD survive", "GFB(level-1) accept"});

  std::cout << "E5 - partitioned (CA-TPA) vs global EDF-VD, K = 2, M = "
            << params.num_cores << ", " << trials << " sets/point\n\n";

  // Extend past the paper's range: the interesting region for global
  // scheduling is where overload makes it actually miss.
  for (double nsu : {0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {
    params.nsu = nsu;
    std::uint64_t accepted = 0;
    std::uint64_t accepted_missed = 0;
    std::uint64_t global_survive = 0;
    std::uint64_t gfb_ok = 0;
    for (std::uint64_t trial = 0; trial < trials; ++trial) {
      const TaskSet ts = gen::generate_trial(params, seed, trial);
      if (analysis::gfb_test(ts, params.num_cores)) ++gfb_ok;

      const auto miss_under_any = [&](auto&& run) {
        if (run(sim::FixedLevelScenario(1)).missed_deadline()) return true;
        if (run(sim::FixedLevelScenario(2)).missed_deadline()) return true;
        return run(sim::RandomScenario(trial * 3 + 1, 0.3)).missed_deadline();
      };

      const partition::PartitionResult pr = catpa.run(ts, params.num_cores);
      if (pr.success) {
        ++accepted;
        if (miss_under_any([&](const auto& scenario) {
              return simulate(pr.partition, scenario);
            })) {
          ++accepted_missed;
        }
      }
      if (!miss_under_any([&](const auto& scenario) {
            return simulate_global(ts, params.num_cores, scenario);
          })) {
        ++global_survive;
      }
    }
    const auto ratio = [&](std::uint64_t n) {
      return static_cast<double>(n) / static_cast<double>(trials);
    };
    table.begin_row();
    table.add_cell(nsu, 2);
    table.add_cell(ratio(accepted), 4);
    table.add_cell(accepted == 0
                       ? 0.0
                       : static_cast<double>(accepted_missed) /
                             static_cast<double>(accepted),
                   4);
    table.add_cell(ratio(global_survive), 4);
    table.add_cell(ratio(gfb_ok), 4);
  }
  table.print(std::cout);
  std::cout << "\n(partitioned acceptance is a guarantee -- the sim-miss "
               "column must be 0;\n global survival is only an observation "
               "over three scenarios per set)\n";
  return 0;
}
