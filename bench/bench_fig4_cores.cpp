// Reproduces paper Fig. 4: scheme performance vs the number of cores
// (M in {2,4,8,16,32}; K=4, alpha=0.7, NSU=0.6, IFC=0.4).
#include "spec_main.hpp"

int main(int argc, char** argv) { return mcs::bench::spec_main(argc, argv, "fig4"); }
