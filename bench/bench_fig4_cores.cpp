// Reproduces paper Fig. 4: scheme performance vs the number of cores
// (M in {2,4,8,16,32}; K=4, NSU=0.6, alpha=0.7, IFC=0.4).
#include "figure_main.hpp"

int main(int argc, char** argv) {
  return mcs::bench::figure_main(
      argc, argv, "Figure 4 - varying M",
      [](const mcs::gen::GenParams& base, double alpha) {
        return mcs::exp::make_fig4_cores(base, alpha);
      });
}
