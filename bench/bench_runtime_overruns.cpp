// Extra experiment E4 (beyond the paper): AMC runtime behaviour as the
// per-job escalation probability rises.  CA-TPA partitions of accepted task
// sets are executed in the EDF-VD/AMC engine; we report mode-switch rates,
// the fraction of time spent above mode 1, dropped-job and suppressed-release
// ratios, and (the validation half) that deadline misses stay at zero for
// every escalation level.
#include <iostream>

#include "mcs/mcs.hpp"

int main(int argc, char** argv) {
  using namespace mcs;
  const util::Cli cli(
      argc, argv,
      {{"trials", "accepted task sets to simulate per point (default 150)"},
       {"seed", "base RNG seed (default 1)"},
       {"levels", "criticality levels K (default 2)"},
       {"nsu", "normalized system utilization (default 0.5)"}});
  if (cli.help_requested()) {
    std::cout << cli.usage("bench_runtime_overruns");
    return 0;
  }
  const std::uint64_t trials = cli.get_or("trials", std::uint64_t{150});
  const std::uint64_t seed = cli.get_or("seed", std::uint64_t{1});

  gen::GenParams params = exp::default_gen_params();
  params.num_levels = static_cast<Level>(cli.get_or("levels", std::uint64_t{2}));
  params.num_cores = 4;
  params.nsu = cli.get_or("nsu", 0.5);
  params.num_tasks = 40;
  params.period_classes = {{{10.0, 40.0}, {20.0, 60.0}, {40.0, 80.0}}};

  const partition::CaTpaPartitioner catpa;
  util::Table table({"escalation", "switches/core/100t", "time above mode 1",
                     "dropped ratio", "suppressed ratio", "misses"});

  std::cout << "E4 - AMC runtime behaviour vs escalation probability\n"
            << "(CA-TPA partitions, M=" << params.num_cores
            << ", K=" << params.num_levels << ", NSU=" << params.nsu << ", "
            << trials << " accepted sets per point)\n\n";

  for (double escalation : {0.0, 0.05, 0.1, 0.2, 0.4, 0.8}) {
    util::Welford switches_per_100;
    util::Welford high_mode_share;
    util::Welford dropped_ratio;
    util::Welford suppressed_ratio;
    std::uint64_t misses = 0;
    std::uint64_t accepted = 0;
    for (std::uint64_t trial = 0; accepted < trials && trial < trials * 20;
         ++trial) {
      const TaskSet ts = gen::generate_trial(params, seed, trial);
      const partition::PartitionResult pr = catpa.run(ts, params.num_cores);
      if (!pr.success) continue;
      ++accepted;
      const sim::RandomScenario scenario(seed * 1000 + trial, escalation);
      const sim::SimResult run = simulate(pr.partition, scenario);
      misses += run.misses.size();
      double span = 0.0;
      double above = 0.0;
      for (const sim::CoreStats& c : run.cores) {
        for (std::size_t m = 0; m < c.mode_residency.size(); ++m) {
          span += c.mode_residency[m];
          if (m > 0) above += c.mode_residency[m];
        }
      }
      const double per_core_span = run.horizon;
      switches_per_100.add(
          static_cast<double>(run.total(&sim::CoreStats::mode_switches)) /
          static_cast<double>(run.cores.size()) / per_core_span * 100.0);
      high_mode_share.add(span > 0.0 ? above / span : 0.0);
      const auto released = run.total(&sim::CoreStats::jobs_released);
      const auto dropped = run.total(&sim::CoreStats::jobs_dropped);
      const auto suppressed = run.total(&sim::CoreStats::releases_suppressed);
      if (released > 0) {
        dropped_ratio.add(static_cast<double>(dropped) /
                          static_cast<double>(released));
        suppressed_ratio.add(static_cast<double>(suppressed) /
                             static_cast<double>(released + suppressed));
      }
    }
    table.begin_row();
    table.add_cell(escalation, 2);
    table.add_cell(switches_per_100.mean(), 3);
    table.add_cell(high_mode_share.mean(), 4);
    table.add_cell(dropped_ratio.mean(), 4);
    table.add_cell(suppressed_ratio.mean(), 4);
    table.add_cell(static_cast<std::size_t>(misses));
  }
  table.print(std::cout);
  std::cout << "\n(zero misses across all escalation levels validates the "
               "analysis-runtime contract)\n";
  return 0;
}
