// Extra experiment E3 (beyond the paper): schedulability-test strength on
// dual-criticality workloads -- the Eq. (4) utilization bound, the Eq. (7)
// EDF-VD test (via FFD), CA-TPA, and the far costlier DBF-based partitioner
// in the spirit of Gu et al. [20].  Probe counts show the complexity gap.
#include <iostream>

#include "mcs/mcs.hpp"

int main(int argc, char** argv) {
  using namespace mcs;
  const util::Cli cli(
      argc, argv,
      {{"trials", "task sets per data point (default 200; the DBF probes "
                  "dominate the cost)"},
       {"seed", "base RNG seed (default 1)"},
       {"threads", "worker threads (default: hardware concurrency)"},
       {"csv", "also write results to this CSV file"}});
  if (cli.help_requested()) {
    std::cout << cli.usage("bench_dual_tests");
    return 0;
  }

  exp::RunOptions options;
  options.trials = cli.get_or("trials", std::uint64_t{200});
  options.seed = cli.get_or("seed", std::uint64_t{1});
  options.threads =
      static_cast<std::size_t>(cli.get_or("threads", std::uint64_t{0}));

  exp::Sweep sweep;
  sweep.name = "dual_tests";
  sweep.x_label = "NSU";
  for (double nsu : exp::kNsuRange) {
    gen::GenParams p = exp::default_gen_params();
    p.num_levels = 2;
    p.nsu = nsu;
    // Short periods keep the DBF busy-period bounds (and thus its cost)
    // manageable; all schemes see the same workloads.
    p.period_classes = {{{10.0, 40.0}, {20.0, 60.0}, {40.0, 80.0}}};
    p.num_tasks = 40;
    sweep.points.push_back(exp::SweepPoint{
        .x = nsu, .params = p, .make_schemes = [] {
          partition::PartitionerList out;
          out.push_back(std::make_unique<partition::ClassicPartitioner>(
              partition::FitRule::kFirst, partition::TestStrength::kBasicOnly));
          out.push_back(std::make_unique<partition::ClassicPartitioner>(
              partition::FitRule::kFirst));
          out.push_back(std::make_unique<partition::CaTpaPartitioner>());
          out.push_back(std::make_unique<partition::DbfFfdPartitioner>());
          return out;
        }});
  }

  const exp::SweepResult result =
      run_sweep(sweep, options, [](std::size_t done, std::size_t total) {
        std::cerr << "[dual_tests] point " << done << "/" << total << " done\n";
      });
  print_figure(std::cout, result,
               "E3 - dual-criticality schedulability-test strength");
  if (const auto csv = cli.get("csv")) {
    write_csv(*csv, result);
  }
  return 0;
}
