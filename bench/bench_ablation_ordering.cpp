// Ablation A2: utilization-contribution ordering (the paper's Sec. III-A
// contribution) vs the classical max-utilization ordering, with everything
// else in CA-TPA held fixed.
#include "ablation_main.hpp"

int main(int argc, char** argv) {
  using namespace mcs::partition;
  return mcs::bench::ablation_main(
      argc, argv, "Ablation A2 - task ordering", [](double alpha) {
        PartitionerList out;
        out.push_back(std::make_unique<CaTpaPartitioner>(CaTpaOptions{
            .alpha = alpha, .display_name = "CA-TPA(contrib)"}));
        out.push_back(std::make_unique<CaTpaPartitioner>(
            CaTpaOptions{.alpha = alpha,
                         .order_by_contribution = false,
                         .display_name = "CA-TPA(maxutil)"}));
        out.push_back(std::make_unique<ClassicPartitioner>(FitRule::kFirst));
        return out;
      });
}
