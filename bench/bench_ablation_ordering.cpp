// Ablation A2: utilization-contribution ordering (the paper's Sec. III-A
// contribution) vs the classical max-utilization ordering, with everything
// else in CA-TPA held fixed.
#include "spec_main.hpp"

int main(int argc, char** argv) {
  return mcs::bench::spec_main(argc, argv, "a2", /*figure_style=*/false);
}
