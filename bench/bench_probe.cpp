// bench_probe: latency of the batched all-cores placement probe vs. M
// scalar probes on the same PlacementEngine state, and of the 2-D
// task x core kernel vs. the 1-D batched loop.
//
//   bench_probe                  # full run, writes BENCH_probe.json
//   bench_probe --quick          # CI smoke: fewer sweeps, 1 repetition
//   bench_probe --min-speedup 1.0 --min-speedup-2d 1.0
//
// Workload: K=4 criticality levels on M=8 cores (the paper's default
// platform), N in {50, 100, 400} tasks.  Half the tasks are committed
// round-robin to give the level-utilization planes a realistic mixed
// occupancy; the other half is then probed against every core — exactly
// the inner loop of CA-TPA's placement scan — with the default
// min-over-feasible policy.  The scalar side issues M individual
// PlacementEngine::probe calls per task; the batched side one
// probe_all_cores call per task; the 2-D side ONE probe_all_cores_2d call
// over the whole probe list per sweep — the partitioner-scan shape, where
// the kernel tiles tasks (kBatchProbeTileTasks-major) and shares each
// level's hypothetical-row materialization across the tile.  All sides
// fold the same checksum over the results in the same (task, core) order,
// so the work cannot be optimized away and any divergence is caught.
//
// Before timing, every probed task is checked bit-identical between the
// scalar and batched paths (feasible flag, new_util, increment, both
// accept masks), and the 2-D grid rows are checksum-gated bitwise against
// the 1-D batched fold, so a published speedup can never come from a
// divergent kernel.  Exit is nonzero when the aggregate batched/scalar
// throughput ratio falls below --min-speedup, or the aggregate 2-D/1-D
// ratio below --min-speedup-2d (per-size times at the small end are
// microseconds and too noisy to gate on individually).
//
// The emitted JSON carries a "gate_tolerances" object consumed by
// tools/check_bench_regression.py: per-ratio-label fractional tolerances
// (with a "default" key) that replace the gate's single global knob —
// small-N per-size ratios get a looser floor than the aggregates.
#include <bit>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "mcs/analysis/placement.hpp"
#include "mcs/gen/taskset_generator.hpp"
#include "mcs/obs/trace.hpp"
#include "mcs/util/cli.hpp"
#include "mcs/util/json.hpp"
#include "mcs/util/table.hpp"

namespace {

using namespace mcs;

constexpr std::size_t kCores = 8;
constexpr Level kLevels = 4;
constexpr std::uint64_t kSeed = 0x9D0BE;

bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// The probed workload: a generated task set with the even tasks committed
/// round-robin (feasible or not — the planes track the matrices either
/// way) and the odd tasks left for probing.
struct Workload {
  TaskSet ts;
  std::vector<std::size_t> probe_tasks;
};

Workload make_workload(std::size_t num_tasks) {
  gen::GenParams gp;
  gp.num_cores = kCores;
  gp.num_levels = kLevels;
  gp.num_tasks = num_tasks;
  gp.nsu = 0.6;
  Workload w{gen::generate_trial(gp, kSeed, num_tasks), {}};
  for (std::size_t t = 1; t < w.ts.size(); t += 2) w.probe_tasks.push_back(t);
  return w;
}

void commit_even_tasks(analysis::PlacementEngine& engine, std::size_t n) {
  for (std::size_t t = 0; t < n; t += 2) {
    engine.commit(t, (t / 2) % kCores);
  }
}

/// Bitwise parity of one batched sweep against M scalar probes per task.
/// Returns an error description, or empty when identical.
std::string check_parity(analysis::PlacementEngine& engine,
                         const std::vector<std::size_t>& tasks) {
  std::vector<analysis::ProbeResult> batched(kCores);
  std::vector<unsigned char> mask(kCores, 0);
  const analysis::ProbePolicy policies[] = {
      analysis::ProbePolicy::kFirstFeasible,
      analysis::ProbePolicy::kMinOverFeasible,
      analysis::ProbePolicy::kMaxOverFeasible};
  for (const std::size_t t : tasks) {
    for (const analysis::ProbePolicy policy : policies) {
      engine.probe_all_cores(t, policy, batched);
      for (std::size_t m = 0; m < kCores; ++m) {
        const analysis::ProbeResult scalar = engine.probe(t, m, policy);
        if (scalar.feasible != batched[m].feasible ||
            !bits_equal(scalar.new_util, batched[m].new_util) ||
            !bits_equal(scalar.increment, batched[m].increment)) {
          std::ostringstream os;
          os << "task " << t << " core " << m << ": batched probe diverges "
             << "from scalar (policy " << static_cast<int>(policy) << ")";
          return os.str();
        }
      }
    }
    engine.probe_fits_all(t, mask);
    for (std::size_t m = 0; m < kCores; ++m) {
      if ((mask[m] != 0) != engine.probe_fits(t, m)) {
        return "accept-mask divergence at task " + std::to_string(t);
      }
    }
    engine.probe_fits_basic_all(t, mask);
    for (std::size_t m = 0; m < kCores; ++m) {
      if ((mask[m] != 0) != engine.probe_fits_basic(t, m)) {
        return "Eq.(4)-mask divergence at task " + std::to_string(t);
      }
    }
  }
  return {};
}

struct ProbeRun {
  double seconds = 0.0;
  std::uint64_t probes = 0;
  double checksum = 0.0;

  [[nodiscard]] double ns_per_probe() const {
    return probes > 0 ? seconds * 1e9 / static_cast<double>(probes) : 0.0;
  }
};

/// Best-of-`reps` wall time for `sweeps` full probe passes, scalar path.
ProbeRun time_scalar(analysis::PlacementEngine& engine,
                     const std::vector<std::size_t>& tasks, std::size_t sweeps,
                     std::size_t reps) {
  ProbeRun best;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    double checksum = 0.0;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t s = 0; s < sweeps; ++s) {
      for (const std::size_t t : tasks) {
        for (std::size_t m = 0; m < kCores; ++m) {
          const analysis::ProbeResult r =
              engine.probe(t, m, analysis::ProbePolicy::kMinOverFeasible);
          if (r.feasible) checksum += r.new_util;
        }
      }
    }
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    if (rep == 0 || elapsed.count() < best.seconds) {
      best.seconds = elapsed.count();
      best.probes = static_cast<std::uint64_t>(sweeps * tasks.size() * kCores);
      best.checksum = checksum;
    }
  }
  return best;
}

/// Same sweep through the batched API: one probe_all_cores call per task.
ProbeRun time_batched(analysis::PlacementEngine& engine,
                      const std::vector<std::size_t>& tasks,
                      std::size_t sweeps, std::size_t reps) {
  std::vector<analysis::ProbeResult> out(kCores);
  ProbeRun best;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    double checksum = 0.0;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t s = 0; s < sweeps; ++s) {
      for (const std::size_t t : tasks) {
        engine.probe_all_cores(t, analysis::ProbePolicy::kMinOverFeasible,
                               out);
        for (std::size_t m = 0; m < kCores; ++m) {
          if (out[m].feasible) checksum += out[m].new_util;
        }
      }
    }
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    if (rep == 0 || elapsed.count() < best.seconds) {
      best.seconds = elapsed.count();
      best.probes = static_cast<std::uint64_t>(sweeps * tasks.size() * kCores);
      best.checksum = checksum;
    }
  }
  return best;
}

/// Same sweep through the 2-D kernel: one probe_all_cores_2d call over the
/// whole probe list (the partitioner-scan shape).  The checksum folds the
/// grid in the same (task, core) order as the 1-D loop, so it must be
/// bit-identical to the batched checksum.
ProbeRun time_batched_2d(analysis::PlacementEngine& engine,
                         const std::vector<std::size_t>& tasks,
                         std::size_t sweeps, std::size_t reps) {
  std::vector<analysis::ProbeResult> grid(tasks.size() * kCores);
  ProbeRun best;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    double checksum = 0.0;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t s = 0; s < sweeps; ++s) {
      engine.probe_all_cores_2d(
          tasks, analysis::ProbePolicy::kMinOverFeasible, grid);
      for (std::size_t i = 0; i < tasks.size(); ++i) {
        for (std::size_t m = 0; m < kCores; ++m) {
          const analysis::ProbeResult& r = grid[i * kCores + m];
          if (r.feasible) checksum += r.new_util;
        }
      }
    }
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    if (rep == 0 || elapsed.count() < best.seconds) {
      best.seconds = elapsed.count();
      best.probes = static_cast<std::uint64_t>(sweeps * tasks.size() * kCores);
      best.checksum = checksum;
    }
  }
  return best;
}

/// Average cost of one *disabled* ScopedSpan — the relaxed-atomic gate
/// check probe_all_cores pays per call when tracing is off.  Best of
/// `reps` over `iters` construct/destroy pairs.
double time_disabled_span_ns(std::size_t iters, std::size_t reps) {
  static constexpr obs::TraceSite kSite{"bench.disabled_span", "i"};
  const obs::TraceEnabledGuard off(false);
  double best = 0.0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iters; ++i) {
      const obs::ScopedSpan span(kSite, i);
    }
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    const double ns = elapsed.count() * 1e9 / static_cast<double>(iters);
    if (rep == 0 || ns < best) best = ns;
  }
  return best;
}

util::Json num(double value, int precision = 6) {
  std::ostringstream os;
  os.precision(precision);
  os << value;
  return util::Json::number_raw(os.str());
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Cli cli(
        argc, argv,
        {{"quick", "CI smoke: fewer sweeps, single repetition"},
         {"out", "output JSON path (default BENCH_probe.json)"},
         {"min-speedup",
          "fail (exit 1) when the aggregate batched/scalar probe-throughput "
          "ratio falls below this (default 1.0)"},
         {"min-speedup-2d",
          "fail (exit 1) when the aggregate 2-D/1-D-batched throughput "
          "ratio falls below this (default 1.0)"},
         {"sweeps", "probe passes per timed repetition (default 200)"}});
    if (cli.help_requested()) {
      std::cout << cli.usage("bench_probe");
      return 0;
    }
    const bool quick = cli.has("quick");
    const std::string out_path =
        cli.get_or("out", std::string("BENCH_probe.json"));
    const double min_speedup = cli.get_or("min-speedup", 1.0);
    const double min_speedup_2d = cli.get_or("min-speedup-2d", 1.0);
    const std::size_t sweeps = static_cast<std::size_t>(
        cli.get_or("sweeps", quick ? std::uint64_t{20} : std::uint64_t{200}));
    const std::size_t reps = quick ? 1 : 5;

    const std::size_t sizes[] = {50, 100, 400};

    util::Json doc = util::Json::object();
    doc.set("bench", util::Json::string("bench_probe"));
    doc.set("cores", util::Json::number(std::uint64_t{kCores}));
    doc.set("levels", util::Json::number(std::uint64_t{kLevels}));
    doc.set("policy", util::Json::string("min-over-feasible"));
    doc.set("sweeps", util::Json::number(std::uint64_t{sweeps}));
    doc.set("repetitions", util::Json::number(std::uint64_t{reps}));
    doc.set("quick", util::Json::boolean(quick));
    util::Json rows = util::Json::array();

    util::Table table({"tasks", "probes", "scalar ns/p", "1d ns/p",
                       "2d ns/p", "speedup", "speedup 2d"});
    double scalar_total_s = 0.0;
    double batched_total_s = 0.0;
    double batched2d_total_s = 0.0;

    for (const std::size_t n : sizes) {
      const Workload w = make_workload(n);
      analysis::PlacementEngine engine(w.ts, kCores);
      commit_even_tasks(engine, w.ts.size());

      const std::string parity = check_parity(engine, w.probe_tasks);
      if (!parity.empty()) {
        std::cerr << "bench_probe: parity failure at N=" << n << ": "
                  << parity << "\n";
        return 1;
      }

      const ProbeRun scalar =
          time_scalar(engine, w.probe_tasks, sweeps, reps);
      const ProbeRun batched =
          time_batched(engine, w.probe_tasks, sweeps, reps);
      const ProbeRun batched2d =
          time_batched_2d(engine, w.probe_tasks, sweeps, reps);
      if (!bits_equal(scalar.checksum, batched.checksum)) {
        std::cerr << "bench_probe: checksum divergence at N=" << n << "\n";
        return 1;
      }
      if (!bits_equal(batched.checksum, batched2d.checksum)) {
        std::cerr << "bench_probe: 2-D checksum divergence at N=" << n
                  << "\n";
        return 1;
      }
      const double speedup =
          batched.seconds > 0.0 ? scalar.seconds / batched.seconds : 0.0;
      const double speedup_2d =
          batched2d.seconds > 0.0 ? batched.seconds / batched2d.seconds : 0.0;
      scalar_total_s += scalar.seconds;
      batched_total_s += batched.seconds;
      batched2d_total_s += batched2d.seconds;

      table.begin_row();
      table.add_cell(n);
      table.add_cell(static_cast<std::size_t>(scalar.probes));
      table.add_cell(scalar.ns_per_probe(), 1);
      table.add_cell(batched.ns_per_probe(), 1);
      table.add_cell(batched2d.ns_per_probe(), 1);
      table.add_cell(speedup, 2);
      table.add_cell(speedup_2d, 2);

      util::Json row = util::Json::object();
      row.set("tasks", util::Json::number(std::uint64_t{n}));
      row.set("probes", util::Json::number(scalar.probes));
      util::Json scalar_json = util::Json::object();
      scalar_json.set("seconds", num(scalar.seconds));
      scalar_json.set("ns_per_probe", num(scalar.ns_per_probe()));
      row.set("scalar", std::move(scalar_json));
      util::Json batched_json = util::Json::object();
      batched_json.set("seconds", num(batched.seconds));
      batched_json.set("ns_per_probe", num(batched.ns_per_probe()));
      row.set("batched", std::move(batched_json));
      util::Json batched2d_json = util::Json::object();
      batched2d_json.set("seconds", num(batched2d.seconds));
      batched2d_json.set("ns_per_probe", num(batched2d.ns_per_probe()));
      row.set("batched2d", std::move(batched2d_json));
      row.set("speedup", num(speedup));
      row.set("speedup_2d", num(speedup_2d));
      rows.push(std::move(row));
    }
    doc.set("sizes", std::move(rows));
    const double aggregate =
        batched_total_s > 0.0 ? scalar_total_s / batched_total_s : 0.0;
    doc.set("aggregate_speedup", num(aggregate));
    const double aggregate_2d =
        batched2d_total_s > 0.0 ? batched_total_s / batched2d_total_s : 0.0;
    doc.set("aggregate_speedup_2d", num(aggregate_2d));

    // Per-ratio regression-gate tolerances, read by
    // tools/check_bench_regression.py: the aggregates are the stable
    // headline numbers, while the N=50 sweeps finish in microseconds and
    // need a looser floor on shared CI runners.
    util::Json tol = util::Json::object();
    tol.set("default", num(0.25));
    tol.set("aggregate", num(0.20));
    tol.set("aggregate/2d", num(0.20));
    tol.set("tasks=50", num(0.35));
    tol.set("tasks=50/2d", num(0.35));
    doc.set("gate_tolerances", std::move(tol));

    // Disabled-tracing overhead gate: probe_all_cores carries one ScopedSpan
    // per call (kCores probes), so the relative cost of a disabled span is
    // span_ns / (batched ns/probe * kCores).  The budget is 1%.
    std::uint64_t total_probes = 0;
    for (const util::Json& row : doc.at("sizes").items()) {
      total_probes += row.at("probes").as_u64();
    }
    const double batched_ns_per_probe =
        total_probes > 0
            ? batched_total_s * 1e9 / static_cast<double>(total_probes)
            : 0.0;
    const double span_ns =
        time_disabled_span_ns(quick ? 1'000'000 : 4'000'000, quick ? 2 : 5);
    const double overhead_pct =
        batched_ns_per_probe > 0.0
            ? 100.0 * span_ns / (batched_ns_per_probe * kCores)
            : 0.0;
    doc.set("disabled_span_ns", num(span_ns));
    doc.set("trace_overhead_pct", num(overhead_pct));

    table.print(std::cout);
    std::cout << "\naggregate speedup (total scalar s / total batched s): "
              << aggregate << "\n";
    std::cout << "aggregate 2-D speedup (total 1-D s / total 2-D s): "
              << aggregate_2d << "\n";
    std::cout << "disabled span: " << span_ns << " ns ("
              << overhead_pct << "% of a batched probe call)\n";
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "bench_probe: cannot write " << out_path << "\n";
      return 1;
    }
    out << doc.dump() << "\n";
    std::cout << "wrote " << out_path << "\n";

    if (aggregate < min_speedup) {
      std::cerr << "bench_probe: throughput regression: aggregate speedup "
                << aggregate << " < required " << min_speedup << "\n";
      return 1;
    }
    if (aggregate_2d < min_speedup_2d) {
      std::cerr << "bench_probe: throughput regression: aggregate 2-D "
                << "speedup " << aggregate_2d << " < required "
                << min_speedup_2d << "\n";
      return 1;
    }
    if (overhead_pct > 1.0) {
      std::cerr << "bench_probe: disabled-tracing overhead " << overhead_pct
                << "% exceeds the 1% budget (" << span_ns
                << " ns per span vs " << batched_ns_per_probe * kCores
                << " ns per batched call)\n";
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "bench_probe: " << e.what() << "\n";
    return 1;
  }
}
