// Extra experiment E6 (beyond the paper): graceful degradation via elastic
// periods (after Su & Zhu's E-MC model, the paper's reference [31]).
//
// Classic AMC drops all low-criticality service while a core runs above
// mode 1.  With elastic degradation, LO tasks keep releasing at a stretched
// period instead.  This bench measures, as the overrun escalation
// probability rises, the fraction of nominal LO service that survives under
// (a) AMC drop and (b) period stretches of 2x and 4x — with zero deadline
// misses throughout (runs use plain EDF on Eq.(4)-passing workloads, where
// degradation is provably safe; see engine.hpp).
//
// Modes are sticky here (no idle reset): once a core escalates it stays
// degraded, the regime E-MC targets.  Under the paper's idle-reset protocol
// elevated windows are short and dropping costs little; without the reset,
// dropping starves LO tasks for the rest of the run while stretching keeps
// their completion gaps bounded near the stretch factor.
#include <iostream>

#include "mcs/mcs.hpp"

namespace {

using namespace mcs;

/// Fraction of the LO jobs a nominal (non-degraded) run would complete.
double lo_service(const sim::SimResult& run, const TaskSet& ts,
                  double horizon) {
  double nominal = 0.0;
  double completed = 0.0;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (ts[i].level() != 1) continue;
    nominal += horizon / ts[i].period();
    completed += static_cast<double>(run.tasks[i].completed);
  }
  return nominal > 0.0 ? completed / nominal : 1.0;
}

/// Worst gap between consecutive completions of any LO task, in units of
/// that task's period -- the starvation bound degraded service exists to
/// control (AMC's drop protocol leaves it unbounded during busy intervals).
double lo_max_starvation(const sim::RecordingTraceSink& trace,
                         const TaskSet& ts, double horizon) {
  std::vector<double> last(ts.size(), 0.0);
  std::vector<double> worst(ts.size(), 0.0);
  for (const sim::TraceEvent& e : trace.events()) {
    if (e.kind != sim::EventKind::kComplete || ts[e.task].level() != 1) {
      continue;
    }
    worst[e.task] = std::max(worst[e.task], e.time - last[e.task]);
    last[e.task] = e.time;
  }
  double overall = 0.0;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (ts[i].level() != 1) continue;
    const double gap = std::max(worst[i], horizon - last[i]);
    overall = std::max(overall, gap / ts[i].period());
  }
  return overall;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(
      argc, argv,
      {{"trials", "Eq.(4)-passing task sets per point (default 100)"},
       {"seed", "base RNG seed (default 1)"}});
  if (cli.help_requested()) {
    std::cout << cli.usage("bench_elastic");
    return 0;
  }
  const std::uint64_t trials = cli.get_or("trials", std::uint64_t{100});
  const std::uint64_t seed = cli.get_or("seed", std::uint64_t{1});

  gen::GenParams params = exp::default_gen_params();
  params.num_levels = 3;
  params.num_cores = 2;
  params.nsu = 0.3;  // keep Eq. (4) satisfiable despite own-level inflation
  params.num_tasks = 16;
  params.period_classes = {{{10.0, 40.0}, {20.0, 60.0}, {40.0, 80.0}}};

  std::cout << "E6 - graceful degradation: LO service retention vs overruns\n"
            << "(plain EDF on Eq.(4)-passing sets; " << trials
            << " sets per point)\n\n";
  util::Table table({"escalation", "AMC drop", "stretch 2x", "stretch 4x",
                     "starve/drop", "starve/2x", "starve/4x", "misses"});

  for (double escalation : {0.1, 0.3, 0.6, 0.9}) {
    util::Welford drop_service;
    util::Welford s2_service;
    util::Welford s4_service;
    util::Welford drop_starve;
    util::Welford s2_starve;
    util::Welford s4_starve;
    std::uint64_t misses = 0;
    std::uint64_t accepted = 0;
    for (std::uint64_t trial = 0; accepted < trials && trial < trials * 30;
         ++trial) {
      const TaskSet ts = gen::generate_trial(params, seed, trial);
      if (!analysis::basic_test(ts.utils())) continue;
      ++accepted;
      Partition partition(ts, params.num_cores);
      // Simple round-robin placement: Eq. (4) holds for the whole set, so
      // it holds per core as well.
      for (std::size_t i = 0; i < ts.size(); ++i) {
        partition.assign(i, i % params.num_cores);
      }
      const sim::RandomScenario scenario(seed * 100 + trial, escalation);
      for (double stretch : {0.0, 2.0, 4.0}) {
        sim::SimConfig config;
        config.use_virtual_deadlines = false;
        config.degraded_period_stretch = stretch;
        config.idle_reset = false;  // sticky elevated modes
        sim::RecordingTraceSink trace;
        const sim::SimResult run =
            simulate(partition, scenario, config, &trace);
        misses += run.misses.size();
        const double service = lo_service(run, ts, run.horizon);
        const double starve = lo_max_starvation(trace, ts, run.horizon);
        if (stretch == 0.0) {
          drop_service.add(service);
          drop_starve.add(starve);
        } else if (stretch == 2.0) {
          s2_service.add(service);
          s2_starve.add(starve);
        } else {
          s4_service.add(service);
          s4_starve.add(starve);
        }
      }
    }
    table.begin_row();
    table.add_cell(escalation, 2);
    table.add_cell(drop_service.mean(), 4);
    table.add_cell(s2_service.mean(), 4);
    table.add_cell(s4_service.mean(), 4);
    table.add_cell(drop_starve.mean(), 2);
    table.add_cell(s2_starve.mean(), 2);
    table.add_cell(s4_starve.mean(), 2);
    table.add_cell(static_cast<std::size_t>(misses));
  }
  table.print(std::cout);
  std::cout << "\n(service: higher is better; starve = worst gap between\n"
               " consecutive completions of a LO task, in periods: lower is\n"
               " better; 'misses' must stay 0)\n";
  return 0;
}
