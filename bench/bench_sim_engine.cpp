// bench_sim_engine: throughput of the fast event-calendar simulation kernel
// vs. the reference O(n)-scan engine, on hyperperiod-length runs.
//
//   bench_sim_engine                 # full run, writes BENCH_sim.json
//   bench_sim_engine --quick         # CI smoke: short horizon, 1 repetition
//   bench_sim_engine --min-speedup 1.0
//
// Workload: N in {50, 100, 400} tasks on 2 cores (the paper's smallest
// platform — and the regime where per-core ready queues get deep: depth
// scales with members per core, so N=400 means ~200-deep queues), dual
// criticality, periods from a small-LCM grid (hyperperiod 200) so runs
// cover exact hyperperiods.  Tasks are spread worst-fit by own-level
// utilization with NO feasibility gate — the benchmark measures the
// engine, not the analysis, and overload (misses, mode switches, idle
// resets) is part of the measured behaviour (stop_core_on_miss=false keeps
// cores running).
//
// Both engines are first checked bit-identical on the workload (full trace
// diff via verify::compare_sim_runs); the run aborts nonzero on divergence,
// so a published speedup can never come from a divergent kernel.  Exit is
// also nonzero when the fast engine's aggregate events/sec across all
// sizes falls below --min-speedup x the reference (per-size timings at the
// small end are sub-millisecond and too noisy to gate on individually).
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "mcs/core/partition.hpp"
#include "mcs/core/taskset.hpp"
#include "mcs/gen/rng.hpp"
#include "mcs/obs/trace.hpp"
#include "mcs/sim/engine.hpp"
#include "mcs/sim/scenario.hpp"
#include "mcs/sim/trace.hpp"
#include "mcs/util/cli.hpp"
#include "mcs/util/json.hpp"
#include "mcs/util/table.hpp"
#include "mcs/verify/differential.hpp"

namespace {

using namespace mcs;

constexpr std::size_t kCores = 2;
constexpr double kHyperperiod = 200.0;  // LCM of the period grid below
constexpr std::uint64_t kSeed = 0xB51ACE;

/// Deterministic dual-criticality workload: periods from a grid whose LCM
/// is 200, ~30% HI tasks, per-task LO utilization scaled so each core's
/// *actual* demand sits near saturation regardless of N.  RandomScenario
/// draws execution times uniformly in (0, c1], i.e. half the nominal WCET
/// on average, so the nominal LO sum targets ~1.9 per core for ~0.95
/// actual.  Near-saturation matters: release bursts drain slowly, so ready
/// queues stay tens of jobs deep — the regime the indexed-heap kernel
/// exists for (and the regime the oracle's overload probes create).
TaskSet make_taskset(std::size_t num_tasks) {
  const double grid[] = {10.0, 20.0, 25.0, 40.0, 50.0, 100.0};
  const double mean_u =
      1.9 * static_cast<double>(kCores) / static_cast<double>(num_tasks);
  gen::Rng rng(gen::derive_seed(kSeed, num_tasks));
  std::vector<McTask> tasks;
  tasks.reserve(num_tasks);
  for (std::size_t i = 0; i < num_tasks; ++i) {
    const double period = grid[rng.uniform_int(0, 5)];
    const double u_lo = mean_u * rng.uniform(0.5, 1.5);
    const double wcet_lo = std::min(u_lo * period, 0.5 * period);
    std::vector<double> wcets = {wcet_lo};
    if (rng.bernoulli(0.3)) {
      const double wcet_hi =
          std::min(wcet_lo * rng.uniform(1.5, 3.0), 0.95 * period);
      wcets.push_back(std::max(wcet_hi, wcet_lo));
    }
    tasks.emplace_back(i, std::move(wcets), period);
  }
  return TaskSet(std::move(tasks), 2);
}

/// Worst-fit by own-level utilization, no feasibility gate.
Partition spread(const TaskSet& ts) {
  Partition partition(ts, kCores);
  std::vector<double> load(kCores, 0.0);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    std::size_t best = 0;
    for (std::size_t m = 1; m < kCores; ++m) {
      if (load[m] < load[best]) best = m;
    }
    partition.assign(i, best);
    load[best] += ts[i].wcet(ts[i].level()) / ts[i].period();
  }
  return partition;
}

sim::SimConfig base_config(double hyperperiods) {
  sim::SimConfig cfg;
  cfg.horizon = hyperperiods * kHyperperiod;
  cfg.stop_core_on_miss = false;  // transient overload keeps cores running
  // Plain EDF: the nominal (WCET-based) load is far above 1, so a derived
  // virtual-deadline policy would be degenerate; AMC mode switching is
  // exercised regardless (escalated HI jobs still exhaust LO budgets).
  cfg.use_virtual_deadlines = false;
  return cfg;
}

/// Engine-independent event total of a run (parity guarantees both engines
/// agree on it) — the denominator-independent throughput unit.
std::uint64_t total_events(const sim::SimResult& r) {
  std::uint64_t events = r.misses.size();
  for (const sim::CoreStats& c : r.cores) {
    events += c.jobs_released + c.jobs_completed + c.jobs_dropped +
              c.releases_suppressed + c.mode_switches + c.idle_resets +
              c.preemptions;
  }
  return events;
}

struct EngineRun {
  double seconds = 0.0;
  std::uint64_t events = 0;

  [[nodiscard]] double events_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(events) / seconds : 0.0;
  }
  [[nodiscard]] double us_per_hyperperiod(double hyperperiods) const {
    return hyperperiods > 0.0 ? seconds * 1e6 / hyperperiods : 0.0;
  }
};

/// Best-of-`reps` wall time for one engine on the workload.
EngineRun time_engine(const Partition& partition,
                      const sim::ExecutionScenario& scenario,
                      const sim::SimConfig& cfg, sim::EngineKind engine,
                      std::size_t reps) {
  sim::SimConfig run_cfg = cfg;
  run_cfg.engine = engine;
  EngineRun best;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    const sim::SimResult result =
        sim::simulate(partition, scenario, run_cfg, nullptr);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    if (rep == 0 || elapsed.count() < best.seconds) {
      best.seconds = elapsed.count();
      best.events = total_events(result);
    }
  }
  return best;
}

util::Json num(double value, int precision = 6) {
  std::ostringstream os;
  os.precision(precision);
  os << value;
  return util::Json::number_raw(os.str());
}

/// Average cost of one *disabled* ScopedSpan.  simulate() pays exactly
/// 1 + kCores of these per run when tracing is off (the top-level span plus
/// one gate sample per core kernel); everything per-event branches on a
/// plain cached bool.  Best of `reps` over `iters` construct/destroy pairs.
double time_disabled_span_ns(std::size_t iters, std::size_t reps) {
  static constexpr obs::TraceSite kSite{"bench.disabled_span", "i"};
  const obs::TraceEnabledGuard off(false);
  double best = 0.0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iters; ++i) {
      const obs::ScopedSpan span(kSite, i);
    }
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    const double ns = elapsed.count() * 1e9 / static_cast<double>(iters);
    if (rep == 0 || ns < best) best = ns;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Cli cli(
        argc, argv,
        {{"quick", "CI smoke: short horizon, single repetition"},
         {"out", "output JSON path (default BENCH_sim.json)"},
         {"min-speedup",
          "fail (exit 1) when the aggregate fast/reference events-per-sec "
          "ratio falls below this (default 1.0)"},
         {"hyperperiods", "simulated hyperperiods per run (default 20)"}});
    if (cli.help_requested()) {
      std::cout << cli.usage("bench_sim_engine");
      return 0;
    }
    const bool quick = cli.has("quick");
    const std::string out_path = cli.get_or("out", std::string("BENCH_sim.json"));
    const double min_speedup = cli.get_or("min-speedup", 1.0);
    const double hyperperiods =
        cli.get_or("hyperperiods", quick ? 4.0 : 20.0);
    const std::size_t reps = quick ? 1 : 3;

    const std::size_t sizes[] = {50, 100, 400};
    const sim::RandomScenario scenario(gen::derive_seed(kSeed, 0xE5C),
                                       0.05);

    util::Json doc = util::Json::object();
    doc.set("bench", util::Json::string("bench_sim_engine"));
    doc.set("cores", util::Json::number(std::uint64_t{kCores}));
    doc.set("hyperperiod", num(kHyperperiod));
    doc.set("hyperperiods", num(hyperperiods));
    doc.set("repetitions", util::Json::number(std::uint64_t{reps}));
    doc.set("quick", util::Json::boolean(quick));
    util::Json rows = util::Json::array();

    util::Table table({"tasks", "events", "ref s", "fast s", "ref ev/s",
                       "fast ev/s", "ref us/hp", "fast us/hp", "speedup"});
    double ref_total_s = 0.0;
    double fast_total_s = 0.0;
    double min_fast_s = 0.0;

    for (const std::size_t n : sizes) {
      const TaskSet ts = make_taskset(n);
      const Partition partition = spread(ts);
      const sim::SimConfig cfg = base_config(hyperperiods);

      // Parity gate on this exact workload (shorter horizon: the trace of a
      // full run would dominate the benchmark's own runtime).
      {
        sim::SimConfig pcfg = base_config(std::min(hyperperiods, 2.0));
        sim::SimConfig pfast = pcfg;
        pfast.engine = sim::EngineKind::kEventCalendar;
        sim::SimConfig pref = pcfg;
        pref.engine = sim::EngineKind::kReference;
        sim::RecordingTraceSink fast_sink;
        sim::RecordingTraceSink ref_sink;
        const sim::SimResult fast =
            sim::simulate(partition, scenario, pfast, &fast_sink);
        const sim::SimResult ref =
            sim::simulate(partition, scenario, pref, &ref_sink);
        const verify::CheckResult parity = verify::compare_sim_runs(
            fast, ref, fast_sink.events(), ref_sink.events());
        if (!parity.ok) {
          std::cerr << "bench_sim_engine: engines diverged at N=" << n << ": "
                    << parity.detail << "\n";
          return 1;
        }
      }

      const EngineRun ref = time_engine(partition, scenario, cfg,
                                        sim::EngineKind::kReference, reps);
      const EngineRun fast = time_engine(partition, scenario, cfg,
                                         sim::EngineKind::kEventCalendar,
                                         reps);
      if (ref.events != fast.events) {
        std::cerr << "bench_sim_engine: event totals diverged at N=" << n
                  << ": " << fast.events << " vs " << ref.events << "\n";
        return 1;
      }
      const double speedup =
          ref.seconds > 0.0 ? ref.seconds / fast.seconds : 0.0;
      ref_total_s += ref.seconds;
      fast_total_s += fast.seconds;
      if (min_fast_s == 0.0 || fast.seconds < min_fast_s) {
        min_fast_s = fast.seconds;
      }

      table.begin_row();
      table.add_cell(n);
      table.add_cell(static_cast<std::size_t>(ref.events));
      table.add_cell(ref.seconds, 4);
      table.add_cell(fast.seconds, 4);
      table.add_cell(ref.events_per_sec(), 0);
      table.add_cell(fast.events_per_sec(), 0);
      table.add_cell(ref.us_per_hyperperiod(hyperperiods), 1);
      table.add_cell(fast.us_per_hyperperiod(hyperperiods), 1);
      table.add_cell(speedup, 2);

      util::Json row = util::Json::object();
      row.set("tasks", util::Json::number(std::uint64_t{n}));
      row.set("events", util::Json::number(ref.events));
      util::Json ref_json = util::Json::object();
      ref_json.set("seconds", num(ref.seconds));
      ref_json.set("events_per_sec", num(ref.events_per_sec()));
      ref_json.set("us_per_hyperperiod",
                   num(ref.us_per_hyperperiod(hyperperiods)));
      row.set("reference", std::move(ref_json));
      util::Json fast_json = util::Json::object();
      fast_json.set("seconds", num(fast.seconds));
      fast_json.set("events_per_sec", num(fast.events_per_sec()));
      fast_json.set("us_per_hyperperiod",
                    num(fast.us_per_hyperperiod(hyperperiods)));
      row.set("fast", std::move(fast_json));
      row.set("speedup", num(speedup));
      rows.push(std::move(row));
    }
    doc.set("sizes", std::move(rows));
    const double aggregate =
        fast_total_s > 0.0 ? ref_total_s / fast_total_s : 0.0;
    doc.set("aggregate_speedup", num(aggregate));

    // Disabled-tracing overhead gate: one simulate() run costs 1 + kCores
    // gate-checked spans; bound their cost against the *shortest* fast run
    // (the worst-case ratio).  The budget is 1%.
    const double span_ns =
        time_disabled_span_ns(quick ? 1'000'000 : 4'000'000, quick ? 2 : 5);
    const double gate_ns = static_cast<double>(1 + kCores) * span_ns;
    const double overhead_pct =
        min_fast_s > 0.0 ? 100.0 * gate_ns / (min_fast_s * 1e9) : 0.0;
    doc.set("disabled_span_ns", num(span_ns));
    doc.set("trace_overhead_pct", num(overhead_pct));

    table.print(std::cout);
    std::cout << "\naggregate speedup (total ref s / total fast s): "
              << aggregate << "\n";
    std::cout << "disabled spans: " << gate_ns << " ns per simulate ("
              << overhead_pct << "% of the shortest fast run)\n";
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "bench_sim_engine: cannot write " << out_path << "\n";
      return 1;
    }
    out << doc.dump() << "\n";
    std::cout << "wrote " << out_path << "\n";

    if (aggregate < min_speedup) {
      std::cerr << "bench_sim_engine: throughput regression: aggregate "
                << "speedup " << aggregate << " < required " << min_speedup
                << "\n";
      return 1;
    }
    if (overhead_pct > 1.0) {
      std::cerr << "bench_sim_engine: disabled-tracing overhead "
                << overhead_pct << "% exceeds the 1% budget (" << gate_ns
                << " ns of gate checks vs " << min_fast_s * 1e9
                << " ns shortest fast run)\n";
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "bench_sim_engine: " << e.what() << "\n";
    return 1;
  }
}
