// Shared driver for the figure- and ablation-reproduction benches.  Each
// bench binary is a thin wrapper naming one builtin exp::SweepSpec; this
// header resolves the spec, provides the standard CLI
// (--trials/--seed/--threads/--alpha/--csv[/--full]) and renders the four
// panels.  tools/mcs_exp runs the same specs with checkpointing and
// artifact output; the benches stay as zero-setup console views.
#pragma once

#include <iostream>
#include <string>

#include "mcs/mcs.hpp"

namespace mcs::bench {

/// Runs the named builtin spec.  `figure_style` selects the figure-bench
/// interface (--full paper-fidelity flag, cross-sweep summary) over the
/// plain ablation one.
inline int spec_main(int argc, char** argv, const std::string& spec_name,
                     bool figure_style = true) {
  const exp::SweepSpec* spec = exp::find_spec(spec_name);
  if (spec == nullptr) {
    std::cerr << "unknown spec '" << spec_name << "' (expected one of "
              << exp::spec_names() << ")\n";
    return 1;
  }

  std::map<std::string, std::string> allowed{
      {"trials", "task sets per data point (default 2000)"},
      {"seed", "base RNG seed (default 1)"},
      {"threads", "worker threads (default: hardware concurrency)"},
      {"alpha", "CA-TPA imbalance threshold (default 0.7)"},
      {"csv", "also write results to this CSV file"}};
  if (figure_style) {
    allowed.emplace("full", "paper fidelity: 50000 task sets per point");
  }
  const util::Cli cli(argc, argv, std::move(allowed));
  if (cli.help_requested()) {
    std::cout << cli.usage(spec->title);
    return 0;
  }

  exp::RunOptions options;
  options.trials = (figure_style && cli.has("full"))
                       ? exp::kPaperTrials
                       : cli.get_or("trials", exp::kDefaultTrials);
  options.seed = cli.get_or("seed", std::uint64_t{1});
  options.threads =
      static_cast<std::size_t>(cli.get_or("threads", std::uint64_t{0}));
  const double alpha = cli.get_or("alpha", exp::kDefaultAlpha);

  const exp::Sweep sweep = to_sweep(*spec, alpha);
  const exp::SweepResult result = run_sweep(
      sweep, options, [&](std::size_t done, std::size_t total) {
        std::cerr << "[" << spec->title << "] point " << done << "/" << total
                  << " done\n";
      });
  print_figure(std::cout, result, spec->title);
  if (figure_style) {
    std::cout << "\nSummary across the sweep:\n";
    print_summary(std::cout, result);
  }
  if (const auto csv = cli.get("csv")) {
    write_csv(*csv, result);
    std::cout << "CSV written to " << *csv << '\n';
  }
  return 0;
}

}  // namespace mcs::bench
