// Reproduces paper Fig. 2: scheme performance vs the WCET increment factor
// (IFC in 0.3..0.7; M=8, K=4, NSU=0.6, alpha=0.7).
#include "figure_main.hpp"

int main(int argc, char** argv) {
  return mcs::bench::figure_main(
      argc, argv, "Figure 2 - varying IFC",
      [](const mcs::gen::GenParams& base, double alpha) {
        return mcs::exp::make_fig2_ifc(base, alpha);
      });
}
