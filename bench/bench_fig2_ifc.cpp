// Reproduces paper Fig. 2: scheme performance vs the WCET increment factor
// (IFC in 0.3..0.7; M=8, K=4, alpha=0.7, NSU=0.6).
#include "spec_main.hpp"

int main(int argc, char** argv) { return mcs::bench::spec_main(argc, argv, "fig2"); }
