// Ablation A4: the schedulability test gating placements.  The paper's
// baselines use Eq. (4) with a Theorem-1 fallback; this bench shows how much
// the improved test lifts each classical heuristic over Eq. (4) alone.
#include "spec_main.hpp"

int main(int argc, char** argv) {
  return mcs::bench::spec_main(argc, argv, "a4", /*figure_style=*/false);
}
