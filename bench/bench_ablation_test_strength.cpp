// Ablation A4: the schedulability test gating placements.  The paper's
// baselines use Eq. (4) with a Theorem-1 fallback; this bench shows how much
// the improved test lifts each classical heuristic over Eq. (4) alone.
#include "ablation_main.hpp"

int main(int argc, char** argv) {
  using namespace mcs::partition;
  return mcs::bench::ablation_main(
      argc, argv, "Ablation A4 - test strength", [](double /*alpha*/) {
        PartitionerList out;
        out.push_back(std::make_unique<ClassicPartitioner>(
            FitRule::kFirst, TestStrength::kBasicOnly));
        out.push_back(std::make_unique<ClassicPartitioner>(
            FitRule::kFirst, TestStrength::kBasicThenImproved));
        out.push_back(std::make_unique<ClassicPartitioner>(
            FitRule::kWorst, TestStrength::kBasicOnly));
        out.push_back(std::make_unique<ClassicPartitioner>(
            FitRule::kWorst, TestStrength::kBasicThenImproved));
        return out;
      });
}
