// Extra experiment E2 (beyond the paper): partitioned fixed-priority AMC
// (Kelly et al. [22]-style, AMC-rtb per core) against partitioned EDF-VD
// (CA-TPA and FFD with the Theorem-1 test) on dual-criticality workloads.
// The paper's premise -- EDF-VD-based partitioning accepts more task sets
// than fixed-priority approaches -- is quantified here.
#include <iostream>

#include "mcs/mcs.hpp"

int main(int argc, char** argv) {
  using namespace mcs;
  const util::Cli cli(
      argc, argv,
      {{"trials", "task sets per data point (default 500; FP probes are "
                  "response-time analyses, so this bench is slower)"},
       {"seed", "base RNG seed (default 1)"},
       {"threads", "worker threads (default: hardware concurrency)"},
       {"csv", "also write results to this CSV file"}});
  if (cli.help_requested()) {
    std::cout << cli.usage("bench_fp_vs_edfvd");
    return 0;
  }

  exp::RunOptions options;
  options.trials = cli.get_or("trials", std::uint64_t{500});
  options.seed = cli.get_or("seed", std::uint64_t{1});
  options.threads =
      static_cast<std::size_t>(cli.get_or("threads", std::uint64_t{0}));

  exp::Sweep sweep;
  sweep.name = "fp_vs_edfvd";
  sweep.x_label = "NSU";
  for (double nsu : exp::kNsuRange) {
    gen::GenParams p = exp::default_gen_params();
    p.num_levels = 2;  // AMC-rtb is dual-criticality
    p.nsu = nsu;
    sweep.points.push_back(exp::SweepPoint{
        .x = nsu, .params = p, .make_schemes = [] {
          partition::PartitionerList out;
          out.push_back(std::make_unique<partition::FpAmcPartitioner>(
              partition::FitRule::kFirst));
          out.push_back(std::make_unique<partition::FpAmcPartitioner>(
              partition::FitRule::kWorst));
          out.push_back(std::make_unique<partition::ClassicPartitioner>(
              partition::FitRule::kFirst));
          out.push_back(std::make_unique<partition::CaTpaPartitioner>());
          return out;
        }});
  }

  const exp::SweepResult result =
      run_sweep(sweep, options, [](std::size_t done, std::size_t total) {
        std::cerr << "[fp_vs_edfvd] point " << done << "/" << total << " done\n";
      });
  print_figure(std::cout, result,
               "E2 - partitioned FP-AMC vs partitioned EDF-VD (K = 2)");
  if (const auto csv = cli.get("csv")) {
    write_csv(*csv, result);
  }
  return 0;
}
