# Empty compiler generated dependencies file for bench_fp_vs_edfvd.
# This may be replaced when dependencies are built.
