file(REMOVE_RECURSE
  "../bench/bench_fp_vs_edfvd"
  "../bench/bench_fp_vs_edfvd.pdb"
  "CMakeFiles/bench_fp_vs_edfvd.dir/bench_fp_vs_edfvd.cpp.o"
  "CMakeFiles/bench_fp_vs_edfvd.dir/bench_fp_vs_edfvd.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fp_vs_edfvd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
