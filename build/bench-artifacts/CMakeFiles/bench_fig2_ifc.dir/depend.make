# Empty dependencies file for bench_fig2_ifc.
# This may be replaced when dependencies are built.
