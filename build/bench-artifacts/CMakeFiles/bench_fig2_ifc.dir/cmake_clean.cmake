file(REMOVE_RECURSE
  "../bench/bench_fig2_ifc"
  "../bench/bench_fig2_ifc.pdb"
  "CMakeFiles/bench_fig2_ifc.dir/bench_fig2_ifc.cpp.o"
  "CMakeFiles/bench_fig2_ifc.dir/bench_fig2_ifc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_ifc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
