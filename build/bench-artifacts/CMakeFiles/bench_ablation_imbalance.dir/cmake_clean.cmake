file(REMOVE_RECURSE
  "../bench/bench_ablation_imbalance"
  "../bench/bench_ablation_imbalance.pdb"
  "CMakeFiles/bench_ablation_imbalance.dir/bench_ablation_imbalance.cpp.o"
  "CMakeFiles/bench_ablation_imbalance.dir/bench_ablation_imbalance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
