# Empty compiler generated dependencies file for bench_ablation_imbalance.
# This may be replaced when dependencies are built.
