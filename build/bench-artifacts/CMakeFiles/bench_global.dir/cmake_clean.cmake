file(REMOVE_RECURSE
  "../bench/bench_global"
  "../bench/bench_global.pdb"
  "CMakeFiles/bench_global.dir/bench_global.cpp.o"
  "CMakeFiles/bench_global.dir/bench_global.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_global.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
