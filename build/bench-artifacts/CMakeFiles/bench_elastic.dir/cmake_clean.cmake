file(REMOVE_RECURSE
  "../bench/bench_elastic"
  "../bench/bench_elastic.pdb"
  "CMakeFiles/bench_elastic.dir/bench_elastic.cpp.o"
  "CMakeFiles/bench_elastic.dir/bench_elastic.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_elastic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
