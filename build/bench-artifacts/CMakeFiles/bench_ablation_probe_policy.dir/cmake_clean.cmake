file(REMOVE_RECURSE
  "../bench/bench_ablation_probe_policy"
  "../bench/bench_ablation_probe_policy.pdb"
  "CMakeFiles/bench_ablation_probe_policy.dir/bench_ablation_probe_policy.cpp.o"
  "CMakeFiles/bench_ablation_probe_policy.dir/bench_ablation_probe_policy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_probe_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
