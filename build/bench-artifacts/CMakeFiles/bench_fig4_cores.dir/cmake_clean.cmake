file(REMOVE_RECURSE
  "../bench/bench_fig4_cores"
  "../bench/bench_fig4_cores.pdb"
  "CMakeFiles/bench_fig4_cores.dir/bench_fig4_cores.cpp.o"
  "CMakeFiles/bench_fig4_cores.dir/bench_fig4_cores.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
