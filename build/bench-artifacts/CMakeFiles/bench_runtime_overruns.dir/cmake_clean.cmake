file(REMOVE_RECURSE
  "../bench/bench_runtime_overruns"
  "../bench/bench_runtime_overruns.pdb"
  "CMakeFiles/bench_runtime_overruns.dir/bench_runtime_overruns.cpp.o"
  "CMakeFiles/bench_runtime_overruns.dir/bench_runtime_overruns.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_runtime_overruns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
