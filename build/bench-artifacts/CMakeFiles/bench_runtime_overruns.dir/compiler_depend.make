# Empty compiler generated dependencies file for bench_runtime_overruns.
# This may be replaced when dependencies are built.
