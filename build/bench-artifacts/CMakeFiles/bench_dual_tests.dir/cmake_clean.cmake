file(REMOVE_RECURSE
  "../bench/bench_dual_tests"
  "../bench/bench_dual_tests.pdb"
  "CMakeFiles/bench_dual_tests.dir/bench_dual_tests.cpp.o"
  "CMakeFiles/bench_dual_tests.dir/bench_dual_tests.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dual_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
