# Empty dependencies file for bench_dual_tests.
# This may be replaced when dependencies are built.
