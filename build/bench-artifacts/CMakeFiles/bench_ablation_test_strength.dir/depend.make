# Empty dependencies file for bench_ablation_test_strength.
# This may be replaced when dependencies are built.
