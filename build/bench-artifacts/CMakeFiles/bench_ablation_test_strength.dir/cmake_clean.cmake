file(REMOVE_RECURSE
  "../bench/bench_ablation_test_strength"
  "../bench/bench_ablation_test_strength.pdb"
  "CMakeFiles/bench_ablation_test_strength.dir/bench_ablation_test_strength.cpp.o"
  "CMakeFiles/bench_ablation_test_strength.dir/bench_ablation_test_strength.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_test_strength.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
