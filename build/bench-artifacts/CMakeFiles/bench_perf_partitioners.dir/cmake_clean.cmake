file(REMOVE_RECURSE
  "../bench/bench_perf_partitioners"
  "../bench/bench_perf_partitioners.pdb"
  "CMakeFiles/bench_perf_partitioners.dir/bench_perf_partitioners.cpp.o"
  "CMakeFiles/bench_perf_partitioners.dir/bench_perf_partitioners.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_partitioners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
