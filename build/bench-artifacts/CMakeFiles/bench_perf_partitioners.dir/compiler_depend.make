# Empty compiler generated dependencies file for bench_perf_partitioners.
# This may be replaced when dependencies are built.
