file(REMOVE_RECURSE
  "../bench/bench_fig5_levels"
  "../bench/bench_fig5_levels.pdb"
  "CMakeFiles/bench_fig5_levels.dir/bench_fig5_levels.cpp.o"
  "CMakeFiles/bench_fig5_levels.dir/bench_fig5_levels.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
