file(REMOVE_RECURSE
  "../bench/bench_fig1_nsu"
  "../bench/bench_fig1_nsu.pdb"
  "CMakeFiles/bench_fig1_nsu.dir/bench_fig1_nsu.cpp.o"
  "CMakeFiles/bench_fig1_nsu.dir/bench_fig1_nsu.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_nsu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
