# Empty dependencies file for bench_fig1_nsu.
# This may be replaced when dependencies are built.
