file(REMOVE_RECURSE
  "CMakeFiles/global_engine_test.dir/sim/global_engine_test.cpp.o"
  "CMakeFiles/global_engine_test.dir/sim/global_engine_test.cpp.o.d"
  "global_engine_test"
  "global_engine_test.pdb"
  "global_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/global_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
