file(REMOVE_RECURSE
  "CMakeFiles/fp_amc_test.dir/partition/fp_amc_test.cpp.o"
  "CMakeFiles/fp_amc_test.dir/partition/fp_amc_test.cpp.o.d"
  "fp_amc_test"
  "fp_amc_test.pdb"
  "fp_amc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_amc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
