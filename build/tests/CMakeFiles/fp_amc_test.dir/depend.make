# Empty dependencies file for fp_amc_test.
# This may be replaced when dependencies are built.
