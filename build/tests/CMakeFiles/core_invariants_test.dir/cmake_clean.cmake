file(REMOVE_RECURSE
  "CMakeFiles/core_invariants_test.dir/core/invariants_test.cpp.o"
  "CMakeFiles/core_invariants_test.dir/core/invariants_test.cpp.o.d"
  "core_invariants_test"
  "core_invariants_test.pdb"
  "core_invariants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
