# Empty compiler generated dependencies file for core_invariants_test.
# This may be replaced when dependencies are built.
