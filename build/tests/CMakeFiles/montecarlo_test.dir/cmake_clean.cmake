file(REMOVE_RECURSE
  "CMakeFiles/montecarlo_test.dir/exp/montecarlo_test.cpp.o"
  "CMakeFiles/montecarlo_test.dir/exp/montecarlo_test.cpp.o.d"
  "montecarlo_test"
  "montecarlo_test.pdb"
  "montecarlo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/montecarlo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
