# Empty compiler generated dependencies file for core_util_test.
# This may be replaced when dependencies are built.
