file(REMOVE_RECURSE
  "CMakeFiles/core_util_test.dir/analysis/core_util_test.cpp.o"
  "CMakeFiles/core_util_test.dir/analysis/core_util_test.cpp.o.d"
  "core_util_test"
  "core_util_test.pdb"
  "core_util_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
