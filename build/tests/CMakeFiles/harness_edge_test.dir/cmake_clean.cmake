file(REMOVE_RECURSE
  "CMakeFiles/harness_edge_test.dir/exp/harness_edge_test.cpp.o"
  "CMakeFiles/harness_edge_test.dir/exp/harness_edge_test.cpp.o.d"
  "harness_edge_test"
  "harness_edge_test.pdb"
  "harness_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harness_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
