# Empty compiler generated dependencies file for harness_edge_test.
# This may be replaced when dependencies are built.
