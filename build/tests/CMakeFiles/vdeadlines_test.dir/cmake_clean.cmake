file(REMOVE_RECURSE
  "CMakeFiles/vdeadlines_test.dir/analysis/vdeadlines_test.cpp.o"
  "CMakeFiles/vdeadlines_test.dir/analysis/vdeadlines_test.cpp.o.d"
  "vdeadlines_test"
  "vdeadlines_test.pdb"
  "vdeadlines_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdeadlines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
