# Empty dependencies file for vdeadlines_test.
# This may be replaced when dependencies are built.
