file(REMOVE_RECURSE
  "CMakeFiles/gantt_test.dir/sim/gantt_test.cpp.o"
  "CMakeFiles/gantt_test.dir/sim/gantt_test.cpp.o.d"
  "gantt_test"
  "gantt_test.pdb"
  "gantt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gantt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
