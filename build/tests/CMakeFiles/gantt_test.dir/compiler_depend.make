# Empty compiler generated dependencies file for gantt_test.
# This may be replaced when dependencies are built.
