file(REMOVE_RECURSE
  "CMakeFiles/amc_rta_test.dir/analysis/amc_rta_test.cpp.o"
  "CMakeFiles/amc_rta_test.dir/analysis/amc_rta_test.cpp.o.d"
  "amc_rta_test"
  "amc_rta_test.pdb"
  "amc_rta_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amc_rta_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
