# Empty dependencies file for amc_rta_test.
# This may be replaced when dependencies are built.
