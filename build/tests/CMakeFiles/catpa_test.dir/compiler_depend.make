# Empty compiler generated dependencies file for catpa_test.
# This may be replaced when dependencies are built.
