file(REMOVE_RECURSE
  "CMakeFiles/catpa_test.dir/partition/catpa_test.cpp.o"
  "CMakeFiles/catpa_test.dir/partition/catpa_test.cpp.o.d"
  "catpa_test"
  "catpa_test.pdb"
  "catpa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catpa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
