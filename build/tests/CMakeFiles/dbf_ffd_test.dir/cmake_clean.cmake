file(REMOVE_RECURSE
  "CMakeFiles/dbf_ffd_test.dir/partition/dbf_ffd_test.cpp.o"
  "CMakeFiles/dbf_ffd_test.dir/partition/dbf_ffd_test.cpp.o.d"
  "dbf_ffd_test"
  "dbf_ffd_test.pdb"
  "dbf_ffd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbf_ffd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
