# Empty compiler generated dependencies file for dbf_ffd_test.
# This may be replaced when dependencies are built.
