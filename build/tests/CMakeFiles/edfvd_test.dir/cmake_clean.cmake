file(REMOVE_RECURSE
  "CMakeFiles/edfvd_test.dir/analysis/edfvd_test.cpp.o"
  "CMakeFiles/edfvd_test.dir/analysis/edfvd_test.cpp.o.d"
  "edfvd_test"
  "edfvd_test.pdb"
  "edfvd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edfvd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
