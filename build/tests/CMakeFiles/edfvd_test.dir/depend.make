# Empty dependencies file for edfvd_test.
# This may be replaced when dependencies are built.
