# Empty dependencies file for taskset_io_test.
# This may be replaced when dependencies are built.
