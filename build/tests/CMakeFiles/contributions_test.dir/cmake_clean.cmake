file(REMOVE_RECURSE
  "CMakeFiles/contributions_test.dir/core/contributions_test.cpp.o"
  "CMakeFiles/contributions_test.dir/core/contributions_test.cpp.o.d"
  "contributions_test"
  "contributions_test.pdb"
  "contributions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contributions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
