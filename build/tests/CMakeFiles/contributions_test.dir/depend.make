# Empty dependencies file for contributions_test.
# This may be replaced when dependencies are built.
