file(REMOVE_RECURSE
  "CMakeFiles/taskset_test.dir/core/taskset_test.cpp.o"
  "CMakeFiles/taskset_test.dir/core/taskset_test.cpp.o.d"
  "taskset_test"
  "taskset_test.pdb"
  "taskset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taskset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
