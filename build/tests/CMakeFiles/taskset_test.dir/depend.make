# Empty dependencies file for taskset_test.
# This may be replaced when dependencies are built.
