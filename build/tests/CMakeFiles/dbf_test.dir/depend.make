# Empty dependencies file for dbf_test.
# This may be replaced when dependencies are built.
