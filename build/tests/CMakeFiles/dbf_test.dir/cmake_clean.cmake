file(REMOVE_RECURSE
  "CMakeFiles/dbf_test.dir/analysis/dbf_test.cpp.o"
  "CMakeFiles/dbf_test.dir/analysis/dbf_test.cpp.o.d"
  "dbf_test"
  "dbf_test.pdb"
  "dbf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
