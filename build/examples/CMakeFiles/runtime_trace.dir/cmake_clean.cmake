file(REMOVE_RECURSE
  "CMakeFiles/runtime_trace.dir/runtime_trace.cpp.o"
  "CMakeFiles/runtime_trace.dir/runtime_trace.cpp.o.d"
  "runtime_trace"
  "runtime_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
