# Empty compiler generated dependencies file for runtime_trace.
# This may be replaced when dependencies are built.
