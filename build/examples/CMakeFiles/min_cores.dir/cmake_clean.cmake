file(REMOVE_RECURSE
  "CMakeFiles/min_cores.dir/min_cores.cpp.o"
  "CMakeFiles/min_cores.dir/min_cores.cpp.o.d"
  "min_cores"
  "min_cores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/min_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
