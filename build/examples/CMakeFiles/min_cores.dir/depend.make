# Empty dependencies file for min_cores.
# This may be replaced when dependencies are built.
