file(REMOVE_RECURSE
  "CMakeFiles/taskset_tool.dir/taskset_tool.cpp.o"
  "CMakeFiles/taskset_tool.dir/taskset_tool.cpp.o.d"
  "taskset_tool"
  "taskset_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taskset_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
