# Empty compiler generated dependencies file for taskset_tool.
# This may be replaced when dependencies are built.
