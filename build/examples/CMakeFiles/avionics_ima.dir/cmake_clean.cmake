file(REMOVE_RECURSE
  "CMakeFiles/avionics_ima.dir/avionics_ima.cpp.o"
  "CMakeFiles/avionics_ima.dir/avionics_ima.cpp.o.d"
  "avionics_ima"
  "avionics_ima.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avionics_ima.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
