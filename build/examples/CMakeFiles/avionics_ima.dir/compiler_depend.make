# Empty compiler generated dependencies file for avionics_ima.
# This may be replaced when dependencies are built.
