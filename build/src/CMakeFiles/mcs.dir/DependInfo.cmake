
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mcs/analysis/amc_rta.cpp" "src/CMakeFiles/mcs.dir/mcs/analysis/amc_rta.cpp.o" "gcc" "src/CMakeFiles/mcs.dir/mcs/analysis/amc_rta.cpp.o.d"
  "/root/repo/src/mcs/analysis/core_util.cpp" "src/CMakeFiles/mcs.dir/mcs/analysis/core_util.cpp.o" "gcc" "src/CMakeFiles/mcs.dir/mcs/analysis/core_util.cpp.o.d"
  "/root/repo/src/mcs/analysis/dbf.cpp" "src/CMakeFiles/mcs.dir/mcs/analysis/dbf.cpp.o" "gcc" "src/CMakeFiles/mcs.dir/mcs/analysis/dbf.cpp.o.d"
  "/root/repo/src/mcs/analysis/edfvd.cpp" "src/CMakeFiles/mcs.dir/mcs/analysis/edfvd.cpp.o" "gcc" "src/CMakeFiles/mcs.dir/mcs/analysis/edfvd.cpp.o.d"
  "/root/repo/src/mcs/analysis/global.cpp" "src/CMakeFiles/mcs.dir/mcs/analysis/global.cpp.o" "gcc" "src/CMakeFiles/mcs.dir/mcs/analysis/global.cpp.o.d"
  "/root/repo/src/mcs/analysis/metrics.cpp" "src/CMakeFiles/mcs.dir/mcs/analysis/metrics.cpp.o" "gcc" "src/CMakeFiles/mcs.dir/mcs/analysis/metrics.cpp.o.d"
  "/root/repo/src/mcs/analysis/vdeadlines.cpp" "src/CMakeFiles/mcs.dir/mcs/analysis/vdeadlines.cpp.o" "gcc" "src/CMakeFiles/mcs.dir/mcs/analysis/vdeadlines.cpp.o.d"
  "/root/repo/src/mcs/core/contributions.cpp" "src/CMakeFiles/mcs.dir/mcs/core/contributions.cpp.o" "gcc" "src/CMakeFiles/mcs.dir/mcs/core/contributions.cpp.o.d"
  "/root/repo/src/mcs/core/partition.cpp" "src/CMakeFiles/mcs.dir/mcs/core/partition.cpp.o" "gcc" "src/CMakeFiles/mcs.dir/mcs/core/partition.cpp.o.d"
  "/root/repo/src/mcs/core/task.cpp" "src/CMakeFiles/mcs.dir/mcs/core/task.cpp.o" "gcc" "src/CMakeFiles/mcs.dir/mcs/core/task.cpp.o.d"
  "/root/repo/src/mcs/core/taskset.cpp" "src/CMakeFiles/mcs.dir/mcs/core/taskset.cpp.o" "gcc" "src/CMakeFiles/mcs.dir/mcs/core/taskset.cpp.o.d"
  "/root/repo/src/mcs/exp/montecarlo.cpp" "src/CMakeFiles/mcs.dir/mcs/exp/montecarlo.cpp.o" "gcc" "src/CMakeFiles/mcs.dir/mcs/exp/montecarlo.cpp.o.d"
  "/root/repo/src/mcs/exp/report.cpp" "src/CMakeFiles/mcs.dir/mcs/exp/report.cpp.o" "gcc" "src/CMakeFiles/mcs.dir/mcs/exp/report.cpp.o.d"
  "/root/repo/src/mcs/exp/sweep.cpp" "src/CMakeFiles/mcs.dir/mcs/exp/sweep.cpp.o" "gcc" "src/CMakeFiles/mcs.dir/mcs/exp/sweep.cpp.o.d"
  "/root/repo/src/mcs/gen/rng.cpp" "src/CMakeFiles/mcs.dir/mcs/gen/rng.cpp.o" "gcc" "src/CMakeFiles/mcs.dir/mcs/gen/rng.cpp.o.d"
  "/root/repo/src/mcs/gen/taskset_generator.cpp" "src/CMakeFiles/mcs.dir/mcs/gen/taskset_generator.cpp.o" "gcc" "src/CMakeFiles/mcs.dir/mcs/gen/taskset_generator.cpp.o.d"
  "/root/repo/src/mcs/io/taskset_io.cpp" "src/CMakeFiles/mcs.dir/mcs/io/taskset_io.cpp.o" "gcc" "src/CMakeFiles/mcs.dir/mcs/io/taskset_io.cpp.o.d"
  "/root/repo/src/mcs/partition/catpa.cpp" "src/CMakeFiles/mcs.dir/mcs/partition/catpa.cpp.o" "gcc" "src/CMakeFiles/mcs.dir/mcs/partition/catpa.cpp.o.d"
  "/root/repo/src/mcs/partition/classic.cpp" "src/CMakeFiles/mcs.dir/mcs/partition/classic.cpp.o" "gcc" "src/CMakeFiles/mcs.dir/mcs/partition/classic.cpp.o.d"
  "/root/repo/src/mcs/partition/dbf_ffd.cpp" "src/CMakeFiles/mcs.dir/mcs/partition/dbf_ffd.cpp.o" "gcc" "src/CMakeFiles/mcs.dir/mcs/partition/dbf_ffd.cpp.o.d"
  "/root/repo/src/mcs/partition/fp_amc.cpp" "src/CMakeFiles/mcs.dir/mcs/partition/fp_amc.cpp.o" "gcc" "src/CMakeFiles/mcs.dir/mcs/partition/fp_amc.cpp.o.d"
  "/root/repo/src/mcs/partition/hybrid.cpp" "src/CMakeFiles/mcs.dir/mcs/partition/hybrid.cpp.o" "gcc" "src/CMakeFiles/mcs.dir/mcs/partition/hybrid.cpp.o.d"
  "/root/repo/src/mcs/partition/partitioner.cpp" "src/CMakeFiles/mcs.dir/mcs/partition/partitioner.cpp.o" "gcc" "src/CMakeFiles/mcs.dir/mcs/partition/partitioner.cpp.o.d"
  "/root/repo/src/mcs/partition/registry.cpp" "src/CMakeFiles/mcs.dir/mcs/partition/registry.cpp.o" "gcc" "src/CMakeFiles/mcs.dir/mcs/partition/registry.cpp.o.d"
  "/root/repo/src/mcs/sim/engine.cpp" "src/CMakeFiles/mcs.dir/mcs/sim/engine.cpp.o" "gcc" "src/CMakeFiles/mcs.dir/mcs/sim/engine.cpp.o.d"
  "/root/repo/src/mcs/sim/gantt.cpp" "src/CMakeFiles/mcs.dir/mcs/sim/gantt.cpp.o" "gcc" "src/CMakeFiles/mcs.dir/mcs/sim/gantt.cpp.o.d"
  "/root/repo/src/mcs/sim/global_engine.cpp" "src/CMakeFiles/mcs.dir/mcs/sim/global_engine.cpp.o" "gcc" "src/CMakeFiles/mcs.dir/mcs/sim/global_engine.cpp.o.d"
  "/root/repo/src/mcs/sim/scenario.cpp" "src/CMakeFiles/mcs.dir/mcs/sim/scenario.cpp.o" "gcc" "src/CMakeFiles/mcs.dir/mcs/sim/scenario.cpp.o.d"
  "/root/repo/src/mcs/sim/trace.cpp" "src/CMakeFiles/mcs.dir/mcs/sim/trace.cpp.o" "gcc" "src/CMakeFiles/mcs.dir/mcs/sim/trace.cpp.o.d"
  "/root/repo/src/mcs/util/cli.cpp" "src/CMakeFiles/mcs.dir/mcs/util/cli.cpp.o" "gcc" "src/CMakeFiles/mcs.dir/mcs/util/cli.cpp.o.d"
  "/root/repo/src/mcs/util/csv.cpp" "src/CMakeFiles/mcs.dir/mcs/util/csv.cpp.o" "gcc" "src/CMakeFiles/mcs.dir/mcs/util/csv.cpp.o.d"
  "/root/repo/src/mcs/util/stats.cpp" "src/CMakeFiles/mcs.dir/mcs/util/stats.cpp.o" "gcc" "src/CMakeFiles/mcs.dir/mcs/util/stats.cpp.o.d"
  "/root/repo/src/mcs/util/table.cpp" "src/CMakeFiles/mcs.dir/mcs/util/table.cpp.o" "gcc" "src/CMakeFiles/mcs.dir/mcs/util/table.cpp.o.d"
  "/root/repo/src/mcs/util/thread_pool.cpp" "src/CMakeFiles/mcs.dir/mcs/util/thread_pool.cpp.o" "gcc" "src/CMakeFiles/mcs.dir/mcs/util/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
