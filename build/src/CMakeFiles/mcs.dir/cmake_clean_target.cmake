file(REMOVE_RECURSE
  "libmcs.a"
)
