# Empty compiler generated dependencies file for mcs.
# This may be replaced when dependencies are built.
