// General-purpose sweep driver: run any builtin experiment spec (or a
// single custom point) from the command line without writing code.
//
//   $ ./examples/sweep_cli --figure 1 --trials 1000
//   $ ./examples/sweep_cli --figure a3 --trials 50000 --csv a3.csv
//   $ ./examples/sweep_cli --point --nsu 0.7 --cores 16 --levels 3
#include <iostream>

#include "mcs/mcs.hpp"

int main(int argc, char** argv) {
  using namespace mcs;
  const util::Cli cli(
      argc, argv,
      {{"figure", "spec to run: 1-5 or a name (fig1..fig5, a1..a4)"},
       {"point", "run a single point instead of a figure sweep"},
       {"trials", "task sets per data point (default 2000; paper: 50000)"},
       {"seed", "base RNG seed (default 1)"},
       {"threads", "worker threads per point (default: hardware concurrency)"},
       {"jobs",
        "run N sweep points concurrently (default 1; clamped to hardware "
        "concurrency; results are bit-identical for any N)"},
       {"csv", "also write results to this CSV file"},
       {"cores", "M for --point (default 8)"},
       {"levels", "K for --point (default 4)"},
       {"nsu", "NSU for --point (default 0.6)"},
       {"ifc", "IFC for --point (default 0.4)"},
       {"alpha", "CA-TPA imbalance threshold (default 0.7)"},
       {"tasks", "fixed N for --point (default: N ~ U{40..200})"}});
  if (cli.help_requested()) {
    std::cout << cli.usage("sweep_cli");
    return 0;
  }

  exp::RunOptions options;
  options.trials = cli.get_or("trials", exp::kDefaultTrials);
  options.seed = cli.get_or("seed", std::uint64_t{1});
  options.threads =
      static_cast<std::size_t>(cli.get_or("threads", std::uint64_t{0}));
  const double alpha = cli.get_or("alpha", exp::kDefaultAlpha);

  if (cli.has("point")) {
    gen::GenParams params = exp::default_gen_params();
    params.num_cores =
        static_cast<std::size_t>(cli.get_or("cores", std::uint64_t{8}));
    params.num_levels =
        static_cast<Level>(cli.get_or("levels", std::uint64_t{4}));
    params.nsu = cli.get_or("nsu", exp::kDefaultNsu);
    params.ifc = cli.get_or("ifc", exp::kDefaultIfc);
    params.num_tasks =
        static_cast<std::size_t>(cli.get_or("tasks", std::uint64_t{0}));
    const auto schemes = partition::paper_schemes(alpha);
    const exp::PointResult pt = run_point(params, schemes, options, params.nsu);
    util::Table table(
        {"scheme", "ratio", "U_sys", "U_avg", "Lambda", "probes"});
    for (const exp::SchemeAggregate& agg : pt.schemes) {
      table.begin_row();
      table.add_cell(agg.scheme);
      table.add_cell(agg.ratio(), 4);
      table.add_cell(agg.u_sys.mean(), 4);
      table.add_cell(agg.u_avg.mean(), 4);
      table.add_cell(agg.imbalance.mean(), 4);
      table.add_cell(agg.probes.mean(), 1);
    }
    table.print(std::cout);
    return 0;
  }

  // Accept bare figure numbers ("--figure 4") as shorthand for "fig4";
  // everything else resolves through the spec registry.
  std::string name = cli.get_or("figure", std::string("1"));
  if (name.size() == 1 && name[0] >= '1' && name[0] <= '9') {
    name = "fig" + name;
  }
  const exp::SweepSpec* spec = exp::find_spec(name);
  if (spec == nullptr) {
    std::cerr << "unknown spec '" << name << "' (expected one of "
              << exp::spec_names() << ")\n";
    return 1;
  }

  std::size_t jobs = 1;
  try {
    jobs = svc::resolve_jobs(cli.get_or("jobs", std::uint64_t{1}));
  } catch (const std::invalid_argument& e) {
    std::cerr << "sweep_cli: " << e.what() << '\n';
    return 1;
  }

  const auto progress = [](std::size_t done, std::size_t total) {
    std::cerr << "point " << done << "/" << total << " done\n";
  };
  const exp::Sweep sweep = to_sweep(*spec, alpha);
  const exp::SweepResult result =
      jobs > 1 ? svc::run_sweep_parallel(sweep, options, jobs, progress)
               : run_sweep(sweep, options, progress);
  print_figure(std::cout, result, spec->title);
  if (const auto csv = cli.get("csv")) {
    write_csv(*csv, result);
    std::cout << "\nCSV written to " << *csv << '\n';
  }
  return 0;
}
