// Runtime trace demo: watch EDF-VD + AMC react to an execution-time overrun.
//
// A two-core dual-criticality system is partitioned with CA-TPA and driven
// by a scenario in which high-criticality jobs exceed their low-criticality
// budgets.  Every engine event (releases, virtual deadlines, the mode
// switch, job drops, suppressed releases, the idle reset) streams to stdout.
//
//   $ ./examples/runtime_trace [--horizon T] [--escalation P] [--seed S]
#include <iostream>

#include "mcs/mcs.hpp"

int main(int argc, char** argv) {
  using namespace mcs;
  const util::Cli cli(argc, argv,
                      {{"horizon", "simulation end time (default 120)"},
                       {"escalation", "per-level overrun probability "
                                      "(default: deterministic full overrun)"},
                       {"seed", "scenario seed (default 1)"},
                       {"gantt", "also render an ASCII Gantt chart"}});
  if (cli.help_requested()) {
    std::cout << cli.usage("runtime_trace");
    return 0;
  }

  std::vector<McTask> tasks;
  tasks.emplace_back(1, std::vector<double>{2.0, 6.0}, 10.0);   // HI control
  tasks.emplace_back(2, std::vector<double>{1.0}, 5.0);         // LO telemetry
  tasks.emplace_back(3, std::vector<double>{4.0}, 20.0);        // LO logging
  tasks.emplace_back(4, std::vector<double>{3.0, 7.0}, 25.0);   // HI monitor
  const TaskSet ts(std::move(tasks), 2);

  const partition::CaTpaPartitioner catpa;
  const partition::PartitionResult r = catpa.run(ts, 2);
  if (!r.success) {
    std::cout << "partitioning failed\n";
    return 1;
  }
  std::cout << "Partition:";
  for (std::size_t core = 0; core < 2; ++core) {
    std::cout << "  P" << core << " = {";
    for (std::size_t t : r.partition.tasks_on(core)) {
      std::cout << " tau_" << ts[t].id();
    }
    std::cout << " }";
  }
  std::cout << "\n\nEvent trace:\n";

  sim::SimConfig config;
  config.horizon = cli.get_or("horizon", 120.0);
  sim::StreamTraceSink stream_sink(std::cout);
  sim::RecordingTraceSink recording_sink;

  // Fan out to both sinks: the stream prints live, the recorder feeds the
  // optional Gantt chart.
  struct TeeSink final : sim::TraceSink {
    void on_event(const sim::TraceEvent& e) override {
      a->on_event(e);
      b->on_event(e);
    }
    sim::TraceSink* a = nullptr;
    sim::TraceSink* b = nullptr;
  } sink;
  sink.a = &stream_sink;
  sink.b = &recording_sink;

  sim::SimResult run = [&] {
    if (cli.has("escalation")) {
      const sim::RandomScenario scenario(cli.get_or("seed", std::uint64_t{1}),
                                         cli.get_or("escalation", 0.3));
      return simulate(r.partition, scenario, config, &sink);
    }
    const sim::FixedLevelScenario scenario(2);  // every HI job overruns
    return simulate(r.partition, scenario, config, &sink);
  }();

  if (cli.has("gantt")) {
    std::cout << '\n'
              << render_gantt(recording_sink, ts,
                              sim::GanttOptions{.t_end = config.horizon});
  }

  std::cout << "\nSummary: " << run.misses.size() << " deadline misses, "
            << run.total(&sim::CoreStats::mode_switches) << " mode switches, "
            << run.total(&sim::CoreStats::jobs_dropped) << " jobs dropped, "
            << run.total(&sim::CoreStats::releases_suppressed)
            << " releases suppressed, "
            << run.total(&sim::CoreStats::idle_resets) << " idle resets\n";
  return run.missed_deadline() ? 1 : 0;
}
