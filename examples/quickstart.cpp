// Quickstart: define a small mixed-criticality workload, partition it with
// CA-TPA, inspect the analysis, and run the EDF-VD/AMC engine on it.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <iostream>

#include "mcs/mcs.hpp"

int main() {
  using namespace mcs;

  // --- 1. Describe the workload -------------------------------------------
  // A dual-criticality system: two safety-critical (HI) control loops with
  // pessimistic certified WCETs, plus three best-effort (LO) tasks.
  // McTask(id, WCET vector <c(1), ..., c(l)>, period); level = vector size.
  std::vector<McTask> tasks;
  tasks.emplace_back(1, std::vector<double>{8.0, 20.0}, 50.0);    // HI
  tasks.emplace_back(2, std::vector<double>{12.0, 30.0}, 100.0);  // HI
  tasks.emplace_back(3, std::vector<double>{10.0}, 40.0);         // LO
  tasks.emplace_back(4, std::vector<double>{18.0}, 60.0);         // LO
  tasks.emplace_back(5, std::vector<double>{25.0}, 100.0);        // LO
  const TaskSet ts(std::move(tasks), /*num_levels=*/2);

  std::cout << "Workload (" << ts.size() << " tasks, K = " << ts.num_levels()
            << "):\n";
  for (const McTask& t : ts) std::cout << "  " << t.describe() << '\n';

  // --- 2. Partition onto 2 cores with CA-TPA ------------------------------
  const partition::CaTpaPartitioner catpa;  // paper defaults (alpha = 0.7)
  const partition::PartitionResult result = catpa.run(ts, /*num_cores=*/2);
  if (!result.success) {
    std::cout << "CA-TPA could not partition the workload.\n";
    return 1;
  }
  for (std::size_t core = 0; core < result.partition.num_cores(); ++core) {
    std::cout << "Core " << core << ":";
    for (std::size_t t : result.partition.tasks_on(core)) {
      std::cout << " tau_" << ts[t].id();
    }
    std::cout << '\n';
  }

  // --- 3. Inspect the schedulability analysis -----------------------------
  const analysis::PartitionMetrics metrics =
      analysis::partition_metrics(result.partition);
  std::printf("U_sys = %.4f   U_avg = %.4f   Lambda = %.4f\n", metrics.u_sys,
              metrics.u_avg, metrics.imbalance);
  for (std::size_t core = 0; core < result.partition.num_cores(); ++core) {
    const analysis::Theorem1Result analysis_result =
        analysis::improved_test(result.partition.utils_on(core));
    std::printf("  core %zu: schedulable=%s (condition k*=%u)\n", core,
                analysis_result.schedulable ? "yes" : "no",
                analysis_result.best_k);
  }

  // --- 4. Exercise the runtime: every HI job overruns its LO budget -------
  const sim::FixedLevelScenario overrun_storm(/*level=*/2);
  const sim::SimResult run = simulate(result.partition, overrun_storm);
  std::printf(
      "Simulated to t=%.0f: %llu mode switches, %llu jobs dropped, "
      "%llu completed, %zu deadline misses\n",
      run.horizon,
      static_cast<unsigned long long>(run.total(&sim::CoreStats::mode_switches)),
      static_cast<unsigned long long>(run.total(&sim::CoreStats::jobs_dropped)),
      static_cast<unsigned long long>(
          run.total(&sim::CoreStats::jobs_completed)),
      run.misses.size());
  return run.missed_deadline() ? 1 : 0;
}
