// The paper's Sec. III walk-through, reconstructed (the OCR of the original
// Table I loses the concrete numbers; this instance reproduces the same —
// actually a stronger — qualitative story: FFD, BFD, WFD *and* Hybrid all
// fail to place the five tasks on two cores, while CA-TPA succeeds).
//
// Prints Table-I style task parameters with utilization contributions, then
// narrates each scheme's allocation in the style of Tables II/III.
//
//   $ ./examples/paper_example
#include <cstdio>
#include <iostream>

#include "mcs/mcs.hpp"

namespace {

mcs::TaskSet make_paper_example() {
  std::vector<mcs::McTask> tasks;
  tasks.emplace_back(1, std::vector<double>{15.1, 32.4}, 80.0);
  tasks.emplace_back(2, std::vector<double>{8.1, 13.3}, 35.0);
  tasks.emplace_back(3, std::vector<double>{22.0}, 60.0);
  tasks.emplace_back(4, std::vector<double>{5.5, 8.4}, 15.0);
  tasks.emplace_back(5, std::vector<double>{20.5}, 65.0);
  return mcs::TaskSet(std::move(tasks), 2);
}

void narrate(const mcs::TaskSet& ts, const mcs::partition::Partitioner& scheme) {
  using namespace mcs;
  std::cout << "\n--- " << scheme.name() << " ---\n";
  const partition::PartitionResult r = scheme.run(ts, 2);
  for (std::size_t core = 0; core < 2; ++core) {
    std::cout << "  P" << core + 1 << ": {";
    bool first = true;
    for (std::size_t t : r.partition.tasks_on(core)) {
      if (!first) std::cout << ", ";
      std::cout << "tau_" << ts[t].id();
      first = false;
    }
    std::cout << "}";
    const analysis::Theorem1Result a =
        analysis::improved_test(r.partition.utils_on(core));
    const double util = analysis::core_utilization(r.partition.utils_on(core));
    std::printf("  U = %s\n",
                a.schedulable ? util::format_double(util, 4).c_str() : "inf");
  }
  if (r.success) {
    const analysis::PartitionMetrics m = analysis::partition_metrics(r.partition);
    std::printf("  SUCCESS: U_sys=%.4f U_avg=%.4f Lambda=%.4f\n", m.u_sys,
                m.u_avg, m.imbalance);
  } else {
    std::printf("  FAILURE: tau_%zu cannot be placed on any core\n",
                ts[*r.failed_task].id());
  }
}

}  // namespace

int main() {
  using namespace mcs;
  const TaskSet ts = make_paper_example();

  // Table I: timing parameters and utilization contributions.
  std::cout << "Table I - task parameters (K = 2, M = 2)\n";
  util::Table table({"task", "c_i(1)", "c_i(2)", "p_i", "l_i", "u_i(1)",
                     "u_i(2)", "C_i(1)", "C_i(2)", "C_i"});
  const auto contribs = utilization_contributions(ts);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const McTask& t = ts[i];
    table.begin_row();
    table.add_cell("tau_" + std::to_string(t.id()));
    table.add_cell(t.wcet(1), 1);
    table.add_cell(t.level() >= 2 ? util::format_double(t.wcet(2), 1) : "-");
    table.add_cell(t.period(), 0);
    table.add_cell(static_cast<std::size_t>(t.level()));
    table.add_cell(t.utilization(1), 4);
    table.add_cell(t.level() >= 2 ? util::format_double(t.utilization(2), 4)
                                  : "-");
    table.add_cell(utilization_contribution(ts, i, 1), 4);
    table.add_cell(t.level() >= 2
                       ? util::format_double(utilization_contribution(ts, i, 2), 4)
                       : "-");
    table.add_cell(contribs[i].value, 4);
  }
  table.print(std::cout);

  std::cout << "\nCA-TPA allocation order (decreasing contribution):";
  for (std::size_t i : order_by_contribution(ts)) {
    std::cout << " tau_" << ts[i].id();
  }
  std::cout << '\n';

  // Tables II/III: every baseline fails, CA-TPA succeeds.
  for (const auto& scheme : partition::paper_schemes(0.7)) {
    narrate(ts, *scheme);
  }

  // And the CA-TPA partition survives a worst-case overrun storm at runtime.
  const partition::CaTpaPartitioner catpa;
  const partition::PartitionResult r = catpa.run(ts, 2);
  const sim::FixedLevelScenario storm(2);
  const sim::SimResult run = simulate(r.partition, storm);
  std::printf(
      "\nRuntime check (all HI jobs at level-2 budgets): %zu misses, "
      "%llu mode switches over t=[0, %.0f)\n",
      run.misses.size(),
      static_cast<unsigned long long>(run.total(&sim::CoreStats::mode_switches)),
      run.horizon);
  return run.missed_deadline() ? 1 : 0;
}
