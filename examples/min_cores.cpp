// Capacity planning: how many cores does each partitioning scheme need for
// a given workload?  Searches the minimum feasible M per scheme, showing the
// provisioning gap between heuristics — the practical face of the paper's
// schedulability-ratio improvements.
//
//   $ ./examples/min_cores                      # generated workload
//   $ ./examples/min_cores --in workload.mcs    # your own task set
#include <iostream>
#include <optional>

#include "mcs/mcs.hpp"

namespace {

using namespace mcs;

/// Smallest M in [1, limit] for which the scheme succeeds, if any.  The
/// heuristics are not monotone in M in pathological cases, so we scan
/// upward rather than binary-search.
std::optional<std::size_t> min_cores(const partition::Partitioner& scheme,
                                     const TaskSet& ts, std::size_t limit) {
  for (std::size_t m = 1; m <= limit; ++m) {
    if (scheme.run(ts, m).success) return m;
  }
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(
      argc, argv,
      {{"in", "task-set file (default: generate one)"},
       {"levels", "K for the generated workload (default 4)"},
       {"nsu", "NSU of the generated workload (default 0.6)"},
       {"tasks", "N of the generated workload (default 60)"},
       {"seed", "generator seed (default 1)"},
       {"limit", "maximum core count to try (default 64)"},
       {"alpha", "CA-TPA imbalance threshold (default 0.7)"}});
  if (cli.help_requested()) {
    std::cout << cli.usage("min_cores");
    return 0;
  }

  const auto limit =
      static_cast<std::size_t>(cli.get_or("limit", std::uint64_t{64}));

  const TaskSet ts = [&] {
    if (const auto path = cli.get("in")) return io::load_taskset(*path);
    gen::GenParams params = exp::default_gen_params();
    params.num_levels =
        static_cast<Level>(cli.get_or("levels", std::uint64_t{4}));
    params.nsu = cli.get_or("nsu", 0.6);
    params.num_tasks =
        static_cast<std::size_t>(cli.get_or("tasks", std::uint64_t{60}));
    gen::Rng rng(cli.get_or("seed", std::uint64_t{1}));
    return generate(params, rng);
  }();

  std::cout << "Workload: " << ts.size() << " tasks, K = " << ts.num_levels()
            << ", raw level-1 utilization = "
            << util::format_double(ts.raw_level1_util(), 3)
            << ", own-level utilization = "
            << util::format_double(ts.utils().own_level_sum(), 3) << "\n\n";

  util::Table table({"scheme", "min cores", "U_avg at min", "Lambda at min"});
  for (const auto& scheme : partition::paper_schemes(cli.get_or("alpha", 0.7))) {
    table.begin_row();
    table.add_cell(scheme->name());
    const std::optional<std::size_t> m = min_cores(*scheme, ts, limit);
    if (!m) {
      table.add_cell(std::string("> ") + std::to_string(limit));
      table.add_cell(std::string("-"));
      table.add_cell(std::string("-"));
      continue;
    }
    table.add_cell(*m);
    const partition::PartitionResult r = scheme->run(ts, *m);
    const analysis::PartitionMetrics metrics =
        analysis::partition_metrics(r.partition);
    table.add_cell(metrics.u_avg, 4);
    table.add_cell(metrics.imbalance, 4);
  }
  table.print(std::cout);
  return 0;
}
