// Swiss-army CLI around the task-set file format: generate workloads to a
// file, analyze them, partition them with any scheme, and simulate the
// result — all without writing code.
//
//   $ ./examples/taskset_tool --mode gen --out workload.mcs --tasks 20
//   $ ./examples/taskset_tool --mode analyze --in workload.mcs
//   $ ./examples/taskset_tool --mode partition --in workload.mcs
//         ... --scheme CA-TPA --cores 4 --out mapping.part
//   $ ./examples/taskset_tool --mode simulate --in workload.mcs
//         ... --scheme CA-TPA --cores 4 --escalation 0.3
#include <fstream>
#include <iostream>

#include "mcs/mcs.hpp"

namespace {

using namespace mcs;

int do_gen(const util::Cli& cli) {
  gen::GenParams params = exp::default_gen_params();
  params.num_cores =
      static_cast<std::size_t>(cli.get_or("cores", std::uint64_t{8}));
  params.num_levels =
      static_cast<Level>(cli.get_or("levels", std::uint64_t{4}));
  params.nsu = cli.get_or("nsu", exp::kDefaultNsu);
  params.ifc = cli.get_or("ifc", exp::kDefaultIfc);
  params.num_tasks =
      static_cast<std::size_t>(cli.get_or("tasks", std::uint64_t{0}));
  gen::Rng rng(cli.get_or("seed", std::uint64_t{1}));
  const TaskSet ts = generate(params, rng);
  const std::string out = cli.get_or("out", std::string{});
  if (out.empty()) {
    io::write_taskset(std::cout, ts);
  } else {
    io::save_taskset(out, ts);
    std::cout << "wrote " << ts.size() << " tasks to " << out << '\n';
  }
  return 0;
}

int do_analyze(const util::Cli& cli) {
  const TaskSet ts = io::load_taskset(cli.get_or("in", std::string{}));
  std::cout << ts.size() << " tasks, K = " << ts.num_levels() << '\n';
  const UtilMatrix& u = ts.utils();
  for (Level k = 1; k <= ts.num_levels(); ++k) {
    std::cout << "  U(" << k << ") = "
              << util::format_double(ts.total_util(k), 4) << '\n';
  }
  std::cout << "  own-level sum (Eq. 4 LHS) = "
            << util::format_double(u.own_level_sum(), 4) << '\n';
  const analysis::Theorem1Result r = analysis::improved_test(u);
  std::cout << "  single-core EDF-VD (Theorem 1): "
            << (r.schedulable ? "schedulable" : "NOT schedulable");
  if (r.schedulable) std::cout << " (k* = " << r.best_k << ")";
  std::cout << '\n';
  if (ts.num_levels() == 2) {
    std::cout << "  single-core AMC-rtb (fixed priority): "
              << (analysis::amc_rtb_test(ts).schedulable ? "schedulable"
                                                         : "NOT schedulable")
              << '\n';
    const analysis::DbfResult dbf = analysis::dbf_dual_test(ts);
    std::cout << "  single-core DBF test: "
              << (dbf.schedulable ? "schedulable (scale " +
                                        util::format_double(dbf.scale, 3) + ")"
                                  : "NOT schedulable")
              << '\n';
  }
  return 0;
}

int do_partition(const util::Cli& cli, bool simulate_after) {
  const TaskSet ts = io::load_taskset(cli.get_or("in", std::string{}));
  const auto cores =
      static_cast<std::size_t>(cli.get_or("cores", std::uint64_t{4}));
  const auto scheme = partition::make_scheme(
      cli.get_or("scheme", std::string{"CA-TPA"}), cli.get_or("alpha", 0.7));
  const partition::PartitionResult r = scheme->run(ts, cores);
  if (!r.success) {
    std::cout << scheme->name() << ": FAILED (task id "
              << ts[*r.failed_task].id() << " unplaceable)\n";
    return 1;
  }
  const analysis::PartitionMetrics m = analysis::partition_metrics(r.partition);
  std::cout << scheme->name() << ": success; U_sys = "
            << util::format_double(m.u_sys, 4)
            << ", U_avg = " << util::format_double(m.u_avg, 4)
            << ", Lambda = " << util::format_double(m.imbalance, 4) << '\n';

  const std::string out = cli.get_or("out", std::string{});
  if (!out.empty()) {
    std::ofstream os(out);
    io::write_partition(os, r.partition);
    std::cout << "partition written to " << out << '\n';
  }

  if (simulate_after) {
    const sim::RandomScenario scenario(cli.get_or("seed", std::uint64_t{1}),
                                       cli.get_or("escalation", 0.3));
    const sim::SimResult run = simulate(r.partition, scenario);
    std::cout << "simulated to t=" << run.horizon << ": "
              << run.total(&sim::CoreStats::mode_switches)
              << " mode switches, "
              << run.total(&sim::CoreStats::jobs_completed) << " completed, "
              << run.total(&sim::CoreStats::jobs_dropped) << " dropped, "
              << run.misses.size() << " misses\n";
    return run.missed_deadline() ? 1 : 0;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(
      argc, argv,
      {{"mode", "gen | analyze | partition | simulate"},
       {"in", "input task-set file"},
       {"out", "output file (task set for gen, partition for partition)"},
       {"scheme", "WFD | FFD | BFD | Hybrid | CA-TPA (default CA-TPA)"},
       {"cores", "number of cores (default 4; gen default 8)"},
       {"levels", "K for gen (default 4)"},
       {"nsu", "NSU for gen (default 0.6)"},
       {"ifc", "IFC for gen (default 0.4)"},
       {"tasks", "fixed N for gen (default: N ~ U{40..200})"},
       {"alpha", "CA-TPA imbalance threshold (default 0.7)"},
       {"escalation", "per-level overrun probability for simulate (0.3)"},
       {"seed", "RNG seed (default 1)"}});
  if (cli.help_requested()) {
    std::cout << cli.usage("taskset_tool");
    return 0;
  }
  try {
    const std::string mode = cli.get_or("mode", std::string{"analyze"});
    if (mode == "gen") return do_gen(cli);
    if (mode == "analyze") return do_analyze(cli);
    if (mode == "partition") return do_partition(cli, false);
    if (mode == "simulate") return do_partition(cli, true);
    std::cerr << "unknown --mode '" << mode << "'\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
}
