// Integrated Modular Avionics scenario (the paper's motivating domain).
//
// Models an IMA cabinet hosting functions certified at DO-178C design
// assurance levels A-E, mapped to criticality levels 5 (DAL-A) down to 1
// (DAL-E).  Each function's WCET grows with assurance level, reflecting the
// increasingly pessimistic certification-time analysis.  The example
// partitions the cabinet onto a quad-core module with every scheme, compares
// the partitions, then stress-tests the CA-TPA mapping in the runtime engine
// with randomized overruns.
//
//   $ ./examples/avionics_ima
#include <cstdio>
#include <iostream>
#include <string>

#include "mcs/mcs.hpp"

namespace {

struct Function {
  const char* name;
  char dal;         // 'A'..'E'
  double period;    // ms
  double base_wcet; // certified level-1 (DAL-E analysis) WCET, ms
};

// A representative avionics function inventory.  Periods follow typical
// ARINC-653 major/minor frame rates.
constexpr Function kFunctions[] = {
    {"flight-control-inner-loop", 'A', 10.0, 1.2},
    {"flight-control-outer-loop", 'A', 25.0, 2.8},
    {"air-data-computer", 'A', 20.0, 1.6},
    {"autopilot", 'B', 40.0, 4.5},
    {"engine-monitor", 'B', 50.0, 5.0},
    {"fuel-management", 'B', 100.0, 9.0},
    {"nav-radio", 'C', 40.0, 3.2},
    {"fms-route-planner", 'C', 200.0, 22.0},
    {"tcas-display", 'C', 100.0, 8.5},
    {"weather-radar-render", 'D', 50.0, 6.0},
    {"datalink-acars", 'D', 200.0, 16.0},
    {"cabin-lighting", 'E', 100.0, 5.0},
    {"ife-media-server", 'E', 50.0, 7.5},
    {"maintenance-logger", 'E', 200.0, 12.0},
};

// DAL letter -> criticality level (A is most critical).
mcs::Level level_of(char dal) {
  return static_cast<mcs::Level>('E' - dal + 1);
}

}  // namespace

int main() {
  using namespace mcs;
  constexpr std::size_t kCores = 4;
  constexpr double kIfc = 0.35;  // WCET growth per assurance level

  std::vector<McTask> tasks;
  std::vector<std::string> names;
  for (std::size_t i = 0; i < std::size(kFunctions); ++i) {
    const Function& f = kFunctions[i];
    const Level level = level_of(f.dal);
    std::vector<double> wcets;
    double c = f.base_wcet;
    for (Level k = 1; k <= level; ++k) {
      wcets.push_back(std::min(c, f.period));
      c *= (1.0 + kIfc);
    }
    tasks.emplace_back(i, std::move(wcets), f.period);
    names.emplace_back(std::string(f.name) + " (DAL-" + f.dal + ")");
  }
  const TaskSet ts(std::move(tasks), 5);

  std::cout << "IMA cabinet: " << ts.size() << " functions, " << kCores
            << " cores, K = 5 (DAL-A..E)\n\n";

  // Compare all partitioning schemes on this cabinet.
  util::Table table({"scheme", "feasible", "U_sys", "U_avg", "Lambda"});
  const auto schemes = partition::paper_schemes(0.7);
  const partition::Partitioner* catpa = nullptr;
  partition::PartitionResult catpa_result{.partition = Partition(ts, kCores)};
  for (const auto& scheme : schemes) {
    const partition::PartitionResult r = scheme->run(ts, kCores);
    table.begin_row();
    table.add_cell(scheme->name());
    table.add_cell(std::string(r.success ? "yes" : "NO"));
    if (r.success) {
      const analysis::PartitionMetrics m =
          analysis::partition_metrics(r.partition);
      table.add_cell(m.u_sys, 4);
      table.add_cell(m.u_avg, 4);
      table.add_cell(m.imbalance, 4);
    } else {
      table.add_cell(std::string("-"));
      table.add_cell(std::string("-"));
      table.add_cell(std::string("-"));
    }
    if (scheme->name() == "CA-TPA" && r.success) {
      catpa = scheme.get();
      catpa_result = r;
    }
  }
  table.print(std::cout);

  if (catpa == nullptr) {
    std::cout << "\nCA-TPA found no feasible mapping for this cabinet.\n";
    return 1;
  }

  std::cout << "\nCA-TPA mapping:\n";
  for (std::size_t core = 0; core < kCores; ++core) {
    std::cout << "  core " << core << ":\n";
    for (std::size_t t : catpa_result.partition.tasks_on(core)) {
      std::printf("    %-38s p=%6.1fms  u(1)=%.3f  u(l)=%.3f\n",
                  names[t].c_str(), ts[t].period(), ts[t].utilization(1),
                  ts[t].max_utilization());
    }
  }

  // Stress: 30% of jobs escalate one assurance level per coin flip.
  std::cout << "\nRuntime stress (randomized overruns, 20x longest period):\n";
  const sim::RandomScenario storm(2026, 0.3);
  const sim::SimResult run = simulate(catpa_result.partition, storm);
  for (std::size_t core = 0; core < run.cores.size(); ++core) {
    const sim::CoreStats& c = run.cores[core];
    std::printf(
        "  core %zu: max mode %u, %llu switches, %llu dropped, %llu done\n",
        core, c.max_mode, static_cast<unsigned long long>(c.mode_switches),
        static_cast<unsigned long long>(c.jobs_dropped),
        static_cast<unsigned long long>(c.jobs_completed));
  }
  std::printf("  deadline misses: %zu\n", run.misses.size());
  return run.missed_deadline() ? 1 : 0;
}
