#include "mcs/obs/trace.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "mcs/util/json.hpp"
#include "mcs/util/thread_pool.hpp"

namespace mcs::obs {
namespace {

constexpr TraceSite kSpanSite{"test.span", "a", "b"};
constexpr TraceSite kInnerSite{"test.inner", "i"};
constexpr TraceSite kInstantSite{"test.instant", "idx"};
constexpr TraceSite kCounterSite{"test.counter"};

/// Flattens a snapshot into (site, record) pairs across all threads.
std::vector<TraceRecord> all_records(const TraceSnapshot& snapshot) {
  std::vector<TraceRecord> out;
  for (const ThreadTrace& thread : snapshot.threads) {
    out.insert(out.end(), thread.records.begin(), thread.records.end());
  }
  return out;
}

TEST(ObsTrace, DisabledRecordsNothing) {
  const TraceEnabledGuard off(false);
  reset_trace();
  trace_instant(kInstantSite, 1);
  trace_counter(kCounterSite, 42);
  { const ScopedSpan span(kSpanSite, 1, 2); }
  EXPECT_TRUE(all_records(collect_trace()).empty());
}

TEST(ObsTrace, GuardRestoresPreviousState) {
  const bool before = trace_enabled();
  {
    TraceEnabledGuard outer(true);
    EXPECT_TRUE(trace_enabled());
    {
      TraceEnabledGuard inner(false);
      EXPECT_FALSE(trace_enabled());
    }
    EXPECT_TRUE(trace_enabled());
  }
  EXPECT_EQ(trace_enabled(), before);
}

TEST(ObsTrace, NestedSpansRecordAtScopeExit) {
  const TraceEnabledGuard on(true);
  reset_trace();
  {
    const ScopedSpan outer(kSpanSite, 7, 8);
    { const ScopedSpan inner(kInnerSite, 9); }
  }
  const std::vector<TraceRecord> records = all_records(collect_trace());
  ASSERT_EQ(records.size(), 2u);
  // Exit-time recording: the inner span lands in the ring first.
  EXPECT_EQ(records[0].site, &kInnerSite);
  EXPECT_EQ(records[0].a0, 9u);
  EXPECT_EQ(records[1].site, &kSpanSite);
  EXPECT_EQ(records[1].a0, 7u);
  EXPECT_EQ(records[1].a1, 8u);
  // The outer span starts no later and ends no earlier than the inner.
  EXPECT_LE(records[1].ts_ns, records[0].ts_ns);
  EXPECT_GE(records[1].ts_ns + records[1].dur_ns,
            records[0].ts_ns + records[0].dur_ns);
}

TEST(ObsTrace, RingWrapAroundKeepsLastN) {
  TraceRing ring(0);
  const std::size_t pushed = TraceRing::kCapacity + 100;
  for (std::size_t i = 0; i < pushed; ++i) {
    TraceRecord record;
    record.site = &kInstantSite;
    record.a0 = i;
    ring.push(record);
  }
  EXPECT_EQ(ring.pushed(), pushed);
  std::vector<TraceRecord> out;
  ring.snapshot(out);
  ASSERT_EQ(out.size(), TraceRing::kCapacity);
  EXPECT_EQ(out.front().a0, 100u);  // oldest surviving record
  EXPECT_EQ(out.back().a0, pushed - 1);
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_EQ(out[i].a0, out[i - 1].a0 + 1);
  }
}

TEST(ObsTrace, PerThreadIsolationUnderThreadPool) {
  const TraceEnabledGuard on(true);
  reset_trace();
  constexpr std::size_t kIters = 2000;
  util::parallel_for(kIters,
                     [](std::size_t i) { trace_instant(kInstantSite, i); });
  const TraceSnapshot snapshot = collect_trace();

  // Every index recorded exactly once, across all rings.
  std::multiset<std::uint64_t> seen;
  for (const ThreadTrace& thread : snapshot.threads) {
    std::uint64_t last_ts = 0;
    for (const TraceRecord& record : thread.records) {
      seen.insert(record.a0);
      // Single-writer rings: timestamps are nondecreasing per ring.
      EXPECT_GE(record.ts_ns, last_ts);
      last_ts = record.ts_ns;
    }
  }
  ASSERT_EQ(seen.size(), kIters);
  for (std::size_t i = 0; i < kIters; ++i) {
    EXPECT_EQ(seen.count(i), 1u) << "index " << i;
  }
}

TEST(ObsTrace, ChromeExportIsWellFormed) {
  const TraceEnabledGuard on(true);
  reset_trace();
  {
    const ScopedSpan span(kSpanSite, 1, 2);
    trace_instant(kInstantSite, 5);
    trace_counter(kCounterSite, 77);
  }
  const util::Json doc = chrome_trace_json(collect_trace());
  // Round-trips through the parser (well-formedness the cheap way).
  const util::Json reparsed = util::Json::parse(doc.dump());
  const util::Json* events = reparsed.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  EXPECT_EQ(reparsed.at("displayTimeUnit").as_string(), "ns");

  std::map<std::string, std::string> phase_by_name;
  bool saw_thread_meta = false;
  for (const util::Json& event : events->items()) {
    const std::string ph = event.at("ph").as_string();
    EXPECT_EQ(event.at("pid").as_u64(), 1u);
    if (ph == "M") {
      saw_thread_meta = saw_thread_meta ||
                        event.at("name").as_string() == "thread_name";
      continue;
    }
    phase_by_name[event.at("name").as_string()] = ph;
    if (ph == "X") {
      EXPECT_NE(event.find("dur"), nullptr);
    }
    if (ph == "i") {
      EXPECT_EQ(event.at("s").as_string(), "t");
    }
  }
  EXPECT_TRUE(saw_thread_meta);
  EXPECT_EQ(phase_by_name.at("test.span"), "X");
  EXPECT_EQ(phase_by_name.at("test.instant"), "i");
  EXPECT_EQ(phase_by_name.at("test.counter"), "C");

  // The span's integer args survive under their site-declared names.
  for (const util::Json& event : events->items()) {
    if (event.at("ph").as_string() != "X") continue;
    const util::Json& args = event.at("args");
    EXPECT_EQ(args.at("a").as_u64(), 1u);
    EXPECT_EQ(args.at("b").as_u64(), 2u);
  }
}

/// Builds one "X" event with exact microsecond lexemes.
util::Json span_event(const char* name, std::uint64_t tid, const char* ts_us,
                      const char* dur_us) {
  util::Json event = util::Json::object();
  event.set("name", util::Json::string(name));
  event.set("ph", util::Json::string("X"));
  event.set("pid", util::Json::number(std::uint64_t{1}));
  event.set("tid", util::Json::number(tid));
  event.set("ts", util::Json::number_raw(ts_us));
  event.set("dur", util::Json::number_raw(dur_us));
  return event;
}

TEST(ObsTrace, SummarySelfTimeAndPercentiles) {
  // tid 0: outer [0, 10us) containing inner [2us, 6us); tid 1: inner [0, 3us).
  util::Json events = util::Json::array();
  events.push(span_event("outer", 0, "0.000", "10.000"));
  events.push(span_event("inner", 0, "2.000", "4.000"));
  events.push(span_event("inner", 1, "0.000", "3.000"));
  util::Json doc = util::Json::object();
  doc.set("traceEvents", std::move(events));

  const TraceSummary summary = summarize_chrome_trace(doc, "unit-test");
  EXPECT_EQ(summary.source, "unit-test");
  ASSERT_EQ(summary.spans.size(), 2u);
  // Ordered by self time desc: inner (7us) before outer (6us).
  const SpanStats& inner = summary.spans[0];
  const SpanStats& outer = summary.spans[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(inner.count, 2u);
  EXPECT_EQ(inner.total_ns, 7000u);
  EXPECT_EQ(inner.self_ns, 7000u);
  EXPECT_EQ(inner.p50_self_ns, 3000u);  // rank 1 of {3000, 4000}
  EXPECT_EQ(inner.p99_self_ns, 4000u);  // rank 2
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.count, 1u);
  EXPECT_EQ(outer.total_ns, 10000u);
  EXPECT_EQ(outer.self_ns, 6000u);  // 10us minus the enclosed inner 4us
  EXPECT_EQ(outer.p50_self_ns, 6000u);
  EXPECT_EQ(outer.p99_self_ns, 6000u);

  // Summary artifacts round-trip through the JSON format.
  const TraceSummary reparsed =
      parse_trace_summary(util::Json::parse(trace_summary_json(summary).dump()));
  EXPECT_EQ(reparsed.source, summary.source);
  ASSERT_EQ(reparsed.spans.size(), summary.spans.size());
  for (std::size_t i = 0; i < summary.spans.size(); ++i) {
    EXPECT_EQ(reparsed.spans[i].name, summary.spans[i].name);
    EXPECT_EQ(reparsed.spans[i].count, summary.spans[i].count);
    EXPECT_EQ(reparsed.spans[i].total_ns, summary.spans[i].total_ns);
    EXPECT_EQ(reparsed.spans[i].self_ns, summary.spans[i].self_ns);
    EXPECT_EQ(reparsed.spans[i].p50_self_ns, summary.spans[i].p50_self_ns);
    EXPECT_EQ(reparsed.spans[i].p99_self_ns, summary.spans[i].p99_self_ns);
  }
}

TEST(ObsTrace, SummaryRejectsMalformedInput) {
  EXPECT_THROW((void)summarize_chrome_trace(util::Json::object()),
               std::runtime_error);
  util::Json bad = util::Json::object();
  bad.set("format", util::Json::string("not-a-summary"));
  EXPECT_THROW((void)parse_trace_summary(bad), std::runtime_error);
}

}  // namespace
}  // namespace mcs::obs
