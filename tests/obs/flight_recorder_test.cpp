#include "mcs/obs/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>

#include "mcs/obs/trace.hpp"
#include "mcs/util/json.hpp"
#include "mcs/verify/corpus.hpp"

namespace mcs::obs {
namespace {

constexpr TraceSite kCrashSite{"test.before_failure", "step"};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << path;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

std::string fresh_dir(const char* leaf) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / leaf;
  std::filesystem::remove_all(dir);
  return dir.string();
}

TEST(FlightRecorder, DumpWritesParseableChromeJson) {
  const TraceEnabledGuard on(true);
  reset_trace();
  { const ScopedSpan span(kCrashSite, 3); }

  const std::string dir = fresh_dir("flight_dump");
  const std::string path = dump_flight_record(dir, "crash", "oracle said no");
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path, dir + "/crash.flight.json");
  ASSERT_TRUE(std::filesystem::exists(path));

  const util::Json doc = util::Json::parse(slurp(path));
  EXPECT_EQ(doc.at("format").as_string(), "mcs-trace/1");
  EXPECT_EQ(doc.at("note").as_string(), "oracle said no");
  bool found = false;
  for (const util::Json& event : doc.at("traceEvents").items()) {
    if (const util::Json* name = event.find("name");
        name != nullptr && name->as_string() == "test.before_failure") {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "span emitted before the dump is missing from it";
}

// The deliberately-injected failure: a failing CheckResult routed through
// verify::attach_flight_record must produce a dump file and point its
// detail at it — the diagnostic contract behind mcs_fuzz --replay.
TEST(FlightRecorder, InjectedFailureProducesDump) {
  const TraceEnabledGuard on(true);
  reset_trace();
  { const ScopedSpan span(kCrashSite, 1); }

  const std::string dir = fresh_dir("flight_injected");
  const verify::CheckResult failed = verify::attach_flight_record(
      verify::CheckResult{false, "injected failure"}, dir, "inject");
  EXPECT_FALSE(failed.ok);
  const std::string expected_path = dir + "/inject.flight.json";
  EXPECT_EQ(failed.detail,
            "injected failure; flight recording: " + expected_path);
  ASSERT_TRUE(std::filesystem::exists(expected_path));
  const util::Json doc = util::Json::parse(slurp(expected_path));
  EXPECT_EQ(doc.at("note").as_string(), "injected failure");
}

TEST(FlightRecorder, OkResultsPassThroughWithoutDump) {
  const std::string dir = fresh_dir("flight_ok");
  const verify::CheckResult ok =
      verify::attach_flight_record(verify::CheckResult{}, dir, "clean");
  EXPECT_TRUE(ok.ok);
  EXPECT_TRUE(ok.detail.empty());
  EXPECT_FALSE(std::filesystem::exists(dir + "/clean.flight.json"));
}

}  // namespace
}  // namespace mcs::obs
