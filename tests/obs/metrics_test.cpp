#include "mcs/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "mcs/exp/montecarlo.hpp"
#include "mcs/util/thread_pool.hpp"

namespace mcs::obs {
namespace {

TEST(MetricsTest, DisabledInstrumentsRecordNothing) {
  MetricsEnabledGuard guard(false);
  Counter counter;
  counter.add();
  counter.add(100);
  EXPECT_EQ(counter.value(), 0u);

  Timer timer;
  timer.record(1234);
  EXPECT_EQ(timer.count(), 0u);
  EXPECT_EQ(timer.total_ns(), 0u);

  Histogram histogram;
  histogram.record(42);
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.sum(), 0u);
}

TEST(MetricsTest, EnabledCounterCounts) {
  MetricsEnabledGuard guard(true);
  Counter counter;
  counter.add();
  counter.add(9);
  EXPECT_EQ(counter.value(), 10u);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(MetricsTest, GuardRestoresPreviousState) {
  const bool before = metrics_enabled();
  {
    MetricsEnabledGuard outer(true);
    EXPECT_TRUE(metrics_enabled());
    {
      MetricsEnabledGuard inner(false);
      EXPECT_FALSE(metrics_enabled());
    }
    EXPECT_TRUE(metrics_enabled());
  }
  EXPECT_EQ(metrics_enabled(), before);
}

TEST(MetricsTest, CounterIsExactUnderThreadPool) {
  MetricsEnabledGuard guard(true);
  Counter counter;
  constexpr std::size_t kIters = 10000;
  util::parallel_for(kIters, [&](std::size_t i) { counter.add(i % 3 + 1); });
  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < kIters; ++i) expected += i % 3 + 1;
  EXPECT_EQ(counter.value(), expected);
}

TEST(MetricsTest, HistogramBucketsByBitWidth) {
  MetricsEnabledGuard guard(true);
  Histogram histogram;
  histogram.record(0);   // bucket 0
  histogram.record(1);   // bucket 1
  histogram.record(5);   // bit_width(5) = 3
  histogram.record(5);
  EXPECT_EQ(histogram.bucket(0), 1u);
  EXPECT_EQ(histogram.bucket(1), 1u);
  EXPECT_EQ(histogram.bucket(3), 2u);
  EXPECT_EQ(histogram.count(), 4u);
  EXPECT_EQ(histogram.sum(), 11u);
  histogram.reset();
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.sum(), 0u);
}

TEST(MetricsTest, HistogramTracksRunningMax) {
  MetricsEnabledGuard guard(true);
  Histogram histogram;
  EXPECT_EQ(histogram.max(), 0u);
  histogram.record(7);
  histogram.record(3);
  EXPECT_EQ(histogram.max(), 7u);
  histogram.record(100);
  histogram.record(99);
  EXPECT_EQ(histogram.max(), 100u);
  histogram.reset();
  EXPECT_EQ(histogram.max(), 0u);
}

TEST(MetricsTest, HistogramMaxIsExactUnderThreadPool) {
  MetricsEnabledGuard guard(true);
  Histogram histogram;
  constexpr std::size_t kIters = 10000;
  util::parallel_for(kIters, [&](std::size_t i) { histogram.record(i); });
  EXPECT_EQ(histogram.max(), kIters - 1);
  EXPECT_EQ(histogram.count(), kIters);
}

TEST(MetricsTest, ScopedTimerRecordsOnlyWhenEnabled) {
  Timer timer;
  {
    MetricsEnabledGuard guard(false);
    ScopedTimer scoped(timer);
  }
  EXPECT_EQ(timer.count(), 0u);
  {
    MetricsEnabledGuard guard(true);
    ScopedTimer scoped(timer);
  }
  EXPECT_EQ(timer.count(), 1u);
}

TEST(RegistryTest, LookupIsStableByName) {
  Counter& a = registry().counter("test.registry.stable");
  Counter& b = registry().counter("test.registry.stable");
  EXPECT_EQ(&a, &b);
  Timer& t1 = registry().timer("test.registry.timer");
  Timer& t2 = registry().timer("test.registry.timer");
  EXPECT_EQ(&t1, &t2);
  Histogram& h1 = registry().histogram("test.registry.hist");
  Histogram& h2 = registry().histogram("test.registry.hist");
  EXPECT_EQ(&h1, &h2);
}

TEST(RegistryTest, SnapshotAndDeltas) {
  MetricsEnabledGuard guard(true);
  Counter& counter = registry().counter("test.registry.delta");
  const MetricsSnapshot before = registry().snapshot();
  counter.add(7);
  const MetricsSnapshot after = registry().snapshot();

  const auto deltas = counter_deltas(before, after);
  ASSERT_EQ(deltas.count("test.registry.delta"), 1u);
  EXPECT_EQ(deltas.at("test.registry.delta"), 7u);
  // Untouched counters do not appear.
  for (const auto& [name, delta] : deltas) EXPECT_GT(delta, 0u) << name;
}

TEST(RegistryTest, DeltaOfCounterRegisteredAfterBaseline) {
  MetricsEnabledGuard guard(true);
  const MetricsSnapshot before = registry().snapshot();
  registry().counter("test.registry.late").add(3);
  const auto deltas = counter_deltas(before, registry().snapshot());
  ASSERT_EQ(deltas.count("test.registry.late"), 1u);
  EXPECT_EQ(deltas.at("test.registry.late"), 3u);
}

TEST(MetricsTest, HistogramPercentileFromPow2Buckets) {
  MetricsEnabledGuard guard(true);
  Histogram histogram;
  EXPECT_EQ(histogram.percentile(0.5), 0u);  // empty

  histogram.record(1);    // bucket 1 (upper bound 1)
  histogram.record(2);    // bucket 2 (upper bound 3)
  histogram.record(3);    // bucket 2
  histogram.record(100);  // bucket 7 (upper bound 127)
  // Rank-based: rank = max(1, ceil(q * 4)).
  EXPECT_EQ(histogram.percentile(0.0), 1u);    // rank 1 -> bucket 1
  EXPECT_EQ(histogram.percentile(0.50), 3u);   // rank 2 -> bucket 2
  EXPECT_EQ(histogram.percentile(0.75), 3u);   // rank 3 -> bucket 2
  // rank 4 lands in bucket 7 whose bound 127 clamps to the observed max.
  EXPECT_EQ(histogram.percentile(0.99), 100u);
  EXPECT_EQ(histogram.percentile(1.0), 100u);
}

TEST(MetricsTest, PercentileFromBucketsIsExactOnRawCounts) {
  std::array<std::uint64_t, Histogram::kBuckets> buckets{};
  EXPECT_EQ(percentile_from_buckets(buckets, 0.5), 0u);
  buckets[3] = 5;  // five values in [4, 7]
  EXPECT_EQ(percentile_from_buckets(buckets, 0.5), 7u);
  buckets[0] = 5;  // five zeros rank below them
  EXPECT_EQ(percentile_from_buckets(buckets, 0.5), 0u);
  EXPECT_EQ(percentile_from_buckets(buckets, 0.51), 7u);
  // Out-of-range q clamps.
  EXPECT_EQ(percentile_from_buckets(buckets, -1.0), 0u);
  EXPECT_EQ(percentile_from_buckets(buckets, 2.0), 7u);
}

TEST(MetricsTest, SnapshotCarriesHistogramPercentiles) {
  MetricsEnabledGuard guard(true);
  Histogram& histogram = registry().histogram("test.registry.pctl");
  histogram.reset();
  histogram.record(1);
  histogram.record(6);
  const MetricsSnapshot snap = registry().snapshot();
  const auto& data = snap.histograms.at("test.registry.pctl");
  EXPECT_EQ(data.count, 2u);
  EXPECT_EQ(data.max, 6u);
  EXPECT_EQ(data.p50, 1u);  // rank 1 -> bucket 1
  EXPECT_EQ(data.p99, 6u);  // rank 2 -> bucket 3, clamped to max
  EXPECT_EQ(data.buckets[1], 1u);
  EXPECT_EQ(data.buckets[3], 1u);
}

TEST(RegistryTest, HistogramPercentileDeltasIgnoreHistory) {
  MetricsEnabledGuard guard(true);
  Histogram& histogram = registry().histogram("test.registry.hpd");
  histogram.reset();
  histogram.record(1000);  // pre-baseline noise the deltas must not see
  const MetricsSnapshot before = registry().snapshot();

  histogram.record(1);
  histogram.record(1);
  histogram.record(1);
  histogram.record(8);  // bucket 4 (upper bound 15)
  const MetricsSnapshot after = registry().snapshot();

  const auto deltas = histogram_percentile_deltas(before, after);
  ASSERT_EQ(deltas.count("test.registry.hpd.p50"), 1u);
  EXPECT_EQ(deltas.at("test.registry.hpd.p50"), 1u);   // rank 2 of 4
  EXPECT_EQ(deltas.at("test.registry.hpd.p90"), 15u);  // rank 4
  EXPECT_EQ(deltas.at("test.registry.hpd.p99"), 15u);

  // A histogram that did not grow contributes nothing.
  const auto idle = histogram_percentile_deltas(after, after);
  EXPECT_EQ(idle.count("test.registry.hpd.p50"), 0u);
}

TEST(RegistryTest, SnapshotOrderIsLexicographic) {
  // Registration order is deliberately shuffled; the snapshot's iteration
  // order (and therefore every rendered counters panel and artifact block)
  // must be lexicographic regardless.  This pins the documented contract on
  // MetricsSnapshot.
  registry().counter("test.order.zz");
  registry().counter("test.order.aa");
  registry().counter("test.order.mm");
  const MetricsSnapshot snap = registry().snapshot();
  std::vector<std::string> ours;
  for (const auto& [name, value] : snap.counters) {
    if (name.rfind("test.order.", 0) == 0) ours.push_back(name);
  }
  const std::vector<std::string> expected = {
      "test.order.aa", "test.order.mm", "test.order.zz"};
  EXPECT_EQ(ours, expected);
  EXPECT_TRUE(std::is_sorted(ours.begin(), ours.end()));
}

TEST(RegistryTest, InstrumentedHotPathsPopulateKnownCounters) {
  // Run a tiny experiment point with metrics on and check the placement
  // instrumentation fired.
  MetricsEnabledGuard guard(true);
  Counter& probes = registry().counter("placement.probes");
  const std::uint64_t before = probes.value();

  mcs::gen::GenParams params = mcs::exp::default_gen_params();
  params.num_tasks = 20;
  const auto schemes = mcs::partition::paper_schemes(0.7);
  const mcs::exp::RunOptions options{.trials = 4, .seed = 1, .threads = 1};
  (void)mcs::exp::run_point(params, schemes, options, params.nsu);

  EXPECT_GT(probes.value(), before);
}

}  // namespace
}  // namespace mcs::obs
