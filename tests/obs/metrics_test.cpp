#include "mcs/obs/metrics.hpp"

#include <gtest/gtest.h>

#include "mcs/exp/montecarlo.hpp"
#include "mcs/util/thread_pool.hpp"

namespace mcs::obs {
namespace {

TEST(MetricsTest, DisabledInstrumentsRecordNothing) {
  MetricsEnabledGuard guard(false);
  Counter counter;
  counter.add();
  counter.add(100);
  EXPECT_EQ(counter.value(), 0u);

  Timer timer;
  timer.record(1234);
  EXPECT_EQ(timer.count(), 0u);
  EXPECT_EQ(timer.total_ns(), 0u);

  Histogram histogram;
  histogram.record(42);
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.sum(), 0u);
}

TEST(MetricsTest, EnabledCounterCounts) {
  MetricsEnabledGuard guard(true);
  Counter counter;
  counter.add();
  counter.add(9);
  EXPECT_EQ(counter.value(), 10u);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(MetricsTest, GuardRestoresPreviousState) {
  const bool before = metrics_enabled();
  {
    MetricsEnabledGuard outer(true);
    EXPECT_TRUE(metrics_enabled());
    {
      MetricsEnabledGuard inner(false);
      EXPECT_FALSE(metrics_enabled());
    }
    EXPECT_TRUE(metrics_enabled());
  }
  EXPECT_EQ(metrics_enabled(), before);
}

TEST(MetricsTest, CounterIsExactUnderThreadPool) {
  MetricsEnabledGuard guard(true);
  Counter counter;
  constexpr std::size_t kIters = 10000;
  util::parallel_for(kIters, [&](std::size_t i) { counter.add(i % 3 + 1); });
  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < kIters; ++i) expected += i % 3 + 1;
  EXPECT_EQ(counter.value(), expected);
}

TEST(MetricsTest, HistogramBucketsByBitWidth) {
  MetricsEnabledGuard guard(true);
  Histogram histogram;
  histogram.record(0);   // bucket 0
  histogram.record(1);   // bucket 1
  histogram.record(5);   // bit_width(5) = 3
  histogram.record(5);
  EXPECT_EQ(histogram.bucket(0), 1u);
  EXPECT_EQ(histogram.bucket(1), 1u);
  EXPECT_EQ(histogram.bucket(3), 2u);
  EXPECT_EQ(histogram.count(), 4u);
  EXPECT_EQ(histogram.sum(), 11u);
  histogram.reset();
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.sum(), 0u);
}

TEST(MetricsTest, HistogramTracksRunningMax) {
  MetricsEnabledGuard guard(true);
  Histogram histogram;
  EXPECT_EQ(histogram.max(), 0u);
  histogram.record(7);
  histogram.record(3);
  EXPECT_EQ(histogram.max(), 7u);
  histogram.record(100);
  histogram.record(99);
  EXPECT_EQ(histogram.max(), 100u);
  histogram.reset();
  EXPECT_EQ(histogram.max(), 0u);
}

TEST(MetricsTest, HistogramMaxIsExactUnderThreadPool) {
  MetricsEnabledGuard guard(true);
  Histogram histogram;
  constexpr std::size_t kIters = 10000;
  util::parallel_for(kIters, [&](std::size_t i) { histogram.record(i); });
  EXPECT_EQ(histogram.max(), kIters - 1);
  EXPECT_EQ(histogram.count(), kIters);
}

TEST(MetricsTest, ScopedTimerRecordsOnlyWhenEnabled) {
  Timer timer;
  {
    MetricsEnabledGuard guard(false);
    ScopedTimer scoped(timer);
  }
  EXPECT_EQ(timer.count(), 0u);
  {
    MetricsEnabledGuard guard(true);
    ScopedTimer scoped(timer);
  }
  EXPECT_EQ(timer.count(), 1u);
}

TEST(RegistryTest, LookupIsStableByName) {
  Counter& a = registry().counter("test.registry.stable");
  Counter& b = registry().counter("test.registry.stable");
  EXPECT_EQ(&a, &b);
  Timer& t1 = registry().timer("test.registry.timer");
  Timer& t2 = registry().timer("test.registry.timer");
  EXPECT_EQ(&t1, &t2);
  Histogram& h1 = registry().histogram("test.registry.hist");
  Histogram& h2 = registry().histogram("test.registry.hist");
  EXPECT_EQ(&h1, &h2);
}

TEST(RegistryTest, SnapshotAndDeltas) {
  MetricsEnabledGuard guard(true);
  Counter& counter = registry().counter("test.registry.delta");
  const MetricsSnapshot before = registry().snapshot();
  counter.add(7);
  const MetricsSnapshot after = registry().snapshot();

  const auto deltas = counter_deltas(before, after);
  ASSERT_EQ(deltas.count("test.registry.delta"), 1u);
  EXPECT_EQ(deltas.at("test.registry.delta"), 7u);
  // Untouched counters do not appear.
  for (const auto& [name, delta] : deltas) EXPECT_GT(delta, 0u) << name;
}

TEST(RegistryTest, DeltaOfCounterRegisteredAfterBaseline) {
  MetricsEnabledGuard guard(true);
  const MetricsSnapshot before = registry().snapshot();
  registry().counter("test.registry.late").add(3);
  const auto deltas = counter_deltas(before, registry().snapshot());
  ASSERT_EQ(deltas.count("test.registry.late"), 1u);
  EXPECT_EQ(deltas.at("test.registry.late"), 3u);
}

TEST(RegistryTest, InstrumentedHotPathsPopulateKnownCounters) {
  // Run a tiny experiment point with metrics on and check the placement
  // instrumentation fired.
  MetricsEnabledGuard guard(true);
  Counter& probes = registry().counter("placement.probes");
  const std::uint64_t before = probes.value();

  mcs::gen::GenParams params = mcs::exp::default_gen_params();
  params.num_tasks = 20;
  const auto schemes = mcs::partition::paper_schemes(0.7);
  const mcs::exp::RunOptions options{.trials = 4, .seed = 1, .threads = 1};
  (void)mcs::exp::run_point(params, schemes, options, params.nsu);

  EXPECT_GT(probes.value(), before);
}

}  // namespace
}  // namespace mcs::obs
