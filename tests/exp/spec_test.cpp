#include "mcs/exp/spec.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>

#include "mcs/partition/catpa.hpp"
#include "mcs/partition/classic.hpp"
#include "mcs/util/table.hpp"

namespace mcs::exp {
namespace {

// Bitwise equality (NaN-safe) for golden comparisons.
bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void expect_same_welford(const util::Welford& a, const util::Welford& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_TRUE(same_bits(a.mean(), b.mean()));
  EXPECT_TRUE(same_bits(a.m2(), b.m2()));
  EXPECT_TRUE(same_bits(a.raw_min(), b.raw_min()));
  EXPECT_TRUE(same_bits(a.raw_max(), b.raw_max()));
}

void expect_same_results(const SweepResult& a, const SweepResult& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_TRUE(same_bits(a.points[i].x, b.points[i].x));
    ASSERT_EQ(a.points[i].schemes.size(), b.points[i].schemes.size());
    for (std::size_t s = 0; s < a.points[i].schemes.size(); ++s) {
      const SchemeAggregate& sa = a.points[i].schemes[s];
      const SchemeAggregate& sb = b.points[i].schemes[s];
      EXPECT_EQ(sa.scheme, sb.scheme);
      EXPECT_EQ(sa.trials, sb.trials);
      EXPECT_EQ(sa.schedulable, sb.schedulable);
      expect_same_welford(sa.u_sys, sb.u_sys);
      expect_same_welford(sa.u_avg, sb.u_avg);
      expect_same_welford(sa.imbalance, sb.imbalance);
      expect_same_welford(sa.probes, sb.probes);
    }
  }
}

RunOptions small_run() { return {.trials = 40, .seed = 1, .threads = 2}; }

TEST(SpecRegistryTest, BuiltinSpecsAreComplete) {
  const std::vector<std::string> expected{"fig1", "fig2", "fig3", "fig4",
                                          "fig5", "a1",   "a2",   "a3",
                                          "a4",   "h1",   "h2"};
  ASSERT_EQ(builtin_specs().size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(builtin_specs()[i].name, expected[i]);
  }
}

TEST(SpecRegistryTest, FindSpecIsCaseInsensitive) {
  EXPECT_NE(find_spec("fig1"), nullptr);
  EXPECT_NE(find_spec("FIG1"), nullptr);
  EXPECT_NE(find_spec("A3"), nullptr);
  EXPECT_EQ(find_spec("fig9"), nullptr);
  EXPECT_EQ(find_spec(""), nullptr);
}

TEST(SpecRegistryTest, SpecNamesListsEveryBuiltin) {
  const std::string names = spec_names();
  for (const SweepSpec& spec : builtin_specs()) {
    EXPECT_NE(names.find(spec.name), std::string::npos) << spec.name;
  }
}

// The spec-driven path must reproduce the legacy figure builders
// bit-for-bit: same seeds, same schemes, same aggregates.
TEST(SpecGoldenParityTest, Fig1MatchesLegacyBuilder) {
  const SweepResult legacy =
      run_sweep(make_fig1_nsu(default_gen_params(), 0.7), small_run());
  const SweepResult via_spec =
      run_sweep(to_sweep(*find_spec("fig1"), 0.7), small_run());
  expect_same_results(legacy, via_spec);
}

TEST(SpecGoldenParityTest, Fig3MatchesLegacyBuilder) {
  // fig3 shares workloads across points and varies alpha per point.
  const SweepResult legacy =
      run_sweep(make_fig3_alpha(default_gen_params()), small_run());
  const SweepResult via_spec =
      run_sweep(to_sweep(*find_spec("fig3"), 0.7), small_run());
  expect_same_results(legacy, via_spec);
}

TEST(SpecGoldenParityTest, Fig5MatchesLegacyBuilder) {
  const SweepResult legacy =
      run_sweep(make_fig5_levels(default_gen_params(), 0.7), small_run());
  const SweepResult via_spec =
      run_sweep(to_sweep(*find_spec("fig5"), 0.7), small_run());
  expect_same_results(legacy, via_spec);
}

// The a4 spec strings must reproduce the original ablation line-up
// (explicit ClassicPartitioner configurations) exactly.
TEST(SpecGoldenParityTest, A4MatchesExplicitLineup) {
  using namespace mcs::partition;
  Sweep legacy = to_sweep(*find_spec("a4"), 0.7);
  for (SweepPoint& pt : legacy.points) {
    pt.make_schemes = [] {
      PartitionerList out;
      out.push_back(std::make_unique<ClassicPartitioner>(
          FitRule::kFirst, TestStrength::kBasicOnly));
      out.push_back(std::make_unique<ClassicPartitioner>(
          FitRule::kFirst, TestStrength::kBasicThenImproved));
      out.push_back(std::make_unique<ClassicPartitioner>(
          FitRule::kWorst, TestStrength::kBasicOnly));
      out.push_back(std::make_unique<ClassicPartitioner>(
          FitRule::kWorst, TestStrength::kBasicThenImproved));
      return out;
    };
  }
  expect_same_results(run_sweep(legacy, small_run()),
                      run_sweep(to_sweep(*find_spec("a4"), 0.7), small_run()));
}

TEST(SpecGoldenParityTest, A1MatchesExplicitLineup) {
  using namespace mcs::partition;
  Sweep legacy = to_sweep(*find_spec("a1"), 0.7);
  for (SweepPoint& pt : legacy.points) {
    pt.make_schemes = [] {
      PartitionerList out;
      out.push_back(std::make_unique<CaTpaPartitioner>(
          CaTpaOptions{.use_imbalance_control = false}));
      for (double a : {0.1, 0.3, 0.5, 0.7, 0.9}) {
        out.push_back(std::make_unique<CaTpaPartitioner>(CaTpaOptions{
            .alpha = a,
            .display_name =
                "CA-TPA(a=" + util::format_double(a, 1) + ")"}));
      }
      return out;
    };
  }
  expect_same_results(run_sweep(legacy, small_run()),
                      run_sweep(to_sweep(*find_spec("a1"), 0.7), small_run()));
}

TEST(SchemeSpecTest, ParsesCaTpaOptions) {
  using namespace mcs::partition;
  const auto scheme = make_scheme_spec("CA-TPA(a=0.5,first,repair)", 0.7);
  const auto* catpa = dynamic_cast<const CaTpaPartitioner*>(scheme.get());
  ASSERT_NE(catpa, nullptr);
  EXPECT_DOUBLE_EQ(catpa->options().alpha, 0.5);
  EXPECT_EQ(catpa->options().probe_policy,
            analysis::ProbePolicy::kFirstFeasible);
  EXPECT_TRUE(catpa->options().enable_repair);
  EXPECT_EQ(scheme->name(), "CA-TPA(a=0.5,first,repair)");
}

TEST(SchemeSpecTest, Eq4VariantsAndPassThrough) {
  using namespace mcs::partition;
  EXPECT_EQ(make_scheme_spec("FFD/eq4")->name(), "FFD/eq4");
  EXPECT_EQ(make_scheme_spec("WFD/eq4")->name(), "WFD/eq4");
  EXPECT_EQ(make_scheme_spec("CA-TPA/noBal")->name(), "CA-TPA/noBal");
  EXPECT_EQ(make_scheme_spec("Hybrid")->name(), "Hybrid");
}

TEST(SchemeSpecTest, RejectsUnknownSpecs) {
  using namespace mcs::partition;
  EXPECT_THROW((void)make_scheme_spec("CA-TPA(bogus)"), std::invalid_argument);
  EXPECT_THROW((void)make_scheme_spec("CA-TPA(a=zzz)"), std::invalid_argument);
  EXPECT_THROW((void)make_scheme_spec("NotAScheme"), std::invalid_argument);
}

TEST(SpecFingerprintTest, StableAndSensitive) {
  const SweepSpec& fig1 = *find_spec("fig1");
  const std::string base = spec_fingerprint(fig1, 2000, 1, 0.7);
  EXPECT_EQ(base.size(), 16u);
  EXPECT_EQ(base, spec_fingerprint(fig1, 2000, 1, 0.7));
  EXPECT_NE(base, spec_fingerprint(fig1, 2001, 1, 0.7));
  EXPECT_NE(base, spec_fingerprint(fig1, 2000, 2, 0.7));
  EXPECT_NE(base, spec_fingerprint(fig1, 2000, 1, 0.9));
  EXPECT_NE(base, spec_fingerprint(*find_spec("fig2"), 2000, 1, 0.7));
}

}  // namespace
}  // namespace mcs::exp
