// Edge cases of the experiment harness and engine configuration knobs that
// the figure benches exercise only implicitly.
#include <gtest/gtest.h>

#include "mcs/mcs.hpp"

namespace mcs {
namespace {

TEST(HarnessEdgeTest, ZeroTrialsYieldEmptyAggregates) {
  const auto schemes = partition::paper_schemes();
  const exp::PointResult pt = exp::run_point(
      exp::default_gen_params(), schemes, exp::RunOptions{.trials = 0}, 0.0);
  for (const exp::SchemeAggregate& agg : pt.schemes) {
    EXPECT_EQ(agg.trials, 0u);
    EXPECT_EQ(agg.schedulable, 0u);
    EXPECT_DOUBLE_EQ(agg.ratio(), 0.0);
  }
}

TEST(HarnessEdgeTest, SingleTrialStillAggregates) {
  const auto schemes = partition::paper_schemes();
  gen::GenParams params = exp::default_gen_params();
  params.num_tasks = 20;
  params.nsu = 0.3;
  const exp::PointResult pt =
      exp::run_point(params, schemes, exp::RunOptions{.trials = 1}, 0.0);
  for (const exp::SchemeAggregate& agg : pt.schemes) {
    EXPECT_EQ(agg.trials, 1u);
    EXPECT_LE(agg.schedulable, 1u);
  }
}

TEST(HarnessEdgeTest, ProbeCountsAreAggregated) {
  const auto schemes = partition::paper_schemes();
  gen::GenParams params = exp::default_gen_params();
  params.num_tasks = 20;
  params.nsu = 0.3;
  const exp::PointResult pt =
      exp::run_point(params, schemes, exp::RunOptions{.trials = 10}, 0.0);
  for (const exp::SchemeAggregate& agg : pt.schemes) {
    EXPECT_EQ(agg.probes.count(), 10u);
    EXPECT_GT(agg.probes.mean(), 0.0) << agg.scheme;
  }
}

TEST(EngineConfigTest, MissToleranceAbsorbsBoundaryCompletions) {
  // A task finishing exactly at its deadline (u = 1.0 alone) is not a miss.
  std::vector<McTask> tasks;
  tasks.emplace_back(0, std::vector<double>{10.0}, 10.0);
  const TaskSet ts(std::move(tasks), 1);
  Partition p(ts, 1);
  p.assign(0, 0);
  const sim::FixedLevelScenario nominal(1);
  const sim::SimResult r =
      simulate(p, nominal, sim::SimConfig{.horizon = 100.0});
  EXPECT_FALSE(r.missed_deadline());
  EXPECT_EQ(r.cores[0].jobs_completed, 9u);  // the 10th ends exactly at 100
}

TEST(EngineConfigTest, StopOnMissHaltsOnlyTheAffectedCore) {
  std::vector<McTask> tasks;
  tasks.emplace_back(0, std::vector<double>{6.0}, 10.0);  // core 0 (overload)
  tasks.emplace_back(1, std::vector<double>{6.0}, 10.0);  // core 0
  tasks.emplace_back(2, std::vector<double>{5.0}, 10.0);  // core 1 (fine)
  const TaskSet ts(std::move(tasks), 1);
  Partition p(ts, 2);
  p.assign(0, 0);
  p.assign(1, 0);
  p.assign(2, 1);
  const sim::FixedLevelScenario nominal(1);
  const sim::SimResult r =
      simulate(p, nominal, sim::SimConfig{.horizon = 100.0});
  EXPECT_TRUE(r.missed_deadline());
  EXPECT_EQ(r.cores[1].jobs_completed, 10u);  // core 1 ran to the horizon
}

TEST(EngineConfigTest, StickyModeNeverReturnsToLevelOne) {
  std::vector<McTask> tasks;
  tasks.emplace_back(0, std::vector<double>{2.0, 6.0}, 10.0);
  tasks.emplace_back(1, std::vector<double>{1.0}, 10.0);
  const TaskSet ts(std::move(tasks), 2);
  Partition p(ts, 1);
  p.assign(0, 0);
  p.assign(1, 0);
  // Only the first HI job overruns; with idle reset the core would recover,
  // without it the LO task is suppressed for the rest of the run.
  class FirstJobOverruns final : public sim::ExecutionScenario {
   public:
    double execution_time(const McTask& task,
                          std::uint64_t job) const override {
      if (task.level() == 2 && job == 0) return task.wcet(2);
      return task.wcet(1);
    }
  };
  const FirstJobOverruns scenario;
  sim::SimConfig config{.horizon = 100.0};
  config.idle_reset = false;
  const sim::SimResult sticky = simulate(p, scenario, config);
  EXPECT_EQ(sticky.cores[0].idle_resets, 0u);
  EXPECT_EQ(sticky.tasks[1].completed, 0u);  // LO dropped at t=2, then
  EXPECT_EQ(sticky.tasks[1].suppressed, 9u);  // suppressed forever
  const sim::SimResult resetting =
      simulate(p, scenario, sim::SimConfig{.horizon = 100.0});
  EXPECT_GT(resetting.tasks[1].completed, 5u);
}

}  // namespace
}  // namespace mcs
