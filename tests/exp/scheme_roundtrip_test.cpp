// Property test over the whole scheme grammar: every spec string in
// partition::registered_scheme_specs() must survive the full pipeline —
// parse into a partitioner, run inside a sweep, and come back out of the
// versioned artifact under exactly its registered name, in line-up order.
// This is what lets ALGORITHMS.md, `mcs_report --list-schemes`, and the
// artifact provenance all key off the same strings.
#include <gtest/gtest.h>

#include <filesystem>

#include "mcs/exp/orchestrator.hpp"
#include "mcs/exp/spec.hpp"
#include "mcs/partition/registry.hpp"

namespace mcs::exp {
namespace {

namespace fs = std::filesystem;

class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : path_(fs::temp_directory_path() / ("mcs_scheme_roundtrip_" + name)) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() { fs::remove_all(path_); }
  [[nodiscard]] std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

// A deliberately tiny sweep: the property under test is naming fidelity,
// not statistics.  K = 2 so the GE-gated schemes are runnable.
SweepSpec all_schemes_spec() {
  SweepSpec spec;
  spec.name = "roundtrip";
  spec.title = "scheme grammar round-trip";
  spec.x_label = "NSU";
  spec.axis = Axis::kNsu;
  spec.values = {0.5, 0.7};
  spec.base.num_levels = 2;
  spec.base.num_cores = 2;
  spec.base.num_tasks = 10;
  spec.schemes = partition::registered_scheme_specs();
  return spec;
}

TEST(SchemeRoundTripTest, EveryRegisteredSpecSurvivesRunAndArtifact) {
  const SweepSpec spec = all_schemes_spec();
  const std::vector<std::string>& specs = partition::registered_scheme_specs();
  ASSERT_EQ(spec.schemes, specs);

  ScratchDir dir("run");
  SpecRunOptions options;
  options.trials = 5;
  options.seed = 1;
  options.threads = 1;
  options.artifacts_dir = dir.str();
  options.source = "roundtrip-test";
  const SpecRunResult run = run_spec(spec, options);
  ASSERT_TRUE(run.complete);
  ASSERT_FALSE(run.json_path.empty());

  const std::optional<Artifact> artifact = load_artifact(run.json_path);
  ASSERT_TRUE(artifact.has_value());
  EXPECT_EQ(artifact->spec, "roundtrip");
  EXPECT_EQ(artifact->source, "roundtrip-test");
  EXPECT_EQ(artifact->fingerprint, run.fingerprint);
  ASSERT_EQ(artifact->points.size(), spec.values.size());

  // Naming fidelity: each point reports one aggregate per registered spec,
  // named by the spec string itself, in line-up order.
  for (const PointCheckpoint& point : artifact->points) {
    ASSERT_EQ(point.result.schemes.size(), specs.size());
    for (std::size_t s = 0; s < specs.size(); ++s) {
      EXPECT_EQ(point.result.schemes[s].scheme, specs[s]);
      EXPECT_EQ(point.result.schemes[s].trials, options.trials);
    }
  }

  // And the renderable view preserves the same names, so docs panels label
  // their columns with registry strings.
  const SweepResult rendered = artifact_to_sweep_result(*artifact);
  ASSERT_EQ(rendered.points.size(), spec.values.size());
  for (const PointResult& point : rendered.points) {
    ASSERT_EQ(point.schemes.size(), specs.size());
    for (std::size_t s = 0; s < specs.size(); ++s) {
      EXPECT_EQ(point.schemes[s].scheme, specs[s]);
    }
  }
}

}  // namespace
}  // namespace mcs::exp
