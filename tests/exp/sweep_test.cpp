#include "mcs/exp/sweep.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "mcs/exp/report.hpp"

namespace mcs::exp {
namespace {

TEST(SweepBuilderTest, Fig1PointsFollowNsuRange) {
  const Sweep s = make_fig1_nsu(default_gen_params(), 0.7);
  ASSERT_EQ(s.points.size(), kNsuRange.size());
  for (std::size_t i = 0; i < s.points.size(); ++i) {
    EXPECT_DOUBLE_EQ(s.points[i].x, kNsuRange[i]);
    EXPECT_DOUBLE_EQ(s.points[i].params.nsu, kNsuRange[i]);
    EXPECT_EQ(s.points[i].params.num_cores, kDefaultCores);
  }
  EXPECT_EQ(s.x_label, "NSU");
}

TEST(SweepBuilderTest, Fig2VariesIfcOnly) {
  const Sweep s = make_fig2_ifc(default_gen_params(), 0.7);
  for (std::size_t i = 0; i < s.points.size(); ++i) {
    EXPECT_DOUBLE_EQ(s.points[i].params.ifc, kIfcRange[i]);
    EXPECT_DOUBLE_EQ(s.points[i].params.nsu, kDefaultNsu);
  }
}

TEST(SweepBuilderTest, Fig3BuildsSchemesWithSweptAlpha) {
  const Sweep s = make_fig3_alpha(default_gen_params());
  ASSERT_EQ(s.points.size(), kAlphaRange.size());
  // The scheme factory must exist and produce the 5-scheme line-up.
  const auto schemes = s.points.front().make_schemes();
  EXPECT_EQ(schemes.size(), 5u);
  EXPECT_EQ(schemes[4]->name(), "CA-TPA");
}

TEST(SweepBuilderTest, Fig4VariesCores) {
  const Sweep s = make_fig4_cores(default_gen_params(), 0.7);
  for (std::size_t i = 0; i < s.points.size(); ++i) {
    EXPECT_EQ(s.points[i].params.num_cores, kCoreRange[i]);
  }
}

TEST(SweepBuilderTest, Fig5VariesLevels) {
  const Sweep s = make_fig5_levels(default_gen_params(), 0.7);
  for (std::size_t i = 0; i < s.points.size(); ++i) {
    EXPECT_EQ(s.points[i].params.num_levels, kLevelRange[i]);
  }
}

Sweep tiny_sweep() {
  gen::GenParams params = default_gen_params();
  params.num_tasks = 20;
  params.num_cores = 2;
  Sweep s = make_fig1_nsu(params, 0.7);
  s.points.resize(2);
  return s;
}

TEST(SweepRunTest, RunsEveryPointAndReportsProgress) {
  std::vector<std::size_t> progress;
  const SweepResult r =
      run_sweep(tiny_sweep(), RunOptions{.trials = 20},
                [&](std::size_t done, std::size_t total) {
                  progress.push_back(done);
                  EXPECT_EQ(total, 2u);
                });
  EXPECT_EQ(r.points.size(), 2u);
  EXPECT_EQ(progress, (std::vector<std::size_t>{1, 2}));
  for (const PointResult& pt : r.points) {
    EXPECT_EQ(pt.schemes.size(), 5u);
    EXPECT_EQ(pt.schemes.front().trials, 20u);
  }
}

TEST(SweepRunTest, PointsUseIndependentSeeds) {
  // Two points with identical parameters must still see different workloads;
  // the mean U_sys over schedulable sets is continuous, so identical values
  // would imply identical draws.
  Sweep s = tiny_sweep();
  s.points[1] = s.points[0];
  const SweepResult r = run_sweep(s, RunOptions{.trials = 60, .seed = 4});
  bool any_diff = false;
  for (std::size_t i = 0; i < r.points[0].schemes.size(); ++i) {
    if (r.points[0].schemes[i].schedulable !=
            r.points[1].schemes[i].schedulable ||
        std::abs(r.points[0].schemes[i].u_sys.mean() -
                 r.points[1].schemes[i].u_sys.mean()) > 1e-12) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(SweepRunTest, Fig3SharesWorkloadsSoBaselinesStayFlat) {
  gen::GenParams base = default_gen_params();
  base.num_tasks = 25;
  base.num_cores = 2;
  Sweep s = make_fig3_alpha(base);
  ASSERT_TRUE(s.share_workloads_across_points);
  s.points.resize(2);
  const SweepResult r = run_sweep(s, RunOptions{.trials = 50, .seed = 6});
  // Scheme index 1 is FFD, which ignores alpha: with common random numbers
  // its aggregates must be bit-identical across the sweep.
  EXPECT_EQ(r.points[0].schemes[1].schedulable,
            r.points[1].schemes[1].schedulable);
  EXPECT_DOUBLE_EQ(r.points[0].schemes[1].u_sys.mean(),
                   r.points[1].schemes[1].u_sys.mean());
}

TEST(ReportTest, PrintFigureContainsAllPanels) {
  const SweepResult r = run_sweep(tiny_sweep(), RunOptions{.trials = 10});
  std::ostringstream os;
  print_figure(os, r, "Figure 1");
  const std::string out = os.str();
  EXPECT_NE(out.find("=== Figure 1 ==="), std::string::npos);
  EXPECT_NE(out.find("(a) schedulability ratio"), std::string::npos);
  EXPECT_NE(out.find("(b) system utilization U_sys"), std::string::npos);
  EXPECT_NE(out.find("(c) average core utilization U_avg"), std::string::npos);
  EXPECT_NE(out.find("(d) workload imbalance factor Lambda"),
            std::string::npos);
  EXPECT_NE(out.find("CA-TPA"), std::string::npos);
  EXPECT_NE(out.find("WFD"), std::string::npos);
}

TEST(ReportTest, RatioCi95) {
  EXPECT_DOUBLE_EQ(ratio_ci95(0.5, 0), 0.0);
  EXPECT_NEAR(ratio_ci95(0.5, 100), 1.96 * 0.05, 1e-12);
  EXPECT_DOUBLE_EQ(ratio_ci95(0.0, 100), 0.0);
  EXPECT_DOUBLE_EQ(ratio_ci95(1.0, 100), 0.0);
  EXPECT_GT(ratio_ci95(0.5, 100), ratio_ci95(0.5, 400));
}

TEST(ReportTest, SummaryListsEveryScheme) {
  const SweepResult r = run_sweep(tiny_sweep(), RunOptions{.trials = 10});
  std::ostringstream os;
  print_summary(os, r);
  const std::string out = os.str();
  EXPECT_NE(out.find("weighted schedulability"), std::string::npos);
  for (const char* name : {"WFD", "FFD", "BFD", "Hybrid", "CA-TPA"}) {
    EXPECT_NE(out.find(name), std::string::npos) << name;
  }
}

TEST(ReportTest, CsvHasOneRowPerPointScheme) {
  const SweepResult r = run_sweep(tiny_sweep(), RunOptions{.trials = 10});
  const std::string path = ::testing::TempDir() + "mcs_sweep_test.csv";
  write_csv(path, r);
  std::ifstream in(path);
  std::string line;
  std::size_t rows = 0;
  while (std::getline(in, line)) ++rows;
  std::remove(path.c_str());
  EXPECT_EQ(rows, 1u + 2u * 5u);  // header + points x schemes
}

}  // namespace
}  // namespace mcs::exp
