#include "mcs/exp/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>

#include "mcs/exp/orchestrator.hpp"

namespace mcs::exp {
namespace {

namespace fs = std::filesystem;

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

/// Fresh scratch directory per test, removed on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : path_(fs::temp_directory_path() / ("mcs_checkpoint_test_" + name)) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() { fs::remove_all(path_); }
  [[nodiscard]] std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

TEST(HexDoubleTest, RoundTripsExactly) {
  const double values[] = {0.0,
                           -0.0,
                           1.0,
                           -1.0,
                           0.1,
                           1.0 / 3.0,
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::max()};
  for (const double v : values) {
    const std::string hex = hex_double(v);
    EXPECT_EQ(hex.size(), 17u);
    EXPECT_EQ(hex[0], 'x');
    EXPECT_TRUE(same_bits(unhex_double(hex), v)) << hex;
  }
}

TEST(HexDoubleTest, RejectsMalformedInput) {
  EXPECT_THROW((void)unhex_double(""), std::runtime_error);
  EXPECT_THROW((void)unhex_double("3ff0000000000000"), std::runtime_error);
  EXPECT_THROW((void)unhex_double("xzff000000000000"), std::runtime_error);
  EXPECT_THROW((void)unhex_double("x3ff"), std::runtime_error);
}

TEST(WelfordJsonTest, RoundTripsExactly) {
  util::Welford w;
  for (int i = 0; i < 37; ++i) w.add(std::sin(i) * 7.3);
  const util::Welford back = welford_from_json(welford_to_json(w));
  EXPECT_EQ(back.count(), w.count());
  EXPECT_TRUE(same_bits(back.mean(), w.mean()));
  EXPECT_TRUE(same_bits(back.m2(), w.m2()));
  EXPECT_TRUE(same_bits(back.raw_min(), w.raw_min()));
  EXPECT_TRUE(same_bits(back.raw_max(), w.raw_max()));
}

TEST(WelfordJsonTest, EmptyAccumulatorRoundTrips) {
  const util::Welford back = welford_from_json(welford_to_json({}));
  EXPECT_EQ(back.count(), 0u);
  EXPECT_TRUE(std::isinf(back.raw_min()));
  EXPECT_TRUE(std::isinf(back.raw_max()));
  // Adding after restore behaves like a fresh accumulator.
  util::Welford fresh = back;
  fresh.add(2.0);
  EXPECT_TRUE(same_bits(fresh.min(), 2.0));
}

TEST(PointCheckpointTest, JsonRoundTrip) {
  PointCheckpoint point;
  point.index = 3;
  point.result.x = 0.6;
  SchemeAggregate agg;
  agg.scheme = "CA-TPA";
  agg.trials = 100;
  agg.schedulable = 37;
  agg.u_sys.add(0.91);
  agg.u_sys.add(0.97);
  point.result.schemes.push_back(agg);
  point.counters["placement.probes"] = 12345;

  const PointCheckpoint back = point_from_json(point_to_json(point));
  EXPECT_EQ(back.index, 3u);
  EXPECT_TRUE(same_bits(back.result.x, 0.6));
  ASSERT_EQ(back.result.schemes.size(), 1u);
  EXPECT_EQ(back.result.schemes[0].scheme, "CA-TPA");
  EXPECT_EQ(back.result.schemes[0].schedulable, 37u);
  EXPECT_TRUE(
      same_bits(back.result.schemes[0].u_sys.mean(), agg.u_sys.mean()));
  EXPECT_EQ(back.counters.at("placement.probes"), 12345u);
}

SpecRunOptions tiny_options(const std::string& dir) {
  SpecRunOptions options;
  options.trials = 20;
  options.seed = 1;
  options.threads = 2;
  options.artifacts_dir = dir;
  return options;
}

TEST(ResumeTest, InterruptedSweepResumesBitIdentically) {
  const SweepSpec& spec = *find_spec("fig1");
  ScratchDir full_dir("full");
  ScratchDir resumed_dir("resumed");

  // Uninterrupted reference run.
  const SpecRunResult full = run_spec(spec, tiny_options(full_dir.str()));
  ASSERT_TRUE(full.complete);

  // Kill the sweep after 2 of 5 points...
  SpecRunOptions interrupted = tiny_options(resumed_dir.str());
  interrupted.stop_after_points = 2;
  const SpecRunResult partial = run_spec(spec, interrupted);
  EXPECT_FALSE(partial.complete);
  EXPECT_EQ(partial.result.points.size(), 2u);
  EXPECT_TRUE(fs::exists(partial.checkpoint_path));
  EXPECT_TRUE(partial.json_path.empty());

  // ...then resume to completion.
  const SpecRunResult resumed = run_spec(spec, tiny_options(resumed_dir.str()));
  ASSERT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.resumed_points, 2u);

  // Artifacts are byte-identical to the uninterrupted run's.
  EXPECT_EQ(read_file(full.json_path), read_file(resumed.json_path));
  EXPECT_EQ(read_file(full.csv_path), read_file(resumed.csv_path));
  // The checkpoint is removed once artifacts exist.
  EXPECT_FALSE(fs::exists(resumed.checkpoint_path));
}

TEST(ResumeTest, TruncatedTrailingLineIsTolerated) {
  const SweepSpec& spec = *find_spec("fig1");
  ScratchDir dir("truncated");

  SpecRunOptions interrupted = tiny_options(dir.str());
  interrupted.stop_after_points = 2;
  const SpecRunResult partial = run_spec(spec, interrupted);
  ASSERT_FALSE(partial.complete);

  // Simulate a kill mid-write: a half-flushed point record.
  {
    std::ofstream out(partial.checkpoint_path, std::ios::app);
    out << "{\"kind\":\"point\",\"index\":2,\"x\":\"x3fe33333";
  }

  const SpecRunResult resumed = run_spec(spec, tiny_options(dir.str()));
  ASSERT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.resumed_points, 2u);  // the torn point reran

  ScratchDir full_dir("truncated_ref");
  const SpecRunResult full = run_spec(spec, tiny_options(full_dir.str()));
  EXPECT_EQ(read_file(full.json_path), read_file(resumed.json_path));
}

TEST(ResumeTest, FingerprintMismatchDiscardsCheckpoint) {
  const SweepSpec& spec = *find_spec("fig1");
  ScratchDir dir("mismatch");

  SpecRunOptions interrupted = tiny_options(dir.str());
  interrupted.stop_after_points = 2;
  ASSERT_FALSE(run_spec(spec, interrupted).complete);

  // Different seed -> different fingerprint -> checkpoint must not be used.
  SpecRunOptions other_seed = tiny_options(dir.str());
  other_seed.seed = 99;
  const SpecRunResult fresh = run_spec(spec, other_seed);
  EXPECT_EQ(fresh.resumed_points, 0u);
  ASSERT_TRUE(fresh.complete);
}

TEST(ResumeTest, NoResumeFlagStartsFresh) {
  const SweepSpec& spec = *find_spec("fig1");
  ScratchDir dir("noresume");

  SpecRunOptions interrupted = tiny_options(dir.str());
  interrupted.stop_after_points = 2;
  ASSERT_FALSE(run_spec(spec, interrupted).complete);

  SpecRunOptions no_resume = tiny_options(dir.str());
  no_resume.resume = false;
  const SpecRunResult fresh = run_spec(spec, no_resume);
  EXPECT_EQ(fresh.resumed_points, 0u);
  EXPECT_TRUE(fresh.complete);
}

TEST(ResumeTest, KeepCheckpointOptionPreservesFile) {
  const SweepSpec& spec = *find_spec("fig1");
  ScratchDir dir("keep");
  SpecRunOptions options = tiny_options(dir.str());
  options.keep_checkpoint = true;
  const SpecRunResult run = run_spec(spec, options);
  ASSERT_TRUE(run.complete);
  EXPECT_TRUE(fs::exists(run.checkpoint_path));

  // A rerun resumes every point and rewrites identical artifacts.
  const SpecRunResult rerun = run_spec(spec, options);
  EXPECT_EQ(rerun.resumed_points, run.result.points.size());
  EXPECT_EQ(read_file(run.json_path), read_file(rerun.json_path));
}

TEST(ResumeTest, ThreadCountDoesNotChangeArtifacts) {
  const SweepSpec& spec = *find_spec("fig3");  // shared-workload path
  ScratchDir one("threads1");
  ScratchDir many("threads4");
  SpecRunOptions opt1 = tiny_options(one.str());
  opt1.threads = 1;
  SpecRunOptions opt4 = tiny_options(many.str());
  opt4.threads = 4;
  const SpecRunResult r1 = run_spec(spec, opt1);
  const SpecRunResult r4 = run_spec(spec, opt4);
  ASSERT_TRUE(r1.complete);
  ASSERT_TRUE(r4.complete);
  EXPECT_EQ(read_file(r1.json_path), read_file(r4.json_path));
}

TEST(ArtifactTest, LoadRoundTripsProvenanceAndPoints) {
  const SweepSpec& spec = *find_spec("a3");
  ScratchDir dir("artifact");
  SpecRunOptions options = tiny_options(dir.str());
  options.source = "deadbeef";
  const SpecRunResult run = run_spec(spec, options);
  ASSERT_TRUE(run.complete);

  const std::optional<Artifact> artifact = load_artifact(run.json_path);
  ASSERT_TRUE(artifact.has_value());
  EXPECT_EQ(artifact->spec, "a3");
  EXPECT_EQ(artifact->trials, 20u);
  EXPECT_EQ(artifact->seed, 1u);
  EXPECT_EQ(artifact->source, "deadbeef");
  EXPECT_EQ(artifact->fingerprint, run.fingerprint);
  ASSERT_EQ(artifact->points.size(), run.result.points.size());
  for (std::size_t i = 0; i < artifact->points.size(); ++i) {
    EXPECT_TRUE(
        same_bits(artifact->points[i].result.x, run.result.points[i].x));
    ASSERT_EQ(artifact->points[i].result.schemes.size(),
              run.result.points[i].schemes.size());
    for (std::size_t s = 0; s < artifact->points[i].result.schemes.size();
         ++s) {
      EXPECT_TRUE(same_bits(artifact->points[i].result.schemes[s].u_sys.m2(),
                            run.result.points[i].schemes[s].u_sys.m2()));
    }
  }

  const SweepResult rendered = artifact_to_sweep_result(*artifact);
  EXPECT_EQ(rendered.sweep.name, "a3");
  EXPECT_EQ(rendered.points.size(), run.result.points.size());

  EXPECT_FALSE(load_artifact(dir.str() + "/nope.json").has_value());
}

}  // namespace
}  // namespace mcs::exp
