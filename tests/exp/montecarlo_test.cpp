#include "mcs/exp/montecarlo.hpp"

#include <gtest/gtest.h>

namespace mcs::exp {
namespace {

gen::GenParams small_params() {
  gen::GenParams p;
  p.num_cores = 4;
  p.num_levels = 3;
  p.nsu = 0.6;
  p.num_tasks = 30;
  return p;
}

TEST(MonteCarloTest, TrialCountsAddUp) {
  const auto schemes = partition::paper_schemes();
  const PointResult pt =
      run_point(small_params(), schemes, RunOptions{.trials = 100}, 0.6);
  ASSERT_EQ(pt.schemes.size(), 5u);
  for (const SchemeAggregate& agg : pt.schemes) {
    EXPECT_EQ(agg.trials, 100u);
    EXPECT_LE(agg.schedulable, agg.trials);
    EXPECT_GE(agg.ratio(), 0.0);
    EXPECT_LE(agg.ratio(), 1.0);
    EXPECT_EQ(agg.u_sys.count(), agg.schedulable);
  }
  EXPECT_DOUBLE_EQ(pt.x, 0.6);
}

TEST(MonteCarloTest, SchemeNamesPreserveOrder) {
  const auto schemes = partition::paper_schemes();
  const PointResult pt =
      run_point(small_params(), schemes, RunOptions{.trials = 10}, 0.0);
  EXPECT_EQ(pt.schemes[0].scheme, "WFD");
  EXPECT_EQ(pt.schemes[1].scheme, "FFD");
  EXPECT_EQ(pt.schemes[2].scheme, "BFD");
  EXPECT_EQ(pt.schemes[3].scheme, "Hybrid");
  EXPECT_EQ(pt.schemes[4].scheme, "CA-TPA");
}

TEST(MonteCarloTest, DeterministicAcrossThreadCounts) {
  const auto schemes = partition::paper_schemes();
  const PointResult a = run_point(
      small_params(), schemes, RunOptions{.trials = 200, .seed = 9, .threads = 1},
      0.0);
  const PointResult b = run_point(
      small_params(), schemes, RunOptions{.trials = 200, .seed = 9, .threads = 3},
      0.0);
  // Bit-exact, not merely close: per-chunk Welford partials are merged in
  // chunk-index order after the join, so the thread count cannot perturb a
  // single bit.  The parallel sweep executor (svc::) and the --jobs N
  // artifact byte-identity guarantee are built on this.
  for (std::size_t s = 0; s < a.schemes.size(); ++s) {
    EXPECT_EQ(a.schemes[s].schedulable, b.schemes[s].schedulable);
    EXPECT_EQ(a.schemes[s].trials, b.schemes[s].trials);
    EXPECT_EQ(a.schemes[s].u_sys.count(), b.schemes[s].u_sys.count());
    EXPECT_EQ(a.schemes[s].u_sys.mean(), b.schemes[s].u_sys.mean());
    EXPECT_EQ(a.schemes[s].u_sys.m2(), b.schemes[s].u_sys.m2());
    EXPECT_EQ(a.schemes[s].imbalance.mean(), b.schemes[s].imbalance.mean());
    EXPECT_EQ(a.schemes[s].imbalance.m2(), b.schemes[s].imbalance.m2());
    EXPECT_EQ(a.schemes[s].probes.mean(), b.schemes[s].probes.mean());
  }
}

TEST(MonteCarloTest, DifferentSeedsGiveDifferentWorkloads) {
  const auto schemes = partition::paper_schemes();
  const PointResult a = run_point(small_params(), schemes,
                                  RunOptions{.trials = 150, .seed = 1}, 0.0);
  const PointResult b = run_point(small_params(), schemes,
                                  RunOptions{.trials = 150, .seed = 2}, 0.0);
  bool any_diff = false;
  for (std::size_t s = 0; s < a.schemes.size(); ++s) {
    if (a.schemes[s].schedulable != b.schemes[s].schedulable) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

// The paper's headline claim at a statistically robust scale: CA-TPA's
// schedulability ratio beats every baseline at moderate-to-high load.
TEST(MonteCarloTest, CaTpaDominatesBaselinesAtHighLoad) {
  gen::GenParams params = small_params();
  params.num_cores = 8;
  params.num_levels = 4;
  params.nsu = 0.65;
  params.num_tasks = 0;  // paper's N ~ U{40..200}
  const auto schemes = partition::paper_schemes(0.7);
  const PointResult pt =
      run_point(params, schemes, RunOptions{.trials = 400, .seed = 3}, 0.65);
  const SchemeAggregate& catpa = pt.schemes[4];
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_GE(catpa.ratio(), pt.schemes[s].ratio())
        << "CA-TPA lost to " << pt.schemes[s].scheme;
  }
  // WFD is the weakest packer in the paper's experiments.
  EXPECT_LT(pt.schemes[0].ratio(), catpa.ratio());
}

}  // namespace
}  // namespace mcs::exp
