#include "mcs/exp/mdreport.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mcs::exp {
namespace {

Artifact tiny_artifact() {
  Artifact artifact;
  artifact.spec = "fig1";
  artifact.title = "Figure 1 - varying NSU";
  artifact.x_label = "NSU";
  artifact.trials = 100;
  artifact.seed = 1;
  artifact.alpha = 0.7;
  artifact.source = "abc1234";
  artifact.fingerprint = "0123456789abcdef";
  for (const double x : {0.4, 0.6}) {
    PointCheckpoint point;
    point.result.x = x;
    SchemeAggregate wfd;
    wfd.scheme = "WFD";
    wfd.trials = 100;
    wfd.schedulable = x < 0.5 ? 100 : 15;
    point.result.schemes.push_back(wfd);
    SchemeAggregate catpa;
    catpa.scheme = "CA-TPA";
    catpa.trials = 100;
    catpa.schedulable = x < 0.5 ? 100 : 20;
    point.result.schemes.push_back(catpa);
    point.counters["placement.probes"] = static_cast<std::uint64_t>(x * 1000);
    artifact.points.push_back(std::move(point));
  }
  return artifact;
}

TEST(MdReportTest, RenderBlockRatioTable) {
  const std::string body = render_block(tiny_artifact(), "ratio");
  EXPECT_NE(body.find("rendered by mcs_report from fig1.json"),
            std::string::npos);
  EXPECT_NE(body.find("spec=fig1 trials=100 seed=1 alpha=0.70 commit=abc1234"),
            std::string::npos);
  EXPECT_NE(body.find("| NSU | WFD | CA-TPA |"), std::string::npos);
  EXPECT_NE(body.find("| 0.40 | 1.0000 | 1.0000 |"), std::string::npos);
  EXPECT_NE(body.find("| 0.60 | 0.1500 | 0.2000 |"), std::string::npos);
}

TEST(MdReportTest, RenderBlockCountersTable) {
  const std::string body = render_block(tiny_artifact(), "counters");
  EXPECT_NE(body.find("| counter | NSU=0.40 | NSU=0.60 |"), std::string::npos);
  EXPECT_NE(body.find("| placement.probes | 400 | 600 |"), std::string::npos);
}

TEST(MdReportTest, UnknownMetricThrows) {
  EXPECT_THROW((void)render_block(tiny_artifact(), "bogus"),
               std::runtime_error);
}

TEST(MdReportTest, DocBlockNamesInOrder) {
  const std::string doc =
      "intro\n"
      "<!-- mcs_report:begin fig1 -->\n"
      "stale\n"
      "<!-- mcs_report:end fig1 -->\n"
      "middle\n"
      "<!-- mcs_report:begin fig3:counters -->\n"
      "<!-- mcs_report:end fig3:counters -->\n";
  const std::vector<std::string> names = doc_block_names(doc);
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "fig1");
  EXPECT_EQ(names[1], "fig3:counters");
}

TEST(MdReportTest, MalformedMarkersThrow) {
  EXPECT_THROW((void)doc_block_names("<!-- mcs_report:begin a -->\n"),
               std::runtime_error);
  EXPECT_THROW(
      (void)doc_block_names("<!-- mcs_report:begin a -->\n"
                            "<!-- mcs_report:end b -->\n"),
      std::runtime_error);
  EXPECT_THROW(
      (void)doc_block_names("<!-- mcs_report:begin a -->\n"
                            "<!-- mcs_report:begin b -->\n"
                            "<!-- mcs_report:end b -->\n"),
      std::runtime_error);
}

TEST(MdReportTest, ReplaceBlocksRewritesOnlyBlockBodies) {
  const std::string doc =
      "# Title\n"
      "prose stays\n"
      "<!-- mcs_report:begin fig1 -->\n"
      "old table\n"
      "more old\n"
      "<!-- mcs_report:end fig1 -->\n"
      "tail stays\n";
  const std::string out = replace_blocks(
      doc, [](const std::string& name) { return "NEW " + name + "\n"; });
  EXPECT_EQ(out,
            "# Title\n"
            "prose stays\n"
            "<!-- mcs_report:begin fig1 -->\n"
            "NEW fig1\n"
            "<!-- mcs_report:end fig1 -->\n"
            "tail stays\n");
}

TEST(MdReportTest, ReplaceBlocksIsIdempotent) {
  const std::string doc =
      "<!-- mcs_report:begin fig1 -->\n"
      "<!-- mcs_report:end fig1 -->\n";
  const auto body = [](const std::string&) { return std::string("body\n"); };
  const std::string once = replace_blocks(doc, body);
  EXPECT_EQ(replace_blocks(once, body), once);
}

TEST(MdReportTest, RenderTraceBlockGolden) {
  obs::TraceSummary summary;
  summary.source = "fig1.trace.json";
  obs::SpanStats stats;
  stats.name = "exp.point";
  stats.count = 3;
  stats.total_ns = 2'500'000;    // 2.5 ms
  stats.self_ns = 1'250'000;     // 1.25 ms
  stats.p50_self_ns = 400'000;   // 400 us
  stats.p99_self_ns = 450'000;   // 450 us
  summary.spans.push_back(stats);

  const std::string out =
      render_trace_block(summary, "fig1.trace_summary.json");
  EXPECT_EQ(out,
            "<!-- rendered by mcs_report from fig1.trace_summary.json: "
            "source=fig1.trace.json -->\n"
            "| span | count | total ms | self ms | p50 self µs | p99 self µs "
            "|\n"
            "|---|---|---|---|---|---|\n"
            "| exp.point | 3 | 2.500 | 1.250 | 400.0 | 450.0 |\n");
}

TEST(MdReportTest, RenderTraceBlockEmptySummary) {
  obs::TraceSummary summary;
  const std::string out = render_trace_block(summary, "x.json");
  EXPECT_EQ(out,
            "<!-- rendered by mcs_report from x.json -->\n"
            "(no spans recorded)\n");
}

}  // namespace
}  // namespace mcs::exp
