#include "mcs/util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace mcs::util {
namespace {

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 10000;
  std::vector<int> hits(kN, 0);
  parallel_for(kN, [&](std::size_t i) { hits[i] += 1; }, 4);
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(kN));
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i], 1) << i;
}

TEST(ParallelForTest, ZeroItemsIsNoop) {
  parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; }, 4);
}

TEST(ParallelForTest, SingleThreadRunsInOrder) {
  std::vector<std::size_t> order;
  parallel_for(5, [&](std::size_t i) { order.push_back(i); }, 1);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, MoreThreadsThanItems) {
  std::atomic<int> count{0};
  parallel_for(3, [&](std::size_t) { count.fetch_add(1); }, 16);
  EXPECT_EQ(count.load(), 3);
}

TEST(ParallelForTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(default_thread_count(), 1u);
}

TEST(ParallelForTest, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(
          100,
          [](std::size_t i) {
            if (i == 37) throw std::runtime_error("boom");
          },
          4),
      std::runtime_error);
}

TEST(ParallelForTest, ContinuesDrainingAfterException) {
  std::atomic<int> count{0};
  try {
    parallel_for(
        1000,
        [&](std::size_t i) {
          if (i == 0) throw std::runtime_error("early");
          count.fetch_add(1);
        },
        2);
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(count.load(), 999);
}

}  // namespace
}  // namespace mcs::util
