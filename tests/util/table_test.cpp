#include "mcs/util/table.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

namespace mcs::util {
namespace {

TEST(FormatDoubleTest, FixedPrecision) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_double(1.0, 4), "1.0000");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

TEST(FormatDoubleTest, SpecialValues) {
  EXPECT_EQ(format_double(std::numeric_limits<double>::infinity(), 2), "inf");
  EXPECT_EQ(format_double(-std::numeric_limits<double>::infinity(), 2),
            "-inf");
  EXPECT_EQ(format_double(std::numeric_limits<double>::quiet_NaN(), 2), "nan");
}

TEST(TableTest, AlignsColumns) {
  Table t({"name", "value"});
  t.begin_row();
  t.add_cell("alpha");
  t.add_cell(std::size_t{7});
  t.begin_row();
  t.add_cell("b");
  t.add_cell(0.125, 3);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // Header, rule, two rows.
  EXPECT_NE(out.find("name   value"), std::string::npos);
  EXPECT_NE(out.find("alpha  7"), std::string::npos);
  EXPECT_NE(out.find("b      0.125"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TableTest, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.begin_row();
  t.add_cell("only");
  std::ostringstream os;
  t.print(os);  // must not crash; remaining cells blank
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

TEST(TableTest, RowCount) {
  Table t({"x"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.begin_row();
  t.add_cell("1");
  t.begin_row();
  t.add_cell("2");
  EXPECT_EQ(t.num_rows(), 2u);
}

}  // namespace
}  // namespace mcs::util
