#include "mcs/util/json.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mcs::util {
namespace {

TEST(JsonTest, ScalarsRoundTrip) {
  EXPECT_EQ(Json::null().dump(), "null");
  EXPECT_EQ(Json::boolean(true).dump(), "true");
  EXPECT_EQ(Json::boolean(false).dump(), "false");
  EXPECT_EQ(Json::number(42).dump(), "42");
  EXPECT_EQ(Json::number_raw("0.25").dump(), "0.25");
  EXPECT_EQ(Json::string("hi").dump(), "\"hi\"");
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  Json obj = Json::object();
  obj.set("zebra", Json::number(1));
  obj.set("alpha", Json::number(2));
  EXPECT_EQ(obj.dump(), "{\"zebra\":1,\"alpha\":2}");
  // Byte-deterministic: dumping twice yields the same bytes.
  EXPECT_EQ(obj.dump(), obj.dump());
}

TEST(JsonTest, StringEscapes) {
  const std::string raw = "a\"b\\c\nd\te\rf";
  const Json value = Json::string(raw);
  const Json parsed = Json::parse(value.dump());
  EXPECT_EQ(parsed.as_string(), raw);
}

TEST(JsonTest, ControlCharactersEscapeAndParse) {
  std::string raw = "x";
  raw.push_back('\x01');
  raw.push_back('\x1f');
  const Json parsed = Json::parse(Json::string(raw).dump());
  EXPECT_EQ(parsed.as_string(), raw);
}

TEST(JsonTest, ParseDocument) {
  const Json doc = Json::parse(
      R"({"name":"fig1","trials":2000,"vals":[1,2.5,-3],"ok":true,"none":null})");
  EXPECT_EQ(doc.at("name").as_string(), "fig1");
  EXPECT_EQ(doc.at("trials").as_u64(), 2000u);
  ASSERT_EQ(doc.at("vals").items().size(), 3u);
  EXPECT_DOUBLE_EQ(doc.at("vals").items()[1].as_double(), 2.5);
  EXPECT_TRUE(doc.at("ok").as_bool());
  EXPECT_EQ(doc.at("none").type(), Json::Type::kNull);
}

TEST(JsonTest, ParseToleratesWhitespace) {
  const Json doc = Json::parse(" { \"a\" : [ 1 , 2 ] } \n");
  EXPECT_EQ(doc.at("a").items().size(), 2u);
}

TEST(JsonTest, NumbersKeepTheirLexeme) {
  const Json doc = Json::parse("{\"x\":0.30000000000000004}");
  EXPECT_EQ(doc.at("x").dump(), "0.30000000000000004");
}

TEST(JsonTest, FindAndAt) {
  Json obj = Json::object();
  obj.set("k", Json::number(1));
  EXPECT_NE(obj.find("k"), nullptr);
  EXPECT_EQ(obj.find("missing"), nullptr);
  EXPECT_THROW((void)obj.at("missing"), std::runtime_error);
}

TEST(JsonTest, MalformedInputThrows) {
  EXPECT_THROW((void)Json::parse(""), std::runtime_error);
  EXPECT_THROW((void)Json::parse("{"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("{\"a\":}"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("tru"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("{} trailing"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("\"unterminated"), std::runtime_error);
}

TEST(JsonTest, TypeMismatchThrows) {
  const Json num = Json::number(1);
  EXPECT_THROW((void)num.as_string(), std::runtime_error);
  EXPECT_THROW((void)num.as_bool(), std::runtime_error);
  EXPECT_THROW((void)Json::string("x").as_u64(), std::runtime_error);
}

TEST(JsonTest, NestedRoundTrip) {
  Json inner = Json::object();
  inner.set("list", Json::array());
  Json outer = Json::object();
  outer.set("inner", std::move(inner));
  Json arr = Json::array();
  arr.push(Json::number(7));
  outer.set("arr", std::move(arr));
  const std::string dumped = outer.dump();
  EXPECT_EQ(Json::parse(dumped).dump(), dumped);
}

}  // namespace
}  // namespace mcs::util
