#include "mcs/util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace mcs::util {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }

  [[nodiscard]] std::string read_back() const {
    std::ifstream in(path_);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
  }

  std::string path_ = ::testing::TempDir() + "mcs_csv_test.csv";
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter csv(path_, {"a", "b"});
    csv.write_row({"1", "2"});
    csv.write_row({"3", "4"});
  }
  EXPECT_EQ(read_back(), "a,b\n1,2\n3,4\n");
}

TEST_F(CsvTest, QuotesSpecialCharacters) {
  {
    CsvWriter csv(path_, {"x"});
    csv.write_row({"has,comma"});
    csv.write_row({"has\"quote"});
  }
  EXPECT_EQ(read_back(), "x\n\"has,comma\"\n\"has\"\"quote\"\n");
}

TEST_F(CsvTest, UnwritablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}),
               std::runtime_error);
}

TEST_F(CsvTest, CloseIsIdempotent) {
  CsvWriter csv(path_, {"a"});
  csv.write_row({"1"});
  csv.close();
  csv.close();
  EXPECT_EQ(read_back(), "a\n1\n");
}

}  // namespace
}  // namespace mcs::util
