#include "mcs/util/cli.hpp"

#include <gtest/gtest.h>

namespace mcs::util {
namespace {

Cli parse(std::vector<const char*> argv,
          std::map<std::string, std::string> allowed) {
  argv.insert(argv.begin(), "prog");
  return Cli(static_cast<int>(argv.size()), argv.data(), std::move(allowed));
}

const std::map<std::string, std::string> kOpts{
    {"trials", "number of trials"},
    {"seed", "rng seed"},
    {"csv", "csv output path"},
    {"full", "full fidelity"},
};

TEST(CliTest, SpaceSeparatedValues) {
  const Cli cli = parse({"--trials", "500", "--seed", "9"}, kOpts);
  EXPECT_EQ(cli.get_or("trials", std::uint64_t{0}), 500u);
  EXPECT_EQ(cli.get_or("seed", std::uint64_t{0}), 9u);
}

TEST(CliTest, EqualsSeparatedValues) {
  const Cli cli = parse({"--trials=123"}, kOpts);
  EXPECT_EQ(cli.get_or("trials", std::uint64_t{0}), 123u);
}

TEST(CliTest, BooleanFlags) {
  const Cli cli = parse({"--full", "--trials", "10"}, kOpts);
  EXPECT_TRUE(cli.has("full"));
  EXPECT_FALSE(cli.has("csv"));
}

TEST(CliTest, DefaultsWhenAbsent) {
  const Cli cli = parse({}, kOpts);
  EXPECT_EQ(cli.get_or("trials", std::uint64_t{77}), 77u);
  EXPECT_DOUBLE_EQ(cli.get_or("seed", 1.5), 1.5);
  EXPECT_EQ(cli.get_or("csv", std::string{"none"}), "none");
  EXPECT_FALSE(cli.get("csv").has_value());
}

TEST(CliTest, UnknownOptionThrows) {
  EXPECT_THROW(parse({"--bogus", "1"}, kOpts), std::invalid_argument);
}

TEST(CliTest, PositionalArgumentThrows) {
  EXPECT_THROW(parse({"stray"}, kOpts), std::invalid_argument);
}

TEST(CliTest, MalformedNumberThrows) {
  const Cli cli = parse({"--trials", "abc"}, kOpts);
  EXPECT_THROW((void)cli.get_or("trials", std::uint64_t{0}),
               std::invalid_argument);
}

TEST(CliTest, HelpFlag) {
  const Cli cli = parse({"--help"}, kOpts);
  EXPECT_TRUE(cli.help_requested());
  const std::string usage = cli.usage("prog");
  EXPECT_NE(usage.find("--trials"), std::string::npos);
  EXPECT_NE(usage.find("usage: prog"), std::string::npos);
}

TEST(CliTest, DoubleValues) {
  const Cli cli = parse({"--seed", "0.25"}, kOpts);
  EXPECT_DOUBLE_EQ(cli.get_or("seed", 0.0), 0.25);
}

}  // namespace
}  // namespace mcs::util
