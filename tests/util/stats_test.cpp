#include "mcs/util/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace mcs::util {
namespace {

TEST(WelfordTest, EmptyAccumulator) {
  const Welford w;
  EXPECT_EQ(w.count(), 0u);
  EXPECT_DOUBLE_EQ(w.mean(), 0.0);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
  EXPECT_TRUE(std::isnan(w.min()));
  EXPECT_TRUE(std::isnan(w.max()));
}

TEST(WelfordTest, SingleValue) {
  Welford w;
  w.add(3.5);
  EXPECT_EQ(w.count(), 1u);
  EXPECT_DOUBLE_EQ(w.mean(), 3.5);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
  EXPECT_DOUBLE_EQ(w.min(), 3.5);
  EXPECT_DOUBLE_EQ(w.max(), 3.5);
}

TEST(WelfordTest, KnownMeanAndVariance) {
  Welford w;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) w.add(x);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  // Sample variance of this classic data set: 32 / 7.
  EXPECT_NEAR(w.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(w.min(), 2.0);
  EXPECT_DOUBLE_EQ(w.max(), 9.0);
}

TEST(WelfordTest, MergeEqualsSequential) {
  Welford all;
  Welford a;
  Welford b;
  for (int i = 0; i < 100; ++i) {
    const double x = 0.1 * i * i - 3.0 * i;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(WelfordTest, MergeWithEmptyIsNoop) {
  Welford a;
  a.add(1.0);
  a.add(2.0);
  const Welford before = a;
  a.merge(Welford{});
  EXPECT_EQ(a.count(), before.count());
  EXPECT_DOUBLE_EQ(a.mean(), before.mean());
  Welford empty;
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

void fill_cyclic(Welford& w, int n) {
  for (int i = 0; i < n; ++i) w.add((i % 7) * 1.0);
}

TEST(WelfordTest, Ci95ShrinksWithSamples) {
  Welford small;
  Welford large;
  fill_cyclic(small, 10);
  fill_cyclic(large, 1000);
  EXPECT_GT(small.ci95(), large.ci95());
}

TEST(WelfordTest, RestoreRoundTripsStateExactly) {
  Welford w;
  fill_cyclic(w, 53);
  const Welford back =
      Welford::restore(w.count(), w.mean(), w.m2(), w.raw_min(), w.raw_max());
  EXPECT_EQ(back.count(), w.count());
  EXPECT_EQ(back.mean(), w.mean());
  EXPECT_EQ(back.m2(), w.m2());
  EXPECT_EQ(back.raw_min(), w.raw_min());
  EXPECT_EQ(back.raw_max(), w.raw_max());
  // The restored accumulator keeps accumulating identically.
  Welford original = w;
  Welford restored = back;
  original.add(3.25);
  restored.add(3.25);
  EXPECT_EQ(restored.mean(), original.mean());
  EXPECT_EQ(restored.m2(), original.m2());
}

// -- merge exactness properties the parallel sweep executor builds on ------
//
// The chunk-order merge in exp::run_point (and therefore the --jobs N
// artifact byte-identity) requires exactly two things of Welford::merge:
// it is a pure deterministic function of its operands, and merging with an
// empty accumulator is a bitwise identity.  Floating-point merge is NOT
// exactly associative — the tests below pin the properties that do hold
// bit-exactly and bound the one that holds only approximately.

namespace {

/// Deterministic, awkwardly-spaced sample values (no RNG needed).
double sample_value(std::size_t i) {
  const auto x = static_cast<double>(i);
  return (x * 0.37 - 5.0) * (i % 7 == 0 ? 1e6 : 1e-3) + 1.0 / (x + 1.0);
}

Welford chunk_of(std::size_t begin, std::size_t end) {
  Welford w;
  for (std::size_t i = begin; i < end; ++i) w.add(sample_value(i));
  return w;
}

void expect_bitwise_equal(const Welford& a, const Welford& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.m2(), b.m2());
  EXPECT_EQ(a.raw_min(), b.raw_min());
  EXPECT_EQ(a.raw_max(), b.raw_max());
}

}  // namespace

TEST(WelfordMergeTest, MergeIsDeterministic) {
  // Same operands, any number of repetitions: bit-identical outcome.
  for (int rep = 0; rep < 3; ++rep) {
    Welford a = chunk_of(0, 64);
    const Welford b = chunk_of(64, 192);
    a.merge(b);
    Welford a2 = chunk_of(0, 64);
    a2.merge(chunk_of(64, 192));
    expect_bitwise_equal(a, a2);
  }
}

TEST(WelfordMergeTest, MergeWithEmptyIsBitwiseIdentity) {
  Welford a = chunk_of(0, 100);
  const Welford before = a;
  a.merge(Welford{});
  expect_bitwise_equal(a, before);

  Welford empty;
  empty.merge(before);
  expect_bitwise_equal(empty, before);
}

TEST(WelfordMergeTest, ChunkOrderFoldIsReproducibleAnySchedule) {
  // The executor's exact scenario: chunks are computed by different
  // threads in arbitrary completion order, but folded in chunk-index
  // order.  Whatever order the chunks were *computed* in, the fold result
  // is bit-identical — the fold is a pure function of the ordered chunk
  // list.
  constexpr std::size_t kChunks = 8;
  constexpr std::size_t kPerChunk = 37;
  std::vector<Welford> forward(kChunks), scrambled(kChunks);
  for (std::size_t c = 0; c < kChunks; ++c) {
    forward[c] = chunk_of(c * kPerChunk, (c + 1) * kPerChunk);
  }
  // "Compute" them again in a different order (reverse), storing per-index.
  for (std::size_t r = kChunks; r-- > 0;) {
    scrambled[r] = chunk_of(r * kPerChunk, (r + 1) * kPerChunk);
  }
  Welford fold_a, fold_b;
  for (std::size_t c = 0; c < kChunks; ++c) fold_a.merge(forward[c]);
  for (std::size_t c = 0; c < kChunks; ++c) fold_b.merge(scrambled[c]);
  expect_bitwise_equal(fold_a, fold_b);
}

TEST(WelfordMergeTest, MergeOrderChangesBitsButNotStatistics) {
  // The reason the fold order is pinned at all: merge is only
  // approximately associative/commutative.  Different orders agree to
  // ~1e-12 relative but need not agree bitwise, so a completion-order
  // merge would make artifacts depend on thread scheduling.
  Welford ab = chunk_of(0, 50);
  ab.merge(chunk_of(50, 150));
  Welford ba = chunk_of(50, 150);
  ba.merge(chunk_of(0, 50));
  EXPECT_EQ(ab.count(), ba.count());
  EXPECT_NEAR(ab.mean(), ba.mean(),
              1e-12 * std::max(1.0, std::fabs(ab.mean())));
  EXPECT_NEAR(ab.m2(), ba.m2(), 1e-9 * std::max(1.0, std::fabs(ab.m2())));
  EXPECT_EQ(ab.raw_min(), ba.raw_min());
  EXPECT_EQ(ab.raw_max(), ba.raw_max());
}

TEST(WelfordMergeTest, MergeMatchesSequentialToFloatingTolerance) {
  // Value-level sanity (exactness is deliberately NOT claimed here):
  // chunked merge and one sequential pass agree to tight tolerance on a
  // wide-dynamic-range sample.
  constexpr std::size_t kTotal = 333;
  Welford sequential = chunk_of(0, kTotal);
  Welford merged;
  for (std::size_t begin = 0; begin < kTotal; begin += 64) {
    merged.merge(chunk_of(begin, std::min(kTotal, begin + 64)));
  }
  EXPECT_EQ(merged.count(), sequential.count());
  EXPECT_NEAR(merged.mean(), sequential.mean(),
              1e-9 * std::max(1.0, std::fabs(sequential.mean())));
  EXPECT_NEAR(merged.variance(), sequential.variance(),
              1e-6 * std::max(1.0, sequential.variance()));
  EXPECT_EQ(merged.raw_min(), sequential.raw_min());
  EXPECT_EQ(merged.raw_max(), sequential.raw_max());
}

TEST(WelfordTest, RawExtremaOfEmptyAreInfinities) {
  const Welford w;
  EXPECT_TRUE(std::isinf(w.raw_min()));
  EXPECT_GT(w.raw_min(), 0.0);
  EXPECT_TRUE(std::isinf(w.raw_max()));
  EXPECT_LT(w.raw_max(), 0.0);
  EXPECT_TRUE(std::isnan(w.min()));
  EXPECT_TRUE(std::isnan(w.max()));
}

}  // namespace
}  // namespace mcs::util
