#include "mcs/util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mcs::util {
namespace {

TEST(WelfordTest, EmptyAccumulator) {
  const Welford w;
  EXPECT_EQ(w.count(), 0u);
  EXPECT_DOUBLE_EQ(w.mean(), 0.0);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
  EXPECT_TRUE(std::isnan(w.min()));
  EXPECT_TRUE(std::isnan(w.max()));
}

TEST(WelfordTest, SingleValue) {
  Welford w;
  w.add(3.5);
  EXPECT_EQ(w.count(), 1u);
  EXPECT_DOUBLE_EQ(w.mean(), 3.5);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
  EXPECT_DOUBLE_EQ(w.min(), 3.5);
  EXPECT_DOUBLE_EQ(w.max(), 3.5);
}

TEST(WelfordTest, KnownMeanAndVariance) {
  Welford w;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) w.add(x);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  // Sample variance of this classic data set: 32 / 7.
  EXPECT_NEAR(w.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(w.min(), 2.0);
  EXPECT_DOUBLE_EQ(w.max(), 9.0);
}

TEST(WelfordTest, MergeEqualsSequential) {
  Welford all;
  Welford a;
  Welford b;
  for (int i = 0; i < 100; ++i) {
    const double x = 0.1 * i * i - 3.0 * i;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(WelfordTest, MergeWithEmptyIsNoop) {
  Welford a;
  a.add(1.0);
  a.add(2.0);
  const Welford before = a;
  a.merge(Welford{});
  EXPECT_EQ(a.count(), before.count());
  EXPECT_DOUBLE_EQ(a.mean(), before.mean());
  Welford empty;
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

void fill_cyclic(Welford& w, int n) {
  for (int i = 0; i < n; ++i) w.add((i % 7) * 1.0);
}

TEST(WelfordTest, Ci95ShrinksWithSamples) {
  Welford small;
  Welford large;
  fill_cyclic(small, 10);
  fill_cyclic(large, 1000);
  EXPECT_GT(small.ci95(), large.ci95());
}

TEST(WelfordTest, RestoreRoundTripsStateExactly) {
  Welford w;
  fill_cyclic(w, 53);
  const Welford back =
      Welford::restore(w.count(), w.mean(), w.m2(), w.raw_min(), w.raw_max());
  EXPECT_EQ(back.count(), w.count());
  EXPECT_EQ(back.mean(), w.mean());
  EXPECT_EQ(back.m2(), w.m2());
  EXPECT_EQ(back.raw_min(), w.raw_min());
  EXPECT_EQ(back.raw_max(), w.raw_max());
  // The restored accumulator keeps accumulating identically.
  Welford original = w;
  Welford restored = back;
  original.add(3.25);
  restored.add(3.25);
  EXPECT_EQ(restored.mean(), original.mean());
  EXPECT_EQ(restored.m2(), original.m2());
}

TEST(WelfordTest, RawExtremaOfEmptyAreInfinities) {
  const Welford w;
  EXPECT_TRUE(std::isinf(w.raw_min()));
  EXPECT_GT(w.raw_min(), 0.0);
  EXPECT_TRUE(std::isinf(w.raw_max()));
  EXPECT_LT(w.raw_max(), 0.0);
  EXPECT_TRUE(std::isnan(w.min()));
  EXPECT_TRUE(std::isnan(w.max()));
}

}  // namespace
}  // namespace mcs::util
